package tota_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun executes every example end-to-end with `go run`,
// keeping the documentation honest: an example that stops compiling or
// starts erroring fails the suite. Skipped in -short mode (each run
// pays a compile).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in short mode")
	}
	examples := []string{
		"quickstart",
		"routing",
		"gathering",
		"flocking",
		"meeting",
		"dht",
		"custompattern",
	}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s printed nothing", name)
			}
		})
	}
}
