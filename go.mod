module tota

go 1.22
