// Routing example (§5.1): a destination advertises its overlay
// structure; other nodes route messages downhill to it; the structure
// survives link failures; and the flooding baseline shows what the
// overlay saves.
package main

import (
	"fmt"
	"log"

	"tota/internal/emulator"
	"tota/internal/routing"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world := emulator.New(emulator.Config{Graph: topology.Grid(8, 8, 1)})
	dst := topology.NodeName(0)
	sender := topology.NodeName(18) // (2,2)

	// The destination builds its routing overlay once.
	dstRouter := routing.NewRouter(world.Node(dst))
	if _, err := dstRouter.Advertise(); err != nil {
		return err
	}
	world.Settle(100000)
	fmt.Printf("overlay structure built with %d radio sends\n", world.Sim().Stats().Sent)

	// Route three messages.
	world.Sim().ResetStats()
	srcRouter := routing.NewRouter(world.Node(sender))
	for i := 0; i < 3; i++ {
		if err := srcRouter.Send(dst, tuple.I("seq", int64(i)), tuple.S("body", "ping")); err != nil {
			return err
		}
		world.Settle(100000)
	}
	for _, m := range dstRouter.Inbox() {
		fmt.Printf("delivered %s -> %s: %v\n", m.From, m.To, m.Body)
	}
	fmt.Printf("gradient routing: %d radio sends for 3 messages\n", world.Sim().Stats().Sent)

	// Break a link on the path; the middleware repairs the structure
	// and the next message still arrives.
	world.RemoveEdge(topology.NodeName(0), topology.NodeName(1))
	world.Settle(100000)
	world.Sim().ResetStats()
	if err := srcRouter.Send(dst, tuple.S("body", "after repair")); err != nil {
		return err
	}
	world.Settle(100000)
	if msgs := dstRouter.Inbox(); len(msgs) == 1 {
		fmt.Printf("after link failure: still delivered (%d sends)\n", world.Sim().Stats().Sent)
	}

	// Baseline: the same traffic by flooding.
	base := emulator.New(emulator.Config{Graph: topology.Grid(8, 8, 1)})
	fDst := routing.NewFloodRouter(base.Node(dst))
	fSrc := routing.NewFloodRouter(base.Node(sender))
	for i := 0; i < 3; i++ {
		if err := fSrc.Send(dst, tuple.I("seq", int64(i))); err != nil {
			return err
		}
		base.Settle(100000)
	}
	fmt.Printf("flooding baseline: %d radio sends for %d messages\n",
		base.Sim().Stats().Sent, len(fDst.Inbox()))
	return nil
}
