// Flocking example (§5.3 / Fig. 3): three agents propagate FLOCK fields
// over a MANET carpet and descend each other's fields until they hold a
// formation at the target hop distance.
package main

import (
	"fmt"
	"log"

	"tota/internal/emulator"
	"tota/internal/flock"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 12×4 relay carpet with three agents spread along it.
	graph := topology.Grid(12, 4, 1)
	agents := []tuple.NodeID{"alpha", "bravo", "charlie"}
	for i, id := range agents {
		graph.SetPosition(id, space.Point{X: 0.5 + float64(i)*4.5, Y: 1.5})
	}
	graph.Recompute(1.2)
	world := emulator.New(emulator.Config{Graph: graph, RadioRange: 1.2})

	swarm, err := flock.NewSwarm(world, agents, flock.Config{
		TargetHops: 3,
		Scope:      15,
		Speed:      0.5,
		Bounds:     space.Rect{Max: space.Point{X: 11, Y: 3}},
	})
	if err != nil {
		return err
	}
	world.Settle(100000)

	mark := func(id tuple.NodeID) rune {
		for _, a := range agents {
			if a == id {
				return '#'
			}
		}
		return 0
	}
	fmt.Println("before coordination (agents '#', target distance 3 hops):")
	fmt.Println(world.Render(48, 8, mark))
	fmt.Printf("initial formation error: %.2f hops\n\n", swarm.PairwiseHopError())

	errs := swarm.Run(120, 1, 100000)
	for i := 0; i < len(errs); i += 20 {
		fmt.Printf("round %3d: error %.2f\n", i+1, errs[i])
	}
	fmt.Printf("round %3d: error %.2f\n\n", len(errs), errs[len(errs)-1])

	fmt.Println("after coordination:")
	fmt.Println(world.Render(48, 8, mark))
	return nil
}
