// Custom pattern example: authoring a new propagation rule, the way
// the paper's §4.3 programming model intends ("the definition of the
// methods in a tuple class allows instances of the class to follow any
// needed propagation pattern").
//
// The heatTuple below models decaying context: it starts with some
// intensity at the source and halves per hop; nodes where the intensity
// falls below a threshold neither store nor relay it. The whole rule is
// ~40 lines: embed tuple.Base, override three hooks, register a factory.
package main

import (
	"fmt"
	"log"

	"tota/internal/core"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// heatKind names the custom tuple in the codec registry.
const heatKind = "example:heat"

// heatTuple decays exponentially with distance.
type heatTuple struct {
	tuple.Base

	Source    string
	Intensity float64
	Threshold float64
}

var _ tuple.Tuple = (*heatTuple)(nil)

func newHeat(source string, intensity, threshold float64) *heatTuple {
	return &heatTuple{Source: source, Intensity: intensity, Threshold: threshold}
}

// Kind implements tuple.Tuple.
func (h *heatTuple) Kind() string { return heatKind }

// Content implements tuple.Tuple: all state that must survive a hop.
func (h *heatTuple) Content() tuple.Content {
	return tuple.Content{
		tuple.S("source", h.Source),
		tuple.F("intensity", h.Intensity),
		tuple.F("_threshold", h.Threshold),
	}
}

// Evolve implements tuple.Tuple: the intensity halves per hop.
func (h *heatTuple) Evolve(*tuple.Ctx) tuple.Tuple {
	c := *h
	c.Intensity = h.Intensity / 2
	return &c
}

// ShouldStore implements tuple.Tuple: cold copies are not kept.
func (h *heatTuple) ShouldStore(*tuple.Ctx) bool { return h.Intensity >= h.Threshold }

// ShouldPropagate implements tuple.Tuple: stop when the next hop would
// be below the threshold.
func (h *heatTuple) ShouldPropagate(*tuple.Ctx) bool { return h.Intensity/2 >= h.Threshold }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Register the custom kind so it survives serialization.
	err := tuple.DefaultRegistry.Register(heatKind, func(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
		h := &heatTuple{
			Source:    c.GetString("source"),
			Intensity: c.GetFloat("intensity"),
			Threshold: c.GetFloat("_threshold"),
		}
		h.SetID(id)
		return h, nil
	})
	if err != nil {
		return err
	}

	// A 9-node line; heat injected at one end with intensity 16 and
	// threshold 1 reaches exactly 4 hops (16, 8, 4, 2, 1).
	graph := topology.Line(9)
	radio := transport.NewSim(graph, transport.SimConfig{})
	nodes := make(map[tuple.NodeID]*core.Node)
	for _, id := range graph.Nodes() {
		ep := radio.Attach(id, nil)
		n := core.New(ep)
		radio.Bind(id, n)
		nodes[id] = n
	}
	src := topology.NodeName(0)
	if _, err := nodes[src].Inject(newHeat("stove", 16, 1)); err != nil {
		return err
	}
	radio.RunUntilQuiet(1000)

	for _, id := range graph.Nodes() {
		t, ok := nodes[id].ReadOne(tuple.Match(heatKind))
		if !ok {
			fmt.Printf("%s: cold\n", id)
			continue
		}
		fmt.Printf("%s: intensity %g\n", id, t.(*heatTuple).Intensity)
	}
	return nil
}
