// Quickstart: build a small TOTA network by hand, inject a gradient
// tuple, sense it from the far side, react to its arrival, and tear it
// down — the whole §4.3 API in one file.
package main

import (
	"fmt"
	"log"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A five-node line: a - b - c - d - e, over the simulated radio.
	graph := topology.New()
	ids := []tuple.NodeID{"a", "b", "c", "d", "e"}
	for i := 1; i < len(ids); i++ {
		graph.AddEdge(ids[i-1], ids[i])
	}
	radio := transport.NewSim(graph, transport.SimConfig{})

	nodes := make(map[tuple.NodeID]*core.Node, len(ids))
	for _, id := range ids {
		ep := radio.Attach(id, nil)
		n := core.New(ep)
		radio.Bind(id, n)
		nodes[id] = n
	}

	// Node e wants to know when the field arrives (EVENT INTERFACE).
	nodes["e"].Subscribe(pattern.ByName(pattern.KindGradient, "hello"), func(ev core.Event) {
		if ev.Type == core.TupleArrived {
			fmt.Printf("e: reaction fired — %v\n", ev.Tuple.Content())
		}
	})

	// Node a injects a gradient tuple: content + propagation rule.
	id, err := nodes["a"].Inject(pattern.NewGradient("hello", tuple.S("greeting", "tuples on the air")))
	if err != nil {
		return err
	}
	fmt.Printf("a: injected %s\n", id)

	// Drive the radio until the propagation wave settles.
	radio.RunUntilQuiet(1000)

	// Every node now senses the field locally, with the hop distance.
	for _, nid := range ids {
		t, ok := nodes[nid].ReadOne(pattern.ByName(pattern.KindGradient, "hello"))
		if !ok {
			return fmt.Errorf("node %s missed the tuple", nid)
		}
		g := t.(*pattern.Gradient)
		fmt.Printf("%s: distance from source = %v hops, payload %q\n",
			nid, g.Val, g.Payload.GetString("greeting"))
	}

	// The structure self-maintains: break b-c and let it repair via...
	// nothing — the line is cut, so the far side withdraws its copies.
	radio.RemoveEdge("b", "c")
	radio.RunUntilQuiet(1000)
	if _, ok := nodes["e"].ReadOne(pattern.ByName(pattern.KindGradient, "hello")); !ok {
		fmt.Println("after partition: e's copy was withdrawn (no path to the source)")
	}
	radio.AddEdge("b", "c")
	radio.RunUntilQuiet(1000)
	if t, ok := nodes["e"].ReadOne(pattern.ByName(pattern.KindGradient, "hello")); ok {
		fmt.Printf("after healing: e re-adopted the field at distance %v\n",
			t.(*pattern.Gradient).Val)
	}

	// Retract tears the structure down everywhere.
	nodes["a"].Retract(id)
	radio.RunUntilQuiet(1000)
	remaining := 0
	for _, nid := range ids {
		remaining += len(nodes[nid].Read(tuple.Match(pattern.KindGradient)))
	}
	fmt.Printf("after retract: %d copies remain\n", remaining)
	return nil
}
