// Meeting example (Co-Fields): participants scattered over a campus
// grid each propagate a gradient field and walk downhill the sum of
// everyone else's fields; without any negotiation they converge on a
// point minimizing the total travel.
package main

import (
	"fmt"
	"log"

	"tota/internal/emulator"
	"tota/internal/meeting"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	graph := topology.Grid(9, 9, 1)
	users := []tuple.NodeID{"ann", "bob", "cleo"}
	starts := []space.Point{
		{X: 0.5, Y: 0.5},
		{X: 7.5, Y: 0.5},
		{X: 3.5, Y: 7.5},
	}
	for i, id := range users {
		graph.SetPosition(id, starts[i])
	}
	graph.Recompute(1.2)
	world := emulator.New(emulator.Config{Graph: graph, RadioRange: 1.2})

	m, err := meeting.New(world, users, meeting.Config{
		Speed:  0.5,
		Bounds: space.Rect{Max: space.Point{X: 8, Y: 8}},
	})
	if err != nil {
		return err
	}
	world.Settle(100000)

	mark := func(id tuple.NodeID) rune {
		for i, u := range users {
			if u == id {
				return rune('A' + i)
			}
		}
		return 0
	}
	fmt.Println("before (participants A, B, C):")
	fmt.Println(world.Render(40, 10, mark))
	fmt.Printf("spread: %.0f hops\n\n", m.Spread())

	spreads := m.Run(150, 1, 100000)
	for i := 0; i < len(spreads); i += 30 {
		fmt.Printf("round %3d: spread %.0f hops\n", i+1, spreads[i])
	}
	fmt.Printf("round %3d: spread %.0f hops\n\n", len(spreads), spreads[len(spreads)-1])

	fmt.Println("after — the group met:")
	fmt.Println(world.Render(40, 10, mark))
	return nil
}
