// DHT example: the paper's virtual-overlay extrapolation in action. A
// wired peer-to-peer ring with finger shortcuts is built in a virtual
// space; put/get requests are TOTA tuples routed greedily by the
// virtual geometry — content-based routing à la CAN/Pastry with no
// routing tables beyond each peer's own coordinates.
package main

import (
	"fmt"
	"log"

	"tota/internal/emulator"
	"tota/internal/overlay"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	graph := topology.New()
	ids := make([]tuple.NodeID, 20)
	for i := range ids {
		ids[i] = tuple.NodeID(fmt.Sprintf("peer-%02d", i))
	}
	layout, err := overlay.BuildRing(graph, ids, 4)
	if err != nil {
		return err
	}
	world := emulator.New(emulator.Config{Graph: graph})
	peers := make(map[tuple.NodeID]*overlay.Peer, len(ids))
	for _, id := range ids {
		p, err := overlay.NewPeer(world.Node(id), layout)
		if err != nil {
			return err
		}
		peers[id] = p
	}
	world.Settle(100000)
	fmt.Printf("ring of %d peers, %d overlay links\n\n", len(ids), graph.EdgeCount())

	writer := peers[layout.Order[0]]
	kvs := map[string]string{
		"alice":  "reading",
		"bob":    "writing",
		"carol":  "routing",
		"groups": "42",
	}
	for k, v := range kvs {
		if err := writer.Put(k, v); err != nil {
			return err
		}
	}
	world.Settle(100000)
	for k := range kvs {
		fmt.Printf("key %-8q lives at %s (ring position %.3f)\n",
			k, layout.OwnerOf(k), overlay.Hash(k))
	}

	reader := peers[layout.Order[len(ids)/2]]
	fmt.Printf("\npeer %s looks the keys up:\n", reader.Node().Self())
	for k := range kvs {
		if err := reader.Get(k); err != nil {
			return err
		}
	}
	if err := reader.Get("missing-key"); err != nil {
		return err
	}
	world.Settle(100000)
	for _, kv := range reader.Results() {
		if kv.Found {
			fmt.Printf("  %-12q -> %q\n", kv.Key, kv.Value)
		} else {
			fmt.Printf("  %-12q -> (not found)\n", kv.Key)
		}
	}
	return nil
}
