// Gathering example (§5.2): sensors advertise description fields; a
// user device discovers them from its local tuple space, walks a field
// back to its source, and then aggregates every sensor's reading with
// an in-network convergecast query (internal/agg) — each node folds its
// children's partials into one compact message per epoch instead of
// relaying every reading to the user.
package main

import (
	"fmt"
	"log"
	"math"

	"tota/internal/agg"
	"tota/internal/emulator"
	"tota/internal/gather"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world := emulator.New(emulator.Config{Graph: topology.Grid(7, 7, 1), RefreshEvery: 1, Seed: 7})
	printer := topology.NodeName(0)
	thermo := topology.NodeName(48)
	user := topology.NodeName(24) // center

	// Push model: sensors advertise themselves as gradient fields.
	if _, err := gather.Advertise(world.Node(printer), "printer", math.Inf(1),
		tuple.S("model", "LaserJet"), tuple.S("floor", "2")); err != nil {
		return err
	}
	if _, err := gather.Advertise(world.Node(thermo), "thermometer", 4); err != nil {
		return err
	}
	world.Settle(100000)

	fmt.Println("user's local view of the environment:")
	for _, r := range gather.Discover(world.Node(user)) {
		fmt.Printf("  %-12s %v hops away  %v\n", r.Name, r.Distance, r.Desc)
	}

	// Walk the printer field back to its source, hop by hop, using only
	// one-hop information.
	at := user
	fmt.Printf("walking to the printer: %s", at)
	for steps := 0; steps < 50; steps++ {
		val, ok := resourceVal(world, at, "printer")
		if !ok || val == 0 {
			break
		}
		nbrVals := make(map[tuple.NodeID]float64)
		for _, nb := range world.Graph().Neighbors(at) {
			if v, ok := resourceVal(world, nb, "printer"); ok {
				nbrVals[nb] = v
			}
		}
		next, ok := gather.NextHop(val, nbrVals)
		if !ok {
			break
		}
		at = next
		fmt.Printf(" -> %s", at)
	}
	fmt.Println()
	if at == printer {
		fmt.Println("arrived at the printer without any global knowledge")
	}

	// Pull model, in-network: every node stores a temperature reading as
	// a node-local tuple; the user injects one query tuple per aggregate.
	// The query's own gradient field becomes the spanning structure, and
	// each refresh epoch runs a convergecast — every node sends exactly
	// one combined partial up its parent link, so the user's cost stays
	// O(1) per node per epoch no matter how many readings exist.
	for i, id := range world.Nodes() {
		celsius := 18 + float64(i%8) // deterministic spread of readings
		if _, err := world.Node(id).Inject(pattern.NewLocal("temperature", tuple.F("celsius", celsius))); err != nil {
			return err
		}
	}
	sel := tuple.Selector{Kind: pattern.KindLocal, Name: "temperature", Field: "celsius"}
	avgID, err := world.Node(user).Inject(agg.NewQuery("room-avg", agg.Avg, sel))
	if err != nil {
		return err
	}
	countID, err := world.Node(user).Inject(agg.NewQuery("room-count", agg.Count, sel))
	if err != nil {
		return err
	}
	world.Settle(100000)

	fmt.Println("convergecast over the temperature readings (one partial per node per epoch):")
	for epoch := 1; epoch <= 16; epoch++ {
		world.RefreshAll()
		world.Settle(100000)
		avgRes, ok := world.Node(user).AggResult(avgID)
		if !ok {
			continue
		}
		countRes, _ := world.Node(user).AggResult(countID)
		fmt.Printf("  epoch %2d: avg=%.3f over %g sensors\n", epoch, avgRes.Value(), countRes.Value())
	}
	st := world.TotalStats()
	fmt.Printf("aggregation traffic: %d partials sent, %d folded in-network\n",
		st.PartialsOut, st.PartialsCombined)
	return nil
}

func resourceVal(w *emulator.World, at tuple.NodeID, name string) (float64, bool) {
	for _, r := range gather.Discover(w.Node(at)) {
		if r.Name == name {
			return r.Distance, true
		}
	}
	return 0, false
}
