// Gathering example (§5.2): sensors advertise description fields; a
// user device discovers them from its local tuple space, walks a field
// back to its source, and runs a scoped query answered over the query's
// own structure.
package main

import (
	"fmt"
	"log"
	"math"

	"tota/internal/emulator"
	"tota/internal/gather"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world := emulator.New(emulator.Config{Graph: topology.Grid(7, 7, 1)})
	printer := topology.NodeName(0)
	thermo := topology.NodeName(48)
	user := topology.NodeName(24) // center

	// Push model: sensors advertise themselves as gradient fields.
	if _, err := gather.Advertise(world.Node(printer), "printer", math.Inf(1),
		tuple.S("model", "LaserJet"), tuple.S("floor", "2")); err != nil {
		return err
	}
	if _, err := gather.Advertise(world.Node(thermo), "thermometer", 4); err != nil {
		return err
	}
	world.Settle(100000)

	fmt.Println("user's local view of the environment:")
	for _, r := range gather.Discover(world.Node(user)) {
		fmt.Printf("  %-12s %v hops away  %v\n", r.Name, r.Distance, r.Desc)
	}

	// Walk the printer field back to its source, hop by hop, using only
	// one-hop information.
	at := user
	fmt.Printf("walking to the printer: %s", at)
	for steps := 0; steps < 50; steps++ {
		val, ok := resourceVal(world, at, "printer")
		if !ok || val == 0 {
			break
		}
		nbrVals := make(map[tuple.NodeID]float64)
		for _, nb := range world.Graph().Neighbors(at) {
			if v, ok := resourceVal(world, nb, "printer"); ok {
				nbrVals[nb] = v
			}
		}
		next, ok := gather.NextHop(val, nbrVals)
		if !ok {
			break
		}
		at = next
		fmt.Printf(" -> %s", at)
	}
	fmt.Println()
	if at == printer {
		fmt.Println("arrived at the printer without any global knowledge")
	}

	// Pull model: a scoped query answered over its own structure.
	resp := gather.NewResponder(world.Node(thermo), "temperature", func(q gather.Query) (tuple.Content, bool) {
		return tuple.Content{tuple.F("celsius", 21.5)}, true
	})
	defer resp.Close()
	if _, err := gather.Ask(world.Node(user), "temperature", "q1", math.Inf(1)); err != nil {
		return err
	}
	world.Settle(100000)
	for _, a := range gather.Answers(world.Node(user)) {
		fmt.Printf("answer to %s/%s: %v\n", a.Topic, a.QID, a.Fields)
	}
	return nil
}

func resourceVal(w *emulator.World, at tuple.NodeID, name string) (float64, bool) {
	for _, r := range gather.Discover(w.Node(at)) {
		if r.Name == name {
			return r.Distance, true
		}
	}
	return 0, false
}
