// Package tota is a from-scratch Go reproduction of "Tuples On The Air:
// a Middleware for Context-Aware Computing in Dynamic Networks" (Mamei,
// Zambonelli, Leonardi — ICDCS 2003 Workshops).
//
// The middleware lives in internal/core; the tuple model and the
// propagation-pattern library in internal/tuple and internal/pattern;
// the network substrates (simulated radio, UDP loopback, topology,
// mobility) in internal/transport, internal/topology and
// internal/mobility; the paper's application examples in
// internal/routing, internal/gather and internal/flock; and the
// reproduction of every figure and evaluation claim in
// internal/experiment (see DESIGN.md and EXPERIMENTS.md).
//
// Runnable entry points: cmd/tota-emu (the emulator), cmd/tota-node (a
// real UDP node), cmd/tota-bench (regenerates all experiment tables),
// and the examples/ directory.
package tota
