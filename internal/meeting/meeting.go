// Package meeting implements the Co-Fields meeting application the
// paper builds TOTA toward (§1, §5.3; Mamei et al., "Coordinating
// Mobility in a Ubiquitous Computing Scenario with Co-Fields"): each
// participant propagates a plain gradient field; everyone descends the
// sum of the *other* participants' fields, so the group converges on a
// meeting point that minimizes the total distance — emergently, with no
// negotiation and no global knowledge.
package meeting

import (
	"fmt"
	"math"

	"tota/internal/descent"
	"tota/internal/emulator"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/tuple"
)

// FieldName is the shared name of every participant's field; fields are
// distinguished by their tuple id's source node.
const FieldName = "meet"

// Config tunes a meeting.
type Config struct {
	// Scope bounds each participant's field (0 = unbounded).
	Scope float64
	// Speed is the participants' movement speed.
	Speed float64
	// Bounds clips movement.
	Bounds space.Rect
}

// Meeting coordinates participants toward a common point.
type Meeting struct {
	world *emulator.World
	cfg   Config
	ctl   *descent.Controller
}

// New turns the given world nodes into meeting participants, injecting
// one gradient field per participant.
func New(w *emulator.World, participants []tuple.NodeID, cfg Config) (*Meeting, error) {
	if cfg.Scope <= 0 {
		cfg.Scope = math.Inf(1)
	}
	ctl, err := descent.New(w, participants, descent.Config{Speed: cfg.Speed, Bounds: cfg.Bounds})
	if err != nil {
		return nil, fmt.Errorf("meeting: %w", err)
	}
	m := &Meeting{world: w, cfg: cfg, ctl: ctl}
	for _, id := range ctl.Agents() {
		g := pattern.NewGradient(FieldName)
		if !math.IsInf(cfg.Scope, 1) {
			g = g.Bounded(cfg.Scope)
		}
		if _, err := w.Node(id).Inject(g); err != nil {
			return nil, fmt.Errorf("meeting: inject field at %s: %w", id, err)
		}
	}
	return m, nil
}

// Participants returns the participant ids.
func (m *Meeting) Participants() []tuple.NodeID { return m.ctl.Agents() }

// potentialAt is the summed distance to all other participants as
// sensed at a node; unreachable fields are penalized with the scope (or
// a large constant when unbounded).
func (m *Meeting) potentialAt(at, self tuple.NodeID) float64 {
	n := m.world.Node(at)
	if n == nil {
		return math.Inf(1)
	}
	penalty := m.cfg.Scope
	if math.IsInf(penalty, 1) {
		penalty = 1e6
	}
	agents := m.ctl.Agents()
	byOwner := make(map[tuple.NodeID]float64, len(agents))
	for _, t := range n.Read(pattern.ByName(pattern.KindGradient, FieldName)) {
		g, ok := t.(*pattern.Gradient)
		if !ok {
			continue
		}
		owner := g.ID().Node
		if owner == self {
			continue
		}
		if old, seen := byOwner[owner]; !seen || g.Val < old {
			byOwner[owner] = g.Val
		}
	}
	total := 0.0
	for _, other := range agents {
		if other == self {
			continue
		}
		if v, ok := byOwner[other]; ok {
			total += v
		} else {
			total += penalty
		}
	}
	return total
}

// Step runs one coordination round and advances the world by dt.
func (m *Meeting) Step(dt float64) {
	m.ctl.Step(m.potentialAt, dt)
}

// Run executes rounds coordination steps with network settling in
// between, returning the Spread series.
func (m *Meeting) Run(rounds int, dt float64, settleRounds int) []float64 {
	out := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		m.Step(dt)
		m.world.Settle(settleRounds)
		out = append(out, m.Spread())
	}
	return out
}

// Spread is the meeting progress metric: the maximum pairwise hop
// distance between participants (0 = everyone at the same node).
func (m *Meeting) Spread() float64 {
	agents := m.ctl.Agents()
	maxD := 0.0
	g := m.world.Graph()
	for i, a := range agents {
		dist := g.BFSDistances(a)
		for _, b := range agents[i+1:] {
			d, ok := dist[b]
			if !ok {
				return math.Inf(1)
			}
			if float64(d) > maxD {
				maxD = float64(d)
			}
		}
	}
	return maxD
}
