package meeting

import (
	"fmt"
	"testing"

	"tota/internal/emulator"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// meetingWorld builds a 9×9 relay grid with participants hovering over
// three corners.
func meetingWorld(t *testing.T, count int) (*emulator.World, []tuple.NodeID) {
	t.Helper()
	g := topology.Grid(9, 9, 1)
	corners := []space.Point{
		{X: 0.5, Y: 0.5},
		{X: 7.5, Y: 0.5},
		{X: 0.5, Y: 7.5},
		{X: 7.5, Y: 7.5},
	}
	var ids []tuple.NodeID
	for i := 0; i < count; i++ {
		id := tuple.NodeID(fmt.Sprintf("user%d", i))
		g.SetPosition(id, corners[i%len(corners)])
		ids = append(ids, id)
	}
	g.Recompute(1.2)
	w := emulator.New(emulator.Config{Graph: g, RadioRange: 1.2})
	return w, ids
}

func TestParticipantsConvergeToMeetingPoint(t *testing.T) {
	w, ids := meetingWorld(t, 3)
	m, err := New(w, ids, Config{
		Speed:  0.5,
		Bounds: space.Rect{Max: space.Point{X: 8, Y: 8}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.Settle(100000)

	initial := m.Spread()
	if initial < 5 {
		t.Fatalf("participants start too close (spread %v)", initial)
	}
	spreads := m.Run(150, 1, 100000)
	final := spreads[len(spreads)-1]
	if final > 2 {
		t.Errorf("final spread = %v, want <= 2 (initial %v)", final, initial)
	}
	if final >= initial {
		t.Errorf("spread did not shrink: %v -> %v", initial, final)
	}
}

func TestMeetingValidation(t *testing.T) {
	w, _ := meetingWorld(t, 2)
	if _, err := New(w, []tuple.NodeID{"ghost"}, Config{Speed: 1}); err == nil {
		t.Error("unknown participant accepted")
	}
}

func TestSpreadSingleParticipant(t *testing.T) {
	w, ids := meetingWorld(t, 1)
	m, err := New(w, ids, Config{Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Spread() != 0 {
		t.Errorf("single-participant spread = %v", m.Spread())
	}
	if got := m.Participants(); len(got) != 1 {
		t.Errorf("Participants = %v", got)
	}
}
