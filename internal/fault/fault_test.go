package fault_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tota/internal/emulator"
	"tota/internal/fault"
	"tota/internal/mobility"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func TestParsePlanGrammar(t *testing.T) {
	plan, err := fault.ParsePlan(
		"crash@50-70:n5; loss@10-30:0.4; partition@20-40:n0,n1;" +
			"linkloss@10-20:a,b,0.9; linkdelay@10-20:a,b,3,2;" +
			"delay@10-20:3; corrupt@15-25:0.05; dup@5-15:0.2; pause@5-9:n3,n4;" +
			"loss@100:0.5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(plan.Events) != 10 {
		t.Fatalf("parsed %d events, want 10", len(plan.Events))
	}
	if !sort.SliceIsSorted(plan.Events, func(i, j int) bool {
		return plan.Events[i].From < plan.Events[j].From
	}) {
		t.Error("events not sorted by From")
	}
	if got := plan.MaxTick(); got != 100 {
		t.Errorf("MaxTick = %d, want 100", got)
	}
	byKind := make(map[fault.Kind]fault.Event)
	for _, e := range plan.Events {
		if e.Kind != fault.Loss { // two loss events; keep the windowed one
			byKind[e.Kind] = e
		} else if e.Until != 0 {
			byKind[e.Kind] = e
		}
	}
	if e := byKind[fault.Loss]; e.From != 10 || e.Until != 30 || e.P != 0.4 {
		t.Errorf("loss event = %+v", e)
	}
	if e := byKind[fault.Partition]; len(e.Nodes) != 2 || e.Nodes[0] != "n0" || e.Nodes[1] != "n1" {
		t.Errorf("partition event = %+v", e)
	}
	if e := byKind[fault.LinkLoss]; len(e.Nodes) != 2 || e.Nodes[0] != "a" || e.Nodes[1] != "b" || e.P != 0.9 {
		t.Errorf("linkloss event = %+v", e)
	}
	if e := byKind[fault.LinkDelay]; e.Rounds != 3 || e.Jitter != 2 {
		t.Errorf("linkdelay event = %+v", e)
	}
	if e := byKind[fault.Crash]; e.From != 50 || e.Until != 70 || len(e.Nodes) != 1 || e.Nodes[0] != "n5" {
		t.Errorf("crash event = %+v", e)
	}
	// The unwindowed event never heals.
	for _, e := range plan.Events {
		if e.Kind == fault.Loss && e.From == 100 && e.Until != 0 {
			t.Errorf("unwindowed loss got Until = %d", e.Until)
		}
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"loss10-30:0.4",        // missing @
		"loss@10-30",           // missing args
		"meteor@10-30:0.4",     // unknown kind
		"loss@-1-30:0.4",       // negative from
		"loss@30-10:0.4",       // until <= from
		"loss@10-30:1.5",       // probability out of range
		"loss@10-30:0.4,0.5",   // too many args
		"delay@10-30:0",        // rounds < 1
		"partition@10-30:",     // empty node list
		"linkloss@10-30:a,0.5", // missing peer
		"linkdelay@1-2:a,b,3",  // missing jitter
		"crash@x-30:n1",        // non-numeric tick
	} {
		if _, err := fault.ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", spec)
		}
	}
}

// lineWorld builds a scripted-topology (no radio range) line world with
// per-tick anti-entropy, converged on one infinite gradient from node 0.
func lineWorld(t *testing.T, n int) (*emulator.World, tuple.NodeID) {
	t.Helper()
	w := emulator.New(emulator.Config{
		Graph:        topology.Line(n),
		RefreshEvery: 1,
		Seed:         11,
	})
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	w.Settle(100000)
	return w, src
}

func assertCoherent(t *testing.T, w *emulator.World, src tuple.NodeID, when string) {
	t.Helper()
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
	if meanAbs != 0 || missing != 0 || extra != 0 {
		t.Errorf("%s: structure incoherent: err=%v missing=%d extra=%d", when, meanAbs, missing, extra)
	}
}

// TestInjectorLossWindowActivatesAndHeals: a total-loss window drops
// every frame for exactly its ticks, then the baseline (lossless) radio
// returns and anti-entropy heals any damage.
func TestInjectorLossWindowActivatesAndHeals(t *testing.T) {
	w, src := lineWorld(t, 3)
	fault.New(w, fault.Plan{Events: []fault.Event{
		{Kind: fault.Loss, From: 2, Until: 5, P: 1},
	}})

	w.Tick(1) // tick 1: no fault yet
	pre := w.Sim().Stats()
	if pre.Dropped != 0 {
		t.Fatalf("lossless baseline dropped %d packets", pre.Dropped)
	}
	for i := 0; i < 3; i++ { // ticks 2,3,4: the window
		w.Tick(1)
	}
	during := w.Sim().Stats()
	if during.Dropped == 0 {
		t.Error("total-loss window dropped nothing (refresh traffic must exist each tick)")
	}
	w.Tick(1) // tick 5: heal fires before this tick's traffic
	w.Tick(1)
	after := w.Sim().Stats()
	if after.Dropped != during.Dropped {
		t.Errorf("drops continued after the heal: %d -> %d", during.Dropped, after.Dropped)
	}
	w.Settle(100000)
	assertCoherent(t, w, src, "after loss window")
}

// TestInjectorCrashRestartRejoins: crashing the middle of a line tears
// the far side's structure down; restarting it under the same ID with
// empty state must let anti-entropy rebuild everything.
func TestInjectorCrashRestartRejoins(t *testing.T) {
	w, src := lineWorld(t, 3)
	mid := topology.NodeName(1)
	fault.New(w, fault.Plan{Events: []fault.Event{
		{Kind: fault.Crash, From: 2, Until: 8, Nodes: []tuple.NodeID{mid}},
	}})

	for i := 0; i < 2; i++ {
		w.Tick(1)
	}
	if w.Node(mid) != nil {
		t.Fatal("node still present during its crash window")
	}
	if w.Graph().Len() != 2 {
		t.Fatalf("graph still has %d nodes during the crash", w.Graph().Len())
	}
	for i := 0; i < 10; i++ {
		w.Tick(1)
	}
	n := w.Node(mid)
	if n == nil {
		t.Fatal("node not restarted after its crash window")
	}
	if len(w.Graph().Neighbors(mid)) != 2 {
		t.Errorf("restarted node has %d links, want its 2 scripted links back", len(w.Graph().Neighbors(mid)))
	}
	w.Settle(100000)
	assertCoherent(t, w, src, "after crash/restart")
	// The restart really was state-loss + rejoin, not a freeze: the new
	// incarnation re-learned the gradient from scratch.
	if got := len(n.Read(pattern.ByName(pattern.KindGradient, "f"))); got != 1 {
		t.Errorf("restarted node holds %d copies of the gradient, want 1", got)
	}
}

// TestInjectorPartitionCutsSilentlyAndHeals: a partition window blocks
// cross-cut frames without neighbor events; after the heal the cut-off
// side catches back up.
func TestInjectorPartitionCutsSilentlyAndHeals(t *testing.T) {
	w, src := lineWorld(t, 4)
	far := []tuple.NodeID{topology.NodeName(2), topology.NodeName(3)}
	fault.New(w, fault.Plan{Events: []fault.Event{
		{Kind: fault.Partition, From: 1, Until: 6, Nodes: far},
	}})

	for i := 0; i < 4; i++ {
		w.Tick(1)
	}
	st := w.Sim().Stats()
	if st.Blocked == 0 {
		t.Error("partition blocked nothing despite per-tick refresh traffic")
	}
	// The far side still holds its (now unsupported-looking) copies or
	// has torn them down — either way no neighbor-down events fired: the
	// cut is silent, so support-based maintenance is what reacts, not
	// discovery. After the heal, coherence must return.
	for i := 0; i < 6; i++ {
		w.Tick(1)
	}
	w.Settle(100000)
	assertCoherent(t, w, src, "after partition heal")
}

// TestInjectorPauseStallsAndResumes: a paused node freezes (no refresh,
// no delivery, no expiry) while its links stay up, then resumes and
// catches up.
func TestInjectorPauseStallsAndResumes(t *testing.T) {
	w, src := lineWorld(t, 3)
	end := topology.NodeName(2)
	fault.New(w, fault.Plan{Events: []fault.Event{
		{Kind: fault.Pause, From: 1, Until: 5, Nodes: []tuple.NodeID{end}},
	}})

	w.Tick(1)
	if !w.Sim().Paused(end) {
		t.Fatal("node not paused inside its window")
	}
	inDuring := w.Node(end).Stats().PacketsIn
	for i := 0; i < 2; i++ {
		w.Tick(1)
	}
	if got := w.Node(end).Stats().PacketsIn; got != inDuring {
		t.Errorf("paused node still received packets (%d -> %d)", inDuring, got)
	}
	for i := 0; i < 4; i++ {
		w.Tick(1)
	}
	if w.Sim().Paused(end) {
		t.Fatal("node still paused after its window")
	}
	if got := w.Node(end).Stats().PacketsIn; got == inDuring {
		t.Error("resumed node never received the held/new traffic")
	}
	w.Settle(100000)
	assertCoherent(t, w, src, "after pause/resume")
}

// TestInjectorOverlappingWindowsHealLast: two overlapping total-loss
// windows — healing the first must NOT restore the radio while the
// second is still open.
func TestInjectorOverlappingWindowsHealLast(t *testing.T) {
	w, _ := lineWorld(t, 2)
	fault.New(w, fault.Plan{Events: []fault.Event{
		{Kind: fault.Loss, From: 1, Until: 4, P: 1},
		{Kind: fault.Loss, From: 2, Until: 7, P: 1},
	}})

	for i := 0; i < 4; i++ { // ticks 1-4: first window opens, overlaps, heals
		w.Tick(1)
	}
	atFirstHeal := w.Sim().Stats()
	w.Tick(1) // tick 5: second window still open — still total loss
	w.Tick(1) // tick 6
	stillCut := w.Sim().Stats()
	if got := stillCut.Delivered - atFirstHeal.Delivered; got != 0 {
		t.Errorf("%d packets delivered while the overlapping window was still open", got)
	}
	if stillCut.Dropped == atFirstHeal.Dropped {
		t.Error("no drops while the overlapping window was still open")
	}
	w.Tick(1) // tick 7: last window heals before traffic
	w.Tick(1)
	healed := w.Sim().Stats()
	if healed.Delivered == stillCut.Delivered {
		t.Error("radio never recovered after the last overlapping window healed")
	}
	if healed.Dropped != stillCut.Dropped {
		t.Errorf("drops continued after the last heal: %d -> %d", stillCut.Dropped, healed.Dropped)
	}
}

// TestInjectorCorruptWindowFeedsDecoder: corrupted frames reach the
// real wire decoder (DecodeErrors) instead of being silently dropped,
// and the structure survives.
func TestInjectorCorruptWindowFeedsDecoder(t *testing.T) {
	w, src := lineWorld(t, 3)
	fault.New(w, fault.Plan{Events: []fault.Event{
		{Kind: fault.Corrupt, From: 1, Until: 8, P: 1},
	}})
	for i := 0; i < 10; i++ {
		w.Tick(1)
	}
	if got := w.Sim().Stats().Corrupted; got == 0 {
		t.Fatal("corruption window corrupted nothing")
	}
	if got := w.TotalStats().DecodeErrors; got == 0 {
		t.Error("corrupted frames never reached the wire decoder")
	}
	w.Settle(100000)
	// The wire checksum makes corrupted frames undecodable, so recovery
	// must be exact: no residue from tampered values can enter the space.
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
	if meanAbs != 0 || missing != 0 || extra != 0 {
		t.Errorf("after corruption window: err=%v missing=%d extra=%d", meanAbs, missing, extra)
	}
}

// chaosPlan is a plan exercising every fault kind within 30 ticks.
func chaosPlan() fault.Plan {
	n := topology.NodeName
	return fault.Plan{Events: []fault.Event{
		{Kind: fault.Loss, From: 2, Until: 8, P: 0.5},
		{Kind: fault.Corrupt, From: 4, Until: 10, P: 0.3},
		{Kind: fault.Dup, From: 5, Until: 12, P: 0.4},
		{Kind: fault.LinkLoss, From: 6, Until: 14, Nodes: []tuple.NodeID{n(1), n(2)}, P: 0.9},
		{Kind: fault.LinkDelay, From: 6, Until: 14, Nodes: []tuple.NodeID{n(2), n(3)}, Rounds: 2, Jitter: 2},
		{Kind: fault.Delay, From: 9, Until: 13, Rounds: 3},
		{Kind: fault.Partition, From: 10, Until: 16, Nodes: []tuple.NodeID{n(4), n(5)}},
		{Kind: fault.Crash, From: 12, Until: 20, Nodes: []tuple.NodeID{n(7)}},
		{Kind: fault.Pause, From: 15, Until: 22, Nodes: []tuple.NodeID{n(8)}},
	}}
}

// fingerprint summarizes the full distributed state (every node's
// stored tuples) plus the summed engine counters.
func fingerprint(w *emulator.World) string {
	var b strings.Builder
	for _, id := range w.Nodes() {
		ts := w.Node(id).Read(tuple.MatchAll())
		lines := make([]string, 0, len(ts))
		for _, t := range ts {
			lines = append(lines, fmt.Sprintf("%s|%s|%s", t.Kind(), t.ID(), t.Content()))
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s:{%s}\n", id, strings.Join(lines, ";"))
	}
	fmt.Fprintf(&b, "stats:%+v\n", w.TotalStats())
	return b.String()
}

// runChaosScenario drives a mobile lossy world through the full fault
// matrix and returns its final fingerprint.
func runChaosScenario(seed int64, workers int) string {
	rng := rand.New(rand.NewSource(seed))
	g := topology.ConnectedRandomGeometric(24, 10, 3, rng, 100)
	if g == nil {
		return "no-layout"
	}
	w := emulator.New(emulator.Config{
		Graph:        g,
		RadioRange:   3,
		Loss:         0.1,
		RefreshEvery: 3,
		Seed:         seed,
		Workers:      workers,
	})
	bounds := space.Rect{Max: space.Point{X: 10, Y: 10}}
	for i, id := range g.Nodes() {
		if i%4 == 0 && id != topology.NodeName(0) {
			p, _ := g.Position(id)
			w.SetMover(id, mobility.NewRandomWaypoint(p, bounds, 0.5, 1, 0, rng))
		}
	}
	fault.New(w, chaosPlan())
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewGradient("f")); err != nil {
		return "inject-failed"
	}
	for i := 0; i < 30; i++ {
		w.Tick(0.5)
	}
	w.Settle(100000)
	return fingerprint(w)
}

// TestFaultPlanDeterministicAcrossWorkers extends the emulator's
// same-seed-same-universe guarantee to active fault injection: with
// loss, corruption, duplication, link faults, delays, a partition, a
// crash/restart and a pause all firing, the final distributed state and
// every engine counter are bit-identical whether the radio delivers
// serially or on a parallel worker pool.
func TestFaultPlanDeterministicAcrossWorkers(t *testing.T) {
	serial := runChaosScenario(99, 1)
	if serial == "no-layout" || serial == "inject-failed" {
		t.Fatalf("scenario setup failed: %s", serial)
	}
	if again := runChaosScenario(99, 1); again != serial {
		t.Fatal("same seed diverged under fault injection (serial)")
	}
	for _, workers := range []int{2, 8} {
		if got := runChaosScenario(99, workers); got != serial {
			t.Errorf("workers=%d: universe diverged from serial run under fault injection", workers)
		}
	}
	if other := runChaosScenario(100, 1); other == serial {
		t.Error("different seeds produced identical universes (suspicious)")
	}
}
