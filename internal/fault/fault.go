// Package fault is a deterministic, scripted fault-injection subsystem
// for the TOTA emulator: it composes timed fault windows — loss bursts,
// asymmetric per-link degradation, network partitions, frame
// corruption, node crash/restart cycles, and pause/resume stalls — and
// drives them against a running emulator.World on its step clock.
//
// Determinism: the injector itself draws no randomness. Every window is
// scheduled by tick number, and all probabilistic effects (which packet
// is lost, which bytes flip, how much jitter a packet gets) draw from
// the simulated radio's seeded RNG in its deterministic merge order.
// A seeded emulation with a fault plan is therefore bit-identical
// across runs and across delivery worker counts.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tota/internal/emulator"
	"tota/internal/space"
	"tota/internal/tuple"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Loss sets the global per-packet drop probability to P for the
	// window, restoring the world's baseline loss on heal.
	Loss Kind = iota
	// Dup sets the global duplication probability to P for the window.
	Dup
	// LinkLoss sets the drop probability of the directional link
	// Nodes[0] -> Nodes[1] to P, clearing the override on heal.
	LinkLoss
	// Delay sets the global radio latency to Rounds for the window,
	// restoring 1 round on heal.
	Delay
	// LinkDelay sets the latency of Nodes[0] -> Nodes[1] to Rounds
	// plus up to Jitter extra seeded-random rounds per packet.
	LinkDelay
	// Corrupt sets the probability of injected byte flips to P; the
	// flips travel through the real wire decoder at the receiver.
	Corrupt
	// Partition cuts Nodes off from the rest of the network with no
	// neighbor events (silent cut), healing it at the window's end.
	Partition
	// Crash removes Nodes at the window start (links drop, middleware
	// state is lost) and restarts them at the window end: same IDs,
	// same positions, empty state — the rejoin path the paper's
	// newcomer catch-up and anti-entropy must handle.
	Crash
	// Pause suspends Nodes' processing (no refresh, no delivery, no
	// expiry) while keeping their links — a GC stall or sleep state —
	// resuming them at the window end.
	Pause
)

var kindNames = map[Kind]string{
	Loss:      "loss",
	Dup:       "dup",
	LinkLoss:  "linkloss",
	Delay:     "delay",
	LinkDelay: "linkdelay",
	Corrupt:   "corrupt",
	Partition: "partition",
	Crash:     "crash",
	Pause:     "pause",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown-fault"
}

// Event is one scripted fault window: the fault activates on tick From
// and heals on tick Until (exclusive; Until <= From means the fault
// never heals).
type Event struct {
	Kind Kind
	// From and Until bound the window in emulator ticks.
	From, Until int
	// Nodes are the fault's targets: the partitioned set, the
	// crashed/paused nodes, or the (from, to) pair of a link fault.
	Nodes []tuple.NodeID
	// P is the probability parameter of Loss/Dup/LinkLoss/Corrupt.
	P float64
	// Rounds and Jitter parameterize Delay/LinkDelay.
	Rounds, Jitter int
}

// Plan is a composable fault script. Windows may overlap freely except
// that only one Partition can be active at a time (the radio models a
// single cut).
type Plan struct {
	Events []Event
}

// MaxTick returns the last tick at which the plan still transitions
// state — a lower bound for how long a scenario must run to see every
// fault heal.
func (p Plan) MaxTick() int {
	max := 0
	for _, e := range p.Events {
		if e.From > max {
			max = e.From
		}
		if e.Until > max {
			max = e.Until
		}
	}
	return max
}

// crashState remembers what a crashed node needs to rejoin: its
// position and (for worlds without a radio range, where links are
// scripted) its edge set.
type crashState struct {
	pos   space.Point
	hasP  bool
	edges []tuple.NodeID
}

// Injector drives a Plan against a World. Create it with New — it
// registers itself as the world's fault hook — and step the world
// normally; faults activate and heal on their scheduled ticks.
type Injector struct {
	w       *emulator.World
	plan    Plan
	crashed map[tuple.NodeID]crashState
	// active counts currently-open windows per kind, so overlapping
	// same-kind windows heal only when the last one closes.
	active map[Kind]int
}

// New builds an injector for the plan and installs it as w's fault
// hook. The plan's events may be in any order.
func New(w *emulator.World, plan Plan) *Injector {
	in := &Injector{
		w:       w,
		plan:    plan,
		crashed: make(map[tuple.NodeID]crashState),
		active:  make(map[Kind]int),
	}
	w.SetFaultHook(in.Apply)
	return in
}

// Apply fires every window transition scheduled for the given tick:
// heals first (so a back-to-back window of the same kind re-activates
// cleanly), then activations. Called by World.Tick; idempotent per
// tick because transitions are exact tick matches.
func (in *Injector) Apply(tick int) {
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if e.Until > e.From && e.Until == tick {
			in.heal(e)
		}
	}
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if e.From == tick {
			in.activate(e)
		}
	}
}

func (in *Injector) activate(e *Event) {
	sim := in.w.Sim()
	in.active[e.Kind]++
	switch e.Kind {
	case Loss:
		sim.SetLoss(e.P)
	case Dup:
		sim.SetDup(e.P)
	case LinkLoss:
		if len(e.Nodes) == 2 {
			sim.SetLinkLoss(e.Nodes[0], e.Nodes[1], e.P)
		}
	case Delay:
		sim.SetDelay(e.Rounds)
	case LinkDelay:
		if len(e.Nodes) == 2 {
			sim.SetLinkDelay(e.Nodes[0], e.Nodes[1], e.Rounds, e.Jitter)
		}
	case Corrupt:
		sim.SetCorrupt(e.P)
	case Partition:
		sim.SetPartition(e.Nodes...)
	case Crash:
		for _, id := range e.Nodes {
			in.crash(id)
		}
	case Pause:
		for _, id := range e.Nodes {
			sim.Pause(id)
		}
	}
}

func (in *Injector) heal(e *Event) {
	sim := in.w.Sim()
	if in.active[e.Kind] > 0 {
		in.active[e.Kind]--
	}
	last := in.active[e.Kind] == 0
	switch e.Kind {
	case Loss:
		if last {
			sim.SetLoss(in.w.Config().Loss)
		}
	case Dup:
		if last {
			sim.SetDup(0)
		}
	case LinkLoss:
		if len(e.Nodes) == 2 {
			sim.SetLinkLoss(e.Nodes[0], e.Nodes[1], -1)
		}
	case Delay:
		if last {
			sim.SetDelay(1)
		}
	case LinkDelay:
		if len(e.Nodes) == 2 {
			sim.SetLinkDelay(e.Nodes[0], e.Nodes[1], 0, 0)
		}
	case Corrupt:
		if last {
			sim.SetCorrupt(0)
		}
	case Partition:
		if last {
			sim.SetPartition()
		}
	case Crash:
		for _, id := range e.Nodes {
			in.restart(id)
		}
	case Pause:
		for _, id := range e.Nodes {
			sim.Resume(id)
		}
	}
}

// crash removes a node, recording what its restart needs.
func (in *Injector) crash(id tuple.NodeID) {
	if in.w.Node(id) == nil {
		return
	}
	g := in.w.Graph()
	pos, hasP := g.Position(id)
	cs := crashState{pos: pos, hasP: hasP}
	if in.w.Config().RadioRange <= 0 {
		// Scripted-topology world: links will not regrow from
		// positions, so remember them for the rejoin.
		cs.edges = append(cs.edges, g.Neighbors(id)...)
	}
	in.crashed[id] = cs
	in.w.RemoveNode(id)
}

// restart rejoins a crashed node under its old ID with empty state:
// fresh middleware, old position, and (in scripted-topology worlds)
// its old links, which fire the newcomer catch-up path.
func (in *Injector) restart(id tuple.NodeID) {
	cs, ok := in.crashed[id]
	if !ok {
		return
	}
	delete(in.crashed, id)
	in.w.AddNode(id, cs.pos)
	for _, nbr := range cs.edges {
		if in.w.Node(nbr) != nil {
			in.w.AddEdge(id, nbr)
		}
	}
}

// ParsePlan builds a Plan from a compact spec string, the tota-emu
// -fault flag format: semicolon-separated events, each
//
//	kind@from-until:args
//
// where from-until is the tick window (until omitted = never heals)
// and args depend on the kind:
//
//	loss@10-30:0.4           global loss 40% during ticks [10,30)
//	dup@5-15:0.2             global duplication 20%
//	corrupt@15-25:0.05       5% of packets get byte flips
//	delay@10-20:3            global latency 3 rounds
//	partition@20-40:n0,n1    cut {n0,n1} off, heal at 40
//	crash@50-70:n5           crash n5 at 50, restart at 70
//	pause@5-9:n3,n4          stall n3 and n4
//	linkloss@10-20:a,b,0.9   a->b loses 90% (asymmetric)
//	linkdelay@10-20:a,b,3,2  a->b takes 3..5 rounds
func ParsePlan(spec string) (Plan, error) {
	var plan Plan
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Plan{}, err
		}
		plan.Events = append(plan.Events, ev)
	}
	sort.SliceStable(plan.Events, func(i, j int) bool {
		return plan.Events[i].From < plan.Events[j].From
	})
	return plan, nil
}

func parseEvent(s string) (Event, error) {
	head, args, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: missing ':' args", s)
	}
	kindStr, window, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: missing '@' window", s)
	}
	var ev Event
	found := false
	for k, name := range kindNames {
		if name == kindStr {
			ev.Kind = k
			found = true
			break
		}
	}
	if !found {
		return Event{}, fmt.Errorf("fault: event %q: unknown kind %q", s, kindStr)
	}
	fromStr, untilStr, hasUntil := strings.Cut(window, "-")
	from, err := strconv.Atoi(fromStr)
	if err != nil || from < 0 {
		return Event{}, fmt.Errorf("fault: event %q: bad from tick %q", s, fromStr)
	}
	ev.From = from
	if hasUntil {
		until, err := strconv.Atoi(untilStr)
		if err != nil || until <= from {
			return Event{}, fmt.Errorf("fault: event %q: bad until tick %q", s, untilStr)
		}
		ev.Until = until
	}
	fields := strings.Split(args, ",")
	switch ev.Kind {
	case Loss, Dup, Corrupt:
		if len(fields) != 1 {
			return Event{}, fmt.Errorf("fault: event %q: want one probability", s)
		}
		if ev.P, err = parseProb(fields[0]); err != nil {
			return Event{}, fmt.Errorf("fault: event %q: %w", s, err)
		}
	case Delay:
		if len(fields) != 1 {
			return Event{}, fmt.Errorf("fault: event %q: want one round count", s)
		}
		if ev.Rounds, err = strconv.Atoi(fields[0]); err != nil || ev.Rounds < 1 {
			return Event{}, fmt.Errorf("fault: event %q: bad rounds %q", s, fields[0])
		}
	case Partition, Crash, Pause:
		if len(fields) == 0 || fields[0] == "" {
			return Event{}, fmt.Errorf("fault: event %q: want node list", s)
		}
		for _, f := range fields {
			ev.Nodes = append(ev.Nodes, tuple.NodeID(strings.TrimSpace(f)))
		}
	case LinkLoss:
		if len(fields) != 3 {
			return Event{}, fmt.Errorf("fault: event %q: want from,to,probability", s)
		}
		ev.Nodes = []tuple.NodeID{tuple.NodeID(strings.TrimSpace(fields[0])), tuple.NodeID(strings.TrimSpace(fields[1]))}
		if ev.P, err = parseProb(fields[2]); err != nil {
			return Event{}, fmt.Errorf("fault: event %q: %w", s, err)
		}
	case LinkDelay:
		if len(fields) != 4 {
			return Event{}, fmt.Errorf("fault: event %q: want from,to,rounds,jitter", s)
		}
		ev.Nodes = []tuple.NodeID{tuple.NodeID(strings.TrimSpace(fields[0])), tuple.NodeID(strings.TrimSpace(fields[1]))}
		if ev.Rounds, err = strconv.Atoi(fields[2]); err != nil || ev.Rounds < 1 {
			return Event{}, fmt.Errorf("fault: event %q: bad rounds %q", s, fields[2])
		}
		if ev.Jitter, err = strconv.Atoi(fields[3]); err != nil || ev.Jitter < 0 {
			return Event{}, fmt.Errorf("fault: event %q: bad jitter %q", s, fields[3])
		}
	}
	return ev, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	return p, nil
}
