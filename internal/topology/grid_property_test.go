package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tota/internal/space"
	"tota/internal/tuple"
)

// eventsEqual compares two event slices element-wise (nil and empty are
// equivalent: both mean "no change").
func eventsEqual(a, b []EdgeEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// edgeSet flattens a graph's edges into canonical "a|b" strings.
func edgeSet(g *Graph) map[string]bool {
	out := make(map[string]bool)
	for _, a := range g.Nodes() {
		for _, b := range g.Neighbors(a) {
			if a < b {
				out[string(a)+"|"+string(b)] = true
			}
		}
	}
	return out
}

func edgeSetsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestRecomputeMatchesReferenceQuick is the grid-index equivalence
// property: starting from the same random geometric layout and applying
// the same randomized edit script (moves, manual edge edits, wired
// toggles, node churn) to two graphs, the grid-indexed Recompute must
// emit the identical EdgeEvent sequence — same events, same order — as
// the O(n²) all-pairs reference, and leave the identical edge set.
func TestRecomputeMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		const (
			n      = 40
			side   = 12.0
			radius = 3.0
			rounds = 8
		)
		rng := rand.New(rand.NewSource(seed))
		grid, ref := New(), New()
		for i := 0; i < n; i++ {
			p := space.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
			grid.SetPosition(NodeName(i), p)
			ref.SetPosition(NodeName(i), p)
		}
		if !eventsEqual(grid.Recompute(radius), ref.RecomputeReference(radius)) {
			return false
		}
		for round := 0; round < rounds; round++ {
			// One scripted batch of edits, applied to both graphs.
			edits := 1 + rng.Intn(6)
			for e := 0; e < edits; e++ {
				i := rng.Intn(n)
				id := NodeName(i)
				switch rng.Intn(10) {
				case 0: // manual edge add (may be out of range)
					other := NodeName(rng.Intn(n))
					grid.AddEdge(id, other)
					ref.AddEdge(id, other)
				case 1: // manual edge remove (may be re-added next pass)
					nbrs := grid.Neighbors(id)
					if len(nbrs) > 0 {
						other := nbrs[rng.Intn(len(nbrs))]
						grid.RemoveEdge(id, other)
						ref.RemoveEdge(id, other)
					}
				case 2: // wired toggle
					w := rng.Intn(2) == 0
					grid.SetWired(id, w)
					ref.SetWired(id, w)
				case 3: // node departure + re-arrival (handle recycling)
					grid.RemoveNode(id)
					ref.RemoveNode(id)
					p := space.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
					grid.SetPosition(id, p)
					ref.SetPosition(id, p)
				default: // move (the common case)
					p := space.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
					grid.SetPosition(id, p)
					ref.SetPosition(id, p)
				}
			}
			if !eventsEqual(grid.Recompute(radius), ref.RecomputeReference(radius)) {
				return false
			}
			if !edgeSetsEqual(edgeSet(grid), edgeSet(ref)) {
				return false
			}
		}
		// Quiescent pass: the dirty-set short-circuit must emit nothing,
		// matching the reference's no-change pass.
		return eventsEqual(grid.Recompute(radius), ref.RecomputeReference(radius))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRecomputeDirtyShortCircuit pins the satellite fix: a Recompute
// pass with no pending changes returns nil without rescanning.
func TestRecomputeDirtyShortCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := RandomGeometric(50, 10, 2.5, rng)
	if ev := g.Recompute(2.5); ev != nil {
		t.Fatalf("idle Recompute = %v, want nil", ev)
	}
	// A single move dirties exactly one node; the pass still works.
	g.SetPosition(NodeName(0), space.Point{X: 100, Y: 100})
	g.Recompute(2.5)
	if ev := g.Recompute(2.5); ev != nil {
		t.Fatalf("idle Recompute after move = %v, want nil", ev)
	}
}

// TestRecomputeRangeChangeRescansAll pins the grid-rebuild path: when
// the radio range changes between calls, every node is re-judged even
// if none moved.
func TestRecomputeRangeChangeRescansAll(t *testing.T) {
	g := New()
	g.SetPosition("a", space.Point{X: 0, Y: 0})
	g.SetPosition("b", space.Point{X: 2, Y: 0})
	if ev := g.Recompute(1.0); len(ev) != 0 {
		t.Fatalf("events at range 1 = %v", ev)
	}
	ev := g.Recompute(3.0)
	if len(ev) != 1 || !ev[0].Added {
		t.Fatalf("events after widening range = %v, want one addition", ev)
	}
	ev = g.Recompute(1.0)
	if len(ev) != 1 || ev[0].Added {
		t.Fatalf("events after narrowing range = %v, want one removal", ev)
	}
}

// TestShardHandlesPartition checks that ShardHandles is a partition of
// the alive handles preserving sorted order inside each bucket, for any
// shard count, with and without a built grid.
func TestShardHandlesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gridded := RandomGeometric(60, 15, 2, rng)
	plain := Line(60) // no positions → stripe fallback
	for _, g := range []*Graph{gridded, plain} {
		want := g.Nodes()
		for _, shards := range []int{1, 2, 3, 7, 16, 100} {
			bufs := g.ShardHandles(shards, nil)
			if len(bufs) != shards {
				t.Fatalf("shards=%d: got %d buckets", shards, len(bufs))
			}
			seen := make(map[tuple.NodeID]bool)
			total := 0
			for _, b := range bufs {
				var prev tuple.NodeID
				for i, h := range b {
					id := g.IDAt(h)
					if id == "" {
						t.Fatalf("shards=%d: dead handle %d in bucket", shards, h)
					}
					if seen[id] {
						t.Fatalf("shards=%d: node %s in two buckets", shards, id)
					}
					seen[id] = true
					if i > 0 && id <= prev {
						t.Fatalf("shards=%d: bucket not id-sorted at %s", shards, id)
					}
					prev = id
					total++
				}
			}
			if total != len(want) {
				t.Fatalf("shards=%d: partition covers %d of %d nodes", shards, total, len(want))
			}
		}
	}
}

// TestHandleAccessors covers the handle-level API surface.
func TestHandleAccessors(t *testing.T) {
	g := New()
	g.SetPosition("a", space.Point{X: 1, Y: 2})
	h, ok := g.Handle("a")
	if !ok {
		t.Fatal("Handle(a) missing")
	}
	if id := g.IDAt(h); id != "a" {
		t.Errorf("IDAt = %q", id)
	}
	if p, ok := g.PositionAt(h); !ok || p != (space.Point{X: 1, Y: 2}) {
		t.Errorf("PositionAt = %v, %v", p, ok)
	}
	g.SetPositionAt(h, space.Point{X: 5, Y: 6})
	if p, _ := g.Position("a"); p != (space.Point{X: 5, Y: 6}) {
		t.Errorf("Position after SetPositionAt = %v", p)
	}
	if g.HandleCap() < 1 {
		t.Errorf("HandleCap = %d", g.HandleCap())
	}
	if id := g.IDAt(-1); id != "" {
		t.Errorf("IDAt(-1) = %q", id)
	}
	order := g.AppendSortedHandles(nil)
	if len(order) != 1 || order[0] != h {
		t.Errorf("AppendSortedHandles = %v", order)
	}
	g.RemoveNode("a")
	if id := g.IDAt(h); id != "" {
		t.Errorf("IDAt after remove = %q", id)
	}
	if _, ok := g.PositionAt(h); ok {
		t.Error("PositionAt after remove still ok")
	}
}
