// Package topology maintains the dynamic neighborhood graph of a TOTA
// network and provides the analytical oracles (BFS distances, shortest
// paths, connectivity) that tests and experiments compare the
// distributed tuple structures against.
//
// The graph can be edited directly (the paper's drag-and-drop emulator
// rearrangements) or recomputed from node positions as a unit-disk graph
// (the MANET "in wireless range" neighborhood relation).
//
// Storage is dense and handle-indexed: every node gets a compact Handle
// into parallel slices (id, adjacency, position, wired flag, grid cell),
// so a very large mostly-idle network costs a few flat arrays instead of
// hundreds of thousands of small map allocations. Geometric recompute
// uses a uniform grid spatial index (cell size = radio range) plus a
// dirty set, so each pass visits only the nodes that moved — and only
// their 3×3 cell neighborhood — instead of scanning all O(n²) pairs.
package topology

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"tota/internal/space"
	"tota/internal/tuple"
)

// EdgeEvent reports that the link between A and B appeared or
// disappeared.
type EdgeEvent struct {
	A, B  tuple.NodeID
	Added bool
}

// String implements fmt.Stringer.
func (e EdgeEvent) String() string {
	op := "-"
	if e.Added {
		op = "+"
	}
	return fmt.Sprintf("%s%s--%s", op, e.A, e.B)
}

// Handle is a compact dense index for one node. Handles are stable for
// the lifetime of the node and may be recycled after RemoveNode, so
// holders of a Handle must drop it when the node is removed. Emulation
// layers use handles to keep their own per-node hot state in flat
// slices instead of per-node map entries.
type Handle int32

// cell addresses one bucket of the uniform grid spatial index.
type cell struct {
	cx, cy int32
}

// Graph is a dynamic undirected graph over node ids, optionally
// annotated with positions. It is safe for concurrent use.
type Graph struct {
	mu  sync.RWMutex
	idx map[tuple.NodeID]Handle

	// Dense handle-indexed node state. ids[h] == "" marks a freed slot.
	ids    []tuple.NodeID
	adj    [][]Handle // neighbor handles, sorted ascending
	pos    []space.Point
	hasPos []bool
	wired  []bool // nodes excluded from geometric recompute
	free   []Handle
	edges  int

	// sorted caches the alive handles in ascending NodeID order; it is
	// invalidated by node addition/removal, not by movement.
	sorted   []Handle
	sortedOK bool

	// Uniform grid spatial index, built lazily by the first Recompute
	// and maintained incrementally by position updates afterwards.
	gridBuilt bool
	gridRange float64 // radio range the grid was built for
	cellSize  float64 // bucket edge length (gridRange, floored at 1)
	cells     map[cell][]Handle
	cellOf    []cell
	inGrid    []bool

	// dirty lists the handles whose edges may need re-evaluation
	// (moved, manually edited, wired-flag toggled). Recompute scans only
	// these. The list may contain stale or duplicate entries; scans are
	// idempotent so both are harmless.
	dirty   []Handle
	isDirty []bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{idx: make(map[tuple.NodeID]Handle)}
}

// ensureLocked returns the handle for id, allocating a slot (recycled
// when possible) for a new node.
func (g *Graph) ensureLocked(id tuple.NodeID) Handle {
	if h, ok := g.idx[id]; ok {
		return h
	}
	var h Handle
	if n := len(g.free); n > 0 {
		h = g.free[n-1]
		g.free = g.free[:n-1]
		g.ids[h] = id
		g.adj[h] = g.adj[h][:0]
		g.pos[h] = space.Point{}
		g.hasPos[h] = false
		g.wired[h] = false
		g.cellOf[h] = cell{}
		g.inGrid[h] = false
	} else {
		h = Handle(len(g.ids))
		g.ids = append(g.ids, id)
		g.adj = append(g.adj, nil)
		g.pos = append(g.pos, space.Point{})
		g.hasPos = append(g.hasPos, false)
		g.wired = append(g.wired, false)
		g.cellOf = append(g.cellOf, cell{})
		g.inGrid = append(g.inGrid, false)
		g.isDirty = append(g.isDirty, false)
	}
	g.idx[id] = h
	g.sortedOK = false
	return h
}

func (g *Graph) markDirtyLocked(h Handle) {
	if !g.isDirty[h] {
		g.isDirty[h] = true
		g.dirty = append(g.dirty, h)
	}
}

// AddNode adds an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id tuple.NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureLocked(id)
}

// RemoveNode deletes a node and returns the edge-removal events for the
// links it had (a node crash / departure).
func (g *Graph) RemoveNode(id tuple.NodeID) []EdgeEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.idx[id]
	if !ok {
		return nil
	}
	nbrs := g.adj[h]
	events := make([]EdgeEvent, 0, len(nbrs))
	for _, nb := range nbrs {
		g.removeHalfEdgeLocked(nb, h)
		events = append(events, EdgeEvent{A: id, B: g.ids[nb]})
	}
	g.edges -= len(nbrs)
	delete(g.idx, id)
	g.ids[h] = ""
	g.adj[h] = g.adj[h][:0]
	g.hasPos[h] = false
	g.wired[h] = false
	if g.inGrid[h] {
		g.removeFromCellLocked(h)
	}
	g.isDirty[h] = false // a stale dirty-list entry is skipped by scans
	g.free = append(g.free, h)
	g.sortedOK = false
	sortEvents(events)
	return events
}

// HasNode reports whether id is in the graph.
func (g *Graph) HasNode(id tuple.NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.idx[id]
	return ok
}

// Handle returns the dense handle for id, if the node exists.
func (g *Graph) Handle(id tuple.NodeID) (Handle, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	h, ok := g.idx[id]
	return h, ok
}

// IDAt returns the node id occupying handle h ("" if the slot is free
// or out of range).
func (g *Graph) IDAt(h Handle) tuple.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if h < 0 || int(h) >= len(g.ids) {
		return ""
	}
	return g.ids[h]
}

// HandleCap returns the size of the handle space (all handles are in
// [0, HandleCap)); dense per-node side tables should be sized to it.
func (g *Graph) HandleCap() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.ids)
}

// AppendSortedHandles appends the alive handles in ascending NodeID
// order to buf and returns it. The order is the same deterministic
// order Nodes returns.
func (g *Graph) AppendSortedHandles(buf []Handle) []Handle {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureSortedLocked()
	return append(buf, g.sorted...)
}

func (g *Graph) ensureSortedLocked() {
	if g.sortedOK {
		return
	}
	g.sorted = g.sorted[:0]
	for h := range g.ids {
		if g.ids[h] != "" {
			g.sorted = append(g.sorted, Handle(h))
		}
	}
	sort.Slice(g.sorted, func(i, j int) bool {
		return g.ids[g.sorted[i]] < g.ids[g.sorted[j]]
	})
	g.sortedOK = true
}

// insertHandle inserts v into list at position i, keeping order.
func insertHandle(list []Handle, i int, v Handle) []Handle {
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list
}

// addEdgeLocked links two handles and reports whether the graph
// changed. Adjacency lists stay sorted so HasEdge is a binary search.
func (g *Graph) addEdgeLocked(a, b Handle) bool {
	if a == b {
		return false
	}
	la := g.adj[a]
	i := sort.Search(len(la), func(i int) bool { return la[i] >= b })
	if i < len(la) && la[i] == b {
		return false
	}
	g.adj[a] = insertHandle(la, i, b)
	lb := g.adj[b]
	j := sort.Search(len(lb), func(j int) bool { return lb[j] >= a })
	g.adj[b] = insertHandle(lb, j, a)
	g.edges++
	return true
}

// removeHalfEdgeLocked removes b from a's adjacency list only.
func (g *Graph) removeHalfEdgeLocked(a, b Handle) {
	la := g.adj[a]
	i := sort.Search(len(la), func(i int) bool { return la[i] >= b })
	if i < len(la) && la[i] == b {
		g.adj[a] = append(la[:i], la[i+1:]...)
	}
}

func (g *Graph) removeEdgeLocked(a, b Handle) bool {
	if !g.hasEdgeLocked(a, b) {
		return false
	}
	g.removeHalfEdgeLocked(a, b)
	g.removeHalfEdgeLocked(b, a)
	g.edges--
	return true
}

func (g *Graph) hasEdgeLocked(a, b Handle) bool {
	la := g.adj[a]
	i := sort.Search(len(la), func(i int) bool { return la[i] >= b })
	return i < len(la) && la[i] == b
}

// AddEdge links a and b (adding missing nodes) and reports whether the
// graph changed. Both endpoints are marked dirty so the next geometric
// Recompute re-judges the manual edit against the radio range, exactly
// as the all-pairs scan used to.
func (g *Graph) AddEdge(a, b tuple.NodeID) bool {
	if a == b {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ha, hb := g.ensureLocked(a), g.ensureLocked(b)
	if !g.addEdgeLocked(ha, hb) {
		return false
	}
	g.markDirtyLocked(ha)
	g.markDirtyLocked(hb)
	return true
}

// RemoveEdge unlinks a and b and reports whether the graph changed.
func (g *Graph) RemoveEdge(a, b tuple.NodeID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	ha, ok := g.idx[a]
	if !ok {
		return false
	}
	hb, ok := g.idx[b]
	if !ok {
		return false
	}
	if !g.removeEdgeLocked(ha, hb) {
		return false
	}
	g.markDirtyLocked(ha)
	g.markDirtyLocked(hb)
	return true
}

// HasEdge reports whether a and b are linked.
func (g *Graph) HasEdge(a, b tuple.NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ha, ok := g.idx[a]
	if !ok {
		return false
	}
	hb, ok := g.idx[b]
	if !ok {
		return false
	}
	return g.hasEdgeLocked(ha, hb)
}

// Neighbors returns a's neighbors in deterministic (sorted) order.
func (g *Graph) Neighbors(a tuple.NodeID) []tuple.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ha, ok := g.idx[a]
	if !ok {
		return []tuple.NodeID{}
	}
	out := make([]tuple.NodeID, 0, len(g.adj[ha]))
	for _, nb := range g.adj[ha] {
		out = append(out, g.ids[nb])
	}
	sortIDs(out)
	return out
}

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a tuple.NodeID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ha, ok := g.idx[a]
	if !ok {
		return 0
	}
	return len(g.adj[ha])
}

// Nodes returns all node ids in deterministic (sorted) order.
func (g *Graph) Nodes() []tuple.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureSortedLocked()
	out := make([]tuple.NodeID, len(g.sorted))
	for i, h := range g.sorted {
		out[i] = g.ids[h]
	}
	return out
}

// Len returns the number of nodes.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.idx)
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edges
}

// SetPosition records a node's position (adding the node if missing).
// Positions feed Recompute and the localization devices of the emulator.
func (g *Graph) SetPosition(id tuple.NodeID, p space.Point) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setPosLocked(g.ensureLocked(id), p)
}

// SetPositionAt is SetPosition by handle, skipping the id lookup — the
// emulator's mover phase uses it on its dense per-handle state.
func (g *Graph) SetPositionAt(h Handle, p space.Point) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if h < 0 || int(h) >= len(g.ids) || g.ids[h] == "" {
		return
	}
	g.setPosLocked(h, p)
}

func (g *Graph) setPosLocked(h Handle, p space.Point) {
	g.pos[h] = p
	g.hasPos[h] = true
	if g.gridBuilt {
		g.placeInGridLocked(h)
	}
	g.markDirtyLocked(h)
}

// Position returns a node's position, if one was recorded.
func (g *Graph) Position(id tuple.NodeID) (space.Point, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	h, ok := g.idx[id]
	if !ok || !g.hasPos[h] {
		return space.Point{}, false
	}
	return g.pos[h], true
}

// PositionAt is Position by handle.
func (g *Graph) PositionAt(h Handle) (space.Point, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if h < 0 || int(h) >= len(g.ids) || g.ids[h] == "" || !g.hasPos[h] {
		return space.Point{}, false
	}
	return g.pos[h], true
}

// SetWired marks a node as excluded from geometric recomputation: its
// manually-added edges persist regardless of positions. This models the
// paper's wired-Internet nodes, whose neighborhood is defined by
// addressability rather than radio range.
func (g *Graph) SetWired(id tuple.NodeID, wired bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.ensureLocked(id)
	if g.wired[h] != wired {
		g.wired[h] = wired
		g.markDirtyLocked(h)
	}
}

// cellForLocked buckets a position into the uniform grid.
func (g *Graph) cellForLocked(p space.Point) cell {
	return cell{
		cx: int32(math.Floor(p.X / g.cellSize)),
		cy: int32(math.Floor(p.Y / g.cellSize)),
	}
}

func (g *Graph) placeInGridLocked(h Handle) {
	c := g.cellForLocked(g.pos[h])
	if g.inGrid[h] {
		if c == g.cellOf[h] {
			return
		}
		g.removeFromCellLocked(h)
	}
	g.cells[c] = append(g.cells[c], h)
	g.cellOf[h] = c
	g.inGrid[h] = true
}

func (g *Graph) removeFromCellLocked(h Handle) {
	c := g.cellOf[h]
	list := g.cells[c]
	for i, m := range list {
		if m == h {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(g.cells, c)
	} else {
		g.cells[c] = list
	}
	g.inGrid[h] = false
}

// rebuildGridLocked (re)builds the spatial index for a new radio range
// and marks every positioned node dirty, so the next scan re-judges the
// whole graph — the grid equivalent of a full all-pairs pass.
func (g *Graph) rebuildGridLocked(radioRange float64) {
	g.gridBuilt = true
	g.gridRange = radioRange
	g.cellSize = radioRange
	if g.cellSize <= 0 {
		g.cellSize = 1
	}
	g.cells = make(map[cell][]Handle, len(g.idx))
	for h := range g.ids {
		g.inGrid[h] = false
		if g.ids[h] == "" || !g.hasPos[h] {
			continue
		}
		g.placeInGridLocked(Handle(h))
		g.markDirtyLocked(Handle(h))
	}
}

// pairCand is one candidate edge change found by a dirty-node scan,
// normalized so ids[a] < ids[b].
type pairCand struct {
	a, b  Handle
	added bool
}

// scanNodeLocked appends the candidate edge changes around one dirty
// handle: additions from the 3×3 cell neighborhood (any in-range node
// is at most one cell away, because cell size = radio range) and
// removals from the current adjacency list. Wired and positionless
// targets are skipped — the all-pairs scan never considered them.
// Read-only with respect to graph state, so scans parallelize.
func (g *Graph) scanNodeLocked(h Handle, r float64, out []pairCand) []pairCand {
	if g.ids[h] == "" || !g.hasPos[h] || g.wired[h] || !g.inGrid[h] {
		return out
	}
	p := g.pos[h]
	c := g.cellOf[h]
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			for _, m := range g.cells[cell{cx: c.cx + dx, cy: c.cy + dy}] {
				if m == h || g.wired[m] {
					continue
				}
				if p.Dist(g.pos[m]) <= r && !g.hasEdgeLocked(h, m) {
					out = append(out, g.normPairLocked(h, m, true))
				}
			}
		}
	}
	for _, m := range g.adj[h] {
		if g.wired[m] || !g.hasPos[m] {
			continue
		}
		if p.Dist(g.pos[m]) > r {
			out = append(out, g.normPairLocked(h, m, false))
		}
	}
	return out
}

func (g *Graph) normPairLocked(a, b Handle, added bool) pairCand {
	if g.ids[a] > g.ids[b] {
		a, b = b, a
	}
	return pairCand{a: a, b: b, added: added}
}

// parallelScanMin is the dirty-set size above which the candidate scan
// fans out over a GOMAXPROCS-bounded pool. The scan is read-only and
// the results are sorted afterwards, so the worker count never changes
// the output.
const parallelScanMin = 4096

func (g *Graph) scanDirtyLocked(r float64) []pairCand {
	workers := runtime.GOMAXPROCS(0)
	if len(g.dirty) < parallelScanMin || workers <= 1 {
		var out []pairCand
		for _, h := range g.dirty {
			out = g.scanNodeLocked(h, r, out)
		}
		return out
	}
	if workers > len(g.dirty) {
		workers = len(g.dirty)
	}
	parts := make([][]pairCand, workers)
	chunk := (len(g.dirty) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(g.dirty) {
			hi = len(g.dirty)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []pairCand
			for _, h := range g.dirty[lo:hi] {
				out = g.scanNodeLocked(h, r, out)
			}
			parts[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var out []pairCand
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Recompute rebuilds the edge set of all non-wired positioned nodes as
// a unit-disk graph with the given radio range and returns the
// resulting edge changes in deterministic order.
//
// Only nodes marked dirty since the previous call (moved, added,
// manually edited, wired-flag toggled) are re-scanned, each against its
// 3×3 grid-cell neighborhood; a call with no pending changes returns
// immediately without allocating. The emitted events are exactly those
// of the all-pairs reference scan (RecomputeReference), in the same
// sorted (A, B) order — the equivalence the property suite asserts.
func (g *Graph) Recompute(radioRange float64) []EdgeEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.gridBuilt || radioRange != g.gridRange {
		g.rebuildGridLocked(radioRange)
	}
	if len(g.dirty) == 0 {
		return nil
	}
	cands := g.scanDirtyLocked(radioRange)
	for _, h := range g.dirty {
		g.isDirty[h] = false
	}
	g.dirty = g.dirty[:0]
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if g.ids[cands[i].a] != g.ids[cands[j].a] {
			return g.ids[cands[i].a] < g.ids[cands[j].a]
		}
		return g.ids[cands[i].b] < g.ids[cands[j].b]
	})
	var events []EdgeEvent
	for i, c := range cands {
		if i > 0 && c.a == cands[i-1].a && c.b == cands[i-1].b {
			continue // both endpoints dirty: same pair found twice
		}
		if c.added {
			if g.addEdgeLocked(c.a, c.b) {
				events = append(events, EdgeEvent{A: g.ids[c.a], B: g.ids[c.b], Added: true})
			}
		} else if g.removeEdgeLocked(c.a, c.b) {
			events = append(events, EdgeEvent{A: g.ids[c.a], B: g.ids[c.b]})
		}
	}
	return events
}

// RecomputeReference is the original O(n²) all-pairs unit-disk scan,
// kept as the oracle the grid-indexed Recompute is property-tested and
// benchmarked against. It applies the same changes and emits the same
// events in the same order.
func (g *Graph) RecomputeReference(radioRange float64) []EdgeEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	elig := make([]Handle, 0, len(g.idx))
	for h := range g.ids {
		if g.ids[h] != "" && g.hasPos[h] && !g.wired[h] {
			elig = append(elig, Handle(h))
		}
	}
	sort.Slice(elig, func(i, j int) bool { return g.ids[elig[i]] < g.ids[elig[j]] })

	var events []EdgeEvent
	for i, a := range elig {
		for _, b := range elig[i+1:] {
			inRange := g.pos[a].Dist(g.pos[b]) <= radioRange
			if inRange {
				if g.addEdgeLocked(a, b) {
					events = append(events, EdgeEvent{A: g.ids[a], B: g.ids[b], Added: true})
				}
			} else if g.removeEdgeLocked(a, b) {
				events = append(events, EdgeEvent{A: g.ids[a], B: g.ids[b]})
			}
		}
	}
	// Every pair has been evaluated: pending dirty marks are satisfied.
	for _, h := range g.dirty {
		g.isDirty[h] = false
	}
	g.dirty = g.dirty[:0]
	return events
}

// ShardHandles partitions the alive handles into shards buckets for
// region-parallel stepping, reusing bufs. When the spatial index is
// built, nodes are bucketed by grid-cell column modulo shards (vertical
// stripes one radio range wide — neighbors mostly share a shard);
// otherwise the sorted order is cut into contiguous stripes. Within
// each bucket, handles keep ascending NodeID order, so any consumer
// that merges per-node output in id order is independent of the shard
// count.
func (g *Graph) ShardHandles(shards int, bufs [][]Handle) [][]Handle {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureSortedLocked()
	if shards < 1 {
		shards = 1
	}
	for len(bufs) < shards {
		bufs = append(bufs, nil)
	}
	bufs = bufs[:shards]
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	n := len(g.sorted)
	if n == 0 {
		return bufs
	}
	if !g.gridBuilt {
		for i, h := range g.sorted {
			bufs[i*shards/n] = append(bufs[i*shards/n], h)
		}
		return bufs
	}
	s32 := int32(shards)
	for _, h := range g.sorted {
		b := 0
		if g.inGrid[h] {
			b = int(((g.cellOf[h].cx % s32) + s32) % s32)
		}
		bufs[b] = append(bufs[b], h)
	}
	return bufs
}

// Clone returns a deep copy of the graph (handle layout included).
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := New()
	out.idx = make(map[tuple.NodeID]Handle, len(g.idx))
	for id, h := range g.idx {
		out.idx[id] = h
	}
	out.ids = append([]tuple.NodeID(nil), g.ids...)
	out.adj = make([][]Handle, len(g.adj))
	for h, l := range g.adj {
		if len(l) > 0 {
			out.adj[h] = append([]Handle(nil), l...)
		}
	}
	out.pos = append([]space.Point(nil), g.pos...)
	out.hasPos = append([]bool(nil), g.hasPos...)
	out.wired = append([]bool(nil), g.wired...)
	out.free = append([]Handle(nil), g.free...)
	out.edges = g.edges
	out.gridBuilt = g.gridBuilt
	out.gridRange = g.gridRange
	out.cellSize = g.cellSize
	if g.cells != nil {
		out.cells = make(map[cell][]Handle, len(g.cells))
		for c, l := range g.cells {
			out.cells[c] = append([]Handle(nil), l...)
		}
	}
	out.cellOf = append([]cell(nil), g.cellOf...)
	out.inGrid = append([]bool(nil), g.inGrid...)
	out.dirty = append([]Handle(nil), g.dirty...)
	out.isDirty = append([]bool(nil), g.isDirty...)
	return out
}

// BFSDistances returns the hop distance from src to every reachable
// node (src included, at distance 0). It is the oracle a converged
// hop-count gradient structure must equal.
func (g *Graph) BFSDistances(src tuple.NodeID) map[tuple.NodeID]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	hs, ok := g.idx[src]
	if !ok {
		return nil
	}
	dist := make([]int32, len(g.ids))
	for i := range dist {
		dist[i] = -1
	}
	dist[hs] = 0
	queue := make([]Handle, 0, 64)
	queue = append(queue, hs)
	out := map[tuple.NodeID]int{src: 0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				out[g.ids[nb]] = int(dist[nb])
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// ShortestPath returns one shortest path from src to dst (inclusive),
// or nil if dst is unreachable. Ties break toward lexicographically
// smaller predecessors, so results are deterministic.
func (g *Graph) ShortestPath(src, dst tuple.NodeID) []tuple.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	hsrc, ok := g.idx[src]
	if !ok {
		return nil
	}
	hdst, dstOK := g.idx[dst]
	if !dstOK {
		return nil
	}
	prev := make([]Handle, len(g.ids))
	for i := range prev {
		prev[i] = -1
	}
	prev[hsrc] = hsrc
	queue := []Handle{hsrc}
	nbrs := make([]tuple.NodeID, 0, 16)
	for len(queue) > 0 && prev[hdst] < 0 {
		cur := queue[0]
		queue = queue[1:]
		nbrs = nbrs[:0]
		for _, nb := range g.adj[cur] {
			nbrs = append(nbrs, g.ids[nb])
		}
		sortIDs(nbrs)
		for _, id := range nbrs {
			nb := g.idx[id]
			if prev[nb] < 0 {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	if prev[hdst] < 0 {
		return nil
	}
	var path []tuple.NodeID
	for cur := hdst; ; cur = prev[cur] {
		path = append(path, g.ids[cur])
		if cur == hsrc {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is non-empty and forms a single
// connected component.
func (g *Graph) Connected() bool {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return false
	}
	return len(g.BFSDistances(nodes[0])) == len(nodes)
}

// Components returns the connected components, each sorted, ordered by
// their smallest member.
func (g *Graph) Components() [][]tuple.NodeID {
	nodes := g.Nodes()
	seen := make(map[tuple.NodeID]bool, len(nodes))
	var comps [][]tuple.NodeID
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		dist := g.BFSDistances(n)
		comp := make([]tuple.NodeID, 0, len(dist))
		for m := range dist {
			seen[m] = true
			comp = append(comp, m)
		}
		sortIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the longest shortest-path length in the graph's
// largest component.
func (g *Graph) Diameter() int {
	max := 0
	for _, n := range g.Nodes() {
		for _, d := range g.BFSDistances(n) {
			if d > max {
				max = d
			}
		}
	}
	return max
}

func sortIDs(ids []tuple.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortEvents(evs []EdgeEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].A != evs[j].A {
			return evs[i].A < evs[j].A
		}
		return evs[i].B < evs[j].B
	})
}
