// Package topology maintains the dynamic neighborhood graph of a TOTA
// network and provides the analytical oracles (BFS distances, shortest
// paths, connectivity) that tests and experiments compare the
// distributed tuple structures against.
//
// The graph can be edited directly (the paper's drag-and-drop emulator
// rearrangements) or recomputed from node positions as a unit-disk graph
// (the MANET "in wireless range" neighborhood relation).
package topology

import (
	"fmt"
	"sort"
	"sync"

	"tota/internal/space"
	"tota/internal/tuple"
)

// EdgeEvent reports that the link between A and B appeared or
// disappeared.
type EdgeEvent struct {
	A, B  tuple.NodeID
	Added bool
}

// String implements fmt.Stringer.
func (e EdgeEvent) String() string {
	op := "-"
	if e.Added {
		op = "+"
	}
	return fmt.Sprintf("%s%s--%s", op, e.A, e.B)
}

// Graph is a dynamic undirected graph over node ids, optionally
// annotated with positions. It is safe for concurrent use.
type Graph struct {
	mu    sync.RWMutex
	adj   map[tuple.NodeID]map[tuple.NodeID]struct{}
	pos   map[tuple.NodeID]space.Point
	fixed map[tuple.NodeID]struct{} // nodes excluded from geometric recompute
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj:   make(map[tuple.NodeID]map[tuple.NodeID]struct{}),
		pos:   make(map[tuple.NodeID]space.Point),
		fixed: make(map[tuple.NodeID]struct{}),
	}
}

// AddNode adds an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id tuple.NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addNodeLocked(id)
}

func (g *Graph) addNodeLocked(id tuple.NodeID) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[tuple.NodeID]struct{})
	}
}

// RemoveNode deletes a node and returns the edge-removal events for the
// links it had (a node crash / departure).
func (g *Graph) RemoveNode(id tuple.NodeID) []EdgeEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	nbrs, ok := g.adj[id]
	if !ok {
		return nil
	}
	events := make([]EdgeEvent, 0, len(nbrs))
	for n := range nbrs {
		delete(g.adj[n], id)
		events = append(events, EdgeEvent{A: id, B: n})
	}
	delete(g.adj, id)
	delete(g.pos, id)
	delete(g.fixed, id)
	sortEvents(events)
	return events
}

// HasNode reports whether id is in the graph.
func (g *Graph) HasNode(id tuple.NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.adj[id]
	return ok
}

// AddEdge links a and b (adding missing nodes) and reports whether the
// graph changed.
func (g *Graph) AddEdge(a, b tuple.NodeID) bool {
	if a == b {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addEdgeLocked(a, b)
}

func (g *Graph) addEdgeLocked(a, b tuple.NodeID) bool {
	g.addNodeLocked(a)
	g.addNodeLocked(b)
	if _, ok := g.adj[a][b]; ok {
		return false
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	return true
}

// RemoveEdge unlinks a and b and reports whether the graph changed.
func (g *Graph) RemoveEdge(a, b tuple.NodeID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.removeEdgeLocked(a, b)
}

func (g *Graph) removeEdgeLocked(a, b tuple.NodeID) bool {
	if _, ok := g.adj[a][b]; !ok {
		return false
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	return true
}

// HasEdge reports whether a and b are linked.
func (g *Graph) HasEdge(a, b tuple.NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.adj[a][b]
	return ok
}

// Neighbors returns a's neighbors in deterministic (sorted) order.
func (g *Graph) Neighbors(a tuple.NodeID) []tuple.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]tuple.NodeID, 0, len(g.adj[a]))
	for n := range g.adj[a] {
		out = append(out, n)
	}
	sortIDs(out)
	return out
}

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a tuple.NodeID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[a])
}

// Nodes returns all node ids in deterministic (sorted) order.
func (g *Graph) Nodes() []tuple.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]tuple.NodeID, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sortIDs(out)
	return out
}

// Len returns the number of nodes.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj)
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// SetPosition records a node's position (adding the node if missing).
// Positions feed Recompute and the localization devices of the emulator.
func (g *Graph) SetPosition(id tuple.NodeID, p space.Point) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addNodeLocked(id)
	g.pos[id] = p
}

// Position returns a node's position, if one was recorded.
func (g *Graph) Position(id tuple.NodeID) (space.Point, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.pos[id]
	return p, ok
}

// SetWired marks a node as excluded from geometric recomputation: its
// manually-added edges persist regardless of positions. This models the
// paper's wired-Internet nodes, whose neighborhood is defined by
// addressability rather than radio range.
func (g *Graph) SetWired(id tuple.NodeID, wired bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addNodeLocked(id)
	if wired {
		g.fixed[id] = struct{}{}
	} else {
		delete(g.fixed, id)
	}
}

// Recompute rebuilds the edge set of all non-wired positioned nodes as a
// unit-disk graph with the given radio range and returns the resulting
// edge changes in deterministic order.
func (g *Graph) Recompute(radioRange float64) []EdgeEvent {
	g.mu.Lock()
	defer g.mu.Unlock()

	ids := make([]tuple.NodeID, 0, len(g.pos))
	for id := range g.pos {
		if _, wired := g.fixed[id]; !wired {
			ids = append(ids, id)
		}
	}
	sortIDs(ids)

	var events []EdgeEvent
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			inRange := g.pos[a].Dist(g.pos[b]) <= radioRange
			if inRange {
				if g.addEdgeLocked(a, b) {
					events = append(events, EdgeEvent{A: a, B: b, Added: true})
				}
			} else if g.removeEdgeLocked(a, b) {
				events = append(events, EdgeEvent{A: a, B: b})
			}
		}
	}
	return events
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := New()
	for id, nbrs := range g.adj {
		out.addNodeLocked(id)
		for n := range nbrs {
			out.addEdgeLocked(id, n)
		}
	}
	for id, p := range g.pos {
		out.pos[id] = p
	}
	for id := range g.fixed {
		out.fixed[id] = struct{}{}
	}
	return out
}

// BFSDistances returns the hop distance from src to every reachable
// node (src included, at distance 0). It is the oracle a converged
// hop-count gradient structure must equal.
func (g *Graph) BFSDistances(src tuple.NodeID) map[tuple.NodeID]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.adj[src]; !ok {
		return nil
	}
	dist := map[tuple.NodeID]int{src: 0}
	queue := []tuple.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for n := range g.adj[cur] {
			if _, seen := dist[n]; !seen {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive),
// or nil if dst is unreachable. Ties break toward lexicographically
// smaller predecessors, so results are deterministic.
func (g *Graph) ShortestPath(src, dst tuple.NodeID) []tuple.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.adj[src]; !ok {
		return nil
	}
	prev := map[tuple.NodeID]tuple.NodeID{src: src}
	queue := []tuple.NodeID{src}
	for len(queue) > 0 && prev[dst] == "" {
		cur := queue[0]
		queue = queue[1:]
		nbrs := make([]tuple.NodeID, 0, len(g.adj[cur]))
		for n := range g.adj[cur] {
			nbrs = append(nbrs, n)
		}
		sortIDs(nbrs)
		for _, n := range nbrs {
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	if _, ok := prev[dst]; !ok {
		return nil
	}
	var path []tuple.NodeID
	for cur := dst; ; cur = prev[cur] {
		path = append(path, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is non-empty and forms a single
// connected component.
func (g *Graph) Connected() bool {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return false
	}
	return len(g.BFSDistances(nodes[0])) == len(nodes)
}

// Components returns the connected components, each sorted, ordered by
// their smallest member.
func (g *Graph) Components() [][]tuple.NodeID {
	nodes := g.Nodes()
	seen := make(map[tuple.NodeID]bool, len(nodes))
	var comps [][]tuple.NodeID
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		dist := g.BFSDistances(n)
		comp := make([]tuple.NodeID, 0, len(dist))
		for m := range dist {
			seen[m] = true
			comp = append(comp, m)
		}
		sortIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the longest shortest-path length in the graph's
// largest component.
func (g *Graph) Diameter() int {
	max := 0
	for _, n := range g.Nodes() {
		for _, d := range g.BFSDistances(n) {
			if d > max {
				max = d
			}
		}
	}
	return max
}

func sortIDs(ids []tuple.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortEvents(evs []EdgeEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].A != evs[j].A {
			return evs[i].A < evs[j].A
		}
		return evs[i].B < evs[j].B
	})
}
