package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tota/internal/space"
	"tota/internal/tuple"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	if !g.AddEdge("a", "b") {
		t.Error("AddEdge new edge returned false")
	}
	if g.AddEdge("a", "b") {
		t.Error("AddEdge duplicate returned true")
	}
	if g.AddEdge("a", "a") {
		t.Error("self-loop accepted")
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edge not symmetric")
	}
	if !g.RemoveEdge("a", "b") {
		t.Error("RemoveEdge returned false")
	}
	if g.RemoveEdge("a", "b") {
		t.Error("RemoveEdge of missing edge returned true")
	}
	if g.HasEdge("a", "b") {
		t.Error("edge still present after removal")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2 (nodes survive edge removal)", g.Len())
	}
}

func TestRemoveNodeEmitsEvents(t *testing.T) {
	g := New()
	g.AddEdge("hub", "a")
	g.AddEdge("hub", "b")
	g.AddEdge("a", "b")
	events := g.RemoveNode("hub")
	if len(events) != 2 {
		t.Fatalf("events = %v, want 2 removals", events)
	}
	for _, e := range events {
		if e.Added {
			t.Errorf("event %v marked Added", e)
		}
	}
	if g.HasNode("hub") {
		t.Error("node still present")
	}
	if !g.HasEdge("a", "b") {
		t.Error("unrelated edge removed")
	}
	if ev := g.RemoveNode("hub"); ev != nil {
		t.Errorf("second RemoveNode = %v, want nil", ev)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	g.AddEdge("m", "z")
	g.AddEdge("m", "a")
	g.AddEdge("m", "k")
	got := g.Neighbors("m")
	want := []tuple.NodeID{"a", "k", "z"}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
	if d := g.Degree("m"); d != 3 {
		t.Errorf("Degree = %d", d)
	}
}

func TestBFSDistancesOnGrid(t *testing.T) {
	g := Grid(4, 4, 1)
	dist := g.BFSDistances(NodeName(0))
	if len(dist) != 16 {
		t.Fatalf("reached %d nodes, want 16", len(dist))
	}
	// Manhattan distance on a 4-connected grid.
	for i := 0; i < 16; i++ {
		want := i%4 + i/4
		if got := dist[NodeName(i)]; got != want {
			t.Errorf("dist[%v] = %d, want %d", NodeName(i), got, want)
		}
	}
	if d := g.BFSDistances("missing"); d != nil {
		t.Errorf("BFS from missing node = %v", d)
	}
}

func TestShortestPath(t *testing.T) {
	g := Grid(3, 3, 1)
	path := g.ShortestPath(NodeName(0), NodeName(8))
	if len(path) != 5 {
		t.Fatalf("path = %v, want length 5", path)
	}
	if path[0] != NodeName(0) || path[len(path)-1] != NodeName(8) {
		t.Errorf("path endpoints wrong: %v", path)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Errorf("path step %v-%v is not an edge", path[i-1], path[i])
		}
	}
	if p := g.ShortestPath(NodeName(0), "unreachable"); p != nil {
		t.Errorf("path to unreachable = %v", p)
	}
	if p := g.ShortestPath(NodeName(0), NodeName(0)); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New()
	if g.Connected() {
		t.Error("empty graph reported connected")
	}
	g.AddEdge("a", "b")
	g.AddEdge("c", "d")
	if g.Connected() {
		t.Error("two components reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if comps[0][0] != "a" || comps[1][0] != "c" {
		t.Errorf("components not ordered: %v", comps)
	}
	g.AddEdge("b", "c")
	if !g.Connected() {
		t.Error("joined graph not connected")
	}
}

func TestRecomputeUnitDisk(t *testing.T) {
	g := New()
	g.SetPosition("a", space.Point{X: 0, Y: 0})
	g.SetPosition("b", space.Point{X: 1, Y: 0})
	g.SetPosition("c", space.Point{X: 3, Y: 0})
	events := g.Recompute(1.5)
	if len(events) != 1 || !events[0].Added {
		t.Fatalf("events = %v, want one addition", events)
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "c") {
		t.Error("unit-disk edges wrong")
	}

	// Move c into range of b: one more edge appears.
	g.SetPosition("c", space.Point{X: 2, Y: 0})
	events = g.Recompute(1.5)
	if len(events) != 1 || !events[0].Added || events[0].A != "b" || events[0].B != "c" {
		t.Fatalf("events after move = %v", events)
	}

	// Move b away: both its links drop.
	g.SetPosition("b", space.Point{X: 10, Y: 10})
	events = g.Recompute(1.5)
	removed := 0
	for _, e := range events {
		if !e.Added {
			removed++
		}
	}
	if removed != 2 {
		t.Errorf("events after departure = %v, want 2 removals", events)
	}
}

func TestRecomputeRespectsWired(t *testing.T) {
	g := New()
	g.SetPosition("a", space.Point{X: 0, Y: 0})
	g.SetPosition("w", space.Point{X: 100, Y: 100})
	g.SetWired("w", true)
	g.AddEdge("a", "w") // manual wired link
	if events := g.Recompute(1.5); len(events) != 0 {
		t.Errorf("Recompute touched wired node: %v", events)
	}
	if !g.HasEdge("a", "w") {
		t.Error("wired edge removed")
	}
}

func TestGenerators(t *testing.T) {
	t.Run("grid", func(t *testing.T) {
		g := Grid(3, 2, 2)
		if g.Len() != 6 {
			t.Errorf("Len = %d", g.Len())
		}
		if g.EdgeCount() != 7 { // 2*3 grid: 3 vertical + 4 horizontal
			t.Errorf("EdgeCount = %d, want 7", g.EdgeCount())
		}
		if p, ok := g.Position(NodeName(4)); !ok || p != (space.Point{X: 2, Y: 2}) {
			t.Errorf("Position = %v, %v", p, ok)
		}
	})
	t.Run("line", func(t *testing.T) {
		g := Line(5)
		if g.EdgeCount() != 4 || g.Diameter() != 4 {
			t.Errorf("line: edges=%d diameter=%d", g.EdgeCount(), g.Diameter())
		}
	})
	t.Run("ring", func(t *testing.T) {
		g := Ring(6)
		if g.EdgeCount() != 6 || g.Diameter() != 3 {
			t.Errorf("ring: edges=%d diameter=%d", g.EdgeCount(), g.Diameter())
		}
	})
	t.Run("star", func(t *testing.T) {
		g := Star(5)
		if g.Len() != 6 || g.Degree(NodeName(0)) != 5 || g.Diameter() != 2 {
			t.Errorf("star: len=%d deg=%d", g.Len(), g.Degree(NodeName(0)))
		}
	})
	t.Run("random geometric deterministic", func(t *testing.T) {
		a := RandomGeometric(30, 10, 3, rand.New(rand.NewSource(1)))
		b := RandomGeometric(30, 10, 3, rand.New(rand.NewSource(1)))
		if a.EdgeCount() != b.EdgeCount() || a.Len() != b.Len() {
			t.Error("same seed produced different graphs")
		}
	})
	t.Run("connected random geometric", func(t *testing.T) {
		g := ConnectedRandomGeometric(40, 10, 3, rand.New(rand.NewSource(7)), 50)
		if g == nil {
			t.Fatal("no connected layout found")
		}
		if !g.Connected() {
			t.Error("result not connected")
		}
	})
}

func TestClone(t *testing.T) {
	g := Grid(3, 3, 1)
	c := g.Clone()
	c.RemoveNode(NodeName(4))
	if !g.HasNode(NodeName(4)) {
		t.Error("Clone shares state with original")
	}
	if c.Len() != 8 || g.Len() != 9 {
		t.Errorf("lens: clone=%d orig=%d", c.Len(), g.Len())
	}
}

// Property: on connected random geometric graphs, BFS distances satisfy
// the 1-Lipschitz condition across every edge.
func TestBFSLipschitzQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(25, 10, 4, rng)
		src := NodeName(int(rng.Int31n(25)))
		dist := g.BFSDistances(src)
		for _, a := range g.Nodes() {
			da, oka := dist[a]
			for _, b := range g.Neighbors(a) {
				db, okb := dist[b]
				if oka != okb {
					return false // reachable node adjacent to unreachable one
				}
				if oka && okb && abs(da-db) > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestEdgeEventString(t *testing.T) {
	add := EdgeEvent{A: "a", B: "b", Added: true}
	if add.String() != "+a--b" {
		t.Errorf("String = %q", add.String())
	}
	rem := EdgeEvent{A: "a", B: "b"}
	if rem.String() != "-a--b" {
		t.Errorf("String = %q", rem.String())
	}
}
