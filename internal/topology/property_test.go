package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: ShortestPath length equals the BFS distance for every
// reachable pair, on random geometric graphs.
func TestShortestPathAgreesWithBFSQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(20, 8, 3.5, rng)
		nodes := g.Nodes()
		src := nodes[rng.Intn(len(nodes))]
		dist := g.BFSDistances(src)
		for _, dst := range nodes {
			d, reachable := dist[dst]
			path := g.ShortestPath(src, dst)
			if !reachable {
				if path != nil {
					return false
				}
				continue
			}
			if len(path) != d+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Recompute is idempotent — a second call right after the
// first produces no events.
func TestRecomputeIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(15, 6, 2.5, rng)
		return len(g.Recompute(2.5)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Components partition the node set.
func TestComponentsPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(18, 12, 2, rng) // sparse: many components
		seen := make(map[string]bool)
		total := 0
		for _, comp := range g.Components() {
			for _, id := range comp {
				if seen[string(id)] {
					return false
				}
				seen[string(id)] = true
				total++
			}
		}
		return total == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
