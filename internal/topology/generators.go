package topology

import (
	"fmt"
	"math/rand"

	"tota/internal/space"
	"tota/internal/tuple"
)

// NodeName returns the canonical zero-padded node name used by the
// generators ("n0007"), chosen so lexicographic order equals numeric
// order for deterministic iteration.
func NodeName(i int) tuple.NodeID {
	return tuple.NodeID(fmt.Sprintf("n%04d", i))
}

// Grid builds a w×h lattice with the given spacing between neighbors;
// each node is linked to its 4-neighborhood. Node n(i) sits at
// (spacing*(i%w), spacing*(i/w)). It models the regular MANET layouts
// of the paper's emulator.
func Grid(w, h int, spacing float64) *Graph {
	g := New()
	idx := func(x, y int) tuple.NodeID { return NodeName(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := idx(x, y)
			g.SetPosition(id, space.Point{X: float64(x) * spacing, Y: float64(y) * spacing})
			if x > 0 {
				g.AddEdge(id, idx(x-1, y))
			}
			if y > 0 {
				g.AddEdge(id, idx(x, y-1))
			}
		}
	}
	return g
}

// Line builds a path of n nodes spaced 1 apart along the x axis.
func Line(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		id := NodeName(i)
		g.SetPosition(id, space.Point{X: float64(i)})
		if i > 0 {
			g.AddEdge(id, NodeName(i-1))
		}
	}
	return g
}

// Ring builds a cycle of n nodes.
func Ring(n int) *Graph {
	g := Line(n)
	if n > 2 {
		g.AddEdge(NodeName(0), NodeName(n-1))
	}
	return g
}

// Star builds a hub-and-spokes graph with n leaves around node 0.
func Star(n int) *Graph {
	g := New()
	hub := NodeName(0)
	g.AddNode(hub)
	for i := 1; i <= n; i++ {
		g.AddEdge(hub, NodeName(i))
	}
	return g
}

// RandomGeometric places n nodes uniformly at random in a side×side
// square and links nodes within radioRange of each other — the standard
// MANET topology model. The rng makes layouts reproducible.
func RandomGeometric(n int, side, radioRange float64, rng *rand.Rand) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.SetPosition(NodeName(i), space.Point{
			X: rng.Float64() * side,
			Y: rng.Float64() * side,
		})
	}
	g.Recompute(radioRange)
	return g
}

// ConnectedRandomGeometric retries RandomGeometric with successive seeds
// derived from rng until the result is connected (up to maxTries), so
// experiments run on a usable network. It returns nil if no connected
// layout was found.
func ConnectedRandomGeometric(n int, side, radioRange float64, rng *rand.Rand, maxTries int) *Graph {
	for i := 0; i < maxTries; i++ {
		g := RandomGeometric(n, side, radioRange, rng)
		if g.Connected() {
			return g
		}
	}
	return nil
}
