package topology

import (
	"math/rand"
	"testing"

	"tota/internal/space"
)

// benchMobileRecompute builds a 10k-node random geometric layout, then
// per iteration jitters every node (worst case: the whole dirty set)
// and recomputes, using either the grid-indexed path or the O(n²)
// all-pairs reference.
func benchMobileRecompute(b *testing.B, useGrid bool) {
	const (
		n      = 10_000
		side   = 100.0
		radius = 1.5
	)
	rng := rand.New(rand.NewSource(1))
	g := New()
	pts := make([]space.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = space.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		g.SetPosition(NodeName(i), pts[i])
	}
	recompute := g.RecomputeReference
	if useGrid {
		recompute = g.Recompute
	}
	recompute(radius) // settle the initial edge set outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			pts[j].X += (rng.Float64() - 0.5) * 0.2
			pts[j].Y += (rng.Float64() - 0.5) * 0.2
			g.SetPosition(NodeName(j), pts[j])
		}
		recompute(radius)
	}
}

// BenchmarkRecompute10k is the ISSUE 6 headline comparison: unit-disk
// edge recompute over 10k mobile nodes, grid-indexed vs the old
// all-pairs scan.
func BenchmarkRecompute10k(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchMobileRecompute(b, true) })
	b.Run("bruteforce", func(b *testing.B) { benchMobileRecompute(b, false) })
}

// BenchmarkRecomputeIdle10k measures the dirty-set short-circuit: the
// per-tick cost of Recompute when nothing moved.
func BenchmarkRecomputeIdle10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New()
	for i := 0; i < 10_000; i++ {
		g.SetPosition(NodeName(i), space.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	g.Recompute(1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Recompute(1.5)
	}
}
