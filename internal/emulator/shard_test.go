package emulator

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"tota/internal/core"
	"tota/internal/mobility"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// runShardScenario executes a lossy mobile scenario big enough to cross
// the sharding threshold (300 nodes) with every staged-send producer
// active: mover-driven churn, periodic refresh, a gradient settling,
// and a leased flood whose mid-run expiry makes the sharded sweep phase
// emit withdrawals. Both the tick-phase shard count and the radio
// worker pool are varied by the caller.
func runShardScenario(seed int64, shards, workers int) parallelRun {
	rng := rand.New(rand.NewSource(seed))
	g := topology.ConnectedRandomGeometric(300, 20, 2.5, rng, 100)
	if g == nil {
		panic("no connected 300-node layout")
	}

	var traceMu sync.Mutex
	traces := make(map[tuple.NodeID][]string)
	tracer := func(ev core.TraceEvent) {
		traceMu.Lock()
		traces[ev.Node] = append(traces[ev.Node], ev.String())
		traceMu.Unlock()
	}

	w := New(Config{
		Graph:        g,
		RadioRange:   2.5,
		Loss:         0.15,
		RefreshEvery: 4,
		Seed:         seed,
		Workers:      workers,
		Shards:       shards,
		NodeOptions:  []core.Option{core.WithTracer(tracer)},
	})
	bounds := space.Rect{Max: space.Point{X: 20, Y: 20}}
	for i, id := range g.Nodes() {
		if i%5 == 0 {
			p, _ := g.Position(id)
			w.SetMover(id, mobility.NewRandomWaypoint(p, bounds, 0.5, 1, 0, rng))
		}
	}
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		panic(err)
	}
	// Lease expires at t=8 (tick 16 of 30): the expiry sweep — a sharded
	// phase — must withdraw copies through the staged-send path.
	if _, err := w.Node(topology.NodeName(7)).Inject(pattern.NewFlood("news").Expires(8)); err != nil {
		panic(err)
	}
	for i := 0; i < 30; i++ {
		w.Tick(0.5)
	}
	w.Settle(100000)
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, 1e18)
	return parallelRun{
		fingerprint: fingerprint(w),
		nodeStats:   w.TotalStats(),
		simStats:    w.Sim().Stats(),
		gradErr:     meanAbs,
		missing:     missing,
		extra:       extra,
		traces:      traces,
	}
}

// TestShardedSteppingIsDeterministic is the region-sharding guarantee:
// a seeded run produces bit-identical distributed state, middleware and
// radio counters, gradient readings, and per-node traces at every
// combination of tick-phase shard count and radio worker count. The
// serial single-worker run is the reference.
func TestShardedSteppingIsDeterministic(t *testing.T) {
	serial := runShardScenario(42, 1, 1)
	if serial.simStats.Delivered == 0 {
		t.Fatal("scenario delivered nothing; not a meaningful determinism check")
	}
	if serial.nodeStats.TTLDropped == 0 && serial.nodeStats.MaintDrop == 0 {
		t.Fatal("lease never expired; sweep phase untested")
	}
	combos := []struct{ shards, workers int }{
		{0, 0}, // both GOMAXPROCS-bounded
		{2, 1},
		{4, 4},
		{8, 2},
		{1, 8},
		{16, 1},
	}
	for _, c := range combos {
		run := runShardScenario(42, c.shards, c.workers)
		diffRuns(t, fmt.Sprintf("shards=1/workers=1 vs shards=%d/workers=%d", c.shards, c.workers), serial, run)
	}
}

// TestShardedSteppingAcrossGOMAXPROCS re-runs the default configuration
// (Shards=0, Workers=0: both GOMAXPROCS-bounded) under different
// GOMAXPROCS settings — the cross-machine reproducibility claim.
func TestShardedSteppingAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	one := runShardScenario(42, 0, 0)
	runtime.GOMAXPROCS(8)
	eight := runShardScenario(42, 0, 0)
	runtime.GOMAXPROCS(prev)
	diffRuns(t, "GOMAXPROCS=1 vs GOMAXPROCS=8", one, eight)
}
