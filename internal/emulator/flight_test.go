package emulator

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tota/internal/core"
	"tota/internal/mobility"
	"tota/internal/obs"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// flightFleet lazily builds one FlightRecorder per node, routing each
// engine event to the emitting node's ring — the per-node black box a
// real deployment would keep. The clock is the radio round counter, so
// stamps are part of the determinism contract (unlike wall time).
type flightFleet struct {
	clock func() float64

	mu      sync.Mutex
	byNode  map[tuple.NodeID]*obs.FlightRecorder
	tracers map[tuple.NodeID]core.Tracer
}

func newFlightFleet(clock func() float64) *flightFleet {
	return &flightFleet{
		clock:   clock,
		byNode:  make(map[tuple.NodeID]*obs.FlightRecorder),
		tracers: make(map[tuple.NodeID]core.Tracer),
	}
}

func (f *flightFleet) Tracer() core.Tracer {
	return func(ev core.TraceEvent) {
		f.mu.Lock()
		tr, ok := f.tracers[ev.Node]
		if !ok {
			rec := obs.NewFlightRecorder(f.clock, 1<<14)
			f.byNode[ev.Node] = rec
			tr = rec.Tracer()
			f.tracers[ev.Node] = tr
		}
		f.mu.Unlock()
		tr(ev)
	}
}

// records snapshots every node's ring as JSONL-schema records.
func (f *flightFleet) records() map[tuple.NodeID][]obs.TraceRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[tuple.NodeID][]obs.TraceRecord, len(f.byNode))
	for id, rec := range f.byNode {
		out[id] = rec.Records()
	}
	return out
}

// runFlightScenario runs the standard lossy mobile scenario (the
// TestSameSeedSameUniverse fixture) with full trace sampling and
// per-node flight recorders, at the given delivery worker count.
func runFlightScenario(seed int64, workers int) map[tuple.NodeID][]obs.TraceRecord {
	var w *World
	fleet := newFlightFleet(func() float64 { return float64(w.Sim().Rounds()) })
	rng := rand.New(rand.NewSource(seed))
	g := topology.ConnectedRandomGeometric(30, 10, 3, rng, 100)
	w = New(Config{
		Graph:        g,
		RadioRange:   3,
		Loss:         0.2,
		RefreshEvery: 5,
		Seed:         seed,
		Workers:      workers,
		NodeOptions: []core.Option{
			core.WithTracer(fleet.Tracer()),
			core.WithTraceSampling(1),
		},
	})
	bounds := space.Rect{Max: space.Point{X: 10, Y: 10}}
	for i, id := range g.Nodes() {
		if i%3 == 0 {
			p, _ := g.Position(id)
			w.SetMover(id, mobility.NewRandomWaypoint(p, bounds, 0.5, 1, 0, rng))
		}
	}
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewGradient("f")); err != nil {
		panic(err)
	}
	for i := 0; i < 40; i++ {
		w.Tick(0.5)
	}
	w.Settle(100000)
	return fleet.records()
}

// diffFlights asserts two per-node record maps are identical, naming
// the first diverging node otherwise.
func diffFlights(t *testing.T, label string, want, got map[tuple.NodeID][]obs.TraceRecord) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	for id, w := range want {
		if g := got[id]; !reflect.DeepEqual(g, w) {
			for i := range w {
				if i >= len(g) || g[i] != w[i] {
					t.Errorf("%s: node %s record %d diverged:\nwant %+v\ngot  %+v",
						label, id, i, w[i], recordAt(g, i))
					return
				}
			}
			t.Errorf("%s: node %s has %d extra records", label, id, len(g)-len(w))
			return
		}
	}
	t.Errorf("%s: flight contents diverged (extra nodes)", label)
}

func recordAt(recs []obs.TraceRecord, i int) any {
	if i < len(recs) {
		return recs[i]
	}
	return "<missing>"
}

// TestFlightDeterministicAcrossWorkers: the per-node flight rings —
// contents, order, round stamps and span identities — are bit-identical
// whether the radio delivers serially or on a parallel pool. This is
// what makes a flight dump from a parallel run diffable against a
// serial reproduction of the same seed.
func TestFlightDeterministicAcrossWorkers(t *testing.T) {
	serial := runFlightScenario(99, 1)
	var total, sampled int
	for _, recs := range serial {
		total += len(recs)
		for _, r := range recs {
			if r.Trace != "" {
				sampled++
			}
		}
	}
	if total == 0 {
		t.Fatal("scenario recorded nothing; not a meaningful determinism check")
	}
	if sampled == 0 {
		t.Fatal("no record carries a trace id despite sampling 1")
	}
	for _, workers := range []int{4, 8} {
		got := runFlightScenario(99, workers)
		diffFlights(t, "workers="+string(rune('0'+workers)), serial, got)
	}
}

// runShardedFlightScenario is the sharded-sweep variant: a world above
// the shard threshold (300 nodes) whose refresh/expiry phases fan out
// over shard workers.
func runShardedFlightScenario(seed int64, shards int) map[tuple.NodeID][]obs.TraceRecord {
	var w *World
	fleet := newFlightFleet(func() float64 { return float64(w.Sim().Rounds()) })
	g := topology.Grid(20, 15, 1)
	w = New(Config{
		Graph:        g,
		Loss:         0.15,
		RefreshEvery: 3,
		Seed:         seed,
		Workers:      1,
		Shards:       shards,
		NodeOptions: []core.Option{
			core.WithTracer(fleet.Tracer()),
			core.WithTraceSampling(1),
		},
	})
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewGradient("f")); err != nil {
		panic(err)
	}
	for i := 0; i < 15; i++ {
		w.Tick(1)
	}
	w.Settle(100000)
	return fleet.records()
}

// TestFlightDeterministicAcrossShards extends the guarantee to the
// sharded per-node phases on large worlds.
func TestFlightDeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("300-node world")
	}
	serial := runShardedFlightScenario(7, 1)
	var total int
	for _, recs := range serial {
		total += len(recs)
	}
	if total == 0 {
		t.Fatal("scenario recorded nothing")
	}
	got := runShardedFlightScenario(7, 4)
	diffFlights(t, "shards=4", serial, got)
}

// TestEmulatorThroughputMetrics: RegisterMetrics exposes the tick
// duration histogram and the rounds counter/rate series, and ticking
// feeds them.
func TestEmulatorThroughputMetrics(t *testing.T) {
	g := topology.Grid(4, 4, 1)
	w := New(Config{Graph: g, Seed: 1})
	reg := obs.NewRegistry()
	w.RegisterMetrics(reg)
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Tick(1)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tota_emu_tick_seconds_count 5",
		"tota_emu_radio_rounds_total 5",
		"tota_emu_rounds_per_s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The rate gauge differentiates between scrapes: the first scrape
	// primed the sample, more rounds plus a second scrape must read >= 0
	// without panicking.
	w.Settle(10)
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tota_emu_rounds_per_s") {
		t.Error("rate gauge disappeared on second scrape")
	}
}
