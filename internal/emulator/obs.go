package emulator

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tota/internal/core"
	"tota/internal/obs"
	"tota/internal/transport"
)

// Rollup is one emulation-wide telemetry snapshot: the per-round
// aggregation of node stats, radio traffic, topology churn and queue
// depth that experiments and the tota-emu dashboard report.
type Rollup struct {
	// Tick and Time locate the snapshot on the emulation clock.
	Tick int     `json:"tick"`
	Time float64 `json:"time"`
	// Nodes and Edges describe the current topology.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Inflight is the radio's in-flight packet queue depth.
	Inflight int `json:"inflight"`
	// ChurnAdds / ChurnRemoves count cumulative link appearances and
	// disappearances (mobility, scripted edits, crashes).
	ChurnAdds    int64 `json:"churn_adds"`
	ChurnRemoves int64 `json:"churn_removes"`
	// StoreSize is the total number of stored tuples across all nodes.
	StoreSize int `json:"store_size"`
	// Stats is the field-wise sum of every node's middleware counters.
	Stats core.Stats `json:"stats"`
	// Net is the radio's traffic counters.
	Net transport.Stats `json:"net"`
	// MemRSSBytes and MemPeakRSSBytes are the emulating process's
	// resident set and its high-water mark (VmRSS / VmHWM; zero on
	// platforms without /proc). BytesPerNode divides the current RSS
	// by the node count — the scale experiments' headline footprint
	// figure. Reading them never influences emulation, so seeded runs
	// stay bit-identical with or without observation.
	MemRSSBytes     uint64  `json:"mem_rss_bytes,omitempty"`
	MemPeakRSSBytes uint64  `json:"mem_peak_rss_bytes,omitempty"`
	BytesPerNode    float64 `json:"bytes_per_node,omitempty"`
}

// Rollup computes a fresh emulation-wide snapshot. It walks the node
// map, so it must be called from the driving goroutine (between Ticks),
// never concurrently with one — live scrapes read the cached copy
// published by Tick instead (see RegisterMetrics).
func (w *World) Rollup() Rollup {
	r := Rollup{
		Tick:         w.ticks,
		Time:         w.time,
		Nodes:        w.graph.Len(),
		Edges:        w.graph.EdgeCount(),
		Inflight:     w.sim.Pending(),
		ChurnAdds:    w.churnAdds.Load(),
		ChurnRemoves: w.churnRemoves.Load(),
		Net:          w.sim.Stats(),
	}
	for _, h := range w.graph.AppendSortedHandles(nil) {
		n := w.nodeAt(h)
		if n == nil {
			continue
		}
		r.Stats = r.Stats.Add(n.Stats())
		r.StoreSize += n.StoreSize()
	}
	r.MemRSSBytes, r.MemPeakRSSBytes = obs.ReadProcRSS()
	if r.Nodes > 0 {
		r.BytesPerNode = float64(r.MemRSSBytes) / float64(r.Nodes)
	}
	return r
}

// PublishRollup caches the current rollup for lock-free consumption by
// registered gauges. Tick calls it automatically once RegisterMetrics
// has been used; drivers that step the radio directly (Settle loops)
// should call it whenever they want scrapes to advance.
func (w *World) PublishRollup() {
	r := w.Rollup()
	w.lastRollup.Store(&r)
}

// cachedRollup returns the last published rollup (zero before the
// first publication).
func (w *World) cachedRollup() Rollup {
	if r := w.lastRollup.Load(); r != nil {
		return *r
	}
	return Rollup{}
}

// RegisterMetrics exposes the emulation on a telemetry registry:
// topology and queue gauges plus aggregated middleware counters. All
// series read the rollup cached by the last Tick/PublishRollup, so
// scrapes never race the stepping goroutine.
func (w *World) RegisterMetrics(reg *obs.Registry) {
	w.obsOn.Store(true)
	w.PublishRollup()
	gauge := func(name, help string, field func(Rollup) float64) {
		reg.GaugeFunc(name, help, func() float64 { return field(w.cachedRollup()) })
	}
	counter := func(name, help string, field func(Rollup) int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(field(w.cachedRollup())) })
	}
	gauge("tota_emu_tick", "Emulation tick of the published rollup.", func(r Rollup) float64 { return float64(r.Tick) })
	gauge("tota_emu_time", "Simulated time of the published rollup.", func(r Rollup) float64 { return r.Time })
	gauge("tota_emu_nodes", "Nodes in the topology.", func(r Rollup) float64 { return float64(r.Nodes) })
	gauge("tota_emu_edges", "Links in the topology.", func(r Rollup) float64 { return float64(r.Edges) })
	gauge("tota_emu_inflight", "Radio packets in flight.", func(r Rollup) float64 { return float64(r.Inflight) })
	gauge("tota_emu_store_size", "Stored tuples across all nodes.", func(r Rollup) float64 { return float64(r.StoreSize) })
	counter("tota_emu_churn_adds_total", "Links that appeared (mobility, edits).", func(r Rollup) int64 { return r.ChurnAdds })
	counter("tota_emu_churn_removes_total", "Links that disappeared (mobility, edits, crashes).", func(r Rollup) int64 { return r.ChurnRemoves })
	counter("tota_emu_packets_in_total", "Engine packets received, summed over nodes.", func(r Rollup) int64 { return r.Stats.PacketsIn })
	counter("tota_emu_stored_total", "First-time stores, summed over nodes.", func(r Rollup) int64 { return r.Stats.Stored })
	counter("tota_emu_dup_dropped_total", "Duplicate arrivals dropped, summed over nodes.", func(r Rollup) int64 { return r.Stats.DupDropped })
	counter("tota_emu_repairs_total", "Maintenance adoptions, summed over nodes.", func(r Rollup) int64 { return r.Stats.MaintAdopt })
	counter("tota_emu_withdrawals_total", "Maintenance withdrawals, summed over nodes.", func(r Rollup) int64 { return r.Stats.MaintDrop })
	counter("tota_emu_send_errors_total", "Transport send failures, summed over nodes.", func(r Rollup) int64 { return r.Stats.SendErrors })
	counter("tota_emu_frames_out_total", "Batch frames sent, summed over nodes.", func(r Rollup) int64 { return r.Stats.FramesOut })
	counter("tota_emu_digests_out_total", "Digest messages sent, summed over nodes.", func(r Rollup) int64 { return r.Stats.DigestsOut })
	counter("tota_emu_pulls_out_total", "Pull requests sent, summed over nodes.", func(r Rollup) int64 { return r.Stats.PullsOut })
	counter("tota_emu_refresh_suppressed_total", "Refresh announcements suppressed by digests, summed over nodes.", func(r Rollup) int64 { return r.Stats.RefreshSuppressed })
	counter("tota_emu_radio_sent_total", "Radio transmissions.", func(r Rollup) int64 { return r.Net.Sent })
	counter("tota_emu_radio_dropped_total", "Radio packets lost.", func(r Rollup) int64 { return r.Net.Dropped })
	counter("tota_emu_suspected_total", "Maintained copies that entered the suspicion grace window, summed over nodes.", func(r Rollup) int64 { return r.Stats.Suspected })
	counter("tota_emu_suspect_recovered_total", "Suspicions cancelled by returning support, summed over nodes.", func(r Rollup) int64 { return r.Stats.SuspectRecovered })
	counter("tota_emu_pulls_suppressed_total", "Anti-entropy pulls skipped by backoff, summed over nodes.", func(r Rollup) int64 { return r.Stats.PullsSuppressed })
	counter("tota_emu_quarantine_events_total", "Sources quarantined for repeated undecodable frames, summed over nodes.", func(r Rollup) int64 { return r.Stats.QuarantineEvents })
	counter("tota_emu_quarantine_dropped_total", "Packets dropped unread while their source was quarantined, summed over nodes.", func(r Rollup) int64 { return r.Stats.QuarantineDropped })
	counter("tota_emu_query_epochs_total", "Convergecast epochs started by query sources, summed over nodes.", func(r Rollup) int64 { return r.Stats.QueryEpochs })
	counter("tota_emu_partials_out_total", "Partial aggregates sent up parent links, summed over nodes.", func(r Rollup) int64 { return r.Stats.PartialsOut })
	counter("tota_emu_partials_combined_total", "Child partials folded into local aggregates, summed over nodes.", func(r Rollup) int64 { return r.Stats.PartialsCombined })
	counter("tota_emu_agg_results_total", "Convergecast results computed at query sources, summed over nodes.", func(r Rollup) int64 { return r.Stats.AggResults })
	counter("tota_emu_radio_corrupted_total", "Radio packets delivered with injected byte flips.", func(r Rollup) int64 { return r.Net.Corrupted })
	counter("tota_emu_radio_blocked_total", "Radio packets discarded at a partition cut.", func(r Rollup) int64 { return r.Net.Blocked })
	counter("tota_emu_radio_shed_total", "Radio packets shed by the bounded inbound queue.", func(r Rollup) int64 { return r.Net.Shed })
	counter("tota_emu_radio_payload_bytes_total", "Radio payload bytes transmitted.", func(r Rollup) int64 { return r.Net.PayloadBytes })
	gauge("tota_emu_mem_rss_bytes", "Process resident set at the published rollup (VmRSS).", func(r Rollup) float64 { return float64(r.MemRSSBytes) })
	gauge("tota_emu_mem_peak_rss_bytes", "Process peak resident set (VmHWM).", func(r Rollup) float64 { return float64(r.MemPeakRSSBytes) })
	gauge("tota_emu_bytes_per_node", "Resident bytes per emulated node.", func(r Rollup) float64 { return r.BytesPerNode })
	reg.CounterFunc("tota_emu_radio_rounds_total", "Radio rounds stepped (includes Settle drains).", func() float64 {
		return float64(w.sim.Rounds())
	})
	// Wall-clock throughput series. These are the only metrics that read
	// the wall clock, and only at observation points — emulation
	// behavior itself never consults it, so seeded runs stay
	// bit-identical whether or not metrics are registered.
	w.tickSeconds.Store(reg.Histogram("tota_emu_tick_seconds", "Wall-clock duration of one emulation tick.", obs.ExpBuckets(1e-5, 2, 22)))
	reg.GaugeFunc("tota_emu_rounds_per_s", "Radio rounds per wall-clock second, differentiated scrape to scrape (0 on the first scrape).", func() float64 {
		cur := &rateSample{rounds: w.sim.Rounds(), at: time.Now()}
		prev := w.lastRate.Swap(cur)
		if prev == nil {
			return 0
		}
		dt := cur.at.Sub(prev.at).Seconds()
		if dt <= 0 {
			return 0
		}
		return float64(cur.rounds-prev.rounds) / dt
	})
}

// Dashboard renders a rollup as one compact text line — the periodic
// emulator dashboard (`tota-emu -dash N`).
func (r Rollup) Dashboard() string {
	line := fmt.Sprintf(
		"[tick %d t=%.1f] nodes=%d edges=%d inflight=%d churn=+%d/-%d stored=%d | in=%d dup=%d repair=%d withdraw=%d ttl=%d sendErr=%d | frames=%d digests=%d pulls=%d suppressed=%d | suspect=%d/%d pullBackoff=%d quarantine=%d/%d | agg epochs=%d partials=%d results=%d | radio sent=%d dropped=%d corrupt=%d blocked=%d shed=%d",
		r.Tick, r.Time, r.Nodes, r.Edges, r.Inflight, r.ChurnAdds, r.ChurnRemoves, r.StoreSize,
		r.Stats.PacketsIn, r.Stats.DupDropped, r.Stats.MaintAdopt, r.Stats.MaintDrop,
		r.Stats.TTLDropped, r.Stats.SendErrors,
		r.Stats.FramesOut, r.Stats.DigestsOut, r.Stats.PullsOut, r.Stats.RefreshSuppressed,
		r.Stats.Suspected, r.Stats.SuspectRecovered, r.Stats.PullsSuppressed,
		r.Stats.QuarantineEvents, r.Stats.QuarantineDropped,
		r.Stats.QueryEpochs, r.Stats.PartialsOut, r.Stats.AggResults,
		r.Net.Sent, r.Net.Dropped, r.Net.Corrupted, r.Net.Blocked, r.Net.Shed)
	if r.MemRSSBytes > 0 {
		line += fmt.Sprintf(" | mem rss=%.1fMiB peak=%.1fMiB b/node=%.0f",
			float64(r.MemRSSBytes)/(1<<20), float64(r.MemPeakRSSBytes)/(1<<20), r.BytesPerNode)
	}
	return line
}

// Report is the final aggregated JSON artifact a tota-emu run emits:
// the scenario label, the periodic rollups, and the final state.
type Report struct {
	Scenario string   `json:"scenario"`
	Rollups  []Rollup `json:"rollups,omitempty"`
	Final    Rollup   `json:"final"`
}

// WriteJSON renders the report, indented.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
