package emulator

import (
	"io"
	"sync"
	"testing"

	"tota/internal/obs"
	"tota/internal/pattern"
	"tota/internal/topology"
)

// TestStatsReadableMidStep locks in the telemetry contract behind the
// atomic engine counters: Stats, TotalStats and a registered metrics
// scrape may all run while a parallel Tick is delivering packets,
// without a data race (run with -race) and without ever observing a
// monotone counter go backwards.
func TestStatsReadableMidStep(t *testing.T) {
	g := topology.Grid(8, 8, 1)
	w := New(Config{Graph: g, Workers: 4, RefreshEvery: 3, Seed: 7})
	reg := obs.NewRegistry()
	w.RegisterMetrics(reg)
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := w.TotalStats()
			if total.PacketsIn < prev {
				t.Errorf("PacketsIn went backwards: %d -> %d", prev, total.PacketsIn)
				return
			}
			prev = total.PacketsIn
			_ = w.Node(src).Stats()
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 50; i++ {
		w.Tick(1)
	}
	close(stop)
	wg.Wait()

	if got := w.TotalStats().PacketsIn; got == 0 {
		t.Error("scenario delivered nothing; not a meaningful concurrency check")
	}
}
