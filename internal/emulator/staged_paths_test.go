package emulator

import (
	"fmt"
	"testing"

	"tota/internal/agg"
	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// stagedPathsRun captures everything a staged-send scenario puts on the
// wire, directly or summarized: final distributed state, the two
// convergecast answers, and the middleware/radio counters.
type stagedPathsRun struct {
	fingerprint  string
	sumA, sumB   float64
	okA, okB     bool
	nodeStats    core.Stats
	simDelivered int64
	simSent      int64
}

// runStagedPathsScenario drives the two staged-send paths that live
// beside the refresh loop — convergecast partials (per-query staged
// contribution maps) and the corrupt-source quarantine (per-source
// strike/cooldown maps) — under a given shard/worker combination.
// Two queries with different origins overlap, so partial staging,
// folding and flushing interleave; a corruption window quarantines
// sources mid-run and the cooldown re-admits them before the end.
func runStagedPathsScenario(seed int64, shards, workers int) stagedPathsRun {
	const side = 6
	w := New(Config{
		Graph:        topology.Grid(side, side, 1),
		RefreshEvery: 2,
		Seed:         seed,
		Shards:       shards,
		Workers:      workers,
		// The E13 resilience trio: quarantine needs suspicion hysteresis
		// beside it — with immediate withdrawal (SuspicionEpochs=0) the
		// support-table desync that quarantine drops induce can lock two
		// neighbors into a perpetual withdraw/re-adopt announce storm.
		NodeOptions: []core.Option{
			core.WithSuspicion(2),
			core.WithPullBackoff(6),
			core.WithQuarantine(2, 10),
		},
	})
	n := side * side
	for i := 0; i < n; i++ {
		if _, err := w.Node(topology.NodeName(i)).Inject(
			pattern.NewLocal("reading", tuple.F("v", float64(i%7+1)))); err != nil {
			panic(err)
		}
	}
	w.Settle(100000)

	// Two overlapping queries from different origins: their staged
	// partials coexist in every interior node's per-query maps.
	srcA, srcB := topology.NodeName(0), topology.NodeName(n-1)
	sel := tuple.Selector{Kind: pattern.KindLocal, Name: "reading", Field: "v"}
	idA, err := w.Node(srcA).Inject(agg.NewQuery("spA", agg.Sum, sel))
	if err != nil {
		panic(err)
	}
	idB, err := w.Node(srcB).Inject(agg.NewQuery("spB", agg.Max, sel))
	if err != nil {
		panic(err)
	}
	w.Settle(100000)

	// Corruption window: heavy byte-flipping for a few epochs drives
	// sources over the 2-strike threshold into quarantine; the refresh
	// traffic that follows burns down the 10-packet cooldowns and
	// re-admits them, all through the per-source staged maps.
	w.Sim().SetCorrupt(0.5)
	for i := 0; i < 4; i++ {
		w.RefreshAll()
		w.Settle(100000)
	}
	w.Sim().SetCorrupt(0)
	// Healing needs one epoch per aggregation-tree level plus the
	// suspicion/backoff recovery tail (E14 sizes epochs the same way).
	for i := 0; i < 2*side+6; i++ {
		w.RefreshAll()
		w.Settle(100000)
	}

	out := stagedPathsRun{fingerprint: fingerprint(w)}
	var ra, rb agg.Result
	ra, out.okA = w.Node(srcA).AggResult(idA)
	rb, out.okB = w.Node(srcB).AggResult(idB)
	out.sumA, out.sumB = ra.Value(), rb.Value()
	out.nodeStats = w.TotalStats()
	st := w.Sim().Stats()
	out.simDelivered, out.simSent = st.Delivered, st.Sent
	return out
}

// TestStagedSendPathsDeterministic pins the determinism of the two
// auxiliary staged-send paths: aggregation partials and quarantine
// cooldown. Their per-node state lives in maps, so any map-order
// iteration feeding the wire would show up here as a fingerprint or
// counter mismatch between shard/worker combinations.
func TestStagedSendPathsDeterministic(t *testing.T) {
	serial := runStagedPathsScenario(77, 1, 1)
	if serial.nodeStats.QuarantineEvents == 0 {
		t.Fatal("no source was ever quarantined; cooldown path untested")
	}
	if serial.nodeStats.PartialsOut == 0 {
		t.Fatal("no partials sent; aggregation staging untested")
	}
	if !serial.okA || !serial.okB {
		t.Fatalf("missing aggregation results: okA=%v okB=%v", serial.okA, serial.okB)
	}
	// The oracle values: sum and max of i%7+1 over the 36 readings.
	wantSum, wantMax := 0.0, 0.0
	for i := 0; i < 36; i++ {
		v := float64(i%7 + 1)
		wantSum += v
		if v > wantMax {
			wantMax = v
		}
	}
	if serial.sumA != wantSum || serial.sumB != wantMax {
		t.Errorf("aggregation drifted after quarantine churn: sum=%v (want %v) max=%v (want %v)",
			serial.sumA, wantSum, serial.sumB, wantMax)
	}
	for _, c := range []struct{ shards, workers int }{{0, 0}, {4, 1}, {2, 4}, {8, 2}} {
		run := runStagedPathsScenario(77, c.shards, c.workers)
		label := fmt.Sprintf("shards=%d/workers=%d", c.shards, c.workers)
		if run.fingerprint != serial.fingerprint {
			t.Errorf("%s: distributed state fingerprint diverged from serial run", label)
		}
		if run.sumA != serial.sumA || run.sumB != serial.sumB || run.okA != serial.okA || run.okB != serial.okB {
			t.Errorf("%s: aggregation results diverged: got (%v,%v) want (%v,%v)",
				label, run.sumA, run.sumB, serial.sumA, serial.sumB)
		}
		if run.nodeStats != serial.nodeStats {
			t.Errorf("%s: middleware counters diverged:\n got %+v\nwant %+v", label, run.nodeStats, serial.nodeStats)
		}
		if run.simDelivered != serial.simDelivered || run.simSent != serial.simSent {
			t.Errorf("%s: radio counters diverged: got sent=%d delivered=%d, want sent=%d delivered=%d",
				label, run.simSent, run.simDelivered, serial.simSent, serial.simDelivered)
		}
	}
}
