package emulator

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// TestChaosChurnKeepsStructureCoherent drives a long randomized churn
// sequence — node crashes, node joins, link drops and link additions —
// against a maintained gradient, checking after every perturbation that
// the distributed structure equals the BFS oracle. This is the paper's
// §3 adaptivity claim under sustained, compounding dynamics rather than
// single perturbations.
func TestChaosChurnKeepsStructureCoherent(t *testing.T) {
	const rounds = 60
	rng := rand.New(rand.NewSource(2024))
	g := topology.Grid(6, 6, 1)
	w := New(Config{Graph: g})
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	w.Settle(100000)

	joined := 0
	for round := 0; round < rounds; round++ {
		switch rng.Intn(4) {
		case 0: // crash a random non-source node, if connectivity survives
			nodes := g.Nodes()
			id := nodes[rng.Intn(len(nodes))]
			if id == src {
				continue
			}
			c := g.Clone()
			c.RemoveNode(id)
			if !c.Connected() {
				continue
			}
			w.RemoveNode(id)
		case 1: // join a new node next to a random anchor
			nodes := g.Nodes()
			anchor := nodes[rng.Intn(len(nodes))]
			joined++
			id := tuple.NodeID(fmt.Sprintf("join%03d", joined))
			p, _ := g.Position(anchor)
			w.AddNode(id, space.Point{X: p.X + 0.1, Y: p.Y + 0.1})
			w.AddEdge(anchor, id)
		case 2: // drop a random link, if connectivity survives
			nodes := g.Nodes()
			a := nodes[rng.Intn(len(nodes))]
			nbrs := g.Neighbors(a)
			if len(nbrs) == 0 {
				continue
			}
			b := nbrs[rng.Intn(len(nbrs))]
			g.RemoveEdge(a, b)
			connected := g.Connected()
			g.AddEdge(a, b)
			if !connected {
				continue
			}
			w.RemoveEdge(a, b)
		case 3: // add a random shortcut
			nodes := g.Nodes()
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			if a == b || g.HasEdge(a, b) {
				continue
			}
			w.AddEdge(a, b)
		}
		w.Settle(100000)
		meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
		if meanAbs != 0 || missing != 0 || extra != 0 {
			t.Fatalf("round %d: structure diverged: err=%v missing=%d extra=%d",
				round, meanAbs, missing, extra)
		}
	}
}

// TestChaosWithMobilityAndRefresh adds continuous mobility and packet
// loss on top of churn; with anti-entropy the structure must still be
// exact once the dust settles.
func TestChaosWithMobilityAndRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := topology.ConnectedRandomGeometric(35, 10, 3, rng, 200)
	if g == nil {
		t.Fatal("no connected layout")
	}
	w := New(Config{Graph: g, RadioRange: 3, Loss: 0.15, RefreshEvery: 4, Seed: 7})
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	// Random waypoint on a third of the nodes; the source stays put so
	// the oracle target is stable.
	bounds := space.Rect{Max: space.Point{X: 10, Y: 10}}
	for i, id := range g.Nodes() {
		if id == src || i%3 != 0 {
			continue
		}
		p, _ := g.Position(id)
		w.SetMover(id, newChaosWalker(p, bounds, rng))
	}
	for i := 0; i < 120; i++ {
		w.Tick(0.5)
	}
	// Freeze the world, stop losing packets, run the anti-entropy to
	// convergence.
	w.Sim().SetLoss(0)
	for i := 0; i < 4; i++ {
		w.RefreshAll()
		w.Settle(100000)
	}
	if !g.Connected() {
		t.Skip("mobility disconnected the network; oracle undefined")
	}
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
	if meanAbs != 0 || missing != 0 || extra != 0 {
		t.Errorf("after chaos: err=%v missing=%d extra=%d", meanAbs, missing, extra)
	}
}

// newChaosWalker returns a mover wandering within bounds.
func newChaosWalker(p space.Point, bounds space.Rect, rng *rand.Rand) *walkerMover {
	return &walkerMover{pos: p, bounds: bounds, rng: rng}
}

type walkerMover struct {
	pos    space.Point
	bounds space.Rect
	rng    *rand.Rand
}

func (m *walkerMover) Pos() space.Point { return m.pos }

func (m *walkerMover) Step(dt float64) space.Point {
	m.pos.X += (m.rng.Float64()*2 - 1) * dt
	m.pos.Y += (m.rng.Float64()*2 - 1) * dt
	m.pos.X = math.Max(m.bounds.Min.X, math.Min(m.bounds.Max.X, m.pos.X))
	m.pos.Y = math.Max(m.bounds.Min.Y, math.Min(m.bounds.Max.Y, m.pos.Y))
	return m.pos
}
