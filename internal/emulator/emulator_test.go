package emulator

import (
	"math"
	"strings"
	"testing"

	"tota/internal/mobility"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func TestWorldBuildsNodesAndSettles(t *testing.T) {
	w := New(Config{Graph: topology.Grid(4, 4, 1)})
	if len(w.Nodes()) != 16 {
		t.Fatalf("nodes = %d", len(w.Nodes()))
	}
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	rounds := w.Settle(10000)
	if rounds <= 0 || rounds >= 10000 {
		t.Errorf("Settle rounds = %d", rounds)
	}
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
	if meanAbs != 0 || missing != 0 || extra != 0 {
		t.Errorf("gradient error = %v, %d missing, %d extra", meanAbs, missing, extra)
	}
}

func TestGradientErrorDetectsDeviation(t *testing.T) {
	w := New(Config{Graph: topology.Line(4)})
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	w.Settle(1000)
	// Delete one copy: GradientError must count it missing.
	w.Node(topology.NodeName(2)).Delete(pattern.ByName(pattern.KindGradient, "f"))
	_, missing, _ := w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
	if missing != 1 {
		t.Errorf("missing = %d, want 1", missing)
	}
}

func TestTickMovesAndRewires(t *testing.T) {
	g := topology.New()
	g.SetPosition("a", space.Point{X: 0, Y: 0})
	g.SetPosition("b", space.Point{X: 1, Y: 0})
	g.SetPosition("m", space.Point{X: 10, Y: 0})
	g.Recompute(1.5)
	w := New(Config{Graph: g, RadioRange: 1.5})
	if !g.HasEdge("a", "b") || g.HasEdge("b", "m") {
		t.Fatal("initial topology wrong")
	}

	// m walks toward b: after enough ticks they link up.
	w.SetMover("m", mobility.NewWaypoints(space.Point{X: 10, Y: 0}, 1, space.Point{X: 2, Y: 0}))
	for i := 0; i < 20; i++ {
		w.Tick(1)
	}
	if !g.HasEdge("b", "m") {
		t.Error("mobile node never linked up")
	}
	if w.Ticks() != 20 {
		t.Errorf("Ticks = %d", w.Ticks())
	}
}

func TestMobilityRepairsGradient(t *testing.T) {
	// A line of three static nodes and one mobile node: the gradient
	// from the left end must stay BFS-correct as the mobile node walks
	// from one end to the other.
	g := topology.New()
	g.SetPosition("s", space.Point{X: 0, Y: 0})
	g.SetPosition("r1", space.Point{X: 1, Y: 0})
	g.SetPosition("r2", space.Point{X: 2, Y: 0})
	g.SetPosition("mob", space.Point{X: 0.5, Y: 0.8})
	g.Recompute(1.2)
	w := New(Config{Graph: g, RadioRange: 1.2})
	if _, err := w.Node("s").Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	w.Settle(1000)

	w.SetMover("mob", mobility.NewWaypoints(space.Point{X: 0.5, Y: 0.8}, 0.25, space.Point{X: 2.0, Y: 0.8}))
	for i := 0; i < 40; i++ {
		w.Tick(0.25)
	}
	w.Settle(1000)
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", "s", math.Inf(1))
	if meanAbs != 0 || missing != 0 || extra != 0 {
		t.Errorf("after walk: err=%v missing=%d extra=%d", meanAbs, missing, extra)
	}
}

func TestAddRemoveNode(t *testing.T) {
	w := New(Config{Graph: topology.Line(3)})
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	w.Settle(1000)

	n := w.AddNode("x", space.Point{X: 99, Y: 0})
	w.AddEdge(topology.NodeName(2), "x")
	w.Settle(1000)
	ts := n.Read(pattern.ByName(pattern.KindGradient, "f"))
	if len(ts) != 1 || ts[0].(tuple.Maintained).Value() != 3 {
		t.Fatalf("newcomer gradient = %v", ts)
	}

	w.RemoveNode("x")
	w.Settle(1000)
	if w.Node("x") != nil {
		t.Error("node still present")
	}
	if _, missing, extra := extractErr(w, src); missing != 0 || extra != 0 {
		t.Errorf("structure inconsistent after crash: missing=%d extra=%d", missing, extra)
	}
}

func extractErr(w *World, src tuple.NodeID) (float64, int, int) {
	return w.GradientError(pattern.KindGradient, "f", src, math.Inf(1))
}

func TestTotalStats(t *testing.T) {
	w := New(Config{Graph: topology.Line(3)})
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	w.Settle(1000)
	st := w.TotalStats()
	if st.Injected != 1 || st.Stored != 3 {
		t.Errorf("TotalStats = %+v", st)
	}
}

func TestRender(t *testing.T) {
	w := New(Config{Graph: topology.Grid(3, 3, 1)})
	out := w.Render(12, 6, func(id tuple.NodeID) rune {
		if id == topology.NodeName(4) {
			return '#'
		}
		return 0
	})
	if !strings.Contains(out, "#") {
		t.Errorf("custom mark missing:\n%s", out)
	}
	_, grid, ok := strings.Cut(out, "\n")
	if !ok {
		t.Fatalf("no header line:\n%s", out)
	}
	if strings.Count(grid, "o") != 8 {
		t.Errorf("default marks = %d, want 8:\n%s", strings.Count(grid, "o"), out)
	}
	if !strings.Contains(out, "9 nodes") {
		t.Errorf("header missing:\n%s", out)
	}
	if w.Render(0, 0, nil) != "" {
		t.Error("degenerate render not empty")
	}
}

func TestMoveNodeTeleport(t *testing.T) {
	g := topology.New()
	g.SetPosition("a", space.Point{X: 0, Y: 0})
	g.SetPosition("b", space.Point{X: 5, Y: 0})
	w := New(Config{Graph: g, RadioRange: 2})
	if g.HasEdge("a", "b") {
		t.Fatal("unexpected initial edge")
	}
	w.MoveNode("b", space.Point{X: 1, Y: 0})
	if !g.HasEdge("a", "b") {
		t.Error("teleport did not rewire")
	}
}

func TestSeededLossIsApplied(t *testing.T) {
	w := New(Config{Graph: topology.Line(2), Loss: 1.0, Seed: 5})
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	w.Settle(100)
	if got := len(w.Node(topology.NodeName(1)).Read(tuple.Match(pattern.KindFlood))); got != 0 {
		t.Error("packet survived 100% loss")
	}
}
