package emulator

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"tota/internal/core"
	"tota/internal/mobility"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// parallelRun captures everything determinism must preserve: the full
// distributed state, the middleware and radio counters, the gradient
// error, and every node's engine-decision trace in order.
type parallelRun struct {
	fingerprint string
	nodeStats   core.Stats
	simStats    transport.Stats
	gradErr     float64
	missing     int
	extra       int
	traces      map[tuple.NodeID][]string
}

// runParallelScenario executes a lossy mobile scenario (mobility,
// refresh, retraction) with the given radio worker-pool bound.
func runParallelScenario(seed int64, workers int) parallelRun {
	rng := rand.New(rand.NewSource(seed))
	g := topology.ConnectedRandomGeometric(30, 10, 3, rng, 100)

	var traceMu sync.Mutex
	traces := make(map[tuple.NodeID][]string)
	tracer := func(ev core.TraceEvent) {
		traceMu.Lock()
		traces[ev.Node] = append(traces[ev.Node], ev.String())
		traceMu.Unlock()
	}

	w := New(Config{
		Graph:        g,
		RadioRange:   3,
		Loss:         0.2,
		RefreshEvery: 5,
		Seed:         seed,
		Workers:      workers,
		NodeOptions:  []core.Option{core.WithTracer(tracer)},
	})
	bounds := space.Rect{Max: space.Point{X: 10, Y: 10}}
	for i, id := range g.Nodes() {
		if i%3 == 0 {
			p, _ := g.Position(id)
			w.SetMover(id, mobility.NewRandomWaypoint(p, bounds, 0.5, 1, 0, rng))
		}
	}
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		panic(err)
	}
	floodID, err := w.Node(topology.NodeName(5)).Inject(pattern.NewFlood("news"))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 40; i++ {
		w.Tick(0.5)
		if i == 25 {
			w.Node(topology.NodeName(5)).Retract(floodID)
		}
	}
	w.Settle(100000)
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, 1e18)
	return parallelRun{
		fingerprint: fingerprint(w),
		nodeStats:   w.TotalStats(),
		simStats:    w.Sim().Stats(),
		gradErr:     meanAbs,
		missing:     missing,
		extra:       extra,
		traces:      traces,
	}
}

func diffRuns(t *testing.T, label string, a, b parallelRun) {
	t.Helper()
	if a.fingerprint != b.fingerprint {
		t.Errorf("%s: distributed state fingerprints diverged", label)
	}
	if a.nodeStats != b.nodeStats {
		t.Errorf("%s: middleware stats diverged:\n%+v\n%+v", label, a.nodeStats, b.nodeStats)
	}
	if a.simStats != b.simStats {
		t.Errorf("%s: radio stats diverged:\n%+v\n%+v", label, a.simStats, b.simStats)
	}
	if a.gradErr != b.gradErr || a.missing != b.missing || a.extra != b.extra {
		t.Errorf("%s: gradient readings diverged: (%v,%d,%d) vs (%v,%d,%d)",
			label, a.gradErr, a.missing, a.extra, b.gradErr, b.missing, b.extra)
	}
	if !reflect.DeepEqual(a.traces, b.traces) {
		for id, want := range a.traces {
			got := b.traces[id]
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: node %s trace diverged (%d vs %d events)", label, id, len(want), len(got))
				break
			}
		}
	}
}

// TestParallelSteppingIsDeterministic proves the tentpole guarantee:
// the same seed and topology produce identical Stats, per-node traces,
// and gradient values whether the radio delivers serially (Workers=1,
// or GOMAXPROCS=1) or on a parallel worker pool (Workers=8, or
// GOMAXPROCS=8), with loss, mobility, refresh and retraction all
// active.
func TestParallelSteppingIsDeterministic(t *testing.T) {
	serial := runParallelScenario(99, 1)
	if serial.simStats.Delivered == 0 {
		t.Fatal("scenario delivered nothing; not a meaningful determinism check")
	}
	for _, workers := range []int{2, 8} {
		parallel := runParallelScenario(99, workers)
		diffRuns(t, fmt.Sprintf("workers=1 vs workers=%d", workers), serial, parallel)
	}

	prev := runtime.GOMAXPROCS(1)
	one := runParallelScenario(99, 0)
	runtime.GOMAXPROCS(8)
	eight := runParallelScenario(99, 0)
	runtime.GOMAXPROCS(prev)
	diffRuns(t, "GOMAXPROCS=1 vs GOMAXPROCS=8", one, eight)
	diffRuns(t, "workers=1 vs GOMAXPROCS default pool", serial, eight)
}
