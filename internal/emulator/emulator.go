// Package emulator is the programmatic counterpart of the paper's
// graphic TOTA emulator: it runs hundreds of thousands of middleware
// nodes over the simulated radio, moves them with mobility models,
// rearranges the topology (the drag-and-drop of Fig. 3), and measures
// the distributed tuple structures against analytical oracles.
//
// Time advances in ticks: each Tick moves every mover, recomputes the
// unit-disk topology from the new positions, delivers one radio round,
// and optionally drains the network to quiescence. Everything is driven
// by seeded randomness, so runs are reproducible.
//
// Per-node hot state (middleware node, mover) lives in dense slices
// indexed by the topology's compact node handles, and the per-node
// phases of a Tick (expiry sweep, anti-entropy refresh) fan out over
// shard regions of the plane on large worlds — with all sends staged
// and merged in (source, sequence) order, so a seeded run is
// bit-identical at every shard count.
package emulator

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tota/internal/core"
	"tota/internal/mobility"
	"tota/internal/obs"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// Config assembles a World.
type Config struct {
	// Graph is the initial topology; node positions seed the mobility
	// state. The World takes ownership.
	Graph *topology.Graph
	// RadioRange, when positive, derives links from positions (unit
	// disk) after every tick. When zero the edge set only changes
	// through explicit edits.
	RadioRange float64
	// Loss is the per-packet drop probability of the radio.
	Loss float64
	// RefreshEvery, when positive, runs the middleware's anti-entropy
	// pass (Node.Refresh) on every node each RefreshEvery ticks —
	// required for convergence on lossy radios.
	RefreshEvery int
	// Seed drives every random choice.
	Seed int64
	// Workers bounds the radio's parallel delivery pool (see
	// transport.SimConfig.Workers). Zero means GOMAXPROCS; one forces
	// serial delivery. Seeded runs are bit-identical at any setting.
	Workers int
	// Shards bounds the worker pool for the per-node phases of a Tick
	// (expiry sweep, refresh): the plane is cut into shard regions
	// stepped concurrently, with sends staged and merged
	// deterministically. Zero means GOMAXPROCS; one forces serial
	// sweeps. Seeded runs are bit-identical at any setting. Worlds
	// below a small node-count threshold always run serial.
	Shards int
	// NodeOptions are extra middleware options applied to every node.
	NodeOptions []core.Option
}

// World is a running emulation.
type World struct {
	cfg Config
	// nodeCfg is the resolved middleware configuration shared by every
	// node of the world (built from cfg.NodeOptions on first attach).
	nodeCfg *core.Config
	sim     *transport.Sim
	graph   *topology.Graph

	// Dense per-node hot state, indexed by topology handle. A nil entry
	// means the handle is dead or has no node/mover. Grown on attach,
	// nilled on removal (handles are recycled by the graph).
	nodes  []*core.Node
	movers []mobility.Mover

	// Reusable scratch for the tick phases (driving goroutine only).
	order     []topology.Handle
	shardBufs [][]topology.Handle

	ticks int
	time  float64

	// faultHook, when set, runs every Tick after mobility and topology
	// recomputation but before the refresh pass and radio round, so
	// scripted faults applied at tick T shape tick T's traffic. It runs
	// on the driving goroutine: it may mutate topology, sim fault state
	// and nodes freely (the radio is between Steps).
	faultHook func(tick int)

	// Telemetry. Churn counters are atomics so scrapes read them
	// lock-free; the cached rollup is what live gauges serve (the graph
	// and node slices must not be walked concurrently with a Tick).
	churnAdds    atomic.Int64
	churnRemoves atomic.Int64
	obsOn        atomic.Bool
	lastRollup   atomic.Pointer[Rollup]
	// tickSeconds, when set by RegisterMetrics, times each Tick on the
	// wall clock. The wall clock feeds telemetry only — it never
	// influences emulation behavior, which stays purely tick-driven.
	tickSeconds atomic.Pointer[obs.Histogram]
	// lastRate is the previous (rounds, wall time) sample the
	// rounds-per-second gauge differentiates against, scrape to scrape.
	lastRate atomic.Pointer[rateSample]
}

// rateSample is one throughput observation point.
type rateSample struct {
	rounds int64
	at     time.Time
}

// New builds a world with one middleware node per graph node.
func New(cfg Config) *World {
	if cfg.Graph == nil {
		cfg.Graph = topology.New()
	}
	w := &World{
		cfg:   cfg,
		graph: cfg.Graph,
		sim: transport.NewSim(cfg.Graph, transport.SimConfig{
			Loss:    cfg.Loss,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
		}),
	}
	for _, id := range cfg.Graph.Nodes() {
		w.attach(id)
	}
	return w
}

// grow extends the dense per-handle slices to cover handle h.
func (w *World) grow(h topology.Handle) {
	for len(w.nodes) <= int(h) {
		w.nodes = append(w.nodes, nil)
	}
	for len(w.movers) <= int(h) {
		w.movers = append(w.movers, nil)
	}
}

func (w *World) attach(id tuple.NodeID) *core.Node {
	ep := w.sim.Attach(id, nil)
	// All nodes of a world are configured identically except for their
	// position closure: resolve the options once and share the frozen
	// Config, overriding only the localizer per node. At 100k+ nodes
	// the per-node Config copy of core.New is a measurable slice of
	// the engine's footprint.
	if w.nodeCfg == nil {
		w.nodeCfg = core.NewConfig(w.cfg.NodeOptions...)
	}
	n := core.NewShared(ep, w.nodeCfg)
	// A localizer supplied through NodeOptions wins (it always has);
	// otherwise every node reads its position from the world's graph.
	if _, unset := w.nodeCfg.Localizer.(space.NoLocalizer); unset {
		n.SetLocalizer(space.FuncLocalizer(func() (space.Point, bool) {
			return w.graph.Position(id)
		}))
	}
	w.sim.Bind(id, n)
	h, _ := w.graph.Handle(id) // Attach added the node to the graph
	w.grow(h)
	w.nodes[h] = n
	return n
}

// nodeAt returns the middleware node at handle h (nil if none).
func (w *World) nodeAt(h topology.Handle) *core.Node {
	if h < 0 || int(h) >= len(w.nodes) {
		return nil
	}
	return w.nodes[h]
}

// Node returns the middleware node with the given id (nil if absent).
func (w *World) Node(id tuple.NodeID) *core.Node {
	h, ok := w.graph.Handle(id)
	if !ok {
		return nil
	}
	return w.nodeAt(h)
}

// Config returns the configuration the world was built with (baseline
// loss, radio range, … — fault injectors restore these on heal).
func (w *World) Config() Config { return w.cfg }

// SetFaultHook installs (or clears, with nil) the per-tick fault
// driver. See the faultHook field for the execution point.
func (w *World) SetFaultHook(fn func(tick int)) { w.faultHook = fn }

// Nodes returns all node ids in deterministic order.
func (w *World) Nodes() []tuple.NodeID { return w.graph.Nodes() }

// Graph exposes the live topology (and its oracles).
func (w *World) Graph() *topology.Graph { return w.graph }

// Sim exposes the underlying radio (for traffic statistics).
func (w *World) Sim() *transport.Sim { return w.sim }

// Ticks returns the number of elapsed ticks.
func (w *World) Ticks() int { return w.ticks }

// Time returns the elapsed simulated time.
func (w *World) Time() float64 { return w.time }

// AddNode attaches a new node at the given position (a device joining
// the network). Links appear on the next topology recomputation, or via
// explicit AddEdge.
func (w *World) AddNode(id tuple.NodeID, pos space.Point) *core.Node {
	w.graph.SetPosition(id, pos)
	return w.attach(id)
}

// RemoveNode crashes a node: its links drop and its middleware state
// disappears.
func (w *World) RemoveNode(id tuple.NodeID) {
	w.churnRemoves.Add(int64(len(w.graph.Neighbors(id))))
	h, ok := w.graph.Handle(id) // capture before Detach frees the handle
	w.sim.Detach(id)
	if ok && int(h) < len(w.nodes) {
		w.nodes[h] = nil
		w.movers[h] = nil
	}
}

// AddEdge manually links two nodes (wired scenario / scripted edits).
func (w *World) AddEdge(a, b tuple.NodeID) {
	if !w.graph.HasEdge(a, b) {
		w.churnAdds.Add(1)
	}
	w.sim.AddEdge(a, b)
}

// RemoveEdge manually unlinks two nodes.
func (w *World) RemoveEdge(a, b tuple.NodeID) {
	if w.graph.HasEdge(a, b) {
		w.churnRemoves.Add(1)
	}
	w.sim.RemoveEdge(a, b)
}

// SetMover assigns a mobility model to a node (added to the topology if
// missing). The mover's position becomes authoritative for the node
// from the next Tick.
func (w *World) SetMover(id tuple.NodeID, m mobility.Mover) {
	w.graph.AddNode(id)
	h, _ := w.graph.Handle(id)
	w.grow(h)
	w.movers[h] = m
}

// Mover returns the mover assigned to id, if any.
func (w *World) Mover(id tuple.NodeID) (mobility.Mover, bool) {
	h, ok := w.graph.Handle(id)
	if !ok || int(h) >= len(w.movers) || w.movers[h] == nil {
		return nil, false
	}
	return w.movers[h], true
}

// MoveNode teleports a node (the emulator's drag-and-drop) and rewires
// the topology if a radio range is configured.
func (w *World) MoveNode(id tuple.NodeID, pos space.Point) {
	w.graph.SetPosition(id, pos)
	w.recompute()
}

func (w *World) recompute() {
	if w.cfg.RadioRange <= 0 {
		return
	}
	events := w.graph.Recompute(w.cfg.RadioRange)
	var adds, removes int64
	for _, e := range events {
		if e.Added {
			adds++
		} else {
			removes++
		}
	}
	w.churnAdds.Add(adds)
	w.churnRemoves.Add(removes)
	w.sim.ApplyEdgeEvents(events)
}

// shardMinNodes is the world size below which the per-node phases stay
// serial: goroutine fan-out costs more than it saves on small worlds,
// and serial order is the reference the staged merge reproduces anyway.
const shardMinNodes = 256

func (w *World) shardCount(n int) int {
	if n < shardMinNodes {
		return 1
	}
	s := w.cfg.Shards
	if s == 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// forEachNodeSharded runs fn once per live, non-paused node. On small
// worlds (or Shards=1) nodes are visited serially in ascending id
// order. On large worlds the plane is cut into shard regions (grid-cell
// columns one radio range wide) visited by one worker each, with every
// send staged and committed afterwards in (source, sequence) order —
// the same order the serial sweep commits in, which is what keeps
// seeded runs bit-identical across shard counts.
func (w *World) forEachNodeSharded(fn func(n *core.Node)) {
	paused := w.sim.PausedSnapshot()
	shards := w.shardCount(w.graph.Len())
	if shards <= 1 {
		w.order = w.graph.AppendSortedHandles(w.order[:0])
		for _, h := range w.order {
			n := w.nodeAt(h)
			if n == nil {
				continue
			}
			if paused != nil {
				if _, held := paused[w.graph.IDAt(h)]; held {
					continue
				}
			}
			fn(n)
		}
		return
	}
	w.shardBufs = w.graph.ShardHandles(shards, w.shardBufs)
	w.sim.StageSends(func() {
		var wg sync.WaitGroup
		for _, bucket := range w.shardBufs {
			if len(bucket) == 0 {
				continue
			}
			wg.Add(1)
			go func(bucket []topology.Handle) {
				defer wg.Done()
				for _, h := range bucket {
					n := w.nodeAt(h)
					if n == nil {
						continue
					}
					if paused != nil {
						if _, held := paused[w.graph.IDAt(h)]; held {
							continue
						}
					}
					fn(n)
				}
			}(bucket)
		}
		wg.Wait()
	})
}

// Tick advances time: movers step by dt, the topology follows the new
// positions, and one radio round is delivered.
func (w *World) Tick(dt float64) {
	if h := w.tickSeconds.Load(); h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start).Seconds()) }()
	}
	w.ticks++
	w.time += dt
	now := w.time
	// Expired-tuple sweep: per-node, sharded. A paused node processes
	// nothing, not even expiry.
	w.forEachNodeSharded(func(n *core.Node) {
		n.SweepExpired(now)
	})
	// Mobility stays serial in ascending id order: movers routinely
	// share one scenario rng, so their step order is part of the seed.
	w.order = w.graph.AppendSortedHandles(w.order[:0])
	for _, h := range w.order {
		if int(h) < len(w.movers) && w.movers[h] != nil {
			w.graph.SetPositionAt(h, w.movers[h].Step(dt))
		}
	}
	w.recompute()
	if w.faultHook != nil {
		w.faultHook(w.ticks)
	}
	if w.cfg.RefreshEvery > 0 && w.ticks%w.cfg.RefreshEvery == 0 {
		w.RefreshAll()
	}
	w.sim.Step()
	if w.obsOn.Load() {
		w.PublishRollup()
	}
}

// RefreshAll runs the anti-entropy pass on every non-paused node (in
// deterministic merge order, sharded on large worlds) and returns the
// number of announcements.
func (w *World) RefreshAll() int {
	var total atomic.Int64
	w.forEachNodeSharded(func(n *core.Node) {
		total.Add(int64(n.Refresh()))
	})
	return int(total.Load())
}

// Settle drains the radio to quiescence without moving anything,
// returning the number of rounds it took (maxRounds if it never went
// quiet).
func (w *World) Settle(maxRounds int) int {
	return w.sim.RunUntilQuiet(maxRounds)
}

// GradientError compares the named maintained structure against the
// BFS oracle from src: it returns the mean absolute value error over
// nodes where both exist, plus the counts of nodes missing the tuple
// (reachable within scope but without a copy) and holding it in excess
// (beyond scope or unreachable but still storing it).
func (w *World) GradientError(kind, name string, src tuple.NodeID, scope float64) (meanAbs float64, missing, extra int) {
	dist := w.graph.BFSDistances(src)
	var sum float64
	var n int
	for _, h := range w.graph.AppendSortedHandles(nil) {
		node := w.nodeAt(h)
		if node == nil {
			continue
		}
		id := w.graph.IDAt(h)
		ts := node.Read(pattern.ByName(kind, name))
		var have bool
		var val float64
		if len(ts) > 0 {
			if m, ok := ts[0].(tuple.Maintained); ok {
				have = true
				val = m.Value()
			}
		}
		d, reachable := dist[id]
		want := reachable && float64(d) <= scope
		switch {
		case want && have:
			sum += math.Abs(val - float64(d))
			n++
		case want && !have:
			missing++
		case !want && have:
			extra++
		}
	}
	if n > 0 {
		meanAbs = sum / float64(n)
	}
	return meanAbs, missing, extra
}

// TotalStats sums the middleware counters across all nodes. It may run
// concurrently with a Tick (the telemetry contract): it walks its own
// handle snapshot and the engines' atomic counters only.
func (w *World) TotalStats() core.Stats {
	var total core.Stats
	for _, h := range w.graph.AppendSortedHandles(nil) {
		if n := w.nodeAt(h); n != nil {
			total = total.Add(n.Stats())
		}
	}
	return total
}

// Render draws the world as ASCII art (the Fig. 3 snapshot analogue):
// a width×height character grid over the bounding box, with each node
// drawn using the mark function ('o' by default; return 0 to use the
// default).
func (w *World) Render(width, height int, mark func(tuple.NodeID) rune) string {
	ids := w.Nodes()
	if len(ids) == 0 || width < 2 || height < 2 {
		return ""
	}
	minP := space.Point{X: math.Inf(1), Y: math.Inf(1)}
	maxP := space.Point{X: math.Inf(-1), Y: math.Inf(-1)}
	type placed struct {
		id  tuple.NodeID
		pos space.Point
	}
	var ps []placed
	for _, id := range ids {
		p, ok := w.graph.Position(id)
		if !ok {
			continue
		}
		ps = append(ps, placed{id: id, pos: p})
		minP.X = math.Min(minP.X, p.X)
		minP.Y = math.Min(minP.Y, p.Y)
		maxP.X = math.Max(maxP.X, p.X)
		maxP.Y = math.Max(maxP.Y, p.Y)
	}
	if len(ps) == 0 {
		return ""
	}
	spanX := math.Max(maxP.X-minP.X, 1e-9)
	spanY := math.Max(maxP.Y-minP.Y, 1e-9)
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(".", width))
	}
	for _, p := range ps {
		x := int((p.pos.X - minP.X) / spanX * float64(width-1))
		y := int((p.pos.Y - minP.Y) / spanY * float64(height-1))
		r := rune('o')
		if mark != nil {
			if m := mark(p.id); m != 0 {
				r = m
			}
		}
		grid[height-1-y][x] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tick %d, %d nodes, %d links\n", w.ticks, w.graph.Len(), w.graph.EdgeCount())
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}
