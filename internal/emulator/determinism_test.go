package emulator

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"tota/internal/core"
	"tota/internal/mobility"
	"tota/internal/obs"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// fingerprint summarizes a world's full distributed state: every node's
// stored tuples (kind, id, content) in deterministic order.
func fingerprint(w *World) string {
	var b strings.Builder
	for _, id := range w.Nodes() {
		ts := w.Node(id).Read(tuple.MatchAll())
		lines := make([]string, 0, len(ts))
		for _, t := range ts {
			lines = append(lines, fmt.Sprintf("%s|%s|%s", t.Kind(), t.ID(), t.Content()))
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s:{%s}\n", id, strings.Join(lines, ";"))
	}
	return b.String()
}

// runScenario executes a fixed lossy mobile scenario and returns the
// final state fingerprint.
func runScenario(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	g := topology.ConnectedRandomGeometric(30, 10, 3, rng, 100)
	w := New(Config{Graph: g, RadioRange: 3, Loss: 0.2, RefreshEvery: 5, Seed: seed})
	bounds := space.Rect{Max: space.Point{X: 10, Y: 10}}
	for i, id := range g.Nodes() {
		if i%3 == 0 {
			p, _ := g.Position(id)
			w.SetMover(id, mobility.NewRandomWaypoint(p, bounds, 0.5, 1, 0, rng))
		}
	}
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewGradient("f")); err != nil {
		return "inject-failed"
	}
	if _, err := w.Node(topology.NodeName(5)).Inject(pattern.NewFlood("news")); err != nil {
		return "inject-failed"
	}
	for i := 0; i < 40; i++ {
		w.Tick(0.5)
	}
	w.Settle(100000)
	return fingerprint(w)
}

// TestSameSeedSameUniverse is the reproducibility guarantee every
// experiment rests on: identical seeds produce byte-identical final
// distributed state, even with loss, mobility and refresh in play.
func TestSameSeedSameUniverse(t *testing.T) {
	a := runScenario(99)
	b := runScenario(99)
	if a != b {
		t.Error("same seed diverged")
	}
	c := runScenario(100)
	if a == c {
		t.Error("different seeds produced identical universes (suspicious)")
	}
}

// runTracedScenario executes the fixed lossy mobile scenario with the
// engine trace stream fanned out to both a per-node collector and a
// JSONL export sink, returning the per-node streams and the sink's
// written/dropped counts.
func runTracedScenario(seed int64, workers int) (perNode map[tuple.NodeID][]string, written, dropped int64) {
	var jsonl strings.Builder
	sink := obs.NewJSONLSink(&jsonl, nil, nil, 1<<16)
	var mu sync.Mutex
	perNode = make(map[tuple.NodeID][]string)
	tracer := obs.MultiTracer(sink.Tracer(), func(ev core.TraceEvent) {
		mu.Lock()
		perNode[ev.Node] = append(perNode[ev.Node], ev.String())
		mu.Unlock()
	})

	rng := rand.New(rand.NewSource(seed))
	g := topology.ConnectedRandomGeometric(30, 10, 3, rng, 100)
	w := New(Config{
		Graph:        g,
		RadioRange:   3,
		Loss:         0.2,
		RefreshEvery: 5,
		Seed:         seed,
		Workers:      workers,
		NodeOptions:  []core.Option{core.WithTracer(tracer)},
	})
	bounds := space.Rect{Max: space.Point{X: 10, Y: 10}}
	for i, id := range g.Nodes() {
		if i%3 == 0 {
			p, _ := g.Position(id)
			w.SetMover(id, mobility.NewRandomWaypoint(p, bounds, 0.5, 1, 0, rng))
		}
	}
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewGradient("f")); err != nil {
		panic(err)
	}
	for i := 0; i < 40; i++ {
		w.Tick(0.5)
	}
	w.Settle(100000)
	_ = sink.Close()
	return perNode, sink.Written(), sink.Dropped()
}

// TestTraceStreamsDeterministicAcrossWorkers extends the same-seed
// guarantee to the observability pipeline: each node's engine trace
// stream is complete (nothing shed by the export sink) and identically
// ordered whether the radio delivers serially (Workers=1) or on a
// parallel worker pool.
func TestTraceStreamsDeterministicAcrossWorkers(t *testing.T) {
	serial, serialWritten, serialDropped := runTracedScenario(99, 1)
	if serialDropped != 0 {
		t.Fatalf("serial sink shed %d events", serialDropped)
	}
	var total int64
	for _, evs := range serial {
		total += int64(len(evs))
	}
	if total == 0 {
		t.Fatal("scenario traced nothing; not a meaningful determinism check")
	}
	if serialWritten != total {
		t.Errorf("sink exported %d of %d traced events", serialWritten, total)
	}
	for _, workers := range []int{2, 8} {
		parallel, written, dropped := runTracedScenario(99, workers)
		if dropped != 0 {
			t.Errorf("workers=%d: sink shed %d events", workers, dropped)
		}
		if written != serialWritten {
			t.Errorf("workers=%d: exported %d events, serial exported %d", workers, written, serialWritten)
		}
		if !reflect.DeepEqual(serial, parallel) {
			for id, want := range serial {
				if got := parallel[id]; !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: node %s trace diverged (%d vs %d events)",
						workers, id, len(want), len(got))
					break
				}
			}
		}
	}
}

// TestRefreshEveryHealsLossyWorld exercises the emulator's integrated
// anti-entropy: with 30% loss and periodic refresh, the structure must
// end exactly right.
func TestRefreshEveryHealsLossyWorld(t *testing.T) {
	g := topology.Grid(6, 6, 1)
	w := New(Config{Graph: g, Loss: 0.3, RefreshEvery: 3, Seed: 4})
	src := topology.NodeName(0)
	if _, err := w.Node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		w.Tick(1)
	}
	w.Sim().SetLoss(0)
	w.RefreshAll()
	w.Settle(100000)
	meanAbs, missing, extra := w.GradientError(pattern.KindGradient, "f", src, 1e18)
	if meanAbs != 0 || missing != 0 || extra != 0 {
		t.Errorf("lossy world did not heal: err=%v missing=%d extra=%d", meanAbs, missing, extra)
	}
}
