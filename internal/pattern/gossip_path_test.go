package pattern

import (
	"testing"

	"tota/internal/tuple"
)

func TestGossipCoinDeterministicAndSpread(t *testing.T) {
	g := NewGossip("rumor", 0.5)
	g.SetID(tuple.ID{Node: "src", Seq: 1})
	if g.coin("n1") != g.coin("n1") {
		t.Error("coin not deterministic")
	}
	// Over many nodes the coin must actually spread over [0,1).
	low, high := 0, 0
	for i := 0; i < 200; i++ {
		c := g.coin(tuple.NodeID(string(rune('a'+i%26))) + tuple.NodeID(rune('0'+i/26)))
		if c < 0 || c >= 1 {
			t.Fatalf("coin out of range: %v", c)
		}
		if c < 0.5 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("coin never crossed 0.5: low=%d high=%d", low, high)
	}
}

func TestGossipHooks(t *testing.T) {
	g := NewGossip("rumor", 0, tuple.S("text", "x")).Within(3)
	g.SetID(tuple.ID{Node: "src", Seq: 2})
	got := roundTrip(t, g).(*Gossip)
	if got.P != 0 || got.TTL != 3 {
		t.Errorf("decoded = %+v", got)
	}
	injectCtx := &tuple.Ctx{Self: "src", From: "src", Hop: 0}
	if !got.ShouldPropagate(injectCtx) {
		t.Error("source did not relay")
	}
	// p=0: no other node relays, but they all store.
	relayCtx := &tuple.Ctx{Self: "n1", From: "src", Hop: 1}
	if got.ShouldPropagate(relayCtx) {
		t.Error("p=0 relayed")
	}
	if !got.ShouldStore(relayCtx) {
		t.Error("reached node did not store")
	}
	sure := NewGossip("rumor", 1).Within(2)
	sure.SetID(tuple.ID{Node: "s", Seq: 3})
	if !sure.ShouldPropagate(relayCtx) {
		t.Error("p=1 did not relay")
	}
	if sure.ShouldPropagate(&tuple.Ctx{Self: "n", From: "m", Hop: 2}) {
		t.Error("TTL ignored")
	}
}

func TestPathEvolveRecordsRoute(t *testing.T) {
	p := NewPath("trace", tuple.S("k", "v"))
	p.SetID(tuple.ID{Node: "a", Seq: 1})
	injectCtx := &tuple.Ctx{Self: "a", From: "a", Hop: 0}
	p.OnArrive(injectCtx)
	if len(p.Route) != 1 || p.Route[0] != "a" {
		t.Fatalf("route after inject = %v", p.Route)
	}

	atB := p.Evolve(&tuple.Ctx{Self: "b", From: "a", Hop: 1}).(*Path)
	atC := atB.Evolve(&tuple.Ctx{Self: "c", From: "b", Hop: 2}).(*Path)
	want := []tuple.NodeID{"a", "b", "c"}
	if len(atC.Route) != len(want) {
		t.Fatalf("route = %v", atC.Route)
	}
	for i := range want {
		if atC.Route[i] != want[i] {
			t.Fatalf("route = %v, want %v", atC.Route, want)
		}
	}
	// Evolve must not mutate the ancestor copies.
	if len(atB.Route) != 2 {
		t.Errorf("ancestor mutated: %v", atB.Route)
	}

	got := roundTrip(t, atC).(*Path)
	if len(got.Route) != 3 || got.Route[2] != "c" {
		t.Errorf("decoded route = %v", got.Route)
	}
}

func TestPathSupersedesShorter(t *testing.T) {
	long := NewPath("t")
	long.Route = []tuple.NodeID{"a", "b", "c", "d"}
	short := NewPath("t")
	short.Route = []tuple.NodeID{"a", "x", "d"}
	if !short.Supersedes(long) || long.Supersedes(short) {
		t.Error("shorter route did not win")
	}
	if short.Supersedes(NewFlood("t")) {
		t.Error("foreign kind superseded")
	}
}

func TestExpiringLeaseRoundTrip(t *testing.T) {
	f := NewFlood("n").Expires(12.5)
	f.SetID(tuple.ID{Node: "s", Seq: 4})
	if got := roundTrip(t, f).(*Flood); got.Lease() != 12.5 {
		t.Errorf("flood lease = %v", got.Lease())
	}
	g := NewGradient("n").Expires(3)
	g.SetID(tuple.ID{Node: "s", Seq: 5})
	if got := roundTrip(t, g).(*Gradient); got.Lease() != 3 {
		t.Errorf("gradient lease = %v", got.Lease())
	}
	if NewFlood("x").Lease() != 0 {
		t.Error("default lease not zero")
	}
}
