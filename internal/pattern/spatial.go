package pattern

import (
	"math"

	"tota/internal/space"
	"tota/internal/tuple"
)

// Spatial is a gradient confined to a physical disc around its source,
// the paper's "enabling a tuple to be propagated, say, at most for 10
// meters from its source" — realized with data from the node's
// localization device. The source position is captured at injection
// (tuple.Injectable) and carried in the content so every hop can
// evaluate the distance. Nodes without a localization fix neither store
// nor relay spatial tuples.
//
// Content layout: (name, payload..., _val, _step, _scope, _radius, _sx, _sy).
type Spatial struct {
	Gradient

	// Radius is the physical propagation bound in space units.
	Radius float64
	// Src is the source position captured at injection.
	Src space.Point
	// hasSrc reports whether the source position was captured; without
	// it the tuple stays local to the source.
	hasSrc bool
}

var (
	_ tuple.Tuple      = (*Spatial)(nil)
	_ tuple.Maintained = (*Spatial)(nil)
	_ tuple.Injectable = (*Spatial)(nil)
)

// NewSpatial creates a unit-step gradient confined to radius space
// units around the injection point.
func NewSpatial(name string, radius float64, payload ...tuple.Field) *Spatial {
	return &Spatial{
		Gradient: Gradient{
			Name:     name,
			Payload:  payload,
			StepSize: 1,
			Scope:    math.Inf(1),
		},
		Radius: radius,
	}
}

// Kind implements tuple.Tuple.
func (s *Spatial) Kind() string { return KindSpatial }

// Content implements tuple.Tuple.
func (s *Spatial) Content() tuple.Content {
	c := s.Gradient.Content()
	return append(c,
		tuple.F("_radius", s.Radius),
		tuple.F("_sx", s.Src.X),
		tuple.F("_sy", s.Src.Y),
		tuple.B("_hassrc", s.hasSrc),
	)
}

// OnInject implements tuple.Injectable, capturing the source position.
func (s *Spatial) OnInject(ctx *tuple.Ctx) tuple.Tuple {
	c := *s
	c.Src = ctx.Pos
	c.hasSrc = ctx.HasPos
	return &c
}

// inRange reports whether the hook's node lies within the disc.
func (s *Spatial) inRange(ctx *tuple.Ctx) bool {
	if ctx.Injected() {
		return true
	}
	if !s.hasSrc || !ctx.HasPos {
		return false
	}
	return ctx.Pos.Dist(s.Src) <= s.Radius
}

// ShouldStore implements tuple.Tuple.
func (s *Spatial) ShouldStore(ctx *tuple.Ctx) bool {
	return s.inRange(ctx) && s.Gradient.ShouldStore(ctx)
}

// ShouldPropagate implements tuple.Tuple.
func (s *Spatial) ShouldPropagate(ctx *tuple.Ctx) bool {
	return s.inRange(ctx) && s.Gradient.ShouldPropagate(ctx)
}

// Evolve implements tuple.Tuple.
func (s *Spatial) Evolve(*tuple.Ctx) tuple.Tuple {
	return s.WithValue(s.Val + s.Step())
}

// Supersedes implements tuple.Tuple.
func (s *Spatial) Supersedes(old tuple.Tuple) bool {
	os, ok := old.(*Spatial)
	return ok && s.Val < os.Val
}

// WithValue implements tuple.Maintained.
func (s *Spatial) WithValue(v float64) tuple.Tuple {
	c := *s
	c.Val = v
	return &c
}

func decodeSpatial(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	g, err := gradientFromContent(c)
	if err != nil {
		return nil, err
	}
	_, meta := SplitMeta(c)
	s := &Spatial{
		Gradient: *g,
		Radius:   MetaFloat(meta, "_radius", 0),
		Src: space.Point{
			X: MetaFloat(meta, "_sx", 0),
			Y: MetaFloat(meta, "_sy", 0),
		},
		hasSrc: MetaBool(meta, "_hassrc", false),
	}
	s.SetID(id)
	return s, nil
}
