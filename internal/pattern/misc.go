package pattern

import (
	"tota/internal/tuple"
)

// Eraser is the paper's deleting propagation: a tuple "propagating by
// deleting specific tuples in the propagation nodes (this can be used
// to supply the lack of a delete primitive in the API)". It floods (TTL
// optional), deleting every locally stored tuple of TargetKind whose
// name field equals TargetName as it passes; it is not stored itself.
//
// Deleting a *maintained* structure copy this way triggers the
// middleware's repair (the hole heals from the neighbors); to remove a
// maintained structure network-wide use the Retract API instead.
//
// Content layout: (name, _tkind, _tname, _ttl).
type Eraser struct {
	tuple.Base

	Name       string
	TargetKind string
	TargetName string
	TTL        int64
}

var _ tuple.Tuple = (*Eraser)(nil)

// NewEraser creates an unbounded eraser for tuples of the given kind
// and application name.
func NewEraser(name, targetKind, targetName string) *Eraser {
	return &Eraser{Name: name, TargetKind: targetKind, TargetName: targetName}
}

// Within bounds the eraser to ttl hops and returns it.
func (e *Eraser) Within(ttl int64) *Eraser {
	e.TTL = ttl
	return e
}

// Kind implements tuple.Tuple.
func (e *Eraser) Kind() string { return KindEraser }

// Content implements tuple.Tuple.
func (e *Eraser) Content() tuple.Content {
	c := AppContent(e.Name, nil)
	return append(c,
		tuple.S("_tkind", e.TargetKind),
		tuple.S("_tname", e.TargetName),
		tuple.I("_ttl", e.TTL),
	)
}

// OnArrive implements tuple.Tuple, deleting the targets.
func (e *Eraser) OnArrive(ctx *tuple.Ctx) {
	if ctx.Store == nil {
		return
	}
	ctx.Store.Delete(ByName(e.TargetKind, e.TargetName))
}

// ShouldStore implements tuple.Tuple: erasers pass through without
// being stored.
func (e *Eraser) ShouldStore(*tuple.Ctx) bool { return false }

// ShouldPropagate implements tuple.Tuple.
func (e *Eraser) ShouldPropagate(ctx *tuple.Ctx) bool {
	return e.TTL <= 0 || int64(ctx.Hop) < e.TTL
}

func decodeEraser(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := SplitMeta(c)
	name, _, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	e := &Eraser{
		Name:       name,
		TargetKind: MetaString(meta, "_tkind", ""),
		TargetName: MetaString(meta, "_tname", ""),
		TTL:        MetaInt(meta, "_ttl", 0),
	}
	e.SetID(id)
	return e, nil
}

// Local is a tuple that never leaves its node: application bookkeeping
// living in the local tuple space so it is visible to templates,
// subscriptions and data-adaptive propagation rules of passing tuples.
//
// Content layout: (name, payload...).
type Local struct {
	tuple.Base

	Name    string
	Payload tuple.Content
}

var _ tuple.Tuple = (*Local)(nil)

// NewLocal creates a node-local tuple.
func NewLocal(name string, payload ...tuple.Field) *Local {
	return &Local{Name: name, Payload: payload}
}

// Kind implements tuple.Tuple.
func (l *Local) Kind() string { return KindLocal }

// Content implements tuple.Tuple.
func (l *Local) Content() tuple.Content {
	return AppContent(l.Name, l.Payload)
}

// ShouldPropagate implements tuple.Tuple: local tuples never propagate.
func (l *Local) ShouldPropagate(*tuple.Ctx) bool { return false }

func decodeLocal(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, _ := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	l := &Local{Name: name, Payload: payload}
	l.SetID(id)
	return l, nil
}
