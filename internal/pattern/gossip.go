package pattern

import (
	"hash/fnv"

	"tota/internal/tuple"
)

// KindGossip is the registered kind of Gossip tuples.
const KindGossip = "tota:gossip"

// Gossip is a probabilistic flood: each node relays the tuple with
// probability P — the classic epidemic trade of coverage for traffic on
// dense networks. The decision is drawn from a hash of (tuple id, node
// id), so it is deterministic per (tuple, node) and reproducible across
// runs while still independent across nodes. Every reached node stores
// the tuple; the injection node always relays.
//
// Content layout: (name, payload..., _p, _ttl).
type Gossip struct {
	tuple.Base

	Name    string
	Payload tuple.Content
	// P is the per-node relay probability in [0, 1].
	P float64
	// TTL bounds propagation in hops; 0 or negative means unbounded.
	TTL int64
}

var _ tuple.Tuple = (*Gossip)(nil)

// NewGossip creates a gossip tuple with relay probability p.
func NewGossip(name string, p float64, payload ...tuple.Field) *Gossip {
	return &Gossip{Name: name, Payload: payload, P: p}
}

// Within bounds the gossip to ttl hops and returns it.
func (g *Gossip) Within(ttl int64) *Gossip {
	g.TTL = ttl
	return g
}

// Kind implements tuple.Tuple.
func (g *Gossip) Kind() string { return KindGossip }

// Content implements tuple.Tuple.
func (g *Gossip) Content() tuple.Content {
	c := AppContent(g.Name, g.Payload)
	return append(c, tuple.F("_p", g.P), tuple.I("_ttl", g.TTL))
}

// ShouldStore implements tuple.Tuple: every reached node keeps a copy.
func (g *Gossip) ShouldStore(ctx *tuple.Ctx) bool {
	return g.TTL <= 0 || int64(ctx.Hop) <= g.TTL
}

// ShouldPropagate implements tuple.Tuple: the source always relays;
// other nodes flip the deterministic coin.
func (g *Gossip) ShouldPropagate(ctx *tuple.Ctx) bool {
	if g.TTL > 0 && int64(ctx.Hop) >= g.TTL {
		return false
	}
	if ctx.Injected() {
		return true
	}
	return g.coin(ctx.Self) < g.P
}

// coin hashes (id, node) into [0, 1). The FNV-1a sum is run through a
// splitmix64 avalanche: FNV alone leaves similar inputs correlated in
// the high bits.
func (g *Gossip) coin(node tuple.NodeID) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(g.ID().String()))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(node))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z&(1<<53-1)) / float64(1<<53)
}

func decodeGossip(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	g := &Gossip{
		Name:    name,
		Payload: payload,
		P:       MetaFloat(meta, "_p", 1),
		TTL:     MetaInt(meta, "_ttl", 0),
	}
	g.SetID(id)
	return g, nil
}
