package pattern

import (
	"math"

	"tota/internal/space"
	"tota/internal/tuple"
)

// Directional is a flood confined to an angular sector anchored at the
// source — the paper's "propagating in a specific direction". The
// source position is captured at injection; nodes outside the sector
// (or without a localization fix) neither store nor relay the tuple.
//
// Content layout: (name, payload..., _ttl, _sx, _sy, _dx, _dy, _spread, _hassrc).
type Directional struct {
	tuple.Base

	Name    string
	Payload tuple.Content
	// TTL bounds propagation in hops; 0 or negative means unbounded.
	TTL int64
	// Direction is the sector axis; Spread the half-angle in radians.
	Direction space.Vector
	Spread    float64

	src    space.Point
	hasSrc bool
}

var (
	_ tuple.Tuple      = (*Directional)(nil)
	_ tuple.Injectable = (*Directional)(nil)
)

// NewDirectional creates a directional flood along direction with the
// given half-angle spread (radians).
func NewDirectional(name string, direction space.Vector, spread float64, payload ...tuple.Field) *Directional {
	return &Directional{
		Name:      name,
		Payload:   payload,
		Direction: direction,
		Spread:    spread,
	}
}

// Within bounds propagation to ttl hops and returns the tuple.
func (d *Directional) Within(ttl int64) *Directional {
	d.TTL = ttl
	return d
}

// Kind implements tuple.Tuple.
func (d *Directional) Kind() string { return KindDirectional }

// Content implements tuple.Tuple.
func (d *Directional) Content() tuple.Content {
	c := AppContent(d.Name, d.Payload)
	return append(c,
		tuple.I("_ttl", d.TTL),
		tuple.F("_sx", d.src.X),
		tuple.F("_sy", d.src.Y),
		tuple.F("_dx", d.Direction.DX),
		tuple.F("_dy", d.Direction.DY),
		tuple.F("_spread", d.Spread),
		tuple.B("_hassrc", d.hasSrc),
	)
}

// OnInject implements tuple.Injectable.
func (d *Directional) OnInject(ctx *tuple.Ctx) tuple.Tuple {
	c := *d
	c.src = ctx.Pos
	c.hasSrc = ctx.HasPos
	return &c
}

func (d *Directional) inSector(ctx *tuple.Ctx) bool {
	if ctx.Injected() {
		return true
	}
	if !d.hasSrc || !ctx.HasPos {
		return false
	}
	h := space.HalfPlane{Origin: d.src, Direction: d.Direction, Spread: d.Spread}
	return h.Contains(ctx.Pos)
}

func (d *Directional) withinTTL(hop int) bool {
	return d.TTL <= 0 || int64(hop) <= d.TTL
}

// ShouldStore implements tuple.Tuple.
func (d *Directional) ShouldStore(ctx *tuple.Ctx) bool {
	return d.inSector(ctx) && d.withinTTL(ctx.Hop)
}

// ShouldPropagate implements tuple.Tuple.
func (d *Directional) ShouldPropagate(ctx *tuple.Ctx) bool {
	return d.inSector(ctx) && (d.TTL <= 0 || int64(ctx.Hop) < d.TTL)
}

func decodeDirectional(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	d := &Directional{
		Name:    name,
		Payload: payload,
		TTL:     MetaInt(meta, "_ttl", 0),
		Direction: space.Vector{
			DX: MetaFloat(meta, "_dx", 1),
			DY: MetaFloat(meta, "_dy", 0),
		},
		Spread: MetaFloat(meta, "_spread", math.Pi/2),
		src: space.Point{
			X: MetaFloat(meta, "_sx", 0),
			Y: MetaFloat(meta, "_sy", 0),
		},
		hasSrc: MetaBool(meta, "_hassrc", false),
	}
	d.SetID(id)
	return d, nil
}
