package pattern

import (
	"math"

	"tota/internal/tuple"
)

// Flock is the §5.3 motion-coordination tuple: "val is initialized at
// X, propagate to all the nodes decreasing by one in the first X hops,
// then increasing val by one for all the further hops". The maintained
// value is the monotone hop distance d from the source (so maintenance
// works exactly like a gradient); the perceived field — what flocking
// agents descend — is FieldValue() = |d − X|, minimal at distance X.
// Agents clustering in each other's minima settle into a regular
// formation at pairwise distance X.
//
// Content layout: (name, payload..., _val, _step, _scope, _x).
type Flock struct {
	Gradient

	// X is the target distance in hops.
	X float64
}

var (
	_ tuple.Tuple      = (*Flock)(nil)
	_ tuple.Maintained = (*Flock)(nil)
)

// NewFlock creates a flocking field with target distance x hops.
func NewFlock(name string, x float64, payload ...tuple.Field) *Flock {
	return &Flock{
		Gradient: Gradient{
			Name:     name,
			Payload:  payload,
			StepSize: 1,
			Scope:    math.Inf(1),
		},
		X: x,
	}
}

// BoundedAt sets the scope in hop distance and returns the tuple.
func (f *Flock) BoundedAt(scope float64) *Flock {
	f.Scope = scope
	return f
}

// FieldValue returns the perceived flocking field at this copy: the
// paper's V-shaped val with its minimum at X hops from the source.
func (f *Flock) FieldValue() float64 {
	return math.Abs(f.Val - f.X)
}

// Kind implements tuple.Tuple.
func (f *Flock) Kind() string { return KindFlock }

// Content implements tuple.Tuple.
func (f *Flock) Content() tuple.Content {
	return append(f.Gradient.Content(), tuple.F("_x", f.X))
}

// Evolve implements tuple.Tuple.
func (f *Flock) Evolve(*tuple.Ctx) tuple.Tuple {
	return f.WithValue(f.Val + f.Step())
}

// Supersedes implements tuple.Tuple.
func (f *Flock) Supersedes(old tuple.Tuple) bool {
	of, ok := old.(*Flock)
	return ok && f.Val < of.Val
}

// WithValue implements tuple.Maintained.
func (f *Flock) WithValue(v float64) tuple.Tuple {
	c := *f
	c.Val = v
	return &c
}

func decodeFlock(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	g, err := gradientFromContent(c)
	if err != nil {
		return nil, err
	}
	_, meta := SplitMeta(c)
	f := &Flock{Gradient: *g, X: MetaFloat(meta, "_x", 0)}
	f.SetID(id)
	return f, nil
}
