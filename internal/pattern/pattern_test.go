package pattern

import (
	"math"
	"testing"

	"tota/internal/space"
	"tota/internal/tuple"
)

// fakeStore is a LocalStore stub over a fixed tuple list.
type fakeStore struct {
	tuples []tuple.Tuple
}

func (f *fakeStore) Read(tpl tuple.Template) []tuple.Tuple { return tpl.Filter(f.tuples) }

func (f *fakeStore) Delete(tpl tuple.Template) []tuple.Tuple {
	var kept, out []tuple.Tuple
	for _, t := range f.tuples {
		if tpl.Matches(t) {
			out = append(out, t)
		} else {
			kept = append(kept, t)
		}
	}
	f.tuples = kept
	return out
}

func ctxAt(self tuple.NodeID, hop int, store tuple.LocalStore) *tuple.Ctx {
	return &tuple.Ctx{Self: self, From: "prev", Hop: hop, Store: store}
}

func ctxWithPos(hop int, p space.Point) *tuple.Ctx {
	return &tuple.Ctx{Self: "n", From: "prev", Hop: hop, Pos: p, HasPos: true}
}

func roundTrip(t *testing.T, orig tuple.Tuple) tuple.Tuple {
	t.Helper()
	data, err := tuple.Encode(orig)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := tuple.Decode(tuple.DefaultRegistry, data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind() != orig.Kind() || got.ID() != orig.ID() {
		t.Fatalf("round trip changed identity: %v/%v", got.Kind(), got.ID())
	}
	if !got.Content().Equal(orig.Content()) {
		t.Fatalf("round trip changed content:\n got %v\nwant %v", got.Content(), orig.Content())
	}
	return got
}

func TestGradientRoundTripAndAccessors(t *testing.T) {
	g := NewGradient("field", tuple.S("info", "hello")).Bounded(10).WithStep(2)
	g.Val = 6
	g.SetID(tuple.ID{Node: "src", Seq: 1})
	got := roundTrip(t, g).(*Gradient)
	if got.Name != "field" || got.Val != 6 || got.StepSize != 2 || got.Scope != 10 {
		t.Errorf("decoded gradient = %+v", got)
	}
	if got.Payload.GetString("info") != "hello" {
		t.Errorf("payload lost: %v", got.Payload)
	}
	if got.Hops() != 3 {
		t.Errorf("Hops = %d, want 3", got.Hops())
	}
}

func TestGradientHooks(t *testing.T) {
	g := NewGradient("f").Bounded(3)
	g.Val = 3
	if !g.ShouldStore(nil) {
		t.Error("boundary copy not stored")
	}
	if g.ShouldPropagate(nil) {
		t.Error("boundary copy propagated")
	}
	g.Val = 2
	if !g.ShouldPropagate(nil) {
		t.Error("interior copy not propagated")
	}
	g.Val = 3.5
	if g.ShouldStore(nil) {
		t.Error("out-of-scope copy stored")
	}

	evolved, ok := NewGradient("f").Evolve(nil).(*Gradient)
	if !ok || evolved.Val != 1 {
		t.Errorf("Evolve = %v", evolved)
	}

	lower := NewGradient("f")
	lower.Val = 1
	higher := NewGradient("f")
	higher.Val = 2
	if !lower.Supersedes(higher) || higher.Supersedes(lower) {
		t.Error("Supersedes not min-wins")
	}
	if lower.Supersedes(NewFlood("f")) {
		t.Error("Supersedes accepted foreign kind")
	}
}

func TestGradientStepGuard(t *testing.T) {
	g := NewGradient("f").WithStep(-1)
	if g.Step() != 1 {
		t.Errorf("Step() = %v, want guard 1", g.Step())
	}
}

func TestGradientsAt(t *testing.T) {
	a := NewGradient("f")
	a.Val = 5
	b := NewGradient("f")
	b.Val = 2
	other := NewGradient("g")
	other.Val = 1
	st := &fakeStore{tuples: []tuple.Tuple{a, b, other}}
	v, ok := GradientsAt(st, KindGradient, "f")
	if !ok || v != 2 {
		t.Errorf("GradientsAt = %v, %v", v, ok)
	}
	if _, ok := GradientsAt(st, KindGradient, "missing"); ok {
		t.Error("found missing gradient")
	}
	if _, ok := GradientsAt(nil, KindGradient, "f"); ok {
		t.Error("nil store reported a gradient")
	}
}

func TestFloodTTL(t *testing.T) {
	f := NewFlood("news", tuple.S("headline", "x")).Within(3)
	f.SetID(tuple.ID{Node: "s", Seq: 2})
	got := roundTrip(t, f).(*Flood)
	if got.TTL != 3 {
		t.Errorf("TTL = %d", got.TTL)
	}
	tests := []struct {
		hop            int
		store, forward bool
	}{
		{hop: 0, store: true, forward: true},
		{hop: 2, store: true, forward: true},
		{hop: 3, store: true, forward: false},
		{hop: 4, store: false, forward: false},
	}
	for _, tt := range tests {
		ctx := ctxAt("n", tt.hop, nil)
		if got.ShouldStore(ctx) != tt.store {
			t.Errorf("hop %d: store = %v", tt.hop, !tt.store)
		}
		if got.ShouldPropagate(ctx) != tt.forward {
			t.Errorf("hop %d: forward = %v", tt.hop, !tt.forward)
		}
	}
	unbounded := NewFlood("all")
	if !unbounded.ShouldPropagate(ctxAt("n", 1000, nil)) {
		t.Error("unbounded flood stopped")
	}
}

func TestSpatialScoping(t *testing.T) {
	s := NewSpatial("here", 10, tuple.S("what", "printer"))
	injectCtx := ctxWithPos(0, space.Point{X: 5, Y: 5})
	injectCtx.From = injectCtx.Self
	stamped := s.OnInject(injectCtx).(*Spatial)
	if stamped.Src != (space.Point{X: 5, Y: 5}) || !stamped.hasSrc {
		t.Fatalf("OnInject did not capture position: %+v", stamped)
	}
	stamped.SetID(tuple.ID{Node: "s", Seq: 3})
	got := roundTrip(t, stamped).(*Spatial)

	inside := ctxWithPos(2, space.Point{X: 8, Y: 5})
	outside := ctxWithPos(2, space.Point{X: 50, Y: 50})
	noFix := ctxAt("n", 2, nil)
	if !got.ShouldStore(inside) || !got.ShouldPropagate(inside) {
		t.Error("in-range node rejected spatial tuple")
	}
	if got.ShouldStore(outside) || got.ShouldPropagate(outside) {
		t.Error("out-of-range node accepted spatial tuple")
	}
	if got.ShouldStore(noFix) {
		t.Error("node without fix stored spatial tuple")
	}
	if v := got.Evolve(inside).(*Spatial); v.Val != got.Val+1 {
		t.Errorf("Evolve val = %v", v.Val)
	}
	if wv := got.WithValue(4).(*Spatial); wv.Val != 4 || wv.Src != got.Src {
		t.Errorf("WithValue = %+v", wv)
	}
}

func TestSpatialWithoutSourceFixStaysLocal(t *testing.T) {
	s := NewSpatial("here", 10)
	injectCtx := ctxAt("self", 0, nil)
	injectCtx.From = "self"
	stamped := s.OnInject(injectCtx).(*Spatial)
	if stamped.ShouldStore(ctxWithPos(1, space.Point{})) {
		t.Error("spatial tuple without source fix propagated")
	}
	if !stamped.ShouldStore(injectCtx) {
		t.Error("spatial tuple rejected at its own source")
	}
}

func TestDirectionalSector(t *testing.T) {
	d := NewDirectional("east", space.Vector{DX: 1, DY: 0}, math.Pi/4).Within(5)
	injectCtx := ctxWithPos(0, space.Point{X: 0, Y: 0})
	injectCtx.From = injectCtx.Self
	stamped := d.OnInject(injectCtx).(*Directional)
	stamped.SetID(tuple.ID{Node: "s", Seq: 4})
	got := roundTrip(t, stamped).(*Directional)

	ahead := ctxWithPos(1, space.Point{X: 5, Y: 1})
	behind := ctxWithPos(1, space.Point{X: -5, Y: 0})
	farHop := ctxWithPos(6, space.Point{X: 5, Y: 0})
	if !got.ShouldStore(ahead) || !got.ShouldPropagate(ahead) {
		t.Error("node in sector rejected")
	}
	if got.ShouldStore(behind) {
		t.Error("node behind source accepted")
	}
	if got.ShouldStore(farHop) || got.ShouldPropagate(farHop) {
		t.Error("TTL not applied")
	}
}

func TestDownhillDescent(t *testing.T) {
	mk := func(val float64) *fakeStore {
		g := NewGradient("dest")
		g.Val = val
		return &fakeStore{tuples: []tuple.Tuple{g}}
	}
	msg := NewDownhill("dest", tuple.S("body", "hello"))
	msg.SetID(tuple.ID{Node: "s", Seq: 5})
	got := roundTrip(t, msg).(*Downhill)

	// At a node with value 3: downhill from inf, not a destination.
	ctx3 := ctxAt("n3", 1, mk(3))
	ev3 := got.Evolve(ctx3).(*Downhill)
	if ev3.Best != 3 {
		t.Errorf("Best after val-3 node = %v", ev3.Best)
	}
	if ev3.ShouldStore(ctx3) {
		t.Error("stored at intermediate node")
	}
	if !ev3.ShouldPropagate(ctx3) {
		t.Error("did not relay downhill")
	}

	// Copy with Best 3 arriving at an uphill node (value 5): dies.
	ctx5 := ctxAt("n5", 2, mk(5))
	ev5 := ev3.Evolve(ctx5).(*Downhill)
	if ev5.ShouldPropagate(ctx5) {
		t.Error("relayed uphill")
	}

	// At the destination (value 0): delivered, not relayed.
	ctx0 := ctxAt("dst", 3, mk(0))
	ev0 := ev3.Evolve(ctx0).(*Downhill)
	if !ev0.ShouldStore(ctx0) {
		t.Error("not delivered at destination")
	}
	if ev0.ShouldPropagate(ctx0) {
		t.Error("relayed beyond destination")
	}
}

func TestDownhillFloodFallback(t *testing.T) {
	empty := &fakeStore{}
	msg := NewDownhill("dest")
	ctx := ctxAt("n", 1, empty)
	if !msg.ShouldPropagate(ctx) {
		t.Error("no fallback flood")
	}
	if msg.ShouldStore(ctx) {
		t.Error("stored without structure")
	}
	strict := NewDownhill("dest").StrictSlope()
	if strict.ShouldPropagate(ctx) {
		t.Error("strict message flooded")
	}
}

func TestFlockFieldShape(t *testing.T) {
	f := NewFlock("swarm", 3)
	f.SetID(tuple.ID{Node: "s", Seq: 6})
	tests := []struct {
		d    float64
		want float64
	}{
		{0, 3}, {1, 2}, {3, 0}, {5, 2},
	}
	for _, tt := range tests {
		ft := f.WithValue(tt.d).(*Flock)
		if got := ft.FieldValue(); got != tt.want {
			t.Errorf("FieldValue(d=%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
	got := roundTrip(t, f).(*Flock)
	if got.X != 3 {
		t.Errorf("X = %v", got.X)
	}
	if ev := got.Evolve(nil).(*Flock); ev.Val != 1 || ev.X != 3 {
		t.Errorf("Evolve = %+v", ev)
	}
	lo := f.WithValue(1).(*Flock)
	hi := f.WithValue(2).(*Flock)
	if !lo.Supersedes(hi) || hi.Supersedes(lo) {
		t.Error("Flock Supersedes not min-wins")
	}
}

func TestEraserDeletesTargets(t *testing.T) {
	g := NewGradient("victim")
	keep := NewGradient("other")
	st := &fakeStore{tuples: []tuple.Tuple{g, keep}}
	e := NewEraser("cleanup", KindGradient, "victim").Within(4)
	e.SetID(tuple.ID{Node: "s", Seq: 7})
	got := roundTrip(t, e).(*Eraser)

	ctx := ctxAt("n", 1, st)
	got.OnArrive(ctx)
	if len(st.tuples) != 1 || st.tuples[0] != tuple.Tuple(keep) {
		t.Errorf("store after eraser = %v", st.tuples)
	}
	if got.ShouldStore(ctx) {
		t.Error("eraser stored itself")
	}
	if !got.ShouldPropagate(ctx) {
		t.Error("eraser stopped early")
	}
	if got.ShouldPropagate(ctxAt("n", 4, st)) {
		t.Error("eraser ignored TTL")
	}
	got.OnArrive(ctxAt("n", 1, nil)) // nil store must not panic
}

func TestLocalStaysPut(t *testing.T) {
	l := NewLocal("state", tuple.I("count", 3))
	l.SetID(tuple.ID{Node: "s", Seq: 8})
	got := roundTrip(t, l).(*Local)
	if got.ShouldPropagate(nil) {
		t.Error("local tuple propagates")
	}
	if !got.ShouldStore(nil) {
		t.Error("local tuple not stored")
	}
	if got.Payload.GetInt("count") != 3 {
		t.Errorf("payload = %v", got.Payload)
	}
}

func TestByNameTemplate(t *testing.T) {
	g := NewGradient("a")
	if !ByName(KindGradient, "a").Matches(g) {
		t.Error("ByName missed its tuple")
	}
	if ByName(KindGradient, "b").Matches(g) {
		t.Error("ByName matched wrong name")
	}
	if ByName(KindFlood, "a").Matches(g) {
		t.Error("ByName matched wrong kind")
	}
}

func TestSplitMeta(t *testing.T) {
	c := tuple.Content{
		tuple.S("name", "x"),
		tuple.I("payload", 1),
		tuple.F("_val", 2),
		tuple.F("_scope", 3),
	}
	app, meta := SplitMeta(c)
	if len(app) != 2 || len(meta) != 2 {
		t.Fatalf("SplitMeta = %v / %v", app, meta)
	}
	if MetaFloat(meta, "_val", -1) != 2 {
		t.Error("MetaFloat lookup failed")
	}
	if MetaFloat(meta, "_nope", -1) != -1 {
		t.Error("MetaFloat default failed")
	}
}

func TestFactoriesRejectMalformedContent(t *testing.T) {
	bad := tuple.Content{tuple.I("notname", 1)}
	for kind := range factories() {
		if kind == KindLocal || kind == KindEraser {
			continue
		}
		if _, err := tuple.DefaultRegistry.New(kind, tuple.ID{Node: "n", Seq: 1}, bad); err == nil {
			t.Errorf("kind %s accepted malformed content", kind)
		}
	}
}
