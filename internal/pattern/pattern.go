// Package pattern is the TOTA propagation-pattern library: the concrete
// tuple classes the paper derives from its abstract Tuple by overriding
// the breadth-first expanding-ring propagation. It provides
//
//   - Gradient: the self-maintained hop-count field (the paper's
//     "structure of space"), optionally scope-bounded;
//   - Flood: plain network-wide (or TTL-bounded) dissemination;
//   - Spatial: a gradient confined to a physical radius around the
//     source, using localization data;
//   - Directional: a flood confined to an angular sector from the
//     source ("propagating in a specific direction");
//   - Downhill: a non-storing message that descends a gradient
//     structure toward its source, falling back to flooding when the
//     structure is absent (the paper's §5.1 routing);
//   - Flock: the §5.3 motion-coordination field whose perceived value
//     is minimal at a target hop distance from the source;
//   - Eraser: a flood that deletes matching tuples as it propagates
//     ("propagating by deleting specific tuples");
//   - Local: a tuple that never leaves the node.
//
// All kinds register themselves in tuple.DefaultRegistry; Register adds
// them to custom registries.
package pattern

import (
	"fmt"
	"math"
	"strings"

	"tota/internal/tuple"
)

// Registered tuple kinds.
const (
	KindGradient    = "tota:gradient"
	KindFlood       = "tota:flood"
	KindSpatial     = "tota:spatial"
	KindDirectional = "tota:directional"
	KindDownhill    = "tota:downhill"
	KindFlock       = "tota:flock"
	KindEraser      = "tota:eraser"
	KindLocal       = "tota:local"
)

// metaPrefix marks internal trailing content fields; positional template
// matching over the application-visible prefix is unaffected because
// meta fields always come last.
const metaPrefix = "_"

// SplitMeta separates a decoded content into its application prefix and
// its trailing meta fields.
func SplitMeta(c tuple.Content) (app tuple.Content, meta map[string]tuple.Field) {
	cut := len(c)
	for cut > 0 && strings.HasPrefix(c[cut-1].Name, metaPrefix) {
		cut--
	}
	meta = make(map[string]tuple.Field, len(c)-cut)
	for _, f := range c[cut:] {
		meta[f.Name] = f
	}
	return c[:cut], meta
}

func MetaFloat(meta map[string]tuple.Field, name string, def float64) float64 {
	if f, ok := meta[name]; ok {
		if v, ok := f.Value.(float64); ok {
			return v
		}
	}
	return def
}

func MetaInt(meta map[string]tuple.Field, name string, def int64) int64 {
	if f, ok := meta[name]; ok {
		if v, ok := f.Value.(int64); ok {
			return v
		}
	}
	return def
}

func MetaString(meta map[string]tuple.Field, name, def string) string {
	if f, ok := meta[name]; ok {
		if v, ok := f.Value.(string); ok {
			return v
		}
	}
	return def
}

func MetaBool(meta map[string]tuple.Field, name string, def bool) bool {
	if f, ok := meta[name]; ok {
		if v, ok := f.Value.(bool); ok {
			return v
		}
	}
	return def
}

// AppContent returns the canonical application prefix: the name field
// followed by the payload.
func AppContent(name string, payload tuple.Content) tuple.Content {
	c := make(tuple.Content, 0, len(payload)+1)
	c = append(c, tuple.S("name", name))
	return append(c, payload...)
}

// SplitNamePayload recovers (name, payload) from an application prefix.
func SplitNamePayload(app tuple.Content) (string, tuple.Content, error) {
	if len(app) == 0 || app[0].Name != "name" {
		return "", nil, fmt.Errorf("pattern: content missing leading name field: %v", app)
	}
	name, ok := app[0].Value.(string)
	if !ok {
		return "", nil, fmt.Errorf("pattern: name field is not a string: %v", app[0])
	}
	return name, app[1:], nil
}

// ByName builds the template matching tuples of the given kind with the
// given application name — the common read/subscribe query.
func ByName(kind, name string) tuple.Template {
	return tuple.Match(kind, tuple.Eq(tuple.S("name", name)))
}

// Register adds every pattern kind to a registry.
func Register(r *tuple.Registry) error {
	for kind, f := range factories() {
		if err := r.Register(kind, f); err != nil {
			return err
		}
	}
	return nil
}

func factories() map[string]tuple.Factory {
	return map[string]tuple.Factory{
		KindGradient:    decodeGradient,
		KindFlood:       decodeFlood,
		KindSpatial:     decodeSpatial,
		KindDirectional: decodeDirectional,
		KindDownhill:    decodeDownhill,
		KindFlock:       decodeFlock,
		KindEraser:      decodeEraser,
		KindLocal:       decodeLocal,
		KindGossip:      decodeGossip,
		KindPath:        decodePath,
	}
}

func init() {
	// Codec kind registry: the accepted use of init (pluggable encoding
	// registries).
	if err := Register(tuple.DefaultRegistry); err != nil {
		panic(err)
	}
}

// inf is the unbounded scope sentinel.
func inf() float64 { return math.Inf(1) }
