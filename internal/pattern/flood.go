package pattern

import (
	"tota/internal/tuple"
)

// Flood is the plain dissemination tuple: identical copies stored at
// every node the expanding ring reaches, optionally bounded to TTL hops
// (the expanding-ring "scope of the tuple"). With TTL 0 it floods the
// whole network (still bounded by the engine's MaxHops safety net).
//
// Content layout: (name, payload..., _ttl).
type Flood struct {
	tuple.Base

	Name    string
	Payload tuple.Content
	// TTL is the propagation bound in hops; 0 or negative means
	// unbounded.
	TTL int64
	// LeaseTime is the copy lifetime in logical time units; 0 or
	// negative means the tuple never expires.
	LeaseTime float64
}

var (
	_ tuple.Tuple    = (*Flood)(nil)
	_ tuple.Expiring = (*Flood)(nil)
)

// NewFlood creates an unbounded flood tuple.
func NewFlood(name string, payload ...tuple.Field) *Flood {
	return &Flood{Name: name, Payload: payload}
}

// Within bounds the flood to ttl hops and returns it.
func (f *Flood) Within(ttl int64) *Flood {
	f.TTL = ttl
	return f
}

// Expires gives every copy a finite lease and returns the flood.
func (f *Flood) Expires(lease float64) *Flood {
	f.LeaseTime = lease
	return f
}

// Lease implements tuple.Expiring.
func (f *Flood) Lease() float64 { return f.LeaseTime }

// Kind implements tuple.Tuple.
func (f *Flood) Kind() string { return KindFlood }

// Content implements tuple.Tuple.
func (f *Flood) Content() tuple.Content {
	c := AppContent(f.Name, f.Payload)
	return append(c, tuple.I("_ttl", f.TTL), tuple.F("_lease", f.LeaseTime))
}

// ShouldStore implements tuple.Tuple.
func (f *Flood) ShouldStore(ctx *tuple.Ctx) bool {
	return f.TTL <= 0 || int64(ctx.Hop) <= f.TTL
}

// ShouldPropagate implements tuple.Tuple.
func (f *Flood) ShouldPropagate(ctx *tuple.Ctx) bool {
	return f.TTL <= 0 || int64(ctx.Hop) < f.TTL
}

func decodeFlood(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	f := &Flood{
		Name:      name,
		Payload:   payload,
		TTL:       MetaInt(meta, "_ttl", 0),
		LeaseTime: MetaFloat(meta, "_lease", 0),
	}
	f.SetID(id)
	return f, nil
}
