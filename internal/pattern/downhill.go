package pattern

import (
	"math"

	"tota/internal/tuple"
)

// Downhill is the paper's §5.1 message tuple: "if a structure tuple
// having my same receiver can be found in the local node, follow
// downhill its hopcount, otherwise propagate to all the nodes". It is
// non-storing on intermediate nodes — a pure message — and is delivered
// (stored) only at the structure's source, where the descended gradient
// reaches its minimum value 0.
//
// Best tracks the smallest structure value seen along this copy's path;
// a node relays the message only when its own value improves on Best,
// which confines propagation to the downhill slope.
//
// Content layout: (name, payload..., _skind, _best, _flood).
type Downhill struct {
	tuple.Base

	// StructName names the gradient structure to descend.
	StructName string
	// StructKind is the structure's tuple kind (default KindGradient).
	StructKind string
	// Payload is the message body.
	Payload tuple.Content
	// Best is the smallest structure value observed along the path.
	Best float64
	// FloodWhenLost makes nodes without the structure relay the message
	// anyway, degrading gracefully to flooding (the paper's fallback).
	FloodWhenLost bool

	// prevBest is the incoming Best before this hop's evolution,
	// consulted by ShouldPropagate. It is transient (not serialized):
	// the factory re-seeds it from the wire Best.
	prevBest float64
}

var _ tuple.Tuple = (*Downhill)(nil)

// NewDownhill creates a message that descends the named gradient
// structure, flooding when the structure is absent.
func NewDownhill(structName string, payload ...tuple.Field) *Downhill {
	return &Downhill{
		StructName:    structName,
		StructKind:    KindGradient,
		Payload:       payload,
		Best:          math.Inf(1),
		FloodWhenLost: true,
		prevBest:      math.Inf(1),
	}
}

// Descending sets the structure kind to descend (e.g. KindFlock) and
// returns the tuple.
func (d *Downhill) Descending(kind string) *Downhill {
	d.StructKind = kind
	return d
}

// StrictSlope disables the flooding fallback: the message dies where
// the structure is absent.
func (d *Downhill) StrictSlope() *Downhill {
	d.FloodWhenLost = false
	return d
}

// Kind implements tuple.Tuple.
func (d *Downhill) Kind() string { return KindDownhill }

// Content implements tuple.Tuple.
func (d *Downhill) Content() tuple.Content {
	c := AppContent(d.StructName, d.Payload)
	return append(c,
		tuple.S("_skind", d.StructKind),
		tuple.F("_best", d.Best),
		tuple.B("_flood", d.FloodWhenLost),
	)
}

// localVal senses the descended structure at the hook's node.
func (d *Downhill) localVal(ctx *tuple.Ctx) (float64, bool) {
	return GradientsAt(ctx.Store, d.StructKind, d.StructName)
}

// Evolve implements tuple.Tuple: the copy absorbs the node's structure
// value into Best.
func (d *Downhill) Evolve(ctx *tuple.Ctx) tuple.Tuple {
	v, ok := d.localVal(ctx)
	c := *d
	c.prevBest = d.Best
	if ok && v < c.Best {
		c.Best = v
	}
	return &c
}

// ShouldStore implements tuple.Tuple: delivery happens only at the
// structure's minimum (its source).
func (d *Downhill) ShouldStore(ctx *tuple.Ctx) bool {
	v, ok := d.localVal(ctx)
	return ok && v == 0
}

// ShouldPropagate implements tuple.Tuple: relay strictly downhill, or
// everywhere when the structure is absent and flooding is allowed.
func (d *Downhill) ShouldPropagate(ctx *tuple.Ctx) bool {
	v, ok := d.localVal(ctx)
	if !ok {
		return d.FloodWhenLost
	}
	return v > 0 && v < d.prevBest
}

func decodeDownhill(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	best := MetaFloat(meta, "_best", math.Inf(1))
	d := &Downhill{
		StructName:    name,
		StructKind:    MetaString(meta, "_skind", KindGradient),
		Payload:       payload,
		Best:          best,
		FloodWhenLost: MetaBool(meta, "_flood", true),
		prevBest:      best,
	}
	d.SetID(id)
	return d, nil
}
