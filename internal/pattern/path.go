package pattern

import (
	"strings"

	"tota/internal/tuple"
)

// KindPath is the registered kind of Path tuples.
const KindPath = "tota:path"

// Path is a flood that records the route it traveled: each hop appends
// the local node to the path carried in the content, and shorter paths
// supersede longer ones, so at convergence every node stores an actual
// shortest route back to the source — the source-routing overlay some
// MANET protocols build, expressed as a propagation rule.
//
// Content layout: (name, payload..., _path).
type Path struct {
	tuple.Base

	Name    string
	Payload tuple.Content
	// Route is the node sequence from the source to (and including)
	// this copy's node.
	Route []tuple.NodeID
	// TTL bounds propagation in hops; 0 or negative means unbounded.
	TTL int64
}

var _ tuple.Tuple = (*Path)(nil)

// NewPath creates a route-recording tuple.
func NewPath(name string, payload ...tuple.Field) *Path {
	return &Path{Name: name, Payload: payload}
}

// Within bounds propagation to ttl hops and returns the tuple.
func (p *Path) Within(ttl int64) *Path {
	p.TTL = ttl
	return p
}

// Kind implements tuple.Tuple.
func (p *Path) Kind() string { return KindPath }

// Content implements tuple.Tuple.
func (p *Path) Content() tuple.Content {
	parts := make([]string, len(p.Route))
	for i, id := range p.Route {
		parts[i] = string(id)
	}
	c := AppContent(p.Name, p.Payload)
	return append(c,
		tuple.S("_path", strings.Join(parts, ",")),
		tuple.I("_ttl", p.TTL),
	)
}

// Evolve implements tuple.Tuple, appending the local node to the route.
func (p *Path) Evolve(ctx *tuple.Ctx) tuple.Tuple {
	c := *p
	c.Route = make([]tuple.NodeID, 0, len(p.Route)+1)
	c.Route = append(c.Route, p.Route...)
	c.Route = append(c.Route, ctx.Self)
	return &c
}

// OnArrive implements tuple.Tuple; at the injection node the route
// starts with the source itself.
func (p *Path) OnArrive(ctx *tuple.Ctx) {
	if ctx.Injected() && len(p.Route) == 0 {
		p.Route = []tuple.NodeID{ctx.Self}
	}
}

// ShouldStore implements tuple.Tuple.
func (p *Path) ShouldStore(ctx *tuple.Ctx) bool {
	return p.TTL <= 0 || int64(ctx.Hop) <= p.TTL
}

// ShouldPropagate implements tuple.Tuple.
func (p *Path) ShouldPropagate(ctx *tuple.Ctx) bool {
	// A node already on the route must not extend it again (the
	// breadth-first wave cannot loop anyway thanks to id dedup, but a
	// superseding shorter copy could revisit).
	return p.TTL <= 0 || int64(ctx.Hop) < p.TTL
}

// Supersedes implements tuple.Tuple: shorter routes win.
func (p *Path) Supersedes(old tuple.Tuple) bool {
	op, ok := old.(*Path)
	return ok && len(p.Route) < len(op.Route)
}

func decodePath(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	p := &Path{Name: name, Payload: payload, TTL: MetaInt(meta, "_ttl", 0)}
	if raw := MetaString(meta, "_path", ""); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			p.Route = append(p.Route, tuple.NodeID(part))
		}
	}
	p.SetID(id)
	return p, nil
}
