package pattern

import (
	"tota/internal/tuple"
)

// Gradient is the paper's canonical distributed tuple: injected at a
// source, it spreads breadth-first across the network carrying a value
// that grows by StepSize per hop, building a distributed hop-count field
// ("a tuple incrementing one of its fields as it gets propagated
// identifies a structure of space defining the network distances from
// the source"). The middleware keeps the field coherent under topology
// changes (it implements tuple.Maintained).
//
// Content layout: (name, payload..., _val, _step, _scope).
type Gradient struct {
	tuple.Base

	// Name labels the field for template matching.
	Name string
	// Payload carries application data replicated at every node.
	Payload tuple.Content
	// Val is the field value at this copy (0 at the source).
	Val float64
	// StepSize is the per-hop increment (default 1).
	StepSize float64
	// Scope bounds the field: copies whose value would exceed it are
	// not stored (default unbounded).
	Scope float64
	// LeaseTime gives copies a finite lifetime (0 = forever): the
	// structure ages out of the network without an explicit retract.
	LeaseTime float64
}

var (
	_ tuple.Tuple      = (*Gradient)(nil)
	_ tuple.Maintained = (*Gradient)(nil)
	_ tuple.Expiring   = (*Gradient)(nil)
)

// NewGradient creates an unbounded unit-step gradient field.
func NewGradient(name string, payload ...tuple.Field) *Gradient {
	return &Gradient{
		Name:     name,
		Payload:  payload,
		StepSize: 1,
		Scope:    inf(),
	}
}

// Bounded sets the scope (maximum value) and returns the gradient, for
// construction chaining.
func (g *Gradient) Bounded(scope float64) *Gradient {
	g.Scope = scope
	return g
}

// WithStep sets the per-hop increment and returns the gradient.
func (g *Gradient) WithStep(step float64) *Gradient {
	g.StepSize = step
	return g
}

// Expires gives every copy a finite lease and returns the gradient.
func (g *Gradient) Expires(lease float64) *Gradient {
	g.LeaseTime = lease
	return g
}

// Lease implements tuple.Expiring.
func (g *Gradient) Lease() float64 { return g.LeaseTime }

// Hops returns the hop distance from the source this copy represents.
func (g *Gradient) Hops() int {
	s := g.Step()
	return int(g.Val/s + 0.5)
}

// Kind implements tuple.Tuple.
func (g *Gradient) Kind() string { return KindGradient }

// Content implements tuple.Tuple.
func (g *Gradient) Content() tuple.Content {
	c := AppContent(g.Name, g.Payload)
	return append(c,
		tuple.F("_val", g.Val),
		tuple.F("_step", g.StepSize),
		tuple.F("_scope", g.Scope),
		tuple.F("_lease", g.LeaseTime),
	)
}

// ShouldStore implements tuple.Tuple: copies within scope are stored.
func (g *Gradient) ShouldStore(*tuple.Ctx) bool { return g.Val <= g.Scope }

// ShouldPropagate implements tuple.Tuple: boundary copies (at exactly
// the scope) are stored but not announced further.
func (g *Gradient) ShouldPropagate(*tuple.Ctx) bool { return g.Val+g.Step() <= g.Scope }

// Evolve implements tuple.Tuple, incrementing the value per hop. The
// engine's maintenance path supersedes this for stored structures, but
// the hook keeps the tuple meaningful under plain propagation too.
func (g *Gradient) Evolve(*tuple.Ctx) tuple.Tuple {
	return g.WithValue(g.Val + g.Step())
}

// Supersedes implements tuple.Tuple: smaller values win (shorter path).
func (g *Gradient) Supersedes(old tuple.Tuple) bool {
	og, ok := old.(*Gradient)
	return ok && g.Val < og.Val
}

// Value implements tuple.Maintained.
func (g *Gradient) Value() float64 { return g.Val }

// WithValue implements tuple.Maintained.
func (g *Gradient) WithValue(v float64) tuple.Tuple {
	c := *g
	c.Val = v
	return &c
}

// Step implements tuple.Maintained; non-positive configured steps read
// as 1 so maintenance always terminates.
func (g *Gradient) Step() float64 {
	if g.StepSize <= 0 {
		return 1
	}
	return g.StepSize
}

// MaxValue implements tuple.Maintained.
func (g *Gradient) MaxValue() float64 { return g.Scope }

func decodeGradient(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	g, err := gradientFromContent(c)
	if err != nil {
		return nil, err
	}
	g.SetID(id)
	return g, nil
}

func gradientFromContent(c tuple.Content) (*Gradient, error) {
	app, meta := SplitMeta(c)
	name, payload, err := SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	return &Gradient{
		Name:      name,
		Payload:   payload,
		Val:       MetaFloat(meta, "_val", 0),
		StepSize:  MetaFloat(meta, "_step", 1),
		Scope:     MetaFloat(meta, "_scope", inf()),
		LeaseTime: MetaFloat(meta, "_lease", 0),
	}, nil
}

// GradientsAt reads every gradient copy with the given name stored at
// the local space exposed by ctx and returns the minimum value, with ok
// false when none is present. Downhill messages and application code
// use it to sense the field.
func GradientsAt(store tuple.LocalStore, kind, name string) (float64, bool) {
	if store == nil {
		return 0, false
	}
	best := inf()
	found := false
	for _, t := range store.Read(ByName(kind, name)) {
		if m, ok := t.(tuple.Maintained); ok {
			if !found || m.Value() < best {
				best = m.Value()
				found = true
			}
		}
	}
	return best, found
}
