package testnet

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Proc is one supervised tota-node process. The harness talks to it
// exactly like an operator would: flags at spawn, shell commands on
// stdin, signals for faults and shutdown, and HTTP scrapes of the
// observability endpoints for everything it wants to know.
type Proc struct {
	ID string
	// ObsURL is "http://host:port" of the node's observability server,
	// parsed from its startup banner.
	ObsURL string
	// UDPAddr is the node's bound socket, parsed from the banner.
	UDPAddr string
	// GatewayAddr is the node's client RPC endpoint, parsed from the
	// banner when the node was spawned with -gateway.addr.
	GatewayAddr string

	bin   string
	args  []string
	cmd   *exec.Cmd
	stdin io.WriteCloser

	waitOnce sync.Once
	waitErr  error
	waitc    chan struct{}

	mu     sync.Mutex
	stderr []string // ring of recent stderr lines for diagnostics
}

const stderrRing = 120

// SpawnNode starts a tota-node process with the given identity and
// peer addresses plus any extra flags, and waits until both startup
// banners (UDP listen address, telemetry URL) have been parsed — the
// process-level readiness gate before any HTTP polling starts.
func SpawnNode(bin, id string, peers []string, extra ...string) (*Proc, error) {
	args := []string{
		"-id", id,
		"-listen", "127.0.0.1:0",
		"-obs.addr", "127.0.0.1:0",
	}
	if len(peers) > 0 {
		args = append(args, "-peers", strings.Join(peers, ","))
	}
	args = append(args, extra...)
	p := &Proc{ID: id, bin: bin, args: args, waitc: make(chan struct{})}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Proc) start() error {
	cmd := exec.Command(p.bin, p.args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("testnet: spawn %s: %w", p.ID, err)
	}
	p.cmd = cmd
	p.stdin = stdin

	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			p.mu.Lock()
			p.stderr = append(p.stderr, sc.Text())
			if len(p.stderr) > stderrRing {
				p.stderr = p.stderr[len(p.stderr)-stderrRing:]
			}
			p.mu.Unlock()
		}
	}()

	// Parse the startup banners (UDP, telemetry, and — when the node was
	// spawned with a gateway — the client RPC endpoint), then keep
	// draining stdout (shell prompts, command echoes) so the process
	// never blocks on a full pipe.
	wantGateway := false
	for _, a := range p.args {
		if a == "-gateway.addr" {
			wantGateway = true
		}
	}
	banners := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		var haveUDP, haveObs, haveGw bool
		haveGw = !wantGateway
		for sc.Scan() {
			line := sc.Text()
			if !haveUDP {
				if i := strings.Index(line, "listening on "); i >= 0 {
					p.UDPAddr = strings.TrimSpace(line[i+len("listening on "):])
					haveUDP = true
				}
			}
			if !haveObs {
				if i := strings.Index(line, "telemetry on "); i >= 0 {
					url := strings.TrimSpace(line[i+len("telemetry on "):])
					p.ObsURL = strings.TrimSuffix(url, "/metrics")
					haveObs = true
				}
			}
			if !haveGw {
				if i := strings.Index(line, "gateway on "); i >= 0 {
					p.GatewayAddr = strings.TrimSpace(line[i+len("gateway on "):])
					haveGw = true
				}
			}
			if haveUDP && haveObs && haveGw {
				banners <- nil
				break
			}
		}
		if !(haveUDP && haveObs && haveGw) {
			banners <- fmt.Errorf("testnet: %s exited before announcing its endpoints", p.ID)
		}
		for sc.Scan() {
		}
	}()

	select {
	case err := <-banners:
		if err != nil {
			_ = cmd.Process.Kill()
			_, _ = p.awaitExit(2 * time.Second)
			return err
		}
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		_, _ = p.awaitExit(2 * time.Second)
		return fmt.Errorf("testnet: %s produced no startup banner within 10s", p.ID)
	}
	return nil
}

// Inject writes one shell command line to the node's stdin.
func (p *Proc) Inject(cmd string) error {
	_, err := io.WriteString(p.stdin, cmd+"\n")
	if err != nil {
		return fmt.Errorf("testnet: inject %q into %s: %w", cmd, p.ID, err)
	}
	return nil
}

// Kill delivers SIGKILL — the crash fault: no flush, no goodbye, the
// middleware state is simply gone.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.awaitExit(5 * time.Second)
}

// Pause delivers SIGSTOP: the process keeps its sockets but stops
// scheduling — a GC stall or suspended device.
func (p *Proc) Pause() error { return p.cmd.Process.Signal(syscall.SIGSTOP) }

// Resume delivers SIGCONT.
func (p *Proc) Resume() error { return p.cmd.Process.Signal(syscall.SIGCONT) }

// StopGraceful delivers SIGTERM and waits for exit, reporting whether
// the node honored the graceful-shutdown contract (exit status 0).
func (p *Proc) StopGraceful(timeout time.Duration) error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited, err := p.awaitExit(timeout)
	if !exited {
		_ = p.cmd.Process.Kill()
		return fmt.Errorf("testnet: %s ignored SIGTERM for %v", p.ID, timeout)
	}
	if err != nil {
		return fmt.Errorf("testnet: %s exited non-zero on SIGTERM: %w", p.ID, err)
	}
	return nil
}

// awaitExit waits (bounded) for process exit; the exit status is
// cached so Kill/StopGraceful/diagnostics can all ask.
func (p *Proc) awaitExit(timeout time.Duration) (bool, error) {
	p.waitOnce.Do(func() {
		go func() {
			p.waitErr = p.cmd.Wait()
			close(p.waitc)
		}()
	})
	select {
	case <-p.waitc:
		return true, p.waitErr
	case <-time.After(timeout):
		return false, nil
	}
}

// StderrTail returns the most recent stderr lines (up to n) for
// failure diagnostics.
func (p *Proc) StderrTail(n int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > len(p.stderr) {
		n = len(p.stderr)
	}
	out := make([]string, n)
	copy(out, p.stderr[len(p.stderr)-n:])
	return out
}
