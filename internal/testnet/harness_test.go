package testnet

import (
	"strings"
	"testing"
)

// TestTestnetFiveNodeCrashLossConvergence is the full tentpole path:
// five real tota-node processes on loopback UDP behind the fault
// relay, a seeded manifest whose plan SIGKILLs (and later restarts)
// one node while every link drops >= 30% of packets, and convergence
// asserted purely through the observability endpoints. Teardown is
// graceful: every surviving process must exit 0 on SIGTERM.
func TestTestnetFiveNodeCrashLossConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-process testnet run in -short mode")
	}
	bin, err := BuildNodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	m := Generate(42, 5)
	var log strings.Builder
	rep, err := Run(m, bin, &log)
	if err != nil {
		t.Fatalf("testnet run failed: %v\n--- harness log ---\n%s", err, log.String())
	}
	if !rep.Converged {
		t.Fatalf("fleet did not converge\n%s", log.String())
	}
	if rep.Restarts < 1 {
		t.Errorf("restarts = %d, want >= 1 (the crash window must have fired)", rep.Restarts)
	}
	if rep.CleanExits != len(m.Nodes) {
		t.Errorf("clean exits = %d, want %d", rep.CleanExits, len(m.Nodes))
	}
	if rep.Relay.Dropped == 0 {
		t.Errorf("relay dropped 0 packets under a >=30%% loss plan\n%s", log.String())
	}
	t.Logf("converged at tick %d in %v (restarts=%d, relay %+v)",
		rep.ConvergeTick, rep.Elapsed, rep.Restarts, rep.Relay)
}

// TestTestnetDeadlineDiagnostics forces a failure (a partition that
// never heals) and checks the harness reports it with per-node
// diagnostics instead of hanging.
func TestTestnetDeadlineDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("full-process testnet run in -short mode")
	}
	bin, err := BuildNodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	m := Generate(7, 3)
	// Cut node n01 off forever and give the run a tiny deadline: the
	// gradient can never reach it, so the fleet must miss the oracle.
	m.Plan = "partition@0:" + m.Nodes[1].ID
	m.DeadlineTicks = 10
	var log strings.Builder
	rep, err := Run(m, bin, &log)
	if err == nil || rep.Converged {
		t.Fatalf("partitioned fleet reported convergence\n%s", log.String())
	}
	if !strings.Contains(log.String(), "DEADLINE EXCEEDED") {
		t.Fatalf("no diagnostics dump in harness log:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "ready=") {
		t.Fatalf("diagnostics miss per-node readiness:\n%s", log.String())
	}
}
