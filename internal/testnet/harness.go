package testnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"tota/internal/fault"
)

// Report is the outcome of one testnet run.
type Report struct {
	// Converged reports whether every node's externally scraped store
	// matched the oracle before the deadline.
	Converged bool
	// ConvergeTick is the harness tick at which the fleet matched.
	ConvergeTick int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// CleanExits counts nodes that honored graceful shutdown (SIGTERM
	// then exit 0) at teardown.
	CleanExits int
	// Restarts counts crash-fault restart cycles performed.
	Restarts int
	// Relay is the packet accounting across all links.
	Relay RelayStats
	// ClientSubs is the number of live gateway client subscriptions at
	// the end of the run (0 when the manifest has no client workload).
	ClientSubs int
	// ClientResyncs counts replay-miss/epoch-change recoveries the
	// client fleet performed — a crash-victim gateway restart shows up
	// here.
	ClientResyncs int
	// ClientGapViolations counts event-sequence gaps NOT covered by the
	// gateway's drop accounting; any non-zero value is a protocol bug.
	ClientGapViolations int
	// GatewayReplayHits/Misses/Drops are the tota_gateway_* counters
	// summed across the fleet's telemetry endpoints at convergence,
	// proving the metrics are scrape-able and the drop accounting is
	// externally visible.
	GatewayReplayHits   float64
	GatewayReplayMisses float64
	GatewayDrops        float64
}

// Harness wires a manifest to real processes: relay, fleet, plan
// driver and convergence polling.
type Harness struct {
	m      Manifest
	bin    string
	out    io.Writer
	relay  *Relay
	client *Client
	plan   fault.Plan

	peerAddrs map[string][]string // node -> incident relay link addrs
	procs     map[string]*Proc
	crashed   map[string]bool
	paused    map[string]bool
	report    Report

	// gatewayAddrs are per-node client RPC addresses on ports reserved
	// up front, so a crash-restarted node comes back at the SAME
	// address and its clients' reconnect loops find it again.
	gatewayAddrs map[string]string
	fleet        *ClientFleet
}

// NodeExtraFlags are the tota-node flags every fleet member runs with:
// a refresh period fast enough to heal within a few harness ticks, the
// graceful-degradation engine options, and a flight ring for post-hoc
// diagnosis.
var NodeExtraFlags = []string{"-refresh", "200ms", "-robust", "-trace.flight", "256"}

// Run executes the manifest against the tota-node binary at bin,
// writing progress and failure diagnostics to out. It returns the
// report in both outcomes; err is non-nil when the fleet missed the
// deadline or teardown was not clean.
func Run(m Manifest, bin string, out io.Writer) (*Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	plan, err := fault.ParsePlan(m.Plan)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		m:       m,
		bin:     bin,
		out:     out,
		relay:   NewRelay(m.Seed),
		client:  NewClient(m.Seed + 1),
		plan:    plan,
		procs:   make(map[string]*Proc),
		crashed: make(map[string]bool),
		paused:  make(map[string]bool),
	}
	defer h.relay.Close()
	defer h.killAll()
	if m.GatewayClients > 0 {
		h.fleet = NewClientFleet(m)
		defer h.fleet.Close()
	}

	start := time.Now()
	err = h.run()
	h.report.Elapsed = time.Since(start)
	h.report.Relay = h.relay.Stats()
	return &h.report, err
}

func (h *Harness) logf(format string, args ...any) {
	if h.out != nil {
		fmt.Fprintf(h.out, format+"\n", args...)
	}
}

func (h *Harness) run() error {
	// Phase 1: bind one relay socket per link; the addresses double as
	// each endpoint's static peer list, so processes can restart on
	// fresh ephemeral ports without anyone re-learning peers.
	h.peerAddrs = make(map[string][]string, len(h.m.Nodes))
	for _, l := range h.m.Links {
		addr, err := h.relay.AddLink(l[0], l[1])
		if err != nil {
			return err
		}
		h.peerAddrs[l[0]] = append(h.peerAddrs[l[0]], addr)
		h.peerAddrs[l[1]] = append(h.peerAddrs[l[1]], addr)
	}
	h.logf("testnet: %d nodes, %d links, plan %q, seed %d", len(h.m.Nodes), len(h.m.Links), h.m.Plan, h.m.Seed)

	// Phase 1.5: with a client workload, reserve one TCP port per node
	// for its gateway. The port is fixed for the node's whole lifetime —
	// including crash restarts — so client reconnect loops need no
	// rediscovery, exactly like a production VIP.
	if h.fleet != nil {
		h.gatewayAddrs = make(map[string]string, len(h.m.Nodes))
		for _, ns := range h.m.Nodes {
			addr, err := reserveLoopbackPort()
			if err != nil {
				return err
			}
			h.gatewayAddrs[ns.ID] = addr
		}
	}

	// Phase 2: staggered cold start — the tick-0 cohort spawns now,
	// late joiners inside the tick loop.
	for _, ns := range h.m.Nodes {
		if ns.StartTick == 0 {
			if err := h.spawn(ns.ID); err != nil {
				return err
			}
		}
	}

	// Phase 3: readiness barrier. Every tick-0 node must report, via
	// /readyz alone, as many peers as it has links into the tick-0
	// cohort — discovery through the relay is complete, so fault
	// windows start from a known-good fleet.
	if err := h.readinessBarrier(); err != nil {
		return err
	}

	// Phase 3.5: attach the gateway client cohorts to every running
	// node (late joiners attach in the tick loop). Client injects land
	// before any fault window opens, like the stdin workload.
	if h.fleet != nil {
		for id, p := range h.procs {
			if err := h.fleet.StartNode(id, p.GatewayAddr); err != nil {
				return err
			}
		}
		h.logf("testnet: client fleet attached (%d subscriptions)", h.fleet.Subscriptions())
	}

	// Phase 4: the tick loop — plan transitions, staggered starts,
	// workload injections, then convergence polling once the last
	// scheduled disturbance is behind us.
	settle := h.plan.MaxTick()
	for _, ns := range h.m.Nodes {
		if ns.StartTick > settle {
			settle = ns.StartTick
		}
	}
	for _, w := range h.m.Workload {
		if w.AtTick > settle {
			settle = w.AtTick
		}
	}
	oracle := h.m.Oracle()
	tickDur := time.Duration(h.m.TickMS) * time.Millisecond
	for tick := 0; tick <= h.m.DeadlineTicks; tick++ {
		h.applyPlanState(tick)
		for _, ns := range h.m.Nodes {
			if ns.StartTick == tick && tick > 0 {
				h.logf("testnet: tick %d: cold start %s", tick, ns.ID)
				if err := h.spawn(ns.ID); err != nil {
					return err
				}
				if h.fleet != nil {
					if err := h.fleet.StartNode(ns.ID, h.procs[ns.ID].GatewayAddr); err != nil {
						return err
					}
				}
			}
		}
		for _, w := range h.m.Workload {
			if w.AtTick != tick {
				continue
			}
			p, ok := h.procs[w.Node]
			if !ok {
				return fmt.Errorf("testnet: tick %d: workload target %s is not running", tick, w.Node)
			}
			h.logf("testnet: tick %d: %s <- %q", tick, w.Node, w.Cmd)
			if err := p.Inject(w.Cmd); err != nil {
				return err
			}
		}
		if tick > settle {
			ok, mismatch := h.converged(oracle)
			if ok && h.fleet != nil {
				// Stores matching is necessary but not sufficient: every
				// client mirror — built purely from the gateway event
				// stream and its recovery paths — must match too.
				ok, mismatch = h.fleet.Converged(oracle)
			}
			if ok {
				h.report.Converged = true
				h.report.ConvergeTick = tick
				h.logf("testnet: tick %d: CONVERGED (stores match oracle on all %d nodes)", tick, len(h.m.Nodes))
				h.finishClientReport()
				return h.teardown()
			}
			h.logf("testnet: tick %d: not converged (%s)", tick, mismatch)
		}
		time.Sleep(tickDur)
	}
	h.dumpDiagnostics(oracle)
	return fmt.Errorf("testnet: fleet did not converge within %d ticks", h.m.DeadlineTicks)
}

func (h *Harness) spawn(id string) error {
	extra := NodeExtraFlags
	if addr, ok := h.gatewayAddrs[id]; ok {
		extra = append(append([]string(nil), extra...), "-gateway.addr", addr)
	}
	p, err := SpawnNode(h.bin, id, h.peerAddrs[id], extra...)
	if err != nil {
		return err
	}
	h.procs[id] = p
	return nil
}

// reserveLoopbackPort binds an ephemeral loopback TCP port, records
// its address and releases it — the standard trick for handing a
// process a port that will still be free moments later.
func reserveLoopbackPort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr, nil
}

// finishClientReport records the fleet's final counters plus the
// tota_gateway_* metrics scraped from every node's telemetry endpoint.
func (h *Harness) finishClientReport() {
	if h.fleet == nil {
		return
	}
	h.report.ClientSubs = h.fleet.Subscriptions()
	h.report.ClientResyncs = h.fleet.Resyncs()
	h.report.ClientGapViolations = h.fleet.GapViolations()
	for _, p := range h.procs {
		body, err := h.client.MetricsJSON(p.ObsURL)
		if err != nil {
			continue
		}
		var snaps []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal(body, &snaps); err != nil {
			continue
		}
		for _, s := range snaps {
			switch s.Name {
			case "tota_gateway_replay_hits_total":
				h.report.GatewayReplayHits += s.Value
			case "tota_gateway_replay_misses_total":
				h.report.GatewayReplayMisses += s.Value
			case "tota_gateway_events_dropped_total":
				h.report.GatewayDrops += s.Value
			}
		}
	}
}

func (h *Harness) readinessBarrier() error {
	deg := make(map[string]int)
	startTick := make(map[string]int, len(h.m.Nodes))
	for _, ns := range h.m.Nodes {
		startTick[ns.ID] = ns.StartTick
	}
	for _, l := range h.m.Links {
		if startTick[l[0]] == 0 && startTick[l[1]] == 0 {
			deg[l[0]]++
			deg[l[1]]++
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for id, p := range h.procs {
		for {
			rs, err := h.client.Ready(p.ObsURL)
			if err == nil && rs.Peers >= deg[id] {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("testnet: readiness barrier: %s has %d peers, want %d (last err %v)", id, rs.Peers, deg[id], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	h.logf("testnet: readiness barrier passed (%d nodes discovered their full degree)", len(h.procs))
	return nil
}

// applyPlanState recomputes the complete fault configuration for a
// tick and pushes it. Windows activate at From and heal at Until
// exactly as in the emulator's injector; overlapping windows compose
// by max (probabilities, delays) and union (node sets) because the
// state is rebuilt from every active event each tick.
func (h *Harness) applyPlanState(tick int) {
	st := FaultState{
		DirLoss:     make(map[[2]string]float64),
		DirDelay:    make(map[[2]string][2]time.Duration),
		Partitioned: make(map[string]bool),
	}
	wantCrashed := make(map[string]bool)
	wantPaused := make(map[string]bool)
	tickDur := time.Duration(h.m.TickMS) * time.Millisecond
	for _, ev := range h.plan.Events {
		active := tick >= ev.From && (ev.Until == 0 || tick < ev.Until)
		if !active {
			continue
		}
		switch ev.Kind {
		case fault.Loss:
			if ev.P > st.Loss {
				st.Loss = ev.P
			}
		case fault.Dup:
			if ev.P > st.Dup {
				st.Dup = ev.P
			}
		case fault.LinkLoss:
			edge := [2]string{string(ev.Nodes[0]), string(ev.Nodes[1])}
			if ev.P > st.DirLoss[edge] {
				st.DirLoss[edge] = ev.P
			}
		case fault.Delay:
			if d := time.Duration(ev.Rounds) * tickDur; d > st.Delay {
				st.Delay = d
			}
		case fault.LinkDelay:
			edge := [2]string{string(ev.Nodes[0]), string(ev.Nodes[1])}
			d := [2]time.Duration{time.Duration(ev.Rounds) * tickDur, time.Duration(ev.Jitter) * tickDur}
			if cur := st.DirDelay[edge]; d[0] > cur[0] {
				st.DirDelay[edge] = d
			}
		case fault.Corrupt:
			if ev.P > st.Corrupt {
				st.Corrupt = ev.P
			}
		case fault.Partition:
			for _, id := range ev.Nodes {
				st.Partitioned[string(id)] = true
			}
		case fault.Crash:
			for _, id := range ev.Nodes {
				wantCrashed[string(id)] = true
			}
		case fault.Pause:
			for _, id := range ev.Nodes {
				wantPaused[string(id)] = true
			}
		}
	}
	h.relay.Apply(st)

	// Crash transitions: SIGKILL on entry, restart with the SAME
	// identity (and the same relay peer list) on heal — the restarted
	// process comes back empty on a fresh port and must catch up.
	for id := range wantCrashed {
		if !h.crashed[id] {
			if p, ok := h.procs[id]; ok {
				h.logf("testnet: tick %d: SIGKILL %s", tick, id)
				p.Kill()
				delete(h.procs, id)
			}
			h.crashed[id] = true
		}
	}
	for id := range h.crashed {
		if !wantCrashed[id] {
			h.logf("testnet: tick %d: restart %s (same id, empty store)", tick, id)
			if err := h.spawn(id); err != nil {
				h.logf("testnet: restart %s failed: %v", id, err)
			} else {
				h.report.Restarts++
			}
			delete(h.crashed, id)
		}
	}
	// Pause transitions: SIGSTOP on entry, SIGCONT on heal.
	for id := range wantPaused {
		if !h.paused[id] {
			if p, ok := h.procs[id]; ok {
				h.logf("testnet: tick %d: SIGSTOP %s", tick, id)
				_ = p.Pause()
			}
			h.paused[id] = true
		}
	}
	for id := range h.paused {
		if !wantPaused[id] {
			if p, ok := h.procs[id]; ok {
				h.logf("testnet: tick %d: SIGCONT %s", tick, id)
				_ = p.Resume()
			}
			delete(h.paused, id)
		}
	}
}

// converged scrapes every node's /store.json and compares the
// canonical entries against the oracle. The first mismatch is
// described for the progress log.
func (h *Harness) converged(oracle map[string][]Entry) (bool, string) {
	for _, ns := range h.m.Nodes {
		p, ok := h.procs[ns.ID]
		if !ok {
			return false, fmt.Sprintf("%s not running", ns.ID)
		}
		got, err := h.client.StoreEntries(p.ObsURL)
		if err != nil {
			return false, fmt.Sprintf("%s: %v", ns.ID, err)
		}
		if !EntriesEqual(got, oracle[ns.ID]) {
			return false, fmt.Sprintf("%s has %v, want %v", ns.ID, got, oracle[ns.ID])
		}
	}
	return true, ""
}

// teardown stops the fleet gracefully and enforces the shutdown
// contract: SIGTERM must produce exit 0 on every node.
func (h *Harness) teardown() error {
	var firstErr error
	for _, ns := range h.m.Nodes {
		p, ok := h.procs[ns.ID]
		if !ok {
			continue
		}
		if err := p.StopGraceful(10 * time.Second); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			h.logf("testnet: %v", err)
			continue
		}
		h.report.CleanExits++
		delete(h.procs, ns.ID)
	}
	return firstErr
}

// killAll is the safety net for early returns: any process still
// tracked is killed outright.
func (h *Harness) killAll() {
	for id, p := range h.procs {
		p.Kill()
		delete(h.procs, id)
	}
}

// dumpDiagnostics writes the per-node post-mortem a deadline failure
// leaves behind: readiness, store-vs-oracle diff and recent stderr,
// all gathered through the same external interfaces the run used.
func (h *Harness) dumpDiagnostics(oracle map[string][]Entry) {
	h.logf("testnet: DEADLINE EXCEEDED — per-node diagnostics:")
	for _, ns := range h.m.Nodes {
		p, ok := h.procs[ns.ID]
		if !ok {
			h.logf("  %s: NOT RUNNING (crashed=%v paused=%v)", ns.ID, h.crashed[ns.ID], h.paused[ns.ID])
			continue
		}
		rs, err := h.client.Ready(p.ObsURL)
		if err != nil {
			h.logf("  %s: /readyz unreachable: %v", ns.ID, err)
		} else {
			h.logf("  %s: ready=%v peers=%d store=%d announced=%d suppressed=%d",
				ns.ID, rs.Ready, rs.Peers, rs.StoreSize, rs.Announced, rs.Suppressed)
		}
		if got, err := h.client.StoreEntries(p.ObsURL); err == nil {
			h.logf("    store: got %v want %v", got, oracle[ns.ID])
		}
		for _, line := range p.StderrTail(8) {
			h.logf("    stderr: %s", line)
		}
	}
	s := h.relay.Stats()
	h.logf("  relay: forwarded=%d dropped=%d corrupted=%d duplicated=%d", s.Forwarded, s.Dropped, s.Corrupted, s.Duplicated)
}
