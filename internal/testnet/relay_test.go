package testnet

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// rawFrame builds a minimal TOTA wire frame (type, id length, id,
// payload) without importing the transport internals.
func rawFrame(typ byte, id string, payload []byte) []byte {
	f := []byte{typ}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(id)))
	f = append(f, lenb[:]...)
	f = append(f, id...)
	return append(f, payload...)
}

// endpoint is a bare UDP socket standing in for a node process.
type endpoint struct {
	conn *net.UDPConn
}

func newEndpoint(t *testing.T) *endpoint {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &endpoint{conn: conn}
}

func (e *endpoint) send(t *testing.T, linkAddr string, frame []byte) {
	t.Helper()
	dst, err := net.ResolveUDPAddr("udp", linkAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.conn.WriteToUDP(frame, dst); err != nil {
		t.Fatal(err)
	}
}

// recv reads one datagram with a short deadline; ok is false on
// timeout.
func (e *endpoint) recv(t *testing.T, d time.Duration) ([]byte, bool) {
	t.Helper()
	_ = e.conn.SetReadDeadline(time.Now().Add(d))
	buf := make([]byte, 65536)
	n, _, err := e.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, false
	}
	return buf[:n], true
}

func TestTestnetRelayForwardsByFrameSender(t *testing.T) {
	r := NewRelay(1)
	defer r.Close()
	addr, err := r.AddLink("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := newEndpoint(t), newEndpoint(t)

	// Until b has spoken, frames toward it are unroutable and dropped.
	ea.send(t, addr, rawFrame(1, "a", nil))
	if _, ok := eb.recv(t, 100*time.Millisecond); ok {
		t.Fatal("relay forwarded before learning b's address")
	}
	// b speaks: the relay learns its address from the frame sender ID
	// and can now route both directions.
	eb.send(t, addr, rawFrame(1, "b", nil))
	if got, ok := ea.recv(t, time.Second); !ok || !bytes.Equal(got, rawFrame(1, "b", nil)) {
		t.Fatalf("a got %q ok=%v, want b's hello", got, ok)
	}
	payload := []byte("tuple-bytes")
	ea.send(t, addr, rawFrame(2, "a", payload))
	if got, ok := eb.recv(t, time.Second); !ok || !bytes.Equal(got, rawFrame(2, "a", payload)) {
		t.Fatalf("b got %q ok=%v, want a's data frame", got, ok)
	}

	// Restart shape: b rebinds a NEW socket and speaks; the relay must
	// re-learn and route to the new address.
	eb2 := newEndpoint(t)
	eb2.send(t, addr, rawFrame(1, "b", nil))
	if _, ok := ea.recv(t, time.Second); !ok {
		t.Fatal("a missed hello from restarted b")
	}
	ea.send(t, addr, rawFrame(2, "a", payload))
	if _, ok := eb2.recv(t, time.Second); !ok {
		t.Fatal("relay kept routing to b's dead socket after restart")
	}

	// Garbage and foreign IDs never cross.
	ea.send(t, addr, []byte{9, 9, 9})
	ea.send(t, addr, rawFrame(1, "stranger", nil))
	if _, ok := eb2.recv(t, 100*time.Millisecond); ok {
		t.Fatal("unattributable traffic was forwarded")
	}
}

func TestTestnetRelayFaults(t *testing.T) {
	r := NewRelay(2)
	defer r.Close()
	addr, err := r.AddLink("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := newEndpoint(t), newEndpoint(t)
	eb.send(t, addr, rawFrame(1, "b", nil))
	_, _ = ea.recv(t, time.Second)

	// Total loss: nothing crosses.
	r.Apply(FaultState{Loss: 1})
	for i := 0; i < 5; i++ {
		ea.send(t, addr, rawFrame(2, "a", []byte("x")))
	}
	if _, ok := eb.recv(t, 150*time.Millisecond); ok {
		t.Fatal("frame crossed a loss=1 link")
	}
	if s := r.Stats(); s.Dropped < 5 {
		t.Fatalf("dropped = %d, want >= 5", s.Dropped)
	}

	// Directional loss: a->b blocked, b->a clean.
	r.Apply(FaultState{DirLoss: map[[2]string]float64{{"a", "b"}: 1}})
	ea.send(t, addr, rawFrame(2, "a", []byte("x")))
	if _, ok := eb.recv(t, 150*time.Millisecond); ok {
		t.Fatal("frame crossed a blocked direction")
	}
	eb.send(t, addr, rawFrame(2, "b", []byte("y")))
	if _, ok := ea.recv(t, time.Second); !ok {
		t.Fatal("clean direction was blocked too")
	}

	// Partition: both directions silently cut.
	r.Apply(FaultState{Partitioned: map[string]bool{"a": true}})
	ea.send(t, addr, rawFrame(2, "a", []byte("x")))
	eb.send(t, addr, rawFrame(2, "b", []byte("y")))
	if _, ok := eb.recv(t, 150*time.Millisecond); ok {
		t.Fatal("partition leaked a->b")
	}
	if _, ok := ea.recv(t, 150*time.Millisecond); ok {
		t.Fatal("partition leaked b->a")
	}

	// Heal: recomputed empty state restores the link.
	r.Apply(FaultState{})
	ea.send(t, addr, rawFrame(2, "a", []byte("healed")))
	if _, ok := eb.recv(t, time.Second); !ok {
		t.Fatal("link did not heal")
	}

	// Corruption mangles payload bytes but never the header, so the
	// receiver can still attribute the frame (and its CRC rejects it).
	r.Apply(FaultState{Corrupt: 1})
	orig := rawFrame(2, "a", []byte("0123456789abcdef"))
	ea.send(t, addr, orig)
	got, ok := eb.recv(t, time.Second)
	if !ok {
		t.Fatal("corrupted frame was dropped, want forwarded")
	}
	hdr := rawFrame(2, "a", nil)
	if !bytes.Equal(got[:len(hdr)], hdr) {
		t.Fatalf("corruption damaged the frame header: %q", got[:len(hdr)])
	}
	if bytes.Equal(got, orig) {
		t.Fatal("corrupt=1 forwarded the frame unchanged")
	}

	// Duplication: one send, two arrivals.
	r.Apply(FaultState{Dup: 1})
	ea.send(t, addr, rawFrame(2, "a", []byte("twice")))
	if _, ok := eb.recv(t, time.Second); !ok {
		t.Fatal("dup frame lost entirely")
	}
	if _, ok := eb.recv(t, time.Second); !ok {
		t.Fatal("duplicate copy never arrived")
	}

	// Delay: the frame arrives, but not before the configured latency.
	r.Apply(FaultState{Delay: 300 * time.Millisecond})
	start := time.Now()
	ea.send(t, addr, rawFrame(2, "a", []byte("late")))
	if _, ok := eb.recv(t, 2*time.Second); !ok {
		t.Fatal("delayed frame never arrived")
	}
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("delayed frame arrived after %v, want >= 250ms", el)
	}
}
