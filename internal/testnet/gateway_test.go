package testnet

import (
	"strings"
	"testing"
	"time"

	"tota/internal/gateway"
	"tota/internal/pattern"
	"tota/internal/retry"
	"tota/internal/tuple"
)

func TestGatewayManifestValidateAndOracle(t *testing.T) {
	m := GenerateGateway(7, 5, 3, 2)
	if err := m.Validate(); err != nil {
		t.Fatalf("generated gateway manifest invalid: %v", err)
	}
	if m.GatewayClients != 3 || m.ClientInjects != 2 {
		t.Fatalf("client workload = %d/%d, want 3/2", m.GatewayClients, m.ClientInjects)
	}
	oracle := m.Oracle()
	// Every node must expect every client-injected flood: 5 nodes x 2
	// injectors each, on top of the base gradient + flood workload.
	for _, ns := range m.Nodes {
		var cw int
		for _, e := range oracle[ns.ID] {
			if strings.HasPrefix(e.Name, "cw-") {
				cw++
			}
		}
		if cw != 10 {
			t.Fatalf("node %s oracle has %d client floods, want 10: %v", ns.ID, cw, oracle[ns.ID])
		}
	}

	bad := m
	bad.ClientInjects = bad.GatewayClients + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("client_injects > gateway_clients validated")
	}
	bad = m
	bad.GatewayClients = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("client_injects without gateway_clients validated")
	}
}

// TestGatewayNodeBinarySmoke is the built-binary round trip: spawn the
// real tota-node with -gateway.addr, let a gateway client inject a
// tuple over the RPC surface and read it back, then verify the
// tota_gateway_* metrics are scrape-able from the telemetry endpoint.
func TestGatewayNodeBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real process; skipped in -short mode")
	}
	bin, err := BuildNodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	p, err := SpawnNode(bin, "smoke", nil, "-gateway.addr", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Kill()
	if p.GatewayAddr == "" {
		t.Fatal("no gateway banner parsed")
	}

	c := gateway.Dial(p.GatewayAddr, gateway.ClientConfig{
		Policy:         retry.New(1),
		RequestTimeout: 3 * time.Second,
	})
	defer c.Close()
	sub, err := c.Subscribe(pattern.ByName(pattern.KindFlood, "smoke"))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := c.Inject(pattern.NewFlood("smoke", tuple.S("via", "gateway"))); err != nil {
		t.Fatalf("inject: %v", err)
	}
	got, err := c.Read(pattern.ByName(pattern.KindFlood, "smoke"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 1 || got[0].Content().GetString("via") != "gateway" {
		t.Fatalf("read round trip = %v", got)
	}
	select {
	case ev := <-sub.Events:
		if ev.Tuple == nil || ev.Tuple.Content().GetString("name") != "smoke" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event for the injected tuple")
	}

	// The gateway counters ride the standard telemetry surface.
	body, err := NewClient(1).MetricsJSON(p.ObsURL)
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	for _, want := range []string{"tota_gateway_clients", "tota_gateway_injects_total", "tota_gateway_events_delivered_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics.json missing %s", want)
		}
	}
	if err := p.StopGraceful(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayTestnetMiniFleet is the miniature E18: three nodes, two
// clients each (one injector), the standard crash + loss plan. Client
// mirrors must converge with the stores.
func TestGatewayTestnetMiniFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("full-process testnet run in -short mode")
	}
	bin, err := BuildNodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	m := GenerateGateway(99, 3, 2, 1)
	var log strings.Builder
	rep, err := Run(m, bin, &log)
	if err != nil {
		t.Fatalf("testnet run failed: %v\n--- harness log ---\n%s", err, log.String())
	}
	if !rep.Converged {
		t.Fatalf("fleet did not converge\n%s", log.String())
	}
	if rep.ClientSubs != 6 {
		t.Errorf("client subs = %d, want 6", rep.ClientSubs)
	}
	if rep.ClientResyncs == 0 {
		t.Errorf("no client resyncs — the crash victim's gateway restart went unobserved\n%s", log.String())
	}
	if rep.ClientGapViolations != 0 {
		t.Errorf("unaccounted event gaps = %d", rep.ClientGapViolations)
	}
	t.Logf("converged at tick %d (subs=%d resyncs=%d replay_misses=%g drops=%g)",
		rep.ConvergeTick, rep.ClientSubs, rep.ClientResyncs, rep.GatewayReplayMisses, rep.GatewayDrops)
}
