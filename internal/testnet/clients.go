package testnet

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"tota/internal/core"
	"tota/internal/gateway"
	"tota/internal/pattern"
	"tota/internal/retry"
	"tota/internal/tuple"
)

// ClientFleet is the gateway client workload: GatewayClients fake
// clients per node, each holding one subscription whose event stream it
// folds into a live mirror of the node's tuple space. The mirror is
// the external proof that the gateway's subscribe/replay contract
// works end to end — it must converge on the oracle through crashes,
// loss windows and gateway restarts, with every recovery path (replay
// hit, epoch-change resync, drop-triggered read-back) exercised by the
// run itself rather than a scripted happy path.
type ClientFleet struct {
	m Manifest

	mu      sync.Mutex
	nodes   map[string]*nodeClients
	resyncs int64
}

type nodeClients struct {
	addr    string
	clients []*fleetClient
}

// fleetClient is one fake client: a gateway.Client, one subscription,
// and the mirror it maintains from the event stream.
type fleetClient struct {
	name string
	cli  *gateway.Client
	sub  *gateway.Subscription
	flt  *ClientFleet

	mu        sync.Mutex
	mirror    map[string]Entry // tuple id -> canonical entry
	lastDrops uint64
	done      chan struct{}
}

// NewClientFleet builds the (empty) fleet for a manifest; nodes attach
// as they start via StartNode.
func NewClientFleet(m Manifest) *ClientFleet {
	return &ClientFleet{m: m, nodes: make(map[string]*nodeClients)}
}

// StartNode attaches the manifest's per-node client cohort to a node's
// gateway: every client subscribes (match-all over the app kinds), and
// the first ClientInjects clients each inject their flood tuple. Safe
// to call once per node; a node restarting keeps its original cohort
// (the clients reconnect on their own — that is the point).
func (f *ClientFleet) StartNode(nodeID, gwAddr string) error {
	f.mu.Lock()
	if _, ok := f.nodes[nodeID]; ok {
		f.mu.Unlock()
		return nil
	}
	nc := &nodeClients{addr: gwAddr}
	f.nodes[nodeID] = nc
	f.mu.Unlock()

	for k := 0; k < f.m.GatewayClients; k++ {
		c := &fleetClient{
			name: fmt.Sprintf("%s-c%d", nodeID, k),
			flt:  f,
			cli: gateway.Dial(gwAddr, gateway.ClientConfig{
				// Seed per client so retry jitter de-correlates across
				// the cohort but reproduces run to run.
				Policy:         retry.New(f.m.Seed + int64(len(nodeID))*1000 + int64(k)),
				RequestTimeout: 3 * time.Second,
			}),
			mirror: make(map[string]Entry),
			done:   make(chan struct{}),
		}
		sub, err := c.cli.Subscribe(tuple.MatchAll())
		if err != nil {
			_ = c.cli.Close()
			return fmt.Errorf("testnet: client %s subscribe: %w", c.name, err)
		}
		c.sub = sub
		go c.consume()
		if k < f.m.ClientInjects {
			name := ClientFloodName(nodeID, k)
			if _, err := c.cli.Inject(pattern.NewFlood(name, tuple.S("origin", c.name))); err != nil {
				return fmt.Errorf("testnet: client %s inject: %w", c.name, err)
			}
		}
		f.mu.Lock()
		nc.clients = append(nc.clients, c)
		f.mu.Unlock()
	}
	return nil
}

// consume folds the subscription's event stream into the mirror. Three
// recovery paths keep it honest:
//   - normal events upsert/remove by tuple id (duplicates across the
//     replay/live seam are naturally idempotent);
//   - a Resync marker (gateway restarted, or replay missed) throws the
//     mirror away and rebuilds it with a Read RPC;
//   - growth in the gateway's drop accounting means events were shed to
//     the bounded queue, so the mirror also rebuilds via Read — drops
//     are accounted, and the account is acted on, never ignored.
func (c *fleetClient) consume() {
	defer close(c.done)
	for ev := range c.sub.Events {
		if ev.Resync {
			c.flt.countResync()
			// Pre-restart state is unreliable: drop it before rebuilding,
			// so a failed Read (gateway still coming up) leaves an empty
			// mirror that subsequent live arrivals repopulate, never a
			// stale one passing for converged.
			c.mu.Lock()
			c.mirror = make(map[string]Entry)
			c.mu.Unlock()
			c.rebuild()
			continue
		}
		c.mu.Lock()
		if ev.Drops > c.lastDrops {
			c.lastDrops = ev.Drops
			c.mu.Unlock()
			c.rebuild()
			continue
		}
		c.applyLocked(ev)
		c.mu.Unlock()
	}
}

func (c *fleetClient) applyLocked(ev gateway.SubEvent) {
	if ev.Tuple == nil {
		return
	}
	kind := ev.Tuple.Kind()
	if kind != pattern.KindGradient && kind != pattern.KindFlood {
		return // neighbor and message tuples are not store state
	}
	id := ev.Tuple.ID().String()
	switch ev.Type {
	case core.TupleArrived.String():
		c.mirror[id] = canonicalEntry(ev.Tuple)
	case core.TupleRemoved.String():
		delete(c.mirror, id)
	}
}

// rebuild replaces the mirror with a fresh Read of the node's space.
func (c *fleetClient) rebuild() {
	tuples, err := c.cli.Read(tuple.MatchAll())
	if err != nil {
		return // still disconnected; the next resync trigger retries
	}
	fresh := make(map[string]Entry)
	for _, t := range tuples {
		kind := t.Kind()
		if kind != pattern.KindGradient && kind != pattern.KindFlood {
			continue
		}
		fresh[t.ID().String()] = canonicalEntry(t)
	}
	c.mu.Lock()
	c.mirror = fresh
	c.mu.Unlock()
}

// canonicalEntry projects a tuple to the oracle-comparable form, with
// the same rules CanonicalizeStore applies to the NDJSON dump: kind,
// "name" field, and a finite "_val" when present.
func canonicalEntry(t tuple.Tuple) Entry {
	e := Entry{Kind: t.Kind(), Name: t.Content().GetString("name")}
	if m, ok := t.(tuple.Maintained); ok {
		if v := m.Value(); !math.IsInf(v, 0) && !math.IsNaN(v) {
			e.Val = v
			e.HasVal = true
		}
	}
	return e
}

// Snapshot returns the client's current mirror as sorted canonical
// entries.
func (c *fleetClient) Snapshot() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.mirror))
	for _, e := range c.mirror {
		out = append(out, e)
	}
	SortEntries(out)
	return out
}

func (f *ClientFleet) countResync() {
	f.mu.Lock()
	f.resyncs++
	f.mu.Unlock()
}

// Resyncs counts replay-miss/epoch-change recoveries clients performed.
func (f *ClientFleet) Resyncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.resyncs)
}

// Subscriptions counts live client subscriptions across the fleet.
func (f *ClientFleet) Subscriptions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, nc := range f.nodes {
		n += len(nc.clients)
	}
	return n
}

// Converged checks every client mirror against its node's oracle
// entry set; the first mismatch is described for the progress log.
func (f *ClientFleet) Converged(oracle map[string][]Entry) (bool, string) {
	f.mu.Lock()
	nodes := make(map[string][]*fleetClient, len(f.nodes))
	for id, nc := range f.nodes {
		nodes[id] = append([]*fleetClient(nil), nc.clients...)
	}
	f.mu.Unlock()
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		want := oracle[id]
		for _, c := range nodes[id] {
			got := c.Snapshot()
			if !EntriesEqual(got, want) {
				return false, fmt.Sprintf("client %s mirror has %v, want %v", c.name, got, want)
			}
		}
	}
	return true, ""
}

// GapViolations sums unaccounted sequence gaps across all clients —
// non-zero means the gateway broke the drops-cover-gaps contract.
func (f *ClientFleet) GapViolations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, nc := range f.nodes {
		for _, c := range nc.clients {
			n += c.sub.GapViolations()
		}
	}
	return n
}

// Close shuts every client down.
func (f *ClientFleet) Close() {
	f.mu.Lock()
	var all []*fleetClient
	for _, nc := range f.nodes {
		all = append(all, nc.clients...)
	}
	f.mu.Unlock()
	for _, c := range all {
		_ = c.cli.Close()
		<-c.done
	}
}
