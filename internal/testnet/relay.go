package testnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tota/internal/transport"
	"tota/internal/transport/udp"
)

// Relay routes real UDP datagrams between node processes, one socket
// per undirected link, applying fault decisions at the packet layer —
// the testnet's stand-in for a lossy radio. Each endpoint lists the
// link socket as its peer address; the relay attributes every frame to
// an endpoint by the sender ID in the frame header (not the source
// port, which changes when a process restarts) and forwards it to the
// opposite endpoint's last observed real address.
type Relay struct {
	mu    sync.Mutex
	links map[string]*link
	rng   *rand.Rand // seeds per-link RNGs; never used on the hot path
}

// RelayStats aggregates packet accounting across all links.
type RelayStats struct {
	Forwarded  int64
	Dropped    int64
	Corrupted  int64
	Duplicated int64
}

type link struct {
	mu   sync.Mutex
	conn *net.UDPConn
	a, b string // endpoint node IDs, sorted

	addrA, addrB *net.UDPAddr // learned from observed frames
	rng          *rand.Rand

	// Fault state, recomputed wholesale by the plan driver each tick.
	loss     float64            // symmetric drop probability
	dirLoss  map[string]float64 // per-sender override (>= 0 active)
	dup      float64            // duplication probability
	delay    time.Duration      // added latency
	jitter   time.Duration      // extra random latency, uniform [0, jitter)
	dirDelay map[string][2]time.Duration
	corrupt  float64 // payload byte-flip probability
	blocked  bool    // partition cut crosses this link

	closed atomic.Bool

	forwarded, dropped, corrupted, duplicated atomic.Int64
}

// NewRelay creates an empty relay whose per-link fault lotteries are
// derived from seed.
func NewRelay(seed int64) *Relay {
	return &Relay{
		links: make(map[string]*link),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// AddLink binds a loopback socket for the undirected link {a, b} and
// returns its address — the peer address BOTH endpoints must dial.
func (r *Relay) AddLink(a, b string) (string, error) {
	if a == b {
		return "", fmt.Errorf("testnet: self-link %q", a)
	}
	if a > b {
		a, b = b, a
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := linkKey(a, b)
	if _, dup := r.links[key]; dup {
		return "", fmt.Errorf("testnet: duplicate link %s-%s", a, b)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return "", fmt.Errorf("testnet: bind link %s-%s: %w", a, b, err)
	}
	l := &link{
		conn:     conn,
		a:        a,
		b:        b,
		rng:      rand.New(rand.NewSource(r.rng.Int63())),
		dirLoss:  make(map[string]float64),
		dirDelay: make(map[string][2]time.Duration),
	}
	r.links[key] = l
	go l.run()
	return conn.LocalAddr().String(), nil
}

// Close shuts down every link socket.
func (r *Relay) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.links {
		l.closed.Store(true)
		_ = l.conn.Close()
	}
}

// Stats sums packet accounting over all links.
func (r *Relay) Stats() RelayStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s RelayStats
	for _, l := range r.links {
		s.Forwarded += l.forwarded.Load()
		s.Dropped += l.dropped.Load()
		s.Corrupted += l.corrupted.Load()
		s.Duplicated += l.duplicated.Load()
	}
	return s
}

// FaultState is the complete fault configuration the plan driver
// pushes each tick; the relay applies it wholesale, so overlapping
// windows compose outside (by max/union) and healing is just pushing
// the recomputed state with a window removed.
type FaultState struct {
	// Loss is the symmetric per-packet drop probability on all links.
	Loss float64
	// DirLoss overrides Loss per directed edge (from -> to).
	DirLoss map[[2]string]float64
	// Dup is the per-packet duplication probability on all links.
	Dup float64
	// Delay/Jitter add latency to every packet on all links.
	Delay, Jitter time.Duration
	// DirDelay overrides Delay/Jitter per directed edge.
	DirDelay map[[2]string][2]time.Duration
	// Corrupt is the probability of flipping payload bytes (frame
	// headers stay intact so attribution survives).
	Corrupt float64
	// Partitioned is the cut set: links with exactly one endpoint in
	// it are silently blocked, both directions.
	Partitioned map[string]bool
}

// Apply pushes a fault state to every link.
func (r *Relay) Apply(st FaultState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.links {
		l.mu.Lock()
		l.loss = st.Loss
		l.dup = st.Dup
		l.delay, l.jitter = st.Delay, st.Jitter
		l.corrupt = st.Corrupt
		l.blocked = st.Partitioned[l.a] != st.Partitioned[l.b]
		clear(l.dirLoss)
		for edge, p := range st.DirLoss {
			if (edge[0] == l.a && edge[1] == l.b) || (edge[0] == l.b && edge[1] == l.a) {
				l.dirLoss[edge[0]] = p
			}
		}
		clear(l.dirDelay)
		for edge, d := range st.DirDelay {
			if (edge[0] == l.a && edge[1] == l.b) || (edge[0] == l.b && edge[1] == l.a) {
				l.dirDelay[edge[0]] = d
			}
		}
		l.mu.Unlock()
	}
}

// run is the link's forwarding loop: read a frame, attribute it by
// sender ID, run the fault lottery, forward (possibly late, possibly
// twice, possibly corrupted) to the opposite endpoint.
func (l *link) run() {
	buf := make([]byte, 65536)
	for {
		n, raddr, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		sender, ok := udp.FrameSender(buf[:n])
		if !ok {
			continue // not a TOTA frame; nothing to attribute
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])

		l.mu.Lock()
		var dst *net.UDPAddr
		switch string(sender) {
		case l.a:
			l.addrA = raddr
			dst = l.addrB
		case l.b:
			l.addrB = raddr
			dst = l.addrA
		default:
			l.mu.Unlock()
			continue // foreign ID: not this link's traffic
		}
		if l.blocked || dst == nil {
			// Partitioned, or the far endpoint has not spoken yet
			// (its address is unknown until its first frame).
			drop := l.blocked
			l.mu.Unlock()
			if drop {
				l.dropped.Add(1)
			}
			continue
		}
		loss := l.loss
		if p, ok := l.dirLoss[string(sender)]; ok {
			loss = p
		}
		if loss > 0 && l.rng.Float64() < loss {
			l.mu.Unlock()
			l.dropped.Add(1)
			continue
		}
		if l.corrupt > 0 && l.rng.Float64() < l.corrupt {
			if hdr, ok := udp.FrameHeaderLen(frame); ok && len(frame) > hdr {
				body := transport.CorruptBytes(l.rng, frame[hdr:])
				copy(frame[hdr:], body)
				l.corrupted.Add(1)
			}
		}
		sendTwice := l.dup > 0 && l.rng.Float64() < l.dup
		delay, jitter := l.delay, l.jitter
		if d, ok := l.dirDelay[string(sender)]; ok {
			delay, jitter = d[0], d[1]
		}
		if jitter > 0 {
			delay += time.Duration(l.rng.Int63n(int64(jitter)))
		}
		l.mu.Unlock()

		deliver := func() {
			if l.closed.Load() {
				return
			}
			if _, err := l.conn.WriteToUDP(frame, dst); err == nil {
				l.forwarded.Add(1)
			}
			if sendTwice {
				if _, err := l.conn.WriteToUDP(frame, dst); err == nil {
					l.duplicated.Add(1)
				}
			}
		}
		if delay > 0 {
			time.AfterFunc(delay, deliver)
			continue
		}
		deliver()
	}
}
