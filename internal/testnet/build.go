package testnet

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// BuildNodeBinary compiles cmd/tota-node once per process into a temp
// directory and returns the binary path — the harness and the E17
// experiment share the artifact, so repeated runs pay the toolchain
// cost once.
func BuildNodeBinary() (string, error) {
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tota-testnet-")
		if err != nil {
			buildErr = err
			return
		}
		out := filepath.Join(dir, "tota-node")
		cmd := exec.Command("go", "build", "-o", out, "tota/cmd/tota-node")
		cmd.Dir = moduleRoot()
		if msg, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("testnet: build tota-node: %v\n%s", err, msg)
			return
		}
		buildPath = out
	})
	return buildPath, buildErr
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so the build works from any package directory (tests) or
// from the repo root (tota-bench, CI).
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}
