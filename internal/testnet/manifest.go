// Package testnet is a real-process robustness harness for the TOTA
// middleware: it spawns N genuine tota-node processes on loopback UDP,
// routes every packet through a per-link relay that applies a scripted
// fault plan at the real socket layer, injects process-level faults
// (SIGKILL + restart with the same identity, SIGSTOP/SIGCONT stalls,
// staggered cold starts), and asserts convergence strictly FROM THE
// OUTSIDE by scraping each node's observability endpoints until the
// fleet's tuple stores match a topology-derived oracle.
//
// Everything is driven by a Manifest — topology, fault plan, workload —
// generated from a single seed, cometbft-style: random but exactly
// reproducible, so a failing network condition is a seed number, not a
// flake.
package testnet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"tota/internal/fault"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

// NodeSpec describes one process in the fleet.
type NodeSpec struct {
	ID string `json:"id"`
	// StartTick delays the process launch (staggered cold start): the
	// node spawns at this harness tick, 0 meaning before tick zero.
	StartTick int `json:"start_tick"`
}

// WorkloadStep is one shell command written to a node's stdin at a
// scheduled tick — the external stimulus (gradient/flood injections)
// whose outcome the oracle predicts.
type WorkloadStep struct {
	Node   string `json:"node"`
	AtTick int    `json:"at_tick"`
	Cmd    string `json:"cmd"`
}

// Manifest is the complete, serializable description of one testnet
// run: topology × fault plan × workload, plus the clock that maps the
// fault plan's tick numbers onto wall time.
type Manifest struct {
	// Seed parameterizes every random draw: topology generation,
	// relay fault lotteries, poll-client backoff jitter.
	Seed int64 `json:"seed"`
	// Nodes are the fleet members.
	Nodes []NodeSpec `json:"nodes"`
	// Links are undirected edges; each becomes one relay socket.
	Links [][2]string `json:"links"`
	// Plan is a fault.ParsePlan spec (loss/linkloss/delay/linkdelay/
	// corrupt/partition/crash/pause/dup windows in harness ticks).
	Plan string `json:"plan"`
	// TickMS is the wall-clock duration of one harness tick.
	TickMS int `json:"tick_ms"`
	// DeadlineTicks bounds the whole run: if the fleet has not
	// converged on the oracle by then, the run fails with diagnostics.
	DeadlineTicks int `json:"deadline_ticks"`
	// Workload are the scheduled stdin injections.
	Workload []WorkloadStep `json:"workload"`
	// GatewayClients attaches N fake gateway clients to every node's
	// client RPC endpoint (0 disables the client workload entirely).
	// Each client subscribes to the tuple space and mirrors it from the
	// event stream; the harness then verifies every mirror against the
	// oracle, not just the node stores.
	GatewayClients int `json:"gateway_clients,omitempty"`
	// ClientInjects is how many of each node's clients additionally
	// inject one flood tuple (named cw-<node>-<k>) through the gateway,
	// so client-originated state must also reach the whole fleet. Must
	// not exceed GatewayClients.
	ClientInjects int `json:"client_injects,omitempty"`
}

// Generate derives a reproducible manifest from a seed: a connected
// ring-plus-chords topology over n nodes, a crash + heavy-loss fault
// plan against a non-source victim, and a gradient + flood workload.
// The same (seed, n) always yields the identical manifest.
func Generate(seed int64, n int) Manifest {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	m := Manifest{
		Seed:          seed,
		TickMS:        250,
		DeadlineTicks: 140,
	}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, NodeSpec{ID: fmt.Sprintf("n%02d", i)})
	}
	// One late joiner (when the fleet is big enough): it must catch up
	// on state injected before it existed.
	if n >= 4 {
		m.Nodes[n-1].StartTick = 4 + rng.Intn(3)
	}
	// Ring keeps the graph connected under any chord draw.
	for i := 0; i < n; i++ {
		m.Links = append(m.Links, [2]string{m.Nodes[i].ID, m.Nodes[(i+1)%n].ID})
	}
	// A few chords so loss has alternate routes to defeat.
	for c := 0; c < n/3; c++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j || j == (i+1)%n || i == (j+1)%n {
			continue
		}
		a, b := m.Nodes[i].ID, m.Nodes[j].ID
		if hasLink(m.Links, a, b) {
			continue
		}
		m.Links = append(m.Links, [2]string{a, b})
	}
	// Workload and victim draws come from the tick-0 cohort: the late
	// joiner can neither run a command nor be SIGKILLed before it
	// exists.
	var early []string
	for _, ns := range m.Nodes[1:] {
		if ns.StartTick == 0 {
			early = append(early, ns.ID)
		}
	}
	src := m.Nodes[0].ID
	flooder := early[rng.Intn(len(early))]
	m.Workload = []WorkloadStep{
		{Node: src, AtTick: 1, Cmd: "gradient field"},
		{Node: flooder, AtTick: 2, Cmd: "flood notice testnet-payload"},
	}
	// Faults: ≥30% loss across every relay while a non-source,
	// always-present victim is SIGKILLed and later restarted with the
	// same identity and an empty store.
	victim := early[rng.Intn(len(early))]
	if victim == flooder && len(early) > 1 {
		for _, id := range early {
			if id != flooder {
				victim = id
				break
			}
		}
	}
	m.Plan = fmt.Sprintf("loss@3-12:%0.2f;crash@4-10:%s", 0.30+rng.Float64()*0.15, victim)
	return m
}

// GenerateGateway is Generate plus a gateway client workload: every
// node serves its gateway to `clients` fake clients, of which
// `injectors` push one flood tuple each through the RPC surface. The
// crash victim doubles as the gateway-restart case: its clients must
// survive the SIGKILL, reconnect to the restarted instance and recover
// their mirrors via seq-based replay/resync.
func GenerateGateway(seed int64, n, clients, injectors int) Manifest {
	m := Generate(seed, n)
	if clients < 1 {
		clients = 1
	}
	if injectors > clients {
		injectors = clients
	}
	m.GatewayClients = clients
	m.ClientInjects = injectors
	// Client mirrors converge through the same anti-entropy the stores
	// do, but only after the event stream settles; give the fleet more
	// headroom than the store-only run.
	m.DeadlineTicks += 40
	return m
}

func hasLink(links [][2]string, a, b string) bool {
	for _, l := range links {
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			return true
		}
	}
	return false
}

// Validate checks the manifest for internal consistency: unique known
// node IDs everywhere, no self-links, a parseable fault plan whose
// targets exist, and a connected topology (a disconnected fleet can
// never converge on a shared oracle).
func (m Manifest) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("testnet: manifest has no nodes")
	}
	if m.TickMS <= 0 {
		return fmt.Errorf("testnet: tick_ms must be positive")
	}
	if m.DeadlineTicks <= 0 {
		return fmt.Errorf("testnet: deadline_ticks must be positive")
	}
	known := make(map[string]bool, len(m.Nodes))
	for _, ns := range m.Nodes {
		if ns.ID == "" {
			return fmt.Errorf("testnet: empty node id")
		}
		if known[ns.ID] {
			return fmt.Errorf("testnet: duplicate node id %q", ns.ID)
		}
		if ns.StartTick < 0 {
			return fmt.Errorf("testnet: node %s: negative start tick", ns.ID)
		}
		known[ns.ID] = true
	}
	for _, l := range m.Links {
		if l[0] == l[1] {
			return fmt.Errorf("testnet: self-link on %q", l[0])
		}
		if !known[l[0]] || !known[l[1]] {
			return fmt.Errorf("testnet: link %s-%s references unknown node", l[0], l[1])
		}
	}
	if !m.connected() {
		return fmt.Errorf("testnet: topology is not connected")
	}
	plan, err := fault.ParsePlan(m.Plan)
	if err != nil {
		return err
	}
	for _, ev := range plan.Events {
		for _, id := range ev.Nodes {
			if !known[string(id)] {
				return fmt.Errorf("testnet: plan event %s targets unknown node %q", ev.Kind, id)
			}
		}
		if ev.Kind == fault.Crash || ev.Kind == fault.Pause {
			if ev.Until == 0 {
				return fmt.Errorf("testnet: plan event %s never heals (missing until tick)", ev.Kind)
			}
			for _, id := range ev.Nodes {
				for _, ns := range m.Nodes {
					if ns.ID == string(id) && ns.StartTick >= ev.From {
						return fmt.Errorf("testnet: %s victim %s not yet started at tick %d", ev.Kind, id, ev.From)
					}
				}
			}
		}
	}
	if m.GatewayClients < 0 || m.ClientInjects < 0 {
		return fmt.Errorf("testnet: negative gateway client counts")
	}
	if m.ClientInjects > 0 && m.GatewayClients == 0 {
		return fmt.Errorf("testnet: client_injects without gateway_clients")
	}
	if m.ClientInjects > m.GatewayClients {
		return fmt.Errorf("testnet: client_injects %d exceeds gateway_clients %d", m.ClientInjects, m.GatewayClients)
	}
	for _, w := range m.Workload {
		if !known[w.Node] {
			return fmt.Errorf("testnet: workload step targets unknown node %q", w.Node)
		}
		if w.Cmd == "" {
			return fmt.Errorf("testnet: workload step on %s has empty command", w.Node)
		}
		for _, ns := range m.Nodes {
			if ns.ID == w.Node && w.AtTick < ns.StartTick {
				return fmt.Errorf("testnet: workload at tick %d precedes %s's start tick %d", w.AtTick, w.Node, ns.StartTick)
			}
		}
	}
	return nil
}

func (m Manifest) connected() bool {
	if len(m.Nodes) == 0 {
		return false
	}
	seen := map[string]bool{m.Nodes[0].ID: true}
	queue := []string{m.Nodes[0].ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range m.Links {
			var other string
			switch cur {
			case l[0]:
				other = l[1]
			case l[1]:
				other = l[0]
			default:
				continue
			}
			if !seen[other] {
				seen[other] = true
				queue = append(queue, other)
			}
		}
	}
	return len(seen) == len(m.Nodes)
}

// MarshalJSON/UnmarshalJSON round-trip through the plain struct; the
// helpers below give the CLI a stable pretty form.

// EncodeJSON renders the manifest as indented JSON.
func (m Manifest) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses a manifest previously produced by EncodeJSON
// (or written by hand) and validates it.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("testnet: bad manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Entry is one canonical store item: the comparable projection of a
// tuple that the oracle predicts and the store dump is reduced to.
// Kind and Name identify the tuple; Val carries the maintained value
// (gradient hop distance) when HasVal is set.
type Entry struct {
	Kind string
	Name string
	Val  float64
	// HasVal distinguishes "no _val field" from Val == 0.
	HasVal bool
}

// String renders the canonical form used in diagnostics and sorting.
func (e Entry) String() string {
	if e.HasVal {
		return fmt.Sprintf("%s/%s=%g", e.Kind, e.Name, e.Val)
	}
	return fmt.Sprintf("%s/%s", e.Kind, e.Name)
}

// Oracle computes the expected steady-state store of every node from
// the manifest alone: for each workload gradient, every node holds one
// gradient tuple whose value is its BFS hop distance from the source
// (TOTA's maintained field invariant); for each flood, every node
// holds one copy. Faults never change the answer — that is the point:
// after every window heals, anti-entropy must restore exactly this.
func (m Manifest) Oracle() map[string][]Entry {
	dist := func(src string) map[string]int {
		d := map[string]int{src: 0}
		queue := []string{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, l := range m.Links {
				var other string
				switch cur {
				case l[0]:
					other = l[1]
				case l[1]:
					other = l[0]
				default:
					continue
				}
				if _, ok := d[other]; !ok {
					d[other] = d[cur] + 1
					queue = append(queue, other)
				}
			}
		}
		return d
	}
	want := make(map[string][]Entry, len(m.Nodes))
	for _, w := range m.Workload {
		name, kind, ok := parseWorkloadPattern(w.Cmd)
		if !ok {
			continue
		}
		switch kind {
		case pattern.KindGradient:
			for node, hops := range dist(w.Node) {
				want[node] = append(want[node], Entry{Kind: kind, Name: name, Val: float64(hops), HasVal: true})
			}
		case pattern.KindFlood:
			for _, ns := range m.Nodes {
				want[ns.ID] = append(want[ns.ID], Entry{Kind: kind, Name: name})
			}
		}
	}
	// Client-originated floods: injector client k of node g pushes
	// cw-<g>-<k> through the gateway; it floods like any other tuple,
	// so every node (and every client mirror) must end up holding it.
	for _, src := range m.Nodes {
		for k := 0; k < m.ClientInjects; k++ {
			name := ClientFloodName(src.ID, k)
			for _, ns := range m.Nodes {
				want[ns.ID] = append(want[ns.ID], Entry{Kind: pattern.KindFlood, Name: name})
			}
		}
	}
	for node := range want {
		SortEntries(want[node])
	}
	return want
}

// ClientFloodName is the deterministic name of the flood tuple the
// k-th injector client of a node pushes through the gateway.
func ClientFloodName(node string, k int) string {
	return fmt.Sprintf("cw-%s-%d", node, k)
}

// parseWorkloadPattern maps a shell workload command to the (name,
// kind) it creates; commands without a store-level effect (reads,
// stats) return ok = false.
func parseWorkloadPattern(cmd string) (name, kind string, ok bool) {
	var verb string
	if _, err := fmt.Sscanf(cmd, "%s %s", &verb, &name); err != nil {
		return "", "", false
	}
	switch verb {
	case "gradient":
		return name, pattern.KindGradient, true
	case "flood":
		return name, pattern.KindFlood, true
	}
	return "", "", false
}

// SortEntries orders entries canonically for set comparison.
func SortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].String() < es[j].String() })
}

// EntriesEqual reports whether two canonically sorted entry sets match
// exactly.
func EntriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Degree returns each node's link count — the readiness barrier's
// per-node peer target.
func (m Manifest) Degree() map[string]int {
	deg := make(map[string]int, len(m.Nodes))
	for _, l := range m.Links {
		deg[l[0]]++
		deg[l[1]]++
	}
	return deg
}

// NodeIDs returns the fleet's IDs in manifest order.
func (m Manifest) NodeIDs() []tuple.NodeID {
	ids := make([]tuple.NodeID, 0, len(m.Nodes))
	for _, ns := range m.Nodes {
		ids = append(ids, tuple.NodeID(ns.ID))
	}
	return ids
}
