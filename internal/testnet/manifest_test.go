package testnet

import (
	"bytes"
	"strings"
	"testing"

	"tota/internal/pattern"
)

func TestTestnetManifestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 5)
	b := Generate(42, 5)
	aj, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed produced different manifests:\n%s\nvs\n%s", aj, bj)
	}
	if c := Generate(43, 5); c.Plan == a.Plan && c.Seed == a.Seed {
		t.Fatal("different seeds produced identical manifests")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated manifest invalid: %v", err)
	}
	rt, err := DecodeManifest(aj)
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if rt.Plan != a.Plan || len(rt.Nodes) != len(a.Nodes) || len(rt.Links) != len(a.Links) {
		t.Fatalf("round trip mangled the manifest: %+v vs %+v", rt, a)
	}
	if !strings.Contains(a.Plan, "crash@") || !strings.Contains(a.Plan, "loss@") {
		t.Fatalf("generated plan misses crash+loss: %q", a.Plan)
	}
}

func TestTestnetManifestOracle(t *testing.T) {
	m := Generate(7, 5)
	oracle := m.Oracle()
	if len(oracle) != len(m.Nodes) {
		t.Fatalf("oracle covers %d nodes, want %d", len(oracle), len(m.Nodes))
	}
	src := m.Workload[0].Node
	for _, e := range oracle[src] {
		if e.Kind == pattern.KindGradient {
			if !e.HasVal || e.Val != 0 {
				t.Fatalf("gradient at source = %v, want val 0", e)
			}
		}
	}
	// Every node holds exactly one gradient and one flood entry, and
	// gradient distances respect the link structure (neighbors of the
	// source are at 1).
	for node, entries := range oracle {
		var grad, flood int
		for _, e := range entries {
			switch e.Kind {
			case pattern.KindGradient:
				grad++
				if node != src && (!e.HasVal || e.Val < 1) {
					t.Fatalf("node %s gradient %v: want val >= 1", node, e)
				}
			case pattern.KindFlood:
				flood++
				if e.HasVal {
					t.Fatalf("flood entry %v should carry no value", e)
				}
			}
		}
		if grad != 1 || flood != 1 {
			t.Fatalf("node %s oracle = %v, want one gradient + one flood", node, entries)
		}
	}
}

func TestTestnetManifestValidateRejects(t *testing.T) {
	base := Generate(1, 5)
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"no nodes", func(m *Manifest) { m.Nodes = nil }},
		{"dup id", func(m *Manifest) { m.Nodes[1].ID = m.Nodes[0].ID }},
		{"self link", func(m *Manifest) { m.Links[0][1] = m.Links[0][0] }},
		{"unknown link node", func(m *Manifest) { m.Links[0][1] = "ghost" }},
		{"disconnected", func(m *Manifest) { m.Links = m.Links[:1] }},
		{"bad plan", func(m *Manifest) { m.Plan = "meteor@3:all" }},
		{"plan unknown node", func(m *Manifest) { m.Plan = "crash@2-4:ghost" }},
		{"crash never heals", func(m *Manifest) { m.Plan = "crash@2:" + m.Nodes[1].ID }},
		{"workload unknown node", func(m *Manifest) { m.Workload[0].Node = "ghost" }},
		{"workload before start", func(m *Manifest) {
			m.Nodes[0].StartTick = 9
			m.Workload[0].Node = m.Nodes[0].ID
			m.Workload[0].AtTick = 1
		}},
		{"zero tick", func(m *Manifest) { m.TickMS = 0 }},
	}
	for _, tc := range cases {
		m := base
		// Deep-ish copy of the mutated slices.
		m.Nodes = append([]NodeSpec(nil), base.Nodes...)
		m.Links = append([][2]string(nil), base.Links...)
		m.Workload = append([]WorkloadStep(nil), base.Workload...)
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken manifest", tc.name)
		}
	}
}

func TestTestnetCanonicalizeStore(t *testing.T) {
	body := strings.Join([]string{
		`{"kind":"tota:gradient","id":"a#1","content":[{"name":"name","type":"string","value":"f"},{"name":"_val","type":"float","value":2},{"name":"_scope","type":"float","value":"+Inf"}]}`,
		`{"kind":"tota:flood","id":"b#1","content":[{"name":"name","type":"string","value":"m"},{"name":"text","type":"string","value":"hi"}]}`,
		``,
	}, "\n")
	got, err := CanonicalizeStore([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Kind: "tota:flood", Name: "m"},
		{Kind: "tota:gradient", Name: "f", Val: 2, HasVal: true},
	}
	SortEntries(want)
	if !EntriesEqual(got, want) {
		t.Fatalf("canonicalize = %v, want %v", got, want)
	}
	if _, err := CanonicalizeStore([]byte("{not json")); err == nil {
		t.Fatal("garbage line accepted")
	}
}
