package testnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tota/internal/retry"
)

// Client is the harness's resilient HTTP poller for node observability
// endpoints: every request has a hard timeout, a bounded retry budget
// and exponential backoff with seeded jitter, because the node on the
// other end may be mid-restart, SIGSTOPped or drowning in relay loss —
// transient refusal is the expected case, not the exception. The
// schedule itself lives in internal/retry, shared with the gateway RPC
// client.
type Client struct {
	// Policy is the retry/backoff budget (retry.New defaults: 4
	// attempts, 50ms doubling to 1s, seeded jitter).
	Policy *retry.Policy

	http *http.Client
}

// NewClient builds a poll client whose backoff jitter derives from
// seed (the manifest seed, so poll schedules reproduce too).
func NewClient(seed int64) *Client {
	return &Client{
		Policy: retry.New(seed),
		http:   &http.Client{Timeout: 2 * time.Second},
	}
}

// ReadyStatus mirrors the /readyz payload (obs.Readiness plus the
// ready bit and per-scrape deltas).
type ReadyStatus struct {
	Ready           bool  `json:"ready"`
	StoreSize       int   `json:"store_size"`
	Peers           int   `json:"peers"`
	Announced       int64 `json:"announced"`
	Suppressed      int64 `json:"suppressed"`
	AnnouncedDelta  int64 `json:"announced_delta"`
	SuppressedDelta int64 `json:"suppressed_delta"`
}

// get fetches url with the retry/backoff policy. A 503 from /readyz is
// a VALID response (not-ready with a diagnostic body), so any response
// with a body is returned; only transport-level failures retry.
func (c *Client) get(url string) ([]byte, int, error) {
	var body []byte
	var status int
	err := c.Policy.Do(func() error {
		resp, err := c.http.Get(url)
		if err != nil {
			return err
		}
		b, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return err
		}
		body, status = b, resp.StatusCode
		return nil
	}, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("testnet: %s unreachable: %w", url, err)
	}
	return body, status, nil
}

// Ready polls /readyz. Both 200 and 503 decode; err is reserved for
// the node being unreachable outright.
func (c *Client) Ready(obsURL string) (ReadyStatus, error) {
	body, _, err := c.get(obsURL + "/readyz")
	if err != nil {
		return ReadyStatus{}, err
	}
	var rs ReadyStatus
	if err := json.Unmarshal(body, &rs); err != nil {
		return ReadyStatus{}, fmt.Errorf("testnet: bad /readyz payload: %w", err)
	}
	return rs, nil
}

// StoreEntries scrapes /store.json and reduces the NDJSON dump to
// canonical sorted entries — the external view compared against the
// oracle.
func (c *Client) StoreEntries(obsURL string) ([]Entry, error) {
	body, status, err := c.get(obsURL + "/store.json")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("testnet: /store.json returned HTTP %d", status)
	}
	return CanonicalizeStore(body)
}

// MetricsJSON scrapes /metrics.json raw (diagnostics payloads).
func (c *Client) MetricsJSON(obsURL string) ([]byte, error) {
	body, _, err := c.get(obsURL + "/metrics.json")
	return body, err
}

// Flight scrapes the flight-recorder ring (NDJSON trace events).
func (c *Client) Flight(obsURL string) ([]byte, error) {
	body, _, err := c.get(obsURL + "/debug/flight")
	return body, err
}

// storeTuple is the subset of the tuple JSON interchange form the
// canonicalizer needs; decoding it generically keeps the harness
// independent of the pattern registry.
type storeTuple struct {
	Kind    string `json:"kind"`
	Content []struct {
		Name  string          `json:"name"`
		Type  string          `json:"type"`
		Value json.RawMessage `json:"value"`
	} `json:"content"`
}

// CanonicalizeStore reduces a /store.json NDJSON body to sorted
// canonical entries: kind, "name" field, and the "_val" maintained
// value when present (non-finite floats travel as strings and are
// treated as absent — an unbounded scope is not a value).
func CanonicalizeStore(body []byte) ([]Entry, error) {
	var entries []Entry
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var st storeTuple
		if err := json.Unmarshal([]byte(line), &st); err != nil {
			return nil, fmt.Errorf("testnet: bad store line %q: %w", line, err)
		}
		e := Entry{Kind: st.Kind}
		for _, f := range st.Content {
			switch f.Name {
			case "name":
				_ = json.Unmarshal(f.Value, &e.Name)
			case "_val":
				var v float64
				if err := json.Unmarshal(f.Value, &v); err == nil {
					e.Val = v
					e.HasVal = true
				}
			}
		}
		entries = append(entries, e)
	}
	SortEntries(entries)
	return entries, nil
}
