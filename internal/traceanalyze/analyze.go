// Package traceanalyze reconstructs per-tuple propagation trees from
// the middleware's JSONL trace streams (obs.JSONLSink files and
// flight-recorder dumps share one schema, so both ingest directly).
//
// The causal material is the sampled trace context PRs carry on the
// wire: every copy incarnation of a sampled tuple owns a span (a
// deterministic hash of node, tuple and a local sequence), and every
// arrival event names the upstream hop's span as its parent. Stitching
// span → owning node across all nodes' streams yields the propagation
// tree the paper draws by hand: who infected whom, when, and over
// which link — plus where anti-entropy had to pull, which is exactly
// where broadcasts are being lost.
package traceanalyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tota/internal/obs"
)

// arrivalKinds are the event kinds that mark a node joining a tuple's
// propagation (a copy incarnation with its own span). Sends, pulls and
// duplicate drops reference spans but do not create them.
var arrivalKinds = map[string]bool{
	"inject":    true,
	"store":     true,
	"adopt":     true,
	"supersede": true,
	"forward":   true,
}

// ReadJSONL parses one JSONL trace stream. Blank lines are skipped;
// a malformed line aborts with its line number (truncated tail lines
// from a crash dump are the expected culprit).
func ReadJSONL(r io.Reader) ([]obs.TraceRecord, error) {
	var recs []obs.TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec obs.TraceRecord
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("traceanalyze: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceanalyze: %w", err)
	}
	return recs, nil
}

// ReadFiles reads and concatenates several JSONL files in argument
// order (e.g. one sink file plus a few flight dumps).
func ReadFiles(paths ...string) ([]obs.TraceRecord, error) {
	var all []obs.TraceRecord
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		recs, err := ReadJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, recs...)
	}
	return all, nil
}

// Link is one directed network link, in data-flow direction.
type Link struct {
	From, To string
}

func (l Link) String() string { return l.From + "->" + l.To }

// LinkCount ranks a link by an event count.
type LinkCount struct {
	Link  Link
	Count int
}

// TreeNode is one node's place in a tuple's propagation tree.
type TreeNode struct {
	// Node is the network node id.
	Node string
	// T is the first-arrival time (sink clock units, typically radio
	// rounds).
	T float64
	// Kind is the arrival event kind (inject, store, adopt, supersede,
	// forward).
	Kind string
	// Hop is the copy's hop count at arrival.
	Hop int
	// Parent is the upstream node (empty at the root and on orphans).
	Parent string
	// Children are downstream arrivals, sorted by (T, Node).
	Children []*TreeNode
}

// Flow is everything the traces say about one sampled tuple.
type Flow struct {
	// Trace is the tuple's trace id (lowercase hex).
	Trace string
	// ID is the tuple id (NODE#SEQ).
	ID string
	// Tuple is the tuple kind, when any record carried it.
	Tuple string
	// Root is the propagation tree root (the injection), nil when the
	// injection event is missing from the ingested streams.
	Root *TreeNode
	// Orphans are arrivals whose causal parent could not be resolved
	// (parent span unseen and no From hint), sorted by (T, Node).
	Orphans []*TreeNode
	// Arrivals counts distinct nodes reached.
	Arrivals int
	// Repairs counts re-arrivals after the first (repair/supersede
	// churn at already-visited nodes).
	Repairs int
	// Sends counts announcement/pull-response transmissions.
	Sends int
	// Pulls counts anti-entropy pulls, per directed link (data-flow
	// direction: the puller asked Link.From for bytes it never got).
	Pulls map[Link]int
	// Events is the total record count for this flow.
	Events int

	byNode map[string]*TreeNode
	parent map[string]string
}

// Analysis is the result of stitching a set of trace records.
type Analysis struct {
	// Flows are the per-tuple propagation flows, sorted by (ID, Trace).
	Flows []*Flow
	// Untraced counts ingested records without trace context (events of
	// unsampled tuples).
	Untraced int
}

// Analyze stitches records (any order, any number of merged streams)
// into per-tuple flows.
func Analyze(recs []obs.TraceRecord) *Analysis {
	a := &Analysis{}
	flows := make(map[string]*Flow)
	// Span ownership is global: a span is minted by exactly one node.
	spanOwner := make(map[string]string)
	for i := range recs {
		rec := &recs[i]
		if rec.Trace == "" {
			a.Untraced++
			continue
		}
		fl, ok := flows[rec.Trace]
		if !ok {
			fl = &Flow{
				Trace:  rec.Trace,
				ID:     rec.ID,
				Pulls:  make(map[Link]int),
				byNode: make(map[string]*TreeNode),
				parent: make(map[string]string),
			}
			flows[rec.Trace] = fl
		}
		fl.Events++
		if fl.Tuple == "" && rec.Tuple != "" {
			fl.Tuple = rec.Tuple
		}
		if rec.Span != "" {
			if _, seen := spanOwner[rec.Span]; !seen {
				spanOwner[rec.Span] = rec.Node
			}
		}
		switch rec.Kind {
		case "send":
			fl.Sends++
		case "pull":
			fl.Pulls[Link{From: rec.From, To: rec.Node}]++
		}
	}
	// Second pass: resolve arrivals now that every span has an owner,
	// regardless of stream merge order.
	for i := range recs {
		rec := &recs[i]
		if rec.Trace == "" || !arrivalKinds[rec.Kind] {
			continue
		}
		fl := flows[rec.Trace]
		if prev, seen := fl.byNode[rec.Node]; seen {
			// Keep the earliest arrival; later ones are repair churn.
			fl.Repairs++
			if rec.T >= prev.T {
				continue
			}
		}
		parent := ""
		if rec.PSpan != "" {
			parent = spanOwner[rec.PSpan]
		}
		if parent == "" {
			// The upstream span was never exported (partial dump): fall
			// back to the wire-level previous hop.
			parent = rec.From
		}
		tn := &TreeNode{Node: rec.Node, T: rec.T, Kind: rec.Kind, Hop: rec.Hop, Parent: parent}
		if rec.Kind == "inject" {
			tn.Parent = ""
		}
		fl.byNode[rec.Node] = tn
		fl.parent[rec.Node] = tn.Parent
	}
	for _, fl := range flows {
		fl.link()
		a.Flows = append(a.Flows, fl)
	}
	sort.Slice(a.Flows, func(i, j int) bool {
		if a.Flows[i].ID != a.Flows[j].ID {
			return a.Flows[i].ID < a.Flows[j].ID
		}
		return a.Flows[i].Trace < a.Flows[j].Trace
	})
	return a
}

// link assembles the parent pointers into a tree, separating orphans.
func (fl *Flow) link() {
	fl.Arrivals = len(fl.byNode)
	for _, tn := range fl.byNode {
		if tn.Kind == "inject" && fl.Root == nil {
			fl.Root = tn
			continue
		}
		p := fl.byNode[tn.Parent]
		// Self-parenting and unknown parents orphan the node; a cycle
		// through unknown spans degrades the same way instead of looping.
		if p == nil || p == tn {
			fl.Orphans = append(fl.Orphans, tn)
			continue
		}
		p.Children = append(p.Children, tn)
	}
	var order func(ns []*TreeNode)
	order = func(ns []*TreeNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].T != ns[j].T {
				return ns[i].T < ns[j].T
			}
			return ns[i].Node < ns[j].Node
		})
	}
	for _, tn := range fl.byNode {
		order(tn.Children)
	}
	order(fl.Orphans)
}

// CriticalPath returns the root-to-leaf chain ending at the latest
// arrival reachable from the root (ties broken by node id), i.e. the
// propagation's limiting branch. Empty when the flow has no root.
func (fl *Flow) CriticalPath() []*TreeNode {
	if fl.Root == nil {
		return nil
	}
	var worst *TreeNode
	var walk func(tn *TreeNode)
	walk = func(tn *TreeNode) {
		if worst == nil || tn.T > worst.T || (tn.T == worst.T && tn.Node < worst.Node) {
			worst = tn
		}
		for _, c := range tn.Children {
			walk(c)
		}
	}
	walk(fl.Root)
	var path []*TreeNode
	for tn := worst; tn != nil; tn = fl.byNode[tn.Parent] {
		path = append(path, tn)
		if tn == fl.Root {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// LossyLinks ranks directed links by pull count across all flows —
// sustained pulls on one link mean that link keeps eating broadcasts
// (the anti-entropy layer is detecting the loss; this localizes it).
func (a *Analysis) LossyLinks() []LinkCount {
	total := make(map[Link]int)
	for _, fl := range a.Flows {
		for l, n := range fl.Pulls {
			total[l] += n
		}
	}
	out := make([]LinkCount, 0, len(total))
	for l, n := range total {
		out = append(out, LinkCount{Link: l, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Link.From != out[j].Link.From {
			return out[i].Link.From < out[j].Link.From
		}
		return out[i].Link.To < out[j].Link.To
	})
	return out
}
