package traceanalyze

import (
	"fmt"
	"io"
	"strconv"
)

// ftime renders a sink timestamp compactly (round counts print as
// integers, wall-clock seconds keep their precision).
func ftime(t float64) string {
	return strconv.FormatFloat(t, 'g', -1, 64)
}

// WriteTree renders a flow's propagation tree as an indented listing.
func (fl *Flow) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "trace %s id %s", fl.Trace, fl.ID)
	if fl.Tuple != "" {
		fmt.Fprintf(w, " (%s)", fl.Tuple)
	}
	pulls := 0
	for _, n := range fl.Pulls {
		pulls += n
	}
	fmt.Fprintf(w, ": %d nodes, %d repairs, %d sends, %d pulls, %d events\n",
		fl.Arrivals, fl.Repairs, fl.Sends, pulls, fl.Events)
	var walk func(tn *TreeNode, depth int)
	walk = func(tn *TreeNode, depth int) {
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%s t=%s %s", tn.Node, ftime(tn.T), tn.Kind)
		if tn.Hop > 0 {
			fmt.Fprintf(w, " hop=%d", tn.Hop)
		}
		if parent := fl.byNode[tn.Parent]; parent != nil && tn.T >= parent.T {
			fmt.Fprintf(w, " (+%s)", ftime(tn.T-parent.T))
		}
		io.WriteString(w, "\n")
		for _, c := range tn.Children {
			walk(c, depth+1)
		}
	}
	if fl.Root != nil {
		walk(fl.Root, 1)
	} else {
		io.WriteString(w, "  (no injection event in the ingested streams)\n")
	}
	for _, o := range fl.Orphans {
		fmt.Fprintf(w, "  orphan %s t=%s %s (parent %q not in streams)\n",
			o.Node, ftime(o.T), o.Kind, o.Parent)
	}
}

// WriteCriticalPath renders the limiting propagation branch with the
// per-hop latency breakdown.
func (fl *Flow) WriteCriticalPath(w io.Writer) {
	path := fl.CriticalPath()
	if len(path) == 0 {
		fmt.Fprintf(w, "trace %s id %s: no root\n", fl.Trace, fl.ID)
		return
	}
	total := path[len(path)-1].T - path[0].T
	fmt.Fprintf(w, "trace %s id %s: critical path %d hops, latency %s\n",
		fl.Trace, fl.ID, len(path)-1, ftime(total))
	for i, tn := range path {
		delta := ""
		if i > 0 {
			delta = " +" + ftime(tn.T-path[i-1].T)
		}
		fmt.Fprintf(w, "  %-12s t=%-8s %s%s\n", tn.Node, ftime(tn.T), tn.Kind, delta)
	}
}

// WriteDOT renders the flow as a Graphviz digraph: tree edges labeled
// with the per-hop latency, orphans dashed, pull-heavy links in red.
func (fl *Flow) WriteDOT(w io.Writer) {
	fmt.Fprintf(w, "digraph \"trace_%s\" {\n", fl.Trace)
	fmt.Fprintf(w, "  label=%q;\n", fl.ID)
	fmt.Fprintln(w, "  node [shape=box];")
	var walk func(tn *TreeNode)
	walk = func(tn *TreeNode) {
		for _, c := range tn.Children {
			fmt.Fprintf(w, "  %q -> %q [label=\"+%s\"];\n", tn.Node, c.Node, ftime(c.T-tn.T))
			walk(c)
		}
	}
	if fl.Root != nil {
		fmt.Fprintf(w, "  %q [style=bold];\n", fl.Root.Node)
		walk(fl.Root)
	}
	for _, o := range fl.Orphans {
		fmt.Fprintf(w, "  %q [style=dashed];\n", o.Node)
	}
	// Pull edges expose where anti-entropy worked: sustained pulls mark
	// lossy links.
	links := make([]LinkCount, 0, len(fl.Pulls))
	for l, n := range fl.Pulls {
		links = append(links, LinkCount{Link: l, Count: n})
	}
	sortLinks(links)
	for _, lc := range links {
		fmt.Fprintf(w, "  %q -> %q [color=red, style=dotted, label=\"%d pulls\"];\n",
			lc.Link.From, lc.Link.To, lc.Count)
	}
	fmt.Fprintln(w, "}")
}

func sortLinks(links []LinkCount) {
	// Same ordering contract as Analysis.LossyLinks.
	for i := 1; i < len(links); i++ {
		for j := i; j > 0; j-- {
			a, b := &links[j-1], &links[j]
			if a.Count > b.Count ||
				(a.Count == b.Count && (a.Link.From < b.Link.From ||
					(a.Link.From == b.Link.From && a.Link.To <= b.Link.To))) {
				break
			}
			*a, *b = *b, *a
		}
	}
}

// WriteLossyLinks renders the aggregate pull ranking.
func (a *Analysis) WriteLossyLinks(w io.Writer) {
	links := a.LossyLinks()
	if len(links) == 0 {
		fmt.Fprintln(w, "no pulls recorded (no loss detected by anti-entropy)")
		return
	}
	for _, lc := range links {
		fmt.Fprintf(w, "%-24s %d pulls\n", lc.Link.String(), lc.Count)
	}
}
