package traceanalyze

import (
	"strings"
	"testing"

	"tota/internal/obs"
)

// rec builds a trace record tersely for hand-written causal graphs.
func rec(t float64, kind, node, id, trace, span, pspan string) obs.TraceRecord {
	return obs.TraceRecord{T: t, Kind: kind, Node: node, ID: id, Trace: trace, Span: span, PSpan: pspan}
}

// handChain is a 4-node line a→b→c→d plus noise: an untraced event, a
// repair re-store at c, pulls on b→c, and an orphan e whose parent span
// never appears.
func handChain() []obs.TraceRecord {
	return []obs.TraceRecord{
		rec(0, "inject", "a", "a#1", "t1", "sa", ""),
		rec(1, "store", "b", "a#1", "t1", "sb", "sa"),
		rec(2, "store", "c", "a#1", "t1", "sc", "sb"),
		rec(4, "store", "d", "a#1", "t1", "sd", "sc"),
		rec(5, "store", "c", "a#1", "t1", "sc2", "sb"), // repair churn
		rec(3, "send", "b", "a#1", "t1", "sb", ""),
		rec(6, "pull", "c", "a#1", "t1", "sc", ""),
		rec(7, "pull", "c", "a#1", "t1", "sc", ""),
		rec(9, "store", "e", "a#1", "t1", "se", "zz"), // parent span unseen, no From
		{T: 2, Kind: "store", Node: "x", ID: "q#1"},   // untraced
	}
}

func pullFrom(recs []obs.TraceRecord, from string) []obs.TraceRecord {
	out := make([]obs.TraceRecord, len(recs))
	copy(out, recs)
	for i := range out {
		if out[i].Kind == "pull" {
			out[i].From = from
		}
	}
	return out
}

func TestAnalyzeChain(t *testing.T) {
	a := Analyze(pullFrom(handChain(), "b"))
	if a.Untraced != 1 {
		t.Errorf("untraced = %d, want 1", a.Untraced)
	}
	if len(a.Flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(a.Flows))
	}
	fl := a.Flows[0]
	if fl.Trace != "t1" || fl.ID != "a#1" {
		t.Errorf("flow identity = %s/%s", fl.Trace, fl.ID)
	}
	if fl.Arrivals != 5 || fl.Repairs != 1 || fl.Sends != 1 {
		t.Errorf("arrivals/repairs/sends = %d/%d/%d, want 5/1/1", fl.Arrivals, fl.Repairs, fl.Sends)
	}
	if fl.Root == nil || fl.Root.Node != "a" {
		t.Fatalf("root = %+v, want a", fl.Root)
	}
	// a → b → c → d resolves through span ownership.
	if len(fl.Root.Children) != 1 || fl.Root.Children[0].Node != "b" {
		t.Fatalf("a's children = %+v", fl.Root.Children)
	}
	b := fl.Root.Children[0]
	if len(b.Children) != 1 || b.Children[0].Node != "c" {
		t.Fatalf("b's children = %+v", b.Children)
	}
	if len(fl.Orphans) != 1 || fl.Orphans[0].Node != "e" {
		t.Errorf("orphans = %+v, want [e]", fl.Orphans)
	}
	if n := fl.Pulls[Link{From: "b", To: "c"}]; n != 2 {
		t.Errorf("pulls b->c = %d, want 2", n)
	}

	path := fl.CriticalPath()
	want := []string{"a", "b", "c", "d"}
	if len(path) != len(want) {
		t.Fatalf("critical path length = %d, want %d", len(path), len(want))
	}
	for i, n := range want {
		if path[i].Node != n {
			t.Errorf("path[%d] = %s, want %s", i, path[i].Node, n)
		}
	}

	lossy := a.LossyLinks()
	if len(lossy) != 1 || lossy[0].Link != (Link{From: "b", To: "c"}) || lossy[0].Count != 2 {
		t.Errorf("lossy = %+v", lossy)
	}
}

// TestAnalyzeOrderIndependent: analysis is a function of the record
// set, not the stream merge order (flight dumps arrive per node).
func TestAnalyzeOrderIndependent(t *testing.T) {
	recs := pullFrom(handChain(), "b")
	rev := make([]obs.TraceRecord, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	var fwd, bwd strings.Builder
	for _, fl := range Analyze(recs).Flows {
		fl.WriteTree(&fwd)
	}
	for _, fl := range Analyze(rev).Flows {
		fl.WriteTree(&bwd)
	}
	if fwd.String() != bwd.String() {
		t.Errorf("order-dependent analysis:\nfwd:\n%s\nbwd:\n%s", fwd.String(), bwd.String())
	}
}

// TestAnalyzeFromFallback: when the parent span was never exported
// (partial dump), the wire-level From field still places the node.
func TestAnalyzeFromFallback(t *testing.T) {
	recs := []obs.TraceRecord{
		rec(0, "inject", "a", "a#1", "t1", "sa", ""),
		{T: 1, Kind: "store", Node: "b", ID: "a#1", Trace: "t1", Span: "sb", PSpan: "gone", From: "a"},
	}
	fl := Analyze(recs).Flows[0]
	if len(fl.Root.Children) != 1 || fl.Root.Children[0].Node != "b" {
		t.Errorf("From fallback failed: children = %+v, orphans = %+v", fl.Root.Children, fl.Orphans)
	}
}

// TestAnalyzeNoRoot: a flow whose injection never reached the streams
// degrades to orphans instead of inventing a root.
func TestAnalyzeNoRoot(t *testing.T) {
	recs := []obs.TraceRecord{
		rec(1, "store", "b", "a#1", "t1", "sb", "sa"),
	}
	fl := Analyze(recs).Flows[0]
	if fl.Root != nil {
		t.Errorf("root = %+v, want nil", fl.Root)
	}
	if len(fl.Orphans) != 1 {
		t.Errorf("orphans = %+v", fl.Orphans)
	}
	if fl.CriticalPath() != nil {
		t.Error("critical path without root")
	}
	var b strings.Builder
	fl.WriteCriticalPath(&b)
	if !strings.Contains(b.String(), "no root") {
		t.Errorf("crit output = %q", b.String())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"t\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse error", err)
	}
	recs, err := ReadJSONL(strings.NewReader("\n{\"t\":1,\"kind\":\"store\",\"node\":\"a\",\"id\":\"a#1\"}\n\n"))
	if err != nil || len(recs) != 1 {
		t.Errorf("recs = %v, err = %v", recs, err)
	}
}
