package traceanalyze

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tota/internal/core"
	"tota/internal/emulator"
	"tota/internal/fault"
	"tota/internal/obs"
	"tota/internal/pattern"
	"tota/internal/topology"
)

var update = flag.Bool("update", false, "regenerate testdata fixtures and goldens")

// generateE2JSONL runs the committed fixture scenario: an E2-style
// lossless propagation of one gradient over a 3×3 grid, serial radio,
// full trace sampling, sink clock = radio rounds. Everything is
// seeded and wall-clock-free, so the stream is bit-stable.
func generateE2JSONL() string {
	var out strings.Builder
	var w *emulator.World
	sink := obs.NewJSONLSink(&out, nil, func() float64 { return float64(w.Sim().Rounds()) }, 1<<16)
	w = emulator.New(emulator.Config{
		Graph:        topology.Grid(3, 3, 1),
		RefreshEvery: 0,
		Seed:         42,
		Workers:      1,
		NodeOptions: []core.Option{
			core.WithTracer(sink.Tracer()),
			core.WithTraceSampling(1),
		},
	})
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewGradient("e2")); err != nil {
		panic(err)
	}
	w.Settle(10000)
	if err := sink.Close(); err != nil {
		panic(err)
	}
	return out.String()
}

func readOrUpdate(t *testing.T, path, generated string) string {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(generated), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	return string(b)
}

// TestGoldenE2PropagationTree pins the whole pipeline end to end: the
// seeded run's JSONL stream, and the tree / critical-path / DOT
// renderings the analyzer derives from it. Run with -update after an
// intentional schema or engine change.
func TestGoldenE2PropagationTree(t *testing.T) {
	jsonl := generateE2JSONL()
	fixture := readOrUpdate(t, "testdata/e2.jsonl", jsonl)
	if jsonl != fixture {
		t.Errorf("live run diverged from committed fixture testdata/e2.jsonl (schema or engine change? re-run with -update)")
	}

	recs, err := ReadJSONL(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(recs)
	if len(a.Flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(a.Flows))
	}
	fl := a.Flows[0]
	if fl.Arrivals != 9 {
		t.Errorf("arrivals = %d, want all 9 grid nodes", fl.Arrivals)
	}
	if len(fl.Orphans) != 0 {
		t.Errorf("lossless run produced orphans: %+v", fl.Orphans)
	}

	var tree, crit, dot strings.Builder
	fl.WriteTree(&tree)
	fl.WriteCriticalPath(&crit)
	fl.WriteDOT(&dot)
	for _, tc := range []struct{ name, got string }{
		{"testdata/e2_tree.golden", tree.String()},
		{"testdata/e2_crit.golden", crit.String()},
		{"testdata/e2_dot.golden", dot.String()},
	} {
		if want := readOrUpdate(t, tc.name, tc.got); tc.got != want {
			t.Errorf("%s mismatch:\n--- want ---\n%s--- got ---\n%s", tc.name, want, tc.got)
		}
	}
}

// TestLossyLinkLocalization is the fault-plan acceptance check: under a
// seeded E13-style plan with one asymmetric lossy link, the analyzer's
// pull ranking must name that exact link first.
//
// The mechanism under test: the victim node keeps receiving the plain
// tuple's digest (occasionally) and never manages to consume the
// neighbor's full announcement across the lossy direction, so its
// anti-entropy pulls concentrate on that one link while healthy links
// go quiet after the initial propagation.
func TestLossyLinkLocalization(t *testing.T) {
	plan, err := fault.ParsePlan("linkloss@1:n0005,n0006,0.95")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	var w *emulator.World
	sink := obs.NewJSONLSink(&out, nil, func() float64 { return float64(w.Sim().Rounds()) }, 1<<18)
	w = emulator.New(emulator.Config{
		Graph:        topology.Grid(4, 4, 1),
		RefreshEvery: 1,
		Seed:         7,
		Workers:      1,
		NodeOptions: []core.Option{
			core.WithTracer(sink.Tracer()),
			core.WithTraceSampling(1),
		},
	})
	fault.New(w, plan)
	if _, err := w.Node(topology.NodeName(0)).Inject(pattern.NewFlood("cargo")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		w.Tick(1)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if d := sink.Dropped(); d != 0 {
		t.Fatalf("sink shed %d events; widen the buffer", d)
	}

	recs, err := ReadJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	lossy := Analyze(recs).LossyLinks()
	if len(lossy) == 0 {
		t.Fatal("no pulls recorded; the fault plan had no observable effect")
	}
	want := Link{From: "n0005", To: "n0006"}
	if lossy[0].Link != want {
		t.Fatalf("top lossy link = %+v, want %s (full ranking: %+v)", lossy[0], want, lossy)
	}
	if lossy[0].Count < 3 {
		t.Errorf("top link pull count = %d, want a sustained signal (>=3)", lossy[0].Count)
	}
	// The signal must be concentrated: the faulted link strictly leads.
	if len(lossy) > 1 && lossy[1].Count >= lossy[0].Count {
		t.Errorf("faulted link does not strictly lead: %+v", lossy[:2])
	}
}
