package descent

import (
	"testing"

	"tota/internal/emulator"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func TestControllerValidation(t *testing.T) {
	g := topology.Grid(3, 3, 1)
	w := emulator.New(emulator.Config{Graph: g})
	if _, err := New(w, []tuple.NodeID{"ghost"}, Config{Speed: 1}); err == nil {
		t.Error("unknown agent accepted")
	}
	g.AddNode("nopos")
	if _, err := New(w, []tuple.NodeID{"nopos"}, Config{Speed: 1}); err == nil {
		t.Error("position-less agent accepted")
	}
}

func TestStepDescendsPotential(t *testing.T) {
	// Agent on a 5-node line; the potential is the x coordinate, so the
	// agent must walk left.
	g := topology.New()
	for i := 0; i < 5; i++ {
		g.SetPosition(topology.NodeName(i), space.Point{X: float64(i)})
	}
	g.SetPosition("agent", space.Point{X: 4, Y: 0.5})
	g.Recompute(1.3)
	w := emulator.New(emulator.Config{Graph: g, RadioRange: 1.3})

	ctl, err := New(w, []tuple.NodeID{"agent"}, Config{
		Speed:  1,
		Bounds: space.Rect{Max: space.Point{X: 4, Y: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pot := func(at, self tuple.NodeID) float64 {
		p, ok := w.Graph().Position(at)
		if !ok {
			return 1e9
		}
		return p.X
	}
	for i := 0; i < 20; i++ {
		ctl.Step(pot, 0.5)
	}
	p, _ := w.Graph().Position("agent")
	if p.X > 0.6 {
		t.Errorf("agent did not descend: x=%v", p.X)
	}
	if got := ctl.Agents(); len(got) != 1 || got[0] != "agent" {
		t.Errorf("Agents = %v", got)
	}
}

func TestStepHoldsAtMinimum(t *testing.T) {
	g := topology.New()
	g.SetPosition("a", space.Point{X: 0})
	g.SetPosition("b", space.Point{X: 1})
	g.Recompute(1.5)
	w := emulator.New(emulator.Config{Graph: g, RadioRange: 1.5})
	ctl, err := New(w, []tuple.NodeID{"a"}, Config{Speed: 1, Bounds: space.Rect{Max: space.Point{X: 2, Y: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	flat := func(at, self tuple.NodeID) float64 { return 1 }
	before, _ := w.Graph().Position("a")
	for i := 0; i < 5; i++ {
		ctl.Step(flat, 1)
	}
	after, _ := w.Graph().Position("a")
	if before != after {
		t.Errorf("agent moved on a flat potential: %v -> %v", before, after)
	}
}
