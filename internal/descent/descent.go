// Package descent is the shared motion-control kernel of the paper's
// field-based coordination applications (flocking §5.3, Co-Fields-style
// meetings): mobile agents repeatedly sense a potential over their
// one-hop neighborhood and move toward its minimum — particles sliding
// down the combined fields, "to some extent [mimicking] the way
// electromagnetic fields propagate in space and influence the movement
// of particles".
package descent

import (
	"fmt"

	"tota/internal/emulator"
	"tota/internal/mobility"
	"tota/internal/space"
	"tota/internal/tuple"
)

// Potential evaluates the field an agent descends, as perceived at a
// node. self identifies the agent so its own contributions can be
// excluded.
type Potential func(at, self tuple.NodeID) float64

// Config tunes a Controller.
type Config struct {
	// Speed is the agents' movement speed in space units per time unit.
	Speed float64
	// Bounds clips agent movement.
	Bounds space.Rect
}

// Controller owns the movers of a set of agents inside an emulator
// world and steps them down a potential.
type Controller struct {
	world  *emulator.World
	agents []tuple.NodeID
	movers map[tuple.NodeID]*mobility.Controlled
}

// New attaches velocity-controlled movers to the given world nodes.
func New(w *emulator.World, agents []tuple.NodeID, cfg Config) (*Controller, error) {
	c := &Controller{
		world:  w,
		agents: append([]tuple.NodeID(nil), agents...),
		movers: make(map[tuple.NodeID]*mobility.Controlled, len(agents)),
	}
	for _, id := range c.agents {
		if w.Node(id) == nil {
			return nil, fmt.Errorf("descent: unknown node %s", id)
		}
		pos, ok := w.Graph().Position(id)
		if !ok {
			return nil, fmt.Errorf("descent: node %s has no position", id)
		}
		mv := mobility.NewControlled(pos, cfg.Bounds, cfg.Speed)
		c.movers[id] = mv
		w.SetMover(id, mv)
	}
	return c, nil
}

// Agents returns the agent ids.
func (c *Controller) Agents() []tuple.NodeID {
	return append([]tuple.NodeID(nil), c.agents...)
}

// Step points every agent toward the neighborhood minimum of pot and
// advances the world by dt.
func (c *Controller) Step(pot Potential, dt float64) {
	for _, id := range c.agents {
		mv := c.movers[id]
		n := c.world.Node(id)
		if n == nil {
			continue
		}
		here := pot(id, id)
		bestPos, bestVal := mv.Pos(), here
		for _, nb := range n.Neighbors() {
			v := pot(nb, id)
			if v < bestVal {
				if p, ok := c.world.Graph().Position(nb); ok {
					bestVal = v
					bestPos = p
				}
			}
		}
		if bestVal < here {
			mv.SetVelocity(bestPos.Sub(mv.Pos()))
		} else {
			mv.SetVelocity(space.Vector{})
		}
	}
	c.world.Tick(dt)
}
