// Package flock implements the paper's §5.3 motion coordination: each
// mobile agent propagates a FLOCK tuple whose perceived value is
// minimal at the target distance X hops from the agent; every agent
// then descends the sum of the other agents' fields, so the group
// settles into a formation with pairwise distance ≈ X — the behavior
// shown in the paper's Fig. 3 emulator snapshot.
package flock

import (
	"fmt"
	"math"

	"tota/internal/descent"
	"tota/internal/emulator"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/tuple"
)

// FieldName is the shared name of every agent's flock tuple; agents
// distinguish their own field by the tuple id's source node.
const FieldName = "flock"

// Config tunes a swarm.
type Config struct {
	// TargetHops is the paper's X: the hop distance agents maintain.
	TargetHops float64
	// Scope bounds each agent's field (0 = 3×TargetHops, a sensible
	// horizon).
	Scope float64
	// Speed is the agents' movement speed in space units per time unit.
	Speed float64
	// Bounds clips agent movement.
	Bounds space.Rect
}

// Swarm coordinates a set of mobile agents inside an emulator world.
type Swarm struct {
	world *emulator.World
	cfg   Config
	ctl   *descent.Controller
}

// NewSwarm turns the given world nodes into flocking agents: each gets
// a velocity-controlled mover and injects its flock field.
func NewSwarm(w *emulator.World, agents []tuple.NodeID, cfg Config) (*Swarm, error) {
	if cfg.TargetHops <= 0 {
		return nil, fmt.Errorf("flock: non-positive target distance %v", cfg.TargetHops)
	}
	if cfg.Scope <= 0 {
		cfg.Scope = 3 * cfg.TargetHops
	}
	ctl, err := descent.New(w, agents, descent.Config{Speed: cfg.Speed, Bounds: cfg.Bounds})
	if err != nil {
		return nil, fmt.Errorf("flock: %w", err)
	}
	s := &Swarm{world: w, cfg: cfg, ctl: ctl}
	for _, id := range ctl.Agents() {
		f := pattern.NewFlock(FieldName, cfg.TargetHops).BoundedAt(cfg.Scope)
		if _, err := w.Node(id).Inject(f); err != nil {
			return nil, fmt.Errorf("flock: inject field at %s: %w", id, err)
		}
	}
	return s, nil
}

// Agents returns the agent ids.
func (s *Swarm) Agents() []tuple.NodeID { return s.ctl.Agents() }

// potentialAt evaluates the combined flock field perceived at a node,
// excluding fields sourced by `self`: the sum of |d − X| over the other
// agents' tuples stored there. Nodes missing some agent's field (out of
// scope) are penalized with the scope value so agents prefer staying in
// contact.
func (s *Swarm) potentialAt(at, self tuple.NodeID) float64 {
	n := s.world.Node(at)
	if n == nil {
		return math.Inf(1)
	}
	agents := s.ctl.Agents()
	byOwner := make(map[tuple.NodeID]float64, len(agents))
	for _, t := range n.Read(pattern.ByName(pattern.KindFlock, FieldName)) {
		f, ok := t.(*pattern.Flock)
		if !ok {
			continue
		}
		owner := f.ID().Node
		if owner == self {
			continue
		}
		v := f.FieldValue()
		if old, seen := byOwner[owner]; !seen || v < old {
			byOwner[owner] = v
		}
	}
	total := 0.0
	for _, other := range agents {
		if other == self {
			continue
		}
		if v, ok := byOwner[other]; ok {
			total += v
		} else {
			total += s.cfg.Scope
		}
	}
	return total
}

// Step runs one coordination round: every agent senses the local field
// at its node and its one-hop neighborhood, sets its velocity toward
// the minimum, and the world advances by dt.
func (s *Swarm) Step(dt float64) {
	s.ctl.Step(s.potentialAt, dt)
}

// Run executes rounds coordination steps, letting the network settle
// between movements, and returns the error series (one sample per
// round) of PairwiseHopError.
func (s *Swarm) Run(rounds int, dt float64, settleRounds int) []float64 {
	errs := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		s.Step(dt)
		s.world.Settle(settleRounds)
		errs = append(errs, s.PairwiseHopError())
	}
	return errs
}

// PairwiseHopError measures formation quality: the mean |hopdist(i,j) −
// X| over all agent pairs, using the topology oracle. 0 means a perfect
// formation at the target distance.
func (s *Swarm) PairwiseHopError() float64 {
	agents := s.ctl.Agents()
	if len(agents) < 2 {
		return 0
	}
	g := s.world.Graph()
	var sum float64
	var count int
	for i, a := range agents {
		dist := g.BFSDistances(a)
		for _, b := range agents[i+1:] {
			d, ok := dist[b]
			if !ok {
				// Disconnected pair: penalize with twice the target.
				sum += 2 * s.cfg.TargetHops
				count++
				continue
			}
			sum += math.Abs(float64(d) - s.cfg.TargetHops)
			count++
		}
	}
	return sum / float64(count)
}
