package flock

import (
	"testing"

	"tota/internal/emulator"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// flockWorld builds a 10×3 relay grid (spacing 1, radio range 1.2) with
// two mobile agents hovering over opposite ends.
func flockWorld(t *testing.T) (*emulator.World, []tuple.NodeID) {
	t.Helper()
	g := topology.Grid(10, 3, 1)
	g.SetPosition("a1", space.Point{X: 0.5, Y: 1.0})
	g.SetPosition("a2", space.Point{X: 8.5, Y: 1.0})
	g.Recompute(1.2)
	w := emulator.New(emulator.Config{Graph: g, RadioRange: 1.2})
	return w, []tuple.NodeID{"a1", "a2"}
}

func TestSwarmConfigValidation(t *testing.T) {
	w, agents := flockWorld(t)
	if _, err := NewSwarm(w, agents, Config{TargetHops: 0}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := NewSwarm(w, []tuple.NodeID{"ghost"}, Config{TargetHops: 2}); err == nil {
		t.Error("unknown agent accepted")
	}
}

func TestTwoAgentsConvergeToTargetDistance(t *testing.T) {
	w, agents := flockWorld(t)
	bounds := space.Rect{Min: space.Point{X: 0, Y: 0}, Max: space.Point{X: 9, Y: 2}}
	s, err := NewSwarm(w, agents, Config{
		TargetHops: 3,
		Scope:      15,
		Speed:      0.5,
		Bounds:     bounds,
	})
	if err != nil {
		t.Fatalf("NewSwarm: %v", err)
	}
	w.Settle(10000) // let the initial fields build

	initial := s.PairwiseHopError()
	if initial <= 0 {
		t.Fatalf("agents already in formation (err %v) — scenario too easy", initial)
	}
	errs := s.Run(120, 1, 10000)
	final := errs[len(errs)-1]
	if final > 1 {
		t.Errorf("final pairwise hop error = %v, want ≤ 1 (initial %v)", final, initial)
	}
	if final >= initial {
		t.Errorf("error did not decrease: initial %v, final %v", initial, final)
	}
}

func TestSingleAgentErrorIsZero(t *testing.T) {
	w, _ := flockWorld(t)
	s, err := NewSwarm(w, []tuple.NodeID{"a1"}, Config{TargetHops: 3, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PairwiseHopError(); got != 0 {
		t.Errorf("single-agent error = %v", got)
	}
	if got := s.Agents(); len(got) != 1 || got[0] != "a1" {
		t.Errorf("Agents = %v", got)
	}
}

func TestDisconnectedPairPenalized(t *testing.T) {
	// Two agents with no relays and out of range: the error must use
	// the disconnection penalty 2×target.
	g := topology.New()
	g.SetPosition("a1", space.Point{X: 0, Y: 0})
	g.SetPosition("a2", space.Point{X: 100, Y: 0})
	g.Recompute(1)
	w := emulator.New(emulator.Config{Graph: g, RadioRange: 1})
	s, err := NewSwarm(w, []tuple.NodeID{"a1", "a2"}, Config{TargetHops: 2, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PairwiseHopError(); got != 4 {
		t.Errorf("disconnected error = %v, want 4", got)
	}
}
