package mobility

import (
	"math"
	"math/rand"
	"testing"

	"tota/internal/space"
)

var testBounds = space.Rect{Min: space.Point{X: 0, Y: 0}, Max: space.Point{X: 100, Y: 100}}

func TestStatic(t *testing.T) {
	m := &Static{P: space.Point{X: 3, Y: 4}}
	for i := 0; i < 5; i++ {
		if got := m.Step(10); got != m.P {
			t.Fatalf("Static moved to %v", got)
		}
	}
	if m.Pos() != (space.Point{X: 3, Y: 4}) {
		t.Error("Pos changed")
	}
}

func TestRandomWaypointStaysInBoundsAndMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewRandomWaypoint(space.Point{X: 50, Y: 50}, testBounds, 1, 5, 0.5, rng)
	prev := m.Pos()
	moved := false
	for i := 0; i < 1000; i++ {
		p := m.Step(0.5)
		if !testBounds.Contains(p) {
			t.Fatalf("left bounds: %v", p)
		}
		if p != prev {
			moved = true
		}
		prev = p
	}
	if !moved {
		t.Error("never moved")
	}
}

func TestRandomWaypointSpeedRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const maxSpeed = 3.0
	m := NewRandomWaypoint(space.Point{X: 10, Y: 10}, testBounds, 1, maxSpeed, 0, rng)
	prev := m.Pos()
	for i := 0; i < 500; i++ {
		p := m.Step(1)
		if d := p.Dist(prev); d > maxSpeed+1e-9 {
			t.Fatalf("step %d moved %v > max speed %v", i, d, maxSpeed)
		}
		prev = p
	}
}

func TestRandomWalkBounces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewRandomWalk(space.Point{X: 1, Y: 1}, testBounds, 10, 0.3, rng)
	for i := 0; i < 2000; i++ {
		p := m.Step(1)
		if !testBounds.Contains(p) {
			t.Fatalf("left bounds: %v", p)
		}
	}
}

func TestWaypointsReachesAllInOrder(t *testing.T) {
	m := NewWaypoints(space.Point{}, 2,
		space.Point{X: 4, Y: 0},
		space.Point{X: 4, Y: 4},
	)
	if m.Done() {
		t.Fatal("Done before start")
	}
	p := m.Step(1) // travels 2 units
	if p != (space.Point{X: 2, Y: 0}) {
		t.Errorf("after 1s: %v", p)
	}
	p = m.Step(1) // reaches first waypoint exactly
	if p != (space.Point{X: 4, Y: 0}) {
		t.Errorf("after 2s: %v", p)
	}
	p = m.Step(3) // 6 units: 4 to second waypoint, then stop
	if p != (space.Point{X: 4, Y: 4}) || !m.Done() {
		t.Errorf("after 5s: %v done=%v", p, m.Done())
	}
	if q := m.Step(10); q != p {
		t.Errorf("moved after Done: %v", q)
	}
}

func TestWaypointsCarryOverWithinStep(t *testing.T) {
	// A single large step must traverse multiple waypoints.
	m := NewWaypoints(space.Point{}, 1,
		space.Point{X: 1, Y: 0},
		space.Point{X: 1, Y: 1},
		space.Point{X: 0, Y: 1},
	)
	p := m.Step(2.5)
	want := space.Point{X: 0.5, Y: 1}
	if p.Dist(want) > 1e-9 {
		t.Errorf("after 2.5s: %v, want %v", p, want)
	}
}

func TestControlled(t *testing.T) {
	m := NewControlled(space.Point{X: 50, Y: 50}, testBounds, 2)
	m.SetVelocity(space.Vector{DX: 10, DY: 0}) // clipped to 2
	if v := m.Velocity(); math.Abs(v.Len()-2) > 1e-9 {
		t.Errorf("velocity not clipped: %v", v)
	}
	p := m.Step(1)
	if p.Dist(space.Point{X: 52, Y: 50}) > 1e-9 {
		t.Errorf("Step = %v", p)
	}
	// Runs into the wall and clamps.
	m.SetVelocity(space.Vector{DX: 2, DY: 0})
	for i := 0; i < 100; i++ {
		m.Step(1)
	}
	if m.Pos().X != testBounds.Max.X {
		t.Errorf("did not clamp at wall: %v", m.Pos())
	}
}

func TestControlledZeroMaxSpeedMeansUnlimited(t *testing.T) {
	m := NewControlled(space.Point{X: 0, Y: 0}, testBounds, 0)
	m.SetVelocity(space.Vector{DX: 30, DY: 0})
	p := m.Step(1)
	if p.X != 30 {
		t.Errorf("Step = %v, want x=30", p)
	}
}
