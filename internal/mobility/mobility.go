// Package mobility provides the node movement models used by the
// emulator to reproduce the paper's dynamic-network scenarios: static
// layouts, the random-waypoint and random-walk MANET standards, scripted
// waypoint traces (the drag-and-drop rearrangements of the paper's GUI
// emulator) and externally-controlled movers for application-driven
// motion such as flocking.
package mobility

import (
	"math"
	"math/rand"

	"tota/internal/space"
)

// Mover advances one node's position through time. Step moves the node
// by dt time units and returns the new position; Pos returns the current
// position without moving.
type Mover interface {
	Step(dt float64) space.Point
	Pos() space.Point
}

// Static never moves.
type Static struct {
	P space.Point
}

var _ Mover = (*Static)(nil)

// Step implements Mover.
func (s *Static) Step(float64) space.Point { return s.P }

// Pos implements Mover.
func (s *Static) Pos() space.Point { return s.P }

// RandomWaypoint implements the classic random-waypoint model: pick a
// uniform destination in Bounds, travel toward it at a uniform speed in
// [SpeedMin, SpeedMax], pause for Pause time units, repeat.
type RandomWaypoint struct {
	Bounds   space.Rect
	SpeedMin float64
	SpeedMax float64
	Pause    float64

	rng     *rand.Rand
	pos     space.Point
	dest    space.Point
	speed   float64
	pausing float64
	started bool
}

var _ Mover = (*RandomWaypoint)(nil)

// NewRandomWaypoint creates a random-waypoint mover starting at start.
func NewRandomWaypoint(start space.Point, bounds space.Rect, speedMin, speedMax, pause float64, rng *rand.Rand) *RandomWaypoint {
	return &RandomWaypoint{
		Bounds:   bounds,
		SpeedMin: speedMin,
		SpeedMax: speedMax,
		Pause:    pause,
		rng:      rng,
		pos:      start,
	}
}

// Pos implements Mover.
func (m *RandomWaypoint) Pos() space.Point { return m.pos }

// Step implements Mover.
func (m *RandomWaypoint) Step(dt float64) space.Point {
	for dt > 0 {
		if m.pausing > 0 {
			used := math.Min(dt, m.pausing)
			m.pausing -= used
			dt -= used
			continue
		}
		if !m.started || m.pos == m.dest {
			m.pickDest()
		}
		v := m.dest.Sub(m.pos)
		remaining := v.Len()
		if remaining == 0 {
			m.pausing = m.Pause
			continue
		}
		travel := m.speed * dt
		if travel >= remaining {
			m.pos = m.dest
			dt -= remaining / m.speed
			m.pausing = m.Pause
			continue
		}
		m.pos = m.pos.Add(v.Unit().Scale(travel))
		dt = 0
	}
	return m.pos
}

func (m *RandomWaypoint) pickDest() {
	m.started = true
	m.dest = space.Point{
		X: m.Bounds.Min.X + m.rng.Float64()*(m.Bounds.Max.X-m.Bounds.Min.X),
		Y: m.Bounds.Min.Y + m.rng.Float64()*(m.Bounds.Max.Y-m.Bounds.Min.Y),
	}
	m.speed = m.SpeedMin + m.rng.Float64()*(m.SpeedMax-m.SpeedMin)
	if m.speed <= 0 {
		m.speed = math.SmallestNonzeroFloat64
	}
}

// RandomWalk moves at constant Speed with a heading that drifts by a
// uniform angle in [-Turn, Turn] each step, bouncing off Bounds.
type RandomWalk struct {
	Bounds space.Rect
	Speed  float64
	Turn   float64 // max heading change per step, radians

	rng     *rand.Rand
	pos     space.Point
	heading float64
}

var _ Mover = (*RandomWalk)(nil)

// NewRandomWalk creates a random-walk mover starting at start with a
// random initial heading.
func NewRandomWalk(start space.Point, bounds space.Rect, speed, turn float64, rng *rand.Rand) *RandomWalk {
	return &RandomWalk{
		Bounds:  bounds,
		Speed:   speed,
		Turn:    turn,
		rng:     rng,
		pos:     start,
		heading: rng.Float64() * 2 * math.Pi,
	}
}

// Pos implements Mover.
func (m *RandomWalk) Pos() space.Point { return m.pos }

// Step implements Mover.
func (m *RandomWalk) Step(dt float64) space.Point {
	m.heading += (m.rng.Float64()*2 - 1) * m.Turn
	next := m.pos.Add(space.Vector{
		DX: math.Cos(m.heading) * m.Speed * dt,
		DY: math.Sin(m.heading) * m.Speed * dt,
	})
	// Bounce off the walls by reflecting the offending coordinate.
	if next.X < m.Bounds.Min.X || next.X > m.Bounds.Max.X {
		m.heading = math.Pi - m.heading
		next.X = clamp(next.X, m.Bounds.Min.X, m.Bounds.Max.X)
	}
	if next.Y < m.Bounds.Min.Y || next.Y > m.Bounds.Max.Y {
		m.heading = -m.heading
		next.Y = clamp(next.Y, m.Bounds.Min.Y, m.Bounds.Max.Y)
	}
	m.pos = next
	return m.pos
}

// Waypoints replays a scripted sequence of positions, moving toward
// each in turn at Speed; it models trace playback and scripted topology
// rearrangements. After the last waypoint the mover stays put.
type Waypoints struct {
	Speed float64

	pos  space.Point
	path []space.Point
}

var _ Mover = (*Waypoints)(nil)

// NewWaypoints creates a trace-playback mover starting at start.
func NewWaypoints(start space.Point, speed float64, path ...space.Point) *Waypoints {
	return &Waypoints{Speed: speed, pos: start, path: path}
}

// Pos implements Mover.
func (m *Waypoints) Pos() space.Point { return m.pos }

// Done reports whether all waypoints have been reached.
func (m *Waypoints) Done() bool { return len(m.path) == 0 }

// Step implements Mover.
func (m *Waypoints) Step(dt float64) space.Point {
	for dt > 0 && len(m.path) > 0 {
		v := m.path[0].Sub(m.pos)
		remaining := v.Len()
		travel := m.Speed * dt
		if travel >= remaining {
			m.pos = m.path[0]
			m.path = m.path[1:]
			if m.Speed > 0 {
				dt -= remaining / m.Speed
			} else {
				dt = 0
			}
			continue
		}
		m.pos = m.pos.Add(v.Unit().Scale(travel))
		dt = 0
	}
	return m.pos
}

// Controlled moves with an externally-set velocity; application-level
// motion coordination (flocking agents descending a field) drives it.
type Controlled struct {
	Bounds   space.Rect
	MaxSpeed float64

	pos space.Point
	vel space.Vector
}

var _ Mover = (*Controlled)(nil)

// NewControlled creates a velocity-driven mover starting at start.
func NewControlled(start space.Point, bounds space.Rect, maxSpeed float64) *Controlled {
	return &Controlled{Bounds: bounds, MaxSpeed: maxSpeed, pos: start}
}

// SetVelocity sets the current velocity, clipped to MaxSpeed.
func (m *Controlled) SetVelocity(v space.Vector) {
	if m.MaxSpeed > 0 && v.Len() > m.MaxSpeed {
		v = v.Unit().Scale(m.MaxSpeed)
	}
	m.vel = v
}

// Velocity returns the current velocity.
func (m *Controlled) Velocity() space.Vector { return m.vel }

// Pos implements Mover.
func (m *Controlled) Pos() space.Point { return m.pos }

// Step implements Mover.
func (m *Controlled) Step(dt float64) space.Point {
	next := m.pos.Add(m.vel.Scale(dt))
	next.X = clamp(next.X, m.Bounds.Min.X, m.Bounds.Max.X)
	next.Y = clamp(next.Y, m.Bounds.Min.Y, m.Bounds.Max.Y)
	m.pos = next
	return m.pos
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}
