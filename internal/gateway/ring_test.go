package gateway

import "testing"

func ringOf(size int, seqs ...uint64) *eventRing {
	r := newEventRing(size)
	for _, s := range seqs {
		r.append(ringEntry{seq: s})
	}
	return r
}

func seqsOf(entries []ringEntry) []uint64 {
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.seq
	}
	return out
}

func TestGatewayRingSince(t *testing.T) {
	cases := []struct {
		name     string
		ring     *eventRing
		from     uint64
		want     []uint64
		complete bool
	}{
		{"empty-from-zero", ringOf(4), 0, nil, true},
		{"not-full-complete", ringOf(4, 1, 2, 3), 1, []uint64{2, 3}, true},
		{"not-full-from-zero", ringOf(4, 1, 2, 3), 0, []uint64{1, 2, 3}, true},
		{"full-exact-boundary", ringOf(4, 1, 2, 3, 4, 5), 1, []uint64{2, 3, 4, 5}, true},
		{"full-evicted", ringOf(4, 1, 2, 3, 4, 5, 6), 1, []uint64{3, 4, 5, 6}, false},
		{"full-caught-up", ringOf(4, 1, 2, 3, 4, 5, 6), 6, nil, true},
		{"full-future", ringOf(4, 1, 2, 3, 4, 5, 6), 9, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, complete := tc.ring.since(tc.from)
			if complete != tc.complete {
				t.Fatalf("since(%d) complete = %v, want %v", tc.from, complete, tc.complete)
			}
			gotSeqs := seqsOf(got)
			if len(gotSeqs) != len(tc.want) {
				t.Fatalf("since(%d) = %v, want %v", tc.from, gotSeqs, tc.want)
			}
			for i := range gotSeqs {
				if gotSeqs[i] != tc.want[i] {
					t.Fatalf("since(%d) = %v, want %v", tc.from, gotSeqs, tc.want)
				}
			}
		})
	}
}

func TestGatewayRingEvictionKeepsNewest(t *testing.T) {
	r := ringOf(3)
	for s := uint64(1); s <= 10; s++ {
		r.append(ringEntry{seq: s})
	}
	got, complete := r.since(0)
	if complete {
		t.Fatal("since(0) on an over-full ring claimed completeness")
	}
	want := []uint64{8, 9, 10}
	gs := seqsOf(got)
	if len(gs) != 3 || gs[0] != want[0] || gs[2] != want[2] {
		t.Fatalf("retained %v, want %v", gs, want)
	}
}
