package gateway

import (
	"bytes"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/retry"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// newTestNode builds a standalone single-node middleware instance; the
// gateway surface is purely local, so no peers are needed.
func newTestNode(t *testing.T) *core.Node {
	t.Helper()
	g := topology.New()
	g.AddNode("gw")
	sim := transport.NewSim(g, transport.SimConfig{})
	ep := sim.Attach("gw", nil)
	n := core.New(ep)
	sim.Bind("gw", n)
	return n
}

func newTestGateway(t *testing.T, cfg Config) (*core.Node, *Gateway) {
	t.Helper()
	n := newTestNode(t)
	gw, err := Serve(n, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	return n, gw
}

func testClient(t *testing.T, addr string) *Client {
	t.Helper()
	c := Dial(addr, ClientConfig{
		Policy:         retry.New(42),
		RequestTimeout: 3 * time.Second,
	})
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func waitEvent(t *testing.T, s *Subscription, what string) SubEvent {
	t.Helper()
	select {
	case ev, ok := <-s.Events:
		if !ok {
			t.Fatalf("waiting for %s: subscription channel closed", what)
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	panic("unreachable")
}

// waitTupleEvent skips non-tuple deliveries (neighbor noise) until a
// tuple event of the wanted type arrives.
func waitTupleEvent(t *testing.T, s *Subscription, typ string) SubEvent {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-s.Events:
			if !ok {
				t.Fatalf("waiting for %s: subscription channel closed", typ)
			}
			if ev.Type == typ && ev.Tuple != nil {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for a %s tuple event", typ)
		}
	}
}

func TestGatewayInjectReadRoundTrip(t *testing.T) {
	_, gw := newTestGateway(t, Config{})
	c := testClient(t, gw.Addr())

	id, err := c.Inject(pattern.NewFlood("notice", tuple.S("payload", "gateway-payload")))
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	if id.IsZero() {
		t.Fatal("inject returned a zero id")
	}
	got, err := c.Read(pattern.ByName(pattern.KindFlood, "notice"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("read returned %d tuples, want 1", len(got))
	}
	if got[0].Content().GetString("payload") != "gateway-payload" {
		t.Fatalf("read tuple lost its payload: %v", got[0].Content())
	}
	st := gw.Stats()
	if st.Injects != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v, want 1 inject / 1 read", st)
	}
}

func TestGatewaySubscribeLiveAndUnsubscribe(t *testing.T) {
	n, gw := newTestGateway(t, Config{})
	c := testClient(t, gw.Addr())

	sub, err := c.Subscribe(pattern.ByName(pattern.KindFlood, "live"))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := n.Inject(pattern.NewFlood("live")); err != nil {
		t.Fatalf("node inject: %v", err)
	}
	ev := waitTupleEvent(t, sub, core.TupleArrived.String())
	if ev.Tuple.Content().GetString("name") != "live" {
		t.Fatalf("event carried the wrong tuple: %v", ev.Tuple)
	}
	if ev.GSeq == 0 {
		t.Fatal("event missing its gateway sequence")
	}

	if err := c.Unsubscribe(sub); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	if _, err := n.Inject(pattern.NewFlood("live")); err != nil {
		t.Fatal(err)
	}
	// The channel is closed; any buffered events drain, then ok=false.
	deadline := time.After(3 * time.Second)
	for {
		select {
		case _, ok := <-sub.Events:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscription channel never closed after Unsubscribe")
		}
	}
}

// rawConn speaks the wire protocol directly, for tests that need exact
// control over sequences and connection lifecycle.
type rawConn struct {
	t  *testing.T
	nc net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (r *rawConn) send(req Request) {
	r.t.Helper()
	if err := WriteFrame(r.nc, req); err != nil {
		r.t.Fatalf("write frame: %v", err)
	}
}

func (r *rawConn) recv() Frame {
	r.t.Helper()
	_ = r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var fr Frame
	if err := ReadFrame(r.nc, &fr); err != nil {
		r.t.Fatalf("read frame: %v", err)
	}
	return fr
}

func (r *rawConn) recvResp() Response {
	r.t.Helper()
	fr := r.recv()
	if fr.Resp == nil {
		r.t.Fatalf("expected a response frame, got %+v", fr)
	}
	return *fr.Resp
}

func injectN(t *testing.T, n *core.Node, name string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		if _, err := n.Inject(pattern.NewFlood(name)); err != nil {
			t.Fatalf("inject %d: %v", i, err)
		}
	}
}

func TestGatewayReplayFromSeqHit(t *testing.T) {
	n, gw := newTestGateway(t, Config{})

	// First connection observes the prefix, then disconnects.
	c1 := dialRaw(t, gw.Addr())
	c1.send(Request{Op: OpSubscribe, Seq: 1})
	ack := c1.recvResp()
	if !ack.OK || ack.Sub == 0 {
		t.Fatalf("subscribe ack = %+v", ack)
	}
	epoch := ack.Epoch
	injectN(t, n, "replay", 3)
	var last uint64
	for i := 0; i < 3; i++ {
		fr := c1.recv()
		if fr.Event == nil {
			t.Fatalf("expected event, got %+v", fr)
		}
		last = fr.Event.GSeq
	}
	_ = c1.nc.Close()

	// Events continue while the client is away.
	injectN(t, n, "replay", 2)

	// Reconnect with replay-from-seq: the ack reports a hit and the two
	// missed events arrive before anything newer.
	c2 := dialRaw(t, gw.Addr())
	c2.send(Request{Op: OpSubscribe, Seq: 1, FromSeq: last, Epoch: epoch})
	ack2 := c2.recvResp()
	if ack2.Replay != ReplayHit {
		t.Fatalf("replay = %q, want %q (ack %+v)", ack2.Replay, ReplayHit, ack2)
	}
	for want := last + 1; want <= last+2; want++ {
		fr := c2.recv()
		if fr.Event == nil {
			t.Fatalf("expected replayed event, got %+v", fr)
		}
		if fr.Event.GSeq != want {
			t.Fatalf("replayed gseq = %d, want %d", fr.Event.GSeq, want)
		}
		if !fr.Event.Replay {
			t.Fatalf("replayed event %d not marked as replay", fr.Event.GSeq)
		}
	}
	if gw.Stats().ReplayHits != 1 || gw.Stats().ReplayEvents != 2 {
		t.Fatalf("replay stats = %+v", gw.Stats())
	}
}

func TestGatewayReplayMissOnRingEviction(t *testing.T) {
	n, gw := newTestGateway(t, Config{RingSize: 4})
	injectN(t, n, "evict", 8)

	c := dialRaw(t, gw.Addr())
	c.send(Request{Op: OpSubscribe, Seq: 1, FromSeq: 1, Epoch: gw.Epoch()})
	ack := c.recvResp()
	if ack.Replay != ReplayMiss {
		t.Fatalf("replay = %q, want %q", ack.Replay, ReplayMiss)
	}
	// Whatever the ring still holds is replayed anyway (newest 4).
	fr := c.recv()
	if fr.Event == nil || fr.Event.GSeq != 5 {
		t.Fatalf("first retained event = %+v, want gseq 5", fr)
	}
	if gw.Stats().ReplayMisses != 1 {
		t.Fatalf("stats = %+v, want 1 replay miss", gw.Stats())
	}
}

func TestGatewayEpochMismatchIsMiss(t *testing.T) {
	n, gw := newTestGateway(t, Config{})
	injectN(t, n, "epoch", 2)

	c := dialRaw(t, gw.Addr())
	// A continuation from some other gateway instance: sequence numbers
	// are meaningless, so the server resets to 0 and reports a miss.
	c.send(Request{Op: OpSubscribe, Seq: 1, FromSeq: 99, Epoch: "deadbeef00000000"})
	ack := c.recvResp()
	if ack.Replay != ReplayMiss {
		t.Fatalf("replay = %q, want %q", ack.Replay, ReplayMiss)
	}
	if ack.Epoch == "deadbeef00000000" || ack.Epoch == "" {
		t.Fatalf("ack epoch = %q, want the server's own", ack.Epoch)
	}
	// The new instance's full retained history is replayed from 0.
	fr := c.recv()
	if fr.Event == nil || fr.Event.GSeq != 1 {
		t.Fatalf("first replayed event = %+v, want gseq 1", fr)
	}
}

func TestGatewayMaxClientsRejected(t *testing.T) {
	_, gw := newTestGateway(t, Config{MaxClients: 1})
	c1 := dialRaw(t, gw.Addr())
	c1.send(Request{Op: OpPing, Seq: 1})
	if resp := c1.recvResp(); !resp.OK {
		t.Fatalf("first client rejected: %+v", resp)
	}
	c2 := dialRaw(t, gw.Addr())
	resp := c2.recvResp()
	if resp.Err == "" {
		t.Fatalf("second client admitted past the cap: %+v", resp)
	}
	if gw.Stats().Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejection", gw.Stats())
	}
}

func TestGatewaySlowConsumerDropAccounting(t *testing.T) {
	// White-box: a connection whose outbound queue holds one frame.
	// Drops must be counted per subscription and surfaced cumulatively
	// on later event frames — accounted, never silent.
	gw := &Gateway{cfg: Config{QueueSize: 1}}
	c := &conn{
		gw:     gw,
		out:    make(chan []byte, 1),
		subs:   make(map[uint64]*serverSub),
		closec: make(chan struct{}),
	}
	sub := &serverSub{id: 1, tpl: tuple.MatchAll()}
	entry := func(seq uint64) ringEntry {
		tup := pattern.NewFlood("drops")
		data, err := tuple.MarshalTupleJSON(tup)
		if err != nil {
			t.Fatal(err)
		}
		return ringEntry{seq: seq, typ: core.TupleArrived.String(), tup: tup, tJSON: data}
	}
	decode := func(buf []byte) Event {
		var fr Frame
		if err := ReadFrame(bytes.NewReader(buf), &fr); err != nil {
			t.Fatalf("decode queued frame: %v", err)
		}
		if fr.Event == nil {
			t.Fatalf("queued frame is not an event")
		}
		return *fr.Event
	}

	c.mu.Lock()
	if !c.enqueueLocked(sub, entry(1), false) {
		t.Fatal("first event should fit")
	}
	if c.enqueueLocked(sub, entry(2), false) || c.enqueueLocked(sub, entry(3), false) {
		t.Fatal("queue-full events should drop")
	}
	c.mu.Unlock()
	if got := sub.drops.Load(); got != 2 {
		t.Fatalf("sub drops = %d, want 2", got)
	}
	if gw.stats.dropped.Load() != 2 || gw.stats.delivered.Load() != 1 {
		t.Fatalf("gateway stats = %+v", gw.Stats())
	}
	first := decode(<-c.out)
	if first.GSeq != 1 || first.DSeq != 1 || first.Drops != 0 {
		t.Fatalf("first event = %+v, want gseq 1 dseq 1 drops 0", first)
	}
	// With the queue drained, the next event carries the cumulative
	// drop count, so the client can verify its sequence gap is covered.
	// Dropped events consume delivery-sequence numbers too, so the DSeq
	// gap (2, 3 missing) exactly equals the drop delta.
	c.mu.Lock()
	if !c.enqueueLocked(sub, entry(4), false) {
		t.Fatal("drained queue should accept")
	}
	c.mu.Unlock()
	next := decode(<-c.out)
	if next.GSeq != 4 || next.DSeq != 4 || next.Drops != 2 {
		t.Fatalf("post-drop event = %+v, want gseq 4 dseq 4 drops 2", next)
	}
}

func TestGatewayClientReconnectReplayAcrossRestart(t *testing.T) {
	n, gw := newTestGateway(t, Config{})
	addr := gw.Addr()
	c := Dial(addr, ClientConfig{Policy: retry.New(7), RequestTimeout: 3 * time.Second})
	defer c.Close()

	sub, err := c.Subscribe(pattern.ByName(pattern.KindFlood, "restart"))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := n.Inject(pattern.NewFlood("restart")); err != nil {
		t.Fatal(err)
	}
	ev := waitTupleEvent(t, sub, core.TupleArrived.String())
	firstEpoch := ev.Epoch

	// Kill the gateway instance; its ring and epoch die with it. The
	// same listen address comes back under a fresh instance.
	if err := gw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	gw2, err := Serve(n, addr, Config{})
	if err != nil {
		t.Fatalf("restart gateway: %v", err)
	}
	defer gw2.Close()

	// The client reconnects and resubscribes on its own; the epoch
	// change surfaces as a Resync marker so the consumer knows to
	// rebuild (duplicates across the seam are possible, gaps are not).
	var sawResync bool
	deadline := time.After(10 * time.Second)
resync:
	for {
		select {
		case ev := <-sub.Events:
			if ev.Resync {
				if ev.Epoch == firstEpoch {
					t.Fatalf("resync kept the old epoch %q", ev.Epoch)
				}
				sawResync = true
				break resync
			}
		case <-deadline:
			t.Fatal("client never resynced after gateway restart")
		}
	}
	if !sawResync {
		t.Fatal("no resync marker")
	}
	// Live delivery works again on the new instance.
	if _, err := n.Inject(pattern.NewFlood("restart")); err != nil {
		t.Fatal(err)
	}
	ev = waitTupleEvent(t, sub, core.TupleArrived.String())
	if ev.Epoch == firstEpoch {
		t.Fatalf("post-restart event still in old epoch %q", ev.Epoch)
	}
	if sub.GapViolations() != 0 {
		t.Fatalf("client recorded %d unaccounted gaps", sub.GapViolations())
	}
}

func TestGatewayClientRequestTimeoutAndRetry(t *testing.T) {
	// No server: every RPC burns its retry budget and fails.
	c := Dial("127.0.0.1:1", ClientConfig{
		Policy:         retry.New(3),
		RequestTimeout: 200 * time.Millisecond,
		DialTimeout:    100 * time.Millisecond,
	})
	defer c.Close()
	start := time.Now()
	if _, _, err := c.Ping(); err == nil {
		t.Fatal("ping against nothing succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retry budget unbounded: took %v", elapsed)
	}
}

// TestGatewayClientFreshSubscribeSeesRingReplay is the regression test
// for the subscribe-ack/replay race: tuples injected BEFORE the client
// subscribes are only ever delivered through the silent ring replay
// directly behind the subscribe ack. The client must have the server
// sub id registered before it dispatches those frames, or the whole
// replay vanishes and a mirror built from the event stream can never
// converge.
func TestGatewayClientFreshSubscribeSeesRingReplay(t *testing.T) {
	n, gw := newTestGateway(t, Config{})

	const pre = 16
	for i := 0; i < pre; i++ {
		if _, err := n.Inject(pattern.NewFlood(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	c := testClient(t, gw.Addr())
	sub, err := c.Subscribe(tuple.MatchAll())
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	seen := make(map[string]bool)
	deadline := time.After(5 * time.Second)
	for len(seen) < pre {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				t.Fatal("subscription channel closed mid-replay")
			}
			if ev.Type != core.TupleArrived.String() || ev.Tuple == nil {
				continue
			}
			seen[ev.Tuple.Content().GetString("name")] = true
		case <-deadline:
			t.Fatalf("replay delivered only %d/%d pre-subscribe tuples: %v", len(seen), pre, seen)
		}
	}
	if sub.GapViolations() != 0 {
		t.Fatalf("replay recorded %d unaccounted gaps", sub.GapViolations())
	}
}

// TestGatewayUnsubscribeRacesLiveDispatch pins the send/close race: the
// read loop used to check the closed flag and then send to Events
// unlocked, so an event racing a concurrent Unsubscribe panicked the
// whole process with a send on a closed channel. Deliveries and the
// close now serialize on the subscription's send lock; under -race this
// schedule flagged the old code.
func TestGatewayUnsubscribeRacesLiveDispatch(t *testing.T) {
	n, gw := newTestGateway(t, Config{})
	c := Dial(gw.Addr(), ClientConfig{
		Policy:         retry.New(11),
		RequestTimeout: 3 * time.Second,
		// Depth 1 keeps deliveries blocked on the channel mid-Unsubscribe,
		// exercising the abort-a-blocked-send path as well.
		EventBuffer: 1,
	})
	t.Cleanup(func() { _ = c.Close() })

	for i := 0; i < 20; i++ {
		sub, err := c.Subscribe(tuple.MatchAll())
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		stop := make(chan struct{})
		injectorDone := make(chan struct{})
		go func() {
			defer close(injectorDone)
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := n.Inject(pattern.NewFlood("race")); err != nil {
						return
					}
				}
			}
		}()
		time.Sleep(2 * time.Millisecond) // let deliveries flow, then tear down mid-stream
		if err := c.Unsubscribe(sub); err != nil {
			t.Fatalf("unsubscribe %d: %v", i, err)
		}
		close(stop)
		<-injectorDone
		for range sub.Events {
			// drain until the closed channel ends the loop
		}
	}
}

// TestGatewayFilteredSubscriptionNoFalseGaps: a subscription with a
// narrow template legitimately skips the global sequence numbers held
// by non-matching events. Gap-vs-drop verification runs in the
// per-subscription delivery sequence, so those skips must not count as
// violations.
func TestGatewayFilteredSubscriptionNoFalseGaps(t *testing.T) {
	n, gw := newTestGateway(t, Config{})
	c := testClient(t, gw.Addr())
	sub, err := c.Subscribe(pattern.ByName(pattern.KindFlood, "wanted"))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	const wanted = 5
	for i := 0; i < wanted; i++ {
		injectN(t, n, "noise", 3) // consume global sequence numbers the filter skips
		if _, err := n.Inject(pattern.NewFlood("wanted")); err != nil {
			t.Fatal(err)
		}
	}
	var prevGSeq uint64
	sawGSeqGap := false
	for i := 0; i < wanted; i++ {
		ev := waitTupleEvent(t, sub, core.TupleArrived.String())
		if prevGSeq != 0 && ev.GSeq > prevGSeq+1 {
			sawGSeqGap = true
		}
		prevGSeq = ev.GSeq
		if ev.DSeq != uint64(i+1) {
			t.Fatalf("delivery %d has dseq %d, want contiguous %d", i, ev.DSeq, i+1)
		}
	}
	if !sawGSeqGap {
		t.Fatal("test never exercised a global-sequence gap; it proves nothing")
	}
	if got := sub.GapViolations(); got != 0 {
		t.Fatalf("filtered subscription recorded %d false gap violations", got)
	}
}

// TestGatewayDropCounterResetAcrossResubscribe: every subscribe ack
// attaches to a fresh server-side subscription whose delivery sequence
// and drop counter restart at zero, so the client-side trackers must
// reset too — a stale counter turned the next legitimate drop-covered
// gap into a false violation after a same-epoch reconnect.
func TestGatewayDropCounterResetAcrossResubscribe(t *testing.T) {
	c := &Client{closec: make(chan struct{})}
	s := &Subscription{
		Events: make(chan SubEvent, 4),
		done:   make(chan struct{}),
	}
	s.epoch = "e1"
	s.serverID = 1
	s.lastSeq = 40
	s.lastDSeq = 9
	s.drops = 5
	c.subs = []*Subscription{s}

	c.applySubscribeAck(s, Response{OK: true, Sub: 2, Epoch: "e1", Replay: ReplayHit})
	if s.needResync {
		t.Fatal("same-epoch replay hit must not force a resync")
	}
	if s.lastSeq != 40 {
		t.Fatalf("lastSeq = %d, want 40 (the global sequence survives a same-epoch reconnect)", s.lastSeq)
	}
	if s.drops != 0 || s.lastDSeq != 0 {
		t.Fatalf("per-attachment trackers not reset: drops=%d lastDSeq=%d", s.drops, s.lastDSeq)
	}
	if got := s.Drops(); got != 5 {
		t.Fatalf("Drops() = %d, want 5 (prior drops stay in the cumulative count)", got)
	}

	// First post-reconnect delivery: one matched event was dropped ahead
	// of it (dseq 1), so it arrives as dseq 2 with drops 1. Comparing
	// against the stale pre-reconnect counter (5) used to flag this as
	// an unaccounted gap.
	c.dispatchEvent(Event{Sub: 2, GSeq: 43, DSeq: 2, Drops: 1})
	if got := s.GapViolations(); got != 0 {
		t.Fatalf("gap violations = %d, want 0 (gap is covered in the new counter space)", got)
	}
	ev := <-s.Events
	if ev.Drops != 6 {
		t.Fatalf("delivered Drops = %d, want cumulative 6", ev.Drops)
	}
	// A genuinely unaccounted gap in the new space is still caught.
	c.dispatchEvent(Event{Sub: 2, GSeq: 45, DSeq: 5, Drops: 1})
	if got := s.GapViolations(); got != 1 {
		t.Fatalf("gap violations = %d, want 1 for an uncovered delivery gap", got)
	}
}

// TestGatewayClientRetriesThroughMidRPCDisconnect: a connection that
// dies with an RPC in flight is a transport error, not a gateway
// verdict — the request must consume its retry budget and succeed on
// the reconnect, not fail permanently (the transparent-reconnect
// contract the client fleet relies on under faults).
func TestGatewayClientRetriesThroughMidRPCDisconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var dropFirst atomic.Bool
	dropFirst.Store(true)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				for {
					var req Request
					if err := ReadFrame(nc, &req); err != nil {
						return
					}
					if dropFirst.CompareAndSwap(true, false) {
						return // kill the connection with the request in flight
					}
					_ = WriteFrame(nc, Frame{Resp: &Response{Seq: req.Seq, OK: true, Epoch: "fake", NextSeq: 7}})
				}
			}(nc)
		}
	}()

	c := Dial(ln.Addr().String(), ClientConfig{
		Policy:         retry.New(5),
		RequestTimeout: 2 * time.Second,
	})
	defer c.Close()
	epoch, _, err := c.Ping()
	if err != nil {
		t.Fatalf("ping should retry through a mid-RPC disconnect: %v", err)
	}
	if epoch != "fake" {
		t.Fatalf("epoch = %q, want the reconnect's answer", epoch)
	}
}

// TestGatewaySubscribeRetryDoesNotDuplicateServerSub: Subscribe's
// first attempt often races the connection manager's dial and fails;
// the manager then establishes the subscription itself, and the retry
// must notice the handle is already attached instead of installing a
// second server-side subscription the client orphans.
func TestGatewaySubscribeRetryDoesNotDuplicateServerSub(t *testing.T) {
	_, gw := newTestGateway(t, Config{})
	c := testClient(t, gw.Addr())
	sub, err := c.Subscribe(tuple.MatchAll())
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer func() { _ = c.Unsubscribe(sub) }()
	// Give a racing duplicate subscribe RPC time to land if one was sent.
	time.Sleep(200 * time.Millisecond)
	if got := gw.Stats().Subscriptions; got != 1 {
		t.Fatalf("server-side subscriptions = %d, want exactly 1", got)
	}
}

// TestGatewaySubscribeAckNeverBlocksFanoutLock: queueing the subscribe
// ack happens under the connection lock the event fan-out path (and
// through it the engine dispatch goroutine) waits on, so it must never
// block on a wedged client — the connection is dropped instead.
func TestGatewaySubscribeAckNeverBlocksFanoutLock(t *testing.T) {
	gw := &Gateway{cfg: Config{QueueSize: 1}, ring: newEventRing(4)}
	c := &conn{
		gw:     gw,
		out:    make(chan []byte, 1),
		subs:   make(map[uint64]*serverSub),
		closec: make(chan struct{}),
	}
	c.out <- []byte{0} // wedge the outbound queue

	type result struct {
		resp  *Response
		fatal bool
	}
	done := make(chan result, 1)
	go func() {
		resp, fatal := c.handleSubscribe(Request{Op: OpSubscribe, Seq: 1})
		done <- result{resp, fatal}
	}()
	select {
	case r := <-done:
		if !r.fatal || r.resp != nil {
			t.Fatalf("handleSubscribe = (%+v, fatal=%v), want (nil, fatal=true)", r.resp, r.fatal)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handleSubscribe blocked on a full outbound queue")
	}
	// The lock the fan-out path needs is free again immediately.
	locked := make(chan struct{})
	go func() {
		c.mu.Lock()
		c.mu.Unlock() //nolint:staticcheck // probing lock availability
		close(locked)
	}()
	select {
	case <-locked:
	case <-time.After(time.Second):
		t.Fatal("connection lock still held after the wedged subscribe")
	}
}
