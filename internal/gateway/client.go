package gateway

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tota/internal/retry"
	"tota/internal/tuple"
)

// Client errors.
var (
	ErrClientClosed = errors.New("gateway: client closed")
	ErrTimeout      = errors.New("gateway: request timed out")
	ErrDisconnected = errors.New("gateway: not connected")
)

// ClientConfig tunes a Client; zero values select defaults.
type ClientConfig struct {
	// Policy is the request retry/backoff budget (shared machinery
	// with the testnet poller, internal/retry). Nil gets retry.New(1).
	Policy *retry.Policy
	// RequestTimeout bounds one RPC round trip (default 5s).
	RequestTimeout time.Duration
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// ReconnectMax caps the backoff between reconnection attempts
	// (default 2s). Reconnection retries forever while the client is
	// open — transparent resubscribe-with-replay is the whole point.
	ReconnectMax time.Duration
	// EventBuffer is each subscription's delivery channel depth
	// (default 1024). A consumer that stops draining eventually
	// backpressures the socket, which surfaces at the gateway as
	// accounted slow-consumer drops.
	EventBuffer int
	// Registry decodes event and read tuples; defaults to
	// tuple.DefaultRegistry.
	Registry *tuple.Registry
}

// SubEvent is one delivery on a subscription channel.
type SubEvent struct {
	// Type is the engine event name ("tuple-arrived", "tuple-removed",
	// "neighbor-added", "neighbor-removed").
	Type string
	// Tuple is the decoded event tuple (nil if its kind is unknown to
	// the client registry).
	Tuple tuple.Tuple
	// Peer is set on neighbor events.
	Peer string
	// GSeq is the per-gateway global sequence; strictly increasing per
	// subscription within one Epoch after client-side dedup. A filtered
	// subscription legitimately skips the GSeq values held by
	// non-matching events.
	GSeq uint64
	// DSeq is the per-subscription delivery sequence on the current
	// server-side attachment: it counts only events matching this
	// subscription's template, restarting at 1 on each (re)subscribe,
	// so a gap in DSeq means matched events went missing — which only
	// the drop accounting may explain (verified internally; see
	// GapViolations).
	DSeq uint64
	// Drops is the cumulative slow-consumer drop count over the
	// subscription's whole lifetime, accumulated client-side across
	// reconnects: growth means the gateway shed matched events to this
	// connection's bounded queue, so a consumer needing a complete view
	// should rebuild (e.g. by a Read).
	Drops uint64
	// Replay marks events re-delivered from the gateway's ring.
	Replay bool
	// Resync marks a synthetic marker event (no tuple): the gateway
	// epoch changed or replay missed, so state accumulated before this
	// point is unreliable and should be rebuilt (e.g. by a Read).
	Resync bool
	// Epoch is the gateway instance the event came from.
	Epoch string
}

// Subscription is a client-side subscription handle. It survives
// reconnects: the client transparently resubscribes with
// replay-from-seq and dedups redelivered events, so Events sees every
// event at least once, in order, per epoch.
type Subscription struct {
	c   *Client
	tpl tuple.Template
	// Events delivers matching engine events; closed by Unsubscribe
	// and Client.Close.
	Events chan SubEvent

	// sendMu serializes every send on Events with its close: a send can
	// only happen with sendMu held and the closed flag unset, and shut
	// closes Events under sendMu, so a delivery can never race
	// Unsubscribe into a send on a closed channel. done aborts a send
	// blocked on a full Events channel so shut cannot deadlock behind a
	// consumer that stopped draining.
	sendMu sync.Mutex
	done   chan struct{}

	// estMu serializes establishment RPCs for this handle: Subscribe's
	// retry loop and the connection manager's resubscribe sweep can
	// race after a dial, and without serialization the loser installs a
	// duplicate server-side subscription the client then orphans
	// (doubling event traffic and inflating the subscriptions gauge).
	estMu sync.Mutex

	mu       sync.Mutex
	serverID uint64 // id on the current connection, 0 when detached
	epoch    string
	lastSeq  uint64
	lastDSeq uint64
	// drops tracks the current server-side attachment's cumulative drop
	// counter (it restarts at zero on every resubscribe); dropsBase
	// accumulates the drops observed on previous attachments so Drops()
	// and SubEvent.Drops stay monotonic over the handle's lifetime.
	drops     uint64
	dropsBase uint64
	closed    bool
	gapErrors int
	// needResync is set by the read loop when a subscribe ack revealed
	// an epoch change or replay miss; resubscribe consumes it to emit
	// the Resync marker from its own goroutine.
	needResync bool
}

// LastSeq returns the newest gateway sequence the subscription has
// seen in its current epoch.
func (s *Subscription) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Drops returns the cumulative slow-consumer drops over the
// subscription's lifetime, across reconnects.
func (s *Subscription) Drops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropsBase + s.drops
}

// deliver sends ev to the consumer unless the subscription is (or
// becomes) closed. See sendMu for why this can neither panic on a
// closed channel nor deadlock a concurrent Unsubscribe.
func (s *Subscription) deliver(ev SubEvent, closec <-chan struct{}) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	select {
	case s.Events <- ev:
	case <-s.done:
	case <-closec:
	}
}

// shut marks the subscription closed and closes Events exactly once;
// false means it was already closed. Closing done first aborts any
// delivery blocked on a full channel, then taking sendMu waits out any
// in-flight send before the channel closes.
func (s *Subscription) shut() bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	s.sendMu.Lock()
	close(s.Events)
	s.sendMu.Unlock()
	return true
}

// GapViolations counts events whose delivery-sequence gap was NOT
// covered by the gateway's drop accounting — zero on a healthy run;
// non-zero means the no-silent-gaps contract broke. The check runs in
// the per-subscription delivery sequence (DSeq), so it is meaningful
// for filtered templates too.
func (s *Subscription) GapViolations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gapErrors
}

// Client is the resilient gateway RPC client: request timeouts,
// bounded retries with seeded-jitter exponential backoff (shared with
// the testnet poller via internal/retry), and transparent
// resubscribe-with-replay across reconnects.
type Client struct {
	addr string
	cfg  ClientConfig

	mu      sync.Mutex
	nc      net.Conn // current connection, nil while down
	pending map[uint64]chan Response
	// subFor maps an in-flight subscribe request seq to its
	// subscription, so the read loop can apply the ack (server sub id,
	// epoch, sequence reset) BEFORE it dispatches the replay events the
	// gateway writes immediately after the ack. Applying the ack from
	// the resubscribe goroutine instead would race those events into
	// dispatchEvent with no registered server id, silently dropping the
	// replay.
	subFor  map[uint64]*Subscription
	reqSeq  uint64
	subs    []*Subscription
	closed  bool

	closec  chan struct{}
	kick    chan struct{} // nudges the manager to reconnect now
	managerDone chan struct{}
}

// Dial creates a client for the gateway at addr and starts its
// connection manager. It returns immediately; the first RPC blocks
// until a connection exists or its retry budget is spent.
func Dial(addr string, cfg ClientConfig) *Client {
	if cfg.Policy == nil {
		cfg.Policy = retry.New(1)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 2 * time.Second
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 1024
	}
	if cfg.Registry == nil {
		cfg.Registry = tuple.DefaultRegistry
	}
	c := &Client{
		addr:        addr,
		cfg:         cfg,
		pending:     make(map[uint64]chan Response),
		subFor:      make(map[uint64]*Subscription),
		closec:      make(chan struct{}),
		kick:        make(chan struct{}, 1),
		managerDone: make(chan struct{}),
	}
	go c.manage()
	return c
}

// Close shuts the client down: the connection drops, pending requests
// fail, and every subscription channel closes.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nc := c.nc
	c.nc = nil
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	close(c.closec)
	if nc != nil {
		_ = nc.Close()
	}
	<-c.managerDone
	c.failPending()
	for _, s := range subs {
		s.shut()
	}
	return nil
}

// manage owns the connection lifecycle: dial with capped backoff,
// resubscribe every registered subscription with replay-from-seq, run
// the read loop until the connection dies, repeat.
func (c *Client) manage() {
	defer close(c.managerDone)
	attempt := 0
	for {
		select {
		case <-c.closec:
			return
		default:
		}
		nc, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
		if err != nil {
			attempt++
			select {
			case <-time.After(c.reconnectBackoff(attempt)):
			case <-c.closec:
				return
			}
			continue
		}
		attempt = 0
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = nc.Close()
			return
		}
		c.nc = nc
		subs := append([]*Subscription(nil), c.subs...)
		c.mu.Unlock()

		// The read loop must run before resubscribe RPCs can see their
		// responses.
		readDone := make(chan struct{})
		go func() {
			defer close(readDone)
			c.readLoop(nc)
		}()
		for _, s := range subs {
			if err := c.resubscribe(s); err != nil {
				break // connection died mid-resubscribe; redial
			}
		}
		select {
		case <-readDone:
		case <-c.closec:
			_ = nc.Close()
			<-readDone
			return
		}
		c.mu.Lock()
		if c.nc == nc {
			c.nc = nil
		}
		c.mu.Unlock()
		c.failPending()
		c.detachSubs()
	}
}

// reconnectBackoff doubles from the policy base to ReconnectMax with
// the policy's seeded jitter.
func (c *Client) reconnectBackoff(attempt int) time.Duration {
	d := c.cfg.Policy.Backoff(attempt)
	if d > c.cfg.ReconnectMax {
		d = c.cfg.ReconnectMax
	}
	return d
}

// readLoop demuxes gateway frames: responses to pending RPCs, events
// to their subscriptions.
func (c *Client) readLoop(nc net.Conn) {
	for {
		var fr Frame
		if err := ReadFrame(nc, &fr); err != nil {
			_ = nc.Close()
			return
		}
		switch {
		case fr.Resp != nil:
			c.mu.Lock()
			ch := c.pending[fr.Resp.Seq]
			delete(c.pending, fr.Resp.Seq)
			sub := c.subFor[fr.Resp.Seq]
			delete(c.subFor, fr.Resp.Seq)
			c.mu.Unlock()
			if sub != nil && fr.Resp.Err == "" {
				// Subscribe ack: register the server id and sequence
				// state here, in the same goroutine that dispatches
				// events, so the replay frames right behind this ack
				// route to the subscription instead of vanishing.
				c.applySubscribeAck(sub, *fr.Resp)
			}
			if ch != nil {
				ch <- *fr.Resp
			}
		case fr.Event != nil:
			c.dispatchEvent(*fr.Event)
		}
	}
}

// dispatchEvent routes one event frame to its subscription, dedups by
// sequence, verifies gap accounting and delivers to the consumer.
func (c *Client) dispatchEvent(ev Event) {
	c.mu.Lock()
	var target *Subscription
	for _, s := range c.subs {
		s.mu.Lock()
		match := s.serverID == ev.Sub && s.serverID != 0
		s.mu.Unlock()
		if match {
			target = s
			break
		}
	}
	c.mu.Unlock()
	if target == nil {
		return
	}
	target.mu.Lock()
	// Gap verification runs in the per-subscription delivery sequence
	// (DSeq), which counts only events matching this subscription's
	// template: a filtered subscription legitimately skips global
	// sequence numbers held by non-matching events, but a DSeq gap
	// means matched events went missing, which only accounted drops may
	// explain. Both trackers reset on every subscribe ack (fresh
	// server-side attachment, fresh counter spaces), so the check is
	// valid from the first delivery.
	if ev.DSeq > target.lastDSeq {
		if gap := ev.DSeq - target.lastDSeq - 1; gap > 0 {
			if ev.Drops < target.drops+gap {
				target.gapErrors++
			}
		}
		target.lastDSeq = ev.DSeq
	}
	if ev.Drops > target.drops {
		target.drops = ev.Drops
	}
	cumDrops := target.dropsBase + target.drops
	if ev.GSeq <= target.lastSeq {
		// Redelivered (replay overlapping live fan-out): dedup, but
		// only after the sequence/drop trackers above advanced past it.
		target.mu.Unlock()
		return
	}
	target.lastSeq = ev.GSeq
	epoch := target.epoch
	target.mu.Unlock()
	out := SubEvent{
		Type:   ev.Type,
		Peer:   ev.Peer,
		GSeq:   ev.GSeq,
		DSeq:   ev.DSeq,
		Drops:  cumDrops,
		Replay: ev.Replay,
		Epoch:  epoch,
	}
	if len(ev.Tuple) > 0 {
		if t, err := tuple.UnmarshalTupleJSON(c.cfg.Registry, ev.Tuple); err == nil {
			out.Tuple = t
		}
	}
	target.deliver(out, c.closec)
}

// resubscribe re-establishes one subscription on the current
// connection, requesting replay from the last sequence seen. On an
// epoch change or replay miss it emits a Resync marker first so the
// consumer knows to rebuild its state. Calls serialize on estMu and
// skip when the handle is already attached (serverID set), so two
// racing establishers send at most one subscribe RPC.
func (c *Client) resubscribe(s *Subscription) error {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	s.mu.Lock()
	if s.closed || s.serverID != 0 {
		s.mu.Unlock()
		return nil
	}
	tplJSON, err := tuple.MarshalTemplateJSON(s.tpl)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	req := Request{
		Op:       OpSubscribe,
		Template: tplJSON,
		FromSeq:  s.lastSeq,
		Epoch:    s.epoch,
	}
	s.mu.Unlock()
	resp, err := c.roundTripSub(req, s)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	// The read loop already applied the ack (applySubscribeAck) before
	// handing us the response; here we only emit the Resync marker it
	// flagged, from outside the read loop so a full Events channel
	// cannot stall event dispatch.
	s.mu.Lock()
	resync := s.needResync
	s.needResync = false
	epoch := s.epoch
	s.mu.Unlock()
	if resync {
		s.deliver(SubEvent{Resync: true, Epoch: epoch}, c.closec)
	}
	return nil
}

// applySubscribeAck records a subscribe response's server-side state on
// the subscription. It runs in the read-loop goroutine so it is
// ordered strictly before the replay events that follow the ack on the
// wire.
func (c *Client) applySubscribeAck(s *Subscription, resp Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	epochChanged := s.epoch != "" && s.epoch != resp.Epoch
	missed := resp.Replay == ReplayMiss
	if epochChanged || missed {
		// Sequence space reset (or partially evicted): everything
		// accumulated so far is unreliable. Reset tracking so the new
		// epoch's replay passes dedup, and flag the consumer to rebuild.
		s.lastSeq = 0
		s.needResync = true
	}
	// Every ack is a fresh server-side attachment whose delivery
	// sequence and drop counter restart at zero — regardless of epoch
	// or replay outcome — so the client-side trackers must too, or a
	// stale counter would flag the next legitimate drop-covered gap as
	// a violation. Observed drops roll into dropsBase so Drops() stays
	// cumulative for consumers.
	s.dropsBase += s.drops
	s.drops = 0
	s.lastDSeq = 0
	s.epoch = resp.Epoch
	s.serverID = resp.Sub
}

// detachSubs marks every subscription as having no server-side id, so
// stray events cannot misroute after reconnect.
func (c *Client) detachSubs() {
	c.mu.Lock()
	subs := append([]*Subscription(nil), c.subs...)
	c.mu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		s.serverID = 0
		s.mu.Unlock()
	}
}

// failPending aborts every in-flight round trip by closing its
// response channel. A close — not a synthesized Response — is what
// distinguishes a transport failure from a gateway verdict: do() must
// retry the former under the policy and only treat the latter as
// permanent.
func (c *Client) failPending() {
	c.mu.Lock()
	pend := c.pending
	c.pending = make(map[uint64]chan Response)
	c.subFor = make(map[uint64]*Subscription)
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// roundTrip sends one request on the current connection and waits for
// its response (no retries — Do wraps it with the policy).
func (c *Client) roundTrip(req Request) (Response, error) {
	return c.roundTripSub(req, nil)
}

// roundTripSub is roundTrip with an optional subscription to bind to
// the request seq, so the read loop applies the subscribe ack before
// dispatching the replay events behind it.
func (c *Client) roundTripSub(req Request, sub *Subscription) (Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, ErrClientClosed
	}
	nc := c.nc
	if nc == nil {
		c.mu.Unlock()
		return Response{}, ErrDisconnected
	}
	c.reqSeq++
	req.Seq = c.reqSeq
	ch := make(chan Response, 1)
	c.pending[req.Seq] = ch
	if sub != nil {
		c.subFor[req.Seq] = sub
	}
	c.mu.Unlock()

	buf, err := EncodeFrame(req)
	if err != nil {
		c.abandon(req.Seq)
		return Response{}, err
	}
	_ = nc.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if _, err := nc.Write(buf); err != nil {
		c.abandon(req.Seq)
		_ = nc.Close()
		return Response{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// failPending closed the channel: the connection died with
			// this request in flight. That is a transport error —
			// retryable under the policy — not a gateway verdict.
			return Response{}, ErrDisconnected
		}
		return resp, nil
	case <-time.After(c.cfg.RequestTimeout):
		c.abandon(req.Seq)
		return Response{}, ErrTimeout
	case <-c.closec:
		c.abandon(req.Seq)
		return Response{}, ErrClientClosed
	}
}

func (c *Client) abandon(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	delete(c.subFor, seq)
	c.mu.Unlock()
}

// do runs one RPC under the retry policy.
func (c *Client) do(req Request) (Response, error) {
	var resp Response
	err := c.cfg.Policy.Do(func() error {
		r, err := c.roundTrip(req)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return retry.Permanent(err)
			}
			return err
		}
		if r.Err != "" {
			// Application-level errors are permanent: retrying a bad
			// template or unknown kind cannot help.
			return retry.Permanent(errors.New(r.Err))
		}
		resp = r
		return nil
	}, c.closec)
	return resp, err
}

// Ping round-trips a no-op and returns the gateway's epoch and current
// event sequence.
func (c *Client) Ping() (epoch string, seq uint64, err error) {
	resp, err := c.do(Request{Op: OpPing})
	if err != nil {
		return "", 0, err
	}
	return resp.Epoch, resp.NextSeq, nil
}

// Inject creates t in the tuple space through the gateway and returns
// the assigned id.
func (c *Client) Inject(t tuple.Tuple) (tuple.ID, error) {
	if t == nil {
		return tuple.ID{}, fmt.Errorf("gateway: nil tuple")
	}
	resp, err := c.do(Request{Op: OpInject, Kind: t.Kind(), Content: t.Content()})
	if err != nil {
		return tuple.ID{}, err
	}
	return tuple.ParseID(resp.ID)
}

// Read queries the gateway node's local tuple space.
func (c *Client) Read(tpl tuple.Template) ([]tuple.Tuple, error) {
	tplJSON, err := tuple.MarshalTemplateJSON(tpl)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(Request{Op: OpRead, Template: tplJSON})
	if err != nil {
		return nil, err
	}
	var out []tuple.Tuple
	for _, raw := range resp.Tuples {
		t, err := tuple.UnmarshalTupleJSON(c.cfg.Registry, raw)
		if err != nil {
			continue
		}
		out = append(out, t)
	}
	return out, nil
}

// Subscribe registers a subscription for events matching tpl and
// blocks until the gateway acknowledges it (or the retry budget is
// spent). The subscription survives reconnects transparently.
func (c *Client) Subscribe(tpl tuple.Template) (*Subscription, error) {
	s := &Subscription{
		c:      c,
		tpl:    tpl,
		Events: make(chan SubEvent, c.cfg.EventBuffer),
		done:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.subs = append(c.subs, s)
	c.mu.Unlock()

	// Establish it now if connected; otherwise the manager will on the
	// next (re)connect. Either way the handle is registered, so the
	// subscription cannot be lost.
	err := c.cfg.Policy.Do(func() error {
		if err := c.resubscribe(s); err != nil {
			return err
		}
		s.mu.Lock()
		ok := s.serverID != 0
		s.mu.Unlock()
		if !ok {
			return ErrDisconnected
		}
		return nil
	}, c.closec)
	if err != nil {
		c.removeSub(s)
		return nil, err
	}
	return s, nil
}

// Unsubscribe drops the subscription and closes its channel.
func (c *Client) Unsubscribe(s *Subscription) error {
	if !s.shut() {
		return nil // already closed
	}
	c.removeSub(s)
	s.mu.Lock()
	serverID := s.serverID
	s.serverID = 0
	s.mu.Unlock()
	if serverID != 0 {
		_, err := c.do(Request{Op: OpUnsubscribe, Sub: serverID})
		return err
	}
	return nil
}

func (c *Client) removeSub(s *Subscription) {
	c.mu.Lock()
	for i, cur := range c.subs {
		if cur == s {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}
