package gateway

import "tota/internal/obs"

// RegisterMetrics binds the gateway's counters into reg as
// tota_gateway_* series, scrape-able over the node's telemetry
// endpoint in both Prometheus and JSON form.
func (g *Gateway) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("tota_gateway_clients",
		"Currently connected gateway clients.",
		func() float64 { return float64(g.stats.clients.Load()) })
	reg.GaugeFunc("tota_gateway_subscriptions",
		"Currently live client subscriptions.",
		func() float64 { return float64(g.stats.subscriptions.Load()) })
	reg.CounterFunc("tota_gateway_clients_rejected_total",
		"Connections refused at the max-clients cap.",
		func() float64 { return float64(g.stats.rejected.Load()) })
	reg.CounterFunc("tota_gateway_injects_total",
		"Successful inject RPCs.",
		func() float64 { return float64(g.stats.injects.Load()) })
	reg.CounterFunc("tota_gateway_reads_total",
		"Successful read RPCs.",
		func() float64 { return float64(g.stats.reads.Load()) })
	reg.CounterFunc("tota_gateway_events_delivered_total",
		"Event frames queued to client connections.",
		func() float64 { return float64(g.stats.delivered.Load()) })
	reg.CounterFunc("tota_gateway_events_dropped_total",
		"Events lost to full per-connection queues (slow consumers).",
		func() float64 { return float64(g.stats.dropped.Load()) })
	reg.CounterFunc("tota_gateway_replay_hits_total",
		"Subscribe-time replays fully served from the ring.",
		func() float64 { return float64(g.stats.replayHits.Load()) })
	reg.CounterFunc("tota_gateway_replay_misses_total",
		"Subscribe-time replays that could not be completed (epoch change or ring eviction).",
		func() float64 { return float64(g.stats.replayMisses.Load()) })
	reg.CounterFunc("tota_gateway_replayed_events_total",
		"Events re-delivered from the replay ring.",
		func() float64 { return float64(g.stats.replayEvents.Load()) })
}
