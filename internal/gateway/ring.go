package gateway

import (
	"encoding/json"
	"sync"

	"tota/internal/tuple"
)

// ringEntry is one gateway-observed engine event, retained for replay:
// the sequence it was assigned, the decoded tuple for template
// matching, and the pre-encoded JSON so fan-out to thousands of
// subscriptions marshals each tuple exactly once.
type ringEntry struct {
	seq   uint64
	typ   string
	peer  string
	tup   tuple.Tuple
	tJSON json.RawMessage
}

// eventRing is the bounded per-gateway replay buffer — the
// subscribe/replay contract: a client that reconnects with the last
// sequence it saw gets every newer retained event (a replay hit), or
// an explicit miss when the ring has already evicted part of the range
// so it knows its state is unreliable instead of silently gapped.
type eventRing struct {
	mu   sync.Mutex
	buf  []ringEntry
	next int // insertion index
	full bool
}

func newEventRing(size int) *eventRing {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &eventRing{buf: make([]ringEntry, size)}
}

func (r *eventRing) append(e ringEntry) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// oldestLocked returns the lowest retained sequence, or 0 when empty.
func (r *eventRing) oldestLocked() uint64 {
	if r.full {
		return r.buf[r.next].seq
	}
	if r.next == 0 {
		return 0
	}
	return r.buf[0].seq
}

// since returns the retained entries with seq > from in sequence order,
// and whether the range is complete (every event after from is still
// retained). A false return means eviction already ate part of the
// range: the caller must report a replay miss.
func (r *eventRing) since(from uint64) ([]ringEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.oldestLocked()
	if oldest == 0 {
		// Empty ring: complete iff nothing has ever been appended past
		// from (callers track the gateway seq separately; an empty ring
		// retains everything only when nothing was emitted).
		return nil, from >= r.lastLocked()
	}
	complete := from+1 >= oldest
	var out []ringEntry
	n := len(r.buf)
	start := 0
	count := r.next
	if r.full {
		start = r.next
		count = n
	}
	for i := 0; i < count; i++ {
		e := r.buf[(start+i)%n]
		if e.seq > from {
			out = append(out, e)
		}
	}
	return out, complete
}

// lastLocked returns the highest retained sequence, or 0 when empty.
func (r *eventRing) lastLocked() uint64 {
	if r.next > 0 {
		return r.buf[r.next-1].seq
	}
	if r.full {
		return r.buf[len(r.buf)-1].seq
	}
	return 0
}
