package gateway

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tota/internal/core"
	"tota/internal/tuple"
)

// Defaults for the serving surface.
const (
	// DefaultRingSize is the replay ring capacity: how many recent
	// events a reconnecting client can recover by sequence.
	DefaultRingSize = 4096
	// DefaultQueueSize is the per-connection outbound queue bound; a
	// client that reads slower than its subscriptions produce drops
	// events past this depth (counted, never silent).
	DefaultQueueSize = 256
	// DefaultMaxClients bounds concurrent client connections per
	// gateway.
	DefaultMaxClients = 1024
	// writeTimeout bounds one frame write so a wedged client socket
	// cannot pin a writer goroutine forever.
	writeTimeout = 10 * time.Second
)

// Config tunes a Gateway; zero values select the defaults above.
type Config struct {
	// MaxClients bounds concurrent connections; further connections
	// are rejected with an error frame and closed.
	MaxClients int
	// RingSize is the replay ring capacity in events.
	RingSize int
	// QueueSize is the per-connection outbound event queue bound.
	QueueSize int
	// Registry resolves tuple kinds for inject requests; defaults to
	// tuple.DefaultRegistry.
	Registry *tuple.Registry
	// Logger receives connection-level errors; nil discards them.
	Logger *slog.Logger
}

// Stats is a snapshot of the gateway's counters, all externally
// scrape-able as tota_gateway_* (see RegisterMetrics).
type Stats struct {
	// Clients is the current connection count; Subscriptions the
	// current live subscription count across all connections.
	Clients       int64
	Subscriptions int64
	// Rejected counts connections turned away at the MaxClients cap.
	Rejected int64
	// Injects and Reads count successful RPCs.
	Injects int64
	Reads   int64
	// EventsDelivered counts event frames queued to clients;
	// EventsDropped counts events lost to full per-connection queues —
	// the explicit slow-consumer accounting.
	EventsDelivered int64
	EventsDropped   int64
	// ReplayHits/ReplayMisses count subscribe-time replay outcomes;
	// ReplayEvents counts events re-delivered from the ring.
	ReplayHits   int64
	ReplayMisses int64
	ReplayEvents int64
}

type gatewayStats struct {
	clients       atomic.Int64
	subscriptions atomic.Int64
	rejected      atomic.Int64
	injects       atomic.Int64
	reads         atomic.Int64
	delivered     atomic.Int64
	dropped       atomic.Int64
	replayHits    atomic.Int64
	replayMisses  atomic.Int64
	replayEvents  atomic.Int64
}

// Gateway serves the client RPC surface for one middleware node.
type Gateway struct {
	node  *core.Node
	cfg   Config
	ln    net.Listener
	epoch string
	ring  *eventRing

	// evMu serializes event sequencing: engine dispatches may arrive on
	// several goroutines (transport receive loop, refresh ticker,
	// local API calls), and sequence assignment, ring append and
	// fan-out must agree on one order.
	evMu sync.Mutex
	gseq uint64

	mu      sync.Mutex
	conns   map[*conn]struct{}
	closed  bool
	coreSub core.SubID

	stats gatewayStats
	wg    sync.WaitGroup
}

// Serve starts a gateway for node on addr (e.g. "127.0.0.1:0").
func Serve(node *core.Node, addr string, cfg Config) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	return ServeListener(node, ln, cfg), nil
}

// ServeListener starts a gateway on an existing listener (tests reuse
// a specific port across restarts this way).
func ServeListener(node *core.Node, ln net.Listener, cfg Config) *Gateway {
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.Registry == nil {
		cfg.Registry = tuple.DefaultRegistry
	}
	g := &Gateway{
		node:  node,
		cfg:   cfg,
		ln:    ln,
		epoch: newEpoch(),
		ring:  newEventRing(cfg.RingSize),
		conns: make(map[*conn]struct{}),
	}
	// One engine subscription carries every client subscription: the
	// gateway observes all events, sequences them, retains them in the
	// ring and fans them out to matching per-client queues.
	g.coreSub = node.Subscribe(tuple.MatchAll(), g.onEvent)
	g.wg.Add(1)
	go g.acceptLoop()
	return g
}

// newEpoch mints an instance identity: clients detect a gateway
// restart (and therefore a reset sequence space) by epoch change.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Epoch returns the gateway's instance identity.
func (g *Gateway) Epoch() string { return g.epoch }

// Stats snapshots the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Clients:         g.stats.clients.Load(),
		Subscriptions:   g.stats.subscriptions.Load(),
		Rejected:        g.stats.rejected.Load(),
		Injects:         g.stats.injects.Load(),
		Reads:           g.stats.reads.Load(),
		EventsDelivered: g.stats.delivered.Load(),
		EventsDropped:   g.stats.dropped.Load(),
		ReplayHits:      g.stats.replayHits.Load(),
		ReplayMisses:    g.stats.replayMisses.Load(),
		ReplayEvents:    g.stats.replayEvents.Load(),
	}
}

// Close stops accepting, detaches from the node and closes every
// client connection.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]*conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	g.node.Unsubscribe(g.coreSub)
	err := g.ln.Close()
	for _, c := range conns {
		c.close()
	}
	g.wg.Wait()
	return err
}

func (g *Gateway) logf(msg string, args ...any) {
	if g.cfg.Logger != nil {
		g.cfg.Logger.Debug(msg, args...)
	}
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			_ = nc.Close()
			return
		}
		if len(g.conns) >= g.cfg.MaxClients {
			g.mu.Unlock()
			g.stats.rejected.Add(1)
			// Reject with an addressed error frame so the client can
			// distinguish "full" from a network failure.
			_ = nc.SetWriteDeadline(time.Now().Add(writeTimeout))
			_ = WriteFrame(nc, Frame{Resp: &Response{Err: "gateway: client limit reached"}})
			_ = nc.Close()
			continue
		}
		c := &conn{
			gw:     g,
			nc:     nc,
			out:    make(chan []byte, g.cfg.QueueSize),
			subs:   make(map[uint64]*serverSub),
			closec: make(chan struct{}),
		}
		g.conns[c] = struct{}{}
		g.mu.Unlock()
		g.stats.clients.Add(1)
		g.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// onEvent is the engine reaction every client subscription compiles
// onto: sequence, retain, fan out. It must never block on a client —
// per-connection queues absorb or drop.
func (g *Gateway) onEvent(ev core.Event) {
	g.evMu.Lock()
	defer g.evMu.Unlock()
	g.gseq++
	entry := ringEntry{
		seq:  g.gseq,
		typ:  ev.Type.String(),
		peer: string(ev.Peer),
	}
	if ev.Tuple != nil {
		entry.tup = ev.Tuple
		if data, err := tuple.MarshalTupleJSON(ev.Tuple); err == nil {
			entry.tJSON = data
		}
	}
	g.ring.append(entry)
	g.mu.Lock()
	conns := make([]*conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	for _, c := range conns {
		c.deliver(entry, false)
	}
}

// seqNow reads the current gateway sequence.
func (g *Gateway) seqNow() uint64 {
	g.evMu.Lock()
	defer g.evMu.Unlock()
	return g.gseq
}

// serverSub is one client subscription on one connection.
type serverSub struct {
	id  uint64
	tpl tuple.Template
	// dseq is the per-subscription delivery sequence: every matched
	// event consumes one number whether it was queued or dropped, so a
	// client-observed dseq gap equals the number of matched events shed
	// to the bounded queue in between. Guarded by conn.mu.
	dseq  uint64
	drops atomic.Uint64 // cumulative events lost to the bounded queue
}

// conn is one client connection: a reader goroutine handling RPCs, a
// writer goroutine draining the bounded outbound queue, and the
// subscription set events fan into.
type conn struct {
	gw *Gateway
	nc net.Conn

	// out carries encoded frames to the writer. Responses are enqueued
	// blocking (backpressure stalls only this client's own RPCs);
	// events are enqueued non-blocking and dropped with accounting
	// when the client reads too slowly.
	out chan []byte

	mu      sync.Mutex
	subs    map[uint64]*serverSub
	nextSub uint64

	closeOnce sync.Once
	closec    chan struct{}
}

func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.closec)
		_ = c.nc.Close()
		c.gw.mu.Lock()
		_, tracked := c.gw.conns[c]
		delete(c.gw.conns, c)
		c.gw.mu.Unlock()
		if tracked {
			c.gw.stats.clients.Add(-1)
			c.mu.Lock()
			n := len(c.subs)
			c.subs = map[uint64]*serverSub{}
			c.mu.Unlock()
			c.gw.stats.subscriptions.Add(-int64(n))
		}
	})
}

func (c *conn) readLoop() {
	defer c.gw.wg.Done()
	defer c.close()
	for {
		var req Request
		if err := ReadFrame(c.nc, &req); err != nil {
			return
		}
		resp, fatal := c.handle(req)
		if fatal {
			return
		}
		if resp == nil {
			continue // already enqueued (subscribe orders it before replay)
		}
		resp.Seq = req.Seq
		if !c.enqueueResponse(*resp) {
			return
		}
	}
}

func (c *conn) writeLoop() {
	defer c.gw.wg.Done()
	defer c.close()
	for {
		select {
		case buf := <-c.out:
			_ = c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
			if _, err := c.nc.Write(buf); err != nil {
				return
			}
		case <-c.closec:
			return
		}
	}
}

// enqueueResponse queues one response frame, blocking (a client's own
// RPC traffic backpressures only itself). False means the connection
// closed.
func (c *conn) enqueueResponse(resp Response) bool {
	buf, err := EncodeFrame(Frame{Resp: &resp})
	if err != nil {
		c.gw.logf("gateway: encode response", "err", err)
		return false
	}
	select {
	case c.out <- buf:
		return true
	case <-c.closec:
		return false
	}
}

// handle dispatches one request. A nil response means the handler
// already enqueued its own; fatal means the connection must close.
func (c *conn) handle(req Request) (resp *Response, fatal bool) {
	switch req.Op {
	case OpPing:
		return &Response{OK: true, Epoch: c.gw.epoch, NextSeq: c.gw.seqNow()}, false
	case OpInject:
		r := c.handleInject(req)
		return &r, false
	case OpRead:
		r := c.handleRead(req)
		return &r, false
	case OpSubscribe:
		return c.handleSubscribe(req)
	case OpUnsubscribe:
		c.mu.Lock()
		_, ok := c.subs[req.Sub]
		delete(c.subs, req.Sub)
		c.mu.Unlock()
		if ok {
			c.gw.stats.subscriptions.Add(-1)
		}
		return &Response{OK: true}, false
	default:
		return &Response{Err: fmt.Sprintf("gateway: unknown op %q", req.Op)}, false
	}
}

func (c *conn) handleInject(req Request) Response {
	if req.Kind == "" {
		return Response{Err: "gateway: inject without kind"}
	}
	if err := req.Content.Validate(); err != nil {
		return Response{Err: fmt.Sprintf("gateway: inject: %v", err)}
	}
	t, err := c.gw.cfg.Registry.New(req.Kind, tuple.ID{}, req.Content)
	if err != nil {
		return Response{Err: fmt.Sprintf("gateway: inject: %v", err)}
	}
	id, err := c.gw.node.Inject(t)
	if err != nil {
		return Response{Err: fmt.Sprintf("gateway: inject: %v", err)}
	}
	c.gw.stats.injects.Add(1)
	return Response{OK: true, ID: id.String()}
}

func (c *conn) handleRead(req Request) Response {
	tpl, err := decodeTemplate(req.Template)
	if err != nil {
		return Response{Err: fmt.Sprintf("gateway: read: %v", err)}
	}
	var out []json.RawMessage
	for _, t := range c.gw.node.Read(tpl) {
		data, err := tuple.MarshalTupleJSON(t)
		if err != nil {
			continue
		}
		out = append(out, data)
	}
	c.gw.stats.reads.Add(1)
	return Response{OK: true, Tuples: out}
}

// handleSubscribe installs the subscription and performs seq-based
// replay. Lock order matters for the no-gap guarantee: taking c.mu
// blocks live fan-out to this connection while the ring snapshot is
// queued, so a concurrent event is either in the snapshot or delivered
// live afterwards — possibly both (the client dedups by gseq), never
// neither. Everything queued under c.mu is queued NON-blocking: the
// evMu-holding fan-out path (onEvent → deliver) waits on c.mu, so
// blocking here on one wedged client would stall event dispatch for
// every client on the gateway and the engine goroutine behind it. A
// true second return closes the connection (its queue could not take
// even the ack — the client is not reading).
func (c *conn) handleSubscribe(req Request) (*Response, bool) {
	tpl, err := decodeTemplate(req.Template)
	if err != nil {
		return &Response{Err: fmt.Sprintf("gateway: subscribe: %v", err)}, false
	}
	// seqNow takes evMu; read it before c.mu to respect the evMu→c.mu
	// lock order the live fan-out path (onEvent→deliver) establishes.
	seqAt := c.gw.seqNow()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSub++
	sub := &serverSub{id: c.nextSub, tpl: tpl}
	c.subs[sub.id] = sub
	c.gw.stats.subscriptions.Add(1)

	resp := Response{OK: true, Sub: sub.id, Epoch: c.gw.epoch, NextSeq: seqAt}
	wantReplay := req.FromSeq > 0 || req.Epoch != ""
	from := req.FromSeq
	sameEpoch := req.Epoch == "" || req.Epoch == c.gw.epoch
	if !sameEpoch {
		// The requested continuation is from a previous instance: its
		// sequence numbers mean nothing here. Replay this instance's
		// whole retained history so the client can rebuild.
		from = 0
	}
	entries, complete := c.gw.ring.since(from)
	if wantReplay {
		if sameEpoch && complete {
			resp.Replay = ReplayHit
			c.gw.stats.replayHits.Add(1)
		} else {
			resp.Replay = ReplayMiss
			c.gw.stats.replayMisses.Add(1)
		}
	}
	// The acknowledgement must precede the replayed events on the wire
	// (the client routes events by the sub id the ack carries), and both
	// must be queued under c.mu so live fan-out cannot interleave a gap.
	resp.Seq = req.Seq
	buf, err := EncodeFrame(Frame{Resp: &resp})
	if err != nil {
		c.gw.logf("gateway: encode response", "err", err)
		return nil, true
	}
	select {
	case c.out <- buf:
	default:
		// The outbound queue is already full before the ack could be
		// queued: this client stopped reading. Close it rather than
		// block under c.mu, which the fan-out path for every other
		// client needs.
		return nil, true
	}
	for _, e := range entries {
		if c.enqueueLocked(sub, e, true) {
			c.gw.stats.replayEvents.Add(1)
		}
	}
	return nil, false
}

// deliver fans one event into every matching subscription queue.
func (c *conn) deliver(e ringEntry, replay bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sub := range c.subs {
		c.enqueueLocked(sub, e, replay)
	}
}

// enqueueLocked queues one event frame for sub, dropping with
// accounting when the client's queue is full. Callers hold c.mu.
func (c *conn) enqueueLocked(sub *serverSub, e ringEntry, replay bool) bool {
	if !matchEntry(sub.tpl, e) {
		return false
	}
	sub.dseq++
	ev := Event{
		Type:   e.typ,
		Sub:    sub.id,
		GSeq:   e.seq,
		DSeq:   sub.dseq,
		Drops:  sub.drops.Load(),
		Peer:   e.peer,
		Tuple:  e.tJSON,
		Replay: replay,
	}
	buf, err := EncodeFrame(Frame{Event: &ev})
	if err != nil {
		c.gw.logf("gateway: encode event", "err", err)
		return false
	}
	select {
	case c.out <- buf:
		c.gw.stats.delivered.Add(1)
		return true
	default:
		sub.drops.Add(1)
		c.gw.stats.dropped.Add(1)
		return false
	}
}

// matchEntry applies a subscription template to a retained event. For
// tuple events the template matches the tuple; synthesized neighbor
// tuples go through the same path (the paper's "any event … can be
// represented as a tuple").
func matchEntry(tpl tuple.Template, e ringEntry) bool {
	if e.tup == nil {
		return false
	}
	return tpl.Matches(e.tup)
}
