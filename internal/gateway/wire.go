// Package gateway is the client-facing serving surface of a TOTA node:
// a length-prefixed JSON-over-TCP RPC (Inject / Read / Subscribe /
// Unsubscribe) that multiplexes thousands of lightweight, non-peer
// clients onto one middleware instance. Clients never speak the TOTA
// wire protocol — they hit a gateway, the gateway speaks TOTA — which
// is the "millions of users" deployment shape: users connect to
// gateways, gateways participate in the tuple space.
//
// Subscriptions are compiled onto the engine's event interface
// (core.Node.Subscribe). Every event a gateway observes is assigned a
// monotonic per-gateway sequence number and retained in a bounded
// replay ring, so a reconnecting client can ask for replay-from-seq
// and close the gap it missed; each client connection owns a bounded
// outbound queue with explicit slow-consumer drop accounting, so a
// stalled reader can never wedge the engine's dispatch path and never
// loses events silently.
package gateway

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"tota/internal/tuple"
)

// MaxFrameBytes bounds one length-prefixed frame in either direction;
// oversized frames are a protocol error and close the connection.
const MaxFrameBytes = 1 << 20

// Request operations.
const (
	OpInject      = "inject"
	OpRead        = "read"
	OpSubscribe   = "subscribe"
	OpUnsubscribe = "unsubscribe"
	OpPing        = "ping"
)

// Replay outcomes reported in a subscribe acknowledgement.
const (
	// ReplayHit: the ring covered (from_seq, now] in the requested
	// epoch; the missed events were queued before any newer ones.
	ReplayHit = "hit"
	// ReplayMiss: the requested continuation is impossible — the epoch
	// changed (gateway restarted) or the ring already evicted part of
	// the range. Whatever the ring still holds was queued, but the
	// client must treat its prior state as unreliable and resync.
	ReplayMiss = "miss"
)

// Request is one client→gateway RPC call, correlated by Seq (a
// client-assigned number echoed on the response).
type Request struct {
	Op  string `json:"op"`
	Seq uint64 `json:"seq"`

	// Inject: the tuple to create, as kind + content. The gateway node
	// assigns the network id.
	Kind    string        `json:"kind,omitempty"`
	Content tuple.Content `json:"content,omitempty"`

	// Read and Subscribe: the query template (MarshalTemplateJSON
	// form). An absent template matches everything.
	Template json.RawMessage `json:"template,omitempty"`

	// Subscribe: resume after the given per-gateway event sequence in
	// the given epoch. FromSeq 0 with an empty epoch is a fresh
	// subscription replaying the whole ring.
	FromSeq uint64 `json:"from_seq,omitempty"`
	Epoch   string `json:"epoch,omitempty"`

	// Unsubscribe: the server-side subscription id to drop.
	Sub uint64 `json:"sub,omitempty"`
}

// Response is the gateway's answer to one Request.
type Response struct {
	Seq uint64 `json:"seq"`
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	// Inject: the assigned tuple id.
	ID string `json:"id,omitempty"`

	// Read: the matching tuples (MarshalTupleJSON documents).
	Tuples []json.RawMessage `json:"tuples,omitempty"`

	// Subscribe: the server-side subscription id, the gateway's epoch
	// (one instance lifetime; changes across restarts), the gateway
	// event sequence at subscribe time, and the replay outcome when
	// FromSeq/Epoch requested a continuation.
	Sub     uint64 `json:"sub,omitempty"`
	Epoch   string `json:"epoch,omitempty"`
	NextSeq uint64 `json:"next_seq,omitempty"`
	Replay  string `json:"replay,omitempty"`
}

// Event is one subscription delivery. GSeq is the per-gateway sequence
// of the underlying engine event — the replay/dedup coordinate, global
// across all subscriptions. DSeq is the per-subscription delivery
// sequence: it counts only events matching the subscription's
// template, starting at 1 on each (re)subscribe. Gap-vs-drop
// verification runs in DSeq space, because a filtered subscription
// legitimately skips GSeq values held by non-matching events. Drops is
// the cumulative number of events this server-side subscription has
// lost to its bounded queue, so a client can verify that any DSeq gap
// it observes is accounted for rather than silent.
type Event struct {
	Type   string          `json:"ev"`
	Sub    uint64          `json:"sub"`
	GSeq   uint64          `json:"gseq"`
	DSeq   uint64          `json:"dseq,omitempty"`
	Drops  uint64          `json:"drops,omitempty"`
	Peer   string          `json:"peer,omitempty"`
	Tuple  json.RawMessage `json:"tuple,omitempty"`
	Replay bool            `json:"replay,omitempty"`
}

// Frame is one gateway→client message: exactly one of Resp or Event is
// set, so the client can demux responses from asynchronous deliveries.
type Frame struct {
	Resp  *Response `json:"resp,omitempty"`
	Event *Event    `json:"event,omitempty"`
}

// ErrFrameTooLarge reports a frame over MaxFrameBytes in either
// direction.
var ErrFrameTooLarge = errors.New("gateway: frame exceeds size bound")

// EncodeFrame renders v as one length-prefixed JSON frame: a 4-byte
// big-endian payload length followed by the payload.
func EncodeFrame(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	return buf, nil
}

// WriteFrame encodes v and writes the frame to w.
func WriteFrame(w io.Writer, v any) error {
	buf, err := EncodeFrame(v)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame from r and unmarshals it
// into v. Oversized length prefixes fail before any allocation.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("gateway: truncated frame: %w", err)
	}
	return json.Unmarshal(body, v)
}

// decodeTemplate resolves a request's template field; absent means
// match-all.
func decodeTemplate(raw json.RawMessage) (tuple.Template, error) {
	if len(raw) == 0 {
		return tuple.MatchAll(), nil
	}
	return tuple.UnmarshalTemplateJSON(raw)
}
