package core

import "tota/internal/tuple"

// Op enumerates the operations an access-control policy can rule on —
// the §6 requirement to "integrate proper access control to rule
// accesses to distributed tuples and their updates".
type Op int

// Controlled operations.
const (
	// OpInject is a local component injecting a tuple.
	OpInject Op = iota + 1
	// OpRead is a local component reading tuples (denied tuples are
	// filtered from results and never delivered to subscriptions).
	OpRead
	// OpDelete is a local component extracting tuples.
	OpDelete
	// OpRetract is a local component tearing down a structure.
	OpRetract
	// OpAccept is the engine accepting a tuple arriving from a
	// neighbor (denied tuples are neither stored nor re-propagated).
	OpAccept
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpInject:
		return "inject"
	case OpRead:
		return "read"
	case OpDelete:
		return "delete"
	case OpRetract:
		return "retract"
	case OpAccept:
		return "accept"
	default:
		return "unknown-op"
	}
}

// Policy authorizes operations on tuples. requester is the local node
// for API operations and the one-hop sender for OpAccept. Policies see
// only what the wire carries: one-hop identities are trusted, as in the
// paper's prototype (no cryptographic origin authentication).
type Policy interface {
	Allow(op Op, requester tuple.NodeID, t tuple.Tuple) bool
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(op Op, requester tuple.NodeID, t tuple.Tuple) bool

var _ Policy = PolicyFunc(nil)

// Allow implements Policy.
func (f PolicyFunc) Allow(op Op, requester tuple.NodeID, t tuple.Tuple) bool {
	return f(op, requester, t)
}

// WithPolicy installs an access-control policy on a node. Without one,
// everything is allowed.
func WithPolicy(p Policy) Option {
	return optionFunc(func(c *Config) { c.Policy = p })
}

func (n *Node) allow(op Op, requester tuple.NodeID, t tuple.Tuple) bool {
	if n.cfg.Policy == nil {
		return true
	}
	if n.cfg.Policy.Allow(op, requester, t) {
		return true
	}
	n.stats.Denied.Add(1)
	ev := TraceEvent{Kind: TraceDeny, From: requester}
	if t != nil {
		ev.ID = t.ID()
		ev.TupleKind = t.Kind()
	}
	n.traceLocked(ev)
	return false
}
