package core

import (
	"sort"

	"tota/internal/agg"
	"tota/internal/tuple"
	"tota/internal/wire"
)

// In-network aggregation: an agg.Query tuple propagates like any
// maintained gradient, and the parent link each stored copy keeps is
// reused as a convergecast tree edge. The engine adds the epoch clock
// on top of the refresh cycle:
//
//   - Each refresh, every source query increments its epoch and floods
//     a compact MsgQuery wave down the structure (each storing node
//     re-broadcasts it once per epoch, hop-bounded).
//   - Each refresh, every non-source storing node folds its local
//     matching tuples with the fresh partials staged from its children
//     and unicasts one MsgPartial up its parent link (collect-all mode
//     forwards one record per origin instead — the naive baseline).
//   - Child partials are overwrite-staged by (child, origin) key, so a
//     duplicated or re-propagated frame lands on the same slot and the
//     fold stays duplicate-insensitive for the exact aggregates;
//     CountDistinct additionally rides a bitwise-OR sketch that ignores
//     duplication entirely.
//   - A staged partial whose epoch falls more than staleEpochs plus the
//     suspicion grace window behind the node's current epoch is pruned:
//     a crashed child times out of the fold instead of stalling it.
//
// Results pipeline upward one hop per epoch (TAG-style), so the source
// converges after roughly depth epochs and every epoch thereafter
// reflects the network one refresh ago.

// aggKey identifies one staged child contribution: the child link it
// arrived on plus, in collect-all mode, the origin record it reports
// (zero origin in combining mode).
type aggKey struct {
	child  tuple.NodeID
	origin tuple.ID
}

// stagedPartial is a child's latest contribution and the epoch it was
// computed on.
type stagedPartial struct {
	epoch uint32
	p     agg.Partial
}

// queryState is the per-query convergecast bookkeeping at one node.
type queryState struct {
	// epoch is the newest epoch wave heard (at the source: the current
	// epoch, advanced locally on refresh).
	epoch uint32
	// staged holds the children's latest partials, overwrite-staged.
	staged map[aggKey]stagedPartial
	// keyScratch is the reusable sorted-fold key buffer.
	keyScratch []aggKey
	// result is the latest fold computed here (meaningful at sources,
	// where it is the query answer).
	result     agg.Result
	haveResult bool
}

// originRec is one collect-all record: a single origin's contribution.
type originRec struct {
	origin tuple.ID
	p      agg.Partial
}

// queryStateFor returns (allocating on first use) the convergecast
// state of one query.
func (n *Node) queryStateFor(id tuple.ID) *queryState {
	qs, ok := n.queries[id]
	if !ok {
		if n.queries == nil {
			n.queries = make(map[tuple.ID]*queryState)
		}
		qs = &queryState{}
		n.queries[id] = qs
	}
	return qs
}

// dropQueryStateLocked forgets a query's convergecast state (retraction
// or lease expiry tore the structure down).
func (n *Node) dropQueryStateLocked(id tuple.ID) {
	if n.queries != nil {
		delete(n.queries, id)
	}
}

// aggQueryOf returns the locally known query tuple behind a seen id, if
// any: the stored copy, or the retained exemplar after a withdrawal.
// Gating on it bounds query state to ids that verifiably are queries —
// a hostile wave naming an arbitrary id allocates nothing.
func aggQueryOf(st *tupleState) (*agg.Query, bool) {
	if q, ok := st.local.(*agg.Query); ok {
		return q, true
	}
	if q, ok := st.exemplar.(*agg.Query); ok {
		return q, true
	}
	return nil, false
}

// handleQueryLocked processes an epoch wave: adopt a newer epoch and
// re-broadcast the wave once, hop-bounded, if this node carries the
// query structure.
func (n *Node) handleQueryLocked(from tuple.NodeID, msg *wire.Message) {
	n.stats.QueriesIn.Add(1)
	st := n.states.lookup(msg.ID)
	if st == nil || st.has(stRetracted) {
		return
	}
	if _, isQ := aggQueryOf(st); !isQ {
		return
	}
	qs := n.queryStateFor(msg.ID)
	if msg.Epoch <= qs.epoch {
		return
	}
	qs.epoch = msg.Epoch
	if !st.has(stStored) || st.has(stSource) {
		return
	}
	hop := int(msg.Hop) + 1
	if hop > n.cfg.MaxHops {
		return
	}
	n.sendMsgLocked("", wire.Message{
		Type: wire.MsgQuery, ID: msg.ID, Epoch: msg.Epoch, Hop: clampHop(hop),
	})
}

// handlePartialLocked overwrite-stages a child's contribution. Staging
// is keyed (child, origin), so the duplication and re-delivery the
// fault layer injects cannot double-count: a repeated frame lands on
// the slot its original already occupies.
func (n *Node) handlePartialLocked(from tuple.NodeID, msg *wire.Message) {
	n.stats.PartialsIn.Add(1)
	st := n.states.lookup(msg.ID)
	if st == nil || st.has(stRetracted) {
		return
	}
	if _, isQ := aggQueryOf(st); !isQ {
		return
	}
	qs := n.queryStateFor(msg.ID)
	if msg.Epoch+n.aggStaleLimit() < qs.epoch {
		return
	}
	if qs.staged == nil {
		qs.staged = make(map[aggKey]stagedPartial)
	}
	qs.staged[aggKey{child: from, origin: msg.Origin}] = stagedPartial{epoch: msg.Epoch, p: msg.Partial}
}

// aggStaleLimit is the staged-partial freshness horizon in epochs:
// anti-entropy staleness plus the suspicion grace window, so a child
// that merely lost a few frames survives the fold exactly as long as
// its maintained copy survives suspicion, and a crashed child times out
// right after its copies would be withdrawn.
func (n *Node) aggStaleLimit() uint32 {
	return uint32(staleEpochs + n.cfg.SuspicionEpochs)
}

// aggStageWavesLocked runs the source side of the epoch clock during
// refresh: advance each stored source query's epoch, stage its wave
// into the refresh broadcast flush, and fold the children's partials
// into this epoch's result. Queries are walked in sorted id order so
// floating-point folds are identical across runs and worker counts.
func (n *Node) aggStageWavesLocked() {
	if len(n.aggScratch) == 0 {
		return
	}
	sortTupleIDs(n.aggScratch)
	for _, id := range n.aggScratch {
		st := n.states.lookup(id)
		if st == nil || !st.has(stStored) || !st.has(stSource) {
			continue
		}
		q, ok := st.local.(*agg.Query)
		if !ok {
			continue
		}
		qs := n.queryStateFor(id)
		qs.epoch++
		n.stats.QueryEpochs.Add(1)
		data, err := wire.Encode(wire.Message{Type: wire.MsgQuery, ID: id, Epoch: qs.epoch})
		if err != nil {
			n.noteSendError("query encode", err)
		} else {
			n.stageMsgs = append(n.stageMsgs, data)
		}
		p := n.aggFoldLocked(q, qs)
		qs.result = agg.Result{Op: q.Op, Epoch: qs.epoch, Partial: p}
		qs.haveResult = true
		n.stats.AggResults.Add(1)
		n.traceLocked(TraceEvent{
			Kind: TraceAggResult, ID: id, TupleKind: agg.KindQuery,
			Hop: int(qs.epoch), Value: p.Value(q.Op),
		})
	}
}

// aggFlushPartialsLocked runs the convergecast side of the epoch clock
// during refresh: every stored non-source query with a parent link
// sends its contribution up that link — one combined partial, or one
// record per origin in collect-all mode.
func (n *Node) aggFlushPartialsLocked() {
	for _, id := range n.aggScratch {
		st := n.states.lookup(id)
		if st == nil || !st.has(stStored) || st.has(stSource) || st.parent == "" {
			continue
		}
		q, ok := st.local.(*agg.Query)
		if !ok {
			continue
		}
		qs := n.queryStateFor(id)
		if qs.epoch == 0 {
			// No wave has reached this node yet; partials would carry no
			// usable epoch.
			continue
		}
		if q.Collect {
			for _, r := range n.aggCollectRecsLocked(q, qs) {
				n.stageAggPartialLocked(id, qs.epoch, r.origin, r.p)
			}
		} else {
			n.stageAggPartialLocked(id, qs.epoch, tuple.ID{}, n.aggFoldLocked(q, qs))
		}
		n.flushStagedLocked(st.parent)
	}
}

func (n *Node) stageAggPartialLocked(id tuple.ID, epoch uint32, origin tuple.ID, p agg.Partial) {
	data, err := wire.Encode(wire.Message{
		Type: wire.MsgPartial, ID: id, Epoch: epoch, Origin: origin, Partial: p,
	})
	if err != nil {
		n.noteSendError("partial encode", err)
		return
	}
	n.stats.PartialsOut.Add(1)
	n.stageMsgs = append(n.stageMsgs, data)
}

// aggFoldLocked combines the local matching tuples with the fresh
// staged child partials into one partial — the node's whole-subtree
// summary (and, at the source, the query answer).
func (n *Node) aggFoldLocked(q *agg.Query, qs *queryState) agg.Partial {
	p := agg.NewPartial()
	if q.Collect {
		for _, r := range n.aggCollectRecsLocked(q, qs) {
			p.Combine(r.p)
			n.stats.PartialsCombined.Add(1)
		}
		return p
	}
	n.aggLocalLocked(q, func(_ tuple.ID, v float64) {
		p.Observe(q.Op, v)
	})
	for _, k := range n.aggFreshKeysLocked(qs) {
		p.Combine(qs.staged[k].p)
		n.stats.PartialsCombined.Add(1)
	}
	return p
}

// aggLocalLocked visits every locally stored tuple in the query's
// range, policy-gated like any local read. The query's own structure
// copy never matches itself.
func (n *Node) aggLocalLocked(q *agg.Query, each func(origin tuple.ID, v float64)) {
	for _, t := range n.store.readRaw(q.Sel.Template()) {
		if t.ID() == q.ID() {
			continue
		}
		if !n.allow(OpRead, n.id, t) {
			continue
		}
		v, ok := q.Sel.Sample(t)
		if !ok {
			continue
		}
		each(t.ID(), v)
	}
}

// aggFreshKeysLocked prunes staged entries past the staleness horizon
// (their child crashed, departed, or re-parented elsewhere) and returns
// the surviving keys sorted by (child, origin), fixing the fold order.
func (n *Node) aggFreshKeysLocked(qs *queryState) []aggKey {
	limit := n.aggStaleLimit()
	keys := qs.keyScratch[:0]
	for k, sp := range qs.staged {
		if sp.epoch+limit < qs.epoch {
			delete(qs.staged, k)
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].child != keys[j].child {
			return keys[i].child < keys[j].child
		}
		if keys[i].origin.Node != keys[j].origin.Node {
			return keys[i].origin.Node < keys[j].origin.Node
		}
		return keys[i].origin.Seq < keys[j].origin.Seq
	})
	qs.keyScratch = keys
	return keys
}

// aggCollectRecsLocked builds the collect-all record set: every local
// matching tuple as a single-sample record under its own id, plus every
// fresh record relayed by children, deduplicated by origin (sorted key
// order makes the dedup winner deterministic) and returned sorted.
func (n *Node) aggCollectRecsLocked(q *agg.Query, qs *queryState) []originRec {
	byOrigin := make(map[tuple.ID]agg.Partial)
	n.aggLocalLocked(q, func(origin tuple.ID, v float64) {
		p := agg.NewPartial()
		p.Observe(q.Op, v)
		byOrigin[origin] = p
	})
	for _, k := range n.aggFreshKeysLocked(qs) {
		if k.origin.IsZero() {
			continue // combining-mode leftovers from a mode change
		}
		byOrigin[k.origin] = qs.staged[k].p
	}
	recs := make([]originRec, 0, len(byOrigin))
	for o, p := range byOrigin {
		recs = append(recs, originRec{origin: o, p: p})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].origin.Node != recs[j].origin.Node {
			return recs[i].origin.Node < recs[j].origin.Node
		}
		return recs[i].origin.Seq < recs[j].origin.Seq
	})
	return recs
}

// aggForgetChildLocked drops every staged contribution from a departed
// neighbor: its subtree re-parents elsewhere and re-reports there, so
// keeping the stale slot would double-count until the staleness horizon.
func (n *Node) aggForgetChildLocked(peer tuple.NodeID) {
	for _, qs := range n.queries {
		for k := range qs.staged {
			if k.child == peer {
				delete(qs.staged, k)
			}
		}
	}
}

// resetPullBackoffLocked clears the anti-entropy pull backoff
// accumulated against one neighbor across all tuples. Quarantine
// re-admission calls it: the strikes were earned while the source was
// emitting garbage (its pull responses never decoded, so the backoff
// climbed to its cap), and carrying them past the cooldown would leave
// this node deaf to the healed neighbor's digests for up to the full
// backoff gap.
func (n *Node) resetPullBackoffLocked(from tuple.NodeID) {
	n.states.forEach(func(_ tuple.ID, st *tupleState) {
		if p := st.peer(from); p != nil {
			p.resetBackoff()
		}
	})
}

func sortTupleIDs(ids []tuple.ID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Node != ids[j].Node {
			return ids[i].Node < ids[j].Node
		}
		return ids[i].Seq < ids[j].Seq
	})
}

// AggResult returns the latest convergecast result computed at this
// node for the given query. Sources compute one per refresh epoch; the
// answer converges after roughly one epoch per tree level and from then
// on tracks the network with one refresh of lag.
func (n *Node) AggResult(id tuple.ID) (agg.Result, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	qs, ok := n.queries[id]
	if !ok || !qs.haveResult {
		return agg.Result{}, false
	}
	return qs.result, true
}
