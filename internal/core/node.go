// Package core implements the TOTA middleware node: the paper's TOTA
// ENGINE (tuple storage, propagation, structure maintenance), LOCAL
// TUPLES space, EVENT INTERFACE, and the TOTA API (inject, read, delete,
// subscribe, unsubscribe).
//
// A Node sits on top of a transport.Sender (simulated radio or UDP) and
// implements transport.Handler: the transport feeds it packets and
// neighborhood changes, and the node emits one-hop broadcasts to
// propagate tuples. All state mutation is serialized by a single mutex;
// subscription reactions run outside the lock, so they may call back
// into the API.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"tota/internal/space"
	"tota/internal/transport"
	"tota/internal/tuple"
	"tota/internal/wire"
)

// API errors.
var (
	ErrNilTuple  = errors.New("core: nil tuple")
	ErrClosed    = errors.New("core: node closed")
	ErrForeignID = errors.New("core: tuple already has an id")
	ErrDenied    = errors.New("core: operation denied by policy")
)

// Config collects a node's tunables; zero values select defaults.
type Config struct {
	// Registry resolves tuple kinds for decoding and cloning. Defaults
	// to tuple.DefaultRegistry.
	Registry *tuple.Registry
	// Localizer provides physical positions for spatially-scoped
	// tuples. Defaults to no localization.
	Localizer space.Localizer
	// MaxHops bounds how far any tuple propagates and how large any
	// maintained structure value may grow — the engine-level safety
	// net against pathological propagation rules and count-to-scope
	// divergence in partitioned regions. Defaults to DefaultMaxHops.
	MaxHops int
	// Policy authorizes operations (nil allows everything).
	Policy Policy
	// DisablePoisonedReverse turns off the maintenance parent filter
	// (ablation A1: teardown degenerates to count-to-scope loops).
	DisablePoisonedReverse bool
	// DisableCatchUp turns off unicasting stored tuples to newcomers
	// (ablation A1: joiners rely on later announcements or refresh).
	DisableCatchUp bool
	// SuspicionEpochs is the grace window, in refresh epochs, a stored
	// maintained copy survives after losing all support before it is
	// withdrawn. During the window the node keeps (and keeps announcing)
	// its value, so a transient loss burst or link flap does not trigger
	// a withdraw/re-propagation storm; if support returns in time the
	// suspicion is cancelled with zero churn. 0 withdraws immediately
	// (the pre-suspicion behavior). Suspicion needs a refresh clock: the
	// window is measured against the epochs advanced by Refresh.
	SuspicionEpochs int
	// PullBackoffCap enables capped exponential backoff on anti-entropy
	// pulls, keyed by (neighbor, tuple id): after each unanswered pull
	// the next 2^k-1 digest mentions of the same entry are skipped, with
	// the skip gap capped at PullBackoffCap. A dead or unreachable
	// neighbor therefore induces a decaying, bounded pull sequence
	// instead of one pull per digest. 0 disables backoff (every
	// mismatched digest entry pulls, the pre-backoff behavior). Consumed
	// content from the neighbor resets the key's backoff.
	PullBackoffCap int
	// QuarantineThreshold demotes a packet source after this many
	// consecutive undecodable packets: the engine drops the source's
	// next QuarantineCooldown packets unread, then re-admits it. A
	// successfully decoded packet resets the source's strike count.
	// 0 disables quarantine.
	QuarantineThreshold int
	// QuarantineCooldown is how many packets a quarantined source has
	// dropped before re-admission (default DefaultQuarantineCooldown
	// when QuarantineThreshold is set).
	QuarantineCooldown int
	// MaxFrameBytes bounds the payload size of coalesced batch frames
	// (refresh flushes, newcomer catch-up, pull responses). 0 asks the
	// transport (transport.FrameLimiter) and falls back to
	// DefaultFrameBytes.
	MaxFrameBytes int
	// Tracer, when set, receives every engine decision (see TraceEvent).
	Tracer Tracer
	// TraceSampleRate is the fraction of locally injected tuples that
	// carry a causal trace context on the wire (see WithTraceSampling).
	// 0 disables sampling: announcements stay byte-identical to the
	// untraced protocol and the hot path does no trace work.
	TraceSampleRate float64
	// Logger, when set, receives rate-limited structured logs for
	// swallowed errors (transport send failures, undecodable packets).
	// Each error class logs at occurrence counts 1, 2, 4, 8, … so a
	// flapping link cannot flood the log.
	Logger *slog.Logger
}

// DefaultMaxHops is the default engine-level propagation bound.
const DefaultMaxHops = 128

// DefaultFrameBytes is the default batch-frame payload budget, chosen
// to fit a typical UDP datagram under an Ethernet MTU; MTU-aware
// transports override it via transport.FrameLimiter.
const DefaultFrameBytes = 1400

// DefaultQuarantineCooldown is how many packets a quarantined source
// has dropped before re-admission when Config.QuarantineCooldown is
// left zero.
const DefaultQuarantineCooldown = 64

// Option customizes a Node.
type Option interface {
	apply(*Config)
}

type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// WithRegistry sets the tuple kind registry.
func WithRegistry(r *tuple.Registry) Option {
	return optionFunc(func(c *Config) { c.Registry = r })
}

// WithLocalizer sets the localization device.
func WithLocalizer(l space.Localizer) Option {
	return optionFunc(func(c *Config) { c.Localizer = l })
}

// WithMaxHops sets the engine-level propagation bound.
func WithMaxHops(n int) Option {
	return optionFunc(func(c *Config) { c.MaxHops = n })
}

// WithoutPoisonedReverse disables the maintenance parent filter — an
// ablation switch demonstrating why the filter exists (see experiment
// A1); never use it in a deployment.
func WithoutPoisonedReverse() Option {
	return optionFunc(func(c *Config) { c.DisablePoisonedReverse = true })
}

// WithoutCatchUp disables the newcomer catch-up unicast — an ablation
// switch (see experiment A1): joiners then learn existing structures
// only from later value changes or anti-entropy refreshes.
func WithoutCatchUp() Option {
	return optionFunc(func(c *Config) { c.DisableCatchUp = true })
}

// WithSuspicion sets the grace window, in refresh epochs, a maintained
// copy survives without support before being withdrawn (see
// Config.SuspicionEpochs).
func WithSuspicion(epochs int) Option {
	return optionFunc(func(c *Config) { c.SuspicionEpochs = epochs })
}

// WithPullBackoff enables capped exponential backoff on anti-entropy
// pulls with the given skip-gap cap (see Config.PullBackoffCap).
func WithPullBackoff(cap int) Option {
	return optionFunc(func(c *Config) { c.PullBackoffCap = cap })
}

// WithQuarantine demotes packet sources after threshold consecutive
// undecodable packets, dropping their next cooldownPackets packets
// unread (see Config.QuarantineThreshold; cooldownPackets 0 selects
// DefaultQuarantineCooldown).
func WithQuarantine(threshold, cooldownPackets int) Option {
	return optionFunc(func(c *Config) {
		c.QuarantineThreshold = threshold
		c.QuarantineCooldown = cooldownPackets
	})
}

// WithLogger installs a structured logger for rate-limited error
// reporting (send failures, undecodable packets).
func WithLogger(l *slog.Logger) Option {
	return optionFunc(func(c *Config) { c.Logger = l })
}

// WithMaxFrameBytes overrides the batch-frame payload budget, e.g. to
// force chunking in tests or match an unusual link MTU.
func WithMaxFrameBytes(n int) Option {
	return optionFunc(func(c *Config) { c.MaxFrameBytes = n })
}

// Node is one TOTA middleware instance.
type Node struct {
	// cfg is the resolved configuration, shared (never copied, never
	// mutated after construction) so a million identically-configured
	// emulated nodes store it once. See NewConfig/NewShared.
	cfg *Config
	tr  transport.Sender
	id  tuple.NodeID
	// localizer is the node's own position source. It starts as
	// cfg.Localizer but lives outside the shared Config because it is
	// the one per-node piece of configuration: an emulated node's
	// position closure differs node to node (see SetLocalizer).
	localizer space.Localizer

	mu    sync.Mutex
	seq   uint64
	epoch uint64
	now   float64
	// store is the local tuple space, embedded by value: its indexes
	// allocate lazily (see store.go), so an idle node pays nothing.
	store store
	// states is the per-tuple bookkeeping slab (see statetab.go): dense
	// tupleState values behind int32 handles, replacing the old
	// map[tuple.ID]*tupleState and its per-entry allocations.
	states stateTable
	// nbrs is the one-hop neighborhood, kept sorted: neighborhoods are
	// small (a radio's degree), so a sorted slice beats a map on both
	// memory and scan cost, and gives deterministic iteration for free.
	nbrs []tuple.NodeID
	// wirePool recycles announcement encodings (see wirepool.go),
	// allocated on the first recycled buffer — under a zero-copy
	// transport it stays nil and costs one pointer. recycleWire reports
	// that the transport releases payload bytes before Send/Broadcast
	// returns (transport.PayloadReleaser), making it safe to reuse
	// buffers that were already put on the wire.
	wirePool    *wirePool
	recycleWire bool
	// subs is kept sorted by subscription id (ids are assigned
	// monotonically, so appends preserve the order) and dispatch relies
	// on that to fire reactions in registration order without sorting.
	subs          []*subscription
	nextSub       SubID
	pending       []Event
	pendingTraces []TraceEvent
	stats         atomicStats
	// idScratch is the reusable id snapshot buffer for the refresh,
	// sweep, and catch-up loops (all run under mu, never nested).
	idScratch []tuple.ID
	// ctxScratch is the reusable hook context handed out by ctxLocked:
	// at most one engine-created Ctx is ever live (all hook pipelines
	// run sequentially under mu), so per-packet contexts need not
	// allocate. Hooks must not retain the pointer past their call.
	ctxScratch tuple.Ctx
	// frameLimit is the batch-frame payload budget resolved at
	// construction (Config.MaxFrameBytes, transport.FrameLimiter, or
	// DefaultFrameBytes).
	frameLimit int
	// stageMsgs accumulates pre-encoded outgoing messages between a
	// staging pass (refresh, catch-up, pull response) and its flush into
	// coalesced frames; reused across flushes.
	stageMsgs [][]byte
	// digestScratch accumulates the refresh epoch's digest entries.
	digestScratch []wire.DigestEntry
	// pullScratch accumulates the tuple ids to pull from one digest's
	// sender.
	pullScratch []tuple.ID
	// decodeScratch is the reusable incoming-message buffer (used under
	// mu): steady-state digest and batch deliveries reuse its slice
	// capacity instead of allocating per packet.
	decodeScratch wire.Message
	// decodeStrikes and quarantined are the corrupt-frame quarantine
	// state (allocated only when Config.QuarantineThreshold > 0):
	// consecutive decode errors per source, and remaining packets to
	// drop per quarantined source.
	decodeStrikes map[tuple.NodeID]int
	quarantined   map[tuple.NodeID]int
	// queries is the per-query convergecast state (allocated lazily on
	// the first aggregation query seen; see aggregate.go).
	queries map[tuple.ID]*queryState
	// aggScratch accumulates the refresh epoch's stored query ids.
	aggScratch []tuple.ID
}

var _ transport.Handler = (*Node)(nil)

// New creates a middleware node on top of the given transport endpoint.
// The caller must subsequently route the transport's packets and
// neighbor events into the node (it implements transport.Handler).
func New(tr transport.Sender, opts ...Option) *Node {
	return NewShared(tr, NewConfig(opts...))
}

// NewConfig resolves opts into a complete Config with every default
// applied. The result is what New builds internally; it exists so that
// emulations creating many identically-configured nodes can resolve
// the options once and share the frozen Config across nodes via
// NewShared (at 100k+ nodes the per-node Config copy is measurable).
func NewConfig(opts ...Option) *Config {
	cfg := &Config{
		Registry:  tuple.DefaultRegistry,
		Localizer: space.NoLocalizer{},
		MaxHops:   DefaultMaxHops,
	}
	for _, o := range opts {
		o.apply(cfg)
	}
	if cfg.Registry == nil {
		cfg.Registry = tuple.DefaultRegistry
	}
	if cfg.Localizer == nil {
		cfg.Localizer = space.NoLocalizer{}
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if cfg.QuarantineThreshold > 0 && cfg.QuarantineCooldown <= 0 {
		cfg.QuarantineCooldown = DefaultQuarantineCooldown
	}
	return cfg
}

// NewShared creates a node borrowing an already-resolved configuration
// (see NewConfig). The node keeps the pointer: the caller must not
// mutate cfg afterwards. Nodes of one emulation all share one Config
// this way instead of carrying a private copy each.
func NewShared(tr transport.Sender, cfg *Config) *Node {
	frameLimit := cfg.MaxFrameBytes
	if frameLimit <= 0 {
		if fl, ok := tr.(transport.FrameLimiter); ok {
			frameLimit = fl.FramePayloadLimit()
		}
	}
	if frameLimit <= 0 {
		frameLimit = DefaultFrameBytes
	}
	n := &Node{
		cfg:        cfg,
		tr:         tr,
		id:         tr.Self(),
		localizer:  cfg.Localizer,
		frameLimit: frameLimit,
	}
	if n.localizer == nil {
		n.localizer = space.NoLocalizer{}
	}
	n.store.init(cfg.Registry)
	if pr, ok := tr.(transport.PayloadReleaser); ok {
		n.recycleWire = pr.ReleasesPayloads()
	}
	for _, nb := range tr.Neighbors() {
		n.addNbrLocked(nb)
	}
	return n
}

// linkedLocked reports whether peer is currently a one-hop neighbor.
func (n *Node) linkedLocked(peer tuple.NodeID) bool {
	_, ok := n.nbrIdxLocked(peer)
	return ok
}

func (n *Node) nbrIdxLocked(peer tuple.NodeID) (int, bool) {
	lo, hi := 0, len(n.nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.nbrs[mid] < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.nbrs) && n.nbrs[lo] == peer
}

// addNbrLocked inserts peer into the sorted neighborhood, reporting
// whether it was new.
func (n *Node) addNbrLocked(peer tuple.NodeID) bool {
	i, ok := n.nbrIdxLocked(peer)
	if ok {
		return false
	}
	n.nbrs = append(n.nbrs, "")
	copy(n.nbrs[i+1:], n.nbrs[i:])
	n.nbrs[i] = peer
	return true
}

// removeNbrLocked deletes peer from the neighborhood, reporting whether
// it was present.
func (n *Node) removeNbrLocked(peer tuple.NodeID) bool {
	i, ok := n.nbrIdxLocked(peer)
	if !ok {
		return false
	}
	n.nbrs = append(n.nbrs[:i], n.nbrs[i+1:]...)
	return true
}

// Self returns the node's identity.
func (n *Node) Self() tuple.NodeID { return n.id }

// Position returns the node's physical position, if a localization
// device is present.
func (n *Node) Position() (space.Point, bool) {
	return n.localizer.Position()
}

// SetLocalizer replaces the node's position source. It exists for
// callers sharing one Config across many nodes (see NewShared), where
// the localizer is the only per-node piece of configuration. Call it
// right after construction, before the node handles any traffic.
func (n *Node) SetLocalizer(l space.Localizer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l == nil {
		l = space.NoLocalizer{}
	}
	n.localizer = l
}

// Neighbors returns the node's view of its one-hop neighborhood.
func (n *Node) Neighbors() []tuple.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]tuple.NodeID, len(n.nbrs))
	copy(out, n.nbrs)
	return out
}

// Inject puts a freshly created tuple into the TOTA network: the node
// assigns it a network-wide id and lets it propagate according to its
// propagation rule. It returns the assigned id.
func (n *Node) Inject(t tuple.Tuple) (tuple.ID, error) {
	if t == nil {
		return tuple.ID{}, ErrNilTuple
	}
	if !t.ID().IsZero() {
		return tuple.ID{}, fmt.Errorf("%w: %s", ErrForeignID, t.ID())
	}
	if err := t.Content().Validate(); err != nil {
		return tuple.ID{}, fmt.Errorf("core: inject: %w", err)
	}
	n.mu.Lock()
	if !n.allow(OpInject, n.id, t) {
		n.mu.Unlock()
		return tuple.ID{}, ErrDenied
	}
	n.seq++
	id := tuple.ID{Node: n.id, Seq: n.seq}
	t.SetID(id)
	n.stats.Injected.Add(1)
	ctx := n.ctxLocked(n.id, 0)
	if inj, ok := t.(tuple.Injectable); ok {
		if t2 := inj.OnInject(ctx); t2 != nil {
			t2.SetID(id)
			t = t2
		}
	}
	n.injectLocked(t, ctx)
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
	return id, nil
}

// Read returns copies of the locally stored tuples matching the
// template, in arrival order. It is the paper's read primitive: purely
// local, non-blocking.
func (n *Node) Read(tpl tuple.Template) []tuple.Tuple {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.readLocked(tpl)
}

func (n *Node) readLocked(tpl tuple.Template) []tuple.Tuple {
	ts := n.store.read(tpl)
	if n.cfg.Policy == nil {
		return ts
	}
	var out []tuple.Tuple
	for _, t := range ts {
		if n.allow(OpRead, n.id, t) {
			out = append(out, t)
		}
	}
	return out
}

// ReadOne returns the first locally stored tuple matching the template.
func (n *Node) ReadOne(tpl tuple.Template) (tuple.Tuple, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.Policy == nil {
		return n.store.readOne(tpl)
	}
	ts := n.readLocked(tpl)
	if len(ts) == 0 {
		return nil, false
	}
	return ts[0], true
}

// Delete extracts the locally stored tuples matching the template and
// returns them. Deleting a locally held maintained structure notifies
// the neighborhood (withdrawal) so the structure repairs or collapses
// around the hole.
func (n *Node) Delete(tpl tuple.Template) []tuple.Tuple {
	n.mu.Lock()
	out := n.deleteLocked(tpl)
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
	return out
}

// Retract tears down a distributed structure network-wide, the
// distributed deletion the paper implements via deleting propagation.
// Typically invoked at the structure's source.
func (n *Node) Retract(id tuple.ID) {
	n.mu.Lock()
	var local tuple.Tuple
	if st := n.states.lookup(id); st != nil {
		local = st.local
	}
	if !n.allow(OpRetract, n.id, local) {
		n.mu.Unlock()
		return
	}
	n.retractLocked(id)
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
}

// Subscribe registers a reaction for events matching the template:
// tuple arrivals/removals whose tuple matches, and neighborhood changes
// when the template matches the synthesized NeighborTupleKind tuples.
func (n *Node) Subscribe(tpl tuple.Template, fn Reaction) SubID {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextSub++
	id := n.nextSub
	n.subs = append(n.subs, &subscription{id: id, tpl: tpl, fn: fn})
	return id
}

// Unsubscribe removes a subscription. Unknown ids are ignored.
func (n *Node) Unsubscribe(id SubID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, sub := range n.subs {
		if sub.id == id {
			n.subs = append(n.subs[:i], n.subs[i+1:]...)
			return
		}
	}
}

// Refresh runs one anti-entropy epoch over every stored propagating
// tuple. Event-driven maintenance alone converges only when packets
// arrive; on lossy radios a periodic Refresh (the emulator's
// RefreshEvery, or any timer) re-seeds lost state so structures still
// converge. Tuples whose announcement changed since their last full
// broadcast are re-sent in full; unchanged tuples are advertised by a
// compact digest, and neighbors pull full bytes only for entries they
// are missing — so steady-state refresh traffic is a handful of
// coalesced frames per node instead of one packet per tuple. It
// returns the number of tuples covered (announced or digested).
func (n *Node) Refresh() int {
	n.mu.Lock()
	count := n.refreshLocked()
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
	return count
}

// SweepExpired advances the node's logical clock to now and removes
// every stored copy whose lease (tuple.Expiring) has elapsed, returning
// the number removed. Drive it from whatever clock the deployment has —
// the emulator calls it once per tick with simulated time.
func (n *Node) SweepExpired(now float64) int {
	n.mu.Lock()
	removed := n.sweepExpiredLocked(now)
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
	return removed
}

// StoreSize returns the number of locally stored tuples (for the memory
// experiments).
func (n *Node) StoreSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.size()
}

// Stats returns a snapshot of the node's counters. It takes no lock:
// the counters are atomics, so telemetry may call it at any time — even
// while a parallel emulation step is mutating other nodes.
func (n *Node) Stats() Stats {
	return n.stats.Snapshot()
}

func sortNodeIDs(ids []tuple.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
