package core_test

import (
	"testing"

	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
	"tota/internal/wire"
)

// TestTombstoneBlocksMaintainedResurrection hand-delivers a stale
// gradient announcement for a retracted structure: the tombstone must
// swallow it even on the maintained path.
func TestTombstoneBlocksMaintainedResurrection(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	mid := tn.node(topology.NodeName(1))
	id, err := tn.node(src).Inject(pattern.NewGradient("f"))
	if err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.node(src).Retract(id)
	tn.quiesce()

	// A stale announcement (as if from a node that missed the retract).
	stale := pattern.NewGradient("f")
	stale.SetID(id)
	stale.Val = 1
	data, err := wire.Encode(wire.Message{Type: wire.MsgTuple, Hop: 1, Tuple: stale})
	if err != nil {
		t.Fatal(err)
	}
	mid.HandlePacket(topology.NodeName(0), data)
	tn.quiesce()
	if got := len(mid.Read(pattern.ByName(pattern.KindGradient, "f"))); got != 0 {
		t.Errorf("tombstoned structure resurrected: %d copies", got)
	}
}

// TestNewcomerDoesNotReceiveLocalTuples checks the catch-up unicast
// respects propagation rules: node-local tuples stay home.
func TestNewcomerDoesNotReceiveLocalTuples(t *testing.T) {
	g := topology.New()
	g.AddNode("a")
	tn := newTestNet(t, g)
	if _, err := tn.node("a").Inject(pattern.NewLocal("private")); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.node("a").Inject(pattern.NewFlood("public")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	ep := tn.sim.Attach("late", nil)
	late := newLateNode(tn, ep)
	tn.sim.Bind("late", late)
	tn.sim.AddEdge("a", "late")
	tn.quiesce()

	if got := len(late.Read(tuple.Match(pattern.KindLocal))); got != 0 {
		t.Error("local tuple leaked to newcomer")
	}
	if got := len(late.Read(tuple.Match(pattern.KindFlood))); got != 1 {
		t.Error("flood not caught up to newcomer")
	}
}

// TestSupersededCopyRepropagates verifies that a better copy arriving
// over a shorter path is passed on (the min-wins wave crosses the
// network even when a slower copy got there first).
func TestSupersededCopyRepropagates(t *testing.T) {
	// Path graph a-b-c plus a slow long way a-x-y-z-c: c first hears
	// the message via the long path (if we cut the short one), then the
	// short path is restored and the better copy must supersede at c
	// AND continue to d beyond it.
	g := topology.New()
	g.AddEdge("a", "b")
	// b-c missing initially
	g.AddEdge("a", "x")
	g.AddEdge("x", "y")
	g.AddEdge("y", "z")
	g.AddEdge("z", "c")
	g.AddEdge("c", "d")
	tn := newTestNet(t, g)

	// Use a Path tuple: Supersedes prefers shorter routes.
	if _, err := tn.node("a").Inject(pattern.NewPath("t")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	long, _ := tn.node("d").ReadOne(pattern.ByName(pattern.KindPath, "t"))
	if got := len(long.(*pattern.Path).Route); got != 6 { // a x y z c d
		t.Fatalf("initial route length = %d, want 6", got)
	}

	tn.sim.AddEdge("b", "c")
	tn.quiesce()
	short, _ := tn.node("d").ReadOne(pattern.ByName(pattern.KindPath, "t"))
	if got := len(short.(*pattern.Path).Route); got != 4 { // a b c d
		t.Errorf("route after shortcut = %v, want length 4", short.(*pattern.Path).Route)
	}
}
