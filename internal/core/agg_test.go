package core_test

import (
	"testing"

	"tota/internal/agg"
	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
	"tota/internal/wire"
)

// injectReading stores one node-local numeric reading at a node.
func injectReading(t *testing.T, tn *testNet, at tuple.NodeID, v float64) tuple.ID {
	t.Helper()
	id, err := tn.node(at).Inject(pattern.NewLocal("reading", tuple.F("v", v)))
	if err != nil {
		t.Fatalf("Inject reading: %v", err)
	}
	return id
}

var readingSel = tuple.Selector{Kind: pattern.KindLocal, Name: "reading", Field: "v"}

// injectQuery injects an aggregation query at src and quiesces the
// structure build.
func injectQuery(t *testing.T, tn *testNet, src tuple.NodeID, q *agg.Query) tuple.ID {
	t.Helper()
	id, err := tn.node(src).Inject(q)
	if err != nil {
		t.Fatalf("Inject query: %v", err)
	}
	tn.quiesce()
	return id
}

func TestAggConvergecastComputesExactAggregates(t *testing.T) {
	g := topology.Line(5)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	vals := []float64{3, -2, 8, 8, 5}
	for i, v := range vals {
		injectReading(t, tn, topology.NodeName(i), v)
	}

	ids := map[agg.Op]tuple.ID{}
	for _, op := range []agg.Op{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg} {
		ids[op] = injectQuery(t, tn, src, agg.NewQuery("q-"+op.String(), op, readingSel))
	}

	// One epoch per tree level plus slack: partials pipeline one hop per
	// refresh.
	for i := 0; i < len(vals)+2; i++ {
		refreshAll(tn)
	}

	want := map[agg.Op]float64{agg.Count: 5, agg.Sum: 22, agg.Min: -2, agg.Max: 8, agg.Avg: 22.0 / 5}
	for op, id := range ids {
		res, ok := tn.node(src).AggResult(id)
		if !ok {
			t.Fatalf("%s: no result", op)
		}
		if res.Value() != want[op] {
			t.Errorf("%s = %v, want %v", op, res.Value(), want[op])
		}
		if res.Partial.Count != 5 {
			t.Errorf("%s: count = %d, want 5", op, res.Partial.Count)
		}
	}

	// The answer keeps tracking the network: a new reading shows up
	// within a few epochs.
	injectReading(t, tn, topology.NodeName(4), 100)
	for i := 0; i < len(vals)+2; i++ {
		refreshAll(tn)
	}
	res, _ := tn.node(src).AggResult(ids[agg.Sum])
	if res.Value() != 122 {
		t.Errorf("sum after new reading = %v, want 122", res.Value())
	}
}

func TestAggCountDistinctSurvivesReplication(t *testing.T) {
	// Every node reports one of only three distinct values; the sketch
	// estimate at the source must track 3, not the node count.
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	for i := 0; i < 16; i++ {
		injectReading(t, tn, topology.NodeName(i), float64(i%3))
	}
	id := injectQuery(t, tn, src, agg.NewQuery("distinct", agg.CountDistinct, readingSel))
	for i := 0; i < 10; i++ {
		refreshAll(tn)
	}
	res, ok := tn.node(src).AggResult(id)
	if !ok {
		t.Fatal("no result")
	}
	if res.Partial.Count != 16 {
		t.Errorf("raw count = %d, want 16", res.Partial.Count)
	}
	if v := res.Value(); v < 2.5 || v > 3.5 {
		t.Errorf("distinct estimate = %v, want ~3", v)
	}
}

func TestAggPartialRedeliveryIsIdempotent(t *testing.T) {
	// Duplicate frames must overwrite their staging slot, not add to it:
	// the duplicate-insensitivity argument for the exact aggregates.
	g := topology.Line(2)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectReading(t, tn, topology.NodeName(0), 10)
	injectReading(t, tn, topology.NodeName(1), 20)
	id := injectQuery(t, tn, src, agg.NewQuery("sum", agg.Sum, readingSel))
	for i := 0; i < 4; i++ {
		refreshAll(tn)
	}
	res, ok := tn.node(src).AggResult(id)
	if !ok || res.Value() != 30 {
		t.Fatalf("baseline sum = %+v, %v (want 30)", res, ok)
	}

	// A fabricated child reports count=1 sum=100 — delivered three
	// times. The fold must absorb exactly one copy.
	p := agg.NewPartial()
	p.Observe(agg.Sum, 100)
	frame, err := wire.Encode(wire.Message{
		Type: wire.MsgPartial, ID: id, Epoch: res.Epoch, Partial: p,
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < 3; i++ {
		tn.node(src).HandlePacket("phantom", frame)
	}
	refreshAll(tn)
	res, _ = tn.node(src).AggResult(id)
	if res.Value() != 130 {
		t.Errorf("sum after triple redelivery = %v, want 130", res.Value())
	}
	if res.Partial.Count != 3 {
		t.Errorf("count after triple redelivery = %d, want 3", res.Partial.Count)
	}
}

func TestAggCrashedChildTimesOutOfFold(t *testing.T) {
	// When a subtree goes silent its last partial must age out of the
	// parent's fold (staleness horizon = anti-entropy staleness plus the
	// suspicion window) instead of freezing into the result forever.
	g := topology.Line(3)
	tn := newTestNet(t, g, core.WithSuspicion(2))
	src := topology.NodeName(0)
	vals := []float64{1, 2, 4}
	for i, v := range vals {
		injectReading(t, tn, topology.NodeName(i), v)
	}
	id := injectQuery(t, tn, src, agg.NewQuery("sum", agg.Sum, readingSel))
	for i := 0; i < 5; i++ {
		refreshAll(tn)
	}
	if res, _ := tn.node(src).AggResult(id); res.Value() != 7 {
		t.Fatalf("pre-crash sum = %v, want 7", res.Value())
	}

	// Silence the far node both ways: its partials stop flowing but no
	// neighbor event fires — the pure timeout path.
	far, mid := topology.NodeName(2), topology.NodeName(1)
	tn.sim.SetLinkLoss(far, mid, 1)
	tn.sim.SetLinkLoss(mid, far, 1)
	for i := 0; i < 8; i++ {
		refreshAll(tn)
	}
	res, ok := tn.node(src).AggResult(id)
	if !ok {
		t.Fatal("result vanished")
	}
	if res.Value() != 3 {
		t.Errorf("post-crash sum = %v, want 3 (crashed child still counted)", res.Value())
	}
	if res.Partial.Count != 2 {
		t.Errorf("post-crash count = %d, want 2", res.Partial.Count)
	}
}

func TestAggCollectModeMatchesCombiningButCostsMore(t *testing.T) {
	build := func(collect bool) (sum float64, count int64, partials int64) {
		g := topology.Line(4)
		tn := newTestNet(t, g)
		src := topology.NodeName(0)
		for i := 0; i < 4; i++ {
			injectReading(t, tn, topology.NodeName(i), float64(i+1))
		}
		q := agg.NewQuery("sum", agg.Sum, readingSel)
		if collect {
			q = q.CollectAll()
		}
		id := injectQuery(t, tn, src, q)
		for i := 0; i < 7; i++ {
			refreshAll(tn)
		}
		res, ok := tn.node(src).AggResult(id)
		if !ok {
			t.Fatal("no result")
		}
		return res.Value(), res.Partial.Count, tn.totalStats().PartialsOut
	}
	cSum, cCount, combinePartials := build(false)
	aSum, aCount, collectPartials := build(true)
	if cSum != 10 || aSum != 10 || cCount != 4 || aCount != 4 {
		t.Errorf("results differ from oracle: combine (%v,%d) collect (%v,%d)", cSum, cCount, aSum, aCount)
	}
	if collectPartials <= combinePartials {
		t.Errorf("collect-all sent %d partials, combining %d: expected strictly more",
			collectPartials, combinePartials)
	}
}

func TestAggRetractDropsQueryState(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectReading(t, tn, topology.NodeName(1), 5)
	id := injectQuery(t, tn, src, agg.NewQuery("sum", agg.Sum, readingSel))
	for i := 0; i < 4; i++ {
		refreshAll(tn)
	}
	if _, ok := tn.node(src).AggResult(id); !ok {
		t.Fatal("no result before retract")
	}
	tn.node(src).Retract(id)
	tn.quiesce()
	refreshAll(tn)
	if _, ok := tn.node(src).AggResult(id); ok {
		t.Error("result survived retraction")
	}
	for _, nid := range tn.graph.Nodes() {
		if got := tn.node(nid).Read(agg.ByName("sum")); len(got) != 0 {
			t.Errorf("node %s still stores retracted query", nid)
		}
	}
}

// TestFaultQuarantineCooldownResetsPullBackoff is the regression test
// for the pull-backoff × quarantine interaction: strikes accumulated
// against a neighbor while it was corrupt (its pull responses never
// decoded) must be cleared when the quarantine cooldown re-admits it,
// so the healed neighbor's first digests trigger an immediate pull
// instead of being suppressed for the residual backoff gap.
func TestFaultQuarantineCooldownResetsPullBackoff(t *testing.T) {
	g := topology.Line(2)
	a, b := topology.NodeName(0), topology.NodeName(1)
	tn := newTestNet(t, g,
		core.WithoutCatchUp(),
		core.WithPullBackoff(8),
		core.WithQuarantine(3, 4),
	)

	// Phase 1: build backoff at b against a. The inject broadcast and
	// the one full refresh announcement die on a lossy a→b link; after
	// that a advertises only digests. Then the loss flips to b→a so the
	// digests arrive but b's pulls die in flight, and with catch-up
	// disabled the backoff is b's only path — it climbs toward its cap.
	tn.sim.SetLinkLoss(a, b, 1)
	injectGradient(t, tn, a, "f", 1e9)
	refreshAll(tn)
	tn.sim.SetLinkLoss(a, b, -1)
	tn.sim.SetLinkLoss(b, a, 1)
	for i := 0; i < 16; i++ {
		refreshAll(tn)
	}
	if _, have := tn.gradVal(b, pattern.KindGradient, "f"); have {
		t.Fatal("b adopted the gradient through a fully lossy pull path")
	}
	suppressed := tn.node(b).Stats().PullsSuppressed
	if suppressed == 0 {
		t.Fatal("backoff never engaged; the regression scenario needs accumulated strikes")
	}

	// Phase 2: a turns corrupt — three garbage frames quarantine it.
	for i := 0; i < 3; i++ {
		tn.node(b).HandlePacket(a, []byte{0xFF, 0xFF})
	}
	if tn.node(b).Stats().QuarantineEvents != 1 {
		t.Fatalf("quarantine events = %d, want 1", tn.node(b).Stats().QuarantineEvents)
	}

	// Phase 3: drain the cooldown with valid but inert frames (dropped
	// unread), then one more to re-admit the source.
	inert, err := wire.Encode(wire.Message{Type: wire.MsgPull, Want: []tuple.ID{{Node: "z", Seq: 1}}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < 5; i++ {
		tn.node(b).HandlePacket(a, inert)
	}

	// Phase 4: heal the pull path. Without the backoff reset, b's next
	// digest mentions stay suppressed for the residual gap (up to 7
	// epochs at cap 8); with it, the first post-heal digest pulls and b
	// adopts within two epochs.
	tn.sim.SetLinkLoss(b, a, -1)
	before := tn.node(b).Stats().PullsOut
	refreshAll(tn)
	refreshAll(tn)
	if _, have := tn.gradVal(b, pattern.KindGradient, "f"); !have {
		t.Error("b did not adopt the gradient after quarantine cooldown: backoff state leaked across re-admission")
	}
	if tn.node(b).Stats().PullsOut == before {
		t.Error("no pull went out after re-admission")
	}
}
