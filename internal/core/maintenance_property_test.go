package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tota/internal/pattern"
	"tota/internal/topology"
)

// Property: on random connected geometric graphs, a random
// connectivity-preserving perturbation always repairs back to the BFS
// oracle. This is the maintenance algorithm's correctness property,
// sampled far beyond the hand-written topologies.
func TestMaintenanceConvergesOnRandomGraphsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.ConnectedRandomGeometric(22, 8, 3, rng, 100)
		if g == nil {
			return true // no connected layout for this seed; skip
		}
		tn := newTestNet(t, g)
		nodes := g.Nodes()
		src := nodes[rng.Intn(len(nodes))]
		if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
			return false
		}
		tn.quiesce()

		// One random perturbation of each flavor, connectivity allowing.
		for i := 0; i < 3; i++ {
			a := nodes[rng.Intn(len(nodes))]
			nbrs := g.Neighbors(a)
			if len(nbrs) == 0 {
				continue
			}
			b := nbrs[rng.Intn(len(nbrs))]
			g.RemoveEdge(a, b)
			ok := g.Connected()
			g.AddEdge(a, b)
			if ok {
				tn.sim.RemoveEdge(a, b)
				tn.quiesce()
			}
			c := nodes[rng.Intn(len(nodes))]
			d := nodes[rng.Intn(len(nodes))]
			if c != d && !g.HasEdge(c, d) {
				tn.sim.AddEdge(c, d)
				tn.quiesce()
			}
		}
		dist := g.BFSDistances(src)
		for _, id := range g.Nodes() {
			v, have := tn.gradVal(id, pattern.KindGradient, "f")
			want, reachable := dist[id]
			if !reachable {
				if have {
					return false
				}
				continue
			}
			if !have || v != float64(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Regression: seed -3560231259410229777 used to quiesce with one node a
// step above the BFS oracle. During the repair wave a neighbor announced
// (val, parent=victim), then re-parented away without a value change;
// the parent-only re-announcement was suppressed (stParentFlap, and no
// refresh runs here to carry it later), so the victim kept skipping its
// genuinely best support via poisoned reverse forever. maintainLocked
// now probes a skipped row that outbids every usable support with a
// unicast pull, which refreshes the stale parent field event-driven.
func TestMaintenanceStaleParentPoisonProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(-3560231259410229777))
	g := topology.ConnectedRandomGeometric(22, 8, 3, rng, 100)
	if g == nil {
		t.Fatal("seed no longer yields a connected layout")
	}
	tn := newTestNet(t, g)
	nodes := g.Nodes()
	src := nodes[rng.Intn(len(nodes))]
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	for i := 0; i < 3; i++ {
		a := nodes[rng.Intn(len(nodes))]
		nbrs := g.Neighbors(a)
		if len(nbrs) == 0 {
			continue
		}
		b := nbrs[rng.Intn(len(nbrs))]
		g.RemoveEdge(a, b)
		ok := g.Connected()
		g.AddEdge(a, b)
		if ok {
			tn.sim.RemoveEdge(a, b)
			tn.quiesce()
		}
		c := nodes[rng.Intn(len(nodes))]
		d := nodes[rng.Intn(len(nodes))]
		if c != d && !g.HasEdge(c, d) {
			tn.sim.AddEdge(c, d)
			tn.quiesce()
		}
	}
	dist := g.BFSDistances(src)
	for _, id := range g.Nodes() {
		v, have := tn.gradVal(id, pattern.KindGradient, "f")
		want, reachable := dist[id]
		if !reachable {
			if have {
				t.Errorf("%s: unreachable but holds value %v", id, v)
			}
			continue
		}
		if !have || v != float64(want) {
			t.Errorf("%s: val=%v have=%v, oracle says %d", id, v, have, want)
		}
	}
}
