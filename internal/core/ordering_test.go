package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// newShuffledNet builds a test network whose radio delivers each
// round's packets in a seeded random order.
func newShuffledNet(t *testing.T, g *topology.Graph, seed int64) *testNet {
	t.Helper()
	sim := transport.NewSim(g, transport.SimConfig{Shuffle: true, Seed: seed})
	tn := &testNet{t: t, sim: sim, graph: g, nodes: make(map[tuple.NodeID]*core.Node)}
	for _, id := range g.Nodes() {
		id := id
		ep := sim.Attach(id, nil)
		n := core.New(ep, core.WithLocalizer(space.FuncLocalizer(func() (space.Point, bool) {
			return g.Position(id)
		})))
		sim.Bind(id, n)
		tn.nodes[id] = n
	}
	return tn
}

// TestGradientConvergesUnderAnyDeliveryOrder is the §6 "absence of
// critical races" check: the distributed structure must converge to the
// same BFS oracle whatever order the radio delivers packets in, both
// during the initial build and across perturbations.
func TestGradientConvergesUnderAnyDeliveryOrder(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := topology.Grid(5, 5, 1)
			tn := newShuffledNet(t, g, seed)
			src := topology.NodeName(0)
			if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
				t.Fatal(err)
			}
			tn.quiesce()
			tn.assertGradientMatchesBFS(src, "f", math.Inf(1))

			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3; i++ {
				a := topology.NodeName(rng.Intn(25))
				nbrs := g.Neighbors(a)
				if len(nbrs) == 0 {
					continue
				}
				b := nbrs[rng.Intn(len(nbrs))]
				g.RemoveEdge(a, b)
				if !g.Connected() {
					g.AddEdge(a, b)
					continue
				}
				g.AddEdge(a, b)
				tn.sim.RemoveEdge(a, b)
				tn.quiesce()
				tn.sim.AddEdge(a, b)
				tn.quiesce()
			}
			tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
		})
	}
}

// TestDownhillDeliveryUnderAnyOrder checks that message routing is
// order-independent too.
func TestDownhillDeliveryUnderAnyOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := topology.Grid(4, 4, 1)
		tn := newShuffledNet(t, g, seed)
		dst := topology.NodeName(0)
		src := topology.NodeName(15)
		if _, err := tn.node(dst).Inject(pattern.NewGradient("d")); err != nil {
			t.Fatal(err)
		}
		tn.quiesce()
		if _, err := tn.node(src).Inject(pattern.NewDownhill("d").StrictSlope()); err != nil {
			t.Fatal(err)
		}
		tn.quiesce()
		if got := len(tn.node(dst).Read(tuple.Match(pattern.KindDownhill))); got != 1 {
			t.Errorf("seed %d: delivered %d", seed, got)
		}
	}
}

// TestConcurrentAPIUse hammers one node's API from many goroutines
// while packets arrive, for the race detector.
func TestConcurrentAPIUse(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(1))

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Packet pressure from a neighbor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := tn.node(topology.NodeName(0))
		for i := 0; i < 50; i++ {
			if _, err := src.Inject(pattern.NewFlood(fmt.Sprintf("n%d", i))); err != nil {
				t.Error(err)
				return
			}
			tn.sim.Step()
		}
		close(stop)
	}()

	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				switch i % 4 {
				case 0:
					if _, err := n.Inject(pattern.NewLocal(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					n.Read(tuple.Match(pattern.KindFlood))
				case 2:
					sub := n.Subscribe(tuple.MatchAll(), func(core.Event) {})
					n.Unsubscribe(sub)
				case 3:
					n.Neighbors()
					n.Stats()
					n.StoreSize()
				}
			}
		}()
	}
	wg.Wait()
	tn.quiesce()
}
