package core

import (
	"math/bits"

	"tota/internal/tuple"
)

// stateTable is the engine's per-tuple bookkeeping arena: a slab of
// tupleState values indexed by a dense int32 handle, with the id→handle
// map kept only at the boundary. Compared to the map[ID]*tupleState it
// replaced, the slab stores states by value in contiguous chunks, so
// the refresh and digest loops walk packed memory instead of chasing
// one heap pointer per tuple, and a node tracking N tuples costs one
// map entry plus N/chunk slab headers instead of N separate allocations.
//
// Chunks grow geometrically (chunk k holds 1<<k states, so the first
// tuple costs exactly one state and a 1k-tuple node needs 10 chunks),
// and handles, and therefore *tupleState pointers handed out by lookup
// and intern, stay valid for the lifetime of the table: growing appends
// a new chunk and never moves existing states. Handles released back to
// the free list are recycled by the next intern.
//
// Like the tuple space (see store.go), the boundary map is lazy: tables
// of at most stateSmallMax entries resolve ids by scanning the dense
// ids column — at emulation scale almost every node tracks a handful of
// tuples and never allocates the map at all.
type stateTable struct {
	byID   map[tuple.ID]int32 // nil in small mode
	chunks [][]tupleState
	// ids maps handle → id, so slab-order walks recover the key without
	// touching the map. Freed slots hold the zero id (never a real
	// tuple id: inject and decode both require a node component).
	ids  []tuple.ID
	free []int32
	live int
}

// stateSmallMax is the largest table kept without the id→handle map;
// beyond it lookups promote to hashed access. The threshold depends
// only on the table's content, so promotion is deterministic.
const stateSmallMax = 16

// stateChunkFor locates handle h: the chunk index and the slot within
// it. Chunk k spans handles [2^k-1, 2^(k+1)-1).
func stateChunkFor(h int32) (chunk, slot int32) {
	k := int32(bits.Len32(uint32(h)+1)) - 1
	return k, h + 1 - 1<<k
}

func (tab *stateTable) len() int { return tab.live }

// handleOf resolves an id to its live handle: a hash lookup in big
// mode, a linear scan over the dense ids column in small mode.
func (tab *stateTable) handleOf(id tuple.ID) (int32, bool) {
	if tab.byID != nil {
		h, ok := tab.byID[id]
		return h, ok
	}
	for h := range tab.ids {
		if tab.ids[h] == id {
			return int32(h), true
		}
	}
	return 0, false
}

// lookup returns the state tracked for id, or nil. The pointer stays
// valid until the entry is released.
func (tab *stateTable) lookup(id tuple.ID) *tupleState {
	h, ok := tab.handleOf(id)
	if !ok {
		return nil
	}
	return tab.at(h)
}

// at returns the state behind a live handle.
func (tab *stateTable) at(h int32) *tupleState {
	c, s := stateChunkFor(h)
	return &tab.chunks[c][s]
}

// intern returns the state tracked for id, allocating a zero state on
// first sight — recycling a freed slot when one exists, extending the
// slab otherwise.
func (tab *stateTable) intern(id tuple.ID) *tupleState {
	if h, ok := tab.handleOf(id); ok {
		return tab.at(h)
	}
	var h int32
	if n := len(tab.free); n > 0 {
		h = tab.free[n-1]
		tab.free = tab.free[:n-1]
	} else {
		h = int32(len(tab.ids))
		if c, _ := stateChunkFor(h); int(c) == len(tab.chunks) {
			tab.chunks = append(tab.chunks, make([]tupleState, 1<<c))
		}
		tab.ids = append(tab.ids, tuple.ID{})
	}
	tab.ids[h] = id
	tab.live++
	if tab.byID == nil && len(tab.ids) > stateSmallMax {
		// Promote: hash every live slot, including the new one.
		tab.byID = make(map[tuple.ID]int32, len(tab.ids)*2)
		for i := range tab.ids {
			if !tab.ids[i].IsZero() {
				tab.byID[tab.ids[i]] = int32(i)
			}
		}
	} else if tab.byID != nil {
		tab.byID[id] = h
	}
	return tab.at(h)
}

// release forgets id's state, zeroing the slot and recycling its handle.
// The engine retains retraction tombstones and dedup markers for the
// life of the node, so today only teardown paths and tests call this;
// the free list keeps the slab dense for workloads that do recycle.
func (tab *stateTable) release(id tuple.ID) {
	h, ok := tab.handleOf(id)
	if !ok {
		return
	}
	if tab.byID != nil {
		delete(tab.byID, id)
	}
	*tab.at(h) = tupleState{}
	tab.ids[h] = tuple.ID{}
	tab.free = append(tab.free, h)
	tab.live--
}

// forEach visits every live entry in slab (handle) order — insertion
// order when no handle was ever recycled. The order is deterministic
// for a deterministic call sequence, unlike a map range; callers that
// feed wire output still sort explicitly, keeping determinism
// independent of release patterns.
func (tab *stateTable) forEach(fn func(id tuple.ID, st *tupleState)) {
	for h := range tab.ids {
		if tab.ids[h].IsZero() {
			continue
		}
		c, s := stateChunkFor(int32(h))
		fn(tab.ids[h], &tab.chunks[c][s])
	}
}
