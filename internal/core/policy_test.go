package core_test

import (
	"errors"
	"math"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// denyOp builds a policy rejecting one operation for tuples with the
// given application name.
func denyOp(op core.Op, name string) core.Policy {
	return core.PolicyFunc(func(o core.Op, _ tuple.NodeID, t tuple.Tuple) bool {
		if o != op || t == nil {
			return true
		}
		return t.Content().GetString("name") != name
	})
}

func TestPolicyDeniesInject(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g, core.WithPolicy(denyOp(core.OpInject, "secret")))
	n := tn.node(topology.NodeName(0))
	if _, err := n.Inject(pattern.NewFlood("secret")); !errors.Is(err, core.ErrDenied) {
		t.Errorf("inject = %v, want ErrDenied", err)
	}
	if _, err := n.Inject(pattern.NewFlood("public")); err != nil {
		t.Errorf("allowed inject failed: %v", err)
	}
	if n.Stats().Denied != 1 {
		t.Errorf("Denied = %d", n.Stats().Denied)
	}
}

func TestPolicyFiltersAcceptAtBoundary(t *testing.T) {
	// Node 1 refuses "secret" tuples from the network: it neither
	// stores nor relays them, so node 2 never sees them either.
	g := topology.Line(3)
	tn := newTestNet(t, g, core.WithPolicy(denyOp(core.OpAccept, "secret")))
	src := tn.node(topology.NodeName(0))
	if _, err := src.Inject(pattern.NewFlood("secret")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Inject(pattern.NewFlood("public")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	mid := tn.node(topology.NodeName(1))
	far := tn.node(topology.NodeName(2))
	if len(mid.Read(pattern.ByName(pattern.KindFlood, "secret"))) != 0 {
		t.Error("boundary stored denied tuple")
	}
	if len(far.Read(pattern.ByName(pattern.KindFlood, "secret"))) != 0 {
		t.Error("denied tuple leaked past the boundary")
	}
	if len(far.Read(pattern.ByName(pattern.KindFlood, "public"))) != 1 {
		t.Error("allowed tuple blocked")
	}
}

func TestPolicyFiltersReadAndEvents(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g, core.WithPolicy(denyOp(core.OpRead, "hidden")))
	n := tn.node(topology.NodeName(1))
	fired := 0
	n.Subscribe(tuple.Match(pattern.KindFlood), func(core.Event) { fired++ })

	src := tn.node(topology.NodeName(0))
	if _, err := src.Inject(pattern.NewFlood("hidden")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Inject(pattern.NewFlood("visible")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	// The hidden tuple is stored (it may still relay) but unreadable.
	if got := n.Read(tuple.Match(pattern.KindFlood)); len(got) != 1 ||
		got[0].Content().GetString("name") != "visible" {
		t.Errorf("Read = %v", got)
	}
	if fired != 1 {
		t.Errorf("events fired = %d, want 1 (hidden arrival suppressed)", fired)
	}
}

func TestPolicyDeniesDelete(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g, core.WithPolicy(denyOp(core.OpDelete, "keep")))
	n := tn.node(topology.NodeName(0))
	if _, err := n.Inject(pattern.NewFlood("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Inject(pattern.NewFlood("scrap")); err != nil {
		t.Fatal(err)
	}
	removed := n.Delete(tuple.Match(pattern.KindFlood))
	if len(removed) != 1 || removed[0].Content().GetString("name") != "scrap" {
		t.Errorf("Delete = %v", removed)
	}
	if len(n.Read(pattern.ByName(pattern.KindFlood, "keep"))) != 1 {
		t.Error("protected tuple was deleted")
	}
}

// TestPolicyDeniesDigestSupport: refresh digests carry maintained
// values inline and must pass the same OpAccept gate as the full
// announcements they replace. Triangle 0-1-2 where everyone refuses
// gradient state from node 2: once edge 0-1 breaks, node 1's only
// remaining route runs through node 2, so node 1 must withdraw its copy
// rather than adopt support from node 2's digests.
func TestPolicyDeniesDigestSupport(t *testing.T) {
	g := topology.Ring(3)
	banned := topology.NodeName(2)
	tn := newTestNet(t, g, core.WithPolicy(
		core.PolicyFunc(func(op core.Op, requester tuple.NodeID, t tuple.Tuple) bool {
			return op != core.OpAccept || requester != banned
		})))
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))
	refreshAll(tn) // digest-driven maintenance from here on

	tn.sim.RemoveEdge(src, topology.NodeName(1))
	tn.quiesce()
	for i := 0; i < 3; i++ {
		refreshAll(tn)
	}
	if v, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); have {
		t.Errorf("node 1 holds val %v via policy-denied support from node 2", v)
	}
	// The allowed side of the structure is untouched.
	if v, have := tn.gradVal(banned, pattern.KindGradient, "f"); !have || v != 1 {
		t.Errorf("node 2 = %v, %v; want val 1", v, have)
	}
}

func TestPolicyDeniesRetract(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g, core.WithPolicy(
		core.PolicyFunc(func(op core.Op, requester tuple.NodeID, t tuple.Tuple) bool {
			if op != core.OpRetract {
				return true
			}
			return t != nil && t.ID().Node == requester
		})))
	src := tn.node(topology.NodeName(0))
	other := tn.node(topology.NodeName(2))
	id, err := src.Inject(pattern.NewGradient("f"))
	if err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	// A non-owner cannot retract the structure.
	other.Retract(id)
	tn.quiesce()
	if _, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); !have {
		t.Error("non-owner retract succeeded")
	}
	// The owner can.
	src.Retract(id)
	tn.quiesce()
	if _, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); have {
		t.Error("owner retract failed")
	}
}
