package core_test

import (
	"math"
	"testing"

	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func TestSpatialGradientConfinedToRadius(t *testing.T) {
	// 7x7 grid with unit spacing; a spatial tuple with radius 2.5 from
	// the center must exist exactly on nodes within euclidean distance
	// 2.5 of the center.
	g := topology.Grid(7, 7, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(24) // (3,3)
	if _, err := tn.node(src).Inject(pattern.NewSpatial("here", 2.5)); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	center, _ := g.Position(src)
	for _, id := range g.Nodes() {
		p, _ := g.Position(id)
		want := p.Dist(center) <= 2.5
		ts := tn.node(id).Read(pattern.ByName(pattern.KindSpatial, "here"))
		if (len(ts) == 1) != want {
			t.Errorf("node %s (dist %.2f): has tuple = %v, want %v",
				id, p.Dist(center), len(ts) == 1, want)
		}
	}
}

func TestSpatialGradientRepairsWithinRegion(t *testing.T) {
	g := topology.Grid(5, 5, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(12) // center
	if _, err := tn.node(src).Inject(pattern.NewSpatial("here", 10)); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	// Break a link: the maintained spatial structure must repair to the
	// new BFS distances (whole grid is within radius 10).
	tn.sim.RemoveEdge(topology.NodeName(12), topology.NodeName(13))
	tn.quiesce()
	dist := g.BFSDistances(src)
	for _, id := range g.Nodes() {
		ts := tn.node(id).Read(pattern.ByName(pattern.KindSpatial, "here"))
		if len(ts) != 1 {
			t.Errorf("node %s: copies = %d", id, len(ts))
			continue
		}
		if v := ts[0].(tuple.Maintained).Value(); v != float64(dist[id]) {
			t.Errorf("node %s: val = %v, want %d", id, v, dist[id])
		}
	}
}

func TestDirectionalFloodEndToEnd(t *testing.T) {
	// Directional flood pointing east from the west edge center: only
	// nodes in the 45° sector store it.
	g := topology.Grid(7, 5, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(14) // (0,2)
	d := pattern.NewDirectional("east", space.Vector{DX: 1, DY: 0}, math.Pi/4)
	if _, err := tn.node(src).Inject(d); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	origin, _ := g.Position(src)
	sector := space.HalfPlane{Origin: origin, Direction: space.Vector{DX: 1, DY: 0}, Spread: math.Pi / 4}
	for _, id := range g.Nodes() {
		p, _ := g.Position(id)
		// Reachability: the sector must be contiguous from the source
		// on a grid with this geometry, so membership is the oracle.
		want := sector.Contains(p)
		got := len(tn.node(id).Read(pattern.ByName(pattern.KindDirectional, "east"))) == 1
		if got != want {
			t.Errorf("node %s at %v: has tuple = %v, want %v", id, p, got, want)
		}
	}
}
