package core_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func TestGradientBuildsBFSFieldOnLine(t *testing.T) {
	g := topology.Line(6)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestGradientBuildsBFSFieldOnGrid(t *testing.T) {
	g := topology.Grid(6, 6, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(14) // interior node
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestGradientMinWinsOnRing(t *testing.T) {
	// On a ring, every node must take the shorter way around.
	g := topology.Ring(9)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
	// Farthest node on a 9-ring is 4 hops away.
	if v, _ := tn.gradVal(topology.NodeName(4), pattern.KindGradient, "f"); v != 4 {
		t.Errorf("antipode value = %v, want 4", v)
	}
}

func TestGradientOnRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := topology.ConnectedRandomGeometric(60, 10, 2.2, rng, 100)
	if g == nil {
		t.Fatal("no connected graph")
	}
	tn := newTestNet(t, g)
	src := topology.NodeName(7)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestGradientScopeBoundsPropagation(t *testing.T) {
	g := topology.Line(8)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f").Bounded(3)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", 3)
	// Node 3 is the boundary (val 3, stored); node 4 must have nothing.
	if _, have := tn.gradVal(topology.NodeName(4), pattern.KindGradient, "f"); have {
		t.Error("gradient escaped its scope")
	}
}

func TestGradientPayloadReplicated(t *testing.T) {
	g := topology.Line(4)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("svc", tuple.S("desc", "printer"))); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	ts := tn.node(topology.NodeName(3)).Read(pattern.ByName(pattern.KindGradient, "svc"))
	if len(ts) != 1 {
		t.Fatalf("Read = %v", ts)
	}
	if got := ts[0].Content().GetString("desc"); got != "printer" {
		t.Errorf("payload at far node = %q", got)
	}
}

func TestFloodReachesAllWithinTTL(t *testing.T) {
	g := topology.Grid(5, 5, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(12) // center
	if _, err := tn.node(src).Inject(pattern.NewFlood("news", tuple.S("h", "hi")).Within(2)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	dist := g.BFSDistances(src)
	for _, id := range g.Nodes() {
		ts := tn.node(id).Read(pattern.ByName(pattern.KindFlood, "news"))
		want := dist[id] <= 2
		if (len(ts) == 1) != want {
			t.Errorf("node %s (dist %d): has flood = %v, want %v", id, dist[id], len(ts) == 1, want)
		}
	}
}

func TestFloodDedupOnDenseGraph(t *testing.T) {
	// Fully meshed triangle plus tail: every node stores exactly one
	// copy despite multiple arrival paths.
	g := topology.New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.AddEdge("c", "d")
	tn := newTestNet(t, g)
	if _, err := tn.node("a").Inject(pattern.NewFlood("x")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	for _, id := range g.Nodes() {
		if got := len(tn.node(id).Read(pattern.ByName(pattern.KindFlood, "x"))); got != 1 {
			t.Errorf("node %s stores %d copies", id, got)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(0))

	if _, err := n.Inject(nil); !errors.Is(err, core.ErrNilTuple) {
		t.Errorf("nil inject: %v", err)
	}
	reused := pattern.NewFlood("x")
	if _, err := n.Inject(reused); err != nil {
		t.Fatalf("first inject: %v", err)
	}
	if _, err := n.Inject(reused); !errors.Is(err, core.ErrForeignID) {
		t.Errorf("re-inject: %v", err)
	}
	bad := pattern.NewFlood("y", tuple.Field{Name: "z", Value: struct{}{}})
	if _, err := n.Inject(bad); err == nil {
		t.Error("invalid content accepted")
	}
}

func TestInjectAssignsSequentialIDs(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(0))
	id1, err := n.Inject(pattern.NewLocal("a"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := n.Inject(pattern.NewLocal("b"))
	if err != nil {
		t.Fatal(err)
	}
	if id1.Node != n.Self() || id2.Seq != id1.Seq+1 {
		t.Errorf("ids = %v, %v", id1, id2)
	}
}

func TestLocalTupleStaysLocal(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewLocal("state")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if got := len(tn.node(topology.NodeName(1)).Read(tuple.Match(pattern.KindLocal))); got != 0 {
		t.Errorf("local tuple leaked to neighbor")
	}
	if got := len(tn.node(topology.NodeName(0)).Read(tuple.Match(pattern.KindLocal))); got != 1 {
		t.Errorf("local tuple not stored at origin")
	}
}

func TestReadReturnsIsolatedCopies(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(0))
	if _, err := n.Inject(pattern.NewLocal("s", tuple.I("v", 1))); err != nil {
		t.Fatal(err)
	}
	ts := n.Read(tuple.Match(pattern.KindLocal))
	if len(ts) != 1 {
		t.Fatal("missing tuple")
	}
	// Mutating the returned copy must not corrupt the store.
	l := ts[0].(*pattern.Local)
	l.Payload[0].Value = int64(999)
	again, _ := n.ReadOne(tuple.Match(pattern.KindLocal))
	if again.Content().GetInt("v") != 1 {
		t.Error("Read exposed shared state")
	}
}

func TestDeleteExtractsLocally(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	mid := topology.NodeName(1)
	if _, err := tn.node(src).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	removed := tn.node(mid).Delete(pattern.ByName(pattern.KindFlood, "x"))
	if len(removed) != 1 {
		t.Fatalf("Delete = %v", removed)
	}
	if len(tn.node(mid).Read(tuple.Match(pattern.KindFlood))) != 0 {
		t.Error("tuple still present after Delete")
	}
	// Other nodes keep their copies: delete is local.
	if len(tn.node(src).Read(tuple.Match(pattern.KindFlood))) != 1 {
		t.Error("Delete was not local")
	}
	if again := tn.node(mid).Delete(pattern.ByName(pattern.KindFlood, "x")); again != nil {
		t.Errorf("second Delete = %v", again)
	}
}

func TestMaxHopsBoundsRunawayTuples(t *testing.T) {
	g := topology.Line(10)
	tn := newTestNet(t, g, core.WithMaxHops(4))
	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if got := len(tn.node(topology.NodeName(4)).Read(tuple.Match(pattern.KindFlood))); got != 1 {
		t.Error("flood stopped before MaxHops")
	}
	if got := len(tn.node(topology.NodeName(5)).Read(tuple.Match(pattern.KindFlood))); got != 0 {
		t.Error("flood escaped MaxHops")
	}
}

func TestStatsCounters(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	st := tn.node(src).Stats()
	if st.Injected != 1 || st.Stored != 1 || st.Broadcasts == 0 {
		t.Errorf("source stats = %+v", st)
	}
	mid := tn.node(topology.NodeName(1)).Stats()
	if mid.PacketsIn == 0 || mid.Stored != 1 {
		t.Errorf("mid stats = %+v", mid)
	}
}
