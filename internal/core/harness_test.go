package core_test

import (
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// testNet wires a middleware node onto every node of a topology graph
// over a simulated radio, the standard fixture for engine tests.
type testNet struct {
	t     *testing.T
	sim   *transport.Sim
	graph *topology.Graph
	nodes map[tuple.NodeID]*core.Node
}

func newTestNet(t *testing.T, g *topology.Graph, opts ...core.Option) *testNet {
	t.Helper()
	sim := transport.NewSim(g, transport.SimConfig{})
	tn := &testNet{t: t, sim: sim, graph: g, nodes: make(map[tuple.NodeID]*core.Node)}
	for _, id := range g.Nodes() {
		id := id
		ep := sim.Attach(id, nil)
		nodeOpts := append([]core.Option{
			core.WithLocalizer(space.FuncLocalizer(func() (space.Point, bool) {
				return g.Position(id)
			})),
		}, opts...)
		n := core.New(ep, nodeOpts...)
		sim.Bind(id, n)
		tn.nodes[id] = n
	}
	return tn
}

// newLateNode creates a middleware node for an endpoint attached after
// network construction (a newcomer) and registers it with the fixture.
func newLateNode(tn *testNet, ep *transport.SimEndpoint) *core.Node {
	n := core.New(ep)
	tn.nodes[ep.Self()] = n
	return n
}

// totalStats sums the middleware counters across every node in the
// fixture — the network-wide traffic ledger refresh tests assert on.
func (tn *testNet) totalStats() core.Stats {
	var s core.Stats
	for _, n := range tn.nodes {
		s = s.Add(n.Stats())
	}
	return s
}

// node returns the middleware node with the given id.
func (tn *testNet) node(id tuple.NodeID) *core.Node {
	n, ok := tn.nodes[id]
	if !ok {
		tn.t.Fatalf("no node %s", id)
	}
	return n
}

// quiesce runs the network until no packets are in flight.
func (tn *testNet) quiesce() {
	tn.t.Helper()
	tn.sim.RunUntilQuiet(100000)
	if tn.sim.Pending() != 0 {
		tn.t.Fatal("network did not quiesce")
	}
}

// gradVal returns the gradient value with the given name at a node.
func (tn *testNet) gradVal(id tuple.NodeID, kind, name string) (float64, bool) {
	ts := tn.node(id).Read(pattern.ByName(kind, name))
	if len(ts) == 0 {
		return 0, false
	}
	m, ok := ts[0].(tuple.Maintained)
	if !ok {
		tn.t.Fatalf("tuple %v is not maintained", ts[0])
	}
	return m.Value(), true
}

// assertGradientMatchesBFS checks that the named gradient equals the
// BFS-distance oracle from src at every reachable node, and is absent
// beyond maxVal.
func (tn *testNet) assertGradientMatchesBFS(src tuple.NodeID, name string, maxVal float64) {
	tn.t.Helper()
	dist := tn.graph.BFSDistances(src)
	for _, id := range tn.graph.Nodes() {
		want, reachable := dist[id]
		val, have := tn.gradVal(id, pattern.KindGradient, name)
		switch {
		case reachable && float64(want) <= maxVal:
			if !have {
				tn.t.Errorf("node %s: gradient %q missing (want %d)", id, name, want)
			} else if val != float64(want) {
				tn.t.Errorf("node %s: gradient %q = %v, want %d", id, name, val, want)
			}
		default:
			if have {
				tn.t.Errorf("node %s: gradient %q = %v, want absent", id, name, val)
			}
		}
	}
}
