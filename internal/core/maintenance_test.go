package core_test

import (
	"math"
	"testing"

	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// injectGradient injects a gradient at src and quiesces.
func injectGradient(t *testing.T, tn *testNet, src tuple.NodeID, name string, scope float64) tuple.ID {
	t.Helper()
	g := pattern.NewGradient(name)
	if !math.IsInf(scope, 1) {
		g = g.Bounded(scope)
	}
	id, err := tn.node(src).Inject(g)
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	return id
}

func TestMaintenanceRepairsAfterLinkLossWithAlternatePath(t *testing.T) {
	// Ring: removing one link turns it into a line; values must repair
	// to the new BFS distances.
	g := topology.Ring(8)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	tn.sim.RemoveEdge(topology.NodeName(3), topology.NodeName(4))
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
	// Node 4 was 4 hops away around the short side; now it is 4 hops
	// the other way: still 4. Node 5 goes from 3 to... check an
	// affected one: node 4 keeps 4, node 5 was min(5, 3)=3, now 3? On
	// an 8-ring from 0: distances 0..4; cutting 3-4 makes a line
	// 4-5-6-7-0-1-2-3, so node 4 is now 4 hops (via 7,6,5). The oracle
	// assertion above already verified every node.
}

func TestMaintenanceRepairsAfterLinkLossOnGrid(t *testing.T) {
	g := topology.Grid(5, 5, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	// Knock out a few interior links.
	tn.sim.RemoveEdge(topology.NodeName(1), topology.NodeName(6))
	tn.quiesce()
	tn.sim.RemoveEdge(topology.NodeName(5), topology.NodeName(6))
	tn.quiesce()
	tn.sim.RemoveEdge(topology.NodeName(12), topology.NodeName(13))
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestMaintenanceImprovesAfterShortcutAdded(t *testing.T) {
	g := topology.Line(8)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))
	if v, _ := tn.gradVal(topology.NodeName(7), pattern.KindGradient, "f"); v != 7 {
		t.Fatalf("pre-shortcut value = %v", v)
	}

	// A wormhole from the source to node 6: distances shrink.
	tn.sim.AddEdge(topology.NodeName(0), topology.NodeName(6))
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
	if v, _ := tn.gradVal(topology.NodeName(7), pattern.KindGradient, "f"); v != 2 {
		t.Errorf("post-shortcut value = %v, want 2", v)
	}
}

func TestMaintenanceTearsDownDisconnectedRegion(t *testing.T) {
	// Scope-bounded gradient on a line; cutting the line strands the
	// tail, whose copies must disappear (no support).
	g := topology.Line(7)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", 20)

	tn.sim.RemoveEdge(topology.NodeName(2), topology.NodeName(3))
	tn.quiesce()
	for i := 3; i < 7; i++ {
		if _, have := tn.gradVal(topology.NodeName(i), pattern.KindGradient, "f"); have {
			t.Errorf("stranded node %d still holds the gradient", i)
		}
	}
	tn.assertGradientMatchesBFS(src, "f", 20)
}

func TestMaintenanceTearsDownCyclicIsland(t *testing.T) {
	// The stranded region contains a cycle: count-to-scope must still
	// terminate (bounded by the gradient's scope) and remove all copies.
	g := topology.New()
	g.AddEdge("src", "gate")
	g.AddEdge("gate", "c1")
	g.AddEdge("c1", "c2")
	g.AddEdge("c2", "c3")
	g.AddEdge("c3", "c1")
	tn := newTestNet(t, g)
	injectGradient(t, tn, "src", "f", 10)

	tn.sim.RemoveEdge("gate", "c1")
	tn.quiesce()
	for _, id := range []tuple.NodeID{"c1", "c2", "c3"} {
		if _, have := tn.gradVal(id, pattern.KindGradient, "f"); have {
			t.Errorf("island node %s still holds the gradient", id)
		}
	}
	if v, have := tn.gradVal("gate", pattern.KindGradient, "f"); !have || v != 1 {
		t.Errorf("gate = %v, %v; want 1", v, have)
	}
}

func TestMaintenanceAfterNodeCrash(t *testing.T) {
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	crash := topology.NodeName(5) // interior node
	tn.sim.Detach(crash)
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestMaintenanceSourceCrashTearsDownBoundedField(t *testing.T) {
	g := topology.Grid(3, 3, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(4) // center
	injectGradient(t, tn, src, "f", 8)

	tn.sim.Detach(src)
	tn.quiesce()
	for _, id := range g.Nodes() {
		if _, have := tn.gradVal(id, pattern.KindGradient, "f"); have {
			t.Errorf("node %s keeps orphaned gradient", id)
		}
	}
}

func TestNewcomerReceivesExistingTuples(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))
	if _, err := tn.node(src).Inject(pattern.NewFlood("news")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	// A new node appears next to node 2: it must receive both the
	// maintained gradient (value 3) and the flood.
	ep := tn.sim.Attach("late", nil)
	late := newLateNode(tn, ep)
	tn.sim.Bind("late", late)
	tn.sim.AddEdge(topology.NodeName(2), "late")
	tn.quiesce()

	ts := late.Read(pattern.ByName(pattern.KindGradient, "f"))
	if len(ts) != 1 {
		t.Fatalf("late node gradient copies = %d", len(ts))
	}
	if v := ts[0].(tuple.Maintained).Value(); v != 3 {
		t.Errorf("late node value = %v, want 3", v)
	}
	if len(late.Read(pattern.ByName(pattern.KindFlood, "news"))) != 1 {
		t.Error("late node did not receive the flood")
	}
}

func TestMaintenanceHandlesRepeatedChurn(t *testing.T) {
	// Flap the same link several times; the structure must end correct.
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	a, b := topology.NodeName(1), topology.NodeName(5)
	for i := 0; i < 4; i++ {
		tn.sim.RemoveEdge(a, b)
		tn.quiesce()
		tn.sim.AddEdge(a, b)
		tn.quiesce()
	}
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestRetractRemovesStructureEverywhere(t *testing.T) {
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	id := injectGradient(t, tn, src, "f", math.Inf(1))

	tn.node(src).Retract(id)
	tn.quiesce()
	for _, nid := range g.Nodes() {
		if _, have := tn.gradVal(nid, pattern.KindGradient, "f"); have {
			t.Errorf("node %s keeps retracted gradient", nid)
		}
	}
	// Tombstones: a stale announcement must not resurrect the field.
	// (Simulate by injecting an identical-name gradient from a
	// different node — a different id, so it must work.)
	if _, err := tn.node(topology.NodeName(5)).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(topology.NodeName(5), "f", math.Inf(1))
}

func TestLocalDeleteOfMaintainedCopyHeals(t *testing.T) {
	// Deleting the gradient copy at an interior node is repaired by the
	// middleware: neighbors re-announce and the hole heals.
	g := topology.Line(5)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	mid := topology.NodeName(2)
	removed := tn.node(mid).Delete(pattern.ByName(pattern.KindGradient, "f"))
	if len(removed) != 1 {
		t.Fatalf("Delete = %v", removed)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestEraserSweepsFloodCopies(t *testing.T) {
	g := topology.Line(5)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewFlood("junk")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if _, err := tn.node(topology.NodeName(4)).Inject(pattern.NewEraser("sweep", pattern.KindFlood, "junk")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	for _, id := range g.Nodes() {
		if got := len(tn.node(id).Read(pattern.ByName(pattern.KindFlood, "junk"))); got != 0 {
			t.Errorf("node %s still holds junk", id)
		}
		if got := len(tn.node(id).Read(tuple.Match(pattern.KindEraser))); got != 0 {
			t.Errorf("node %s stored the eraser", id)
		}
	}
}
