package core_test

import (
	"math"
	"testing"

	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

func TestDownhillDeliversAlongGradient(t *testing.T) {
	g := topology.Grid(5, 5, 1)
	tn := newTestNet(t, g)
	dst := topology.NodeName(0)
	src := topology.NodeName(24) // opposite corner

	injectGradient(t, tn, dst, "to-dst", math.Inf(1))
	if _, err := tn.node(src).Inject(pattern.NewDownhill("to-dst", tuple.S("body", "hello")).StrictSlope()); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	got := tn.node(dst).Read(tuple.Match(pattern.KindDownhill))
	if len(got) != 1 || got[0].Content().GetString("body") != "hello" {
		t.Fatalf("destination received %v", got)
	}
	// No other node may store the message.
	for _, id := range g.Nodes() {
		if id == dst {
			continue
		}
		if len(tn.node(id).Read(tuple.Match(pattern.KindDownhill))) != 0 {
			t.Errorf("node %s stored the message", id)
		}
	}
}

func TestDownhillCheaperThanFlood(t *testing.T) {
	// The §5.1 claim: with the overlay structure in place, messages
	// follow the slope instead of flooding, costing far fewer sends.
	// Broadcast descent covers the region of decreasing paths between
	// source and destination, so the win is largest when that region is
	// a fraction of the network (here: a 3×3 corner of a 6×6 grid).
	g := topology.Grid(6, 6, 1)
	dst := topology.NodeName(0)
	src := topology.NodeName(14) // (2,2): 4 hops from dst

	// Downhill over an existing structure.
	tnA := newTestNet(t, g.Clone())
	injectGradient(t, tnA, dst, "to-dst", math.Inf(1))
	tnA.sim.ResetStats()
	if _, err := tnA.node(src).Inject(pattern.NewDownhill("to-dst").StrictSlope()); err != nil {
		t.Fatal(err)
	}
	tnA.quiesce()
	downhill := tnA.sim.Stats().Sent

	// Flood-based delivery of the same message.
	tnB := newTestNet(t, g.Clone())
	tnB.sim.ResetStats()
	if _, err := tnB.node(src).Inject(pattern.NewFlood("msg")); err != nil {
		t.Fatal(err)
	}
	tnB.quiesce()
	flood := tnB.sim.Stats().Sent

	if downhill == 0 || flood == 0 {
		t.Fatalf("no traffic recorded: downhill=%d flood=%d", downhill, flood)
	}
	if downhill*2 >= flood {
		t.Errorf("downhill (%d sends) not clearly cheaper than flood (%d sends)", downhill, flood)
	}
}

func TestDownhillFloodsWithoutStructure(t *testing.T) {
	g := topology.Line(4)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewDownhill("nonexistent", tuple.S("b", "x"))); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	// Fallback flooding: the message traverses the network (nobody
	// stores it — there is no destination — but every node relays).
	for _, id := range g.Nodes() {
		if id == src {
			continue
		}
		if tn.node(id).Stats().PacketsIn == 0 {
			t.Errorf("node %s never saw the flooded message", id)
		}
	}
}

func TestDownhillSurvivesBrokenPathViaRepairedGradient(t *testing.T) {
	// Break the gradient mid-way, let maintenance repair it, then send:
	// the message must still arrive.
	g := topology.Ring(8)
	tn := newTestNet(t, g)
	dst := topology.NodeName(0)
	src := topology.NodeName(4)
	injectGradient(t, tn, dst, "to-dst", math.Inf(1))

	tn.sim.RemoveEdge(topology.NodeName(1), topology.NodeName(2))
	tn.quiesce() // gradient repairs around the other side

	if _, err := tn.node(src).Inject(pattern.NewDownhill("to-dst", tuple.S("b", "m")).StrictSlope()); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if got := tn.node(dst).Read(tuple.Match(pattern.KindDownhill)); len(got) != 1 {
		t.Fatalf("destination received %d messages", len(got))
	}
}

func TestDownhillDescendsFlockField(t *testing.T) {
	// Downhill can descend any maintained structure kind; with a flock
	// field the minimum of the *maintained* value is still the source.
	g := topology.Line(5)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewFlock("fl", 2)); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	msg := pattern.NewDownhill("fl").Descending(pattern.KindFlock).StrictSlope()
	if _, err := tn.node(topology.NodeName(4)).Inject(msg); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if got := tn.node(src).Read(tuple.Match(pattern.KindDownhill)); len(got) != 1 {
		t.Errorf("flock-descending message not delivered: %d", len(got))
	}
}

func TestSimStatsAccumulateAcrossInjects(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	for i := 0; i < 3; i++ {
		if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("x")); err != nil {
			t.Fatal(err)
		}
	}
	tn.quiesce()
	st := tn.sim.Stats()
	if st.Broadcasts < 3 {
		t.Errorf("stats = %+v", st)
	}
	var agg transport.Stats
	agg.Sent = st.Sent
	if agg.Sent == 0 {
		t.Error("no sends recorded")
	}
}
