package core

import "sync/atomic"

// Stats is a snapshot of the middleware-level activity of one node;
// experiments aggregate these across the network to report overheads
// and repair costs. Obtain one with Node.Stats.
type Stats struct {
	// Injected counts tuples injected through the local API.
	Injected int64
	// PacketsIn counts engine packets received from neighbors.
	PacketsIn int64
	// Stored counts tuples entering the local space for the first time.
	Stored int64
	// Superseded counts stored copies replaced by better ones.
	Superseded int64
	// DupDropped counts duplicate/ignored tuple arrivals.
	DupDropped int64
	// TTLDropped counts copies discarded for exceeding MaxHops.
	TTLDropped int64
	// Retracted counts structures torn down through this node.
	Retracted int64
	// MaintAdopt counts maintenance value adoptions (repairs).
	MaintAdopt int64
	// MaintDrop counts maintenance withdrawals of unsupported copies.
	MaintDrop int64
	// Broadcasts counts engine-initiated broadcasts.
	Broadcasts int64
	// Unicasts counts engine-initiated unicasts (newcomer catch-up).
	Unicasts int64
	// SendErrors counts transport send failures (logged and skipped).
	SendErrors int64
	// DecodeErrors counts undecodable packets.
	DecodeErrors int64
	// Events counts events dispatched to reactions.
	Events int64
	// Denied counts operations rejected by the access-control policy.
	Denied int64
	// Expired counts stored copies removed by lease expiry.
	Expired int64
	// FramesOut counts multi-message batch frames sent (a flush run of
	// one message goes out bare and is not counted).
	FramesOut int64
	// FramesIn counts batch frames received (sub-messages count toward
	// PacketsIn individually).
	FramesIn int64
	// DigestsOut counts anti-entropy digest messages sent by refresh.
	DigestsOut int64
	// DigestsIn counts digest messages received.
	DigestsIn int64
	// PullsOut counts anti-entropy pull requests sent.
	PullsOut int64
	// PullsIn counts pull requests received.
	PullsIn int64
	// RefreshAnnounced counts tuples re-sent in full by refresh because
	// their announcement changed since the last full broadcast.
	RefreshAnnounced int64
	// RefreshSuppressed counts tuples refresh advertised by digest entry
	// instead of full bytes — the anti-entropy suppression win.
	RefreshSuppressed int64
	// Suspected counts maintained copies that entered the suspicion
	// grace window (support lost, withdraw deferred).
	Suspected int64
	// SuspectRecovered counts suspicions cancelled because support
	// returned within the grace window — churn the hysteresis absorbed.
	SuspectRecovered int64
	// PullsSuppressed counts anti-entropy pulls skipped by the capped
	// exponential backoff (per neighbor, per tuple id).
	PullsSuppressed int64
	// QuarantineEvents counts sources demoted for repeated undecodable
	// packets.
	QuarantineEvents int64
	// QuarantineDropped counts packets dropped unread because their
	// source was quarantined.
	QuarantineDropped int64
	// QueryEpochs counts convergecast epoch waves started at query
	// sources (one per stored source query per refresh).
	QueryEpochs int64
	// QueriesIn counts epoch-wave messages received.
	QueriesIn int64
	// PartialsOut counts partial aggregates sent up a parent link.
	PartialsOut int64
	// PartialsIn counts partial aggregates received from children.
	PartialsIn int64
	// PartialsCombined counts child partials folded into a local
	// partial — the in-network combining work.
	PartialsCombined int64
	// AggResults counts query results computed at sources.
	AggResults int64
}

// Add returns the field-wise sum of two stats snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Injected:          s.Injected + o.Injected,
		PacketsIn:         s.PacketsIn + o.PacketsIn,
		Stored:            s.Stored + o.Stored,
		Superseded:        s.Superseded + o.Superseded,
		DupDropped:        s.DupDropped + o.DupDropped,
		TTLDropped:        s.TTLDropped + o.TTLDropped,
		Retracted:         s.Retracted + o.Retracted,
		MaintAdopt:        s.MaintAdopt + o.MaintAdopt,
		MaintDrop:         s.MaintDrop + o.MaintDrop,
		Broadcasts:        s.Broadcasts + o.Broadcasts,
		Unicasts:          s.Unicasts + o.Unicasts,
		SendErrors:        s.SendErrors + o.SendErrors,
		DecodeErrors:      s.DecodeErrors + o.DecodeErrors,
		Events:            s.Events + o.Events,
		Denied:            s.Denied + o.Denied,
		Expired:           s.Expired + o.Expired,
		FramesOut:         s.FramesOut + o.FramesOut,
		FramesIn:          s.FramesIn + o.FramesIn,
		DigestsOut:        s.DigestsOut + o.DigestsOut,
		DigestsIn:         s.DigestsIn + o.DigestsIn,
		PullsOut:          s.PullsOut + o.PullsOut,
		PullsIn:           s.PullsIn + o.PullsIn,
		RefreshAnnounced:  s.RefreshAnnounced + o.RefreshAnnounced,
		RefreshSuppressed: s.RefreshSuppressed + o.RefreshSuppressed,
		Suspected:         s.Suspected + o.Suspected,
		SuspectRecovered:  s.SuspectRecovered + o.SuspectRecovered,
		PullsSuppressed:   s.PullsSuppressed + o.PullsSuppressed,
		QuarantineEvents:  s.QuarantineEvents + o.QuarantineEvents,
		QuarantineDropped: s.QuarantineDropped + o.QuarantineDropped,
		QueryEpochs:       s.QueryEpochs + o.QueryEpochs,
		QueriesIn:         s.QueriesIn + o.QueriesIn,
		PartialsOut:       s.PartialsOut + o.PartialsOut,
		PartialsIn:        s.PartialsIn + o.PartialsIn,
		PartialsCombined:  s.PartialsCombined + o.PartialsCombined,
		AggResults:        s.AggResults + o.AggResults,
	}
}

// atomicStats is the node's live counter set. Mutations happen under
// the engine lock (so per-node sequences stay deterministic), but every
// field is an atomic so telemetry can snapshot counters mid-step —
// while parallel delivery workers are driving other nodes — without
// taking any engine lock.
type atomicStats struct {
	Injected          atomic.Int64
	PacketsIn         atomic.Int64
	Stored            atomic.Int64
	Superseded        atomic.Int64
	DupDropped        atomic.Int64
	TTLDropped        atomic.Int64
	Retracted         atomic.Int64
	MaintAdopt        atomic.Int64
	MaintDrop         atomic.Int64
	Broadcasts        atomic.Int64
	Unicasts          atomic.Int64
	SendErrors        atomic.Int64
	DecodeErrors      atomic.Int64
	Events            atomic.Int64
	Denied            atomic.Int64
	Expired           atomic.Int64
	FramesOut         atomic.Int64
	FramesIn          atomic.Int64
	DigestsOut        atomic.Int64
	DigestsIn         atomic.Int64
	PullsOut          atomic.Int64
	PullsIn           atomic.Int64
	RefreshAnnounced  atomic.Int64
	RefreshSuppressed atomic.Int64
	Suspected         atomic.Int64
	SuspectRecovered  atomic.Int64
	PullsSuppressed   atomic.Int64
	QuarantineEvents  atomic.Int64
	QuarantineDropped atomic.Int64
	QueryEpochs       atomic.Int64
	QueriesIn         atomic.Int64
	PartialsOut       atomic.Int64
	PartialsIn        atomic.Int64
	PartialsCombined  atomic.Int64
	AggResults        atomic.Int64
}

// Snapshot reads every counter atomically (field by field: the
// snapshot is not a consistent cut, which is fine for monotone
// counters).
func (a *atomicStats) Snapshot() Stats {
	return Stats{
		Injected:          a.Injected.Load(),
		PacketsIn:         a.PacketsIn.Load(),
		Stored:            a.Stored.Load(),
		Superseded:        a.Superseded.Load(),
		DupDropped:        a.DupDropped.Load(),
		TTLDropped:        a.TTLDropped.Load(),
		Retracted:         a.Retracted.Load(),
		MaintAdopt:        a.MaintAdopt.Load(),
		MaintDrop:         a.MaintDrop.Load(),
		Broadcasts:        a.Broadcasts.Load(),
		Unicasts:          a.Unicasts.Load(),
		SendErrors:        a.SendErrors.Load(),
		DecodeErrors:      a.DecodeErrors.Load(),
		Events:            a.Events.Load(),
		Denied:            a.Denied.Load(),
		Expired:           a.Expired.Load(),
		FramesOut:         a.FramesOut.Load(),
		FramesIn:          a.FramesIn.Load(),
		DigestsOut:        a.DigestsOut.Load(),
		DigestsIn:         a.DigestsIn.Load(),
		PullsOut:          a.PullsOut.Load(),
		PullsIn:           a.PullsIn.Load(),
		RefreshAnnounced:  a.RefreshAnnounced.Load(),
		RefreshSuppressed: a.RefreshSuppressed.Load(),
		Suspected:         a.Suspected.Load(),
		SuspectRecovered:  a.SuspectRecovered.Load(),
		PullsSuppressed:   a.PullsSuppressed.Load(),
		QuarantineEvents:  a.QuarantineEvents.Load(),
		QuarantineDropped: a.QuarantineDropped.Load(),
		QueryEpochs:       a.QueryEpochs.Load(),
		QueriesIn:         a.QueriesIn.Load(),
		PartialsOut:       a.PartialsOut.Load(),
		PartialsIn:        a.PartialsIn.Load(),
		PartialsCombined:  a.PartialsCombined.Load(),
		AggResults:        a.AggResults.Load(),
	}
}
