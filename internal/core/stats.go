package core

// Stats counts the middleware-level activity of one node; experiments
// aggregate these across the network to report overheads and repair
// costs.
type Stats struct {
	// Injected counts tuples injected through the local API.
	Injected int64
	// PacketsIn counts engine packets received from neighbors.
	PacketsIn int64
	// Stored counts tuples entering the local space for the first time.
	Stored int64
	// Superseded counts stored copies replaced by better ones.
	Superseded int64
	// DupDropped counts duplicate/ignored tuple arrivals.
	DupDropped int64
	// TTLDropped counts copies discarded for exceeding MaxHops.
	TTLDropped int64
	// Retracted counts structures torn down through this node.
	Retracted int64
	// MaintAdopt counts maintenance value adoptions (repairs).
	MaintAdopt int64
	// MaintDrop counts maintenance withdrawals of unsupported copies.
	MaintDrop int64
	// Broadcasts counts engine-initiated broadcasts.
	Broadcasts int64
	// Unicasts counts engine-initiated unicasts (newcomer catch-up).
	Unicasts int64
	// SendErrors counts transport send failures (logged and skipped).
	SendErrors int64
	// DecodeErrors counts undecodable packets.
	DecodeErrors int64
	// Events counts events dispatched to reactions.
	Events int64
	// Denied counts operations rejected by the access-control policy.
	Denied int64
	// Expired counts stored copies removed by lease expiry.
	Expired int64
}

// Add returns the field-wise sum of two stats snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Injected:     s.Injected + o.Injected,
		PacketsIn:    s.PacketsIn + o.PacketsIn,
		Stored:       s.Stored + o.Stored,
		Superseded:   s.Superseded + o.Superseded,
		DupDropped:   s.DupDropped + o.DupDropped,
		TTLDropped:   s.TTLDropped + o.TTLDropped,
		Retracted:    s.Retracted + o.Retracted,
		MaintAdopt:   s.MaintAdopt + o.MaintAdopt,
		MaintDrop:    s.MaintDrop + o.MaintDrop,
		Broadcasts:   s.Broadcasts + o.Broadcasts,
		Unicasts:     s.Unicasts + o.Unicasts,
		SendErrors:   s.SendErrors + o.SendErrors,
		DecodeErrors: s.DecodeErrors + o.DecodeErrors,
		Events:       s.Events + o.Events,
		Denied:       s.Denied + o.Denied,
		Expired:      s.Expired + o.Expired,
	}
}
