package core

import (
	"math"
	"sort"

	"tota/internal/agg"
	"tota/internal/tuple"
	"tota/internal/wire"
)

// tupleState flag bits (see tupleState.flags). The booleans of the
// pre-columnar layout, packed so the state packs into the slab.
const (
	// stStored: the tuple is currently in the local space.
	stStored uint8 = 1 << iota
	// stVisited: OnArrive already ran at this node.
	stVisited
	// stPropagated: the stored copy was re-broadcast, so newcomers get
	// it too.
	stPropagated
	// stSource: this node injected the tuple.
	stSource
	// stRetracted: the tombstone set by structure teardown.
	stRetracted
	// stSupportTab: a maintenance support table was ever recorded for
	// the structure (the old "nbrVals map is non-nil"), gating the
	// withdraw pipeline for ids that never carried support.
	stSupportTab
	// stEncShared: encCache's bytes were handed to the transport or the
	// staging queue, so they may sit in an in-flight packet of a
	// zero-copy transport and must not be recycled unless the transport
	// releases payloads (see Node.recycleWire).
	stEncShared
	// stParentFlap: a parent-only re-announcement (value unchanged) was
	// already broadcast this refresh epoch. Further parent changes
	// within the epoch stay local until the next refresh carries them:
	// when neighbors hold stale parent views (packet loss, quarantine
	// drops), symmetric support ties can flip a node's parent on every
	// incoming announcement, and since the value never moves, the scope
	// bound that terminates count-to-scope climbs never engages — the
	// flip-flop broadcast loop would run forever. Edge-triggering the
	// announcement per epoch bounds it. Cleared by refreshLocked.
	stParentFlap
)

// tupleState is the engine's per-tuple-id bookkeeping, tracking dedup,
// maintenance support tables and retraction tombstones. States live by
// value in the stateTable slab, packed: flag booleans share one
// bitmask, integers are right-sized, and the per-neighbor maps of the
// pre-columnar layout are one sorted peer slice (see tuplePeer), so the
// refresh/digest loops walk contiguous rows.
type tupleState struct {
	// local is the stored copy (nil when not stored).
	local tuple.Tuple
	// exemplar retains the last maintained tuple heard in full, so
	// digest-driven maintenance can re-adopt a structure after a
	// withdrawal without pulling full bytes again. Cleared on
	// retraction.
	exemplar tuple.Maintained
	// encCache holds the wire encoding of the stored copy's last
	// announcement, with the hop and parent it was built for. Refresh
	// and announce re-broadcast unchanged structures every epoch; the
	// cache makes those re-sends zero-encode and zero-copy (transports
	// treat packet payloads as read-only, so the bytes are shared).
	// Invalidated whenever the stored copy changes (see
	// Node.invalidateWireLocked, which recycles the buffer when safe).
	encCache []byte
	// peers is the per-neighbor row set, sorted by neighbor id: the
	// maintenance support table, the consumed-announcement versions and
	// the anti-entropy pull backoff that used to live in three separate
	// maps. Sorted order makes every scan deterministic by construction.
	peers []tuplePeer
	// parent is the neighbor the maintained value was adopted from.
	parent    tuple.NodeID
	encParent tuple.NodeID
	// storedAt is the node's logical time when the copy was last
	// (re)stored, for lease expiry.
	storedAt float64
	// traceID is the tuple's sampled trace identity (zero = unsampled,
	// the fast path: no span bookkeeping, version-1 wire bytes). Set at
	// inject when sampling elects the tuple, or adopted from an
	// arriving traced announcement.
	traceID uint64
	// span is the current copy incarnation's span id and spanSeq the
	// incarnation counter behind it; parentSpan references the upstream
	// hop's span that caused the current copy. Spans only change
	// together with the announcement version, so a neighbor holding the
	// current ver also holds the current span.
	span, parentSpan uint64
	// ver is this node's announcement version for the tuple: bumped
	// whenever the announcement bytes change (stored copy, hop, or
	// parent), never reset, so equal versions imply identical
	// announcements. Carried on full announcements and digest entries;
	// 0 means "never announced" and is never put on the wire.
	ver uint32
	// refreshedVer is the last ver whose full bytes were broadcast to
	// the whole neighborhood. Refresh re-sends full bytes only when it
	// differs from ver, and advertises a digest entry otherwise.
	refreshedVer uint32
	// suspectEpoch, when non-zero, marks the copy as suspect: support
	// vanished at refresh epoch suspectEpoch-1 and the withdraw is
	// deferred until Config.SuspicionEpochs epochs pass without support
	// returning (the +1 keeps zero meaning "not suspect"). Truncated to
	// 32 bits; comparisons use wrap-safe subtraction and the grace
	// window is tiny, so the width never shows.
	suspectEpoch uint32
	spanSeq      uint32
	// hop is the hop count of the accepted copy.
	hop    int32
	encHop uint16
	flags  uint8
}

func (st *tupleState) has(f uint8) bool { return st.flags&f != 0 }
func (st *tupleState) mark(f uint8)     { st.flags |= f }
func (st *tupleState) unmark(f uint8)   { st.flags &^= f }

// tuplePeer flag bits.
const (
	// peerSupport: val/parent/epoch form a live maintenance support
	// entry (the old nbrVals membership).
	peerSupport uint8 = 1 << iota
	// peerVer: ver records the last announcement version whose content
	// this node consumed from the peer (the old nbrVer membership).
	peerVer
)

// tuplePeer is one neighbor's row of a tuple's per-neighbor state:
// the last value (and parent) the neighbor announced for the structure,
// the refresh epoch it was heard at (entries not re-heard within
// staleEpochs cycles lose support, so lost withdrawals cannot sustain
// phantom support), the neighbor's copy span from its last full traced
// announcement (kept across digest refreshes: a matching digest entry
// implies the span is unchanged), the last consumed announcement
// version (a digest entry matching it proves nothing changed,
// suppressing the anti-entropy pull), and the capped exponential pull
// backoff (strikes counts pulls sent without a consumed response, skip
// how many further digest mentions to ignore before the next one).
type tuplePeer struct {
	id      tuple.NodeID
	span    uint64
	val     float64
	parent  tuple.NodeID
	epoch   uint32
	ver     uint32
	flags   uint8
	strikes uint8
	skip    uint16
}

// peerIdx binary-searches the sorted peer rows for id, returning the
// insertion slot and whether the row exists.
func (st *tupleState) peerIdx(id tuple.NodeID) (int, bool) {
	lo, hi := 0, len(st.peers)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.peers[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(st.peers) && st.peers[lo].id == id
}

// peer returns id's row, or nil. The pointer is invalidated by the next
// peerFor/dropPeer on the same state.
func (st *tupleState) peer(id tuple.NodeID) *tuplePeer {
	if i, ok := st.peerIdx(id); ok {
		return &st.peers[i]
	}
	return nil
}

// peerFor returns id's row, inserting a zero row in sorted position on
// first sight. The pointer is invalidated by the next peerFor/dropPeer
// on the same state. hint sizes the first allocation: rows track the
// node's neighbors, so reserving degree slots up front keeps append
// from rounding a 5-neighbor table up to an 8-row backing array —
// at 64 B a row that overshoot dominated per-node state at scale.
func (st *tupleState) peerFor(id tuple.NodeID, hint int) *tuplePeer {
	i, ok := st.peerIdx(id)
	if !ok {
		if st.peers == nil && hint > 1 {
			st.peers = make([]tuplePeer, 0, hint)
		}
		st.peers = append(st.peers, tuplePeer{})
		copy(st.peers[i+1:], st.peers[i:])
		st.peers[i] = tuplePeer{id: id}
	}
	return &st.peers[i]
}

// dropPeer removes id's row entirely (neighbor departure), reporting
// whether the removed row held live support.
func (st *tupleState) dropPeer(id tuple.NodeID) (hadSupport, had bool) {
	i, ok := st.peerIdx(id)
	if !ok {
		return false, false
	}
	hadSupport = st.peers[i].flags&peerSupport != 0
	st.peers = append(st.peers[:i], st.peers[i+1:]...)
	return hadSupport, true
}

// resetBackoff clears a row's pull backoff: the peer delivered usable
// content, so it is alive and answering.
func (p *tuplePeer) resetBackoff() { p.strikes, p.skip = 0, 0 }

// traceCtx is the wire trace context of the current copy incarnation:
// zero for unsampled tuples, so untraced announcements stay version-1
// bytes.
func (st *tupleState) traceCtx() wire.TraceCtx {
	return wire.TraceCtx{TraceID: st.traceID, Span: st.span}
}

// staleEpochs is how many full refresh cycles an announcement stays
// valid without being re-heard.
const staleEpochs = 2

func (n *Node) stateFor(id tuple.ID) *tupleState {
	return n.states.intern(id)
}

// lockedStore exposes the local space to propagation hooks running
// inside the engine lock.
type lockedStore struct {
	n *Node
}

var _ tuple.LocalStore = lockedStore{}

func (s lockedStore) Read(tpl tuple.Template) []tuple.Tuple {
	return s.n.readLocked(tpl)
}

func (s lockedStore) Delete(tpl tuple.Template) []tuple.Tuple {
	return s.n.deleteLocked(tpl)
}

func (n *Node) ctxLocked(from tuple.NodeID, hop int) *tuple.Ctx {
	pos, ok := n.localizer.Position()
	n.ctxScratch = tuple.Ctx{
		Self:   n.id,
		From:   from,
		Hop:    hop,
		Pos:    pos,
		HasPos: ok,
		Store:  lockedStore{n: n},
	}
	return &n.ctxScratch
}

// HandlePacket implements transport.Handler.
func (n *Node) HandlePacket(from tuple.NodeID, data []byte) {
	n.mu.Lock()
	if len(n.quarantined) != 0 {
		if left, ok := n.quarantined[from]; ok {
			if left > 1 {
				n.quarantined[from] = left - 1
			} else {
				delete(n.quarantined, from)
				delete(n.decodeStrikes, from)
				// Re-admission starts the source from a clean slate: the
				// pull backoff it accumulated while emitting garbage would
				// otherwise suppress its first healed digests for up to the
				// full backoff gap.
				n.resetPullBackoffLocked(from)
			}
			n.stats.QuarantineDropped.Add(1)
			n.mu.Unlock()
			return
		}
	}
	if err := wire.DecodeInto(n.cfg.Registry, data, &n.decodeScratch); err != nil {
		quarantined := n.noteDecodeStrikeLocked(from)
		n.mu.Unlock()
		n.noteDecodeError(from, err, quarantined)
		return
	}
	if len(n.decodeStrikes) != 0 {
		// A decodable packet clears the source's strike run: quarantine
		// targets sustained corruption, not an isolated mangled frame.
		delete(n.decodeStrikes, from)
	}
	msg := &n.decodeScratch
	if msg.Type == wire.MsgBatch {
		n.stats.FramesIn.Add(1)
		for i := range msg.Batch {
			n.handleMsgLocked(from, &msg.Batch[i])
		}
	} else {
		n.handleMsgLocked(from, msg)
	}
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
}

// handleMsgLocked dispatches one engine message (a whole packet, or one
// sub-message of a batch frame).
func (n *Node) handleMsgLocked(from tuple.NodeID, msg *wire.Message) {
	n.stats.PacketsIn.Add(1)
	switch msg.Type {
	case wire.MsgTuple:
		n.handleTupleLocked(from, msg)
	case wire.MsgRetract:
		n.handleRetractLocked(msg.ID)
	case wire.MsgWithdraw:
		n.handleWithdrawLocked(from, msg.ID)
	case wire.MsgDigest:
		n.handleDigestLocked(from, msg)
	case wire.MsgPull:
		n.handlePullLocked(from, msg)
	case wire.MsgQuery:
		n.handleQueryLocked(from, msg)
	case wire.MsgPartial:
		n.handlePartialLocked(from, msg)
	}
}

// HandleNeighbor implements transport.Handler.
func (n *Node) HandleNeighbor(peer tuple.NodeID, added bool) {
	n.mu.Lock()
	if added {
		n.handleNeighborAddedLocked(peer)
	} else {
		n.handleNeighborRemovedLocked(peer)
	}
	evs := n.takePendingLocked()
	trs := n.takeTracesLocked()
	n.mu.Unlock()
	n.dispatchTraces(trs)
	n.dispatch(evs)
}

// injectLocked runs the arrival pipeline at the injecting node.
func (n *Node) injectLocked(t tuple.Tuple, ctx *tuple.Ctx) {
	st := n.stateFor(t.ID())
	st.mark(stSource | stVisited)
	if tid, ok := sampleTrace(t.ID(), n.cfg.TraceSampleRate); ok {
		// Sampling elects the tuple at its entry point; the decision
		// then travels with every announcement, so downstream nodes
		// trace it regardless of their own rate.
		st.traceID = tid
	}
	n.traceLocked(TraceEvent{Kind: TraceInject, ID: t.ID(), TupleKind: t.Kind(),
		TraceID: st.traceID, Span: n.bumpSpanLocked(t.ID(), st)})
	t.OnArrive(ctx)
	if t.ShouldStore(ctx) {
		st.mark(stStored)
		st.local = t
		n.invalidateWireLocked(st)
		st.hop = 0
		st.storedAt = n.now
		n.store.put(t)
		n.stats.Stored.Add(1)
		n.emitTupleLocked(TupleArrived, t)
	}
	if t.ShouldPropagate(ctx) {
		st.mark(stPropagated)
		if st.has(stStored) {
			// Versioned announcement: receivers record the version, so
			// later digest entries can prove nothing changed (and a
			// mismatch triggers the anti-entropy pull).
			n.announceLocked(st)
		} else {
			n.broadcastTupleLocked(t, 0, "", st.traceCtx())
		}
	}
}

func (n *Node) handleTupleLocked(from tuple.NodeID, msg *wire.Message) {
	t := msg.Tuple
	if !n.allow(OpAccept, from, t) {
		return
	}
	st := n.stateFor(t.ID())
	if st.has(stRetracted) {
		n.stats.DupDropped.Add(1)
		return
	}
	if msg.Ver != 0 {
		// A stored-state announcement: remember the sender's version so
		// later digest entries matching it prove nothing changed. A
		// version this node has not consumed yet also resets the pull
		// backoff: the neighbor is alive and delivering new content. A
		// same-version replay does not — a poisoned-row probe answered
		// by unchanged bytes (a genuine two-node loop, not a stale row)
		// must leave the backoff growing or the probe/reply cycle would
		// re-arm itself forever.
		p := st.peerFor(from, len(n.nbrs))
		if p.flags&peerVer == 0 || p.ver != msg.Ver {
			p.resetBackoff()
		}
		p.ver = msg.Ver
		p.flags |= peerVer
	} else if p := st.peer(from); p != nil {
		p.resetBackoff()
	}
	if msg.Trace.TraceID != 0 {
		// The sender sampled this tuple: adopt its trace identity and
		// remember the upstream span so local decisions link causally
		// to the exact hop that delivered the content.
		st.traceID = msg.Trace.TraceID
		st.parentSpan = msg.Trace.Span
	}
	hop := int(msg.Hop) + 1

	if m, ok := t.(tuple.Maintained); ok {
		st.exemplar = m
		// Maintained structures bypass the plain pipeline: every
		// announcement updates the support table and triggers the
		// maintenance check, which performs adoption, improvement and
		// withdrawal uniformly.
		st.mark(stSupportTab)
		p := st.peerFor(from, len(n.nbrs))
		p.val, p.parent, p.epoch, p.span = m.Value(), msg.Parent, uint32(n.epoch), msg.Trace.Span
		p.flags |= peerSupport
		n.maintainLocked(t.ID(), m, n.ctxLocked(from, hop))
		return
	}

	if hop > n.cfg.MaxHops {
		n.stats.TTLDropped.Add(1)
		n.traceLocked(TraceEvent{Kind: TraceTTL, ID: t.ID(), TupleKind: t.Kind(), From: from, Hop: hop,
			TraceID: st.traceID, ParentSpan: msg.Trace.Span})
		return
	}
	ctx := n.ctxLocked(from, hop)
	local := t.Evolve(ctx)
	if local == nil {
		local = t
	}
	if st.has(stVisited) {
		if st.has(stStored) && local.Supersedes(st.local) {
			st.local = local
			n.invalidateWireLocked(st)
			st.hop = int32(hop)
			st.storedAt = n.now
			n.store.put(local)
			n.stats.Superseded.Add(1)
			span := n.bumpSpanLocked(local.ID(), st)
			n.traceLocked(TraceEvent{Kind: TraceSupersede, ID: local.ID(), TupleKind: local.Kind(), From: from, Hop: hop,
				TraceID: st.traceID, Span: span, ParentSpan: msg.Trace.Span})
			n.emitTupleLocked(TupleArrived, local)
			if local.ShouldPropagate(ctx) {
				n.announceLocked(st)
				n.traceLocked(TraceEvent{Kind: TraceForward, ID: local.ID(), TupleKind: local.Kind(), Hop: hop,
					TraceID: st.traceID, Span: span, ParentSpan: msg.Trace.Span})
			}
			return
		}
		n.stats.DupDropped.Add(1)
		n.traceLocked(TraceEvent{Kind: TraceDup, ID: t.ID(), TupleKind: t.Kind(), From: from,
			TraceID: st.traceID, Span: st.span, ParentSpan: msg.Trace.Span})
		return
	}
	st.mark(stVisited)
	st.hop = int32(hop)
	local.OnArrive(ctx)
	if local.ShouldStore(ctx) {
		st.mark(stStored)
		st.local = local
		n.invalidateWireLocked(st)
		st.storedAt = n.now
		n.store.put(local)
		n.stats.Stored.Add(1)
		n.traceLocked(TraceEvent{Kind: TraceStore, ID: local.ID(), TupleKind: local.Kind(), From: from, Hop: hop,
			TraceID: st.traceID, Span: n.bumpSpanLocked(local.ID(), st), ParentSpan: msg.Trace.Span})
		n.emitTupleLocked(TupleArrived, local)
	}
	if local.ShouldPropagate(ctx) {
		st.mark(stPropagated)
		if st.has(stStored) {
			n.announceLocked(st)
		} else {
			// A pure relay still gets its own span incarnation: the
			// downstream hop's parent link must name this node, not the
			// hop before it.
			n.bumpSpanLocked(local.ID(), st)
			n.broadcastTupleLocked(local, hop, "", st.traceCtx())
		}
		n.traceLocked(TraceEvent{Kind: TraceForward, ID: local.ID(), TupleKind: local.Kind(), Hop: hop,
			TraceID: st.traceID, Span: st.span, ParentSpan: msg.Trace.Span})
	}
}

// handleDigestLocked processes an anti-entropy digest: per entry,
// refresh the support tables (maintained entries carry value and parent
// inline) and decide whether the sender's full bytes are needed. Pulls
// for missing or changed tuples are coalesced into one request per
// digest.
func (n *Node) handleDigestLocked(from tuple.NodeID, msg *wire.Message) {
	n.stats.DigestsIn.Add(1)
	n.pullScratch = n.pullScratch[:0]
	for i := range msg.Digest {
		e := &msg.Digest[i]
		st := n.stateFor(e.ID)
		if st.has(stRetracted) {
			continue
		}
		// The digest path must honor the same acceptance policy as the
		// full announcement it replaces: a denied entry updates no state
		// and triggers no pull. When no full bytes for the structure ever
		// reached this node there is nothing to judge yet; the eventual
		// pull response is gated by handleTupleLocked instead.
		if t := digestSubject(st); t != nil && !n.allow(OpAccept, from, t) {
			continue
		}
		if e.Maintained {
			n.digestMaintainedLocked(from, e, st)
			continue
		}
		if !st.has(stVisited) {
			// The digest advertises a tuple that never propagated here —
			// a lost broadcast or a fresh join. Pull the full bytes.
			if n.allowPullLocked(st, from) {
				n.pullScratch = append(n.pullScratch, e.ID)
				n.tracePullLocked(e.ID, from, st)
			}
			continue
		}
		if p := st.peer(from); p == nil || p.flags&peerVer == 0 || p.ver != e.Ver {
			// This node never consumed the sender's current announcement:
			// its versioned broadcast was lost, or the stored copy changed
			// since (superseded, re-evolved). Fetch the full bytes — the
			// response re-runs the propagation pipeline (supersede checks
			// included) and records the version, so the pull repeats only
			// until one round trip survives.
			if n.allowPullLocked(st, from) {
				n.pullScratch = append(n.pullScratch, e.ID)
				n.tracePullLocked(e.ID, from, st)
			}
		}
	}
	n.sendPullsLocked(from)
}

// digestSubject returns the tuple a digest entry can be policy-checked
// against: the retained exemplar, else the stored copy. nil when the
// structure's full bytes never reached this node.
func digestSubject(st *tupleState) tuple.Tuple {
	if st.exemplar != nil {
		return st.exemplar
	}
	if st.local != nil {
		return st.local
	}
	return nil
}

// digestMaintainedLocked applies one maintained-structure digest entry:
// the entry carries everything the maintenance check consumes (value
// and parent), so a node that has ever held the structure's full bytes
// treats it exactly like a full announcement. Only nodes that never saw
// the structure pull.
func (n *Node) digestMaintainedLocked(from tuple.NodeID, e *wire.DigestEntry, st *tupleState) {
	ex := st.exemplar
	if ex == nil {
		if m, ok := st.local.(tuple.Maintained); ok {
			ex = m
		}
	}
	if ex == nil {
		// This node cannot adopt — or policy-check — from the compact
		// entry alone: it needs the structure's full bytes once. No
		// support is recorded until an announcement passes OpAccept.
		if n.allowPullLocked(st, from) {
			n.pullScratch = append(n.pullScratch, e.ID)
			n.tracePullLocked(e.ID, from, st)
		}
		return
	}
	// Digest entries carry no span; keep the one remembered from the
	// neighbor's last full announcement. When the entry's version
	// matches, that span is exactly current; when it does not (the full
	// broadcast was lost), the remembered span still names the right
	// node — an earlier incarnation — so causal links stay node-correct.
	// The compact entry carried everything maintenance needs, so the
	// neighbor is alive and answering and its pull backoff resets.
	st.mark(stSupportTab)
	p := st.peerFor(from, len(n.nbrs))
	p.val, p.parent, p.epoch = e.Value, e.Parent, uint32(n.epoch)
	p.ver = e.Ver
	p.flags |= peerSupport | peerVer
	p.resetBackoff()
	n.maintainLocked(e.ID, ex, n.ctxLocked(from, int(e.Hop)+1))
}

// allowPullLocked gates one anti-entropy pull for (tuple, neighbor)
// through the capped exponential backoff. Every allowed pull doubles
// the number of subsequent digest mentions ignored before the next one
// (1, 2, 4, … capped at Config.PullBackoffCap), so a neighbor that
// never delivers a usable response — crashed mid-protocol, or behind a
// one-way-lossy link — induces a decaying pull sequence instead of one
// pull per refresh epoch. Consuming any full content (or a usable
// maintained digest entry) from the neighbor resets its backoff.
// No-op (always allow) when the backoff is disabled.
func (n *Node) allowPullLocked(st *tupleState, from tuple.NodeID) bool {
	return n.allowPullCapLocked(st, from, n.cfg.PullBackoffCap)
}

// allowProbeLocked gates a poisoned-row staleness probe. Unlike digest
// pulls — which are paced by refresh epochs, so a disabled backoff
// (PullBackoffCap 0) still means at most one pull per epoch — probes
// are maintain-driven and each reply triggers another maintain, so an
// unbounded allowance would let a genuine two-node loop probe forever
// within a single event cascade. The backoff is therefore always armed
// here, falling back to a fixed cap when the configured one is off.
func (n *Node) allowProbeLocked(st *tupleState, from tuple.NodeID) bool {
	maxGap := n.cfg.PullBackoffCap
	if maxGap <= 0 {
		maxGap = 64
	}
	return n.allowPullCapLocked(st, from, maxGap)
}

func (n *Node) allowPullCapLocked(st *tupleState, from tuple.NodeID, maxGap int) bool {
	if maxGap <= 0 {
		return true
	}
	p := st.peerFor(from, len(n.nbrs))
	if p.skip > 0 {
		p.skip--
		n.stats.PullsSuppressed.Add(1)
		return false
	}
	if p.strikes < 15 {
		p.strikes++
	}
	gap := 1 << (p.strikes - 1)
	if gap > maxGap {
		gap = maxGap
	}
	p.skip = uint16(gap - 1)
	return true
}

// sendPullsLocked unicasts the accumulated pull requests to the digest
// sender, chunked against the frame payload budget.
func (n *Node) sendPullsLocked(to tuple.NodeID) {
	ids := n.pullScratch
	if len(ids) == 0 {
		return
	}
	start, size := 0, wire.PullOverhead
	for i := range ids {
		is := wire.PullIDSize(ids[i])
		if i > start && (size+is > n.frameLimit || i-start >= wire.MaxPullIDs) {
			n.sendPullMsgLocked(to, ids[start:i])
			start, size = i, wire.PullOverhead
		}
		size += is
	}
	n.sendPullMsgLocked(to, ids[start:])
	n.pullScratch = ids[:0]
}

func (n *Node) sendPullMsgLocked(to tuple.NodeID, ids []tuple.ID) {
	data, err := wire.Encode(wire.Message{Type: wire.MsgPull, Want: ids})
	if err != nil {
		n.noteSendError("pull encode", err)
		return
	}
	n.stats.PullsOut.Add(1)
	if err := n.tr.Send(to, data); err != nil {
		n.noteSendError("pull send", err)
	}
}

// handlePullLocked answers an anti-entropy pull: unicast the full
// announcement bytes of every requested tuple this node still stores,
// coalesced into batch frames. Requests for retracted structures are
// answered with the retraction, spreading the tombstone instead.
func (n *Node) handlePullLocked(from tuple.NodeID, msg *wire.Message) {
	n.stats.PullsIn.Add(1)
	for _, id := range msg.Want {
		st := n.states.lookup(id)
		if st == nil {
			continue
		}
		if st.has(stRetracted) {
			if data, err := wire.Encode(wire.Message{Type: wire.MsgRetract, ID: id}); err == nil {
				n.stageMsgs = append(n.stageMsgs, data)
			}
			continue
		}
		data, ok := n.storedWireLocked(st)
		if !ok {
			continue
		}
		n.stats.Unicasts.Add(1)
		if st.traceID != 0 {
			// Pull-repair response: the requester's next store/supersede
			// links to this span, closing the repair loop in the trace.
			n.traceLocked(TraceEvent{Kind: TraceSend, ID: id, TupleKind: st.local.Kind(), From: from, Hop: int(st.hop),
				TraceID: st.traceID, Span: st.span})
		}
		n.stageMsgs = append(n.stageMsgs, data)
	}
	n.flushStagedLocked(from)
}

// maintainLocked re-establishes the local consistency of a maintained
// structure: a non-source node must hold value min(supporting neighbor
// values) + step, adopt it when it changes, and withdraw its copy when
// no support remains or the value exceeds the structure's scope. Support
// excludes neighbors whose announced parent is this node (poisoned
// reverse), which prevents two-node count-to-scope loops; longer stale
// cycles are bounded by the scope and by MaxHops.
func (n *Node) maintainLocked(id tuple.ID, exemplar tuple.Maintained, ctx *tuple.Ctx) {
	st := n.stateFor(id)
	if st.has(stSource) {
		return
	}
	step := exemplar.Step()
	effMax := exemplar.MaxValue()
	if step > 0 {
		if hopCap := float64(n.cfg.MaxHops) * step; hopCap < effMax {
			effMax = hopCap
		}
	}

	best := math.Inf(1)
	poisoned := math.Inf(1)
	var bestNbr, poisonedNbr tuple.NodeID
	var bestSpan uint64
	for i := range st.peers {
		pe := &st.peers[i]
		if pe.flags&peerSupport == 0 || !n.linkedLocked(pe.id) {
			continue
		}
		if pe.parent == n.id && !n.cfg.DisablePoisonedReverse {
			if pe.val < poisoned {
				poisoned = pe.val
				poisonedNbr = pe.id
			}
			continue
		}
		// Rows are sorted by neighbor id, so the first minimum wins the
		// tie-break exactly like the explicit (val, nbr) comparison did.
		if pe.val < best || (pe.val == best && (bestNbr == "" || pe.id < bestNbr)) {
			best = pe.val
			bestNbr = pe.id
			bestSpan = pe.span
		}
	}
	desired := best + step

	if poisonedNbr != "" && poisoned+step < desired {
		// A skipped row outbids every usable support. A copy that truly
		// routed through this node would sit one step above the local
		// value, so the row's parent field is stale: the neighbor
		// re-parented but the parent-only re-announcement was lost or
		// suppressed (stParentFlap), and poisoned reverse would exclude
		// the node's genuinely best support forever. Pull the neighbor's
		// current bytes to refresh the row; the per-row backoff — which
		// same-version replies do not reset — bounds the probes when
		// the claim is a genuine loop rather than staleness.
		if n.allowProbeLocked(st, poisonedNbr) {
			n.tracePullLocked(id, poisonedNbr, st)
			n.sendPullMsgLocked(poisonedNbr, []tuple.ID{id})
		}
	}

	if math.IsInf(best, 1) || desired > effMax {
		if st.has(stStored) {
			if grace := n.cfg.SuspicionEpochs; grace > 0 {
				// Hysteresis: defer the withdraw for a grace window so a
				// transient loss burst (a few missed refresh epochs) does
				// not trigger a withdraw/re-propagation storm. The copy
				// keeps being announced while suspect; support returning
				// within the window cancels the suspicion silently.
				if st.suspectEpoch == 0 {
					st.suspectEpoch = uint32(n.epoch) + 1
					n.stats.Suspected.Add(1)
					n.traceLocked(TraceEvent{Kind: TraceSuspect, ID: id})
				}
				if (uint32(n.epoch)+1)-st.suspectEpoch < uint32(grace) {
					return
				}
				st.suspectEpoch = 0
			}
			n.dropMaintainedLocked(id, st)
		}
		return
	}
	if st.suspectEpoch != 0 {
		st.suspectEpoch = 0
		n.stats.SuspectRecovered.Add(1)
	}

	if st.has(stStored) {
		cur, ok := st.local.(tuple.Maintained)
		if !ok {
			return
		}
		if cur.Value() == desired {
			if st.parent != bestNbr {
				st.parent = bestNbr
				// One parent-only re-announcement per refresh epoch (see
				// stParentFlap); a suppressed flip still reaches the
				// neighborhood at the next refresh, whose re-encode sees
				// encParent != parent and sends full bytes.
				if !st.has(stParentFlap) {
					st.mark(stParentFlap)
					n.announceLocked(st)
				}
			}
			return
		}
		nl := cur.WithValue(desired)
		st.local = nl
		n.invalidateWireLocked(st)
		st.parent = bestNbr
		st.hop = int32(hopFromVal(desired, step, int(st.hop)))
		st.storedAt = n.now
		n.store.put(nl)
		n.stats.MaintAdopt.Add(1)
		if st.traceID != 0 {
			st.parentSpan = bestSpan
		}
		n.traceLocked(TraceEvent{Kind: TraceAdopt, ID: id, TupleKind: nl.Kind(), From: bestNbr, Value: desired,
			TraceID: st.traceID, Span: n.bumpSpanLocked(id, st), ParentSpan: bestSpan})
		n.emitTupleLocked(TupleArrived, nl)
		if nl.ShouldPropagate(ctx) {
			n.announceLocked(st)
		}
		return
	}

	// Not stored: first contact or re-adoption after a withdrawal.
	nl := exemplar.WithValue(desired)
	if !st.has(stVisited) {
		st.mark(stVisited)
		nl.OnArrive(ctx)
	}
	if !nl.ShouldStore(ctx) {
		return
	}
	st.mark(stStored)
	st.local = nl
	n.invalidateWireLocked(st)
	st.parent = bestNbr
	st.hop = int32(hopFromVal(desired, step, ctx.Hop))
	st.storedAt = n.now
	n.store.put(nl)
	n.stats.Stored.Add(1)
	if st.traceID != 0 {
		st.parentSpan = bestSpan
	}
	n.traceLocked(TraceEvent{Kind: TraceStore, ID: id, TupleKind: nl.Kind(), From: bestNbr, Hop: int(st.hop), Value: desired,
		TraceID: st.traceID, Span: n.bumpSpanLocked(id, st), ParentSpan: bestSpan})
	n.emitTupleLocked(TupleArrived, nl)
	if nl.ShouldPropagate(ctx) {
		st.mark(stPropagated)
		n.announceLocked(st)
	}
}

func (n *Node) dropMaintainedLocked(id tuple.ID, st *tupleState) {
	removed, _ := n.store.remove(id)
	st.unmark(stStored)
	st.local = nil
	n.invalidateWireLocked(st)
	st.parent = ""
	st.suspectEpoch = 0
	n.stats.MaintDrop.Add(1)
	n.traceLocked(TraceEvent{Kind: TraceWithdraw, ID: id, TraceID: st.traceID, Span: st.span})
	if removed != nil {
		n.emitTupleLocked(TupleRemoved, removed)
	}
	n.sendMsgLocked("", wire.Message{Type: wire.MsgWithdraw, ID: id})
}

func (n *Node) handleWithdrawLocked(from tuple.NodeID, id tuple.ID) {
	st := n.states.lookup(id)
	if st == nil || !st.has(stSupportTab) {
		return
	}
	if p := st.peer(from); p != nil {
		p.flags &^= peerSupport
	}
	if st.has(stStored) && !st.has(stSource) {
		if m, ok := st.local.(tuple.Maintained); ok {
			n.maintainLocked(id, m, n.ctxLocked(from, int(st.hop)))
		}
	}
	// If this node still holds a copy after the check, re-announce it:
	// the withdrawing neighbor (and anything downstream of it) can then
	// re-adopt, healing local deletions.
	if st.has(stStored) {
		n.announceLocked(st)
	}
}

func (n *Node) handleRetractLocked(id tuple.ID) {
	st := n.states.lookup(id)
	if st != nil && st.has(stRetracted) {
		return
	}
	if st == nil {
		// Tombstone only: the structure never passed through here, so
		// no downstream copies were fed by this node.
		st = n.stateFor(id)
		st.mark(stRetracted)
		return
	}
	n.retractLocked(id)
}

func (n *Node) retractLocked(id tuple.ID) {
	st := n.stateFor(id)
	if st.has(stRetracted) {
		return
	}
	st.mark(stRetracted)
	st.unmark(stSupportTab)
	st.peers = nil
	st.exemplar = nil
	st.parent = ""
	n.dropQueryStateLocked(id)
	if st.has(stStored) {
		st.unmark(stStored)
		if removed, ok := n.store.remove(id); ok {
			n.emitTupleLocked(TupleRemoved, removed)
		}
		st.local = nil
		n.invalidateWireLocked(st)
	}
	n.stats.Retracted.Add(1)
	n.traceLocked(TraceEvent{Kind: TraceRetract, ID: id})
	n.sendMsgLocked("", wire.Message{Type: wire.MsgRetract, ID: id})
}

// deleteLocked extracts matching tuples from the local space, emitting
// removal events and withdrawing maintained copies from the
// neighborhood.
func (n *Node) deleteLocked(tpl tuple.Template) []tuple.Tuple {
	matched := n.store.readRaw(tpl)
	out := make([]tuple.Tuple, 0, len(matched))
	for _, t := range matched {
		if !n.allow(OpDelete, n.id, t) {
			continue
		}
		id := t.ID()
		if removed, ok := n.store.remove(id); ok {
			out = append(out, removed)
			st := n.stateFor(id)
			st.unmark(stStored)
			st.local = nil
			n.invalidateWireLocked(st)
			st.parent = ""
			n.emitTupleLocked(TupleRemoved, removed)
			if _, isM := removed.(tuple.Maintained); isM {
				n.sendMsgLocked("", wire.Message{Type: wire.MsgWithdraw, ID: id})
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (n *Node) handleNeighborAddedLocked(peer tuple.NodeID) {
	if !n.addNbrLocked(peer) {
		return
	}
	if n.cfg.DisableCatchUp {
		n.emitNeighborLocked(NeighborAdded, peer)
		return
	}
	// The paper: "when new nodes get in touch with a network, TOTA
	// automatically checks the propagation rules of the stored tuples
	// and eventually propagates the tuples to the new nodes". We
	// unicast every stored propagating tuple to the newcomer, reusing
	// the cached announcement bytes when the copy is unchanged.
	n.idScratch = n.store.appendIDs(n.idScratch)
	for _, id := range n.idScratch {
		st := n.states.lookup(id)
		t, ok := n.store.get(id)
		if !ok || st == nil {
			continue
		}
		_, isMaintained := t.(tuple.Maintained)
		if !st.has(stPropagated) && !isMaintained {
			continue
		}
		data, ok := n.storedWireLocked(st)
		if !ok {
			continue
		}
		n.stats.Unicasts.Add(1)
		n.stageMsgs = append(n.stageMsgs, data)
	}
	n.flushStagedLocked(peer)
	n.emitNeighborLocked(NeighborAdded, peer)
}

func (n *Node) handleNeighborRemovedLocked(peer tuple.NodeID) {
	if !n.removeNbrLocked(peer) {
		return
	}
	n.aggForgetChildLocked(peer)
	// Re-check every maintained structure that counted the lost peer,
	// and forget what the peer last heard: if it returns, the digest
	// protocol restarts from scratch for it. The slab walk visits states
	// in handle order; the wire-affecting maintenance pass below runs in
	// sorted id order regardless.
	var affected []tuple.ID
	n.states.forEach(func(id tuple.ID, st *tupleState) {
		if hadSupport, _ := st.dropPeer(peer); hadSupport {
			if st.has(stStored) && !st.has(stSource) {
				affected = append(affected, id)
			}
		}
	})
	sort.Slice(affected, func(i, j int) bool {
		if affected[i].Node != affected[j].Node {
			return affected[i].Node < affected[j].Node
		}
		return affected[i].Seq < affected[j].Seq
	})
	for _, id := range affected {
		st := n.states.lookup(id)
		if st == nil || !st.has(stStored) {
			continue
		}
		if m, ok := st.local.(tuple.Maintained); ok {
			n.maintainLocked(id, m, n.ctxLocked(n.id, int(st.hop)))
		}
	}
	n.emitNeighborLocked(NeighborRemoved, peer)
}

// sweepExpiredLocked removes stored copies whose lease has elapsed,
// tombstoning their ids locally so announcements cannot resurrect them.
func (n *Node) sweepExpiredLocked(now float64) int {
	if now > n.now {
		n.now = now
	}
	removed := 0
	n.idScratch = n.store.appendIDs(n.idScratch)
	for _, id := range n.idScratch {
		t, ok := n.store.get(id)
		if !ok {
			continue
		}
		e, ok := t.(tuple.Expiring)
		if !ok || e.Lease() <= 0 {
			continue
		}
		st := n.states.lookup(id)
		if st == nil || n.now-st.storedAt < e.Lease() {
			continue
		}
		n.store.remove(id)
		st.unmark(stStored)
		st.local = nil
		n.invalidateWireLocked(st)
		st.parent = ""
		st.mark(stRetracted) // local tombstone: expired copies stay dead
		st.exemplar = nil
		n.dropQueryStateLocked(id)
		n.stats.Expired.Add(1)
		n.traceLocked(TraceEvent{Kind: TraceExpire, ID: id, TupleKind: t.Kind()})
		n.emitTupleLocked(TupleRemoved, t)
		if _, isM := t.(tuple.Maintained); isM {
			n.sendMsgLocked("", wire.Message{Type: wire.MsgWithdraw, ID: id})
		}
		removed++
	}
	return removed
}

// refreshLocked runs one anti-entropy epoch over every stored
// propagating tuple. For maintained non-source structures it first
// re-validates local consistency (a neighbor's withdrawal may itself
// have been lost). Tuples whose announcement changed since their last
// full broadcast are re-sent in full; unchanged tuples are advertised
// by a compact digest entry instead, and neighbors pull full bytes only
// for entries they cannot reconstruct. All outgoing messages of the
// epoch are staged and flushed as coalesced batch frames.
func (n *Node) refreshLocked() int {
	n.epoch++
	count := 0
	n.idScratch = n.store.appendIDs(n.idScratch)
	n.digestScratch = n.digestScratch[:0]
	n.aggScratch = n.aggScratch[:0]
	for _, id := range n.idScratch {
		st := n.states.lookup(id)
		t, ok := n.store.get(id)
		if !ok || st == nil {
			continue
		}
		if m, isMaintained := t.(tuple.Maintained); isMaintained {
			if !st.has(stSource) {
				// A new epoch re-arms the parent-only re-announcement
				// budget (see stParentFlap).
				st.unmark(stParentFlap)
				for i := range st.peers {
					pe := &st.peers[i]
					if pe.flags&peerSupport != 0 && pe.epoch+staleEpochs < uint32(n.epoch) {
						// Stale support is dropped but the row survives: its
						// consumed-version record outlives support exactly as
						// the old separate nbrVer map did. The remembered span
						// goes with the support entry.
						pe.flags &^= peerSupport
						pe.span = 0
					}
				}
				n.maintainLocked(id, m, n.ctxLocked(n.id, int(st.hop)))
				if !st.has(stStored) {
					continue
				}
			}
			if _, isQuery := st.local.(*agg.Query); isQuery {
				n.aggScratch = append(n.aggScratch, id)
			}
			count += n.stageRefreshLocked(st)
			continue
		}
		if !st.has(stPropagated) {
			continue
		}
		count += n.stageRefreshLocked(st)
	}
	n.stageDigestsLocked()
	// Source queries ride the epoch's broadcast flush with their wave;
	// convergecast partials go out afterwards as parent-link unicasts.
	n.aggStageWavesLocked()
	n.flushStagedLocked("")
	n.aggFlushPartialsLocked()
	return count
}

// stageRefreshLocked queues this epoch's announcement of one stored
// tuple: the cached full bytes when the announcement changed since the
// last neighborhood-wide broadcast, a digest entry otherwise. The
// digest entry for a maintained structure carries value and parent, so
// for neighbors that already hold the structure it is equivalent to the
// full announcement at a fraction of the bytes and decode cost.
func (n *Node) stageRefreshLocked(st *tupleState) int {
	data, ok := n.storedWireLocked(st)
	if !ok {
		return 0
	}
	if st.refreshedVer != st.ver {
		st.refreshedVer = st.ver
		n.stats.RefreshAnnounced.Add(1)
		if st.traceID != 0 {
			n.traceLocked(TraceEvent{Kind: TraceSend, ID: st.local.ID(), TupleKind: st.local.Kind(), Hop: int(st.hop),
				TraceID: st.traceID, Span: st.span})
		}
		n.stageMsgs = append(n.stageMsgs, data)
		return 1
	}
	n.stats.RefreshSuppressed.Add(1)
	e := wire.DigestEntry{ID: st.local.ID(), Ver: st.ver, Hop: clampHop(int(st.hop))}
	if m, ok := st.local.(tuple.Maintained); ok {
		e.Maintained = true
		e.Value = m.Value()
		e.Parent = st.parent
	}
	n.digestScratch = append(n.digestScratch, e)
	return 1
}

// stageDigestsLocked encodes the epoch's digest entries into one or
// more digest messages, each sized to fit the frame payload budget, and
// stages them for the flush.
func (n *Node) stageDigestsLocked() {
	entries := n.digestScratch
	if len(entries) == 0 {
		return
	}
	budget := n.frameLimit - wire.BatchOverhead - wire.BatchPerMessage
	start, size := 0, wire.DigestOverhead
	for i := range entries {
		es := wire.DigestEntrySize(&entries[i])
		if i > start && (size+es > budget || i-start >= wire.MaxDigestEntries) {
			n.stageDigestMsgLocked(entries[start:i])
			start, size = i, wire.DigestOverhead
		}
		size += es
	}
	n.stageDigestMsgLocked(entries[start:])
	n.digestScratch = entries[:0]
}

func (n *Node) stageDigestMsgLocked(entries []wire.DigestEntry) {
	data, err := wire.Encode(wire.Message{Type: wire.MsgDigest, Digest: entries})
	if err != nil {
		n.noteSendError("digest encode", err)
		return
	}
	n.stats.DigestsOut.Add(1)
	n.stageMsgs = append(n.stageMsgs, data)
}

// flushStagedLocked transmits the staged messages, coalescing runs of
// them into batch frames bounded by the frame payload budget. A run of
// one is sent bare (the single-message format stays on the wire, so
// peers without batching still interoperate). An empty destination
// broadcasts; otherwise the frames are unicast.
func (n *Node) flushStagedLocked(to tuple.NodeID) {
	msgs := n.stageMsgs
	if len(msgs) == 0 {
		return
	}
	start, size := 0, wire.BatchOverhead
	for i := range msgs {
		ms := wire.BatchPerMessage + len(msgs[i])
		if i > start && (size+ms > n.frameLimit || i-start >= wire.MaxBatchMessages) {
			n.sendFrameLocked(to, msgs[start:i])
			start, size = i, wire.BatchOverhead
		}
		size += ms
	}
	n.sendFrameLocked(to, msgs[start:])
	for i := range msgs {
		msgs[i] = nil
	}
	n.stageMsgs = msgs[:0]
}

// sendFrameLocked transmits one run of staged messages: bare when the
// run is a single message, as a batch frame otherwise. Frames are
// freshly allocated (EncodeBatch copies), so cached announcement bytes
// can be staged without aliasing hazards.
func (n *Node) sendFrameLocked(to tuple.NodeID, msgs [][]byte) {
	if len(msgs) == 0 {
		return
	}
	data := msgs[0]
	if len(msgs) > 1 {
		frame, err := wire.EncodeBatch(msgs)
		if err != nil {
			n.noteSendError("frame encode", err)
			return
		}
		n.stats.FramesOut.Add(1)
		data = frame
	}
	var err error
	if to == "" {
		n.stats.Broadcasts.Add(1)
		err = n.tr.Broadcast(data)
	} else {
		err = n.tr.Send(to, data)
	}
	if err != nil {
		n.noteSendError("frame send", err)
	}
}

// storedWireLocked returns the wire bytes announcing the stored copy
// (hop and parent included), re-encoding only when the copy, its hop,
// or its parent changed since the last send. The returned slice is
// shared with the transport and every queued packet; it is never
// mutated.
func (n *Node) storedWireLocked(st *tupleState) ([]byte, bool) {
	if !st.has(stStored) || st.local == nil {
		return nil, false
	}
	hop := clampHop(int(st.hop))
	if st.encCache != nil && st.encHop == hop && st.encParent == st.parent {
		st.mark(stEncShared)
		return st.encCache, true
	}
	// The announcement bytes are about to change: bump the version so
	// digests distinguish this announcement from every earlier one.
	st.ver++
	data, err := wire.AppendEncode(n.takeWireBufLocked(st), wire.Message{
		Type:   wire.MsgTuple,
		Hop:    hop,
		Parent: st.parent,
		Ver:    st.ver,
		Tuple:  st.local,
		Trace:  st.traceCtx(),
	})
	if err != nil {
		n.noteSendError("announce encode", err)
		return nil, false
	}
	st.encCache, st.encHop, st.encParent = data, hop, st.parent
	// Every caller hands the bytes to the transport or the staging
	// queue, so the cache counts as published from here on.
	st.mark(stEncShared)
	return data, true
}

// takeWireBufLocked returns a zero-length buffer for re-encoding a
// state's announcement: the state's own previous encoding when the
// transport allows reuse (released payloads, or bytes that were never
// handed out), a pooled buffer otherwise. Under a zero-copy transport
// (the deterministic sim retains published payloads in its in-flight
// queue) published bytes are never reused and the encoder allocates
// fresh, exactly like the pre-arena layout.
func (n *Node) takeWireBufLocked(st *tupleState) []byte {
	if buf := st.encCache; buf != nil {
		st.encCache = nil
		if n.recycleWire || !st.has(stEncShared) {
			return buf[:0]
		}
	}
	if n.wirePool == nil {
		return nil
	}
	return n.wirePool.get()
}

// invalidateWireLocked drops the cached announcement encoding,
// recycling the buffer into the node's wire arena when the transport
// permits. It must be called on every assignment or clearing of
// st.local: the cache is only consulted for the currently stored copy.
func (n *Node) invalidateWireLocked(st *tupleState) {
	if buf := st.encCache; buf != nil {
		st.encCache = nil
		if n.recycleWire || !st.has(stEncShared) {
			if n.wirePool == nil {
				n.wirePool = new(wirePool)
			}
			n.wirePool.put(buf)
		}
	}
	st.unmark(stEncShared)
}

// announceLocked broadcasts the node's stored copy of a structure with
// its current parent, using the cached encoding when nothing changed.
func (n *Node) announceLocked(st *tupleState) {
	data, ok := n.storedWireLocked(st)
	if !ok {
		return
	}
	// A full broadcast reaches the whole neighborhood, so subsequent
	// refreshes can advertise this version by digest.
	st.refreshedVer = st.ver
	n.stats.Broadcasts.Add(1)
	if st.traceID != 0 {
		n.traceLocked(TraceEvent{Kind: TraceSend, ID: st.local.ID(), TupleKind: st.local.Kind(), Hop: int(st.hop),
			TraceID: st.traceID, Span: st.span})
	}
	if err := n.tr.Broadcast(data); err != nil {
		n.noteSendError("announce broadcast", err)
	}
}

func (n *Node) broadcastTupleLocked(t tuple.Tuple, hop int, parent tuple.NodeID, tc wire.TraceCtx) {
	n.sendMsgLocked("", wire.Message{
		Type:   wire.MsgTuple,
		Hop:    clampHop(hop),
		Parent: parent,
		Tuple:  t,
		Trace:  tc,
	})
}

// sendMsgLocked encodes and transmits a message; an empty destination
// broadcasts to the one-hop neighborhood.
func (n *Node) sendMsgLocked(to tuple.NodeID, msg wire.Message) {
	data, err := wire.Encode(msg)
	if err != nil {
		n.noteSendError("encode", err)
		return
	}
	if to == "" {
		n.stats.Broadcasts.Add(1)
		err = n.tr.Broadcast(data)
	} else {
		err = n.tr.Send(to, data)
	}
	if err != nil {
		n.noteSendError("send", err)
	}
}

func (n *Node) emitTupleLocked(typ EventType, t tuple.Tuple) {
	// No subscriptions, no event: skip the defensive clone entirely.
	if len(n.subs) == 0 {
		return
	}
	// Subscription delivery is a read: policy-hidden tuples emit no
	// events.
	if !n.allow(OpRead, n.id, t) {
		return
	}
	c, err := n.cfg.Registry.Clone(t)
	if err != nil {
		c = t
	}
	n.pending = append(n.pending, Event{Type: typ, Node: n.id, Tuple: c})
}

func (n *Node) emitNeighborLocked(typ EventType, peer tuple.NodeID) {
	if len(n.subs) == 0 {
		return
	}
	n.pending = append(n.pending, Event{
		Type:  typ,
		Node:  n.id,
		Tuple: newNeighborTuple(n.id, peer, typ == NeighborAdded),
		Peer:  peer,
	})
}

func (n *Node) takePendingLocked() []Event {
	evs := n.pending
	n.pending = nil
	return evs
}

// dispatch delivers pending events to matching subscriptions, outside
// the engine lock so reactions can call the node API. n.subs is kept
// sorted by subscription id, so matching preserves registration order
// without a per-event sort; a node with no subscriptions pays only a
// lock round-trip per event.
func (n *Node) dispatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	var fns []Reaction
	for _, ev := range evs {
		n.mu.Lock()
		if len(n.subs) == 0 {
			n.mu.Unlock()
			continue
		}
		fns = fns[:0]
		for _, sub := range n.subs {
			if sub.tpl.Matches(ev.Tuple) {
				fns = append(fns, sub.fn)
			}
		}
		n.stats.Events.Add(int64(len(fns)))
		n.mu.Unlock()
		for _, fn := range fns {
			fn(ev)
		}
	}
}

func hopFromVal(val, step float64, fallback int) int {
	if step <= 0 {
		return fallback
	}
	h := int(val/step + 0.5)
	if h < 0 {
		return 0
	}
	return h
}

func clampHop(h int) uint16 {
	if h < 0 {
		return 0
	}
	if h > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(h)
}

// noteSendError counts a transport send (or encode) failure and emits
// a rate-limited structured log line. Send failures are expected in
// dynamic networks (a neighbor may vanish between the neighborhood
// snapshot and the transmission), so the engine never propagates them;
// the counter and log line keep them observable instead of silent.
// Logging fires at occurrence counts 1, 2, 4, 8, … so a flapping link
// cannot flood the log.
func (n *Node) noteSendError(op string, err error) {
	c := n.stats.SendErrors.Add(1)
	if n.cfg.Logger != nil && isPowerOfTwo(c) {
		n.cfg.Logger.Warn("tota: transport send failed",
			"node", string(n.id), "op", op, "err", err, "count", c)
	}
}

// noteDecodeStrikeLocked advances the per-source corrupt-frame
// accounting after a decode failure, quarantining the source once its
// consecutive-error run reaches Config.QuarantineThreshold: its next
// QuarantineCooldown packets are dropped unread, then it is re-admitted
// with a clean slate. Returns whether the source was just quarantined.
func (n *Node) noteDecodeStrikeLocked(from tuple.NodeID) bool {
	if n.cfg.QuarantineThreshold <= 0 {
		return false
	}
	s := n.decodeStrikes[from] + 1
	if s < n.cfg.QuarantineThreshold {
		if n.decodeStrikes == nil {
			n.decodeStrikes = make(map[tuple.NodeID]int)
		}
		n.decodeStrikes[from] = s
		return false
	}
	delete(n.decodeStrikes, from)
	if n.quarantined == nil {
		n.quarantined = make(map[tuple.NodeID]int)
	}
	n.quarantined[from] = n.cfg.QuarantineCooldown
	n.stats.QuarantineEvents.Add(1)
	return true
}

// noteDecodeError counts an undecodable packet, with the same
// power-of-two log rate limiting as noteSendError. Called outside the
// engine lock.
func (n *Node) noteDecodeError(from tuple.NodeID, err error, quarantined bool) {
	c := n.stats.DecodeErrors.Add(1)
	if n.cfg.Logger == nil {
		return
	}
	if quarantined {
		n.cfg.Logger.Warn("tota: source quarantined for repeated corrupt frames",
			"node", string(n.id), "from", string(from), "err", err,
			"cooldown_packets", n.cfg.QuarantineCooldown)
		return
	}
	if isPowerOfTwo(c) {
		n.cfg.Logger.Warn("tota: undecodable packet dropped",
			"node", string(n.id), "from", string(from), "err", err, "count", c)
	}
}

func isPowerOfTwo(c int64) bool { return c > 0 && c&(c-1) == 0 }
