package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tota/internal/pattern"
	"tota/internal/tuple"
)

func mkLocal(t *testing.T, name string, seq uint64) tuple.Tuple {
	t.Helper()
	l := pattern.NewLocal(name, tuple.I("v", int64(seq)))
	l.SetID(tuple.ID{Node: "n", Seq: seq})
	return l
}

func TestStorePutGetRemove(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	a := mkLocal(t, "a", 1)
	s.put(a)
	if got, ok := s.get(a.ID()); !ok || got != a {
		t.Fatal("get after put failed")
	}
	if s.size() != 1 || len(s.ids()) != 1 {
		t.Errorf("size = %d", s.size())
	}
	if removed, ok := s.remove(a.ID()); !ok || removed != a {
		t.Fatal("remove failed")
	}
	if s.size() != 0 {
		t.Error("size after remove")
	}
	if _, ok := s.remove(a.ID()); ok {
		t.Error("double remove succeeded")
	}
}

func TestStoreReplacementKeepsSingleEntry(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	a1 := mkLocal(t, "a", 1)
	s.put(a1)
	a2 := mkLocal(t, "a", 1) // same id, new instance
	s.put(a2)
	if s.size() != 1 {
		t.Fatalf("size = %d after replacement", s.size())
	}
	got := s.readRaw(pattern.ByName(pattern.KindLocal, "a"))
	if len(got) != 1 || got[0] != tuple.Tuple(a2) {
		t.Errorf("readRaw = %v", got)
	}
}

func TestStoreIndexedReadsMatchFullScan(t *testing.T) {
	// Property: whatever sequence of puts/removes, index-assisted reads
	// agree with a full-order scan.
	rng := rand.New(rand.NewSource(8))
	s := newStore(tuple.DefaultRegistry)
	live := make(map[tuple.ID]tuple.Tuple)
	names := []string{"a", "b", "c", "d"}
	var seq uint64
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			seq++
			name := names[rng.Intn(len(names))]
			tt := mkLocal(t, name, seq)
			s.put(tt)
			live[tt.ID()] = tt
		} else {
			for id := range live {
				s.remove(id)
				delete(live, id)
				break
			}
		}
	}
	for _, name := range names {
		tpl := pattern.ByName(pattern.KindLocal, name)
		indexed := s.readRaw(tpl)
		var scanned []tuple.Tuple
		for _, id := range s.order {
			if tt := s.byID[id]; tpl.Matches(tt) {
				scanned = append(scanned, tt)
			}
		}
		if len(indexed) != len(scanned) {
			t.Fatalf("name %s: indexed %d vs scanned %d", name, len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("name %s: order mismatch at %d", name, i)
			}
		}
	}
	if got := s.readRaw(tuple.MatchAll()); len(got) != len(live) {
		t.Errorf("MatchAll = %d, live = %d", len(got), len(live))
	}
}

func TestStoreCandidatesSelectivity(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	for i := 0; i < 100; i++ {
		s.put(mkLocal(t, fmt.Sprintf("item%d", i), uint64(i+1)))
	}
	g := pattern.NewGradient("field")
	g.SetID(tuple.ID{Node: "n", Seq: 999})
	s.put(g)

	if got := len(s.candidates(pattern.ByName(pattern.KindLocal, "item5"))); got != 1 {
		t.Errorf("kind+name candidates = %d, want 1", got)
	}
	if got := len(s.candidates(tuple.Match(pattern.KindGradient))); got != 1 {
		t.Errorf("kind candidates = %d, want 1", got)
	}
	if got := len(s.candidates(tuple.MatchAll())); got != 101 {
		t.Errorf("all candidates = %d, want 101", got)
	}
	// Prefix-glob kinds cannot use the index.
	if got := len(s.candidates(tuple.Template{Kind: "tota:*"})); got != 101 {
		t.Errorf("glob candidates = %d, want 101", got)
	}
}

func TestStoreReadOne(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	s.put(mkLocal(t, "x", 1))
	s.put(mkLocal(t, "x", 2))
	got, ok := s.readOne(pattern.ByName(pattern.KindLocal, "x"))
	if !ok || got.ID().Seq != 1 {
		t.Errorf("readOne = %v, %v (want first arrival)", got, ok)
	}
	if _, ok := s.readOne(pattern.ByName(pattern.KindLocal, "zzz")); ok {
		t.Error("readOne found missing tuple")
	}
}
