package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tota/internal/pattern"
	"tota/internal/tuple"
)

func mkLocal(t *testing.T, name string, seq uint64) tuple.Tuple {
	t.Helper()
	l := pattern.NewLocal(name, tuple.I("v", int64(seq)))
	l.SetID(tuple.ID{Node: "n", Seq: seq})
	return l
}

func TestStorePutGetRemove(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	a := mkLocal(t, "a", 1)
	s.put(a)
	if got, ok := s.get(a.ID()); !ok || got != a {
		t.Fatal("get after put failed")
	}
	if s.size() != 1 || len(s.ids()) != 1 {
		t.Errorf("size = %d", s.size())
	}
	if removed, ok := s.remove(a.ID()); !ok || removed != a {
		t.Fatal("remove failed")
	}
	if s.size() != 0 {
		t.Error("size after remove")
	}
	if _, ok := s.remove(a.ID()); ok {
		t.Error("double remove succeeded")
	}
}

func TestStoreReplacementKeepsSingleEntry(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	a1 := mkLocal(t, "a", 1)
	s.put(a1)
	a2 := mkLocal(t, "a", 1) // same id, new instance
	s.put(a2)
	if s.size() != 1 {
		t.Fatalf("size = %d after replacement", s.size())
	}
	got := s.readRaw(pattern.ByName(pattern.KindLocal, "a"))
	if len(got) != 1 || got[0] != tuple.Tuple(a2) {
		t.Errorf("readRaw = %v", got)
	}
}

func TestStoreIndexedReadsMatchFullScan(t *testing.T) {
	// Property: whatever sequence of puts/removes, index-assisted reads
	// agree with a full-order scan.
	rng := rand.New(rand.NewSource(8))
	s := newStore(tuple.DefaultRegistry)
	live := make(map[tuple.ID]tuple.Tuple)
	names := []string{"a", "b", "c", "d"}
	var seq uint64
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			seq++
			name := names[rng.Intn(len(names))]
			tt := mkLocal(t, name, seq)
			s.put(tt)
			live[tt.ID()] = tt
		} else {
			for id := range live {
				s.remove(id)
				delete(live, id)
				break
			}
		}
	}
	for _, name := range names {
		tpl := pattern.ByName(pattern.KindLocal, name)
		indexed := s.readRaw(tpl)
		var scanned []tuple.Tuple
		for _, id := range s.ids() {
			if tt, ok := s.get(id); ok && tpl.Matches(tt) {
				scanned = append(scanned, tt)
			}
		}
		if len(indexed) != len(scanned) {
			t.Fatalf("name %s: indexed %d vs scanned %d", name, len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("name %s: order mismatch at %d", name, i)
			}
		}
	}
	if got := s.readRaw(tuple.MatchAll()); len(got) != len(live) {
		t.Errorf("MatchAll = %d, live = %d", len(got), len(live))
	}
}

func TestStoreCandidatesSelectivity(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	for i := 0; i < 100; i++ {
		s.put(mkLocal(t, fmt.Sprintf("item%d", i), uint64(i+1)))
	}
	g := pattern.NewGradient("field")
	g.SetID(tuple.ID{Node: "n", Seq: 999})
	s.put(g)

	if got := len(s.candidates(pattern.ByName(pattern.KindLocal, "item5"))); got != 1 {
		t.Errorf("kind+name candidates = %d, want 1", got)
	}
	if got := len(s.candidates(tuple.Match(pattern.KindGradient))); got != 1 {
		t.Errorf("kind candidates = %d, want 1", got)
	}
	if got := len(s.candidates(tuple.MatchAll())); got != 101 {
		t.Errorf("all candidates = %d, want 101", got)
	}
	// Prefix-glob kinds cannot use the index.
	if got := len(s.candidates(tuple.Template{Kind: "tota:*"})); got != 101 {
		t.Errorf("glob candidates = %d, want 101", got)
	}
}

// TestStoreBulkRemoval exercises the tombstone/compaction path that
// keeps sweeping thousands of expiring tuples linear: interleaved bulk
// removals must preserve arrival order, index consistency, and the
// ids() snapshot, with no tombstones leaking out.
func TestStoreBulkRemoval(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	const n = 5000
	for i := 1; i <= n; i++ {
		s.put(mkLocal(t, fmt.Sprintf("bulk%d", i%7), uint64(i)))
	}
	// Remove every id not divisible by 5, front-to-back (worst case for
	// a compacting slice).
	for i := 1; i <= n; i++ {
		if i%5 != 0 {
			if _, ok := s.remove(tuple.ID{Node: "n", Seq: uint64(i)}); !ok {
				t.Fatalf("remove seq %d failed", i)
			}
		}
	}
	if s.size() != n/5 {
		t.Fatalf("size = %d, want %d", s.size(), n/5)
	}
	ids := s.ids()
	if len(ids) != n/5 {
		t.Fatalf("ids() = %d entries, want %d", len(ids), n/5)
	}
	for i, id := range ids {
		if id.IsZero() {
			t.Fatal("ids() leaked a tombstone")
		}
		if want := uint64((i + 1) * 5); id.Seq != want {
			t.Fatalf("ids()[%d].Seq = %d, want %d (arrival order lost)", i, id.Seq, want)
		}
	}
	// Index-assisted reads agree with the survivors.
	got := s.readRaw(pattern.ByName(pattern.KindLocal, "bulk3"))
	for _, tt := range got {
		if tt.ID().Seq%5 != 0 {
			t.Fatalf("readRaw returned removed tuple %s", tt.ID())
		}
	}
	// Re-adding after heavy removal still works.
	s.put(mkLocal(t, "fresh", n+1))
	if _, ok := s.get(tuple.ID{Node: "n", Seq: n + 1}); !ok {
		t.Fatal("put after bulk removal failed")
	}
}

func TestStoreReadOne(t *testing.T) {
	s := newStore(tuple.DefaultRegistry)
	s.put(mkLocal(t, "x", 1))
	s.put(mkLocal(t, "x", 2))
	got, ok := s.readOne(pattern.ByName(pattern.KindLocal, "x"))
	if !ok || got.ID().Seq != 1 {
		t.Errorf("readOne = %v, %v (want first arrival)", got, ok)
	}
	if _, ok := s.readOne(pattern.ByName(pattern.KindLocal, "zzz")); ok {
		t.Error("readOne found missing tuple")
	}
}
