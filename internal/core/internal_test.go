package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"tota/internal/space"
	"tota/internal/tuple"
)

func TestHopFromVal(t *testing.T) {
	tests := []struct {
		val, step float64
		fallback  int
		want      int
	}{
		{val: 4, step: 1, fallback: 9, want: 4},
		{val: 4.4, step: 1, fallback: 9, want: 4},
		{val: 10, step: 2, fallback: 9, want: 5},
		{val: 3, step: 0, fallback: 9, want: 9},
		{val: -2, step: 1, fallback: 9, want: 0},
	}
	for _, tt := range tests {
		if got := hopFromVal(tt.val, tt.step, tt.fallback); got != tt.want {
			t.Errorf("hopFromVal(%v, %v, %d) = %d, want %d",
				tt.val, tt.step, tt.fallback, got, tt.want)
		}
	}
}

func TestClampHop(t *testing.T) {
	tests := []struct {
		give int
		want uint16
	}{
		{give: -1, want: 0},
		{give: 0, want: 0},
		{give: 7, want: 7},
		{give: math.MaxUint16 + 5, want: math.MaxUint16},
	}
	for _, tt := range tests {
		if got := clampHop(tt.give); got != tt.want {
			t.Errorf("clampHop(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestSortNodeIDs(t *testing.T) {
	ids := []tuple.NodeID{"c", "a", "b"}
	sortNodeIDs(ids)
	if ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Errorf("sorted = %v", ids)
	}
	sortNodeIDs(nil) // must not panic
}

func TestEventTypeString(t *testing.T) {
	tests := []struct {
		give EventType
		want string
	}{
		{TupleArrived, "tuple-arrived"},
		{TupleRemoved, "tuple-removed"},
		{NeighborAdded, "neighbor-added"},
		{NeighborRemoved, "neighbor-removed"},
		{EventType(99), "unknown-event"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		give Op
		want string
	}{
		{OpInject, "inject"},
		{OpRead, "read"},
		{OpDelete, "delete"},
		{OpRetract, "retract"},
		{OpAccept, "accept"},
		{Op(99), "unknown-op"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	// Fill every field via reflection so a counter missed by Add (or a
	// new field without an Add line) fails here instead of silently
	// reporting zeros in experiment rollups.
	var a Stats
	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
	}
	sum := a.Add(a)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		if got, want := sv.Field(i).Int(), int64(2*(i+1)); got != want {
			t.Errorf("Add dropped field %s: got %d, want %d",
				sv.Type().Field(i).Name, got, want)
		}
	}
}

func TestNeighborTupleHooks(t *testing.T) {
	nt := newNeighborTuple("me", "peer", true)
	if nt.ShouldStore(nil) || nt.ShouldPropagate(nil) {
		t.Error("neighbor tuple wants to persist or propagate")
	}
	if nt.Kind() != NeighborTupleKind {
		t.Errorf("Kind = %q", nt.Kind())
	}
	c := nt.Content()
	if c.GetString("peer") != "peer" || !c.GetBool("added") || c.GetString("node") != "me" {
		t.Errorf("content = %v", c)
	}
}

// failingSender is a transport whose sends always fail.
type failingSender struct{}

var errSendBoom = errors.New("boom")

func (failingSender) Self() tuple.NodeID              { return "solo" }
func (failingSender) Neighbors() []tuple.NodeID       { return []tuple.NodeID{"ghost"} }
func (failingSender) Broadcast([]byte) error          { return errSendBoom }
func (failingSender) Send(tuple.NodeID, []byte) error { return errSendBoom }

func TestSendErrorsAreCountedNotFatal(t *testing.T) {
	n := New(failingSender{})
	g := &countingTuple{}
	if _, err := n.Inject(g); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if n.Stats().SendErrors == 0 {
		t.Error("send failure not counted")
	}
	// The tuple is still stored locally despite the failed broadcast.
	if n.StoreSize() != 1 {
		t.Errorf("StoreSize = %d", n.StoreSize())
	}
}

// countingTuple is a minimal propagating tuple for white-box tests.
type countingTuple struct {
	tuple.Base
}

func (*countingTuple) Kind() string           { return "core-test:counting" }
func (*countingTuple) Content() tuple.Content { return nil }

func TestWithRegistryAndPosition(t *testing.T) {
	reg := tuple.NewRegistry()
	n := New(failingSender{},
		WithRegistry(reg),
		WithLocalizer(space.FixedLocalizer{P: space.Point{X: 1, Y: 2}}),
	)
	if p, ok := n.Position(); !ok || p != (space.Point{X: 1, Y: 2}) {
		t.Errorf("Position = %v, %v", p, ok)
	}
	if n.cfg.Registry != reg {
		t.Error("registry option ignored")
	}
	// Nil options fall back to defaults.
	d := New(failingSender{}, WithRegistry(nil), WithLocalizer(nil), WithMaxHops(-1))
	if d.cfg.Registry == nil || d.cfg.Localizer == nil || d.cfg.MaxHops != DefaultMaxHops {
		t.Error("defaults not applied")
	}
}

func TestHandlePacketGarbage(t *testing.T) {
	n := New(failingSender{})
	n.HandlePacket("ghost", []byte{0xde, 0xad})
	if n.Stats().DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d", n.Stats().DecodeErrors)
	}
}

func TestDuplicateNeighborEventsIgnored(t *testing.T) {
	n := New(failingSender{})
	n.HandleNeighbor("x", true)
	n.HandleNeighbor("x", true) // duplicate add
	if got := len(n.Neighbors()); got != 2 {
		// "ghost" from the transport plus "x".
		t.Errorf("neighbors = %v", n.Neighbors())
	}
	n.HandleNeighbor("x", false)
	n.HandleNeighbor("x", false) // duplicate remove
	if got := len(n.Neighbors()); got != 1 {
		t.Errorf("neighbors after removal = %v", n.Neighbors())
	}
}

func TestRetractUnknownIDTombstones(t *testing.T) {
	n := New(failingSender{})
	id := tuple.ID{Node: "elsewhere", Seq: 3}
	n.handleRetractLockedPublic(id)
	st := n.states.lookup(id)
	if st == nil || !st.has(stRetracted) {
		t.Error("unknown retract did not tombstone")
	}
	// A second retract for the same id is a no-op.
	n.handleRetractLockedPublic(id)
	if got := n.stats.Retracted.Load(); got != 0 {
		t.Errorf("tombstone-only retract counted: %d", got)
	}
}

// handleRetractLockedPublic wraps the locked handler for white-box use.
func (n *Node) handleRetractLockedPublic(id tuple.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handleRetractLocked(id)
}
