package core

import "math/bits"

// wirePool is a size-classed arena for announcement encodings. The
// engine re-encodes a tuple's announcement whenever its stored copy,
// hop, or parent changes; on transports that release payload bytes
// before Send/Broadcast returns (transport.PayloadReleaser, e.g. UDP,
// which copies into the socket), the superseded buffer is recycled here
// instead of left to the garbage collector, so a churning structure
// reuses a handful of buffers instead of allocating one per version.
//
// Under the deterministic sim — which retains published payloads
// zero-copy in its in-flight queue — published buffers never reach the
// pool (see Node.invalidateWireLocked); only never-shared buffers do,
// so the pool is correct on every transport and profitable on copying
// ones.
//
// Classes are powers of two from wirePoolMin to wirePoolMax bytes;
// buffers outside that range are not pooled. Each class keeps at most
// wirePoolDepth buffers, bounding retained memory per node to a few
// KiB.
type wirePool struct {
	classes [wirePoolClasses][][]byte
}

const (
	wirePoolMin     = 64   // class 0 capacity
	wirePoolMax     = 4096 // largest pooled capacity
	wirePoolClasses = 7    // 64, 128, 256, 512, 1024, 2048, 4096
	wirePoolDepth   = 8
)

// wireClass maps a buffer capacity to its size class: the largest class
// not exceeding c for put (so a get never receives less capacity than
// the class promises), or -1 when c is below the smallest class.
func wireClass(c int) int {
	if c < wirePoolMin {
		return -1
	}
	k := bits.Len(uint(c)/wirePoolMin) - 1
	if k >= wirePoolClasses {
		k = wirePoolClasses - 1
	}
	return k
}

// get returns a zero-length recycled buffer, preferring the largest
// non-empty class so re-encodes rarely grow, or nil when the pool is
// empty (the encoder then allocates exactly as before pooling).
func (p *wirePool) get() []byte {
	for k := wirePoolClasses - 1; k >= 0; k-- {
		if n := len(p.classes[k]); n > 0 {
			b := p.classes[k][n-1]
			p.classes[k][n-1] = nil
			p.classes[k] = p.classes[k][:n-1]
			return b[:0]
		}
	}
	return nil
}

// put recycles a buffer the caller proved safe to reuse. Undersized and
// oversized buffers are dropped to the garbage collector.
func (p *wirePool) put(b []byte) {
	k := wireClass(cap(b))
	if k < 0 || cap(b) > wirePoolMax {
		return
	}
	if len(p.classes[k]) >= wirePoolDepth {
		return
	}
	p.classes[k] = append(p.classes[k], b)
}
