package core

import (
	"sync"

	"tota/internal/tuple"
)

// EventType classifies the occurrences the EVENT INTERFACE notifies:
// tuple arrivals/removals in the local space and neighborhood changes.
type EventType int

// Event types.
const (
	// TupleArrived fires when a tuple enters the local space or its
	// stored copy changes (supersede or maintenance adoption).
	TupleArrived EventType = iota + 1
	// TupleRemoved fires when a tuple leaves the local space (delete,
	// retract, or maintenance withdrawal).
	TupleRemoved
	// NeighborAdded fires when a node joins the one-hop neighborhood.
	NeighborAdded
	// NeighborRemoved fires when a node leaves the one-hop neighborhood.
	NeighborRemoved
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case TupleArrived:
		return "tuple-arrived"
	case TupleRemoved:
		return "tuple-removed"
	case NeighborAdded:
		return "neighbor-added"
	case NeighborRemoved:
		return "neighbor-removed"
	default:
		return "unknown-event"
	}
}

// NeighborTupleKind is the kind of the synthesized tuples representing
// neighborhood events, honoring the paper's "any event occurring in TOTA
// can be represented as a tuple": subscriptions select neighbor events
// with ordinary templates over this kind.
const NeighborTupleKind = "tota:neighbor"

// Event is one occurrence delivered to a subscription's reaction.
type Event struct {
	Type EventType
	// Node is the local node the event occurred at.
	Node tuple.NodeID
	// Tuple is the tuple the event is about. For neighbor events it is
	// a synthesized NeighborTupleKind tuple with fields (peer, added).
	Tuple tuple.Tuple
	// Peer is the neighbor involved, for neighbor events.
	Peer tuple.NodeID
}

// Reaction is the callback a subscription associates with matching
// events, the paper's "reaction method". Reactions run outside the
// middleware lock and may freely call back into the node's API.
type Reaction func(Event)

// OncePerTuple wraps a reaction so it fires at most once per tuple id:
// arrival events re-fire on supersedes and maintenance adoptions, which
// responders that inject replies usually want to ignore. The wrapper is
// safe for concurrent use; its memory grows with the number of distinct
// tuples seen.
func OncePerTuple(fn Reaction) Reaction {
	var mu sync.Mutex
	seen := make(map[tuple.ID]struct{})
	return func(ev Event) {
		if ev.Tuple == nil {
			fn(ev)
			return
		}
		id := ev.Tuple.ID()
		mu.Lock()
		if _, dup := seen[id]; dup {
			mu.Unlock()
			return
		}
		seen[id] = struct{}{}
		mu.Unlock()
		fn(ev)
	}
}

// SubID identifies a subscription for Unsubscribe.
type SubID int

type subscription struct {
	id  SubID
	tpl tuple.Template
	fn  Reaction
}

// neighborTuple is the synthesized tuple for neighborhood events. It is
// local-only: it never propagates and never crosses the wire.
type neighborTuple struct {
	tuple.Base

	c tuple.Content
}

var _ tuple.Tuple = (*neighborTuple)(nil)

func newNeighborTuple(self, peer tuple.NodeID, added bool) *neighborTuple {
	return &neighborTuple{c: tuple.Content{
		tuple.S("peer", string(peer)),
		tuple.B("added", added),
		tuple.S("node", string(self)),
	}}
}

func (n *neighborTuple) Kind() string                    { return NeighborTupleKind }
func (n *neighborTuple) Content() tuple.Content          { return n.c }
func (n *neighborTuple) ShouldStore(*tuple.Ctx) bool     { return false }
func (n *neighborTuple) ShouldPropagate(*tuple.Ctx) bool { return false }
