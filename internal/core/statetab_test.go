package core

import (
	"fmt"
	"testing"

	"tota/internal/tuple"
)

func stID(i int) tuple.ID { return tuple.ID{Node: "n", Seq: uint64(i + 1)} }

// TestStateChunkFor pins the slab geometry: chunk k holds 1<<k states
// and handles map to (chunk, slot) without gaps or overlaps.
func TestStateChunkFor(t *testing.T) {
	var h int32
	for k := int32(0); k < 6; k++ {
		for s := int32(0); s < 1<<k; s++ {
			gc, gs := stateChunkFor(h)
			if gc != k || gs != s {
				t.Fatalf("stateChunkFor(%d) = (%d, %d), want (%d, %d)", h, gc, gs, k, s)
			}
			h++
		}
	}
}

// TestStateTablePointerStability checks the core slab contract: a
// *tupleState returned by intern stays valid (same address, same
// contents) across arbitrary growth, because chunks append and never
// move.
func TestStateTablePointerStability(t *testing.T) {
	var tab stateTable
	first := tab.intern(stID(0))
	first.hop = 42
	for i := 1; i < 200; i++ {
		tab.intern(stID(i)).hop = int32(i)
	}
	if again := tab.lookup(stID(0)); again != first || again.hop != 42 {
		t.Fatalf("state 0 moved or lost: %p vs %p, hop=%d", again, first, first.hop)
	}
	for i := 1; i < 200; i++ {
		if st := tab.lookup(stID(i)); st == nil || st.hop != int32(i) {
			t.Fatalf("state %d lost after growth", i)
		}
	}
	if tab.len() != 200 {
		t.Errorf("len = %d", tab.len())
	}
}

// TestStateTableSmallModePromotion checks the lazy boundary map: small
// tables never allocate it, crossing stateSmallMax promotes exactly
// once, and lookups agree before and after.
func TestStateTableSmallModePromotion(t *testing.T) {
	var tab stateTable
	for i := 0; i < stateSmallMax; i++ {
		tab.intern(stID(i))
	}
	if tab.byID != nil {
		t.Fatalf("map allocated for %d entries (small max %d)", tab.len(), stateSmallMax)
	}
	tab.intern(stID(stateSmallMax))
	if tab.byID == nil {
		t.Fatal("map not built past the small threshold")
	}
	if len(tab.byID) != stateSmallMax+1 {
		t.Errorf("promoted map has %d entries, want %d", len(tab.byID), stateSmallMax+1)
	}
	for i := 0; i <= stateSmallMax; i++ {
		if tab.lookup(stID(i)) == nil {
			t.Fatalf("id %d lost across promotion", i)
		}
	}
	if tab.lookup(tuple.ID{Node: "x", Seq: 1}) != nil {
		t.Error("lookup invented a state")
	}
}

// TestStateTableReleaseRecycles checks the free list: released handles
// are reused by later interns, forEach skips freed slots, and a
// release/intern churn never grows the slab.
func TestStateTableReleaseRecycles(t *testing.T) {
	var tab stateTable
	for i := 0; i < 24; i++ {
		tab.intern(stID(i))
	}
	slots := len(tab.ids)
	for i := 0; i < 24; i += 2 {
		tab.release(stID(i))
	}
	if tab.len() != 12 {
		t.Fatalf("len after release = %d", tab.len())
	}
	seen := make(map[tuple.ID]bool)
	tab.forEach(func(id tuple.ID, st *tupleState) { seen[id] = true })
	if len(seen) != 12 {
		t.Fatalf("forEach visited %d entries, want 12", len(seen))
	}
	for i := 0; i < 24; i += 2 {
		if seen[stID(i)] {
			t.Fatalf("forEach visited released id %d", i)
		}
	}
	for i := 100; i < 112; i++ {
		tab.intern(stID(i))
	}
	if len(tab.ids) != slots {
		t.Errorf("slab grew to %d slots despite %d free handles", len(tab.ids), 12)
	}
	// Releasing an unknown id is a no-op.
	tab.release(tuple.ID{Node: "x", Seq: 9})
	if tab.len() != 24 {
		t.Errorf("len = %d after no-op release", tab.len())
	}
}

// TestStateTableSmallScanMatchesMap cross-checks small-mode linear
// resolution against big-mode hashing over the same operation sequence.
func TestStateTableSmallScanMatchesMap(t *testing.T) {
	var small, big stateTable
	for i := 0; i < stateSmallMax*4; i++ {
		big.intern(stID(i))
	}
	for i := 0; i < stateSmallMax/2; i++ {
		small.intern(stID(i))
	}
	for i := 0; i < stateSmallMax; i++ {
		wantSmall := i < stateSmallMax/2
		if got := small.lookup(stID(i)) != nil; got != wantSmall {
			t.Errorf("small lookup(%d) = %v, want %v", i, got, wantSmall)
		}
		if big.lookup(stID(i)) == nil {
			t.Errorf("big lookup(%d) = nil", i)
		}
	}
}

func BenchmarkStateTableIntern(b *testing.B) {
	ids := make([]tuple.ID, 64)
	for i := range ids {
		ids[i] = tuple.ID{Node: tuple.NodeID(fmt.Sprintf("n%03d", i)), Seq: uint64(i)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var tab stateTable
		for _, id := range ids {
			tab.intern(id)
		}
	}
}
