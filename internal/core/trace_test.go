package core_test

import (
	"strings"
	"sync"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// traceLog collects trace events thread-safely.
type traceLog struct {
	mu     sync.Mutex
	events []core.TraceEvent
}

func (l *traceLog) add(ev core.TraceEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *traceLog) kinds() map[core.TraceKind]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[core.TraceKind]int)
	for _, ev := range l.events {
		out[ev.Kind]++
	}
	return out
}

// newTracedNet wires a shared tracer into every node of a line network.
func newTracedNet(t *testing.T, n int, log *traceLog) *testNet {
	t.Helper()
	g := topology.Line(n)
	sim := transport.NewSim(g, transport.SimConfig{})
	tn := &testNet{t: t, sim: sim, graph: g, nodes: make(map[tuple.NodeID]*core.Node)}
	for _, id := range g.Nodes() {
		id := id
		ep := sim.Attach(id, nil)
		node := core.New(ep,
			core.WithTracer(log.add),
			core.WithLocalizer(space.FuncLocalizer(func() (space.Point, bool) {
				return g.Position(id)
			})))
		sim.Bind(id, node)
		tn.nodes[id] = node
	}
	return tn
}

func TestTracerSeesLifecycle(t *testing.T) {
	var log traceLog
	tn := newTracedNet(t, 4, &log)
	src := tn.node(topology.NodeName(0))

	id, err := src.Inject(pattern.NewGradient("f"))
	if err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.sim.RemoveEdge(topology.NodeName(2), topology.NodeName(3))
	tn.quiesce()
	src.Retract(id)
	tn.quiesce()

	kinds := log.kinds()
	for _, want := range []core.TraceKind{
		core.TraceInject, core.TraceStore, core.TraceWithdraw, core.TraceRetract,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v events: %v", want, kinds)
		}
	}
}

func TestTracerSeesExpiry(t *testing.T) {
	var log traceLog
	tn := newTracedNet(t, 2, &log)
	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("x").Expires(1)); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.node(topology.NodeName(0)).SweepExpired(5)
	if log.kinds()[core.TraceExpire] == 0 {
		t.Error("no expire trace")
	}
}

func TestTraceEventString(t *testing.T) {
	ev := core.TraceEvent{
		Kind:      core.TraceAdopt,
		Node:      "n1",
		ID:        tuple.ID{Node: "src", Seq: 2},
		TupleKind: "tota:gradient",
		From:      "n2",
		Value:     3,
	}
	s := ev.String()
	for _, want := range []string{"n1", "adopt", "src#2", "tota:gradient", "from n2", "val=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	for k := core.TraceInject; k <= core.TraceDeny; k++ {
		if k.String() == "unknown-trace" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if core.TraceKind(99).String() != "unknown-trace" {
		t.Error("unknown kind misnamed")
	}
}

func TestTracerMayCallBackIntoNode(t *testing.T) {
	// Tracers run outside the lock: calling the API from one must not
	// deadlock.
	g := topology.Line(2)
	sim := transport.NewSim(g, transport.SimConfig{})
	var node *core.Node
	calls := 0
	ep := sim.Attach(topology.NodeName(0), nil)
	node = core.New(ep, core.WithTracer(func(core.TraceEvent) {
		calls++
		node.StoreSize()
		node.Read(tuple.MatchAll())
	}))
	sim.Bind(topology.NodeName(0), node)
	if _, err := node.Inject(pattern.NewLocal("x")); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("tracer never ran")
	}
}
