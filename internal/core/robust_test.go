package core_test

import (
	"math"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
	"tota/internal/wire"
)

// lossBurstDrops runs a converged a-b-c chain through a burst of
// fully-lossy refresh epochs on the b->c link, heals it, runs recovery
// epochs, and reports the network's withdraw count plus c's final hold
// of the gradient.
func lossBurstDrops(t *testing.T, burstEpochs int, opts ...core.Option) (maintDrop int64, suspected, recovered int64, cHolds bool) {
	t.Helper()
	g := topology.Line(3)
	tn := newTestNet(t, g, opts...)
	a, c := topology.NodeName(0), topology.NodeName(2)
	injectGradient(t, tn, a, "f", math.Inf(1))
	refreshAll(tn) // converge announcement versions
	tn.assertGradientMatchesBFS(a, "f", math.Inf(1))

	b := topology.NodeName(1)
	tn.sim.SetLinkLoss(b, c, 1)
	for i := 0; i < burstEpochs; i++ {
		refreshAll(tn)
	}
	tn.sim.SetLinkLoss(b, c, -1)
	for i := 0; i < 3; i++ {
		refreshAll(tn)
	}
	st := tn.totalStats()
	_, cHolds = tn.gradVal(c, pattern.KindGradient, "f")
	return st.MaintDrop, st.Suspected, st.SuspectRecovered, cHolds
}

// TestFaultSuspicionAbsorbsLossBurst is the hysteresis acceptance
// criterion: a 3-epoch loss burst on one link must not produce any
// withdraw/re-propagation cycle when suspicion is enabled, while the
// baseline engine (grace disabled) does withdraw — proving the grace
// window is what absorbs the burst.
func TestFaultSuspicionAbsorbsLossBurst(t *testing.T) {
	drops, _, _, holds := lossBurstDrops(t, 3)
	if drops == 0 {
		t.Fatal("baseline: 3-epoch loss burst caused no withdraw — the scenario is not stressing stale-support pruning")
	}
	if !holds {
		t.Error("baseline: gradient did not recover after the heal")
	}

	drops, suspected, recovered, holds := lossBurstDrops(t, 3, core.WithSuspicion(2))
	if drops != 0 {
		t.Errorf("suspicion: burst caused %d withdrawals, want 0", drops)
	}
	if suspected == 0 {
		t.Error("suspicion: no copy entered the grace window (burst not observed)")
	}
	if recovered == 0 {
		t.Error("suspicion: no suspicion was cancelled by returning support")
	}
	if !holds {
		t.Error("suspicion: gradient lost despite the grace window")
	}
}

// TestFaultSuspicionStillWithdrawsWhenSupportIsGone: hysteresis defers
// the withdraw, it must not suppress it — a burst longer than the
// grace window still tears the orphan copy down.
func TestFaultSuspicionStillWithdrawsWhenSupportIsGone(t *testing.T) {
	drops, suspected, _, _ := lossBurstDrops(t, 8, core.WithSuspicion(2))
	if suspected == 0 {
		t.Fatal("no suspicion raised during an 8-epoch outage")
	}
	if drops == 0 {
		t.Error("withdraw never fired despite the grace window elapsing")
	}
}

// TestFaultPullBackoffBoundsPullStorm is the backoff acceptance
// criterion: a neighbor that advertises a structure by digest but
// whose pull channel is dead (the crashed-then-silent analogue — here
// the b->a direction drops everything, so pulls vanish in flight)
// must induce a bounded, decaying pull sequence instead of one pull
// per refresh epoch.
func TestFaultPullBackoffBoundsPullStorm(t *testing.T) {
	const epochs = 16
	run := func(opts ...core.Option) (pullsOut, suppressed int64) {
		g := topology.New()
		g.AddNode("a")
		g.AddNode("b")
		opts = append([]core.Option{core.WithoutCatchUp()}, opts...)
		tn := newTestNet(t, g, opts...)
		// Inject while isolated: the announcement broadcast reaches
		// nobody, so b can only ever learn of the structure by digest.
		injectGradient(t, tn, "a", "f", math.Inf(1))
		tn.sim.SetLinkLoss("b", "a", 1) // pulls die in flight
		tn.sim.AddEdge("a", "b")
		for i := 0; i < epochs; i++ {
			refreshAll(tn)
		}
		st := tn.node("b").Stats()
		return st.PullsOut, st.PullsSuppressed
	}

	pulls, _ := run()
	if pulls != epochs {
		t.Fatalf("baseline: %d pulls over %d epochs, want one per epoch (scenario must provoke a pull storm)", pulls, epochs)
	}

	pulls, suppressed := run(core.WithPullBackoff(8))
	// Decaying sequence with gaps 1,1,2,4,8,…: far fewer than one per
	// epoch, and every suppressed mention is accounted for.
	if pulls >= epochs/2 {
		t.Errorf("backoff: %d pulls over %d epochs, want a decayed sequence (< %d)", pulls, epochs, epochs/2)
	}
	if pulls == 0 {
		t.Error("backoff: no pulls at all — backoff must retry, not give up")
	}
	if suppressed != int64(epochs)-pulls {
		t.Errorf("suppressed = %d, want %d (every digest mention either pulls or counts as suppressed)", suppressed, int64(epochs)-pulls)
	}
}

// TestFaultPullBackoffResetsOnConsumedContent: once the neighbor
// answers, the backoff state must clear so the next gap starts at 1.
func TestFaultPullBackoffResetsOnConsumedContent(t *testing.T) {
	g := topology.New()
	g.AddNode("a")
	g.AddNode("b")
	tn := newTestNet(t, g, core.WithoutCatchUp(), core.WithPullBackoff(8))
	injectGradient(t, tn, "a", "f", math.Inf(1))
	tn.sim.SetLinkLoss("b", "a", 1)
	tn.sim.AddEdge("a", "b")
	for i := 0; i < 8; i++ {
		refreshAll(tn)
	}
	if st := tn.node("b").Stats(); st.PullsSuppressed == 0 {
		t.Fatal("no suppression before the heal — scenario broken")
	}
	// Heal the pull channel: the next allowed pull round-trips, b
	// adopts, and the backoff entry for (a, f) is reset.
	tn.sim.SetLinkLoss("b", "a", -1)
	for i := 0; i < 10 && len(tn.node("b").Read(pattern.ByName(pattern.KindGradient, "f"))) == 0; i++ {
		refreshAll(tn)
	}
	if len(tn.node("b").Read(pattern.ByName(pattern.KindGradient, "f"))) == 0 {
		t.Fatal("b never adopted the gradient after the heal")
	}
	suppressedAtHeal := tn.node("b").Stats().PullsSuppressed
	// Converged: digests now match recorded versions, so no further
	// pulls happen and nothing more is suppressed.
	for i := 0; i < 4; i++ {
		refreshAll(tn)
	}
	if got := tn.node("b").Stats().PullsSuppressed; got != suppressedAtHeal {
		t.Errorf("suppression kept counting after convergence: %d -> %d", suppressedAtHeal, got)
	}
}

// TestFaultQuarantineIsolatesCorruptSource: repeated undecodable
// frames from one source demote it for a packet-count cooldown, after
// which it is re-admitted; an isolated bad frame costs nothing.
func TestFaultQuarantineIsolatesCorruptSource(t *testing.T) {
	g := topology.New()
	g.AddEdge("a", "b")
	tn := newTestNet(t, g, core.WithQuarantine(3, 4))
	b := tn.node("b")

	valid, err := wire.Encode(wire.Message{Type: wire.MsgPull, Want: []tuple.ID{{Node: "a", Seq: 1}}})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	// An isolated bad frame, then a good one: strike run resets, no
	// quarantine.
	b.HandlePacket("a", []byte{0xFF, 0xFF})
	b.HandlePacket("a", valid)
	b.HandlePacket("a", []byte{0xFF, 0xFF})
	b.HandlePacket("a", valid)
	if st := b.Stats(); st.QuarantineEvents != 0 {
		t.Fatalf("isolated bad frames triggered quarantine (events=%d)", st.QuarantineEvents)
	}

	// Three consecutive bad frames: the source is quarantined.
	for i := 0; i < 3; i++ {
		b.HandlePacket("a", []byte{0xFF, 0xFF})
	}
	st := b.Stats()
	if st.QuarantineEvents != 1 {
		t.Fatalf("QuarantineEvents = %d, want 1", st.QuarantineEvents)
	}

	// The next 4 packets — even valid ones — are dropped unread.
	inBefore := st.PacketsIn
	for i := 0; i < 4; i++ {
		b.HandlePacket("a", valid)
	}
	st = b.Stats()
	if st.QuarantineDropped != 4 {
		t.Errorf("QuarantineDropped = %d, want 4", st.QuarantineDropped)
	}
	if st.PacketsIn != inBefore {
		t.Error("quarantined packets still reached the engine")
	}

	// Cooldown elapsed: the source is re-admitted with a clean slate.
	b.HandlePacket("a", valid)
	if got := b.Stats().PacketsIn; got != inBefore+1 {
		t.Errorf("PacketsIn after cooldown = %d, want %d (source must be re-admitted)", got, inBefore+1)
	}

	// Other sources are unaffected throughout.
	b.HandlePacket("c", valid)
	if got := b.Stats().PacketsIn; got != inBefore+2 {
		t.Error("unrelated source was affected by the quarantine")
	}
}

// TestFaultExpiredTupleNotResurrectedByStaleDigest: a tombstoned
// (lease-expired) copy must not come back when a stale neighbor digest
// or a late pull response for it arrives after the sweep.
func TestFaultExpiredTupleNotResurrectedByStaleDigest(t *testing.T) {
	g := topology.New()
	g.AddEdge("a", "b")
	tn := newTestNet(t, g)

	// A leased gradient from a reaches b; both hold it.
	gr := pattern.NewGradient("tmp").Expires(5)
	if _, err := tn.node("a").Inject(gr); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()
	refreshAll(tn) // settle announcement versions
	if len(tn.node("b").Read(pattern.ByName(pattern.KindGradient, "tmp"))) != 1 {
		t.Fatal("b never stored the leased gradient")
	}

	// b's lease elapses (a's clock is NOT advanced: it keeps the copy
	// and keeps advertising it — the stale-digest source).
	tn.node("b").SweepExpired(10)
	if got := tn.node("b").Stats().Expired; got != 1 {
		t.Fatalf("Expired = %d, want 1", got)
	}

	// a refreshes: its digest (and any pull response) reaches b.
	for i := 0; i < 3; i++ {
		tn.node("a").Refresh()
		tn.quiesce()
	}
	if got := len(tn.node("b").Read(pattern.ByName(pattern.KindGradient, "tmp"))); got != 0 {
		t.Errorf("expired tuple resurrected on b (%d copies) by a stale neighbor digest", got)
	}
	if got := tn.node("b").Stats().PullsOut; got != 0 {
		t.Errorf("b pulled %d times for a tuple it tombstoned", got)
	}
}
