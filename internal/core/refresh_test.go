package core_test

import (
	"fmt"
	"math"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func refreshAll(tn *testNet) {
	for _, id := range tn.graph.Nodes() {
		if n, ok := tn.nodes[id]; ok {
			n.Refresh()
		}
	}
	tn.quiesce()
}

func TestRefreshIsIdempotentOnConvergedStructure(t *testing.T) {
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	// Warm-up epoch: the first refresh after convergence may broadcast
	// full bytes once per node (nothing has been refresh-announced yet).
	refreshAll(tn)
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))

	// Steady state: a refresh epoch on a converged structure sends zero
	// full tuples — every node advertises by digest, neighbors verify
	// versions, and nobody pulls.
	before := tn.totalStats()
	deliveredBefore := tn.sim.Stats().Delivered
	refreshAll(tn)
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
	after := tn.totalStats()
	if d := after.RefreshAnnounced - before.RefreshAnnounced; d != 0 {
		t.Errorf("converged refresh re-sent %d full tuples, want 0", d)
	}
	if d := after.PullsOut - before.PullsOut; d != 0 {
		t.Errorf("converged refresh triggered %d pulls, want 0", d)
	}
	nodes := int64(len(g.Nodes()))
	if d := after.RefreshSuppressed - before.RefreshSuppressed; d != nodes {
		t.Errorf("suppressed %d announcements, want %d (one stored tuple per node)", d, nodes)
	}
	if d := after.Broadcasts - before.Broadcasts; d != nodes {
		t.Errorf("refresh epoch used %d broadcasts, want %d (one digest per node)", d, nodes)
	}
	// Each digest reaches the one-hop neighborhood and nothing cascades.
	delivered := tn.sim.Stats().Delivered - deliveredBefore
	maxExpected := int64(2 * g.EdgeCount())
	if delivered > maxExpected {
		t.Errorf("refresh caused %d deliveries, want <= %d (no cascade)", delivered, maxExpected)
	}
}

func TestRefreshRepairsLostPropagation(t *testing.T) {
	// Kill all packets, inject, restore the radio: the structure only
	// exists at the source. Refresh must rebuild it everywhere.
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)

	tn.sim.SetLoss(1)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if _, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); have {
		t.Fatal("packet survived total loss")
	}

	tn.sim.SetLoss(0)
	refreshAll(tn)
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestRefreshPrunesPhantomSupport(t *testing.T) {
	// Line 0-1-2. Build the gradient, then lose node 1's withdrawal:
	// node 2 keeps phantom support from its stale table entry. Repeated
	// refreshes age the entry out and node 2 drops its orphan copy.
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	tn.sim.SetLoss(1) // the withdrawal below will be lost
	tn.sim.RemoveEdge(src, topology.NodeName(1))
	tn.quiesce()
	// Node 1 dropped (neighbor loss is reliable), node 2 did not hear
	// the withdrawal and still holds val 2.
	if _, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); have {
		t.Fatal("node 1 kept its copy without support")
	}
	if v, have := tn.gradVal(topology.NodeName(2), pattern.KindGradient, "f"); !have || v != 2 {
		t.Fatalf("node 2 = %v, %v; want phantom copy val 2", v, have)
	}

	tn.sim.SetLoss(0)
	for i := 0; i < 4; i++ {
		refreshAll(tn)
	}
	if _, have := tn.gradVal(topology.NodeName(2), pattern.KindGradient, "f"); have {
		t.Error("phantom copy survived refresh aging")
	}
	// The source side is intact.
	if v, have := tn.gradVal(src, pattern.KindGradient, "f"); !have || v != 0 {
		t.Errorf("source copy = %v, %v", v, have)
	}
}

func TestRefreshRebroadcastsPlainTuples(t *testing.T) {
	// A flood that was fully lost re-propagates on refresh from the
	// source's stored copy.
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	tn.sim.SetLoss(1)
	if _, err := tn.node(src).Inject(pattern.NewFlood("news")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.sim.SetLoss(0)
	refreshAll(tn)
	for _, id := range g.Nodes() {
		if len(tn.node(id).Read(pattern.ByName(pattern.KindFlood, "news"))) != 1 {
			t.Errorf("node %s missing flood after refresh", id)
		}
	}
}

func TestRefreshReturnsAnnouncementCount(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(0))
	if got := n.Refresh(); got != 0 {
		t.Errorf("empty refresh = %d", got)
	}
	if _, err := n.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Inject(pattern.NewLocal("private")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	// One gradient announced; the local tuple never propagates.
	if got := n.Refresh(); got != 1 {
		t.Errorf("refresh announced %d, want 1", got)
	}
}

// TestLossyConvergenceWithRefresh is the failure-injection headline: a
// structure converges on a radio dropping 40% of packets, as long as
// the anti-entropy pass runs.
func TestLossyConvergenceWithRefresh(t *testing.T) {
	g := topology.Grid(6, 6, 1)
	tn := newTestNet(t, g)
	tn.sim.SetLoss(0.4)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	for i := 0; i < 30; i++ {
		refreshAll(tn)
		if converged(tn, src) {
			return
		}
	}
	t.Error("structure did not converge after 30 lossy refresh cycles")
}

// TestRefreshDigestHealsLostWithdrawal: a node silently loses its copy
// (its withdrawal is dropped, so neighbors still believe it converged).
// The next refresh epoch must re-adopt the copy from digests alone — no
// full-tuple refresh announcement and no pull, because the node kept an
// exemplar of the structure.
func TestRefreshDigestHealsLostWithdrawal(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))
	refreshAll(tn) // warm up: digests from here on
	end := topology.NodeName(2)

	tn.sim.SetLoss(1)
	if got := len(tn.node(end).Delete(pattern.ByName(pattern.KindGradient, "f"))); got != 1 {
		t.Fatalf("Delete removed %d tuples, want 1", got)
	}
	tn.quiesce() // the withdrawal evaporates
	tn.sim.SetLoss(0)
	if _, have := tn.gradVal(end, pattern.KindGradient, "f"); have {
		t.Fatal("deleted copy still present")
	}

	before := tn.totalStats()
	refreshAll(tn)
	if v, have := tn.gradVal(end, pattern.KindGradient, "f"); !have || v != 2 {
		t.Fatalf("node 2 after digest heal = %v, %v; want val 2", v, have)
	}
	after := tn.totalStats()
	if d := after.RefreshAnnounced - before.RefreshAnnounced; d != 0 {
		t.Errorf("heal needed %d full refresh announcements, want 0 (digest-driven)", d)
	}
	if d := after.PullsOut - before.PullsOut; d != 0 {
		t.Errorf("heal needed %d pulls, want 0 (exemplar retained)", d)
	}
}

// TestRefreshHealsUnderDigestLoss: the anti-entropy pass still converges
// when digest and pull messages are themselves dropped — a lost digest
// or lost pull just retries on a later epoch.
func TestRefreshHealsUnderDigestLoss(t *testing.T) {
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))
	refreshAll(tn)

	// Knock out an interior copy with its withdrawal suppressed.
	victim := topology.NodeName(5)
	tn.sim.SetLoss(1)
	if got := len(tn.node(victim).Delete(pattern.ByName(pattern.KindGradient, "f"))); got != 1 {
		t.Fatalf("Delete removed %d tuples, want 1", got)
	}
	tn.quiesce()

	tn.sim.SetLoss(0.5)
	for i := 0; i < 30; i++ {
		refreshAll(tn)
		if v, have := tn.gradVal(victim, pattern.KindGradient, "f"); have && v == 2 {
			tn.sim.SetLoss(0)
			refreshAll(tn)
			tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
			return
		}
	}
	t.Error("lost copy did not heal under 50% digest loss in 30 refresh epochs")
}

// TestDigestPullHealsNewcomer: with the catch-up unicast disabled, a
// node that joins after convergence hears only digests. It cannot
// reconstruct the structure from the compact entry, so it must pull the
// full bytes and adopt from the response.
func TestDigestPullHealsNewcomer(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g, core.WithoutCatchUp())
	mid, end := topology.NodeName(1), topology.NodeName(2)
	tn.sim.RemoveEdge(mid, end)
	tn.quiesce()

	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	refreshAll(tn) // converge and warm up nodes 0-1

	tn.sim.AddEdge(mid, end) // node 2 joins; no catch-up fires
	tn.quiesce()
	if _, have := tn.gradVal(end, pattern.KindGradient, "f"); have {
		t.Fatal("newcomer acquired the structure without refresh")
	}

	before := tn.totalStats()
	refreshAll(tn)
	if v, have := tn.gradVal(end, pattern.KindGradient, "f"); !have || v != 2 {
		t.Fatalf("newcomer after digest+pull = %v, %v; want val 2", v, have)
	}
	after := tn.totalStats()
	if d := after.PullsOut - before.PullsOut; d == 0 {
		t.Error("newcomer healed without pulling — expected a digest-triggered pull")
	}
	if d := after.PullsIn - before.PullsIn; d == 0 {
		t.Error("no node served a pull request")
	}
}

// TestRefreshBatchesFullAnnouncements: when an epoch stages several full
// announcements they leave as one coalesced batch frame, and the
// receiver unpacks every sub-message.
func TestRefreshBatchesFullAnnouncements(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	tn.sim.SetLoss(1)
	const floods = 10
	for i := 0; i < floods; i++ {
		if _, err := tn.node(src).Inject(pattern.NewFlood(fmt.Sprintf("news-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tn.quiesce()
	tn.sim.SetLoss(0)

	before := tn.totalStats()
	refreshAll(tn)
	after := tn.totalStats()
	if d := after.FramesOut - before.FramesOut; d != 1 {
		t.Errorf("refresh sent %d batch frames, want 1 (all announcements coalesced)", d)
	}
	if d := after.FramesIn - before.FramesIn; d != 1 {
		t.Errorf("receiver saw %d batch frames, want 1", d)
	}
	for i := 0; i < floods; i++ {
		name := fmt.Sprintf("news-%d", i)
		if len(tn.node(topology.NodeName(1)).Read(pattern.ByName(pattern.KindFlood, name))) != 1 {
			t.Errorf("flood %q missing at the receiver", name)
		}
	}
}

// TestRefreshChunksFramesToBudget: a tight frame budget splits the
// staged announcements across several frames, none of which exceeds the
// configured payload limit, and delivery is unaffected.
func TestRefreshChunksFramesToBudget(t *testing.T) {
	const limit = 300
	g := topology.Line(2)
	tn := newTestNet(t, g, core.WithMaxFrameBytes(limit))
	src := topology.NodeName(0)
	tn.sim.SetLoss(1)
	const floods = 10
	for i := 0; i < floods; i++ {
		if _, err := tn.node(src).Inject(pattern.NewFlood(fmt.Sprintf("chunk-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tn.quiesce()
	tn.sim.SetLoss(0)

	before := tn.totalStats()
	refreshAll(tn)
	after := tn.totalStats()
	frames := after.FramesOut - before.FramesOut
	if frames < 2 {
		t.Errorf("tight budget produced %d frames, want >= 2 (chunked)", frames)
	}
	for i := 0; i < floods; i++ {
		name := fmt.Sprintf("chunk-%d", i)
		if len(tn.node(topology.NodeName(1)).Read(pattern.ByName(pattern.KindFlood, name))) != 1 {
			t.Errorf("flood %q missing at the receiver", name)
		}
	}
}

// TestRefreshDigestRepairsLostSupersede: a plain superseding tuple is
// upgraded at one node while a downstream link is gone, so the
// superseding broadcast never reaches the stale copy. When the link
// returns (catch-up disabled), refresh digests alone must deliver the
// upgrade: the stale node sees its neighbor advertise an announcement
// version it never consumed and pulls the full bytes.
func TestRefreshDigestRepairsLostSupersede(t *testing.T) {
	g := topology.Line(4)
	tn := newTestNet(t, g, core.WithoutCatchUp())
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewPath("p")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if got := routeLen(tn, topology.NodeName(3), "p"); got != 4 {
		t.Fatalf("node 3 route length = %d, want 4", got)
	}

	// Shortcut 0-2 appears while 2-3 is down: node 2 learns the shorter
	// route (via a first-contact digest pull from node 0), node 3 cannot.
	n2, n3 := topology.NodeName(2), topology.NodeName(3)
	tn.sim.RemoveEdge(n2, n3)
	tn.quiesce()
	tn.sim.AddEdge(src, n2)
	tn.quiesce()
	refreshAll(tn)
	if got := routeLen(tn, n2, "p"); got != 2 {
		t.Fatalf("node 2 route length = %d, want 2 after shortcut", got)
	}
	// One more epoch: node 2's single full re-broadcast of the upgraded
	// copy happens now, while node 3 is unreachable — the "lost
	// superseding announcement". From here on node 2 advertises the new
	// version by digest only.
	refreshAll(tn)

	tn.sim.AddEdge(n2, n3)
	tn.quiesce()
	if got := routeLen(tn, n3, "p"); got != 4 {
		t.Fatalf("node 3 upgraded without refresh: route length %d", got)
	}
	for i := 0; i < 3; i++ {
		refreshAll(tn)
	}
	if got := routeLen(tn, n3, "p"); got != 3 {
		t.Errorf("node 3 route length = %d, want 3 (superseding copy via digest pull)", got)
	}
}

// routeLen returns the length of the named path tuple's route at a
// node, 0 when the tuple is absent.
func routeLen(tn *testNet, id tuple.NodeID, name string) int {
	ts := tn.node(id).Read(pattern.ByName(pattern.KindPath, name))
	if len(ts) == 0 {
		return 0
	}
	return len(ts[0].(*pattern.Path).Route)
}

func converged(tn *testNet, src tuple.NodeID) bool {
	dist := tn.graph.BFSDistances(src)
	for _, id := range tn.graph.Nodes() {
		v, have := tn.gradVal(id, pattern.KindGradient, "f")
		if !have || v != float64(dist[id]) {
			return false
		}
	}
	return true
}
