package core_test

import (
	"math"
	"testing"

	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func refreshAll(tn *testNet) {
	for _, id := range tn.graph.Nodes() {
		if n, ok := tn.nodes[id]; ok {
			n.Refresh()
		}
	}
	tn.quiesce()
}

func TestRefreshIsIdempotentOnConvergedStructure(t *testing.T) {
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	before := tn.sim.Stats().Delivered
	refreshAll(tn)
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
	// Refresh announces but triggers no adoptions: each node sends one
	// announcement per stored tuple and nothing cascades.
	delta := tn.sim.Stats().Delivered - before
	maxExpected := int64(2 * 2 * g.EdgeCount()) // one announce per node per direction, with slack
	if delta > maxExpected {
		t.Errorf("refresh caused %d deliveries, want <= %d (no cascade)", delta, maxExpected)
	}
}

func TestRefreshRepairsLostPropagation(t *testing.T) {
	// Kill all packets, inject, restore the radio: the structure only
	// exists at the source. Refresh must rebuild it everywhere.
	g := topology.Grid(4, 4, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)

	tn.sim.SetLoss(1)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if _, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); have {
		t.Fatal("packet survived total loss")
	}

	tn.sim.SetLoss(0)
	refreshAll(tn)
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}

func TestRefreshPrunesPhantomSupport(t *testing.T) {
	// Line 0-1-2. Build the gradient, then lose node 1's withdrawal:
	// node 2 keeps phantom support from its stale table entry. Repeated
	// refreshes age the entry out and node 2 drops its orphan copy.
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	injectGradient(t, tn, src, "f", math.Inf(1))

	tn.sim.SetLoss(1) // the withdrawal below will be lost
	tn.sim.RemoveEdge(src, topology.NodeName(1))
	tn.quiesce()
	// Node 1 dropped (neighbor loss is reliable), node 2 did not hear
	// the withdrawal and still holds val 2.
	if _, have := tn.gradVal(topology.NodeName(1), pattern.KindGradient, "f"); have {
		t.Fatal("node 1 kept its copy without support")
	}
	if v, have := tn.gradVal(topology.NodeName(2), pattern.KindGradient, "f"); !have || v != 2 {
		t.Fatalf("node 2 = %v, %v; want phantom copy val 2", v, have)
	}

	tn.sim.SetLoss(0)
	for i := 0; i < 4; i++ {
		refreshAll(tn)
	}
	if _, have := tn.gradVal(topology.NodeName(2), pattern.KindGradient, "f"); have {
		t.Error("phantom copy survived refresh aging")
	}
	// The source side is intact.
	if v, have := tn.gradVal(src, pattern.KindGradient, "f"); !have || v != 0 {
		t.Errorf("source copy = %v, %v", v, have)
	}
}

func TestRefreshRebroadcastsPlainTuples(t *testing.T) {
	// A flood that was fully lost re-propagates on refresh from the
	// source's stored copy.
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	tn.sim.SetLoss(1)
	if _, err := tn.node(src).Inject(pattern.NewFlood("news")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.sim.SetLoss(0)
	refreshAll(tn)
	for _, id := range g.Nodes() {
		if len(tn.node(id).Read(pattern.ByName(pattern.KindFlood, "news"))) != 1 {
			t.Errorf("node %s missing flood after refresh", id)
		}
	}
}

func TestRefreshReturnsAnnouncementCount(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(0))
	if got := n.Refresh(); got != 0 {
		t.Errorf("empty refresh = %d", got)
	}
	if _, err := n.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Inject(pattern.NewLocal("private")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	// One gradient announced; the local tuple never propagates.
	if got := n.Refresh(); got != 1 {
		t.Errorf("refresh announced %d, want 1", got)
	}
}

// TestLossyConvergenceWithRefresh is the failure-injection headline: a
// structure converges on a radio dropping 40% of packets, as long as
// the anti-entropy pass runs.
func TestLossyConvergenceWithRefresh(t *testing.T) {
	g := topology.Grid(6, 6, 1)
	tn := newTestNet(t, g)
	tn.sim.SetLoss(0.4)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	for i := 0; i < 30; i++ {
		refreshAll(tn)
		if converged(tn, src) {
			return
		}
	}
	t.Error("structure did not converge after 30 lossy refresh cycles")
}

func converged(tn *testNet, src tuple.NodeID) bool {
	dist := tn.graph.BFSDistances(src)
	for _, id := range tn.graph.Nodes() {
		v, have := tn.gradVal(id, pattern.KindGradient, "f")
		if !have || v != float64(dist[id]) {
			return false
		}
	}
	return true
}
