package core

import (
	"strings"

	"tota/internal/tuple"
)

// idList is an arrival-ordered id set with O(1) removal: deleting marks
// the slot as a zero-id tombstone and records the hole, and the slice is
// compacted lazily once tombstones dominate. pos maps each live id to
// its slot, so bulk removals (expiry sweeps over thousands of tuples)
// stay linear instead of O(n²).
type idList struct {
	ids  []tuple.ID
	pos  map[tuple.ID]int
	dead int
}

func (l *idList) add(id tuple.ID) {
	if l.pos == nil {
		l.pos = make(map[tuple.ID]int)
	}
	l.pos[id] = len(l.ids)
	l.ids = append(l.ids, id)
}

func (l *idList) remove(id tuple.ID) {
	i, ok := l.pos[id]
	if !ok {
		return
	}
	l.ids[i] = tuple.ID{}
	delete(l.pos, id)
	l.dead++
	if l.dead > 8 && l.dead*2 > len(l.ids) {
		l.compact()
	}
}

func (l *idList) compact() {
	live := l.ids[:0]
	for _, id := range l.ids {
		if !id.IsZero() {
			l.pos[id] = len(live)
			live = append(live, id)
		}
	}
	l.ids = live
	l.dead = 0
}

// storeEnt is one small-mode entry: the stored copy with its id pulled
// out so the linear scans compare ids without an interface call.
type storeEnt struct {
	id tuple.ID
	t  tuple.Tuple
}

// storeSmallMax is the largest space kept in small mode. At a typical
// deployment a node stores a handful of structures, so almost every
// node stays in the flat representation forever; the threshold depends
// only on the space's content, so promotion is deterministic.
const storeSmallMax = 16

// storeIndex is the big-mode machinery: hash lookup plus per-kind and
// per-(kind, name) arrival-ordered id lists — the shapes every
// propagation hook and application query uses — so selective reads do
// not scan the whole space.
//
// Iteration over the id lists may encounter tombstones (zero ids, or
// ids removed from byID but not yet compacted out of a list); consumers
// skip any id without a byID entry.
type storeIndex struct {
	byID       map[tuple.ID]tuple.Tuple
	order      idList
	byKind     map[string]*idList
	byKindName map[string]*idList
}

// store is a node's local tuple space: the set of tuple copies currently
// stored at the node, in arrival order. It performs no locking; the
// Node serializes access.
//
// The space starts in small mode — a flat arrival-ordered slice scanned
// linearly — and promotes to the indexed representation once it exceeds
// storeSmallMax entries. Small mode costs ~48 bytes per tuple and zero
// map buckets, which at emulation scale (hundreds of thousands of nodes
// each storing a few tuples) is the difference between fitting in RAM
// and not; big mode keeps large spaces' selective reads sublinear. A
// promoted space never demotes, so pointers and iteration semantics
// stay simple.
type store struct {
	reg  *tuple.Registry
	flat []storeEnt
	big  *storeIndex
}

func newStore(reg *tuple.Registry) *store {
	s := &store{}
	s.init(reg)
	return s
}

func (s *store) init(reg *tuple.Registry) { s.reg = reg }

func kindNameKey(kind, name string) string {
	return kind + "\x00" + name
}

func indexKeys(t tuple.Tuple) (kind, kindName string) {
	kind = t.Kind()
	return kind, kindNameKey(kind, t.Content().GetString("name"))
}

// promote moves a small-mode space onto the indexed representation.
func (s *store) promote() {
	big := &storeIndex{
		byID:       make(map[tuple.ID]tuple.Tuple, len(s.flat)*2),
		byKind:     make(map[string]*idList),
		byKindName: make(map[string]*idList),
	}
	s.big = big
	for _, e := range s.flat {
		s.indexPut(e.id, e.t)
	}
	s.flat = nil
}

func (s *store) indexPut(id tuple.ID, t tuple.Tuple) {
	s.big.order.add(id)
	s.big.byID[id] = t
	kind, kn := indexKeys(t)
	s.indexAdd(s.big.byKind, kind, id)
	s.indexAdd(s.big.byKindName, kn, id)
}

func (s *store) indexAdd(m map[string]*idList, key string, id tuple.ID) {
	l, ok := m[key]
	if !ok {
		l = &idList{}
		m[key] = l
	}
	l.add(id)
}

func (s *store) indexRemove(m map[string]*idList, key string, id tuple.ID) {
	if l, ok := m[key]; ok {
		l.remove(id)
	}
}

// put inserts or replaces the copy for t.ID().
func (s *store) put(t tuple.Tuple) {
	id := t.ID()
	if s.big == nil {
		for i := range s.flat {
			if s.flat[i].id == id {
				s.flat[i].t = t
				return
			}
		}
		if len(s.flat) < storeSmallMax {
			s.flat = append(s.flat, storeEnt{id: id, t: t})
			return
		}
		s.promote()
	}
	if old, ok := s.big.byID[id]; ok {
		// Replacement: refresh the indexes if the keys changed (the
		// name field could in principle evolve).
		oldKind, oldKN := indexKeys(old)
		newKind, newKN := indexKeys(t)
		if oldKind != newKind {
			s.indexRemove(s.big.byKind, oldKind, id)
			s.indexAdd(s.big.byKind, newKind, id)
		}
		if oldKN != newKN {
			s.indexRemove(s.big.byKindName, oldKN, id)
			s.indexAdd(s.big.byKindName, newKN, id)
		}
		s.big.byID[id] = t
		return
	}
	s.indexPut(id, t)
}

// get returns the stored copy for id.
func (s *store) get(id tuple.ID) (tuple.Tuple, bool) {
	if s.big == nil {
		for i := range s.flat {
			if s.flat[i].id == id {
				return s.flat[i].t, true
			}
		}
		return nil, false
	}
	t, ok := s.big.byID[id]
	return t, ok
}

// remove deletes the copy for id and returns it.
func (s *store) remove(id tuple.ID) (tuple.Tuple, bool) {
	if s.big == nil {
		for i := range s.flat {
			if s.flat[i].id == id {
				t := s.flat[i].t
				s.flat = append(s.flat[:i], s.flat[i+1:]...)
				return t, true
			}
		}
		return nil, false
	}
	t, ok := s.big.byID[id]
	if !ok {
		return nil, false
	}
	delete(s.big.byID, id)
	s.big.order.remove(id)
	kind, kn := indexKeys(t)
	s.indexRemove(s.big.byKind, kind, id)
	s.indexRemove(s.big.byKindName, kn, id)
	return t, true
}

// candidates returns the id list a template needs to inspect, using the
// narrowest applicable index: (kind, name) when the template pins both,
// kind when it pins the kind, the full space otherwise. Big mode only;
// small mode scans the flat slice directly. The returned slice may
// contain tombstones; callers skip ids missing from byID.
func (s *store) candidates(tpl tuple.Template) []tuple.ID {
	if tpl.Kind == "" || strings.HasSuffix(tpl.Kind, "*") {
		return s.big.order.ids
	}
	if name, ok := pinnedName(tpl); ok {
		if l := s.big.byKindName[kindNameKey(tpl.Kind, name)]; l != nil {
			return l.ids
		}
		return nil
	}
	if l := s.big.byKind[tpl.Kind]; l != nil {
		return l.ids
	}
	return nil
}

// pinnedName reports whether the template requires an exact value for
// the "name" field.
func pinnedName(tpl tuple.Template) (string, bool) {
	for _, p := range tpl.Fields {
		if p.Name == "name" && !p.Any {
			if v, ok := p.Value.(string); ok {
				return v, true
			}
		}
	}
	return "", false
}

// forMatching visits the stored tuples matching tpl in arrival order.
func (s *store) forMatching(tpl tuple.Template, fn func(t tuple.Tuple) bool) {
	if s.big == nil {
		for i := range s.flat {
			if tpl.Matches(s.flat[i].t) && !fn(s.flat[i].t) {
				return
			}
		}
		return
	}
	for _, id := range s.candidates(tpl) {
		if t, ok := s.big.byID[id]; ok && tpl.Matches(t) {
			if !fn(t) {
				return
			}
		}
	}
}

// read returns clones of the stored tuples matching tpl, in arrival
// order. Clones keep callers from mutating the space through shared
// content slices.
func (s *store) read(tpl tuple.Template) []tuple.Tuple {
	var out []tuple.Tuple
	s.forMatching(tpl, func(t tuple.Tuple) bool {
		c, err := s.reg.Clone(t)
		if err != nil {
			// The kind is unregistered (locally-constructed tuple);
			// fall back to sharing the instance.
			c = t
		}
		out = append(out, c)
		return true
	})
	return out
}

// readOne returns a clone of the first stored tuple matching tpl.
func (s *store) readOne(tpl tuple.Template) (tuple.Tuple, bool) {
	var got tuple.Tuple
	s.forMatching(tpl, func(t tuple.Tuple) bool {
		got = t
		return false
	})
	if got == nil {
		return nil, false
	}
	c, err := s.reg.Clone(got)
	if err != nil {
		c = got
	}
	return c, true
}

// readRaw returns the stored instances matching tpl without cloning,
// for engine-internal use.
func (s *store) readRaw(tpl tuple.Template) []tuple.Tuple {
	var out []tuple.Tuple
	s.forMatching(tpl, func(t tuple.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ids returns the stored ids in arrival order (a copy).
func (s *store) ids() []tuple.ID {
	return s.appendIDs(nil)
}

// appendIDs fills buf (reset to zero length) with the stored ids in
// arrival order and returns it, letting hot loops reuse one scratch
// slice instead of copying the order on every pass. The result is a
// snapshot: callers may remove tuples while iterating it.
func (s *store) appendIDs(buf []tuple.ID) []tuple.ID {
	buf = buf[:0]
	if s.big == nil {
		for i := range s.flat {
			buf = append(buf, s.flat[i].id)
		}
		return buf
	}
	for _, id := range s.big.order.ids {
		if !id.IsZero() {
			buf = append(buf, id)
		}
	}
	return buf
}

// size returns the number of stored tuples.
func (s *store) size() int {
	if s.big == nil {
		return len(s.flat)
	}
	return len(s.big.byID)
}
