package core

import (
	"strings"

	"tota/internal/tuple"
)

// store is a node's local tuple space: the set of tuple copies currently
// stored at the node, in arrival order. Copies are indexed by kind and
// by (kind, name) — the shapes every propagation hook and application
// query uses — so selective reads do not scan the whole space. It
// performs no locking; the Node serializes access.
type store struct {
	reg   *tuple.Registry
	byID  map[tuple.ID]tuple.Tuple
	order []tuple.ID
	// byKind and byKindName list ids in arrival order per index key;
	// removal leaves no holes (slices are compacted).
	byKind     map[string][]tuple.ID
	byKindName map[string][]tuple.ID
}

func newStore(reg *tuple.Registry) *store {
	return &store{
		reg:        reg,
		byID:       make(map[tuple.ID]tuple.Tuple),
		byKind:     make(map[string][]tuple.ID),
		byKindName: make(map[string][]tuple.ID),
	}
}

func kindNameKey(kind, name string) string {
	return kind + "\x00" + name
}

func indexKeys(t tuple.Tuple) (kind, kindName string) {
	kind = t.Kind()
	return kind, kindNameKey(kind, t.Content().GetString("name"))
}

// put inserts or replaces the copy for t.ID().
func (s *store) put(t tuple.Tuple) {
	id := t.ID()
	if old, ok := s.byID[id]; ok {
		// Replacement: refresh the indexes if the keys changed (the
		// name field could in principle evolve).
		oldKind, oldKN := indexKeys(old)
		newKind, newKN := indexKeys(t)
		if oldKind != newKind {
			s.byKind[oldKind] = removeID(s.byKind[oldKind], id)
			s.byKind[newKind] = append(s.byKind[newKind], id)
		}
		if oldKN != newKN {
			s.byKindName[oldKN] = removeID(s.byKindName[oldKN], id)
			s.byKindName[newKN] = append(s.byKindName[newKN], id)
		}
		s.byID[id] = t
		return
	}
	s.order = append(s.order, id)
	s.byID[id] = t
	kind, kn := indexKeys(t)
	s.byKind[kind] = append(s.byKind[kind], id)
	s.byKindName[kn] = append(s.byKindName[kn], id)
}

// get returns the stored copy for id.
func (s *store) get(id tuple.ID) (tuple.Tuple, bool) {
	t, ok := s.byID[id]
	return t, ok
}

// remove deletes the copy for id and returns it.
func (s *store) remove(id tuple.ID) (tuple.Tuple, bool) {
	t, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	delete(s.byID, id)
	s.order = removeID(s.order, id)
	kind, kn := indexKeys(t)
	s.byKind[kind] = removeID(s.byKind[kind], id)
	s.byKindName[kn] = removeID(s.byKindName[kn], id)
	return t, true
}

func removeID(ids []tuple.ID, id tuple.ID) []tuple.ID {
	for i, o := range ids {
		if o == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// candidates returns the id list a template needs to inspect, using the
// narrowest applicable index: (kind, name) when the template pins both,
// kind when it pins the kind, the full space otherwise.
func (s *store) candidates(tpl tuple.Template) []tuple.ID {
	if tpl.Kind == "" || strings.HasSuffix(tpl.Kind, "*") {
		return s.order
	}
	if name, ok := pinnedName(tpl); ok {
		return s.byKindName[kindNameKey(tpl.Kind, name)]
	}
	return s.byKind[tpl.Kind]
}

// pinnedName reports whether the template requires an exact value for
// the "name" field.
func pinnedName(tpl tuple.Template) (string, bool) {
	for _, p := range tpl.Fields {
		if p.Name == "name" && !p.Any {
			if v, ok := p.Value.(string); ok {
				return v, true
			}
		}
	}
	return "", false
}

// read returns clones of the stored tuples matching tpl, in arrival
// order. Clones keep callers from mutating the space through shared
// content slices.
func (s *store) read(tpl tuple.Template) []tuple.Tuple {
	var out []tuple.Tuple
	for _, id := range s.candidates(tpl) {
		t := s.byID[id]
		if !tpl.Matches(t) {
			continue
		}
		c, err := s.reg.Clone(t)
		if err != nil {
			// The kind is unregistered (locally-constructed tuple);
			// fall back to sharing the instance.
			c = t
		}
		out = append(out, c)
	}
	return out
}

// readOne returns a clone of the first stored tuple matching tpl.
func (s *store) readOne(tpl tuple.Template) (tuple.Tuple, bool) {
	for _, id := range s.candidates(tpl) {
		t := s.byID[id]
		if !tpl.Matches(t) {
			continue
		}
		c, err := s.reg.Clone(t)
		if err != nil {
			c = t
		}
		return c, true
	}
	return nil, false
}

// readRaw returns the stored instances matching tpl without cloning,
// for engine-internal use.
func (s *store) readRaw(tpl tuple.Template) []tuple.Tuple {
	var out []tuple.Tuple
	for _, id := range s.candidates(tpl) {
		if t := s.byID[id]; tpl.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

// ids returns the stored ids in arrival order (a copy).
func (s *store) ids() []tuple.ID {
	out := make([]tuple.ID, len(s.order))
	copy(out, s.order)
	return out
}

// size returns the number of stored tuples.
func (s *store) size() int { return len(s.byID) }
