package core

import (
	"strings"

	"tota/internal/tuple"
)

// idList is an arrival-ordered id set with O(1) removal: deleting marks
// the slot as a zero-id tombstone and records the hole, and the slice is
// compacted lazily once tombstones dominate. pos maps each live id to
// its slot, so bulk removals (expiry sweeps over thousands of tuples)
// stay linear instead of O(n²).
type idList struct {
	ids  []tuple.ID
	pos  map[tuple.ID]int
	dead int
}

func (l *idList) add(id tuple.ID) {
	if l.pos == nil {
		l.pos = make(map[tuple.ID]int)
	}
	l.pos[id] = len(l.ids)
	l.ids = append(l.ids, id)
}

func (l *idList) remove(id tuple.ID) {
	i, ok := l.pos[id]
	if !ok {
		return
	}
	l.ids[i] = tuple.ID{}
	delete(l.pos, id)
	l.dead++
	if l.dead > 8 && l.dead*2 > len(l.ids) {
		l.compact()
	}
}

func (l *idList) compact() {
	live := l.ids[:0]
	for _, id := range l.ids {
		if !id.IsZero() {
			l.pos[id] = len(live)
			live = append(live, id)
		}
	}
	l.ids = live
	l.dead = 0
}

// store is a node's local tuple space: the set of tuple copies currently
// stored at the node, in arrival order. Copies are indexed by kind and
// by (kind, name) — the shapes every propagation hook and application
// query uses — so selective reads do not scan the whole space. It
// performs no locking; the Node serializes access.
//
// Iteration over the id lists may encounter tombstones (zero ids, or ids
// removed from byID but not yet compacted out of a list); consumers skip
// any id without a byID entry.
type store struct {
	reg   *tuple.Registry
	byID  map[tuple.ID]tuple.Tuple
	order idList
	// byKind and byKindName list ids in arrival order per index key.
	byKind     map[string]*idList
	byKindName map[string]*idList
}

func newStore(reg *tuple.Registry) *store {
	return &store{
		reg:        reg,
		byID:       make(map[tuple.ID]tuple.Tuple),
		byKind:     make(map[string]*idList),
		byKindName: make(map[string]*idList),
	}
}

func kindNameKey(kind, name string) string {
	return kind + "\x00" + name
}

func indexKeys(t tuple.Tuple) (kind, kindName string) {
	kind = t.Kind()
	return kind, kindNameKey(kind, t.Content().GetString("name"))
}

func (s *store) indexAdd(m map[string]*idList, key string, id tuple.ID) {
	l, ok := m[key]
	if !ok {
		l = &idList{}
		m[key] = l
	}
	l.add(id)
}

func (s *store) indexRemove(m map[string]*idList, key string, id tuple.ID) {
	if l, ok := m[key]; ok {
		l.remove(id)
	}
}

// put inserts or replaces the copy for t.ID().
func (s *store) put(t tuple.Tuple) {
	id := t.ID()
	if old, ok := s.byID[id]; ok {
		// Replacement: refresh the indexes if the keys changed (the
		// name field could in principle evolve).
		oldKind, oldKN := indexKeys(old)
		newKind, newKN := indexKeys(t)
		if oldKind != newKind {
			s.indexRemove(s.byKind, oldKind, id)
			s.indexAdd(s.byKind, newKind, id)
		}
		if oldKN != newKN {
			s.indexRemove(s.byKindName, oldKN, id)
			s.indexAdd(s.byKindName, newKN, id)
		}
		s.byID[id] = t
		return
	}
	s.order.add(id)
	s.byID[id] = t
	kind, kn := indexKeys(t)
	s.indexAdd(s.byKind, kind, id)
	s.indexAdd(s.byKindName, kn, id)
}

// get returns the stored copy for id.
func (s *store) get(id tuple.ID) (tuple.Tuple, bool) {
	t, ok := s.byID[id]
	return t, ok
}

// remove deletes the copy for id and returns it.
func (s *store) remove(id tuple.ID) (tuple.Tuple, bool) {
	t, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	delete(s.byID, id)
	s.order.remove(id)
	kind, kn := indexKeys(t)
	s.indexRemove(s.byKind, kind, id)
	s.indexRemove(s.byKindName, kn, id)
	return t, true
}

// candidates returns the id list a template needs to inspect, using the
// narrowest applicable index: (kind, name) when the template pins both,
// kind when it pins the kind, the full space otherwise. The returned
// slice may contain tombstones; callers skip ids missing from byID.
func (s *store) candidates(tpl tuple.Template) []tuple.ID {
	if tpl.Kind == "" || strings.HasSuffix(tpl.Kind, "*") {
		return s.order.ids
	}
	if name, ok := pinnedName(tpl); ok {
		if l := s.byKindName[kindNameKey(tpl.Kind, name)]; l != nil {
			return l.ids
		}
		return nil
	}
	if l := s.byKind[tpl.Kind]; l != nil {
		return l.ids
	}
	return nil
}

// pinnedName reports whether the template requires an exact value for
// the "name" field.
func pinnedName(tpl tuple.Template) (string, bool) {
	for _, p := range tpl.Fields {
		if p.Name == "name" && !p.Any {
			if v, ok := p.Value.(string); ok {
				return v, true
			}
		}
	}
	return "", false
}

// read returns clones of the stored tuples matching tpl, in arrival
// order. Clones keep callers from mutating the space through shared
// content slices.
func (s *store) read(tpl tuple.Template) []tuple.Tuple {
	var out []tuple.Tuple
	for _, id := range s.candidates(tpl) {
		t, ok := s.byID[id]
		if !ok || !tpl.Matches(t) {
			continue
		}
		c, err := s.reg.Clone(t)
		if err != nil {
			// The kind is unregistered (locally-constructed tuple);
			// fall back to sharing the instance.
			c = t
		}
		out = append(out, c)
	}
	return out
}

// readOne returns a clone of the first stored tuple matching tpl.
func (s *store) readOne(tpl tuple.Template) (tuple.Tuple, bool) {
	for _, id := range s.candidates(tpl) {
		t, ok := s.byID[id]
		if !ok || !tpl.Matches(t) {
			continue
		}
		c, err := s.reg.Clone(t)
		if err != nil {
			c = t
		}
		return c, true
	}
	return nil, false
}

// readRaw returns the stored instances matching tpl without cloning,
// for engine-internal use.
func (s *store) readRaw(tpl tuple.Template) []tuple.Tuple {
	var out []tuple.Tuple
	for _, id := range s.candidates(tpl) {
		if t, ok := s.byID[id]; ok && tpl.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

// ids returns the stored ids in arrival order (a copy).
func (s *store) ids() []tuple.ID {
	return s.appendIDs(nil)
}

// appendIDs fills buf (reset to zero length) with the stored ids in
// arrival order and returns it, letting hot loops reuse one scratch
// slice instead of copying the order on every pass. The result is a
// snapshot: callers may remove tuples while iterating it.
func (s *store) appendIDs(buf []tuple.ID) []tuple.ID {
	buf = buf[:0]
	for _, id := range s.order.ids {
		if !id.IsZero() {
			buf = append(buf, id)
		}
	}
	return buf
}

// size returns the number of stored tuples.
func (s *store) size() int { return len(s.byID) }
