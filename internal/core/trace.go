package core

import (
	"fmt"

	"tota/internal/tuple"
)

// TraceKind classifies engine decisions for tracing.
type TraceKind int

// Trace kinds.
const (
	// TraceInject: a tuple entered the network through the local API.
	TraceInject TraceKind = iota + 1
	// TraceStore: a copy entered the local space.
	TraceStore
	// TraceSupersede: a better copy replaced the stored one.
	TraceSupersede
	// TraceForward: the local copy was re-broadcast.
	TraceForward
	// TraceDup: a duplicate arrival was dropped.
	TraceDup
	// TraceTTL: a copy was dropped for exceeding MaxHops.
	TraceTTL
	// TraceAdopt: maintenance changed the local structure value.
	TraceAdopt
	// TraceWithdraw: maintenance removed an unsupported copy.
	TraceWithdraw
	// TraceRetract: a structure was torn down through this node.
	TraceRetract
	// TraceExpire: a leased copy aged out.
	TraceExpire
	// TraceDeny: the access policy rejected an operation.
	TraceDeny
	// TraceSuspect: a maintained copy lost support but its withdraw was
	// deferred by the suspicion grace window.
	TraceSuspect
	// TraceAggResult: a query source computed a convergecast result
	// (Value carries the scalar, Hop the epoch).
	TraceAggResult
	// TraceSend: a sampled local copy was announced to the air (From
	// names the unicast destination; empty for broadcasts). Emitted
	// only for traced tuples — paired with the receivers' store/adopt
	// spans it localizes which link swallowed an announcement.
	TraceSend
	// TracePull: this node requested full bytes for a sampled tuple it
	// could not reconstruct from a digest (From is the neighbor being
	// pulled from). Pull bursts concentrated on one link localize
	// asymmetric loss.
	TracePull
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceInject:
		return "inject"
	case TraceStore:
		return "store"
	case TraceSupersede:
		return "supersede"
	case TraceForward:
		return "forward"
	case TraceDup:
		return "dup"
	case TraceTTL:
		return "ttl"
	case TraceAdopt:
		return "adopt"
	case TraceWithdraw:
		return "withdraw"
	case TraceRetract:
		return "retract"
	case TraceExpire:
		return "expire"
	case TraceDeny:
		return "deny"
	case TraceSuspect:
		return "suspect"
	case TraceAggResult:
		return "agg-result"
	case TraceSend:
		return "send"
	case TracePull:
		return "pull"
	default:
		return "unknown-trace"
	}
}

// TraceEvent is one engine decision.
type TraceEvent struct {
	Kind TraceKind
	// Node is where the decision happened.
	Node tuple.NodeID
	// ID identifies the tuple involved.
	ID tuple.ID
	// TupleKind is the tuple's kind (when known).
	TupleKind string
	// From is the previous hop, when the decision concerns an arrival.
	From tuple.NodeID
	// Hop is the copy's hop count, when meaningful.
	Hop int
	// Value is the maintained structure value, when meaningful.
	Value float64
	// TraceID is the tuple's sampled trace identity; zero when the
	// tuple is not sampled (the common case — sampling is off unless
	// WithTraceSampling enables it).
	TraceID uint64
	// Span identifies this node's copy incarnation at the time of the
	// event; ParentSpan references the upstream hop's span that caused
	// it, when known. Together they stitch per-node events into a
	// cross-node propagation tree.
	Span, ParentSpan uint64
}

// String implements fmt.Stringer.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%s %s %s", e.Node, e.Kind, e.ID)
	if e.TupleKind != "" {
		s += " (" + e.TupleKind + ")"
	}
	if e.From != "" && e.From != e.Node {
		s += " from " + string(e.From)
	}
	if e.Kind == TraceAdopt || e.Kind == TraceStore {
		s += fmt.Sprintf(" val=%g", e.Value)
	}
	return s
}

// Tracer receives engine decisions. It runs outside the engine lock, in
// the goroutine that triggered the decision, after the triggering call
// completes its state changes; it may call back into the node's API.
type Tracer func(TraceEvent)

// WithTracer installs an engine tracer.
func WithTracer(tr Tracer) Option {
	return optionFunc(func(c *Config) { c.Tracer = tr })
}

// WithTraceSampling sets the fraction of locally injected tuples that
// carry a causal trace context (0 disables tracing, 1 traces every
// tuple). The decision is a deterministic hash threshold on the tuple
// id, so a given tuple is sampled identically across runs. Tuples
// arriving off the air keep whatever sampling decision their source
// made regardless of the local rate.
func WithTraceSampling(rate float64) Option {
	return optionFunc(func(c *Config) { c.TraceSampleRate = rate })
}

// traceLocked queues a trace event for post-unlock delivery. No-op
// without a tracer.
func (n *Node) traceLocked(ev TraceEvent) {
	if n.cfg.Tracer == nil {
		return
	}
	ev.Node = n.id
	n.pendingTraces = append(n.pendingTraces, ev)
}

// tracePullLocked records an anti-entropy pull for a sampled tuple:
// the node is asking From for content it should have heard on the air.
// Pull bursts concentrated on one directed link are the trace-level
// signature of asymmetric loss. No-op for unsampled tuples.
func (n *Node) tracePullLocked(id tuple.ID, from tuple.NodeID, st *tupleState) {
	if st.traceID == 0 {
		return
	}
	n.traceLocked(TraceEvent{Kind: TracePull, ID: id, From: from,
		TraceID: st.traceID, Span: st.span})
}

func (n *Node) takeTracesLocked() []TraceEvent {
	ts := n.pendingTraces
	n.pendingTraces = nil
	return ts
}

func (n *Node) dispatchTraces(ts []TraceEvent) {
	if n.cfg.Tracer == nil || len(ts) == 0 {
		return
	}
	for _, ev := range ts {
		n.cfg.Tracer(ev)
	}
	// Recycle the buffer: tracers receive events by value and must not
	// retain the slice, so steady-state tracing allocates nothing once
	// the buffer has grown to the per-call high-water mark.
	for i := range ts {
		ts[i] = TraceEvent{}
	}
	n.mu.Lock()
	if n.pendingTraces == nil {
		n.pendingTraces = ts[:0]
	}
	n.mu.Unlock()
}
