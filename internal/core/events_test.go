package core_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

// eventLog collects events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []core.Event
}

func (l *eventLog) add(ev core.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) byType(t core.EventType) []core.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []core.Event
	for _, ev := range l.events {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

func TestSubscribeTupleArrival(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	far := tn.node(topology.NodeName(2))
	var log eventLog
	far.Subscribe(pattern.ByName(pattern.KindFlood, "news"), log.add)

	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("news", tuple.S("h", "x"))); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	got := log.byType(core.TupleArrived)
	if len(got) != 1 {
		t.Fatalf("arrival events = %d, want 1", len(got))
	}
	ev := got[0]
	if ev.Node != far.Self() || ev.Tuple.Content().GetString("h") != "x" {
		t.Errorf("event = %+v", ev)
	}
}

func TestSubscribeSelective(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(1))
	var relevant, other eventLog
	n.Subscribe(pattern.ByName(pattern.KindFlood, "wanted"), relevant.add)
	n.Subscribe(pattern.ByName(pattern.KindFlood, "unrelated"), other.add)

	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("wanted")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if len(relevant.byType(core.TupleArrived)) != 1 {
		t.Error("matching subscription did not fire")
	}
	if len(other.byType(core.TupleArrived)) != 0 {
		t.Error("non-matching subscription fired")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(1))
	var log eventLog
	sub := n.Subscribe(tuple.Match(pattern.KindFlood), log.add)
	n.Unsubscribe(sub)

	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("x")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	if len(log.byType(core.TupleArrived)) != 0 {
		t.Error("unsubscribed reaction fired")
	}
}

func TestNeighborEventsAsTuples(t *testing.T) {
	g := topology.New()
	g.AddNode("a")
	g.AddNode("b")
	tn := newTestNet(t, g)
	var log eventLog
	tn.node("a").Subscribe(tuple.Match(core.NeighborTupleKind), log.add)

	tn.sim.AddEdge("a", "b")
	added := log.byType(core.NeighborAdded)
	if len(added) != 1 || added[0].Peer != "b" {
		t.Fatalf("added events = %+v", added)
	}
	if !added[0].Tuple.Content().GetBool("added") ||
		added[0].Tuple.Content().GetString("peer") != "b" {
		t.Errorf("event tuple = %v", added[0].Tuple.Content())
	}

	tn.sim.RemoveEdge("a", "b")
	removed := log.byType(core.NeighborRemoved)
	if len(removed) != 1 || removed[0].Peer != "b" {
		t.Fatalf("removed events = %+v", removed)
	}
	if removed[0].Tuple.Content().GetBool("added") {
		t.Error("removal tuple claims added")
	}
}

func TestOncePerTuple(t *testing.T) {
	g := topology.Ring(6)
	tn := newTestNet(t, g)
	// Node 2 sits just past the link we will cut: its value changes
	// from 2 to 4 and back, re-firing arrival events.
	far := tn.node(topology.NodeName(2))

	raw, once := 0, 0
	far.Subscribe(tuple.Match(pattern.KindGradient), func(core.Event) { raw++ })
	far.Subscribe(tuple.Match(pattern.KindGradient), core.OncePerTuple(func(core.Event) { once++ }))

	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	// Force maintenance churn: break and restore a link so values
	// change and arrival events re-fire.
	tn.sim.RemoveEdge(topology.NodeName(1), topology.NodeName(2))
	tn.quiesce()
	tn.sim.AddEdge(topology.NodeName(1), topology.NodeName(2))
	tn.quiesce()

	if once != 1 {
		t.Errorf("wrapped reaction fired %d times, want 1", once)
	}
	if raw <= once {
		t.Errorf("raw reaction fired %d times — churn produced no re-fires, test is vacuous", raw)
	}
}

func TestTupleRemovedEventOnRetract(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	far := tn.node(topology.NodeName(2))
	var log eventLog
	far.Subscribe(tuple.Match(pattern.KindGradient), log.add)

	id, err := tn.node(src).Inject(pattern.NewGradient("f"))
	if err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.node(src).Retract(id)
	tn.quiesce()

	if len(log.byType(core.TupleArrived)) == 0 {
		t.Error("no arrival event")
	}
	if len(log.byType(core.TupleRemoved)) != 1 {
		t.Errorf("removal events = %d, want 1", len(log.byType(core.TupleRemoved)))
	}
}

// TestReactionInjectsReply exercises the paper's application-level
// distributed query: a node subscribes to query tuples and reacts by
// injecting a reply that routes back over the query's own gradient.
func TestReactionInjectsReply(t *testing.T) {
	g := topology.Line(4)
	tn := newTestNet(t, g)
	asker := tn.node(topology.NodeName(0))
	responder := tn.node(topology.NodeName(3))

	responder.Subscribe(pattern.ByName(pattern.KindGradient, "query"), func(ev core.Event) {
		if ev.Type != core.TupleArrived {
			return
		}
		reply := pattern.NewDownhill("query", tuple.S("answer", "42"))
		if _, err := responder.Inject(reply); err != nil {
			t.Errorf("reply inject: %v", err)
		}
	})

	if _, err := asker.Inject(pattern.NewGradient("query", tuple.S("q", "meaning"))); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	got := asker.Read(tuple.Match(pattern.KindDownhill))
	if len(got) != 1 {
		t.Fatalf("asker received %d replies, want 1", len(got))
	}
	if got[0].Content().GetString("answer") != "42" {
		t.Errorf("reply content = %v", got[0].Content())
	}
	// Intermediate nodes must not store the reply (non-storing message).
	if n := len(tn.node(topology.NodeName(1)).Read(tuple.Match(pattern.KindDownhill))); n != 0 {
		t.Errorf("intermediate node stored the reply")
	}
}

func TestEventTupleIsIsolatedCopy(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(1))
	var log eventLog
	n.Subscribe(tuple.Match(pattern.KindFlood), log.add)
	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("x", tuple.I("v", 1))); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	evs := log.byType(core.TupleArrived)
	if len(evs) != 1 {
		t.Fatal("no event")
	}
	f := evs[0].Tuple.(*pattern.Flood)
	f.Payload[0].Value = int64(999)
	stored, _ := n.ReadOne(tuple.Match(pattern.KindFlood))
	if stored.Content().GetInt("v") != 1 {
		t.Error("event tuple shares storage with the space")
	}
}

// TestSubscribeUnsubscribeRacingDispatch hammers the subscription
// table from several goroutines while dispatch is firing — the shape a
// gateway puts the engine in, where subscribe/unsubscribe RPCs race
// reactions running on the transport and refresh goroutines. Run under
// -race this is the regression net for the subs-slice handling; the
// semantic assertion is that a reaction never fires once its
// Unsubscribe has returned AND all in-flight dispatches have drained.
func TestSubscribeUnsubscribeRacingDispatch(t *testing.T) {
	g := topology.New()
	g.AddNode("solo")
	tn := newTestNet(t, g)
	n := tn.node("solo")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Dispatch pressure: injectors create and delete flood tuples, each
	// emitting arrival/removal events through the reaction path.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn-%d-%d", w, i)
				if _, err := n.Inject(pattern.NewFlood(name)); err != nil {
					t.Error(err)
					return
				}
				n.Delete(pattern.ByName(pattern.KindFlood, name))
			}
		}(w)
	}
	// Subscription churn: register a counting reaction, let it see some
	// traffic, drop it, and verify it stays silent after the final
	// barrier below.
	var fired, unsubscribed sync.Map
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("%d-%d", w, i)
				cnt := new(atomic.Int64)
				fired.Store(key, cnt)
				id := n.Subscribe(tuple.Match(pattern.KindFlood), func(core.Event) {
					cnt.Add(1)
					if _, gone := unsubscribed.Load(key); gone {
						// In-flight dispatches may legally overlap the
						// Unsubscribe call itself; the hard guarantee is
						// checked after the drain barrier.
						return
					}
				})
				n.Unsubscribe(id)
				unsubscribed.Store(key, true)
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Drain barrier: with every injector stopped and Unsubscribe
	// returned for every id, no reaction may fire again.
	snapshot := map[string]int64{}
	fired.Range(func(k, v any) bool {
		snapshot[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	if _, err := n.Inject(pattern.NewFlood("post-barrier")); err != nil {
		t.Fatal(err)
	}
	fired.Range(func(k, v any) bool {
		if got := v.(*atomic.Int64).Load(); got != snapshot[k.(string)] {
			t.Errorf("reaction %s fired after unsubscribe drain (%d -> %d)", k, snapshot[k.(string)], got)
		}
		return true
	})
}

// TestReactionSlowConsumerDoesNotLoseEvents pins the engine-side
// contract the gateway's bounded queues build on: reactions run
// synchronously, so a consumer that needs to shed load must do its own
// bounded buffering (the engine never drops), and everything the
// engine emitted is observable in order from a single subscription.
func TestReactionSlowConsumerDoesNotLoseEvents(t *testing.T) {
	g := topology.New()
	g.AddNode("solo")
	tn := newTestNet(t, g)
	n := tn.node("solo")

	// A gateway-shaped consumer: bounded channel, non-blocking send,
	// explicit drop accounting.
	queue := make(chan core.Event, 4)
	var delivered, dropped atomic.Int64
	n.Subscribe(tuple.Match(pattern.KindFlood), func(ev core.Event) {
		select {
		case queue <- ev:
			delivered.Add(1)
		default:
			dropped.Add(1)
		}
	})

	const total = 64
	for i := 0; i < total; i++ {
		if _, err := n.Inject(pattern.NewFlood(fmt.Sprintf("slow-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The engine dispatched every event exactly once: queue capacity
	// absorbed some, accounting explains the rest — nothing silent.
	if got := delivered.Load() + dropped.Load(); got != total {
		t.Fatalf("delivered %d + dropped %d != %d emitted", delivered.Load(), dropped.Load(), total)
	}
	if dropped.Load() == 0 {
		t.Fatal("bounded queue never overflowed — test is vacuous")
	}
	if len(queue) != 4 {
		t.Fatalf("queue holds %d, want full capacity 4", len(queue))
	}
}
