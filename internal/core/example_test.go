package core_test

import (
	"fmt"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// Example shows the complete TOTA API on a three-node line: inject a
// gradient field, sense it remotely, react to it, and tear it down.
func Example() {
	// Build a - b - c over the simulated radio.
	graph := topology.New()
	graph.AddEdge("a", "b")
	graph.AddEdge("b", "c")
	radio := transport.NewSim(graph, transport.SimConfig{})
	nodes := make(map[tuple.NodeID]*core.Node)
	for _, id := range []tuple.NodeID{"a", "b", "c"} {
		ep := radio.Attach(id, nil)
		n := core.New(ep)
		radio.Bind(id, n)
		nodes[id] = n
	}

	// c reacts to the field arriving.
	nodes["c"].Subscribe(pattern.ByName(pattern.KindGradient, "hello"), func(ev core.Event) {
		if ev.Type == core.TupleArrived {
			fmt.Println("c: sensed", ev.Tuple.Content().GetString("name"))
		}
	})

	// a injects; the middleware propagates hop-by-hop.
	id, err := nodes["a"].Inject(pattern.NewGradient("hello"))
	if err != nil {
		fmt.Println("inject:", err)
		return
	}
	radio.RunUntilQuiet(1000)

	// Everyone senses the field locally, with the network distance.
	for _, nid := range []tuple.NodeID{"a", "b", "c"} {
		t, _ := nodes[nid].ReadOne(pattern.ByName(pattern.KindGradient, "hello"))
		fmt.Printf("%s: distance %v\n", nid, t.(*pattern.Gradient).Val)
	}

	// Tear the structure down network-wide.
	nodes["a"].Retract(id)
	radio.RunUntilQuiet(1000)
	fmt.Println("after retract, c holds", len(nodes["c"].Read(tuple.MatchAll())), "tuples")

	// Output:
	// c: sensed hello
	// a: distance 0
	// b: distance 1
	// c: distance 2
	// after retract, c holds 0 tuples
}

// ExampleNode_Delete shows local extraction: delete is purely local,
// and maintained structures heal the hole.
func ExampleNode_Delete() {
	graph := topology.Line(3)
	radio := transport.NewSim(graph, transport.SimConfig{})
	var line []*core.Node
	for _, id := range graph.Nodes() {
		ep := radio.Attach(id, nil)
		n := core.New(ep)
		radio.Bind(id, n)
		line = append(line, n)
	}
	if _, err := line[0].Inject(pattern.NewGradient("f")); err != nil {
		fmt.Println("inject:", err)
		return
	}
	radio.RunUntilQuiet(1000)

	removed := line[1].Delete(pattern.ByName(pattern.KindGradient, "f"))
	fmt.Println("deleted locally:", len(removed))
	radio.RunUntilQuiet(1000)
	t, ok := line[1].ReadOne(pattern.ByName(pattern.KindGradient, "f"))
	fmt.Println("healed by maintenance:", ok && t.(*pattern.Gradient).Val == 1)

	// Output:
	// deleted locally: 1
	// healed by maintenance: true
}
