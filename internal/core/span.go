package core

import (
	"math"

	"tota/internal/tuple"
)

// Span identity. Trace and span ids are derived by hashing, never drawn
// from randomness or clocks, so a seeded emulation traces identically
// on every run and every holder of a tuple agrees on its trace id
// without coordination:
//
//   - the trace id is a hash of the tuple's network-wide id;
//   - a span id is a hash of (holder node, tuple id, incarnation
//     counter), where the counter bumps on every announcement-identity
//     change of the local copy (store, adopt, supersede, relay).
//
// Every span change coincides with an announcement version bump, so a
// neighbor that has seen a sender's version has also seen its current
// span — which is what lets digest-suppressed refreshes keep their
// causal links without carrying spans in digest entries.

// FNV-1a 64-bit, inlined so hashing allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (v >> shift & 0xff)) * fnvPrime64
	}
	return h
}

// traceIDFor derives the deterministic trace identity of a tuple from
// its network-wide id. Never returns zero (zero means "unsampled" on
// the wire).
func traceIDFor(id tuple.ID) uint64 {
	h := fnvString(fnvOffset64, string(id.Node))
	h = fnvUint64(h, id.Seq)
	if h == 0 {
		return 1
	}
	return h
}

// spanID derives the span identity of one copy incarnation: the
// (holder, tuple, incarnation) triple hashed to 64 bits.
func spanID(node tuple.NodeID, id tuple.ID, seq uint32) uint64 {
	h := fnvString(fnvOffset64, string(node))
	h = fnvString(h, string(id.Node))
	h = fnvUint64(h, id.Seq)
	h = fnvUint64(h, uint64(seq))
	if h == 0 {
		return 1
	}
	return h
}

// sampleTrace decides at inject time whether a tuple is traced: a
// deterministic threshold test of its trace id against the configured
// rate, so the same tuple is sampled (or not) in every run and at
// every node that re-derives the decision.
func sampleTrace(id tuple.ID, rate float64) (uint64, bool) {
	if rate <= 0 {
		return 0, false
	}
	tid := traceIDFor(id)
	if rate >= 1 || float64(tid) <= rate*math.MaxUint64 {
		return tid, true
	}
	return 0, false
}

// bumpSpanLocked advances the tuple's span incarnation after a local
// copy change and records the new span id on the state. No-op (and
// zero) for unsampled tuples, so the untraced hot path never hashes.
func (n *Node) bumpSpanLocked(id tuple.ID, st *tupleState) uint64 {
	if st.traceID == 0 {
		return 0
	}
	st.spanSeq++
	st.span = spanID(n.id, id, st.spanSeq)
	return st.span
}
