package core_test

import (
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func TestGossipCoverageScalesWithP(t *testing.T) {
	coverage := func(p float64) int {
		g := topology.Grid(8, 8, 1)
		tn := newTestNet(t, g)
		src := topology.NodeName(27)
		if _, err := tn.node(src).Inject(pattern.NewGossip("rumor", p)); err != nil {
			t.Fatal(err)
		}
		tn.quiesce()
		covered := 0
		for _, id := range g.Nodes() {
			if len(tn.node(id).Read(pattern.ByName(pattern.KindGossip, "rumor"))) > 0 {
				covered++
			}
		}
		return covered
	}
	full := coverage(1)
	if full != 64 {
		t.Errorf("p=1 coverage = %d, want 64", full)
	}
	half := coverage(0.5)
	none := coverage(0)
	if none < 1 || none > 5 {
		t.Errorf("p=0 coverage = %d, want source + neighbors only", none)
	}
	if half <= none || half > full {
		t.Errorf("p=0.5 coverage = %d, want between %d and %d", half, none, full)
	}
}

func TestPathBuildsShortestRoutes(t *testing.T) {
	g := topology.Grid(5, 5, 1)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewPath("trace")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	dist := g.BFSDistances(src)
	for _, id := range g.Nodes() {
		ts := tn.node(id).Read(pattern.ByName(pattern.KindPath, "trace"))
		if len(ts) != 1 {
			t.Fatalf("node %s has %d path tuples", id, len(ts))
		}
		p := ts[0].(*pattern.Path)
		if len(p.Route) != dist[id]+1 {
			t.Errorf("node %s route %v, want length %d", id, p.Route, dist[id]+1)
			continue
		}
		if p.Route[0] != src || p.Route[len(p.Route)-1] != id {
			t.Errorf("node %s route endpoints wrong: %v", id, p.Route)
		}
		for i := 1; i < len(p.Route); i++ {
			if !g.HasEdge(p.Route[i-1], p.Route[i]) {
				t.Errorf("node %s route %v uses non-edge %s-%s",
					id, p.Route, p.Route[i-1], p.Route[i])
			}
		}
	}
}

func TestSweepExpiredRemovesLeasedCopies(t *testing.T) {
	g := topology.Line(3)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewFlood("ephemeral").Expires(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.node(src).Inject(pattern.NewFlood("durable")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	sweepAll := func(now float64) {
		for _, id := range g.Nodes() {
			tn.node(id).SweepExpired(now)
		}
		tn.quiesce()
	}
	sweepAll(4.9)
	if len(tn.node(topology.NodeName(2)).Read(pattern.ByName(pattern.KindFlood, "ephemeral"))) != 1 {
		t.Fatal("lease expired early")
	}
	sweepAll(5.0)
	for _, id := range g.Nodes() {
		n := tn.node(id)
		if len(n.Read(pattern.ByName(pattern.KindFlood, "ephemeral"))) != 0 {
			t.Errorf("node %s keeps expired copy", id)
		}
		if len(n.Read(pattern.ByName(pattern.KindFlood, "durable"))) != 1 {
			t.Errorf("node %s lost durable copy", id)
		}
		if n.Stats().Expired != 1 {
			t.Errorf("node %s Expired = %d", id, n.Stats().Expired)
		}
	}
}

func TestExpiredMaintainedStructureStaysDead(t *testing.T) {
	// A leased gradient expires everywhere; announcements from a node
	// swept later must not resurrect copies at nodes swept earlier
	// (expiry tombstones locally).
	g := topology.Line(4)
	tn := newTestNet(t, g)
	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("eph").Expires(3)); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()

	// Sweep nodes one by one, draining in between — worst-case skew.
	for _, id := range g.Nodes() {
		tn.node(id).SweepExpired(10)
		tn.quiesce()
	}
	for _, id := range g.Nodes() {
		if got := len(tn.node(id).Read(pattern.ByName(pattern.KindGradient, "eph"))); got != 0 {
			t.Errorf("node %s resurrected expired structure", id)
		}
	}
	// Refresh must not bring it back either.
	refreshAll(tn)
	for _, id := range g.Nodes() {
		if got := len(tn.node(id).Read(pattern.ByName(pattern.KindGradient, "eph"))); got != 0 {
			t.Errorf("node %s resurrected structure after refresh", id)
		}
	}
}

func TestExpiryRespectsSubscriptions(t *testing.T) {
	g := topology.Line(2)
	tn := newTestNet(t, g)
	n := tn.node(topology.NodeName(1))
	removed := 0
	n.Subscribe(tuple.Match(pattern.KindFlood), func(ev core.Event) {
		if ev.Type == core.TupleRemoved {
			removed++
		}
	})
	if _, err := tn.node(topology.NodeName(0)).Inject(pattern.NewFlood("x").Expires(1)); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	n.SweepExpired(2)
	if removed != 1 {
		t.Errorf("removal events = %d, want 1", removed)
	}
}
