package core_test

import (
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/space"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// newSampledNet wires a shared tracer plus trace sampling into every
// node of a line network.
func newSampledNet(t *testing.T, n int, rate float64, log *traceLog) *testNet {
	t.Helper()
	g := topology.Line(n)
	sim := transport.NewSim(g, transport.SimConfig{})
	tn := &testNet{t: t, sim: sim, graph: g, nodes: make(map[tuple.NodeID]*core.Node)}
	for _, id := range g.Nodes() {
		id := id
		ep := sim.Attach(id, nil)
		node := core.New(ep,
			core.WithTracer(log.add),
			core.WithTraceSampling(rate),
			core.WithLocalizer(space.FuncLocalizer(func() (space.Point, bool) {
				return g.Position(id)
			})))
		sim.Bind(id, node)
		tn.nodes[id] = node
	}
	return tn
}

// TestTraceContextCausalChain: a sampled gradient over a line must
// yield one trace id shared by every event, a span on every copy event,
// and parent-span links that resolve to a span emitted by the upstream
// node — the causal chain the propagation analyzer reconstructs.
func TestTraceContextCausalChain(t *testing.T) {
	var log traceLog
	tn := newSampledNet(t, 4, 1, &log)
	src := tn.graph.Nodes()[0]
	if _, err := tn.node(src).Inject(pattern.NewGradient("field")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()

	log.mu.Lock()
	defer log.mu.Unlock()
	var traceID uint64
	spanOwner := make(map[uint64]tuple.NodeID)
	for _, ev := range log.events {
		switch ev.Kind {
		case core.TraceInject, core.TraceStore, core.TraceAdopt, core.TraceSupersede:
			if ev.TraceID == 0 {
				t.Fatalf("%s at %s: TraceID = 0, want sampled", ev.Kind, ev.Node)
			}
			if traceID == 0 {
				traceID = ev.TraceID
			} else if ev.TraceID != traceID {
				t.Fatalf("%s at %s: TraceID = %x, want %x", ev.Kind, ev.Node, ev.TraceID, traceID)
			}
			if ev.Span == 0 {
				t.Fatalf("%s at %s: Span = 0", ev.Kind, ev.Node)
			}
			spanOwner[ev.Span] = ev.Node
		}
	}
	if traceID == 0 {
		t.Fatal("no sampled copy events recorded")
	}

	stores := 0
	for _, ev := range log.events {
		if ev.Kind != core.TraceStore && ev.Kind != core.TraceAdopt {
			continue
		}
		stores++
		if ev.Node == src {
			continue
		}
		if ev.ParentSpan == 0 {
			t.Errorf("%s at %s: ParentSpan = 0, want causal link", ev.Kind, ev.Node)
			continue
		}
		owner, ok := spanOwner[ev.ParentSpan]
		if !ok {
			t.Errorf("%s at %s: ParentSpan %x resolves to no recorded span", ev.Kind, ev.Node, ev.ParentSpan)
		} else if owner != ev.From {
			t.Errorf("%s at %s: ParentSpan owned by %s, but From = %s", ev.Kind, ev.Node, owner, ev.From)
		}
	}
	if stores < 3 {
		t.Errorf("store/adopt events = %d, want the gradient on all 4 nodes", stores)
	}

	sends := 0
	for _, ev := range log.events {
		if ev.Kind == core.TraceSend {
			sends++
		}
	}
	if sends == 0 {
		t.Error("no TraceSend events for a sampled announcement")
	}
}

// TestTraceContextSamplingOff pins the off switch: with rate 0 no event
// carries trace identity and no version-2 frame hits the air.
func TestTraceContextSamplingOff(t *testing.T) {
	var log traceLog
	tn := newSampledNet(t, 3, 0, &log)
	src := tn.graph.Nodes()[0]
	if _, err := tn.node(src).Inject(pattern.NewGradient("field")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()

	log.mu.Lock()
	defer log.mu.Unlock()
	for _, ev := range log.events {
		if ev.TraceID != 0 || ev.Span != 0 || ev.ParentSpan != 0 {
			t.Fatalf("unsampled %s at %s carries trace identity: %+v", ev.Kind, ev.Node, ev)
		}
		if ev.Kind == core.TraceSend || ev.Kind == core.TracePull {
			t.Fatalf("unsampled run emitted %s", ev.Kind)
		}
	}
}

// TestTraceContextCrossesUntracedHop: a receiver with sampling disabled
// still honors the sender's sampling decision — the trace context rides
// the announcement, not local configuration.
func TestTraceContextCrossesUntracedHop(t *testing.T) {
	g := topology.Line(2)
	sim := transport.NewSim(g, transport.SimConfig{})
	ids := g.Nodes()
	var log traceLog
	tn := &testNet{t: t, sim: sim, graph: g, nodes: make(map[tuple.NodeID]*core.Node)}
	for i, id := range ids {
		opts := []core.Option{core.WithTracer(log.add)}
		if i == 0 {
			opts = append(opts, core.WithTraceSampling(1))
		}
		ep := sim.Attach(id, nil)
		node := core.New(ep, opts...)
		sim.Bind(id, node)
		tn.nodes[id] = node
	}
	if _, err := tn.node(ids[0]).Inject(pattern.NewGradient("field")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tn.quiesce()

	log.mu.Lock()
	defer log.mu.Unlock()
	found := false
	for _, ev := range log.events {
		if ev.Node == ids[1] && (ev.Kind == core.TraceStore || ev.Kind == core.TraceAdopt) {
			found = true
			if ev.TraceID == 0 {
				t.Errorf("store at untraced receiver lost the trace context: %+v", ev)
			}
		}
	}
	if !found {
		t.Error("gradient never stored at the receiver")
	}
}
