package core_test

import (
	"math"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/transport"
	"tota/internal/tuple"
)

// TestDedupAbsorbsRadioDuplication runs propagation and maintenance on
// a radio that duplicates half its packets: tuple-id dedup (§4.1) must
// keep every node's space exact — one copy per tuple, BFS-correct
// values — with zero application-visible effect.
func TestDedupAbsorbsRadioDuplication(t *testing.T) {
	g := topology.Grid(6, 6, 1)
	sim := transport.NewSim(g, transport.SimConfig{Dup: 0.5, Seed: 3})
	tn := &testNet{t: t, sim: sim, graph: g, nodes: make(map[tuple.NodeID]*core.Node)}
	for _, id := range g.Nodes() {
		ep := sim.Attach(id, nil)
		n := core.New(ep)
		sim.Bind(id, n)
		tn.nodes[id] = n
	}

	src := topology.NodeName(0)
	if _, err := tn.node(src).Inject(pattern.NewGradient("f")); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.node(src).Inject(pattern.NewFlood("news")); err != nil {
		t.Fatal(err)
	}
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))

	dups := int64(0)
	for _, id := range g.Nodes() {
		n := tn.node(id)
		if got := len(n.Read(pattern.ByName(pattern.KindFlood, "news"))); got != 1 {
			t.Errorf("node %s stores %d flood copies", id, got)
		}
		dups += n.Stats().DupDropped
	}
	if dups == 0 {
		t.Error("no duplicates reached the engine — test proves nothing")
	}

	// Perturb under continued duplication; still exact.
	sim.RemoveEdge(topology.NodeName(7), topology.NodeName(8))
	tn.quiesce()
	tn.assertGradientMatchesBFS(src, "f", math.Inf(1))
}
