package agg

import (
	"math"
	"math/bits"
)

// SketchWords is the fixed sketch size in 64-bit words: 1024 bits,
// giving linear-counting estimates within a few percent up to several
// hundred distinct values — plenty for per-field cardinalities in the
// network sizes the emulator runs — at 128 bytes on the wire.
const SketchWords = 16

const sketchBits = SketchWords * 64

// Sketch is a duplicate-insensitive distinct-value summary: a fixed
// 1024-bit linear-counting bitmap (Whang et al.). Adding a value sets
// one deterministically hashed bit, merging is bitwise OR, so the same
// value observed at many nodes — or the same partial delivered twice by
// the fault layer's duplication — lands on the same bit and counts
// once. Everything is integer state with a deterministic hash, so
// estimates are bit-identical across runs and worker counts.
type Sketch struct {
	// W is the bitmap, least-significant bit of W[0] first.
	W [SketchWords]uint64
}

// Add marks the value's bit.
func (s *Sketch) Add(v float64) {
	h := mix64(math.Float64bits(v))
	bit := h % sketchBits
	s.W[bit/64] |= 1 << (bit % 64)
}

// Merge ORs another sketch into s.
func (s *Sketch) Merge(o Sketch) {
	for i := range s.W {
		s.W[i] |= o.W[i]
	}
}

// Ones returns the number of set bits.
func (s Sketch) Ones() int {
	n := 0
	for _, w := range s.W {
		n += bits.OnesCount64(w)
	}
	return n
}

// Estimate returns the linear-counting cardinality estimate
// m·ln(m/zeros). A saturated sketch (no zero bits) estimates m.
func (s Sketch) Estimate() float64 {
	zeros := sketchBits - s.Ones()
	if zeros <= 0 {
		return sketchBits
	}
	if zeros == sketchBits {
		return 0
	}
	return sketchBits * math.Log(float64(sketchBits)/float64(zeros))
}

// IsZero reports whether no bit is set.
func (s Sketch) IsZero() bool {
	for _, w := range s.W {
		if w != 0 {
			return false
		}
	}
	return true
}

// mix64 is the splitmix64 finalizer: a fixed, platform-independent
// 64-bit mixer, so sketch bit positions never depend on map order,
// scheduling, or architecture.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
