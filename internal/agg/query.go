package agg

import (
	"fmt"
	"math"

	"tota/internal/tuple"
)

// KindQuery is the registered tuple kind of aggregation queries.
const KindQuery = "tota:agg-query"

// Query is an aggregation query distributed as a maintained gradient
// tuple: injected at the querying node it spreads breadth-first within
// Scope, and the parent link each stored copy keeps (the neighbor it
// adopted its value from) doubles as the convergecast tree edge. The
// engine then runs the epoch clock: the source floods an epoch wave and
// every node forwards one combined Partial up its parent per epoch.
//
// Content layout: (name, _op, _selkind, _selname, _selfield, _collect,
// _val, _step, _scope, _lease).
type Query struct {
	tuple.Base

	// Name labels the query for template matching.
	Name string
	// Sel selects the tuples aggregated and the field sampled.
	Sel tuple.Selector
	// Op is the aggregate computed at the source.
	Op Op
	// Val is the gradient value at this copy (0 at the source).
	Val float64
	// StepSize is the per-hop increment (default 1).
	StepSize float64
	// Scope bounds how far the query structure spreads (default
	// unbounded: the whole connected network).
	Scope float64
	// LeaseTime gives copies a finite lifetime (0 = forever), so an
	// abandoned query ages out without an explicit retract.
	LeaseTime float64
	// Collect disables in-network combining: nodes forward every raw
	// per-tuple record up the tree instead of one merged partial.
	// This is the naive collect-all baseline experiments compare
	// against; real queries leave it false.
	Collect bool
}

var (
	_ tuple.Tuple      = (*Query)(nil)
	_ tuple.Maintained = (*Query)(nil)
	_ tuple.Expiring   = (*Query)(nil)
)

// NewQuery creates an unbounded aggregation query.
func NewQuery(name string, op Op, sel tuple.Selector) *Query {
	return &Query{
		Name:     name,
		Sel:      sel,
		Op:       op,
		StepSize: 1,
		Scope:    math.Inf(1),
	}
}

// Bounded sets the gradient scope (maximum value) and returns the
// query, for construction chaining.
func (q *Query) Bounded(scope float64) *Query {
	q.Scope = scope
	return q
}

// Expires gives every copy a finite lease and returns the query.
func (q *Query) Expires(lease float64) *Query {
	q.LeaseTime = lease
	return q
}

// CollectAll switches the query to the naive collect-all baseline and
// returns it.
func (q *Query) CollectAll() *Query {
	q.Collect = true
	return q
}

// Lease implements tuple.Expiring.
func (q *Query) Lease() float64 { return q.LeaseTime }

// Kind implements tuple.Tuple.
func (q *Query) Kind() string { return KindQuery }

// Content implements tuple.Tuple.
func (q *Query) Content() tuple.Content {
	return tuple.Content{
		tuple.S("name", q.Name),
		tuple.I("_op", int64(q.Op)),
		tuple.S("_selkind", q.Sel.Kind),
		tuple.S("_selname", q.Sel.Name),
		tuple.S("_selfield", q.Sel.Field),
		tuple.B("_collect", q.Collect),
		tuple.F("_val", q.Val),
		tuple.F("_step", q.StepSize),
		tuple.F("_scope", q.Scope),
		tuple.F("_lease", q.LeaseTime),
	}
}

// ShouldStore implements tuple.Tuple: copies within scope are stored.
func (q *Query) ShouldStore(*tuple.Ctx) bool { return q.Val <= q.Scope }

// ShouldPropagate implements tuple.Tuple: boundary copies are stored
// but not announced further.
func (q *Query) ShouldPropagate(*tuple.Ctx) bool { return q.Val+q.Step() <= q.Scope }

// Evolve implements tuple.Tuple, incrementing the value per hop.
func (q *Query) Evolve(*tuple.Ctx) tuple.Tuple {
	return q.WithValue(q.Val + q.Step())
}

// Supersedes implements tuple.Tuple: smaller values win (shorter path),
// which keeps the convergecast tree a BFS tree of the live topology.
func (q *Query) Supersedes(old tuple.Tuple) bool {
	oq, ok := old.(*Query)
	return ok && q.Val < oq.Val
}

// Value implements tuple.Maintained.
func (q *Query) Value() float64 { return q.Val }

// WithValue implements tuple.Maintained.
func (q *Query) WithValue(v float64) tuple.Tuple {
	c := *q
	c.Val = v
	return &c
}

// Step implements tuple.Maintained; non-positive configured steps read
// as 1 so maintenance always terminates.
func (q *Query) Step() float64 {
	if q.StepSize <= 0 {
		return 1
	}
	return q.StepSize
}

// MaxValue implements tuple.Maintained.
func (q *Query) MaxValue() float64 { return q.Scope }

// ByName returns the template matching this package's query tuples
// with the given name.
func ByName(name string) tuple.Template {
	return tuple.Match(KindQuery, tuple.Eq(tuple.S("name", name)))
}

func decodeQuery(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	op := Op(c.GetInt("_op"))
	if !op.Valid() {
		return nil, fmt.Errorf("agg: query %v carries unknown op %d", id, uint8(op))
	}
	q := &Query{
		Name: c.GetString("name"),
		Sel: tuple.Selector{
			Kind:  c.GetString("_selkind"),
			Name:  c.GetString("_selname"),
			Field: c.GetString("_selfield"),
		},
		Op:        op,
		Collect:   c.GetBool("_collect"),
		Val:       c.GetFloat("_val"),
		StepSize:  metaFloat(c, "_step", 1),
		Scope:     metaFloat(c, "_scope", math.Inf(1)),
		LeaseTime: c.GetFloat("_lease"),
	}
	q.SetID(id)
	return q, nil
}

// metaFloat reads a float field with a default for absent entries
// (GetFloat alone cannot distinguish missing from zero).
func metaFloat(c tuple.Content, name string, def float64) float64 {
	f, ok := c.Get(name)
	if !ok {
		return def
	}
	if v, isF := f.Value.(float64); isF {
		return v
	}
	return def
}

// Register installs the query kind into a registry.
func Register(r *tuple.Registry) {
	r.MustRegister(KindQuery, decodeQuery)
}

func init() {
	Register(tuple.DefaultRegistry)
}
