package agg

import (
	"math"
	"testing"

	"tota/internal/tuple"
)

func TestPartialIdentityAndObserve(t *testing.T) {
	p := NewPartial()
	if p.Count != 0 || !math.IsInf(p.Min, 1) || !math.IsInf(p.Max, -1) {
		t.Fatalf("bad identity partial: %+v", p)
	}
	for _, v := range []float64{3, -1, 7, 3} {
		p.Observe(Sum, v)
	}
	if p.Count != 4 || p.Sum != 12 || p.Min != -1 || p.Max != 7 {
		t.Fatalf("bad moments: %+v", p)
	}
	if got := p.Value(Avg); got != 3 {
		t.Fatalf("avg = %v, want 3", got)
	}
	if got := p.Value(Count); got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}
}

func TestCombineIsAssociativeAndIdentityPreserving(t *testing.T) {
	mk := func(vals ...float64) Partial {
		p := NewPartial()
		for _, v := range vals {
			p.Observe(Min, v)
		}
		return p
	}
	a, b, c := mk(1, 2), mk(-5), mk(9, 0)

	left := a
	left.Combine(b)
	left.Combine(c)
	right := b
	right.Combine(c)
	ab := a
	ab.Combine(right)
	if left != ab {
		t.Fatalf("combine not associative: %+v vs %+v", left, ab)
	}

	id := NewPartial()
	id.Combine(a)
	if id != a {
		t.Fatalf("identity combine changed partial: %+v vs %+v", id, a)
	}
}

func TestSketchDuplicateInsensitive(t *testing.T) {
	var a, b Sketch
	for i := 0; i < 50; i++ {
		a.Add(float64(i))
	}
	// b sees the same values, many times, in another order.
	for pass := 0; pass < 3; pass++ {
		for i := 49; i >= 0; i-- {
			b.Add(float64(i))
		}
	}
	if a != b {
		t.Fatal("sketch depends on order or multiplicity")
	}
	merged := a
	merged.Merge(b)
	if merged != a {
		t.Fatal("self-merge changed sketch")
	}
	est := a.Estimate()
	if est < 40 || est > 60 {
		t.Fatalf("estimate %v far from 50", est)
	}
}

func TestCountDistinctPartialCollapsesDuplicates(t *testing.T) {
	// Two replicas observe the same three values; a third observes two
	// of them again. The combined estimate must track 3, not 8.
	parts := make([]Partial, 3)
	for i := range parts {
		parts[i] = NewPartial()
	}
	for _, v := range []float64{1, 2, 3} {
		parts[0].Observe(CountDistinct, v)
		parts[1].Observe(CountDistinct, v)
	}
	parts[2].Observe(CountDistinct, 2)
	parts[2].Observe(CountDistinct, 3)

	total := NewPartial()
	for _, p := range parts {
		total.Combine(p)
	}
	if total.Count != 8 {
		t.Fatalf("raw count = %d, want 8", total.Count)
	}
	if est := total.Value(CountDistinct); math.Abs(est-3) > 0.5 {
		t.Fatalf("distinct estimate %v, want ~3", est)
	}
}

func TestSelectorSampleAndMatch(t *testing.T) {
	g := &fakeTuple{kind: "sensor", c: tuple.Content{
		tuple.S("name", "temp"),
		tuple.F("v", 21.5),
		tuple.I("n", 3),
	}}
	sel := tuple.Selector{Kind: "sensor", Name: "temp", Field: "v"}
	if !sel.Matches(g) {
		t.Fatal("selector missed matching tuple")
	}
	if v, ok := sel.Sample(g); !ok || v != 21.5 {
		t.Fatalf("sample = %v, %v", v, ok)
	}
	if v, ok := (tuple.Selector{Kind: "sensor", Name: "temp", Field: "n"}).Sample(g); !ok || v != 3 {
		t.Fatalf("int sample = %v, %v", v, ok)
	}
	if _, ok := (tuple.Selector{Kind: "sensor", Name: "temp", Field: "missing"}).Sample(g); ok {
		t.Fatal("sampled a missing field")
	}
	if (tuple.Selector{Kind: "sensor", Name: "other"}).Matches(g) {
		t.Fatal("name mismatch matched")
	}
	if v, ok := (tuple.Selector{Kind: "sensor"}).Sample(g); !ok || v != 0 {
		t.Fatalf("existence sample = %v, %v", v, ok)
	}
}

func TestQueryContentRoundTrip(t *testing.T) {
	q := NewQuery("load", Avg, tuple.Selector{Kind: "sensor", Name: "cpu", Field: "pct"}).
		Bounded(12).Expires(30)
	q.StepSize = 2
	q.Collect = true
	q.SetID(tuple.ID{Node: "n1", Seq: 7})
	evolved := q.WithValue(4).(*Query)

	got, err := decodeQuery(evolved.ID(), evolved.Content())
	if err != nil {
		t.Fatal(err)
	}
	dq := got.(*Query)
	if *dq != *evolved {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dq, evolved)
	}
	if dq.Kind() != KindQuery || !ByName("load").Matches(dq) {
		t.Fatal("decoded query fails its own template")
	}
}

func TestQueryGradientBehavior(t *testing.T) {
	q := NewQuery("q", Count, tuple.Selector{})
	if !q.ShouldStore(nil) || !q.ShouldPropagate(nil) {
		t.Fatal("unbounded query must store and propagate")
	}
	b := NewQuery("q", Count, tuple.Selector{}).Bounded(2)
	edge := b.WithValue(2).(*Query)
	if !edge.ShouldStore(nil) || edge.ShouldPropagate(nil) {
		t.Fatal("boundary copy must store but not propagate")
	}
	if !edge.Supersedes(b.WithValue(3).(*Query)) || edge.Supersedes(b.WithValue(1).(*Query)) {
		t.Fatal("supersede order wrong")
	}
	if ev := b.Evolve(nil).(*Query); ev.Val != 1 {
		t.Fatalf("evolve step = %v, want 1", ev.Val)
	}
}

func TestDecodeQueryRejectsUnknownOp(t *testing.T) {
	q := NewQuery("q", Count, tuple.Selector{})
	c := q.Content()
	for i, f := range c {
		if f.Name == "_op" {
			c[i] = tuple.I("_op", 99)
		}
	}
	if _, err := decodeQuery(tuple.ID{Node: "n", Seq: 1}, c); err == nil {
		t.Fatal("unknown op decoded")
	}
}

func TestOpStringParseRoundTrip(t *testing.T) {
	for _, o := range []Op{Count, Sum, Min, Max, Avg, CountDistinct} {
		got, ok := ParseOp(o.String())
		if !ok || got != o {
			t.Fatalf("ParseOp(%q) = %v, %v", o.String(), got, ok)
		}
	}
	if _, ok := ParseOp("median"); ok {
		t.Fatal("parsed unsupported op")
	}
}

type fakeTuple struct {
	tuple.Base
	kind string
	c    tuple.Content
}

func (f *fakeTuple) Kind() string           { return f.kind }
func (f *fakeTuple) Content() tuple.Content { return f.c }
