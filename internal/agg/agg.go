// Package agg implements in-network aggregation over TOTA gradient
// structures: a query tuple propagates like any maintained field and
// the spanning structure it leaves behind (each copy's parent link)
// carries an epoch-based convergecast in which every node combines its
// children's partial aggregates with its local matching tuples and
// forwards one compact partial toward the source (Madden et al.'s TAG
// pattern mapped onto tuples on the air).
//
// The package is a leaf: it defines the aggregate algebra (Op, Partial,
// Sketch) and the Query tuple kind; internal/wire frames Partial on the
// air and internal/core runs the epoch clock.
package agg

import (
	"fmt"
	"math"
)

// Op selects the decomposable aggregate a query computes. All ops share
// one Partial representation, so a single convergecast serves any of
// them and intermediate nodes need not understand the final reduction.
type Op uint8

const (
	// Count counts matching tuples.
	Count Op = iota + 1
	// Sum sums the selected field.
	Sum
	// Min takes the minimum of the selected field.
	Min
	// Max takes the maximum of the selected field.
	Max
	// Avg averages the selected field (Sum/Count at the source).
	Avg
	// CountDistinct estimates the number of distinct selected values
	// with a duplicate-insensitive sketch, so re-propagation and
	// duplicated partials cannot inflate the result.
	CountDistinct
)

// String returns the op's query-language spelling.
func (o Op) String() string {
	switch o {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	case CountDistinct:
		return "count-distinct"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp maps a spelling back to the op, for CLI flags and decoding.
func ParseOp(s string) (Op, bool) {
	for _, o := range []Op{Count, Sum, Min, Max, Avg, CountDistinct} {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// Valid reports whether o is a known aggregate op.
func (o Op) Valid() bool { return o >= Count && o <= CountDistinct }

// Partial is a decomposable partial aggregate: the per-subtree state a
// node forwards up its parent link. It carries every merge-able moment
// at once (count, sum, min, max, optional distinct sketch) so one
// convergecast answers any Op and combining is associative and
// commutative regardless of the tree shape the epoch happened to use.
type Partial struct {
	// Count is the number of observed samples.
	Count int64
	// Sum is the sum of observed samples.
	Sum float64
	// Min is the smallest observed sample (+Inf when Count is 0).
	Min float64
	// Max is the largest observed sample (-Inf when Count is 0).
	Max float64
	// HasSketch marks Sketch as populated (CountDistinct queries).
	HasSketch bool
	// Sketch is the duplicate-insensitive distinct-value summary.
	Sketch Sketch
}

// NewPartial returns the identity element of the combine operation.
func NewPartial() Partial {
	return Partial{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Observe folds one local sample into the partial. CountDistinct
// queries additionally feed the sketch, keyed by the sample's bit
// pattern, so duplicated observations of the same value collapse.
func (p *Partial) Observe(op Op, v float64) {
	p.Count++
	p.Sum += v
	if v < p.Min {
		p.Min = v
	}
	if v > p.Max {
		p.Max = v
	}
	if op == CountDistinct {
		p.HasSketch = true
		p.Sketch.Add(v)
	}
}

// Combine folds another partial into p. The operation is associative
// and commutative for every moment except floating-point Sum, where
// the engine fixes the fold order (sorted child keys) to keep results
// bit-identical across runs and worker counts.
func (p *Partial) Combine(q Partial) {
	p.Count += q.Count
	p.Sum += q.Sum
	if q.Min < p.Min {
		p.Min = q.Min
	}
	if q.Max > p.Max {
		p.Max = q.Max
	}
	if q.HasSketch {
		p.HasSketch = true
		p.Sketch.Merge(q.Sketch)
	}
}

// Value reduces the partial to the final scalar for op. Min/Max of an
// empty range keep their infinities; Avg of an empty range is NaN-free
// zero so dashboards stay readable.
func (p Partial) Value(op Op) float64 {
	switch op {
	case Count:
		return float64(p.Count)
	case Sum:
		return p.Sum
	case Min:
		return p.Min
	case Max:
		return p.Max
	case Avg:
		if p.Count == 0 {
			return 0
		}
		return p.Sum / float64(p.Count)
	case CountDistinct:
		return p.Sketch.Estimate()
	}
	return 0
}

// Result is a query answer computed at the source node: the combined
// partial, the epoch it was computed on, and the reduction to apply.
type Result struct {
	// Op is the query's aggregate op.
	Op Op
	// Epoch is the convergecast epoch the result was computed on.
	Epoch uint32
	// Partial is the full combined state (all moments).
	Partial Partial
}

// Value returns the scalar answer.
func (r Result) Value() float64 { return r.Partial.Value(r.Op) }

// String renders the result for logs and CLIs.
func (r Result) String() string {
	return fmt.Sprintf("%s=%g (n=%d, epoch %d)", r.Op, r.Value(), r.Partial.Count, r.Epoch)
}
