// Package overlay realizes the paper's virtual-space idea: "one could
// think at mapping the peers of a TOTA network in any sort of virtual
// overlay space [CAN], and propagating tuples accordingly to the
// virtual space topology", which "allows TOTA to realize systems
// providing content-based routing in the Internet peer-to-peer
// scenario, such as CAN and Pastry" (§3, §5.1).
//
// Peers are mapped onto a one-dimensional ring of virtual positions
// (the hash of their id); the wired overlay links each peer to its ring
// successor and predecessor plus logarithmic finger shortcuts. Keys
// hash onto the same ring and are owned by their successor peer.
// Content-based routing is then a pure TOTA propagation rule: a Keyed
// tuple carries its target position and relays only to nodes strictly
// closer (clockwise) to it, exactly like a message descending a
// distance field — except the field is the virtual geometry itself, so
// no per-destination structure is needed.
package overlay

import (
	"fmt"
	"hash/fnv"
	"sort"

	"tota/internal/topology"
	"tota/internal/tuple"
)

// Hash maps a string onto the unit ring [0, 1). The raw FNV-1a sum is
// finalized with a splitmix64 avalanche: FNV alone leaves similar
// strings (peer-01, peer-02, ...) clustered because trailing-byte
// differences barely reach the high bits.
func Hash(s string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return float64(Avalanche(h.Sum64())&(1<<53-1)) / float64(1<<53)
}

// Avalanche is the splitmix64 finalizer: a cheap full-avalanche bit
// mixer turning any 64-bit value into a uniformly diffused one.
func Avalanche(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// clockDist is the clockwise distance from a to b on the unit ring.
func clockDist(a, b float64) float64 {
	d := b - a
	if d < 0 {
		d++
	}
	return d
}

// owns reports whether a peer at pos with predecessor predPos owns ring
// position key — the (pred, pos] interval.
func owns(pos, predPos, key float64) bool {
	if pos == predPos {
		// Single-peer ring owns everything.
		return true
	}
	d := clockDist(predPos, key)
	return d > 0 && d <= clockDist(predPos, pos)
}

// Layout is the computed ring geometry.
type Layout struct {
	// Order lists the peers clockwise by position.
	Order []tuple.NodeID
	// Pos maps each peer to its ring position.
	Pos map[tuple.NodeID]float64
	// Pred maps each peer to its predecessor's position.
	Pred map[tuple.NodeID]float64
}

// Owner returns the peer owning ring position key.
func (l *Layout) Owner(key float64) tuple.NodeID {
	for _, id := range l.Order {
		if owns(l.Pos[id], l.Pred[id], key) {
			return id
		}
	}
	return l.Order[0]
}

// OwnerOf returns the peer owning a string key.
func (l *Layout) OwnerOf(key string) tuple.NodeID { return l.Owner(Hash(key)) }

// ComputeLayout derives the ring geometry for a peer set without
// touching any graph.
func ComputeLayout(peers []tuple.NodeID) (*Layout, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("overlay: no peers")
	}
	l := &Layout{
		Pos:  make(map[tuple.NodeID]float64, len(peers)),
		Pred: make(map[tuple.NodeID]float64, len(peers)),
	}
	seen := make(map[float64]tuple.NodeID, len(peers))
	for _, id := range peers {
		p := Hash(string(id))
		if other, dup := seen[p]; dup {
			return nil, fmt.Errorf("overlay: position collision between %s and %s", id, other)
		}
		seen[p] = id
		l.Pos[id] = p
	}
	l.Order = append([]tuple.NodeID(nil), peers...)
	sort.Slice(l.Order, func(i, j int) bool { return l.Pos[l.Order[i]] < l.Pos[l.Order[j]] })
	n := len(l.Order)
	for i, id := range l.Order {
		l.Pred[id] = l.Pos[l.Order[(i-1+n)%n]]
	}
	return l, nil
}

// Edge is one undirected overlay link, with A < B canonically.
type Edge struct {
	A, B tuple.NodeID
}

func mkEdge(a, b tuple.NodeID) Edge {
	if b < a {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// RingEdges computes the overlay edge set for a layout: the ring
// (successor/predecessor links) plus up to `fingers` shortcut edges per
// peer at exponentially growing clockwise offsets.
func RingEdges(l *Layout, fingers int) map[Edge]struct{} {
	edges := make(map[Edge]struct{}, len(l.Order)*(1+fingers))
	n := len(l.Order)
	for i, id := range l.Order {
		pred := l.Order[(i-1+n)%n]
		if pred != id {
			edges[mkEdge(id, pred)] = struct{}{}
		}
		for k := 0; k < fingers; k++ {
			span := 1.0
			for j := 0; j <= k; j++ {
				span /= 2
			}
			target := l.Pos[id] + span
			for target >= 1 {
				target--
			}
			if fid := l.successor(target); fid != id {
				edges[mkEdge(id, fid)] = struct{}{}
			}
		}
	}
	return edges
}

// BuildRing computes the ring layout for the given peers and wires the
// overlay links into the graph (0 fingers = plain ring). Peers are
// marked wired so geometric recomputation leaves the overlay alone.
func BuildRing(g *topology.Graph, peers []tuple.NodeID, fingers int) (*Layout, error) {
	l, err := ComputeLayout(peers)
	if err != nil {
		return nil, err
	}
	for _, id := range l.Order {
		g.SetWired(id, true)
	}
	for e := range RingEdges(l, fingers) {
		g.AddEdge(e.A, e.B)
	}
	return l, nil
}

// successor returns the first peer clockwise from ring position p
// (inclusive).
func (l *Layout) successor(p float64) tuple.NodeID {
	best := l.Order[0]
	bestD := clockDist(p, l.Pos[best])
	for _, id := range l.Order[1:] {
		if d := clockDist(p, l.Pos[id]); d < bestD {
			best = id
			bestD = d
		}
	}
	return best
}
