package overlay

import (
	"fmt"
	"sync"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

// KV is one key/value pair stored in or retrieved from the overlay.
type KV struct {
	Key   string
	Value string
	// Found distinguishes an empty value from a missing key in Get
	// results.
	Found bool
}

// Peer is one DHT participant: a middleware node plus its ring
// geometry, exposing put/get content addressing over TOTA tuples.
type Peer struct {
	node *core.Node
	pos  float64
	pred float64
	sub  core.SubID

	mu      sync.Mutex
	results []KV
	served  map[tuple.ID]struct{}
}

// NewPeer turns a middleware node into an overlay peer using the ring
// layout. It stores the peer's ring geometry as a node-local tuple (so
// passing Keyed tuples can route by it) and subscribes the get
// responder.
func NewPeer(n *core.Node, l *Layout) (*Peer, error) {
	pos, ok := l.Pos[n.Self()]
	if !ok {
		return nil, fmt.Errorf("overlay: %s is not in the layout", n.Self())
	}
	p := &Peer{
		node:   n,
		pos:    pos,
		pred:   l.Pred[n.Self()],
		served: make(map[tuple.ID]struct{}),
	}
	if err := p.writeRingInfo(true); err != nil {
		return nil, err
	}
	p.sub = n.Subscribe(tuple.Match(KindKeyed), p.react)
	return p, nil
}

// writeRingInfo replaces the node-local ring geometry tuple.
func (p *Peer) writeRingInfo(member bool) error {
	p.node.Delete(pattern.ByName(pattern.KindLocal, ringInfoName))
	ring := pattern.NewLocal(ringInfoName,
		tuple.F("pos", p.pos),
		tuple.F("pred", p.pred),
		tuple.B("member", member),
	)
	if _, err := p.node.Inject(ring); err != nil {
		return fmt.Errorf("overlay: store ring info: %w", err)
	}
	return nil
}

// UpdateLayout moves the peer to a new ring geometry (a membership
// change elsewhere on the ring) and re-homes every stored key the peer
// no longer owns: each is deleted locally and re-injected as a put,
// which routes to its new owner.
func (p *Peer) UpdateLayout(l *Layout) error {
	pos, ok := l.Pos[p.node.Self()]
	if !ok {
		return fmt.Errorf("overlay: %s is not in the new layout", p.node.Self())
	}
	p.pos = pos
	p.pred = l.Pred[p.node.Self()]
	if err := p.writeRingInfo(true); err != nil {
		return err
	}
	return p.rehome(func(target float64) bool {
		return !owns(p.pos, p.pred, target)
	})
}

// Resign hands off every stored key and marks the node a non-member:
// in-flight traffic stops considering it an owner, but it still relays
// its own re-homing puts.
func (p *Peer) Resign() error {
	if err := p.writeRingInfo(false); err != nil {
		return err
	}
	return p.rehome(func(float64) bool { return true })
}

// rehome re-injects the stored puts whose target satisfies shouldMove.
func (p *Peer) rehome(shouldMove func(target float64) bool) error {
	for _, t := range p.node.Read(tuple.Match(KindKeyed)) {
		k, ok := t.(*Keyed)
		if !ok || k.Mode != ModePut || !shouldMove(k.Target) {
			continue
		}
		p.node.Delete(tuple.MatchID(k.ID()))
		if err := p.Put(k.Key, k.Payload.GetString("value")); err != nil {
			return fmt.Errorf("overlay: re-home %q: %w", k.Key, err)
		}
	}
	return nil
}

// Close stops serving gets.
func (p *Peer) Close() {
	p.node.Unsubscribe(p.sub)
}

// Node returns the underlying middleware node.
func (p *Peer) Node() *core.Node { return p.node }

// Pos returns the peer's ring position.
func (p *Peer) Pos() float64 { return p.pos }

// Put routes a key/value pair to its owner, where it is stored.
func (p *Peer) Put(key, value string) error {
	_, err := p.node.Inject(NewKeyed(ModePut, key, tuple.S("value", value)))
	return err
}

// Get requests the value for a key; the owner's reply lands in
// Results once the network settles.
func (p *Peer) Get(key string) error {
	q := NewKeyed(ModeGet, key)
	q.Asker = p.node.Self()
	_, err := p.node.Inject(q)
	return err
}

// Results drains the replies received so far.
func (p *Peer) Results() []KV {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.results
	p.results = nil
	return out
}

// Stored lists the key/value pairs this peer hosts (the keys it owns).
func (p *Peer) Stored() []KV {
	var out []KV
	for _, t := range p.node.Read(tuple.Match(KindKeyed)) {
		k, ok := t.(*Keyed)
		if !ok || k.Mode != ModePut {
			continue
		}
		out = append(out, KV{
			Key:   k.Key,
			Value: k.Payload.GetString("value"),
			Found: true,
		})
	}
	return out
}

// react answers arriving gets and collects arriving replies.
func (p *Peer) react(ev core.Event) {
	if ev.Type != core.TupleArrived {
		return
	}
	k, ok := ev.Tuple.(*Keyed)
	if !ok {
		return
	}
	switch k.Mode {
	case ModeGet:
		p.mu.Lock()
		if _, dup := p.served[k.ID()]; dup {
			p.mu.Unlock()
			return
		}
		p.served[k.ID()] = struct{}{}
		p.mu.Unlock()
		p.answer(k)
	case ModeReply:
		p.mu.Lock()
		p.results = append(p.results, KV{
			Key:   k.Key,
			Value: k.Payload.GetString("value"),
			Found: k.Payload.GetBool("found"),
		})
		p.mu.Unlock()
		// The reply has been consumed; drop the stored copy.
		p.node.Delete(tuple.MatchID(k.ID()))
	}
}

func (p *Peer) answer(q *Keyed) {
	value, found := "", false
	for _, kv := range p.Stored() {
		if kv.Key == q.Key {
			value, found = kv.Value, true
			break
		}
	}
	reply := NewReply(q.Key, q.Asker,
		tuple.S("value", value),
		tuple.B("found", found),
	)
	// The query stays stored at this owner as a breadcrumb; remove it
	// so repeated gets do not accumulate.
	p.node.Delete(tuple.Match(KindKeyed,
		tuple.Eq(tuple.S("name", q.Key)),
		tuple.Eq(tuple.S("_mode", ModeGet))))
	if _, err := p.node.Inject(reply); err != nil {
		// The asker will simply miss this reply.
		return
	}
}
