package overlay

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"tota/internal/emulator"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func peerIDs(n int) []tuple.NodeID {
	ids := make([]tuple.NodeID, n)
	for i := range ids {
		ids[i] = tuple.NodeID(fmt.Sprintf("peer-%02d", i))
	}
	return ids
}

// dhtNet builds an emulator world whose topology is a ring overlay with
// the given finger count, and one Peer per node.
func dhtNet(t *testing.T, n, fingers int) (*emulator.World, *Layout, map[tuple.NodeID]*Peer) {
	t.Helper()
	g := topology.New()
	ids := peerIDs(n)
	layout, err := BuildRing(g, ids, fingers)
	if err != nil {
		t.Fatalf("BuildRing: %v", err)
	}
	w := emulator.New(emulator.Config{Graph: g})
	peers := make(map[tuple.NodeID]*Peer, n)
	for _, id := range ids {
		p, err := NewPeer(w.Node(id), layout)
		if err != nil {
			t.Fatalf("NewPeer(%s): %v", id, err)
		}
		peers[id] = p
	}
	return w, layout, peers
}

func TestRingGeometry(t *testing.T) {
	g := topology.New()
	ids := peerIDs(8)
	l, err := BuildRing(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Order) != 8 {
		t.Fatalf("order = %v", l.Order)
	}
	// Plain ring: exactly n edges, each node degree 2.
	if g.EdgeCount() != 8 {
		t.Errorf("edges = %d, want 8", g.EdgeCount())
	}
	for _, id := range ids {
		if d := g.Degree(id); d != 2 {
			t.Errorf("degree(%s) = %d", id, d)
		}
	}
	// Every ring position has exactly one owner, and it is the
	// clockwise successor.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		key := math.Mod(math.Abs(x), 1)
		owner := l.Owner(key)
		count := 0
		for _, id := range l.Order {
			if owns(l.Pos[id], l.Pred[id], key) {
				count++
			}
		}
		return count == 1 && owner == l.successor(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFingersAddShortcuts(t *testing.T) {
	plain := topology.New()
	if _, err := BuildRing(plain, peerIDs(16), 0); err != nil {
		t.Fatal(err)
	}
	fingered := topology.New()
	if _, err := BuildRing(fingered, peerIDs(16), 4); err != nil {
		t.Fatal(err)
	}
	if fingered.EdgeCount() <= plain.EdgeCount() {
		t.Errorf("fingers added no edges: %d vs %d", fingered.EdgeCount(), plain.EdgeCount())
	}
	if fingered.Diameter() >= plain.Diameter() {
		t.Errorf("fingers did not shrink diameter: %d vs %d", fingered.Diameter(), plain.Diameter())
	}
}

func TestPutStoresAtOwner(t *testing.T) {
	w, layout, peers := dhtNet(t, 10, 3)
	origin := layout.Order[0]
	const key = "some-key"
	if err := peers[origin].Put(key, "v1"); err != nil {
		t.Fatal(err)
	}
	w.Settle(100000)

	owner := layout.OwnerOf(key)
	for id, p := range peers {
		stored := p.Stored()
		if id == owner {
			if len(stored) != 1 || stored[0].Value != "v1" {
				t.Errorf("owner %s stored %v", id, stored)
			}
			continue
		}
		if len(stored) != 0 {
			t.Errorf("non-owner %s stored %v", id, stored)
		}
	}
}

func TestGetRoundTrip(t *testing.T) {
	w, layout, peers := dhtNet(t, 12, 3)
	writer := peers[layout.Order[2]]
	reader := peers[layout.Order[7]]

	if err := writer.Put("color", "blue"); err != nil {
		t.Fatal(err)
	}
	w.Settle(100000)
	if err := reader.Get("color"); err != nil {
		t.Fatal(err)
	}
	w.Settle(100000)

	got := reader.Results()
	if len(got) != 1 {
		t.Fatalf("results = %v", got)
	}
	if !got[0].Found || got[0].Value != "blue" || got[0].Key != "color" {
		t.Errorf("result = %+v", got[0])
	}
	if again := reader.Results(); len(again) != 0 {
		t.Errorf("Results did not drain: %v", again)
	}
}

func TestGetMissingKey(t *testing.T) {
	w, layout, peers := dhtNet(t, 8, 2)
	reader := peers[layout.Order[3]]
	if err := reader.Get("never-stored"); err != nil {
		t.Fatal(err)
	}
	w.Settle(100000)
	got := reader.Results()
	if len(got) != 1 || got[0].Found {
		t.Errorf("results = %v", got)
	}
}

func TestAllKeysRouteToTheirOwners(t *testing.T) {
	w, layout, peers := dhtNet(t, 16, 4)
	origin := peers[layout.Order[0]]
	const keys = 24
	for i := 0; i < keys; i++ {
		if err := origin.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Settle(100000)

	total := 0
	for id, p := range peers {
		for _, kv := range p.Stored() {
			total++
			if want := layout.OwnerOf(kv.Key); want != id {
				t.Errorf("key %s stored at %s, owner is %s", kv.Key, id, want)
			}
		}
	}
	if total != keys {
		t.Errorf("stored %d keys, want %d", total, keys)
	}
}

func TestFingerTradeoffRoundsVsTraffic(t *testing.T) {
	// With one-hop broadcast relaying, finger shortcuts cut routing
	// latency (delivery rounds ~ O(log N) instead of O(N)) at the cost
	// of extra parallel relays — the CAN/Pastry trade-off as it
	// manifests on a broadcast substrate.
	cost := func(fingers int) (rounds int, sent int64) {
		w, layout, peers := dhtNet(t, 24, fingers)
		w.Settle(100000)
		w.Sim().ResetStats()
		origin := peers[layout.Order[0]]
		for i := 0; i < 10; i++ {
			if err := origin.Put(fmt.Sprintf("k%d", i), "v"); err != nil {
				t.Fatal(err)
			}
			rounds += w.Settle(100000)
		}
		return rounds, w.Sim().Stats().Sent
	}
	plainRounds, plainSent := cost(0)
	fingerRounds, fingerSent := cost(4)
	if fingerRounds >= plainRounds {
		t.Errorf("fingers did not cut routing rounds: %d vs %d", fingerRounds, plainRounds)
	}
	if plainSent >= fingerSent {
		t.Errorf("plain ring unexpectedly chattier: %d vs %d", plainSent, fingerSent)
	}
}

func TestBuildRingErrors(t *testing.T) {
	if _, err := BuildRing(topology.New(), nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
}

func TestNewPeerRequiresLayoutMembership(t *testing.T) {
	g := topology.New()
	layout, err := BuildRing(g, peerIDs(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	g.AddNode("outsider")
	w := emulator.New(emulator.Config{Graph: g})
	if _, err := NewPeer(w.Node("outsider"), layout); err == nil {
		t.Error("outsider accepted as peer")
	}
}
