package overlay

import (
	"fmt"

	"tota/internal/emulator"
	"tota/internal/space"
	"tota/internal/tuple"
)

// Join adds a new peer to a running overlay: the ring is rewired to the
// new layout, the newcomer gets its Peer, existing peers adopt the new
// geometry and hand off the keys the newcomer now owns, and the network
// settles. It returns the new layout; the peers map is updated in
// place.
func Join(w *emulator.World, peers map[tuple.NodeID]*Peer, old *Layout, fingers int, id tuple.NodeID) (*Layout, error) {
	if _, dup := old.Pos[id]; dup {
		return nil, fmt.Errorf("overlay: %s already on the ring", id)
	}
	next, err := ComputeLayout(append(append([]tuple.NodeID(nil), old.Order...), id))
	if err != nil {
		return nil, err
	}
	if w.Node(id) == nil {
		w.AddNode(id, space.Point{})
	}
	w.Graph().SetWired(id, true)
	rewire(w, old, next, fingers, nil)

	p, err := NewPeer(w.Node(id), next)
	if err != nil {
		return nil, err
	}
	peers[id] = p
	for pid, peer := range peers {
		if pid == id {
			continue
		}
		if err := peer.UpdateLayout(next); err != nil {
			return nil, err
		}
	}
	w.Settle(joinSettleBudget)
	return next, nil
}

// Leave removes a peer gracefully: the remaining peers adopt the new
// geometry first, the ring is rewired around the leaver (its own links
// stay up during the handoff), the leaver resigns — re-homing every key
// it stored — and is finally cut off. It returns the new layout; the
// peers map is updated in place.
func Leave(w *emulator.World, peers map[tuple.NodeID]*Peer, old *Layout, fingers int, id tuple.NodeID) (*Layout, error) {
	if _, ok := old.Pos[id]; !ok {
		return nil, fmt.Errorf("overlay: %s is not on the ring", id)
	}
	if len(old.Order) < 2 {
		return nil, fmt.Errorf("overlay: cannot remove the last peer")
	}
	var rest []tuple.NodeID
	for _, pid := range old.Order {
		if pid != id {
			rest = append(rest, pid)
		}
	}
	next, err := ComputeLayout(rest)
	if err != nil {
		return nil, err
	}
	for pid, peer := range peers {
		if pid == id {
			continue
		}
		if err := peer.UpdateLayout(next); err != nil {
			return nil, err
		}
	}
	// Rewire, but keep the leaver's links up so its handoff puts can
	// leave the node.
	rewire(w, old, next, fingers, &id)

	leaver, ok := peers[id]
	if !ok {
		return nil, fmt.Errorf("overlay: no peer for %s", id)
	}
	if err := leaver.Resign(); err != nil {
		return nil, err
	}
	w.Settle(joinSettleBudget)

	// Now cut the leaver off entirely.
	for _, nb := range w.Graph().Neighbors(id) {
		w.RemoveEdge(id, nb)
	}
	leaver.Close()
	delete(peers, id)
	w.Settle(joinSettleBudget)
	return next, nil
}

const joinSettleBudget = 100000

// rewire applies the overlay edge diff between two layouts. When keep
// is non-nil, edges incident to *keep are never removed (they are still
// needed for the leaver's handoff).
func rewire(w *emulator.World, old, next *Layout, fingers int, keep *tuple.NodeID) {
	oldEdges := RingEdges(old, fingers)
	newEdges := RingEdges(next, fingers)
	for e := range newEdges {
		if _, had := oldEdges[e]; !had {
			w.AddEdge(e.A, e.B)
		}
	}
	for e := range oldEdges {
		if _, has := newEdges[e]; has {
			continue
		}
		if keep != nil && (e.A == *keep || e.B == *keep) {
			continue
		}
		w.RemoveEdge(e.A, e.B)
	}
}
