package overlay

import (
	"math"

	"tota/internal/pattern"
	"tota/internal/tuple"
)

// Tuple kinds used by the overlay.
const (
	// KindKeyed is the content-routed tuple.
	KindKeyed = "tota:keyed"
	// ringInfoName is the node-local tuple holding a peer's ring
	// geometry; Keyed tuples read it from the local space while
	// propagating — the paper's data-adaptive propagation.
	ringInfoName = "_ring"
)

// Keyed modes.
const (
	// ModePut routes a value to the key's owner and stores it there.
	ModePut = "put"
	// ModeGet routes a request to the key's owner, which reacts with a
	// reply.
	ModeGet = "get"
	// ModeReply routes a response back to the asker's ring position.
	ModeReply = "reply"
)

// Keyed is the content-based-routing tuple: it travels the virtual ring
// greedily toward Target, using each traversed node's locally stored
// ring geometry, and is delivered at the peer owning Target.
//
// Content layout: (name=key, payload..., _mode, _target, _best, _asker).
type Keyed struct {
	tuple.Base

	// Key is the application key (the content the routing addresses).
	Key string
	// Payload carries the value (put/reply) or request fields (get).
	Payload tuple.Content
	// Mode is one of ModePut, ModeGet, ModeReply.
	Mode string
	// Target is the ring position the tuple routes to.
	Target float64
	// Best is the smallest clockwise distance to Target seen on this
	// copy's path.
	Best float64
	// Asker is the peer to reply to (get mode).
	Asker tuple.NodeID

	prevBest float64
}

var _ tuple.Tuple = (*Keyed)(nil)

// NewKeyed creates a content-routed tuple for the given key.
func NewKeyed(mode, key string, payload ...tuple.Field) *Keyed {
	return &Keyed{
		Key:      key,
		Payload:  payload,
		Mode:     mode,
		Target:   Hash(key),
		Best:     math.Inf(1),
		prevBest: math.Inf(1),
	}
}

// NewReply creates the response tuple for a get, targeted at the
// asker's ring position.
func NewReply(key string, asker tuple.NodeID, payload ...tuple.Field) *Keyed {
	k := NewKeyed(ModeReply, key, payload...)
	k.Target = Hash(string(asker))
	k.Asker = asker
	return k
}

// Kind implements tuple.Tuple.
func (k *Keyed) Kind() string { return KindKeyed }

// Content implements tuple.Tuple.
func (k *Keyed) Content() tuple.Content {
	c := pattern.AppContent(k.Key, k.Payload)
	return append(c,
		tuple.S("_mode", k.Mode),
		tuple.F("_target", k.Target),
		tuple.F("_best", k.Best),
		tuple.S("_asker", string(k.Asker)),
	)
}

// ringInfo reads the local peer's ring geometry, if this node is a
// current overlay member (resigned peers keep a marker with member =
// false so in-flight traffic stops treating them as owners).
func ringInfo(store tuple.LocalStore) (pos, pred float64, ok bool) {
	if store == nil {
		return 0, 0, false
	}
	ts := store.Read(pattern.ByName(pattern.KindLocal, ringInfoName))
	if len(ts) == 0 {
		return 0, 0, false
	}
	c := ts[0].Content()
	if f, found := c.Get("member"); found {
		if member, isBool := f.Value.(bool); isBool && !member {
			return 0, 0, false
		}
	}
	return c.GetFloat("pos"), c.GetFloat("pred"), true
}

// delivered reports whether the hook's node owns the target position.
func (k *Keyed) delivered(ctx *tuple.Ctx) bool {
	pos, pred, ok := ringInfo(ctx.Store)
	return ok && owns(pos, pred, k.Target)
}

// Evolve implements tuple.Tuple: the copy absorbs the node's clockwise
// distance to the target into Best.
func (k *Keyed) Evolve(ctx *tuple.Ctx) tuple.Tuple {
	c := *k
	c.prevBest = k.Best
	if pos, _, ok := ringInfo(ctx.Store); ok {
		if d := clockDist(pos, k.Target); d < c.Best {
			c.Best = d
		}
	}
	return &c
}

// ShouldStore implements tuple.Tuple: only the owner keeps the tuple
// (and, for replies, only the asker).
func (k *Keyed) ShouldStore(ctx *tuple.Ctx) bool {
	if !k.delivered(ctx) {
		return false
	}
	if k.Mode == ModeReply {
		return ctx.Self == k.Asker
	}
	return true
}

// ShouldPropagate implements tuple.Tuple: relay only with strict
// clockwise progress, and stop at the owner.
func (k *Keyed) ShouldPropagate(ctx *tuple.Ctx) bool {
	if k.delivered(ctx) {
		return false
	}
	pos, _, ok := ringInfo(ctx.Store)
	if !ok {
		// Not an overlay peer: never relay overlay traffic.
		return ctx.Injected()
	}
	return clockDist(pos, k.Target) < k.prevBest
}

func decodeKeyed(id tuple.ID, c tuple.Content) (tuple.Tuple, error) {
	app, meta := pattern.SplitMeta(c)
	key, payload, err := pattern.SplitNamePayload(app)
	if err != nil {
		return nil, err
	}
	best := pattern.MetaFloat(meta, "_best", math.Inf(1))
	k := &Keyed{
		Key:      key,
		Payload:  payload,
		Mode:     pattern.MetaString(meta, "_mode", ModePut),
		Target:   pattern.MetaFloat(meta, "_target", 0),
		Best:     best,
		Asker:    tuple.NodeID(pattern.MetaString(meta, "_asker", "")),
		prevBest: best,
	}
	k.SetID(id)
	return k, nil
}

func init() {
	tuple.DefaultRegistry.MustRegister(KindKeyed, decodeKeyed)
}
