package overlay

import (
	"fmt"
	"testing"

	"tota/internal/tuple"
)

// storedKeys returns key → hosting peer across the overlay.
func storedKeys(peers map[tuple.NodeID]*Peer) map[string]tuple.NodeID {
	out := make(map[string]tuple.NodeID)
	for id, p := range peers {
		for _, kv := range p.Stored() {
			out[kv.Key] = id
		}
	}
	return out
}

// assertAllKeysAtOwners checks that every key lives at exactly its
// owner under the layout.
func assertAllKeysAtOwners(t *testing.T, peers map[tuple.NodeID]*Peer, l *Layout, keys []string) {
	t.Helper()
	located := storedKeys(peers)
	for _, k := range keys {
		at, ok := located[k]
		if !ok {
			t.Errorf("key %q lost", k)
			continue
		}
		if want := l.OwnerOf(k); at != want {
			t.Errorf("key %q at %s, owner is %s", k, at, want)
		}
	}
	if len(located) != len(keys) {
		t.Errorf("stored %d keys, want %d", len(located), len(keys))
	}
}

func seedKeys(t *testing.T, w interface {
	Settle(int) int
}, origin *Peer, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("mk-%d", i)
		keys = append(keys, k)
		if err := origin.Put(k, "v-"+k); err != nil {
			t.Fatal(err)
		}
	}
	w.Settle(100000)
	return keys
}

func TestJoinHandsOffKeys(t *testing.T) {
	w, layout, peers := dhtNet(t, 10, 2)
	keys := seedKeys(t, w, peers[layout.Order[0]], 20)
	assertAllKeysAtOwners(t, peers, layout, keys)

	next, err := Join(w, peers, layout, 2, "newcomer")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, ok := peers["newcomer"]; !ok {
		t.Fatal("newcomer not registered")
	}
	assertAllKeysAtOwners(t, peers, next, keys)

	// The newcomer must actually own (and thus host) some ring interval
	// keys if any hash into it; at minimum, gets must work through it.
	reader := peers[next.Order[0]]
	for _, k := range keys[:5] {
		if err := reader.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	w.Settle(100000)
	results := reader.Results()
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, kv := range results {
		if !kv.Found {
			t.Errorf("key %q not found after join", kv.Key)
		}
	}
}

func TestLeaveHandsOffKeys(t *testing.T) {
	w, layout, peers := dhtNet(t, 10, 2)
	keys := seedKeys(t, w, peers[layout.Order[0]], 20)

	// Remove the peer hosting the most keys — the worst case.
	counts := make(map[tuple.NodeID]int)
	for _, at := range storedKeys(peers) {
		counts[at]++
	}
	var leaver tuple.NodeID
	max := -1
	for _, id := range layout.Order {
		if counts[id] > max {
			leaver = id
			max = counts[id]
		}
	}

	next, err := Leave(w, peers, layout, 2, leaver)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if _, still := peers[leaver]; still {
		t.Error("leaver still registered")
	}
	assertAllKeysAtOwners(t, peers, next, keys)

	reader := peers[next.Order[len(next.Order)/2]]
	for _, k := range keys {
		if err := reader.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	w.Settle(100000)
	found := 0
	for _, kv := range reader.Results() {
		if kv.Found {
			found++
		}
	}
	if found != len(keys) {
		t.Errorf("found %d/%d keys after leave", found, len(keys))
	}
}

func TestJoinLeaveChurnSequence(t *testing.T) {
	w, layout, peers := dhtNet(t, 8, 2)
	keys := seedKeys(t, w, peers[layout.Order[0]], 15)

	var err error
	for i := 0; i < 3; i++ {
		layout, err = Join(w, peers, layout, 2, tuple.NodeID(fmt.Sprintf("j%d", i)))
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		assertAllKeysAtOwners(t, peers, layout, keys)
	}
	for i := 0; i < 3; i++ {
		leaver := layout.Order[i*2%len(layout.Order)]
		layout, err = Leave(w, peers, layout, 2, leaver)
		if err != nil {
			t.Fatalf("leave %d: %v", i, err)
		}
		assertAllKeysAtOwners(t, peers, layout, keys)
	}
}

func TestMembershipValidation(t *testing.T) {
	w, layout, peers := dhtNet(t, 3, 0)
	if _, err := Join(w, peers, layout, 0, layout.Order[0]); err == nil {
		t.Error("duplicate join accepted")
	}
	if _, err := Leave(w, peers, layout, 0, "stranger"); err == nil {
		t.Error("leave of non-member accepted")
	}
	// Shrink to one peer, then refuse to remove the last.
	var err error
	layout, err = Leave(w, peers, layout, 0, layout.Order[0])
	if err != nil {
		t.Fatal(err)
	}
	layout, err = Leave(w, peers, layout, 0, layout.Order[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Leave(w, peers, layout, 0, layout.Order[0]); err == nil {
		t.Error("removed the last peer")
	}
}
