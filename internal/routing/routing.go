// Package routing implements the paper's §5.1 MANET routing on top of
// TOTA, plus the flooding baseline it degrades to.
//
// A node that wants to be reachable advertises a gradient structure
// tuple ("structure", nodename, hopcount). Messages are downhill tuples
// that follow the structure's hop count toward its source; "in all
// situations in which such information is absent, the routing simply
// reduces to flooding the network". The flooding baseline sends every
// message as a plain network-wide flood and lets receivers filter.
package routing

import (
	"strings"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

// StructPrefix prefixes the gradient name advertised by each
// destination node.
const StructPrefix = "route:"

// srcField carries the sender id inside message payloads.
const srcField = "src"

// Message is one delivered payload.
type Message struct {
	// From is the sending node.
	From tuple.NodeID
	// To is the destination the message was addressed to.
	To tuple.NodeID
	// Body is the application payload.
	Body tuple.Content
}

// Router provides gradient routing over a middleware node.
type Router struct {
	node *core.Node
}

// NewRouter wraps a middleware node.
func NewRouter(n *core.Node) *Router {
	return &Router{node: n}
}

// structName returns the gradient name advertising dst.
func structName(dst tuple.NodeID) string {
	return StructPrefix + string(dst)
}

// Advertise injects this node's routing overlay structure, making it a
// reachable destination. It returns the structure's tuple id (for
// Retract on shutdown).
func (r *Router) Advertise() (tuple.ID, error) {
	g := pattern.NewGradient(structName(r.node.Self()),
		tuple.S("node", string(r.node.Self())))
	return r.node.Inject(g)
}

// Send routes a message toward dst, descending dst's structure where
// present and flooding where it is not (the paper's fallback).
func (r *Router) Send(dst tuple.NodeID, body ...tuple.Field) error {
	payload := append(tuple.Content{
		tuple.S(srcField, string(r.node.Self())),
		tuple.S("dst", string(dst)),
	}, body...)
	msg := pattern.NewDownhill(structName(dst), payload...)
	_, err := r.node.Inject(msg)
	return err
}

// Inbox drains and returns the messages delivered to this node.
func (r *Router) Inbox() []Message {
	ts := r.node.Delete(tuple.Match(pattern.KindDownhill))
	return decodeMessages(r.node.Self(), ts)
}

// OnMessage invokes fn for every message as it is delivered. It returns
// the subscription id. The delivered tuples remain in the space until
// Inbox drains them.
func (r *Router) OnMessage(fn func(Message)) core.SubID {
	return r.node.Subscribe(tuple.Match(pattern.KindDownhill), func(ev core.Event) {
		if ev.Type != core.TupleArrived {
			return
		}
		if m, ok := toMessage(r.node.Self(), ev.Tuple); ok {
			fn(m)
		}
	})
}

func decodeMessages(self tuple.NodeID, ts []tuple.Tuple) []Message {
	var out []Message
	for _, t := range ts {
		if m, ok := toMessage(self, t); ok {
			out = append(out, m)
		}
	}
	return out
}

func toMessage(self tuple.NodeID, t tuple.Tuple) (Message, bool) {
	d, ok := t.(*pattern.Downhill)
	if !ok {
		return Message{}, false
	}
	body := make(tuple.Content, 0, len(d.Payload))
	var from, to string
	for _, f := range d.Payload {
		switch f.Name {
		case srcField:
			from, _ = f.Value.(string)
		case "dst":
			to, _ = f.Value.(string)
		default:
			body = append(body, f)
		}
	}
	return Message{From: tuple.NodeID(from), To: tuple.NodeID(to), Body: body}, true
}

// FloodRouter is the baseline: every message floods the whole network
// and every node stores it; only the destination considers it
// delivered. Its per-message cost is what gradient routing saves.
type FloodRouter struct {
	node *core.Node
}

// NewFloodRouter wraps a middleware node.
func NewFloodRouter(n *core.Node) *FloodRouter {
	return &FloodRouter{node: n}
}

// floodMsgName labels baseline messages.
const floodMsgName = "route-flood"

// Send floods a message addressed to dst.
func (r *FloodRouter) Send(dst tuple.NodeID, body ...tuple.Field) error {
	payload := append(tuple.Content{
		tuple.S(srcField, string(r.node.Self())),
		tuple.S("dst", string(dst)),
	}, body...)
	_, err := r.node.Inject(pattern.NewFlood(floodMsgName, payload...))
	return err
}

// Inbox drains and returns the flooded messages addressed to this node.
// Copies addressed elsewhere are left in place (they are other nodes'
// traffic passing through).
func (r *FloodRouter) Inbox() []Message {
	self := string(r.node.Self())
	mine := tuple.Match(pattern.KindFlood,
		tuple.Eq(tuple.S("name", floodMsgName)),
		tuple.Eq(tuple.S("dst", self)))
	ts := r.node.Delete(mine)
	var out []Message
	for _, t := range ts {
		f, ok := t.(*pattern.Flood)
		if !ok {
			continue
		}
		body := make(tuple.Content, 0, len(f.Payload))
		var from string
		for _, fl := range f.Payload {
			switch fl.Name {
			case srcField:
				from, _ = fl.Value.(string)
			case "dst":
				// self, implied
			default:
				body = append(body, fl)
			}
		}
		out = append(out, Message{From: tuple.NodeID(from), To: r.node.Self(), Body: body})
	}
	return out
}

// IsRouteStructure reports whether a tuple is a routing overlay
// structure, and for which destination.
func IsRouteStructure(t tuple.Tuple) (tuple.NodeID, bool) {
	g, ok := t.(*pattern.Gradient)
	if !ok || !strings.HasPrefix(g.Name, StructPrefix) {
		return "", false
	}
	return tuple.NodeID(strings.TrimPrefix(g.Name, StructPrefix)), true
}
