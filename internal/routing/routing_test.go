package routing

import (
	"sync"
	"testing"

	"tota/internal/emulator"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func newWorld(t *testing.T, g *topology.Graph) *emulator.World {
	t.Helper()
	return emulator.New(emulator.Config{Graph: g})
}

func TestGradientRoutingDelivers(t *testing.T) {
	w := newWorld(t, topology.Grid(4, 4, 1))
	dst := topology.NodeName(0)
	src := topology.NodeName(15)
	rDst := NewRouter(w.Node(dst))
	rSrc := NewRouter(w.Node(src))

	if _, err := rDst.Advertise(); err != nil {
		t.Fatalf("Advertise: %v", err)
	}
	w.Settle(10000)

	if err := rSrc.Send(dst, tuple.S("body", "hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	w.Settle(10000)

	got := rDst.Inbox()
	if len(got) != 1 {
		t.Fatalf("Inbox = %v", got)
	}
	m := got[0]
	if m.From != src || m.To != dst || m.Body.GetString("body") != "hello" {
		t.Errorf("message = %+v", m)
	}
	if again := rDst.Inbox(); len(again) != 0 {
		t.Errorf("Inbox did not drain: %v", again)
	}
}

func TestOnMessageSubscription(t *testing.T) {
	w := newWorld(t, topology.Line(4))
	dst := topology.NodeName(0)
	src := topology.NodeName(3)
	rDst := NewRouter(w.Node(dst))
	rSrc := NewRouter(w.Node(src))
	if _, err := rDst.Advertise(); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	var mu sync.Mutex
	var got []Message
	rDst.OnMessage(func(m Message) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, m)
	})
	if err := rSrc.Send(dst, tuple.S("k", "v")); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].From != src {
		t.Errorf("OnMessage got %v", got)
	}
}

func TestRoutingFallsBackToFloodWithoutStructure(t *testing.T) {
	w := newWorld(t, topology.Line(4))
	dst := topology.NodeName(0)
	src := topology.NodeName(3)
	// No Advertise: the downhill message floods; nothing can deliver it
	// (no structure minimum), matching the paper's degraded mode where
	// flooding substitutes for routing knowledge. Traffic must still
	// traverse the network.
	rSrc := NewRouter(w.Node(src))
	if err := rSrc.Send(dst, tuple.S("k", "v")); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	if w.Node(dst).Stats().PacketsIn == 0 {
		t.Error("flooded message never reached the destination's node")
	}
}

func TestRoutingSurvivesLinkFailure(t *testing.T) {
	w := newWorld(t, topology.Ring(8))
	dst := topology.NodeName(0)
	src := topology.NodeName(4)
	rDst := NewRouter(w.Node(dst))
	rSrc := NewRouter(w.Node(src))
	if _, err := rDst.Advertise(); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	w.RemoveEdge(topology.NodeName(2), topology.NodeName(3))
	w.Settle(10000) // structure repairs around the ring

	if err := rSrc.Send(dst, tuple.S("n", "1")); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	if got := rDst.Inbox(); len(got) != 1 {
		t.Fatalf("after repair, Inbox = %v", got)
	}
}

func TestFloodRouterDeliversAndFilters(t *testing.T) {
	w := newWorld(t, topology.Grid(3, 3, 1))
	dst := topology.NodeName(0)
	other := topology.NodeName(8)
	src := topology.NodeName(4)
	fDst := NewFloodRouter(w.Node(dst))
	fOther := NewFloodRouter(w.Node(other))
	fSrc := NewFloodRouter(w.Node(src))

	if err := fSrc.Send(dst, tuple.S("body", "x")); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	if got := fDst.Inbox(); len(got) != 1 || got[0].From != src || got[0].Body.GetString("body") != "x" {
		t.Errorf("dst inbox = %v", got)
	}
	if got := fOther.Inbox(); len(got) != 0 {
		t.Errorf("non-destination drained %v", got)
	}
	// The flood copy is still stored at the non-destination (the cost
	// of the baseline).
	if n := len(w.Node(other).Read(tuple.Match(pattern.KindFlood))); n != 1 {
		t.Errorf("bystander stores %d copies", n)
	}
}

func TestGradientRoutingCheaperThanFloodBaseline(t *testing.T) {
	// Repeated messages between nearby nodes: gradient routing pays the
	// structure once, then each message is confined to the slope
	// region; the baseline floods every message.
	build := func() (*emulator.World, tuple.NodeID, tuple.NodeID) {
		w := newWorld(t, topology.Grid(6, 6, 1))
		return w, topology.NodeName(0), topology.NodeName(14) // 4 hops apart
	}

	wA, dstA, srcA := build()
	rDst := NewRouter(wA.Node(dstA))
	rSrc := NewRouter(wA.Node(srcA))
	if _, err := rDst.Advertise(); err != nil {
		t.Fatal(err)
	}
	wA.Settle(10000)
	wA.Sim().ResetStats()
	const msgs = 10
	for i := 0; i < msgs; i++ {
		if err := rSrc.Send(dstA, tuple.I("i", int64(i))); err != nil {
			t.Fatal(err)
		}
		wA.Settle(10000)
	}
	gradientSent := wA.Sim().Stats().Sent
	if got := len(rDst.Inbox()); got != msgs {
		t.Fatalf("gradient delivered %d/%d", got, msgs)
	}

	wB, dstB, srcB := build()
	fDst := NewFloodRouter(wB.Node(dstB))
	fSrc := NewFloodRouter(wB.Node(srcB))
	wB.Sim().ResetStats()
	for i := 0; i < msgs; i++ {
		if err := fSrc.Send(dstB, tuple.I("i", int64(i))); err != nil {
			t.Fatal(err)
		}
		wB.Settle(10000)
	}
	floodSent := wB.Sim().Stats().Sent
	if got := len(fDst.Inbox()); got != msgs {
		t.Fatalf("flood delivered %d/%d", got, msgs)
	}

	if gradientSent*2 >= floodSent {
		t.Errorf("gradient routing (%d sends) not clearly cheaper than flooding (%d sends)",
			gradientSent, floodSent)
	}
}

func TestIsRouteStructure(t *testing.T) {
	g := pattern.NewGradient(StructPrefix + "n7")
	if dst, ok := IsRouteStructure(g); !ok || dst != "n7" {
		t.Errorf("IsRouteStructure = %v, %v", dst, ok)
	}
	if _, ok := IsRouteStructure(pattern.NewGradient("other")); ok {
		t.Error("non-route gradient accepted")
	}
	if _, ok := IsRouteStructure(pattern.NewFlood(StructPrefix + "x")); ok {
		t.Error("flood accepted as structure")
	}
}
