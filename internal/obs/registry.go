// Package obs is the middleware's telemetry subsystem: a lock-light
// metrics registry (atomic counters, gauges and bounded histograms), a
// Prometheus/JSON exposition layer with an embedded HTTP server, and a
// structured trace pipeline built on core.Tracer (buffered JSONL export
// plus trace-derived propagation- and repair-latency histograms).
//
// Design constraints (see DESIGN.md §7):
//
//   - Zero cost on the packet hot path. Instruments are plain atomics;
//     registration happens once at startup; exposition walks the
//     registry only when scraped. Components that already keep atomic
//     counters (core.Node, transport.Sim, udp.Transport) are exposed
//     through *Func instruments that snapshot at collect time, so the
//     hot path is untouched.
//   - No third-party dependencies: the Prometheus text format is tiny
//     and written by hand.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant metric dimension, attached at registration.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing metric. The zero value is
// usable, but counters are normally created through Registry.Counter so
// they are exposed.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter
// monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: Observe is a couple of atomic
// adds, quantiles are estimated from the bucket counts by linear
// interpolation. Bounds are upper bucket edges; a +Inf bucket is
// implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, cumulative at expose time
	count  atomic.Int64
	sum    Gauge
}

// NewHistogram builds an unregistered histogram with the given sorted
// upper bucket bounds (use Registry.Histogram for an exposed one).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sample total.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// inside the bucket holding the target rank. Samples beyond the last
// finite bound report that bound (the histogram cannot see further).
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo, hi := 0.0, 0.0
		switch {
		case i == len(h.bounds): // +Inf bucket
			if len(h.bounds) == 0 {
				return h.Mean()
			}
			return h.bounds[len(h.bounds)-1]
		case i == 0:
			lo, hi = 0, h.bounds[0]
		default:
			lo, hi = h.bounds[i-1], h.bounds[i]
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponential bucket bounds starting at start and
// growing by factor (Prometheus-style).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// LinearBuckets returns n linear bucket bounds starting at start with
// the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+float64(i)*width)
	}
	return out
}

// RoundBuckets are histogram bounds suitable for latencies measured in
// radio rounds / emulator ticks (1 … 512, roughly geometric).
var RoundBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}

type metricType int

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
	typeCounterFunc
	typeGaugeFunc
)

// metric is one registered instrument plus its exposition metadata.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	typ    metricType

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds registered instruments. Registration takes a mutex;
// instrument updates are lock-free; exposition snapshots under a read
// lock.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register adds m unless an instrument with the same name+labels
// already exists, in which case the existing one is returned.
func (r *Registry) register(m *metric) *metric {
	key := m.name + m.labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[key]; ok {
		return old
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{
		name: name, help: help, labels: renderLabels(labels),
		typ: typeCounter, counter: &Counter{},
	})
	return m.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{
		name: name, help: help, labels: renderLabels(labels),
		typ: typeGauge, gauge: &Gauge{},
	})
	return m.gauge
}

// Histogram registers (or returns the existing) histogram with the
// given upper bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.register(&metric{
		name: name, help: help, labels: renderLabels(labels),
		typ: typeHistogram, hist: NewHistogram(bounds),
	})
	return m.hist
}

// CounterFunc registers a counter whose value is read from fn at
// collect time — the zero-hot-path bridge for components that already
// keep their own atomic counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{
		name: name, help: help, labels: renderLabels(labels),
		typ: typeCounterFunc, fn: fn,
	})
}

// GaugeFunc registers a gauge read from fn at collect time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{
		name: name, help: help, labels: renderLabels(labels),
		typ: typeGaugeFunc, fn: fn,
	})
}
