package obs

import (
	"runtime"

	"tota/internal/core"
	"tota/internal/transport"
	"tota/internal/transport/udp"
)

// RegisterNodeStats exposes a middleware node's counters (a core.Stats
// snapshot source, typically node.Stats) as counter series. Snapshots
// are taken at collect time only — nothing is added to the packet path.
func RegisterNodeStats(r *Registry, source func() core.Stats, labels ...Label) {
	bind := func(name, help string, field func(core.Stats) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(field(source())) }, labels...)
	}
	bind("tota_node_injected_total", "Tuples injected through the local API.", func(s core.Stats) int64 { return s.Injected })
	bind("tota_node_packets_in_total", "Engine packets received from neighbors.", func(s core.Stats) int64 { return s.PacketsIn })
	bind("tota_node_stored_total", "Tuples entering the local space for the first time.", func(s core.Stats) int64 { return s.Stored })
	bind("tota_node_superseded_total", "Stored copies replaced by better ones.", func(s core.Stats) int64 { return s.Superseded })
	bind("tota_node_dup_dropped_total", "Duplicate/ignored tuple arrivals (dedup).", func(s core.Stats) int64 { return s.DupDropped })
	bind("tota_node_ttl_dropped_total", "Copies discarded for exceeding MaxHops.", func(s core.Stats) int64 { return s.TTLDropped })
	bind("tota_node_retracted_total", "Structures torn down through this node.", func(s core.Stats) int64 { return s.Retracted })
	bind("tota_node_repairs_total", "Maintenance value adoptions (structure repairs).", func(s core.Stats) int64 { return s.MaintAdopt })
	bind("tota_node_withdrawals_total", "Maintenance withdrawals of unsupported copies.", func(s core.Stats) int64 { return s.MaintDrop })
	bind("tota_node_broadcasts_total", "Engine-initiated broadcasts.", func(s core.Stats) int64 { return s.Broadcasts })
	bind("tota_node_unicasts_total", "Engine-initiated unicasts (newcomer catch-up).", func(s core.Stats) int64 { return s.Unicasts })
	bind("tota_node_send_errors_total", "Transport send failures.", func(s core.Stats) int64 { return s.SendErrors })
	bind("tota_node_decode_errors_total", "Undecodable packets.", func(s core.Stats) int64 { return s.DecodeErrors })
	bind("tota_node_events_total", "Events dispatched to reactions.", func(s core.Stats) int64 { return s.Events })
	bind("tota_node_denied_total", "Operations rejected by the access policy.", func(s core.Stats) int64 { return s.Denied })
	bind("tota_node_expired_total", "Stored copies removed by lease expiry.", func(s core.Stats) int64 { return s.Expired })
	bind("tota_frames_out_total", "Multi-message batch frames sent.", func(s core.Stats) int64 { return s.FramesOut })
	bind("tota_frames_in_total", "Batch frames received.", func(s core.Stats) int64 { return s.FramesIn })
	bind("tota_digests_out_total", "Anti-entropy digest messages sent by refresh.", func(s core.Stats) int64 { return s.DigestsOut })
	bind("tota_digests_in_total", "Digest messages received.", func(s core.Stats) int64 { return s.DigestsIn })
	bind("tota_pulls_out_total", "Anti-entropy pull requests sent.", func(s core.Stats) int64 { return s.PullsOut })
	bind("tota_pulls_in_total", "Pull requests received.", func(s core.Stats) int64 { return s.PullsIn })
	bind("tota_refresh_announced_total", "Tuples re-sent in full by refresh (announcement changed).", func(s core.Stats) int64 { return s.RefreshAnnounced })
	bind("tota_refresh_suppressed_total", "Tuples refresh advertised by digest instead of full bytes.", func(s core.Stats) int64 { return s.RefreshSuppressed })
	bind("tota_suspected_total", "Maintained copies that entered the suspicion grace window.", func(s core.Stats) int64 { return s.Suspected })
	bind("tota_suspect_recovered_total", "Suspicions cancelled by returning support.", func(s core.Stats) int64 { return s.SuspectRecovered })
	bind("tota_pulls_suppressed_total", "Anti-entropy pulls skipped by backoff.", func(s core.Stats) int64 { return s.PullsSuppressed })
	bind("tota_quarantine_events_total", "Sources quarantined for repeated undecodable frames.", func(s core.Stats) int64 { return s.QuarantineEvents })
	bind("tota_quarantine_dropped_total", "Packets dropped unread from quarantined sources.", func(s core.Stats) int64 { return s.QuarantineDropped })
	bind("tota_query_epochs_total", "Convergecast epochs started by locally sourced queries.", func(s core.Stats) int64 { return s.QueryEpochs })
	bind("tota_queries_in_total", "Query epoch-wave messages received.", func(s core.Stats) int64 { return s.QueriesIn })
	bind("tota_partials_out_total", "Partial aggregates sent up parent links.", func(s core.Stats) int64 { return s.PartialsOut })
	bind("tota_partials_in_total", "Partial aggregates received from children.", func(s core.Stats) int64 { return s.PartialsIn })
	bind("tota_partials_combined_total", "Child partials folded into local aggregates.", func(s core.Stats) int64 { return s.PartialsCombined })
	bind("tota_agg_results_total", "Convergecast results computed at query sources.", func(s core.Stats) int64 { return s.AggResults })
}

// RegisterStoreSize exposes the local tuple-space size.
func RegisterStoreSize(r *Registry, size func() int, labels ...Label) {
	r.GaugeFunc("tota_node_store_size", "Tuples currently in the local space.",
		func() float64 { return float64(size()) }, labels...)
}

// RegisterSimStats exposes a simulated radio's traffic counters and
// in-flight queue gauge.
func RegisterSimStats(r *Registry, s *transport.Sim, labels ...Label) {
	bind := func(name, help string, field func(transport.Stats) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(field(s.Stats())) }, labels...)
	}
	bind("tota_radio_sent_total", "Point-to-point transmissions (a broadcast to k neighbors counts k).", func(st transport.Stats) int64 { return st.Sent })
	bind("tota_radio_broadcasts_total", "Broadcast operations.", func(st transport.Stats) int64 { return st.Broadcasts })
	bind("tota_radio_delivered_total", "Packets handed to handlers.", func(st transport.Stats) int64 { return st.Delivered })
	bind("tota_radio_dropped_total", "Packets lost in flight.", func(st transport.Stats) int64 { return st.Dropped })
	bind("tota_radio_corrupted_total", "Packets delivered with injected byte flips (fault injection).", func(st transport.Stats) int64 { return st.Corrupted })
	bind("tota_radio_blocked_total", "Packets discarded at a partition cut (fault injection).", func(st transport.Stats) int64 { return st.Blocked })
	bind("tota_radio_shed_total", "Packets shed by the bounded inbound queue.", func(st transport.Stats) int64 { return st.Shed })
	r.GaugeFunc("tota_radio_inflight", "Packets currently in flight.",
		func() float64 { return float64(s.Pending()) }, labels...)
}

// RegisterUDPStats exposes a UDP transport's socket counters.
func RegisterUDPStats(r *Registry, t *udp.Transport, labels ...Label) {
	bind := func(name, help string, field func(udp.Stats) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(field(t.Stats())) }, labels...)
	}
	bind("tota_udp_datagrams_sent_total", "Datagrams written to the socket.", func(s udp.Stats) int64 { return s.Sent })
	bind("tota_udp_send_errors_total", "Socket write failures.", func(s udp.Stats) int64 { return s.SendErrors })
	bind("tota_udp_datagrams_received_total", "Datagrams read from the socket.", func(s udp.Stats) int64 { return s.Received })
	bind("tota_udp_bad_frames_total", "Undecodable frames received.", func(s udp.Stats) int64 { return s.BadFrames })
	bind("tota_udp_hellos_total", "Discovery beacons received.", func(s udp.Stats) int64 { return s.Hellos })
	bind("tota_udp_shed_total", "Inbound packets shed by the bounded staging queue.", func(s udp.Stats) int64 { return s.Shed })
	r.GaugeFunc("tota_udp_neighbors", "Neighbors currently up.",
		func() float64 { return float64(len(t.Neighbors())) }, labels...)
}

// RegisterRuntime exposes Go runtime health gauges (scrape-time
// ReadMemStats; do not scrape at sub-second intervals on hot nodes).
func RegisterRuntime(r *Registry) {
	r.GaugeFunc("tota_go_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("tota_go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("tota_go_gc_runs_total", "Completed GC cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}
