package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	// Re-registration with the same name+labels returns the same
	// instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Error("re-registered counter is a different instrument")
	}
}

func TestCountersAreRaceFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", RoundBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 100))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("sum = %v, want 5050", got)
	}
	for _, tc := range []struct{ p, want, tol float64 }{
		{0.50, 50, 1.5},
		{0.90, 90, 1.5},
		{0.99, 99, 1.5},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%v = %v, want ~%v", tc.p, got, tc.want)
		}
	}
	// Samples beyond the last bound clamp to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want 2 (last bound)", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("tota_x_total", "Things.", L("node", "a")).Add(3)
	r.Counter("tota_x_total", "Things.", L("node", "b")).Add(4)
	r.Gauge("tota_depth", "Queue depth.").Set(7)
	r.GaugeFunc("tota_live", "Live value.", func() float64 { return 42 })
	h := r.Histogram("tota_lat", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tota_x_total counter",
		`tota_x_total{node="a"} 3`,
		`tota_x_total{node="b"} 4`,
		"# TYPE tota_depth gauge",
		"tota_depth 7",
		"tota_live 42",
		"# TYPE tota_lat histogram",
		`tota_lat_bucket{le="1"} 1`,
		`tota_lat_bucket{le="2"} 2`,
		`tota_lat_bucket{le="+Inf"} 3`,
		"tota_lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Family header appears exactly once even with two labeled series.
	if strings.Count(out, "# TYPE tota_x_total") != 1 {
		t.Errorf("duplicated family header:\n%s", out)
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	h := r.Histogram("h", "", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	if snaps[0].Value != 2 || snaps[0].Type != "counter" {
		t.Errorf("counter snapshot = %+v", snaps[0])
	}
	if snaps[1].Count != 2 || snaps[1].Quantiles["p50"] == 0 {
		t.Errorf("histogram snapshot = %+v", snaps[1])
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"name": "c_total"`) {
		t.Errorf("JSON missing counter:\n%s", b.String())
	}
}
