package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability endpoint mux:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (histograms include quantiles)
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard net/http/pprof handlers
//	/debug/flight  flight-recorder dump (with recorders attached)
//
// Flight recorders, when passed, are served at /debug/flight as
// concatenated JSONL, oldest events first per recorder — the same
// schema the JSONL sink writes, so tota-trace ingests scrapes directly.
func Handler(r *Registry, flights ...*FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if len(flights) > 0 {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			for _, f := range flights {
				if f == nil {
					continue
				}
				_ = f.WriteJSONL(w)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// observability mux in a background goroutine (flight recorders, when
// passed, are exposed at /debug/flight). Close to stop.
func Serve(addr string, r *Registry, flights ...*FlightRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(r, flights...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
