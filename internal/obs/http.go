package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Readiness is the snapshot behind /readyz: enough externally-visible
// state for a supervisor (the testnet harness, an orchestrator probe)
// to distinguish "process up" (/healthz) from "node participating".
type Readiness struct {
	// StoreSize is the number of tuples currently in the local space.
	StoreSize int `json:"store_size"`
	// Peers is the number of neighbors currently up.
	Peers int `json:"peers"`
	// Announced and Suppressed are the cumulative refresh counters
	// (tuples re-sent in full vs. advertised by digest).
	Announced  int64 `json:"announced"`
	Suppressed int64 `json:"suppressed"`
}

// readyzPayload is the /readyz response body: the Readiness snapshot
// plus per-scrape deltas of the refresh counters, so pollers see the
// last-epoch announce/suppress activity without keeping state.
type readyzPayload struct {
	Ready bool `json:"ready"`
	Readiness
	AnnouncedDelta  int64 `json:"announced_delta"`
	SuppressedDelta int64 `json:"suppressed_delta"`
}

// Extras are the optional endpoints Handler can serve beyond the
// metrics surface.
type Extras struct {
	// Flights, when non-empty, are served at /debug/flight as
	// concatenated JSONL, oldest events first per recorder — the same
	// schema the JSONL sink writes, so tota-trace ingests scrapes.
	Flights []*FlightRecorder
	// Ready, when set, serves /readyz: HTTP 200 with a JSON body when
	// the node has at least one peer up, 503 (same body) otherwise.
	// Distinct from the liveness-only /healthz: a freshly restarted
	// node is healthy immediately but not ready until discovery
	// completes, and not converged until its store matches the fleet.
	Ready func() Readiness
	// Store, when set, serves /store.json: an NDJSON dump of the local
	// tuple space (one tuple.MarshalTupleJSON document per line), the
	// external-verification surface a harness compares against its
	// oracle without any in-process inspection.
	Store func(io.Writer) error
}

// Handler returns the observability endpoint mux:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (histograms include quantiles)
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard net/http/pprof handlers
//	/debug/flight  flight-recorder dump (with recorders attached)
//
// Flight recorders, when passed, are served at /debug/flight (see
// Extras.Flights). For the readiness and store-dump endpoints use
// HandlerExtras.
func Handler(r *Registry, flights ...*FlightRecorder) http.Handler {
	return HandlerExtras(r, Extras{Flights: flights})
}

// HandlerExtras is Handler plus the optional /readyz and /store.json
// endpoints (see Extras).
func HandlerExtras(r *Registry, x Extras) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if x.Ready != nil {
		// The delta tracker makes consecutive scrapes report per-epoch
		// refresh activity; it is per-handler state, so two pollers
		// sharing one endpoint see interleaved (still non-negative)
		// deltas.
		var mu sync.Mutex
		var lastAnn, lastSup int64
		ready := x.Ready
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			snap := ready()
			mu.Lock()
			body := readyzPayload{
				Ready:           snap.Peers > 0,
				Readiness:       snap,
				AnnouncedDelta:  snap.Announced - lastAnn,
				SuppressedDelta: snap.Suppressed - lastSup,
			}
			lastAnn, lastSup = snap.Announced, snap.Suppressed
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if !body.Ready {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(body)
		})
	}
	if x.Store != nil {
		store := x.Store
		mux.HandleFunc("/store.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = store(w)
		})
	}
	if len(x.Flights) > 0 {
		flights := x.Flights
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			for _, f := range flights {
				if f == nil {
					continue
				}
				_ = f.WriteJSONL(w)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// observability mux in a background goroutine (flight recorders, when
// passed, are exposed at /debug/flight). Close to stop.
func Serve(addr string, r *Registry, flights ...*FlightRecorder) (*Server, error) {
	return ServeExtras(addr, r, Extras{Flights: flights})
}

// ServeExtras is Serve plus the optional /readyz and /store.json
// endpoints (see Extras).
func ServeExtras(addr string, r *Registry, x Extras) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           HandlerExtras(r, x),
		ReadHeaderTimeout: 5 * time.Second,
		// WriteTimeout must clear the longest legitimate response:
		// /debug/pprof/profile streams for 30s by default, so give it
		// headroom rather than truncating profiles mid-stream. A stalled
		// scraper still cannot pin a connection past these bounds.
		WriteTimeout: 90 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
