package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// MemSnapshot is one point-in-time view of process memory, combining
// the Go runtime's heap accounting with the kernel's resident-set
// figures. It backs the tota_mem_* gauge family and the emulator's
// bytes-per-node reporting, so every layer quotes the same numbers.
type MemSnapshot struct {
	// HeapAlloc is the Go runtime's live-heap estimate in bytes
	// (runtime.MemStats.HeapAlloc).
	HeapAlloc uint64
	// HeapSys is the heap memory obtained from the OS, in bytes.
	HeapSys uint64
	// Sys is the total memory reserved from the OS by the runtime.
	Sys uint64
	// GCCycles counts completed garbage-collection cycles.
	GCCycles uint32
	// RSS and PeakRSS are the kernel's current and high-water resident
	// set sizes in bytes (VmRSS / VmHWM from /proc/self/status), zero
	// where /proc is unavailable.
	RSS, PeakRSS uint64
}

// ReadMem snapshots the full memory view. It calls
// runtime.ReadMemStats, which briefly stops the world — fine at
// observation points, too heavy for per-packet paths.
func ReadMem() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := MemSnapshot{
		HeapAlloc: ms.HeapAlloc,
		HeapSys:   ms.HeapSys,
		Sys:       ms.Sys,
		GCCycles:  ms.NumGC,
	}
	snap.RSS, snap.PeakRSS = ReadProcRSS()
	return snap
}

// ReadProcRSS reads the kernel's current and peak resident-set sizes in
// bytes from /proc/self/status (VmRSS / VmHWM). It is a single small
// file read — cheap enough for per-tick rollups — and returns zeros on
// platforms without /proc.
func ReadProcRSS() (rss, peak uint64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			rss = parseStatusKB(rest)
		} else if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			peak = parseStatusKB(rest)
		}
	}
	return rss, peak
}

// parseStatusKB parses the "  1234 kB" tail of a /proc/self/status
// line into bytes.
func parseStatusKB(rest string) uint64 {
	f := strings.Fields(rest)
	if len(f) < 1 {
		return 0
	}
	kb, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return 0
	}
	return kb * 1024
}

// RegisterMemMetrics exposes the tota_mem_* gauge family on a registry:
// the Go heap figures plus the kernel RSS. Values are read at collect
// time only, so registration costs nothing between scrapes.
func RegisterMemMetrics(reg *Registry) {
	reg.GaugeFunc("tota_mem_heap_alloc_bytes", "Live Go heap bytes (runtime HeapAlloc).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.GaugeFunc("tota_mem_heap_sys_bytes", "Heap bytes obtained from the OS (runtime HeapSys).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapSys)
	})
	reg.GaugeFunc("tota_mem_sys_bytes", "Total bytes reserved from the OS by the Go runtime.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.Sys)
	})
	reg.CounterFunc("tota_mem_gc_cycles_total", "Completed garbage-collection cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
	reg.GaugeFunc("tota_mem_rss_bytes", "Kernel resident set size (VmRSS), 0 without /proc.", func() float64 {
		rss, _ := ReadProcRSS()
		return float64(rss)
	})
	reg.GaugeFunc("tota_mem_peak_rss_bytes", "Kernel peak resident set size (VmHWM), 0 without /proc.", func() float64 {
		_, peak := ReadProcRSS()
		return float64(peak)
	})
}
