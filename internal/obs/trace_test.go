package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"tota/internal/core"
	"tota/internal/tuple"
)

func ev(kind core.TraceKind, node, idNode string, seq uint64) core.TraceEvent {
	return core.TraceEvent{
		Kind: kind,
		Node: tuple.NodeID(node),
		ID:   tuple.ID{Node: tuple.NodeID(idNode), Seq: seq},
	}
}

func TestJSONLSinkWritesRecords(t *testing.T) {
	var b strings.Builder
	clockVal := 0.0
	s := NewJSONLSink(&b, nil, func() float64 { return clockVal }, 16)
	tr := s.Tracer()

	clockVal = 1
	tr(ev(core.TraceInject, "a", "a", 1))
	clockVal = 3
	tr(core.TraceEvent{
		Kind: core.TraceStore, Node: "b", ID: tuple.ID{Node: "a", Seq: 1},
		TupleKind: "gradient", From: "a", Hop: 2, Value: 2,
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Written() != 2 || s.Dropped() != 0 {
		t.Fatalf("written=%d dropped=%d", s.Written(), s.Dropped())
	}

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var recs []TraceRecord
	for sc.Scan() {
		var r TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Kind != "inject" || recs[0].T != 1 || recs[0].Node != "a" {
		t.Errorf("inject record = %+v", recs[0])
	}
	if recs[1].Kind != "store" || recs[1].From != "a" || recs[1].Hop != 2 || recs[1].Val != 2 || recs[1].Tuple != "gradient" {
		t.Errorf("store record = %+v", recs[1])
	}
}

// blockingWriter stalls until released, forcing the sink's buffer to
// fill so the drop-counting backpressure is observable.
type blockingWriter struct {
	release chan struct{}
	sink    strings.Builder
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return w.sink.Write(p)
}

func TestJSONLSinkShedsWhenFull(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	s := NewJSONLSink(w, nil, nil, 2)
	tr := s.Tracer()
	// The writer goroutine takes one event off the channel and blocks
	// writing it; at most depth more sit in the buffer. Everything
	// beyond that must be shed, not block the engine.
	for i := 0; i < 50; i++ {
		tr(ev(core.TraceDup, "a", "a", uint64(i+1)))
	}
	if s.Dropped() == 0 {
		t.Error("expected drops with a stalled writer")
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Written()+s.Dropped() != 50 {
		t.Errorf("written %d + dropped %d != 50", s.Written(), s.Dropped())
	}
}

func TestLatenciesPropagationAndRepair(t *testing.T) {
	reg := NewRegistry()
	now := 0.0
	l := NewLatencies(reg, func() float64 { return now }, RoundBuckets)
	tr := l.Tracer()

	// Propagation: inject at tick 0, stores at ticks 2 and 5.
	tr(ev(core.TraceInject, "a", "a", 1))
	now = 2
	tr(ev(core.TraceStore, "b", "a", 1))
	now = 5
	tr(ev(core.TraceStore, "c", "a", 1))
	// A store at the injecting node itself is not propagation.
	tr(ev(core.TraceStore, "a", "a", 1))
	if got := l.Propagation.Count(); got != 2 {
		t.Errorf("propagation samples = %d, want 2", got)
	}
	if mean := l.Propagation.Mean(); mean != 3.5 {
		t.Errorf("propagation mean = %v, want 3.5", mean)
	}

	// Per-id repair: withdraw at 10, re-store at 13.
	now = 10
	tr(ev(core.TraceWithdraw, "b", "a", 1))
	now = 13
	tr(ev(core.TraceStore, "b", "a", 1))
	if got := l.Repair.Count(); got != 1 {
		t.Fatalf("repair samples = %d, want 1", got)
	}
	if got := l.Repair.Sum(); got != 3 {
		t.Errorf("repair latency = %v, want 3", got)
	}

	// Churn repair: mark at 20, first adoption at 26 samples; the
	// second adoption does not (the mark is consumed).
	now = 20
	l.MarkChurn()
	now = 26
	tr(ev(core.TraceAdopt, "c", "a", 1))
	tr(ev(core.TraceAdopt, "d", "a", 1))
	if got := l.Repair.Count(); got != 2 {
		t.Fatalf("repair samples after churn = %d, want 2", got)
	}
	if got := l.Repair.Sum(); got != 9 {
		t.Errorf("repair latency sum = %v, want 9", got)
	}

	// The registry exposes both histograms.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tota_propagation_latency_count 2", "tota_repair_latency_count 2"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestLatenciesOutOfOrderStore: a store observed before its inject
// (trace streams from different nodes merge in arbitrary order) must
// not sample propagation; once the inject lands, later stores do.
func TestLatenciesOutOfOrderStore(t *testing.T) {
	now := 0.0
	l := NewLatencies(nil, func() float64 { return now }, RoundBuckets)
	tr := l.Tracer()

	tr(ev(core.TraceStore, "b", "a", 1))
	if got := l.Propagation.Count(); got != 0 {
		t.Fatalf("propagation samples before inject = %d, want 0", got)
	}
	now = 1
	tr(ev(core.TraceInject, "a", "a", 1))
	now = 4
	tr(ev(core.TraceStore, "c", "a", 1))
	if got := l.Propagation.Count(); got != 1 {
		t.Fatalf("propagation samples = %d, want 1", got)
	}
	if got := l.Propagation.Sum(); got != 3 {
		t.Errorf("propagation latency = %v, want 3", got)
	}
}

// TestLatenciesDuplicateStores pins the per-event sampling contract:
// every store of a tracked tuple at a non-source node samples, so a
// node re-storing (lease renewal, supersede re-store) contributes one
// sample per store event rather than deduplicating per (tuple, node).
func TestLatenciesDuplicateStores(t *testing.T) {
	now := 0.0
	l := NewLatencies(nil, func() float64 { return now }, RoundBuckets)
	tr := l.Tracer()

	tr(ev(core.TraceInject, "a", "a", 1))
	now = 2
	tr(ev(core.TraceStore, "b", "a", 1))
	now = 6
	tr(ev(core.TraceStore, "b", "a", 1))
	if got := l.Propagation.Count(); got != 2 {
		t.Fatalf("propagation samples = %d, want 2 (one per store event)", got)
	}
	if got := l.Propagation.Sum(); got != 8 {
		t.Errorf("propagation latency sum = %v, want 2+6", got)
	}
}

// TestLatenciesChurnReAdopt: re-marking churn re-arms repair sampling
// (each mark is consumed by exactly one adoption), the latest mark
// wins, and a per-id disturbance takes priority over — and consumes —
// a pending churn mark without double-sampling.
func TestLatenciesChurnReAdopt(t *testing.T) {
	now := 0.0
	l := NewLatencies(nil, func() float64 { return now }, RoundBuckets)
	tr := l.Tracer()

	// Mark, re-mark: the adoption samples against the latest mark.
	l.MarkChurn()
	now = 5
	l.MarkChurn()
	now = 8
	tr(ev(core.TraceAdopt, "b", "a", 1))
	if got, want := l.Repair.Count(), int64(1); got != want {
		t.Fatalf("repair samples = %d, want %d", got, want)
	}
	if got := l.Repair.Sum(); got != 3 {
		t.Errorf("repair latency = %v, want 3 (latest mark wins)", got)
	}
	// The mark is consumed: a second adoption does not sample.
	now = 9
	tr(ev(core.TraceAdopt, "c", "a", 1))
	if got := l.Repair.Count(); got != 1 {
		t.Fatalf("consumed churn mark re-sampled: count = %d", got)
	}
	// Re-adopt after a fresh mark samples again.
	now = 10
	l.MarkChurn()
	now = 12
	tr(ev(core.TraceAdopt, "b", "a", 1))
	if got := l.Repair.Count(); got != 2 {
		t.Fatalf("repair samples after re-mark = %d, want 2", got)
	}

	// A per-id withdrawal outranks a pending churn mark: the adoption
	// samples the withdrawal once and consumes the mark alongside it.
	now = 20
	tr(ev(core.TraceWithdraw, "b", "a", 1))
	now = 21
	l.MarkChurn()
	now = 24
	tr(ev(core.TraceAdopt, "b", "a", 1))
	if got := l.Repair.Count(); got != 3 {
		t.Fatalf("repair samples = %d, want 3 (no double sample)", got)
	}
	if got := l.Repair.Sum(); got != 3+2+4 {
		t.Errorf("repair latency sum = %v, want 9", got)
	}
	now = 25
	tr(ev(core.TraceAdopt, "c", "a", 1))
	if got := l.Repair.Count(); got != 3 {
		t.Errorf("consumed state re-sampled: count = %d", got)
	}
}

// TestLatenciesRetractClearsTracking: teardown and expiry drop the
// tuple's tracking state, so later stores of a revived id do not
// sample against the stale inject time.
func TestLatenciesRetractClearsTracking(t *testing.T) {
	now := 0.0
	l := NewLatencies(nil, func() float64 { return now }, RoundBuckets)
	tr := l.Tracer()

	tr(ev(core.TraceInject, "a", "a", 1))
	now = 3
	tr(ev(core.TraceRetract, "a", "a", 1))
	now = 50
	tr(ev(core.TraceStore, "b", "a", 1))
	if got := l.Propagation.Count(); got != 0 {
		t.Errorf("store after retract sampled: count = %d", got)
	}
}
