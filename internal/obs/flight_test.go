package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tota/internal/core"
	"tota/internal/tuple"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	now := 0.0
	f := NewFlightRecorder(func() float64 { return now }, 4)
	tr := f.Tracer()
	for i := 1; i <= 10; i++ {
		now = float64(i)
		tr(ev(core.TraceStore, "n", "src", uint64(i)))
	}
	if got := f.Len(); got != 4 {
		t.Errorf("Len = %d, want 4 (ring capacity)", got)
	}
	if got := f.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	recs := f.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	// Oldest surviving event first: 7, 8, 9, 10.
	for i, rec := range recs {
		wantT := float64(7 + i)
		wantID := fmt.Sprintf("src#%d", 7+i)
		if rec.T != wantT || rec.ID != wantID {
			t.Errorf("record %d = {T:%v ID:%s}, want {T:%v ID:%s}", i, rec.T, rec.ID, wantT, wantID)
		}
	}
}

func TestFlightRecorderBelowCapacity(t *testing.T) {
	f := NewFlightRecorder(nil, 8)
	tr := f.Tracer()
	tr(ev(core.TraceInject, "n", "src", 1))
	tr(ev(core.TraceStore, "m", "src", 1))
	recs := f.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Kind != "inject" || recs[1].Kind != "store" {
		t.Errorf("order = [%s %s], want [inject store]", recs[0].Kind, recs[1].Kind)
	}
}

// TestFlightRecorderSpanFields: span identity flows through the shared
// record conversion as hex strings, omitted when unsampled.
func TestFlightRecorderSpanFields(t *testing.T) {
	f := NewFlightRecorder(nil, 8)
	tr := f.Tracer()
	tr(core.TraceEvent{
		Kind: core.TraceStore, Node: "b", ID: tuple.ID{Node: "a", Seq: 1},
		TraceID: 0xabc, Span: 0x123, ParentSpan: 0x456,
	})
	tr(ev(core.TraceDup, "b", "a", 1))
	recs := f.Records()
	if recs[0].Trace != "abc" || recs[0].Span != "123" || recs[0].PSpan != "456" {
		t.Errorf("sampled record = %+v, want trace=abc span=123 pspan=456", recs[0])
	}
	if recs[1].Trace != "" || recs[1].Span != "" || recs[1].PSpan != "" {
		t.Errorf("unsampled record carries span fields: %+v", recs[1])
	}
	var b strings.Builder
	if err := f.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"span":"123"`) {
		t.Errorf("sampled line missing span: %s", lines[0])
	}
	if strings.Contains(lines[1], "span") {
		t.Errorf("unsampled line must omit span fields: %s", lines[1])
	}
}

// TestFlightEndpoint serves two recorders at /debug/flight and checks
// the concatenated JSONL parses back into trace records.
func TestFlightEndpoint(t *testing.T) {
	r := NewRegistry()
	f1 := NewFlightRecorder(nil, 8)
	f2 := NewFlightRecorder(nil, 8)
	f1.Tracer()(ev(core.TraceInject, "a", "a", 1))
	f2.Tracer()(ev(core.TraceStore, "b", "a", 1))

	srv, err := Serve("127.0.0.1:0", r, f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var recs []TraceRecord
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (one per recorder)", len(recs))
	}
	if recs[0].Node != "a" || recs[1].Node != "b" {
		t.Errorf("nodes = [%s %s], want [a b]", recs[0].Node, recs[1].Node)
	}

	// Without recorders the endpoint is absent.
	bare, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp2, err := http.Get("http://" + bare.Addr() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("bare /debug/flight status = %d, want 404", resp2.StatusCode)
	}
}

// TestFlightRecorderDumpOnCrash: the deferred hook dumps the ring and
// re-panics; a clean return dumps nothing.
func TestFlightRecorderDumpOnCrash(t *testing.T) {
	f := NewFlightRecorder(nil, 8)
	f.Tracer()(ev(core.TraceWithdraw, "n", "src", 3))
	var out strings.Builder

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("DumpOnCrash swallowed the panic")
			}
		}()
		defer f.DumpOnCrash(&out)()
		panic("boom")
	}()
	if !strings.Contains(out.String(), "boom") || !strings.Contains(out.String(), `"withdraw"`) {
		t.Errorf("crash dump = %q, want panic value and ring contents", out.String())
	}

	out.Reset()
	func() {
		defer f.DumpOnCrash(&out)()
	}()
	if out.Len() != 0 {
		t.Errorf("clean return dumped: %q", out.String())
	}
}
