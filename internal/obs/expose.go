package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()

	// Group by family: the text format requires all samples of one
	// metric name to be contiguous under a single header.
	var names []string
	byName := make(map[string][]*metric, len(ms))
	for _, m := range ms {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	var b strings.Builder
	for _, name := range names {
		family := byName[name]
		if family[0].help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, family[0].help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, promType(family[0].typ))
		for _, m := range family {
			switch m.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.counter.Value())
			case typeGauge:
				writeSample(&b, m.name, m.labels, m.gauge.Value())
			case typeCounterFunc, typeGaugeFunc:
				writeSample(&b, m.name, m.labels, m.fn())
			case typeHistogram:
				writeHistogram(&b, m)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promType(t metricType) string {
	switch t {
	case typeCounter, typeCounterFunc:
		return "counter"
	case typeHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writeSample renders one series line, formatting NaN/Inf the way the
// Prometheus text format expects.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(b *strings.Builder, m *metric) {
	h := m.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", m.name, withLE(m.labels, formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", m.name, withLE(m.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", m.name, m.labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", m.name, m.labels, h.Count())
}

// withLE merges the le label into a pre-rendered label string.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Snapshot is the JSON form of one instrument.
type Snapshot struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value,omitempty"`
	// Histogram-only summary.
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Mean      float64            `json:"mean,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshots returns the JSON-friendly state of every instrument, in
// registration order.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.RLock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()
	out := make([]Snapshot, 0, len(ms))
	for _, m := range ms {
		s := Snapshot{Name: m.name, Type: promType(m.typ), Labels: m.labels}
		switch m.typ {
		case typeCounter:
			s.Value = float64(m.counter.Value())
		case typeGauge:
			s.Value = m.gauge.Value()
		case typeCounterFunc, typeGaugeFunc:
			s.Value = m.fn()
		case typeHistogram:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			s.Mean = m.hist.Mean()
			s.Quantiles = map[string]float64{
				"p50": m.hist.Quantile(0.50),
				"p90": m.hist.Quantile(0.90),
				"p95": m.hist.Quantile(0.95),
				"p99": m.hist.Quantile(0.99),
			}
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON renders the registry as a JSON array of snapshots.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshots())
}
