package obs

import (
	"strings"
	"testing"
)

func TestReadMem(t *testing.T) {
	// Force some live heap so the runtime figures are non-trivial.
	ballast := make([]byte, 1<<20)
	snap := ReadMem()
	if snap.HeapAlloc == 0 || snap.Sys == 0 {
		t.Errorf("runtime figures missing: %+v", snap)
	}
	if snap.HeapSys < snap.HeapAlloc {
		t.Errorf("HeapSys %d < HeapAlloc %d", snap.HeapSys, snap.HeapAlloc)
	}
	// On Linux /proc is present and the RSS figures must be sane; on
	// other platforms they are zero by contract.
	if snap.RSS > 0 && snap.PeakRSS < snap.RSS {
		t.Errorf("PeakRSS %d < RSS %d", snap.PeakRSS, snap.RSS)
	}
	_ = ballast[0]
}

func TestParseStatusKB(t *testing.T) {
	tests := []struct {
		give string
		want uint64
	}{
		{"     1234 kB", 1234 * 1024},
		{" 0 kB", 0},
		{"", 0},
		{" nonsense", 0},
	}
	for _, tt := range tests {
		if got := parseStatusKB(tt.give); got != tt.want {
			t.Errorf("parseStatusKB(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestRegisterMemMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterMemMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"tota_mem_heap_alloc_bytes",
		"tota_mem_heap_sys_bytes",
		"tota_mem_sys_bytes",
		"tota_mem_gc_cycles_total",
		"tota_mem_rss_bytes",
		"tota_mem_peak_rss_bytes",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}
	// The heap gauge must expose a live (non-zero) value.
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "tota_mem_heap_alloc_bytes "); ok {
			if rest == "0" {
				t.Error("tota_mem_heap_alloc_bytes = 0")
			}
		}
	}
}
