package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"

	"tota/internal/core"
	"tota/internal/tuple"
)

// MultiTracer fans one engine trace stream out to several consumers
// (e.g. a JSONL sink plus a latency tracker). Nil entries are skipped.
func MultiTracer(ts ...core.Tracer) core.Tracer {
	kept := ts[:0]
	for _, t := range ts {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return func(ev core.TraceEvent) {
		for _, t := range kept {
			t(ev)
		}
	}
}

// TraceRecord is the JSONL trace schema (one object per line; see
// DESIGN.md §7 for the field contract).
type TraceRecord struct {
	// T is the sink clock reading when the event was enqueued
	// (emulator ticks or Unix seconds, per deployment).
	T float64 `json:"t"`
	// Kind is the engine decision (inject, store, supersede, forward,
	// dup, ttl, adopt, withdraw, retract, expire, deny).
	Kind string `json:"kind"`
	// Node is where the decision happened.
	Node string `json:"node"`
	// ID is the tuple id (NODE#SEQ).
	ID string `json:"id"`
	// Tuple is the tuple kind, when known.
	Tuple string `json:"tuple,omitempty"`
	// From is the previous hop for arrival decisions.
	From string `json:"from,omitempty"`
	// Hop is the copy's hop count, when meaningful.
	Hop int `json:"hop,omitempty"`
	// Val is the maintained structure value, when meaningful.
	Val float64 `json:"val,omitempty"`
	// Trace, Span and PSpan carry the causal trace context of sampled
	// tuples as lowercase hex (absent for unsampled events): the
	// tuple's trace id, the span of this node's copy incarnation, and
	// the upstream hop's span that caused it. Hex strings keep uint64
	// identities exact through JSON (float64 numbers would round) and
	// greppable in dumps.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	PSpan string `json:"pspan,omitempty"`
}

// NewTraceRecord converts one engine event into the JSONL schema,
// stamped with t. Shared by the JSONL sink and the flight recorder so
// both emit identical records for the same event.
func NewTraceRecord(t float64, ev core.TraceEvent) TraceRecord {
	return TraceRecord{
		T:     t,
		Kind:  ev.Kind.String(),
		Node:  string(ev.Node),
		ID:    ev.ID.String(),
		Tuple: ev.TupleKind,
		From:  string(ev.From),
		Hop:   ev.Hop,
		Val:   ev.Value,
		Trace: hexID(ev.TraceID),
		Span:  hexID(ev.Span),
		PSpan: hexID(ev.ParentSpan),
	}
}

// hexID formats a span or trace identity; zero (unsampled) renders as
// the empty string so the JSON field is omitted.
func hexID(v uint64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatUint(v, 16)
}

type stampedEvent struct {
	t  float64
	ev core.TraceEvent
}

// JSONLSink exports engine trace events as JSON lines on a buffered
// background writer. Enqueueing never blocks the engine: when the
// buffer is full the event is dropped and counted (backpressure by
// shedding, not stalling — the middleware must not slow down because an
// exporter is behind).
type JSONLSink struct {
	clock func() float64
	ch    chan stampedEvent

	written *Counter
	dropped *Counter

	done chan struct{}
	werr error

	closeOnce sync.Once
}

// NewJSONLSink starts a sink writing to w, stamping events with clock
// (nil means "always 0"; pass emulator time or wall-clock seconds).
// depth bounds the in-flight buffer (<=0 selects 4096). The sink's
// written/dropped counters are registered on reg when non-nil.
func NewJSONLSink(w io.Writer, reg *Registry, clock func() float64, depth int) *JSONLSink {
	if depth <= 0 {
		depth = 4096
	}
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	s := &JSONLSink{
		clock: clock,
		ch:    make(chan stampedEvent, depth),
		done:  make(chan struct{}),
	}
	if reg != nil {
		s.written = reg.Counter("tota_trace_events_total", "Trace events exported as JSONL.")
		s.dropped = reg.Counter("tota_trace_dropped_total", "Trace events dropped because the export buffer was full.")
	} else {
		s.written = &Counter{}
		s.dropped = &Counter{}
	}
	go s.writeLoop(w)
	return s
}

func (s *JSONLSink) writeLoop(w io.Writer) {
	defer close(s.done)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for se := range s.ch {
		rec := NewTraceRecord(se.t, se.ev)
		if err := enc.Encode(rec); err != nil {
			if s.werr == nil {
				s.werr = err
			}
			continue
		}
		s.written.Inc()
		// Flush whenever the buffer drains so a live tail of the file
		// sees events promptly; under sustained load the channel stays
		// non-empty and writes keep batching.
		if len(s.ch) == 0 {
			if err := bw.Flush(); err != nil && s.werr == nil {
				s.werr = err
			}
		}
	}
	if err := bw.Flush(); err != nil && s.werr == nil {
		s.werr = err
	}
}

// Tracer returns the core.Tracer feeding this sink.
func (s *JSONLSink) Tracer() core.Tracer {
	return func(ev core.TraceEvent) {
		select {
		case s.ch <- stampedEvent{t: s.clock(), ev: ev}:
		default:
			s.dropped.Inc()
		}
	}
}

// Dropped returns the number of shed events.
func (s *JSONLSink) Dropped() int64 { return s.dropped.Value() }

// Written returns the number of exported events.
func (s *JSONLSink) Written() int64 { return s.written.Value() }

// Close drains the buffer, flushes the writer and returns the first
// write error, if any. The sink must not be fed after Close.
func (s *JSONLSink) Close() error {
	s.closeOnce.Do(func() { close(s.ch) })
	<-s.done
	return s.werr
}

// maxTrackedIDs bounds the latency tracker's per-tuple bookkeeping so a
// long-lived node cannot grow it without bound; injections beyond the
// cap are not tracked (counted in Untracked).
const maxTrackedIDs = 4096

// Latencies derives the two headline middleware latencies from the
// trace stream:
//
//   - Propagation: inject → first store of the same tuple at each other
//     node (how fast a structure spreads).
//   - Repair: disturbance → next maintenance adoption. A disturbance is
//     either a withdrawal of a specific structure (per-id) or an
//     external topology-churn mark (MarkChurn, sampled once by the
//     first adoption that follows).
//   - QueryResult: query inject → the source's first convergecast
//     result for that query (how long a fresh aggregation query takes
//     to produce its first answer).
//
// All methods are safe for concurrent use from parallel delivery
// workers; the tracker takes one small mutex per traced event, which is
// off the packet fast path (events only fire on state changes).
type Latencies struct {
	clock func() float64

	mu        sync.Mutex
	injected  map[tuple.ID]float64
	disturbed map[tuple.ID]float64
	resulted  map[tuple.ID]bool
	churnAt   float64
	churnSet  bool

	// Propagation is the inject→store latency histogram.
	Propagation *Histogram
	// Repair is the disturbance→adopt latency histogram.
	Repair *Histogram
	// QueryResult is the inject→first-result latency histogram for
	// aggregation queries.
	QueryResult *Histogram
	// Untracked counts injections beyond the tracking cap.
	Untracked *Counter
}

// NewLatencies builds a latency tracker with the given clock and bucket
// bounds (RoundBuckets suits tick-based emulation), registering its
// histograms on reg when non-nil.
func NewLatencies(reg *Registry, clock func() float64, buckets []float64) *Latencies {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	l := &Latencies{
		clock:     clock,
		injected:  make(map[tuple.ID]float64),
		disturbed: make(map[tuple.ID]float64),
		resulted:  make(map[tuple.ID]bool),
	}
	if reg != nil {
		l.Propagation = reg.Histogram("tota_propagation_latency", "Inject-to-store latency per (tuple, node), in clock units.", buckets)
		l.Repair = reg.Histogram("tota_repair_latency", "Disturbance-to-adoption latency, in clock units.", buckets)
		l.QueryResult = reg.Histogram("tota_query_result_latency", "Query inject-to-first-result latency, in clock units.", buckets)
		l.Untracked = reg.Counter("tota_latency_untracked_total", "Injections not tracked because the id table was full.")
	} else {
		l.Propagation = NewHistogram(buckets)
		l.Repair = NewHistogram(buckets)
		l.QueryResult = NewHistogram(buckets)
		l.Untracked = &Counter{}
	}
	return l
}

// Reset clears the in-flight tracking state (pending injections,
// disturbances and churn marks) while keeping the histograms. Callers
// running repeated trials use it between runs so stale ids from one
// trial cannot pollute the next one's samples.
func (l *Latencies) Reset() {
	l.mu.Lock()
	clear(l.injected)
	clear(l.disturbed)
	clear(l.resulted)
	l.churnSet = false
	l.mu.Unlock()
}

// MarkChurn records an external disturbance (topology change); the next
// maintenance adoption anywhere samples the repair latency against it.
func (l *Latencies) MarkChurn() {
	now := l.clock()
	l.mu.Lock()
	l.churnAt = now
	l.churnSet = true
	l.mu.Unlock()
}

// Tracer returns the core.Tracer feeding this tracker.
func (l *Latencies) Tracer() core.Tracer {
	return func(ev core.TraceEvent) {
		switch ev.Kind {
		case core.TraceInject:
			now := l.clock()
			l.mu.Lock()
			if len(l.injected) < maxTrackedIDs {
				l.injected[ev.ID] = now
			} else {
				l.Untracked.Inc()
			}
			l.mu.Unlock()
		case core.TraceStore:
			now := l.clock()
			l.mu.Lock()
			t0, ok := l.injected[ev.ID]
			d, disturbed := l.disturbed[ev.ID]
			if disturbed {
				delete(l.disturbed, ev.ID)
			}
			l.mu.Unlock()
			// A re-store after a withdrawal is a repair, not propagation.
			if disturbed {
				l.Repair.Observe(now - d)
			} else if ok && ev.Node != ev.ID.Node {
				l.Propagation.Observe(now - t0)
			}
		case core.TraceAdopt:
			now := l.clock()
			l.mu.Lock()
			d, disturbed := l.disturbed[ev.ID]
			if disturbed {
				delete(l.disturbed, ev.ID)
			}
			churned := l.churnSet
			c := l.churnAt
			l.churnSet = false
			l.mu.Unlock()
			switch {
			case disturbed:
				l.Repair.Observe(now - d)
			case churned:
				l.Repair.Observe(now - c)
			}
		case core.TraceWithdraw:
			now := l.clock()
			l.mu.Lock()
			if _, ok := l.disturbed[ev.ID]; !ok && len(l.disturbed) < maxTrackedIDs {
				l.disturbed[ev.ID] = now
			}
			l.mu.Unlock()
		case core.TraceAggResult:
			now := l.clock()
			l.mu.Lock()
			t0, ok := l.injected[ev.ID]
			first := ok && !l.resulted[ev.ID]
			if first {
				l.resulted[ev.ID] = true
			}
			l.mu.Unlock()
			// Only the first result samples the histogram: later epochs
			// re-report continuously and would swamp it with zeros. The
			// injected entry stays live so propagation tracking of the
			// query tuple itself is unaffected.
			if first {
				l.QueryResult.Observe(now - t0)
			}
		case core.TraceRetract, core.TraceExpire:
			l.mu.Lock()
			delete(l.injected, ev.ID)
			delete(l.disturbed, ev.ID)
			delete(l.resulted, ev.ID)
			l.mu.Unlock()
		}
	}
}
