package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("tota_packets_in_total", "Packets.").Add(12)
	r.Histogram("tota_propagation_latency", "Latency.", RoundBuckets).Observe(3)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"tota_packets_in_total 12",
		`tota_propagation_latency_bucket{le="4"} 1`,
		"tota_propagation_latency_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	body, ct := get("/metrics.json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	if len(snaps) != 2 {
		t.Errorf("/metrics.json snapshots = %d, want 2", len(snaps))
	}

	if body, _ := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
