package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("tota_packets_in_total", "Packets.").Add(12)
	r.Histogram("tota_propagation_latency", "Latency.", RoundBuckets).Observe(3)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"tota_packets_in_total 12",
		`tota_propagation_latency_bucket{le="4"} 1`,
		"tota_propagation_latency_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	body, ct := get("/metrics.json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	if len(snaps) != 2 {
		t.Errorf("/metrics.json snapshots = %d, want 2", len(snaps))
	}

	if body, _ := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestServeReadyzAndStore covers the Extras surface: /readyz flips
// 503 → 200 on peer discovery and reports per-scrape announce/suppress
// deltas, and /store.json streams the NDJSON dump verbatim.
func TestServeReadyzAndStore(t *testing.T) {
	var (
		mu   sync.Mutex
		snap = Readiness{StoreSize: 2, Peers: 0, Announced: 5, Suppressed: 40}
	)
	srv, err := ServeExtras("127.0.0.1:0", NewRegistry(), Extras{
		Ready: func() Readiness {
			mu.Lock()
			defer mu.Unlock()
			return snap
		},
		Store: func(w io.Writer) error {
			_, err := io.WriteString(w, `{"kind":"tota:flood","id":"a#1"}`+"\n")
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	readyz := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("/readyz not JSON: %v", err)
		}
		return resp.StatusCode, body
	}

	code, body := readyz()
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Errorf("no peers: status=%d body=%v, want 503/ready=false", code, body)
	}
	if body["store_size"] != 2.0 || body["announced"] != 5.0 {
		t.Errorf("readyz body = %v", body)
	}

	mu.Lock()
	snap.Peers = 3
	snap.Announced, snap.Suppressed = 7, 52
	mu.Unlock()
	code, body = readyz()
	if code != http.StatusOK || body["ready"] != true || body["peers"] != 3.0 {
		t.Errorf("with peers: status=%d body=%v, want 200/ready=true", code, body)
	}
	if body["announced_delta"] != 2.0 || body["suppressed_delta"] != 12.0 {
		t.Errorf("deltas = %v/%v, want 2/12", body["announced_delta"], body["suppressed_delta"])
	}
	if _, body = readyz(); body["announced_delta"] != 0.0 {
		t.Errorf("steady scrape delta = %v, want 0", body["announced_delta"])
	}

	resp, err := http.Get(base + "/store.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dump, _ := io.ReadAll(resp.Body)
	if got := string(dump); got != `{"kind":"tota:flood","id":"a#1"}`+"\n" {
		t.Errorf("/store.json = %q", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/store.json content type = %q", ct)
	}

	// Without Extras the endpoints must not exist (back-compat surface).
	plain, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	resp, err = http.Get("http://" + plain.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/readyz without Ready: status %d, want 404", resp.StatusCode)
	}
}
