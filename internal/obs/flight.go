package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"tota/internal/core"
)

// DefaultFlightSize is the ring capacity a FlightRecorder uses when the
// caller passes a non-positive size.
const DefaultFlightSize = 4096

// FlightRecorder keeps the last N trace events of one node in a
// fixed-size in-memory ring — the black box that survives until a
// crash or a /debug/flight scrape, independent of any export pipeline.
// Unlike the JSONL sink it never sheds under backpressure (there is no
// channel to fill: recording is one stamp, one mutex, one slot write)
// and never grows (old events are overwritten in arrival order).
//
// Recording takes a plain mutex. Trace events only fire on state
// changes — never on the per-packet fast path — and the critical
// section is a single slot assignment, so contention is negligible
// even with parallel delivery workers.
type FlightRecorder struct {
	clock func() float64

	mu    sync.Mutex
	ring  []stampedEvent
	next  int
	total uint64
}

// NewFlightRecorder builds a recorder stamping events with clock (nil
// means "always 0") keeping the last size events (<=0 selects
// DefaultFlightSize).
func NewFlightRecorder(clock func() float64, size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &FlightRecorder{clock: clock, ring: make([]stampedEvent, 0, size)}
}

// Tracer returns the core.Tracer feeding this recorder.
func (f *FlightRecorder) Tracer() core.Tracer {
	return func(ev core.TraceEvent) {
		t := f.clock()
		f.mu.Lock()
		if len(f.ring) < cap(f.ring) {
			f.ring = append(f.ring, stampedEvent{t: t, ev: ev})
		} else {
			f.ring[f.next] = stampedEvent{t: t, ev: ev}
		}
		f.next++
		if f.next == cap(f.ring) {
			f.next = 0
		}
		f.total++
		f.mu.Unlock()
	}
}

// Len returns how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// Total returns how many events were ever recorded, including those
// the ring has since overwritten.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Records returns the retained events, oldest first, converted to the
// shared JSONL trace schema.
func (f *FlightRecorder) Records() []TraceRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TraceRecord, 0, len(f.ring))
	// When the ring has wrapped, next points at the oldest slot.
	start := 0
	if len(f.ring) == cap(f.ring) {
		start = f.next
	}
	for i := 0; i < len(f.ring); i++ {
		se := f.ring[(start+i)%len(f.ring)]
		out = append(out, NewTraceRecord(se.t, se.ev))
	}
	return out
}

// WriteJSONL dumps the retained events, oldest first, as JSON lines —
// the same schema the JSONLSink exports, so tota-trace ingests flight
// dumps and sink files interchangeably.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range f.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpOnCrash returns a function to defer at the top of a goroutine or
// main: on panic it writes the flight ring to w (the last moments
// before the crash) and re-panics; on normal return it does nothing.
//
//	defer fr.DumpOnCrash(os.Stderr)()
func (f *FlightRecorder) DumpOnCrash(w io.Writer) func() {
	return func() {
		r := recover()
		if r == nil {
			return
		}
		fmt.Fprintf(w, "panic: %v — flight recorder dump (%d events, %d total recorded):\n", r, f.Len(), f.Total())
		if err := f.WriteJSONL(w); err != nil {
			fmt.Fprintf(w, "flight dump failed: %v\n", err)
		}
		panic(r)
	}
}
