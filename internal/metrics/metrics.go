// Package metrics is the small statistics toolkit the experiments use
// to aggregate per-node counters into the tables EXPERIMENTS.md reports:
// histograms with quantiles, time series, and fixed-width text tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates float samples and answers summary queries.
// The zero value is ready to use.
type Histogram struct {
	vals   []float64
	sorted bool
}

// Add appends one sample.
func (h *Histogram) Add(v float64) {
	h.vals = append(h.vals, v)
	h.sorted = false
}

// AddN appends many samples.
func (h *Histogram) AddN(vs ...float64) {
	h.vals = append(h.vals, vs...)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.vals) }

// Sum returns the sample total.
func (h *Histogram) Sum() float64 {
	s := 0.0
	for _, v := range h.vals {
		s += v
	}
	return s
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.vals))
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[0]
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[len(h.vals)-1]
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by nearest-rank on the
// sorted samples.
func (h *Histogram) Quantile(p float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	if p <= 0 {
		return h.vals[0]
	}
	if p >= 1 {
		return h.vals[len(h.vals)-1]
	}
	idx := int(math.Ceil(p*float64(len(h.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.vals[idx]
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	m := h.Mean()
	ss := 0.0
	for _, v := range h.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// Series is an ordered sequence of (x, y) observations, e.g. structure
// error over time.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Append adds one observation.
func (s *Series) Append(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Xs) }

// Last returns the most recent observation.
func (s *Series) Last() (x, y float64, ok bool) {
	if len(s.Xs) == 0 {
		return 0, 0, false
	}
	return s.Xs[len(s.Xs)-1], s.Ys[len(s.Ys)-1], true
}

// FirstXWhere returns the smallest x whose y satisfies pred — e.g. the
// first tick at which the structure error reached zero.
func (s *Series) FirstXWhere(pred func(y float64) bool) (float64, bool) {
	for i, y := range s.Ys {
		if pred(y) {
			return s.Xs[i], true
		}
	}
	return 0, false
}

// Table formats experiment results as an aligned fixed-width text table
// (the shape the paper-reproduction harness prints).
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.3g
// trimmed.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// FormatFloat renders a float compactly (integers without decimals).
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
