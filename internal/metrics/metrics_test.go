package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero histogram not neutral")
	}
	h.AddN(4, 1, 3, 2)
	h.Add(5)
	if h.N() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Errorf("N=%d Sum=%v Mean=%v", h.N(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min=%v Max=%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if s := h.Stddev(); math.Abs(s-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s)
	}
}

func TestHistogramQuantileMonotoneQuick(t *testing.T) {
	f := func(vs []float64) bool {
		var h Histogram
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp magnitudes so Sum cannot overflow or lose the
			// ordering Min ≤ Mean ≤ Max to float rounding.
			h.Add(math.Mod(v, 1e9))
		}
		if h.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := h.Quantile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return h.Min() <= h.Mean() && h.Mean() <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if _, _, ok := s.Last(); ok {
		t.Error("empty series has Last")
	}
	s.Append(0, 5)
	s.Append(1, 3)
	s.Append(2, 0)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if x, y, ok := s.Last(); !ok || x != 2 || y != 0 {
		t.Errorf("Last = %v, %v, %v", x, y, ok)
	}
	x, ok := s.FirstXWhere(func(y float64) bool { return y == 0 })
	if !ok || x != 2 {
		t.Errorf("FirstXWhere = %v, %v", x, ok)
	}
	if _, ok := s.FirstXWhere(func(y float64) bool { return y > 100 }); ok {
		t.Error("FirstXWhere matched impossible predicate")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Results", "n", "ratio", "name")
	tb.AddRow(10, 0.51234, "flood")
	tb.AddRow(200, 1.0, "gradient")
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "0.512") {
		t.Errorf("float not trimmed: %q", out)
	}
	if !strings.Contains(out, "gradient") || !strings.Contains(out, "flood") {
		t.Error("missing rows")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d: %q", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{-2, "-2"},
		{0.5, "0.500"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.give); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
