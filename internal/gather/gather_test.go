package gather

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"tota/internal/emulator"
	"tota/internal/pattern"
	"tota/internal/topology"
	"tota/internal/tuple"
)

func newWorld(t *testing.T, g *topology.Graph) *emulator.World {
	t.Helper()
	return emulator.New(emulator.Config{Graph: g})
}

func TestAdvertiseAndDiscover(t *testing.T) {
	w := newWorld(t, topology.Line(6))
	sensorA := topology.NodeName(0)
	sensorB := topology.NodeName(5)
	user := topology.NodeName(2)

	if _, err := Advertise(w.Node(sensorA), "thermo", math.Inf(1), tuple.S("unit", "C")); err != nil {
		t.Fatal(err)
	}
	if _, err := Advertise(w.Node(sensorB), "printer", math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	found := Discover(w.Node(user))
	if len(found) != 2 {
		t.Fatalf("Discover = %v", found)
	}
	byName := map[string]Resource{}
	for _, r := range found {
		byName[r.Name] = r
	}
	if r := byName["thermo"]; r.Distance != 2 || r.Desc.GetString("unit") != "C" {
		t.Errorf("thermo = %+v", r)
	}
	if r := byName["printer"]; r.Distance != 3 {
		t.Errorf("printer = %+v", r)
	}
}

func TestAdvertiseScopeLimitsDiscovery(t *testing.T) {
	w := newWorld(t, topology.Line(6))
	if _, err := Advertise(w.Node(topology.NodeName(0)), "near", 2); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	if got := Discover(w.Node(topology.NodeName(2))); len(got) != 1 {
		t.Errorf("in-scope discovery = %v", got)
	}
	if got := Discover(w.Node(topology.NodeName(4))); len(got) != 0 {
		t.Errorf("out-of-scope discovery = %v", got)
	}
}

func TestWatchStandingDiscovery(t *testing.T) {
	w := newWorld(t, topology.Line(4))
	user := topology.NodeName(3)
	var mu sync.Mutex
	var seen []Resource
	sub := Watch(w.Node(user), func(r Resource) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, r)
	})

	if _, err := Advertise(w.Node(topology.NodeName(0)), "late-sensor", math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	mu.Lock()
	count := len(seen)
	first := Resource{}
	if count > 0 {
		first = seen[0]
	}
	mu.Unlock()
	if count == 0 {
		t.Fatal("watch saw nothing")
	}
	if first.Name != "late-sensor" || first.Distance != 3 {
		t.Errorf("first sighting = %+v", first)
	}

	// Unsubscribe stops delivery.
	w.Node(user).Unsubscribe(sub)
	if _, err := Advertise(w.Node(topology.NodeName(0)), "another", math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	mu.Lock()
	defer mu.Unlock()
	for _, r := range seen {
		if r.Name == "another" {
			t.Error("watch fired after unsubscribe")
		}
	}
}

func TestNextHop(t *testing.T) {
	tests := []struct {
		name   string
		self   float64
		nbrs   map[tuple.NodeID]float64
		want   tuple.NodeID
		wantOK bool
	}{
		{
			name:   "picks smallest",
			self:   3,
			nbrs:   map[tuple.NodeID]float64{"a": 2, "b": 4, "c": 1},
			want:   "c",
			wantOK: true,
		},
		{
			name:   "at source",
			self:   0,
			nbrs:   map[tuple.NodeID]float64{"a": 1, "b": 1},
			wantOK: false,
		},
		{
			name:   "no improvement",
			self:   2,
			nbrs:   map[tuple.NodeID]float64{"a": 2, "b": 3},
			wantOK: false,
		},
		{
			name:   "empty neighborhood",
			self:   5,
			nbrs:   nil,
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := NextHop(tt.self, tt.nbrs)
			if ok != tt.wantOK || (ok && got != tt.want) {
				t.Errorf("NextHop = %v, %v; want %v, %v", got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

// TestWalkBackToSource reproduces the paper's "by following backwards
// the tuple up to its source, [a device] can easily reach the
// information source without any a priori global information": a walker
// repeatedly moves to the NextHop neighbor until it stands at the
// sensor.
func TestWalkBackToSource(t *testing.T) {
	g := topology.Grid(5, 5, 1)
	w := newWorld(t, g)
	sensor := topology.NodeName(0)
	if _, err := Advertise(w.Node(sensor), "target", math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	at := topology.NodeName(24) // far corner
	steps := 0
	for steps < 100 {
		res := Discover(w.Node(at))
		if len(res) != 1 {
			t.Fatalf("at %s: resources = %v", at, res)
		}
		if res[0].Distance == 0 {
			break
		}
		nbrVals := make(map[tuple.NodeID]float64)
		for _, nb := range g.Neighbors(at) {
			for _, r := range Discover(w.Node(nb)) {
				if r.Name == "target" {
					nbrVals[nb] = r.Distance
				}
			}
		}
		next, ok := NextHop(res[0].Distance, nbrVals)
		if !ok {
			t.Fatalf("stuck at %s (val %v)", at, res[0].Distance)
		}
		at = next
		steps++
	}
	if at != sensor {
		t.Fatalf("walk ended at %s after %d steps", at, steps)
	}
	if steps != 8 { // Manhattan distance corner-to-corner on 5×5
		t.Errorf("walk took %d steps, want 8 (shortest path)", steps)
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	w := newWorld(t, topology.Line(5))
	asker := topology.NodeName(0)
	sensor := topology.NodeName(4)

	resp := NewResponder(w.Node(sensor), "temp", func(q Query) (tuple.Content, bool) {
		if q.QID != "q1" || q.Fields.GetString("want") != "celsius" {
			t.Errorf("query = %+v", q)
		}
		return tuple.Content{tuple.F("reading", 21.5)}, true
	})
	defer resp.Close()

	if _, err := Ask(w.Node(asker), "temp", "q1", math.Inf(1), tuple.S("want", "celsius")); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)

	got := Answers(w.Node(asker))
	if len(got) != 1 {
		t.Fatalf("Answers = %v", got)
	}
	a := got[0]
	if a.Topic != "temp" || a.QID != "q1" || a.Fields.GetFloat("reading") != 21.5 {
		t.Errorf("answer = %+v", a)
	}
	// Intermediate node must not hold the answer.
	if n := len(w.Node(topology.NodeName(2)).Read(tuple.Match(pattern.KindDownhill))); n != 0 {
		t.Error("answer stored at relay")
	}
}

func TestResponderAnswersEachQueryOnce(t *testing.T) {
	w := newWorld(t, topology.Ring(6))
	asker := topology.NodeName(0)
	sensor := topology.NodeName(3)
	var calls atomic.Int64
	resp := NewResponder(w.Node(sensor), "t", func(Query) (tuple.Content, bool) {
		calls.Add(1)
		return tuple.Content{tuple.S("ok", "y")}, true
	})
	defer resp.Close()

	if _, err := Ask(w.Node(asker), "t", "a", math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	// Perturb the ring: maintenance adoptions may re-fire arrival
	// events for the query gradient; the responder must not re-answer.
	w.RemoveEdge(topology.NodeName(1), topology.NodeName(2))
	w.Settle(10000)
	if got := calls.Load(); got != 1 {
		t.Errorf("handler calls = %d, want 1", got)
	}
	if got := Answers(w.Node(asker)); len(got) != 1 {
		t.Errorf("answers = %v", got)
	}
}

func TestResponderScopeAndTopicFiltering(t *testing.T) {
	w := newWorld(t, topology.Line(6))
	asker := topology.NodeName(0)

	var offTopic, farSensor atomic.Int64
	rOff := NewResponder(w.Node(topology.NodeName(2)), "other", func(Query) (tuple.Content, bool) {
		offTopic.Add(1)
		return nil, true
	})
	defer rOff.Close()
	rFar := NewResponder(w.Node(topology.NodeName(5)), "t", func(Query) (tuple.Content, bool) {
		farSensor.Add(1)
		return nil, true
	})
	defer rFar.Close()

	// Scope 2: the query gradient never reaches node 5.
	if _, err := Ask(w.Node(asker), "t", "q", 2); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	if offTopic.Load() != 0 {
		t.Error("off-topic responder fired")
	}
	if farSensor.Load() != 0 {
		t.Error("out-of-scope responder fired")
	}
}

func TestSilentHandlerSendsNothing(t *testing.T) {
	w := newWorld(t, topology.Line(3))
	asker := topology.NodeName(0)
	resp := NewResponder(w.Node(topology.NodeName(2)), "t", func(Query) (tuple.Content, bool) {
		return nil, false
	})
	defer resp.Close()
	if _, err := Ask(w.Node(asker), "t", "q", math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	w.Settle(10000)
	if got := Answers(w.Node(asker)); len(got) != 0 {
		t.Errorf("answers = %v", got)
	}
}
