// Package gather implements the paper's §5.2 information gathering in
// both proposed variants.
//
// Push: information nodes (sensors) propagate a gradient tuple
// C = (description, location, distance) so any device can read the
// locally sensed copies to learn what exists, how far it is, and — by
// following the tuple backwards — reach its source without global
// knowledge.
//
// Pull (the [RomJH02] equivalent): a device injects a scoped query
// tuple; information nodes subscribe to matching queries and react by
// injecting an answer tuple that descends the query's own gradient back
// to the enquiring device.
package gather

import (
	"strings"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

// Name prefixes for the gathering structures.
const (
	ResourcePrefix = "res:"
	QueryPrefix    = "query:"
)

// Resource is a sensed information advertisement.
type Resource struct {
	// Name is the advertised resource name (without prefix).
	Name string
	// Distance is the gradient value at the reading node (hops from
	// the information node, times step).
	Distance float64
	// Desc is the advertised description payload.
	Desc tuple.Content
	// ID identifies the advertisement structure.
	ID tuple.ID
}

// Advertise publishes an information node's resource as a gradient
// field with the given scope (use math.Inf(1) for network-wide).
func Advertise(n *core.Node, name string, scope float64, desc ...tuple.Field) (tuple.ID, error) {
	g := pattern.NewGradient(ResourcePrefix+name, desc...).Bounded(scope)
	return n.Inject(g)
}

// Discover reads every resource advertisement sensed at the local
// node, nearest first not guaranteed — order is arrival order.
func Discover(n *core.Node) []Resource {
	var out []Resource
	for _, t := range n.Read(tuple.Match(pattern.KindGradient)) {
		g, ok := t.(*pattern.Gradient)
		if !ok || !strings.HasPrefix(g.Name, ResourcePrefix) {
			continue
		}
		out = append(out, Resource{
			Name:     strings.TrimPrefix(g.Name, ResourcePrefix),
			Distance: g.Val,
			Desc:     g.Payload,
			ID:       g.ID(),
		})
	}
	return out
}

// Watch invokes fn for every resource advertisement as it becomes
// sensible at the local node (and again when its distance changes, as
// the middleware repairs the field) — standing discovery, the
// subscription counterpart of Discover. It returns the subscription id
// for core.Unsubscribe.
func Watch(n *core.Node, fn func(Resource)) core.SubID {
	return n.Subscribe(tuple.Match(pattern.KindGradient), func(ev core.Event) {
		if ev.Type != core.TupleArrived {
			return
		}
		g, ok := ev.Tuple.(*pattern.Gradient)
		if !ok || !strings.HasPrefix(g.Name, ResourcePrefix) {
			return
		}
		fn(Resource{
			Name:     strings.TrimPrefix(g.Name, ResourcePrefix),
			Distance: g.Val,
			Desc:     g.Payload,
			ID:       g.ID(),
		})
	})
}

// NextHop picks the neighbor to move to when walking a gradient back to
// its source: the neighbor with the smallest value below the current
// one. ok is false at the source or when no neighbor improves.
func NextHop(selfVal float64, neighborVals map[tuple.NodeID]float64) (tuple.NodeID, bool) {
	var best tuple.NodeID
	bestVal := selfVal
	found := false
	for id, v := range neighborVals {
		if v < bestVal || (found && v == bestVal && id < best) {
			best = id
			bestVal = v
			found = true
		}
	}
	return best, found
}

// Query is a received information request.
type Query struct {
	// Topic is the query topic (without prefix).
	Topic string
	// QID is the caller-chosen query instance id.
	QID string
	// Fields is the query payload.
	Fields tuple.Content
	// structName routes the answer back.
	structName string
}

// Answer is a received reply.
type Answer struct {
	// Topic and QID echo the query.
	Topic string
	QID   string
	// Fields is the reply payload.
	Fields tuple.Content
}

// Ask injects a query gradient with the given scope. qid distinguishes
// concurrent queries from the same device (answers echo it). Delivered
// answers are collected with Answers.
func Ask(n *core.Node, topic, qid string, scope float64, fields ...tuple.Field) (tuple.ID, error) {
	g := pattern.NewGradient(QueryPrefix+topic+"/"+qid, fields...).Bounded(scope)
	return n.Inject(g)
}

// Answers drains the replies delivered to this node.
func Answers(n *core.Node) []Answer {
	var out []Answer
	for _, t := range n.Delete(tuple.Match(pattern.KindDownhill)) {
		d, ok := t.(*pattern.Downhill)
		if !ok || !strings.HasPrefix(d.StructName, QueryPrefix) {
			continue
		}
		topic, qid := splitQueryName(d.StructName)
		out = append(out, Answer{Topic: topic, QID: qid, Fields: d.Payload})
	}
	return out
}

// Responder makes an information node answer matching queries: it
// subscribes to query-gradient arrivals and reacts by injecting an
// answer tuple that follows the query structure downhill to the asker —
// exactly the paper's "query tuples create a structure to be used by
// answer tuples to reach the enquiring device".
type Responder struct {
	node    *core.Node
	topic   string
	handler func(Query) (tuple.Content, bool)
	sub     core.SubID
}

// NewResponder starts answering queries on the given topic. The handler
// returns the reply payload, or ok=false to stay silent. Each query
// instance is answered once, even though maintenance value changes
// re-fire arrival events (core.OncePerTuple).
func NewResponder(n *core.Node, topic string, handler func(Query) (tuple.Content, bool)) *Responder {
	r := &Responder{
		node:    n,
		topic:   topic,
		handler: handler,
	}
	r.sub = n.Subscribe(tuple.Match(pattern.KindGradient), core.OncePerTuple(r.react))
	return r
}

// Close stops answering.
func (r *Responder) Close() {
	r.node.Unsubscribe(r.sub)
}

func (r *Responder) react(ev core.Event) {
	if ev.Type != core.TupleArrived {
		return
	}
	g, ok := ev.Tuple.(*pattern.Gradient)
	if !ok || !strings.HasPrefix(g.Name, QueryPrefix) {
		return
	}
	topic, qid := splitQueryName(g.Name)
	if topic != r.topic {
		return
	}
	reply, ok := r.handler(Query{
		Topic:      topic,
		QID:        qid,
		Fields:     g.Payload,
		structName: g.Name,
	})
	if !ok {
		return
	}
	ans := pattern.NewDownhill(g.Name, reply...).StrictSlope()
	if _, err := r.node.Inject(ans); err != nil {
		// Nothing useful to do at an information node; the asker will
		// simply miss this reply.
		return
	}
}

func splitQueryName(structName string) (topic, qid string) {
	s := strings.TrimPrefix(structName, QueryPrefix)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}
