package tuple

import "testing"

func TestTemplateMatches(t *testing.T) {
	tup := newTestTuple("sensor", Content{
		S("type", "temperature"),
		F("value", 21.5),
		I("hops", 3),
	})
	tup.SetID(ID{Node: "n1", Seq: 7})

	tests := []struct {
		name string
		give Template
		want bool
	}{
		{name: "match all", give: MatchAll(), want: true},
		{name: "kind exact", give: Match("sensor"), want: true},
		{name: "kind mismatch", give: Match("other"), want: false},
		{name: "kind prefix", give: Template{Kind: "sen*"}, want: true},
		{name: "kind prefix mismatch", give: Template{Kind: "foo*"}, want: false},
		{
			name: "named exact value",
			give: Match("sensor", Eq(S("type", "temperature"))),
			want: true,
		},
		{
			name: "named wrong value",
			give: Match("sensor", Eq(S("type", "humidity"))),
			want: false,
		},
		{
			name: "named wildcard",
			give: Match("", AnyField("value")),
			want: true,
		},
		{
			name: "named wildcard absent",
			give: Match("", AnyField("nope")),
			want: false,
		},
		{
			name: "typed wildcard ok",
			give: Match("", AnyOfKind("value", KindFloat)),
			want: true,
		},
		{
			name: "typed wildcard wrong kind",
			give: Match("", AnyOfKind("value", KindInt)),
			want: false,
		},
		{
			name: "positional prefix",
			give: Match("", FieldPattern{Any: true}, FieldPattern{Any: true}),
			want: true,
		},
		{
			name: "positional too long",
			give: Match("", FieldPattern{Any: true}, FieldPattern{Any: true}, FieldPattern{Any: true}, FieldPattern{Any: true}),
			want: false,
		},
		{
			name: "positional value",
			give: Match("", FieldPattern{Value: "temperature", Name: "type"}),
			want: true,
		},
		{name: "id match", give: MatchID(ID{Node: "n1", Seq: 7}), want: true},
		{name: "id mismatch", give: MatchID(ID{Node: "n1", Seq: 8}), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Matches(tup); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTemplateExact(t *testing.T) {
	two := newTestTuple("k", Content{{Value: "a"}, {Value: "b"}})
	tpl := Template{Exact: true, Fields: []FieldPattern{{Any: true}, {Any: true}}}
	if !tpl.Matches(two) {
		t.Error("exact template with matching arity did not match")
	}
	tplShort := Template{Exact: true, Fields: []FieldPattern{{Any: true}}}
	if tplShort.Matches(two) {
		t.Error("exact template with smaller arity matched")
	}
}

func TestTemplateMatchesNil(t *testing.T) {
	if MatchAll().Matches(nil) {
		t.Error("template matched nil tuple")
	}
}

func TestTemplateFilter(t *testing.T) {
	a := newTestTuple("a", Content{S("x", "1")})
	b := newTestTuple("b", Content{S("x", "2")})
	c := newTestTuple("a", Content{S("x", "3")})
	got := Match("a").Filter([]Tuple{a, b, c})
	if len(got) != 2 || got[0] != Tuple(a) || got[1] != Tuple(c) {
		t.Errorf("Filter returned %v", got)
	}
	if out := Match("zzz").Filter([]Tuple{a, b}); out != nil {
		t.Errorf("Filter with no matches = %v, want nil", out)
	}
}
