// Package tuple defines the TOTA tuple model.
//
// A TOTA tuple is T = (C, P): a content C — an ordered set of typed
// fields — and a propagation rule P that governs how the tuple diffuses
// hop-by-hop through the network and how its content changes while doing
// so. This package provides the content model (Field, Content), local
// pattern matching (Template), tuple identities (ID), the programming
// model (the Tuple interface and its hooks, mirroring the paper's
// abstract Tuple class), and a binary codec with a kind registry so
// tuples can travel over real transports.
package tuple

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic types a Field value may hold. TOTA
// contents are ordered sets of *typed* fields; restricting the set of
// types keeps matching and serialization well-defined.
type Kind int

// Field value kinds.
const (
	KindString Kind = iota + 1
	KindInt
	KindFloat
	KindBool
	KindBytes
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrBadValue reports a field value outside the supported kinds.
var ErrBadValue = errors.New("tuple: unsupported field value type")

// Field is one typed, named element of a tuple content. Value must be a
// string, int64, float64, bool or []byte; use the S/I/F/B/Bin
// constructors to stay within that set.
type Field struct {
	Name  string
	Value any
}

// S returns a string field.
func S(name, v string) Field { return Field{Name: name, Value: v} }

// I returns an integer field.
func I(name string, v int64) Field { return Field{Name: name, Value: v} }

// F returns a float field.
func F(name string, v float64) Field { return Field{Name: name, Value: v} }

// B returns a boolean field.
func B(name string, v bool) Field { return Field{Name: name, Value: v} }

// Bin returns a bytes field. The slice is not copied; callers must not
// mutate it after handing it to a tuple.
func Bin(name string, v []byte) Field { return Field{Name: name, Value: v} }

// Kind returns the kind of the field's value, or 0 if the value is of an
// unsupported type.
func (f Field) Kind() Kind {
	switch f.Value.(type) {
	case string:
		return KindString
	case int64:
		return KindInt
	case float64:
		return KindFloat
	case bool:
		return KindBool
	case []byte:
		return KindBytes
	default:
		return 0
	}
}

// Equal reports whether two fields have the same name, kind and value.
// Float fields compare with exact equality except that NaN equals NaN,
// so that contents containing sentinel NaNs still compare stably.
func (f Field) Equal(g Field) bool {
	if f.Name != g.Name || f.Kind() != g.Kind() {
		return false
	}
	switch a := f.Value.(type) {
	case []byte:
		b, ok := g.Value.([]byte)
		return ok && string(a) == string(b)
	case float64:
		b, ok := g.Value.(float64)
		if !ok {
			return false
		}
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return a == b
	default:
		return f.Value == g.Value
	}
}

// String implements fmt.Stringer.
func (f Field) String() string {
	var v string
	switch x := f.Value.(type) {
	case string:
		v = strconv.Quote(x)
	case []byte:
		v = fmt.Sprintf("0x%x", x)
	default:
		v = fmt.Sprint(x)
	}
	if f.Name == "" {
		return v
	}
	return f.Name + "=" + v
}

// Content is the ordered set of typed fields carried by a tuple.
type Content []Field

// Validate reports an error if any field holds an unsupported value
// type or a duplicate non-empty name.
func (c Content) Validate() error {
	seen := make(map[string]struct{}, len(c))
	for i, f := range c {
		if f.Kind() == 0 {
			return fmt.Errorf("field %d (%q): %w (%T)", i, f.Name, ErrBadValue, f.Value)
		}
		if f.Name == "" {
			continue
		}
		if _, dup := seen[f.Name]; dup {
			return fmt.Errorf("field %d: duplicate name %q", i, f.Name)
		}
		seen[f.Name] = struct{}{}
	}
	return nil
}

// Get returns the first field with the given name.
func (c Content) Get(name string) (Field, bool) {
	for _, f := range c {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// GetString returns the value of the named string field, or "" if the
// field is absent or not a string.
func (c Content) GetString(name string) string {
	if f, ok := c.Get(name); ok {
		if s, ok := f.Value.(string); ok {
			return s
		}
	}
	return ""
}

// GetInt returns the value of the named int field, or 0 if the field is
// absent or not an int.
func (c Content) GetInt(name string) int64 {
	if f, ok := c.Get(name); ok {
		if v, ok := f.Value.(int64); ok {
			return v
		}
	}
	return 0
}

// GetFloat returns the value of the named float field, or 0 if the field
// is absent or not a float.
func (c Content) GetFloat(name string) float64 {
	if f, ok := c.Get(name); ok {
		if v, ok := f.Value.(float64); ok {
			return v
		}
	}
	return 0
}

// GetBool returns the value of the named bool field, or false if the
// field is absent or not a bool.
func (c Content) GetBool(name string) bool {
	if f, ok := c.Get(name); ok {
		if v, ok := f.Value.(bool); ok {
			return v
		}
	}
	return false
}

// With returns a copy of c with the named field replaced (or appended if
// absent). The receiver is unchanged; propagation hooks use With to
// evolve contents per hop without aliasing the stored copy.
func (c Content) With(f Field) Content {
	out := c.Clone()
	for i := range out {
		if out[i].Name == f.Name {
			out[i] = f
			return out
		}
	}
	return append(out, f)
}

// Clone returns a deep copy of c ([]byte field values included).
func (c Content) Clone() Content {
	if c == nil {
		return nil
	}
	out := make(Content, len(c))
	copy(out, c)
	for i, f := range out {
		if b, ok := f.Value.([]byte); ok {
			nb := make([]byte, len(b))
			copy(nb, b)
			out[i].Value = nb
		}
	}
	return out
}

// Equal reports whether two contents have the same fields in the same
// order.
func (c Content) Equal(d Content) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if !c[i].Equal(d[i]) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (c Content) String() string {
	parts := make([]string, len(c))
	for i, f := range c {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
