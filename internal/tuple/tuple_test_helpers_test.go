package tuple

// testTuple is a minimal concrete Tuple used throughout this package's
// tests: all state lives in the content, so the generic factory suffices.
type testTuple struct {
	Base

	kind string
	c    Content
}

var _ Tuple = (*testTuple)(nil)

func newTestTuple(kind string, c Content) *testTuple {
	return &testTuple{kind: kind, c: c}
}

func (t *testTuple) Kind() string     { return t.kind }
func (t *testTuple) Content() Content { return t.c }

// factoryFor returns a Factory producing testTuples of the given kind.
func factoryFor(kind string) Factory {
	return func(id ID, c Content) (Tuple, error) {
		tt := newTestTuple(kind, c)
		tt.SetID(id)
		return tt, nil
	}
}
