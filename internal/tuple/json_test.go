package tuple

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestFieldJSONRoundTrip(t *testing.T) {
	fields := Content{
		S("s", "héllo"),
		I("i", -42),
		F("f", math.Pi),
		B("b", true),
		Bin("raw", []byte{0, 255, 7}),
		{Value: "positional"},
	}
	data, err := json.Marshal(fields)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Content
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(fields) {
		t.Errorf("round trip changed content:\n got %v\nwant %v", got, fields)
	}
}

func TestFieldJSONTypeTagsPreserveIntVsFloat(t *testing.T) {
	data, err := json.Marshal(Content{I("n", 3), F("x", 3)})
	if err != nil {
		t.Fatal(err)
	}
	var got Content
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got[0].Value.(int64); !ok {
		t.Errorf("int field decoded as %T", got[0].Value)
	}
	if _, ok := got[1].Value.(float64); !ok {
		t.Errorf("float field decoded as %T", got[1].Value)
	}
}

func TestFieldJSONErrors(t *testing.T) {
	if _, err := json.Marshal(Field{Name: "x", Value: struct{}{}}); err == nil {
		t.Error("unsupported type marshaled")
	}
	cases := []string{
		`{"type":"mystery","value":1}`,
		`{"type":"int","value":"notanint"}`,
		`{"type":"bytes","value":"%%%"}`,
		`{"type":"bool","value":3}`,
		`{"type":"string","value":3}`,
		`{"type":"float","value":"x"}`,
		`not json`,
	}
	for _, c := range cases {
		var f Field
		if err := json.Unmarshal([]byte(c), &f); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestTupleJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("jk", factoryFor("jk"))
	orig := newTestTuple("jk", Content{S("a", "x"), I("b", 9)})
	orig.SetID(ID{Node: "n1", Seq: 4})

	data, err := MarshalTupleJSON(orig)
	if err != nil {
		t.Fatalf("MarshalTupleJSON: %v", err)
	}
	if !strings.Contains(string(data), `"kind":"jk"`) {
		t.Errorf("json = %s", data)
	}
	got, err := UnmarshalTupleJSON(r, data)
	if err != nil {
		t.Fatalf("UnmarshalTupleJSON: %v", err)
	}
	if got.ID() != orig.ID() || !got.Content().Equal(orig.Content()) {
		t.Errorf("round trip changed tuple")
	}
}

func TestUnmarshalTupleJSONErrors(t *testing.T) {
	r := NewRegistry()
	cases := []string{
		`{`,
		`{"kind":"nope","id":"n#1","content":[]}`,
		`{"kind":"jk","id":"malformed","content":[]}`,
	}
	for _, c := range cases {
		if _, err := UnmarshalTupleJSON(r, []byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	bad := newTestTuple("jk", Content{{Name: "x", Value: struct{}{}}})
	if _, err := MarshalTupleJSON(bad); err == nil {
		t.Error("marshaled invalid content")
	}
}

// TestFieldJSONNonFiniteFloats pins the string encoding for floats JSON
// cannot express: an unbounded gradient's _scope is +Inf, and before
// this path existed MarshalTupleJSON failed outright on such tuples
// (silently emptying every JSON store dump).
func TestFieldJSONNonFiniteFloats(t *testing.T) {
	fields := Content{
		F("pinf", math.Inf(1)),
		F("ninf", math.Inf(-1)),
		F("finite", 2.5),
	}
	data, err := json.Marshal(fields)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(data), `"+Inf"`) || !strings.Contains(string(data), `"-Inf"`) {
		t.Errorf("non-finite floats not string-encoded: %s", data)
	}
	var got Content
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(fields) {
		t.Errorf("round trip changed content:\n got %v\nwant %v", got, fields)
	}
	// NaN != NaN, so check it separately.
	nan, err := json.Marshal(Content{F("nan", math.NaN())})
	if err != nil {
		t.Fatalf("Marshal NaN: %v", err)
	}
	var back Content
	if err := json.Unmarshal(nan, &back); err != nil {
		t.Fatalf("Unmarshal NaN: %v", err)
	}
	if v, ok := back[0].Value.(float64); !ok || !math.IsNaN(v) {
		t.Errorf("NaN round trip = %v", back[0].Value)
	}
	// Garbage float strings must error, not zero out.
	if err := json.Unmarshal([]byte(`[{"name":"x","type":"float","value":"wat"}]`), &back); err == nil {
		t.Error("bad float string accepted")
	}
}
