package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Factory reconstructs a tuple of a given kind from its identity and
// content. Every kind used on the wire must register one.
type Factory func(id ID, c Content) (Tuple, error)

// Registry maps tuple kinds to factories, enabling the generic binary
// codec: a tuple round-trips as (kind, id, content). It also interns
// the low-cardinality strings of the wire format (kinds, node ids,
// field names) so steady-state decoding stops allocating them.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory

	strMu sync.RWMutex
	strs  map[string]string
}

// internCap bounds the intern table; when full it is reset rather than
// evicted, so a burst of unique strings cannot grow it without bound.
const internCap = 4096

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		factories: make(map[string]Factory),
		strs:      make(map[string]string),
	}
}

// Intern returns b as a string, reusing a previously returned string
// with the same contents when possible. Decoders call it for repeated
// protocol strings (kinds, node ids, field names): after the first
// packet of a given shape, those lookups allocate nothing.
func (r *Registry) Intern(b []byte) string {
	if r == nil || len(b) == 0 {
		return string(b)
	}
	r.strMu.RLock()
	s, ok := r.strs[string(b)] // compiler avoids the []byte->string alloc
	r.strMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	r.strMu.Lock()
	if len(r.strs) >= internCap {
		r.strs = make(map[string]string, internCap/4)
	}
	r.strs[s] = s
	r.strMu.Unlock()
	return s
}

// Register adds a factory for kind. Registering the same kind twice is
// an error so accidental collisions between tuple libraries surface
// early.
func (r *Registry) Register(kind string, f Factory) error {
	if kind == "" {
		return errors.New("tuple: empty kind")
	}
	if f == nil {
		return fmt.Errorf("tuple: nil factory for kind %q", kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[kind]; dup {
		return fmt.Errorf("tuple: kind %q already registered", kind)
	}
	r.factories[kind] = f
	return nil
}

// MustRegister is Register for program initialization; it panics on
// error.
func (r *Registry) MustRegister(kind string, f Factory) {
	if err := r.Register(kind, f); err != nil {
		panic(err)
	}
}

// New builds a tuple of the given kind from id and content.
func (r *Registry) New(kind string, id ID, c Content) (Tuple, error) {
	r.mu.RLock()
	f, ok := r.factories[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tuple: unknown kind %q", kind)
	}
	t, err := f(id, c)
	if err != nil {
		return nil, fmt.Errorf("tuple: decode kind %q: %w", kind, err)
	}
	return t, nil
}

// Clone deep-copies a tuple by rebuilding it from its kind, id and a
// cloned content.
func (r *Registry) Clone(t Tuple) (Tuple, error) {
	return r.New(t.Kind(), t.ID(), t.Content().Clone())
}

// Kinds returns the registered kind names (in map order).
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	return out
}

// DefaultRegistry is the process-wide registry; tuple libraries register
// their kinds into it at initialization (the pluggable-codec-registry
// pattern).
var DefaultRegistry = NewRegistry()

const codecVersion = 1

// Codec errors.
var (
	ErrShortBuffer = errors.New("tuple: short buffer")
	ErrBadVersion  = errors.New("tuple: unsupported codec version")
)

// EncodedSize returns the exact number of bytes Encode produces for t,
// so callers can allocate (or reserve) encode buffers in one shot.
func EncodedSize(t Tuple) int {
	return encodedSize(t, t.Content())
}

func encodedSize(t Tuple, c Content) int {
	n := 1 + 4 + len(t.Kind()) + 4 + len(t.ID().Node) + 8 + 2
	for _, f := range c {
		n += 4 + len(f.Name) + 1
		switch v := f.Value.(type) {
		case string:
			n += 4 + len(v)
		case int64, float64:
			n += 8
		case bool:
			n++
		case []byte:
			n += 4 + len(v)
		}
	}
	return n
}

// Encode serializes a tuple as (kind, id, content) using a compact
// big-endian binary format. The output is sized exactly, so encoding
// costs a single allocation.
func Encode(t Tuple) ([]byte, error) {
	return AppendEncode(nil, t)
}

// AppendEncode appends the serialized form of t to dst and returns the
// extended slice, growing dst at most once (to the exact final size).
// It lets message framers build a whole packet in one buffer.
func AppendEncode(dst []byte, t Tuple) ([]byte, error) {
	c := t.Content()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(c) > math.MaxUint16 {
		return nil, fmt.Errorf("tuple: too many fields (%d)", len(c))
	}
	if need := encodedSize(t, c); cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	b := dst
	b = append(b, codecVersion)
	b = appendString(b, t.Kind())
	b = appendString(b, string(t.ID().Node))
	b = binary.BigEndian.AppendUint64(b, t.ID().Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c)))
	for _, f := range c {
		b = appendString(b, f.Name)
		b = append(b, byte(f.Kind()))
		switch v := f.Value.(type) {
		case string:
			b = appendString(b, v)
		case int64:
			b = binary.BigEndian.AppendUint64(b, uint64(v))
		case float64:
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
		case bool:
			if v {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		case []byte:
			b = appendBytes(b, v)
		}
	}
	return b, nil
}

// Decode reconstructs a tuple previously serialized with Encode, using
// the registry's factory for its kind.
func Decode(r *Registry, data []byte) (Tuple, error) {
	kind, id, c, err := decodeParts(r, data)
	if err != nil {
		return nil, err
	}
	return r.New(kind, id, c)
}

// DecodeParts parses the serialized form without invoking a factory,
// for transports and tools that need only the envelope information.
func DecodeParts(data []byte) (kind string, id ID, c Content, err error) {
	return decodeParts(nil, data)
}

// decodeParts is DecodeParts with an optional registry whose intern
// table absorbs the repeated protocol strings (kind, node id, field
// names); field values are never interned — their cardinality is
// unbounded.
func decodeParts(r *Registry, data []byte) (kind string, id ID, c Content, err error) {
	d := decoder{buf: data, reg: r}
	v := d.byte()
	if d.err == nil && v != codecVersion {
		return "", ID{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind = d.istring()
	id.Node = NodeID(d.istring())
	id.Seq = d.uint64()
	n := int(d.uint16())
	if d.err != nil {
		return "", ID{}, nil, d.err
	}
	c = make(Content, 0, n)
	for i := 0; i < n; i++ {
		name := d.istring()
		k := Kind(d.byte())
		var val any
		switch k {
		case KindString:
			val = d.string()
		case KindInt:
			val = int64(d.uint64())
		case KindFloat:
			val = math.Float64frombits(d.uint64())
		case KindBool:
			val = d.byte() != 0
		case KindBytes:
			val = d.bytes()
		default:
			if d.err == nil {
				return "", ID{}, nil, fmt.Errorf("tuple: bad field kind %d", k)
			}
		}
		if d.err != nil {
			return "", ID{}, nil, d.err
		}
		c = append(c, Field{Name: name, Value: val})
	}
	if d.err != nil {
		return "", ID{}, nil, d.err
	}
	return kind, id, c, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

type decoder struct {
	buf []byte
	err error
	reg *Registry // optional; enables string interning
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = ErrShortBuffer
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) string() string {
	n := int(d.uint32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// istring is string for low-cardinality protocol strings: it consults
// the registry's intern table so repeated decodes allocate nothing.
func (d *decoder) istring() string {
	n := int(d.uint32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	if d.reg != nil {
		return d.reg.Intern(b)
	}
	return string(b)
}

func (d *decoder) bytes() []byte {
	n := int(d.uint32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
