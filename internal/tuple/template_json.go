package tuple

import (
	"encoding/json"
	"fmt"
)

// jsonFieldPattern is the interchange form of a FieldPattern. The
// exact-match value reuses the Field JSON envelope so every field type
// (including non-finite floats and bytes) survives the trip; the kind
// constraint travels as the Kind.String() name.
type jsonFieldPattern struct {
	Name  string `json:"name,omitempty"`
	Any   bool   `json:"any,omitempty"`
	Kind  string `json:"kind,omitempty"`
	Value *Field `json:"value,omitempty"`
}

// jsonTemplate is the interchange form of a Template, used by the
// gateway RPC protocol to carry read/subscribe queries from non-peer
// clients. Fields round-trip through FieldPattern's own JSON methods.
type jsonTemplate struct {
	Kind   string         `json:"kind,omitempty"`
	Exact  bool           `json:"exact,omitempty"`
	Fields []FieldPattern `json:"fields,omitempty"`
}

func kindFromName(s string) (Kind, error) {
	switch s {
	case "":
		return 0, nil
	case KindString.String():
		return KindString, nil
	case KindInt.String():
		return KindInt, nil
	case KindFloat.String():
		return KindFloat, nil
	case KindBool.String():
		return KindBool, nil
	case KindBytes.String():
		return KindBytes, nil
	}
	return 0, fmt.Errorf("tuple: unknown field kind %q", s)
}

// MarshalJSON implements json.Marshaler.
func (p FieldPattern) MarshalJSON() ([]byte, error) {
	jp := jsonFieldPattern{Name: p.Name, Any: p.Any}
	if p.Any {
		if p.Kind != 0 {
			jp.Kind = p.Kind.String()
		}
	} else {
		f := Field{Name: p.Name, Value: p.Value}
		jp.Value = &f
	}
	return json.Marshal(jp)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *FieldPattern) UnmarshalJSON(data []byte) error {
	var jp jsonFieldPattern
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	p.Name = jp.Name
	p.Any = jp.Any
	p.Kind = 0
	p.Value = nil
	if jp.Any {
		k, err := kindFromName(jp.Kind)
		if err != nil {
			return err
		}
		p.Kind = k
		return nil
	}
	if jp.Value == nil {
		return fmt.Errorf("tuple: field pattern %q has neither any nor value", jp.Name)
	}
	p.Value = jp.Value.Value
	return nil
}

// MarshalTemplateJSON renders a template as JSON, the query counterpart
// of MarshalTupleJSON for RPC surfaces.
func MarshalTemplateJSON(tpl Template) ([]byte, error) {
	return json.Marshal(jsonTemplate{Kind: tpl.Kind, Exact: tpl.Exact, Fields: tpl.Fields})
}

// UnmarshalTemplateJSON rebuilds a template from its JSON form.
func UnmarshalTemplateJSON(data []byte) (Template, error) {
	var jt jsonTemplate
	if err := json.Unmarshal(data, &jt); err != nil {
		return Template{}, fmt.Errorf("tuple: bad template: %w", err)
	}
	return Template{Kind: jt.Kind, Exact: jt.Exact, Fields: jt.Fields}, nil
}
