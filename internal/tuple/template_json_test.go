package tuple

import (
	"math"
	"reflect"
	"testing"
)

func TestTemplateJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		tpl  Template
	}{
		{"match-all", MatchAll()},
		{"kind-only", Match("tota:gradient")},
		{"kind-prefix", Match("tota:*")},
		{"named-eq", Match("tota:flood", Eq(S("name", "field")))},
		{"any-field", Match("", AnyField("payload"))},
		{"any-of-kind", Match("tota:gradient", AnyOfKind("_val", KindFloat))},
		{"positional", Match("k", FieldPattern{Value: int64(7)}, FieldPattern{Any: true})},
		{"exact", Template{Kind: "k", Exact: true, Fields: []FieldPattern{Eq(B("on", true))}}},
		{"nonfinite-float", Match("k", Eq(F("_scope", math.Inf(1))))},
		{"bytes-value", Match("k", Eq(Bin("blob", []byte{0, 1, 0xfe})))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := MarshalTemplateJSON(tc.tpl)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got, err := UnmarshalTemplateJSON(data)
			if err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			if !reflect.DeepEqual(normalizeTpl(got), normalizeTpl(tc.tpl)) {
				t.Fatalf("round trip changed template:\n got %#v\nwant %#v\n(json %s)", got, tc.tpl, data)
			}
		})
	}
}

// normalizeTpl maps a nil Fields slice and an empty one onto the same
// representation: matching behavior is identical, so the round trip is
// allowed to differ there.
func normalizeTpl(tpl Template) Template {
	if len(tpl.Fields) == 0 {
		tpl.Fields = nil
	}
	return tpl
}

func TestTemplateJSONMatchingSurvives(t *testing.T) {
	tpl := Match("tota:flood", Eq(S("name", "notice")))
	data, err := MarshalTemplateJSON(tpl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTemplateJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	match := newTestTuple("tota:flood", Content{S("name", "notice"), I("_ttl", 0)})
	miss := newTestTuple("tota:flood", Content{S("name", "other")})
	if !got.Matches(match) {
		t.Fatal("decoded template no longer matches the tuple the original matched")
	}
	if got.Matches(miss) {
		t.Fatal("decoded template matches a tuple the original rejected")
	}
}

func TestTemplateJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"fields":[{"name":"x"}]}`,                            // neither any nor value
		`{"fields":[{"name":"x","any":true,"kind":"complex"}]}`, // unknown kind
	} {
		if _, err := UnmarshalTemplateJSON([]byte(bad)); err == nil {
			t.Fatalf("bad template %q decoded without error", bad)
		}
	}
}
