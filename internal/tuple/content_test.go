package tuple

import (
	"math"
	"strings"
	"testing"
)

func TestFieldKind(t *testing.T) {
	tests := []struct {
		name string
		give Field
		want Kind
	}{
		{name: "string", give: S("a", "x"), want: KindString},
		{name: "int", give: I("a", 7), want: KindInt},
		{name: "float", give: F("a", 1.5), want: KindFloat},
		{name: "bool", give: B("a", true), want: KindBool},
		{name: "bytes", give: Bin("a", []byte{1}), want: KindBytes},
		{name: "unsupported", give: Field{Name: "a", Value: 3.0 + 0i}, want: 0},
		{name: "plain int is unsupported", give: Field{Name: "a", Value: int(3)}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Kind(); got != tt.want {
				t.Errorf("Kind() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{KindString, "string"},
		{KindInt, "int"},
		{KindFloat, "float"},
		{KindBool, "bool"},
		{KindBytes, "bytes"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestFieldEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Field
		want bool
	}{
		{name: "same string", a: S("k", "v"), b: S("k", "v"), want: true},
		{name: "different value", a: S("k", "v"), b: S("k", "w"), want: false},
		{name: "different name", a: S("k", "v"), b: S("j", "v"), want: false},
		{name: "different kind", a: I("k", 1), b: F("k", 1), want: false},
		{name: "bytes equal", a: Bin("k", []byte{1, 2}), b: Bin("k", []byte{1, 2}), want: true},
		{name: "bytes differ", a: Bin("k", []byte{1, 2}), b: Bin("k", []byte{1, 3}), want: false},
		{name: "nan equals nan", a: F("k", math.NaN()), b: F("k", math.NaN()), want: true},
		{name: "floats equal", a: F("k", 2.5), b: F("k", 2.5), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal (sym) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestContentValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Content
		wantErr bool
	}{
		{name: "empty", give: nil, wantErr: false},
		{name: "ok", give: Content{S("a", "x"), I("b", 1)}, wantErr: false},
		{name: "unnamed ok", give: Content{{Value: "x"}, {Value: int64(2)}}, wantErr: false},
		{name: "bad type", give: Content{{Name: "a", Value: struct{}{}}}, wantErr: true},
		{name: "duplicate name", give: Content{S("a", "x"), I("a", 1)}, wantErr: true},
		{name: "duplicate empty names ok", give: Content{{Value: "x"}, {Value: "y"}}, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestContentAccessors(t *testing.T) {
	c := Content{S("s", "hello"), I("i", 42), F("f", 2.5), B("b", true)}
	if got := c.GetString("s"); got != "hello" {
		t.Errorf("GetString = %q", got)
	}
	if got := c.GetInt("i"); got != 42 {
		t.Errorf("GetInt = %d", got)
	}
	if got := c.GetFloat("f"); got != 2.5 {
		t.Errorf("GetFloat = %v", got)
	}
	if got := c.GetBool("b"); !got {
		t.Error("GetBool = false")
	}
	// Wrong-type and missing lookups return zero values.
	if got := c.GetString("i"); got != "" {
		t.Errorf("GetString on int field = %q", got)
	}
	if got := c.GetInt("nope"); got != 0 {
		t.Errorf("GetInt on missing = %d", got)
	}
	if _, ok := c.Get("nope"); ok {
		t.Error("Get on missing reported ok")
	}
}

func TestContentWith(t *testing.T) {
	c := Content{S("a", "x"), I("n", 1)}
	d := c.With(I("n", 2))
	if c.GetInt("n") != 1 {
		t.Error("With mutated the receiver")
	}
	if d.GetInt("n") != 2 {
		t.Errorf("With did not replace: %v", d)
	}
	e := c.With(F("new", 3))
	if len(e) != 3 || e.GetFloat("new") != 3 {
		t.Errorf("With did not append: %v", e)
	}
}

func TestContentCloneIsDeep(t *testing.T) {
	c := Content{Bin("b", []byte{1, 2, 3})}
	d := c.Clone()
	d[0].Value.([]byte)[0] = 9
	if c[0].Value.([]byte)[0] != 1 {
		t.Error("Clone shares byte slices with the original")
	}
	if Content(nil).Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestContentEqual(t *testing.T) {
	a := Content{S("a", "x"), I("b", 1)}
	b := Content{S("a", "x"), I("b", 1)}
	if !a.Equal(b) {
		t.Error("identical contents not equal")
	}
	if a.Equal(b[:1]) {
		t.Error("different lengths compared equal")
	}
	if a.Equal(Content{S("a", "x"), I("b", 2)}) {
		t.Error("different values compared equal")
	}
}

func TestContentString(t *testing.T) {
	c := Content{S("a", "x"), I("", 7), Bin("raw", []byte{0xab})}
	got := c.String()
	for _, want := range []string{`a="x"`, "7", "raw=0xab"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
