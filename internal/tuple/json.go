package tuple

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// jsonField is the interchange form of a Field: an explicit type tag
// keeps int64/float64 distinct through JSON's single number type and
// carries []byte as base64.
type jsonField struct {
	Name  string          `json:"name,omitempty"`
	Type  string          `json:"type"`
	Value json.RawMessage `json:"value"`
}

// MarshalJSON implements json.Marshaler.
func (f Field) MarshalJSON() ([]byte, error) {
	jf := jsonField{Name: f.Name}
	var err error
	switch v := f.Value.(type) {
	case string:
		jf.Type = "string"
		jf.Value, err = json.Marshal(v)
	case int64:
		jf.Type = "int"
		jf.Value, err = json.Marshal(v)
	case float64:
		jf.Type = "float"
		// JSON has no literal for non-finite numbers and json.Marshal
		// rejects them outright, which would make every tuple with an
		// unbounded scope (+Inf) unrepresentable; carry them as the
		// strings strconv.ParseFloat accepts back.
		if math.IsInf(v, 0) || math.IsNaN(v) {
			jf.Value, err = json.Marshal(strconv.FormatFloat(v, 'g', -1, 64))
		} else {
			jf.Value, err = json.Marshal(v)
		}
	case bool:
		jf.Type = "bool"
		jf.Value, err = json.Marshal(v)
	case []byte:
		jf.Type = "bytes"
		jf.Value, err = json.Marshal(base64.StdEncoding.EncodeToString(v))
	default:
		return nil, fmt.Errorf("%w (%T)", ErrBadValue, f.Value)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(jf)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Field) UnmarshalJSON(data []byte) error {
	var jf jsonField
	if err := json.Unmarshal(data, &jf); err != nil {
		return err
	}
	f.Name = jf.Name
	switch jf.Type {
	case "string":
		var v string
		if err := json.Unmarshal(jf.Value, &v); err != nil {
			return err
		}
		f.Value = v
	case "int":
		var v int64
		if err := json.Unmarshal(jf.Value, &v); err != nil {
			return err
		}
		f.Value = v
	case "float":
		var v float64
		if err := json.Unmarshal(jf.Value, &v); err != nil {
			// Non-finite floats travel as strings ("+Inf", "NaN").
			var s string
			if serr := json.Unmarshal(jf.Value, &s); serr != nil {
				return err
			}
			pv, perr := strconv.ParseFloat(s, 64)
			if perr != nil {
				return fmt.Errorf("tuple: bad float field %q: %w", s, perr)
			}
			v = pv
		}
		f.Value = v
	case "bool":
		var v bool
		if err := json.Unmarshal(jf.Value, &v); err != nil {
			return err
		}
		f.Value = v
	case "bytes":
		var s string
		if err := json.Unmarshal(jf.Value, &s); err != nil {
			return err
		}
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return fmt.Errorf("tuple: bad base64 bytes field: %w", err)
		}
		f.Value = b
	default:
		return fmt.Errorf("tuple: unknown json field type %q", jf.Type)
	}
	return nil
}

// Note: Content is a []Field, so encoding/json handles it element-wise
// through Field's methods; no dedicated methods are needed.

// jsonTuple is the interchange form of a whole tuple.
type jsonTuple struct {
	Kind    string  `json:"kind"`
	ID      string  `json:"id"`
	Content Content `json:"content"`
}

// MarshalTupleJSON renders a tuple as JSON (kind, id, content), the
// counterpart of the binary Encode for tools and logs.
func MarshalTupleJSON(t Tuple) ([]byte, error) {
	if err := t.Content().Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(jsonTuple{
		Kind:    t.Kind(),
		ID:      t.ID().String(),
		Content: t.Content(),
	})
}

// UnmarshalTupleJSON rebuilds a tuple from its JSON form using the
// registry's factory for its kind.
func UnmarshalTupleJSON(r *Registry, data []byte) (Tuple, error) {
	var jt jsonTuple
	if err := json.Unmarshal(data, &jt); err != nil {
		return nil, fmt.Errorf("tuple: %w", err)
	}
	id, err := ParseID(jt.ID)
	if err != nil {
		return nil, err
	}
	return r.New(jt.Kind, id, jt.Content)
}
