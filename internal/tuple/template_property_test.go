package tuple

import (
	"testing"
	"testing/quick"
)

// Property: Filter returns exactly the tuples Matches accepts, in
// order.
func TestFilterConsistentWithMatchesQuick(t *testing.T) {
	f := func(names []string, wantName string) bool {
		var ts []Tuple
		for i, n := range names {
			tt := newTestTuple("q", Content{S("name", n)})
			tt.SetID(ID{Node: "n", Seq: uint64(i + 1)})
			ts = append(ts, tt)
		}
		tpl := Match("q", Eq(S("name", wantName)))
		got := tpl.Filter(ts)
		var want []Tuple
		for _, tt := range ts {
			if tpl.Matches(tt) {
				want = append(want, tt)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a template built from a tuple's own exact fields always
// matches that tuple.
func TestSelfTemplateAlwaysMatchesQuick(t *testing.T) {
	f := func(name, sval string, ival int64, b bool) bool {
		tt := newTestTuple("q", Content{S("name", name), S("s", sval), I("i", ival), B("b", b)})
		tt.SetID(ID{Node: "n", Seq: 1})
		tpl := Match("q",
			Eq(S("name", name)),
			Eq(S("s", sval)),
			Eq(I("i", ival)),
			Eq(B("b", b)),
		)
		return tpl.Matches(tt) && MatchID(tt.ID()).Matches(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: codec round trip preserves template-match results.
func TestMatchSurvivesCodecQuick(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("q2", factoryFor("q2"))
	f := func(name string, v int64, probe string) bool {
		tt := newTestTuple("q2", Content{S("name", name), I("v", v)})
		tt.SetID(ID{Node: "n", Seq: 1})
		data, err := Encode(tt)
		if err != nil {
			return false
		}
		back, err := Decode(r, data)
		if err != nil {
			return false
		}
		tpl := Match("q2", Eq(S("name", probe)))
		return tpl.Matches(tt) == tpl.Matches(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
