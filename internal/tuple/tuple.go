package tuple

import (
	"tota/internal/space"
)

// LocalStore is the restricted view of a node's local tuple space that
// propagation hooks may use for data-adaptive propagation ("adapting the
// propagation pattern depending on the value of some tuples found in the
// propagation nodes") and for tuple-deleting propagation, which the
// paper suggests as the way to supply distributed deletion.
type LocalStore interface {
	// Read returns the locally stored tuples matching the template.
	Read(Template) []Tuple
	// Delete removes and returns the locally stored tuples matching the
	// template.
	Delete(Template) []Tuple
}

// Ctx carries the local context in which a propagation hook runs: which
// node the tuple is at, where it came from, how far it has traveled, the
// node's physical position (when a localization device is present) and
// access to the local tuple space.
type Ctx struct {
	// Self is the node evaluating the hook.
	Self NodeID
	// From is the previous hop; it equals Self at the injection node.
	From NodeID
	// Hop is the number of hops traveled from the source along the path
	// this copy of the tuple arrived on (0 at the injection node).
	Hop int
	// Pos is the node's physical position; HasPos reports whether a
	// localization fix is available.
	Pos    space.Point
	HasPos bool
	// Store is the local tuple space (nil in contexts where access is
	// not permitted, e.g. template matching).
	Store LocalStore
}

// Injected reports whether the hook is running at the injection node.
func (c *Ctx) Injected() bool { return c.Hop == 0 && c.From == c.Self }

// Tuple is the TOTA programming model. It mirrors the paper's abstract
// Tuple class: the middleware implements a general-purpose breadth-first,
// expanding-ring propagation, and each concrete tuple customizes it by
// implementing the hook methods. Embed Base to inherit the defaults
// (store everywhere, flood, content unchanged).
//
// The middleware drives the hooks as follows. When a tuple reaches a
// node (by injection or from a neighbor), the node first derives its
// local copy via Evolve, then calls OnArrive once, then ShouldStore to
// decide whether the copy enters the local tuple space, and finally
// ShouldPropagate to decide whether the local copy is re-broadcast to
// the one-hop neighborhood. When a copy of an already-known tuple
// arrives (same ID), Supersedes decides whether the new copy replaces
// the stored one (e.g. a smaller hop-count arriving over a shorter
// path); replacement re-triggers propagation.
//
// A Tuple must be reconstructible from (Kind, ID, Content) via the
// factory registered for its kind: all state that must survive a network
// hop belongs in the Content. By convention, internal parameters are
// stored in trailing fields whose names start with "_" so positional
// template matching over the application-visible prefix is unaffected.
type Tuple interface {
	// Kind names the concrete tuple type in the codec registry.
	Kind() string
	// ID returns the network-wide identity assigned at injection.
	ID() ID
	// SetID is called once by the middleware at injection time.
	SetID(ID)
	// Content returns the tuple's ordered, typed fields.
	Content() Content

	// ShouldStore reports whether the local copy enters this node's
	// tuple space. Non-storing tuples (pure messages) return false on
	// intermediate nodes.
	ShouldStore(ctx *Ctx) bool
	// ShouldPropagate reports whether this node re-broadcasts its local
	// copy to its one-hop neighbors.
	ShouldPropagate(ctx *Ctx) bool
	// Evolve derives the local copy from the copy received from the
	// previous hop (e.g. incrementing a hop counter). Returning nil
	// means "unchanged"; the middleware then uses the received copy.
	// Evolve must not mutate the receiver.
	Evolve(ctx *Ctx) Tuple
	// Supersedes reports whether this (evolved) copy should replace the
	// already-stored copy with the same ID.
	Supersedes(old Tuple) bool
	// OnArrive runs side effects exactly once per node visit (e.g.
	// deleting matching tuples, as the paper's deleting propagation).
	OnArrive(ctx *Ctx)
}

// Expiring is implemented by tuples with a finite lease: a stored copy
// older than Lease (in the caller's logical time units, e.g. emulator
// seconds) is removed by the engine's expiry sweep and its id is
// tombstoned locally, so the copy cannot be re-adopted. Structures
// whose copies expire thus vanish without an explicit retract — the
// way ephemeral context ages out of the network.
type Expiring interface {
	Tuple
	// Lease returns the copy lifetime; zero or negative means the
	// tuple never expires.
	Lease() float64
}

// Injectable is implemented by tuples that must capture local state at
// injection time — typically the source's physical position, which
// spatially-scoped tuples store in their content so every later hop can
// evaluate the distance from the source. OnInject runs exactly once, at
// the injecting node, after the ID is assigned and before any other
// hook; it returns the tuple to proceed with.
type Injectable interface {
	Tuple
	OnInject(ctx *Ctx) Tuple
}

// Maintained is implemented by tuples whose distributed structure the
// middleware keeps coherent under network dynamics (§3: "the distributed
// tuple structure automatically changes to reflect the new topology").
// The canonical example is the hop-count gradient: Value is the field
// the structure is built on, Step the per-hop increment, and MaxValue
// the scope bound beyond which the tuple is not stored.
type Maintained interface {
	Tuple
	// Value returns the structure value carried by this copy.
	Value() float64
	// WithValue returns a copy of the tuple (same ID) carrying value v.
	WithValue(v float64) Tuple
	// Step returns the per-hop increment applied during propagation.
	Step() float64
	// MaxValue returns the largest value the structure may carry
	// (inclusive); copies beyond it are dropped. Use math.Inf(1) for an
	// unbounded structure.
	MaxValue() float64
}

// Base supplies the default hook implementations: assignable identity,
// store everywhere, flood the whole network, content unchanged, never
// supersede, no side effects. Concrete tuples embed *Base-style by
// value and override the hooks they need, exactly as the paper's
// subclassing of the abstract Tuple class.
type Base struct {
	id ID
}

// ID implements Tuple.
func (b *Base) ID() ID { return b.id }

// SetID implements Tuple.
func (b *Base) SetID(id ID) { b.id = id }

// ShouldStore implements Tuple; the default stores everywhere.
func (*Base) ShouldStore(*Ctx) bool { return true }

// ShouldPropagate implements Tuple; the default floods the network.
func (*Base) ShouldPropagate(*Ctx) bool { return true }

// Evolve implements Tuple; the default keeps the content unchanged.
func (*Base) Evolve(*Ctx) Tuple { return nil }

// Supersedes implements Tuple; the default ignores duplicate arrivals.
func (*Base) Supersedes(Tuple) bool { return false }

// OnArrive implements Tuple; the default has no side effects.
func (*Base) OnArrive(*Ctx) {}
