package tuple

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeID uniquely identifies a TOTA node. Real deployments derive it
// from a hardware address (the paper uses the MAC address); the
// simulator assigns symbolic names.
type NodeID string

// ID uniquely identifies a distributed tuple across the whole network.
// Per the paper (§4.1), contents cannot identify tuples — they change
// during propagation — so each tuple is marked with an id combining the
// injecting node's unique identifier and a per-node progressive counter.
// The id is invisible at the application level; the middleware uses it
// for dedup and maintenance.
type ID struct {
	Node NodeID
	Seq  uint64
}

// IsZero reports whether the id has not been assigned yet.
func (id ID) IsZero() bool { return id.Node == "" && id.Seq == 0 }

// String implements fmt.Stringer, formatting as "node#seq".
func (id ID) String() string {
	return string(id.Node) + "#" + strconv.FormatUint(id.Seq, 10)
}

// ParseID parses the "node#seq" form produced by String.
func ParseID(s string) (ID, error) {
	i := strings.LastIndexByte(s, '#')
	if i < 0 {
		return ID{}, fmt.Errorf("tuple: malformed id %q", s)
	}
	seq, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return ID{}, fmt.Errorf("tuple: malformed id %q: %w", s, err)
	}
	return ID{Node: NodeID(s[:i]), Seq: seq}, nil
}
