package tuple

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newTestRegistry(t *testing.T, kinds ...string) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, k := range kinds {
		if err := r.Register(k, factoryFor(k)); err != nil {
			t.Fatalf("Register(%q): %v", k, err)
		}
	}
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := newTestRegistry(t, "k")
	orig := newTestTuple("k", Content{
		S("s", "héllo"),
		I("i", -12345),
		F("f", math.Pi),
		B("b", true),
		Bin("raw", []byte{0, 1, 2, 255}),
		{Value: "positional"},
	})
	orig.SetID(ID{Node: "node-a", Seq: 42})

	data, err := Encode(orig)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(r, data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind() != "k" {
		t.Errorf("Kind = %q", got.Kind())
	}
	if got.ID() != orig.ID() {
		t.Errorf("ID = %v, want %v", got.ID(), orig.ID())
	}
	if !got.Content().Equal(orig.Content()) {
		t.Errorf("Content = %v, want %v", got.Content(), orig.Content())
	}
}

func TestEncodeRejectsInvalidContent(t *testing.T) {
	bad := newTestTuple("k", Content{{Name: "x", Value: struct{}{}}})
	if _, err := Encode(bad); err == nil {
		t.Error("Encode accepted unsupported field type")
	}
}

func TestDecodeErrors(t *testing.T) {
	r := newTestRegistry(t, "k")
	good, err := Encode(newTestTuple("k", Content{S("a", "b")}))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	t.Run("empty buffer", func(t *testing.T) {
		if _, err := Decode(r, nil); !errors.Is(err, ErrShortBuffer) {
			t.Errorf("err = %v, want ErrShortBuffer", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{99}, good[1:]...)
		if _, err := Decode(r, bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for i := 1; i < len(good); i++ {
			if _, err := Decode(r, good[:i]); err == nil {
				t.Errorf("Decode of %d-byte prefix succeeded", i)
			}
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		other, err := Encode(newTestTuple("mystery", nil))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if _, err := Decode(r, other); err == nil {
			t.Error("Decode of unregistered kind succeeded")
		}
	})
}

func TestRegistryDuplicateAndEmpty(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("k", factoryFor("k")); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := r.Register("k", factoryFor("k")); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := r.Register("", factoryFor("")); err == nil {
		t.Error("empty-kind Register succeeded")
	}
	if err := r.Register("nilf", nil); err == nil {
		t.Error("nil-factory Register succeeded")
	}
	if ks := r.Kinds(); len(ks) != 1 || ks[0] != "k" {
		t.Errorf("Kinds = %v", ks)
	}
}

func TestRegistryClone(t *testing.T) {
	r := newTestRegistry(t, "k")
	orig := newTestTuple("k", Content{Bin("b", []byte{1, 2})})
	orig.SetID(ID{Node: "n", Seq: 1})
	cp, err := r.Clone(orig)
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	cp.Content()[0].Value.([]byte)[0] = 9
	if orig.Content()[0].Value.([]byte)[0] != 1 {
		t.Error("Clone shares content with original")
	}
	if cp.ID() != orig.ID() {
		t.Errorf("Clone changed id: %v", cp.ID())
	}
}

// TestCodecRoundTripQuick property-tests the codec over randomly
// generated contents.
func TestCodecRoundTripQuick(t *testing.T) {
	r := newTestRegistry(t, "q")
	f := func(name string, s string, i int64, fl float64, b bool, raw []byte, node string, seq uint64) bool {
		c := Content{
			{Name: "", Value: s},
			{Name: "", Value: i},
			{Name: "", Value: fl},
			{Name: "", Value: b},
			{Name: "", Value: raw},
		}
		if name != "" {
			c = append(c, Field{Name: name, Value: s})
		}
		orig := newTestTuple("q", c)
		orig.SetID(ID{Node: NodeID(node), Seq: seq})
		data, err := Encode(orig)
		if err != nil {
			return false
		}
		got, err := Decode(r, data)
		if err != nil {
			return false
		}
		return got.ID() == orig.ID() && got.Content().Equal(orig.Content())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIDRoundTrip(t *testing.T) {
	tests := []ID{
		{Node: "a", Seq: 0},
		{Node: "node-17", Seq: 18446744073709551615},
		{Node: "with#hash", Seq: 9},
	}
	for _, id := range tests {
		got, err := ParseID(id.String())
		if err != nil {
			t.Errorf("ParseID(%q): %v", id.String(), err)
			continue
		}
		if got != id {
			t.Errorf("ParseID(%q) = %v, want %v", id.String(), got, id)
		}
	}
}

func TestParseIDErrors(t *testing.T) {
	for _, s := range []string{"", "nohash", "a#notanumber", "a#-1"} {
		if _, err := ParseID(s); err == nil {
			t.Errorf("ParseID(%q) succeeded", s)
		}
	}
}

func TestIDIsZero(t *testing.T) {
	if !(ID{}).IsZero() {
		t.Error("zero ID not IsZero")
	}
	if (ID{Node: "n"}).IsZero() {
		t.Error("non-zero ID reported IsZero")
	}
}
