package tuple

import "strings"

// FieldPattern matches one field of a tuple content. A pattern with
// Any set matches any value (optionally constrained to a Kind); a
// pattern without Any matches a field equal to Value. A non-empty Name
// matches the field with that name wherever it appears; an empty Name
// matches positionally.
type FieldPattern struct {
	Name  string
	Any   bool
	Kind  Kind // optional type constraint when Any is set (0 = any kind)
	Value any  // exact value when Any is unset
}

// AnyField matches any value for the named field.
func AnyField(name string) FieldPattern { return FieldPattern{Name: name, Any: true} }

// AnyOfKind matches any value of kind k for the named field.
func AnyOfKind(name string, k Kind) FieldPattern {
	return FieldPattern{Name: name, Any: true, Kind: k}
}

// Eq matches a field equal to f.
func Eq(f Field) FieldPattern { return FieldPattern{Name: f.Name, Value: f.Value} }

func (p FieldPattern) matchField(f Field) bool {
	if p.Any {
		return p.Kind == 0 || f.Kind() == p.Kind
	}
	return Field{Name: f.Name, Value: p.Value}.Equal(f)
}

func (p FieldPattern) matches(c Content, pos int) bool {
	if p.Name != "" {
		f, ok := c.Get(p.Name)
		return ok && p.matchField(f)
	}
	if pos >= len(c) {
		return false
	}
	return p.matchField(c[pos])
}

// Template is the pattern-matching query used by the TOTA read, delete
// and subscribe primitives. A template matches a tuple when the Kind
// prefix (if any) matches the tuple's kind and every FieldPattern
// matches the tuple's content. With Exact set, the content must not
// carry extra positional fields beyond the template's.
type Template struct {
	Kind   string // "" matches every kind; a trailing "*" matches a prefix
	Exact  bool
	Fields []FieldPattern
}

// Match builds a template that matches tuples of the given kind ("" for
// any) whose content satisfies all patterns.
func Match(kind string, fields ...FieldPattern) Template {
	return Template{Kind: kind, Fields: fields}
}

// MatchAll matches every tuple.
func MatchAll() Template { return Template{} }

// MatchID matches the tuple with exactly the given id (used by the
// middleware's own maintenance machinery and available to tests).
func MatchID(id ID) Template {
	return Template{Fields: []FieldPattern{{Name: "\x00id", Value: id.String()}}}
}

// Matches reports whether the template matches tuple t.
func (tpl Template) Matches(t Tuple) bool {
	if t == nil {
		return false
	}
	if !tpl.kindMatches(t.Kind()) {
		return false
	}
	c := t.Content()
	pos := 0
	for _, p := range tpl.Fields {
		if p.Name == "\x00id" {
			if s, ok := p.Value.(string); !ok || s != t.ID().String() {
				return false
			}
			continue
		}
		if !p.matches(c, pos) {
			return false
		}
		if p.Name == "" {
			pos++
		}
	}
	if tpl.Exact && pos != len(c) {
		// All positional fields must have been consumed.
		named := 0
		for _, p := range tpl.Fields {
			if p.Name != "" && p.Name != "\x00id" {
				named++
			}
		}
		if pos+named != len(c) {
			return false
		}
	}
	return true
}

func (tpl Template) kindMatches(kind string) bool {
	if tpl.Kind == "" {
		return true
	}
	if strings.HasSuffix(tpl.Kind, "*") {
		return strings.HasPrefix(kind, strings.TrimSuffix(tpl.Kind, "*"))
	}
	return tpl.Kind == kind
}

// Filter returns the subset of ts matched by the template, preserving
// order.
func (tpl Template) Filter(ts []Tuple) []Tuple {
	var out []Tuple
	for _, t := range ts {
		if tpl.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}
