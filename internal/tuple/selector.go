package tuple

// Selector identifies the set of tuples an aggregate query ranges over
// and the numeric field it samples from each one. It is the query-side
// counterpart of Template: a Template answers "does this tuple match?",
// a Selector additionally answers "what value does it contribute?".
//
// The zero Field selects existence only: every matching tuple
// contributes the sample 0, which is what COUNT-style aggregates want.
type Selector struct {
	// Kind restricts matches to one tuple kind ("" matches any kind).
	Kind string
	// Name, when non-empty, requires a leading string field
	// ("name", Name) — the convention application tuples use to tag
	// their content.
	Name string
	// Field names the numeric (float or int) field sampled from each
	// matching tuple. When empty, tuples are counted without sampling.
	Field string
}

// Template returns the structural part of the selector as a Template.
func (s Selector) Template() Template {
	if s.Name == "" {
		return Match(s.Kind)
	}
	return Match(s.Kind, Eq(S("name", s.Name)))
}

// Sample extracts the selected value from t. The second result is false
// when t does not carry the selected field as a numeric value, in which
// case the tuple contributes nothing to the aggregate.
func (s Selector) Sample(t Tuple) (float64, bool) {
	if s.Field == "" {
		return 0, true
	}
	f, ok := t.Content().Get(s.Field)
	if !ok {
		return 0, false
	}
	switch v := f.Value.(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	}
	return 0, false
}

// Matches reports whether t is in the selector's range: it must match
// the structural template and carry the sampled field.
func (s Selector) Matches(t Tuple) bool {
	if !s.Template().Matches(t) {
		return false
	}
	_, ok := s.Sample(t)
	return ok
}
