package tuple

import (
	"testing"
)

// FuzzDecodeParts feeds arbitrary bytes to the tuple codec: it must
// never panic, and anything it accepts must re-encode losslessly.
func FuzzDecodeParts(f *testing.F) {
	seed := newTestTuple("k", Content{
		S("s", "x"),
		I("i", -3),
		F("f", 1.5),
		B("b", true),
		Bin("raw", []byte{1, 2}),
	})
	seed.SetID(ID{Node: "n", Seq: 7})
	data, err := Encode(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{codecVersion, 0, 0, 0, 1, 'k'})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, id, c, err := DecodeParts(data)
		if err != nil {
			return
		}
		// Accepted input: rebuilding and re-encoding must succeed and
		// decode back to the same parts.
		tt := newTestTuple(kind, c)
		tt.SetID(id)
		out, err := Encode(tt)
		if err != nil {
			// Contents with duplicate names decode fine but fail
			// validation on encode; that asymmetry is acceptable.
			return
		}
		kind2, id2, c2, err := DecodeParts(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if kind2 != kind || id2 != id || !c2.Equal(c) {
			t.Fatalf("round trip changed parts: %v %v %v vs %v %v %v",
				kind, id, c, kind2, id2, c2)
		}
	})
}
