package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tota/internal/topology"
	"tota/internal/tuple"
)

// Sim errors.
var (
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrNotNeighbor = errors.New("transport: destination is not a neighbor")
)

// SimConfig tunes the simulated radio.
type SimConfig struct {
	// Loss is the independent per-packet drop probability in [0, 1).
	Loss float64
	// LatencyRounds is how many Step calls a packet spends in flight
	// (minimum 1).
	LatencyRounds int
	// Shuffle delivers each round's packets in a random (seeded)
	// permutation instead of send order, exploring the delivery-order
	// races the paper's §6 worries about.
	Shuffle bool
	// Dup is the independent probability that a packet is delivered
	// twice (radio-level duplication the engine must absorb).
	Dup float64
	// Seed makes loss and shuffle decisions reproducible.
	Seed int64
}

// Sim is a deterministic simulated radio network. Nodes attach to it to
// obtain endpoints; the emulator (or a test) drives time by calling
// Step, which delivers every packet sent at least LatencyRounds steps
// earlier. Topology edits notify the attached handlers immediately.
//
// Determinism: packets are delivered in the order they were sent, loss
// is drawn from a seeded source, and neighbor snapshots are sorted.
// All methods are safe for concurrent use, but determinism additionally
// requires the usual emulator discipline of sending from handler
// callbacks and from the step-driving goroutine only.
type Sim struct {
	cfg SimConfig

	mu       sync.Mutex
	graph    *topology.Graph
	handlers map[tuple.NodeID]Handler
	inflight []simPacket
	rng      *rand.Rand
	stats    Stats
}

type simPacket struct {
	from, to tuple.NodeID
	data     []byte
	dueRound int
}

// NewSim creates a simulated network over the given (shared, live)
// topology graph.
func NewSim(g *topology.Graph, cfg SimConfig) *Sim {
	if cfg.LatencyRounds < 1 {
		cfg.LatencyRounds = 1
	}
	return &Sim{
		cfg:      cfg,
		graph:    g,
		handlers: make(map[tuple.NodeID]Handler),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Graph returns the underlying topology graph.
func (s *Sim) Graph() *topology.Graph { return s.graph }

// SetLoss changes the per-packet drop probability at runtime (failure
// injection).
func (s *Sim) SetLoss(p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Loss = p
}

// Attach registers a node and returns its endpoint. The handler may be
// nil initially and set later with Bind (the middleware node needs the
// endpoint at construction time).
func (s *Sim) Attach(id tuple.NodeID, h Handler) *SimEndpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graph.AddNode(id)
	s.handlers[id] = h
	return &SimEndpoint{net: s, id: id}
}

// Bind sets or replaces the handler for an attached node.
func (s *Sim) Bind(id tuple.NodeID, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[id] = h
}

// Detach removes a node from the network (a crash): its links drop, its
// queued packets are discarded, and surviving neighbors are notified.
func (s *Sim) Detach(id tuple.NodeID) {
	s.mu.Lock()
	events := s.graph.RemoveNode(id)
	delete(s.handlers, id)
	kept := s.inflight[:0]
	for _, p := range s.inflight {
		if p.from != id && p.to != id {
			kept = append(kept, p)
		}
	}
	s.inflight = kept
	s.mu.Unlock()
	s.notify(events)
}

// ApplyEdgeEvents forwards externally produced topology changes (e.g.
// from Graph.Recompute or manual edits) to the affected handlers. The
// graph itself must already reflect the change.
func (s *Sim) ApplyEdgeEvents(events []topology.EdgeEvent) {
	s.notify(events)
}

// AddEdge links two nodes and notifies both handlers.
func (s *Sim) AddEdge(a, b tuple.NodeID) {
	if s.graph.AddEdge(a, b) {
		s.notify([]topology.EdgeEvent{{A: a, B: b, Added: true}})
	}
}

// RemoveEdge unlinks two nodes and notifies both handlers.
func (s *Sim) RemoveEdge(a, b tuple.NodeID) {
	if s.graph.RemoveEdge(a, b) {
		s.notify([]topology.EdgeEvent{{A: a, B: b}})
	}
}

func (s *Sim) notify(events []topology.EdgeEvent) {
	for _, e := range events {
		s.mu.Lock()
		ha, hb := s.handlers[e.A], s.handlers[e.B]
		s.mu.Unlock()
		if ha != nil {
			ha.HandleNeighbor(e.B, e.Added)
		}
		if hb != nil {
			hb.HandleNeighbor(e.A, e.Added)
		}
	}
}

// Step advances simulated time by one round, delivering every due
// packet (in send order) to handlers. It returns the number of packets
// delivered.
func (s *Sim) Step() int {
	s.mu.Lock()
	var due, later []simPacket
	for _, p := range s.inflight {
		p.dueRound--
		if p.dueRound <= 0 {
			due = append(due, p)
		} else {
			later = append(later, p)
		}
	}
	s.inflight = later
	if s.cfg.Shuffle {
		s.rng.Shuffle(len(due), func(i, j int) {
			due[i], due[j] = due[j], due[i]
		})
	}
	s.mu.Unlock()

	delivered := 0
	for _, p := range due {
		s.mu.Lock()
		h := s.handlers[p.to]
		linked := s.graph.HasEdge(p.from, p.to)
		if h == nil || !linked {
			s.stats.Dropped++
			s.mu.Unlock()
			continue
		}
		s.stats.Delivered++
		s.mu.Unlock()
		h.HandlePacket(p.from, p.data)
		delivered++
	}
	return delivered
}

// RunUntilQuiet steps until no packets remain in flight or maxSteps is
// reached, returning the number of steps taken. Handlers typically send
// more packets while handling, so this runs a whole propagation wave to
// quiescence.
func (s *Sim) RunUntilQuiet(maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		s.mu.Lock()
		pending := len(s.inflight)
		s.mu.Unlock()
		if pending == 0 {
			return i
		}
		s.Step()
	}
	return maxSteps
}

// Pending returns the number of packets currently in flight.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Stats returns a snapshot of the traffic counters.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Sim) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

func (s *Sim) send(from, to tuple.NodeID, data []byte) {
	if s.cfg.Loss > 0 && s.rng.Float64() < s.cfg.Loss {
		s.stats.Dropped++
		s.stats.Sent++
		return
	}
	s.stats.Sent++
	copies := 1
	if s.cfg.Dup > 0 && s.rng.Float64() < s.cfg.Dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		s.inflight = append(s.inflight, simPacket{
			from:     from,
			to:       to,
			data:     data,
			dueRound: s.cfg.LatencyRounds,
		})
	}
}

// SimEndpoint is one node's attachment to a Sim network.
type SimEndpoint struct {
	net *Sim
	id  tuple.NodeID
}

var _ Sender = (*SimEndpoint)(nil)

// Self implements Sender.
func (e *SimEndpoint) Self() tuple.NodeID { return e.id }

// Neighbors implements Sender.
func (e *SimEndpoint) Neighbors() []tuple.NodeID {
	return e.net.graph.Neighbors(e.id)
}

// Broadcast implements Sender, enqueueing one copy per current
// neighbor (the radio's one-hop broadcast).
func (e *SimEndpoint) Broadcast(data []byte) error {
	nbrs := e.net.graph.Neighbors(e.id)
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, ok := e.net.handlers[e.id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	e.net.stats.Broadcasts++
	for _, n := range nbrs {
		e.net.send(e.id, n, data)
	}
	return nil
}

// Send implements Sender.
func (e *SimEndpoint) Send(to tuple.NodeID, data []byte) error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, ok := e.net.handlers[e.id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	if !e.net.graph.HasEdge(e.id, to) {
		return fmt.Errorf("%w: %s -> %s", ErrNotNeighbor, e.id, to)
	}
	e.net.send(e.id, to, data)
	return nil
}
