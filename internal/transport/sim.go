package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tota/internal/topology"
	"tota/internal/tuple"
)

// Sim errors.
var (
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrNotNeighbor = errors.New("transport: destination is not a neighbor")
)

// SimConfig tunes the simulated radio.
type SimConfig struct {
	// Loss is the independent per-packet drop probability in [0, 1).
	Loss float64
	// LatencyRounds is how many Step calls a packet spends in flight
	// (minimum 1).
	LatencyRounds int
	// Shuffle delivers each round's packets in a random (seeded)
	// permutation instead of send order, exploring the delivery-order
	// races the paper's §6 worries about.
	Shuffle bool
	// Dup is the independent probability that a packet is delivered
	// twice (radio-level duplication the engine must absorb).
	Dup float64
	// Seed makes loss and shuffle decisions reproducible.
	Seed int64
	// Workers bounds the delivery worker pool used by Step. Zero means
	// GOMAXPROCS; one forces serial delivery. Whatever the value, a
	// seeded run produces bit-identical results (see Step).
	Workers int
}

// Sim is a deterministic simulated radio network. Nodes attach to it to
// obtain endpoints; the emulator (or a test) drives time by calling
// Step, which delivers every packet sent at least LatencyRounds steps
// earlier. Topology edits notify the attached handlers immediately.
//
// Determinism: each destination's packets are delivered in send order by
// a single worker, loss is drawn from a seeded source in a deterministic
// merge order, and neighbor snapshots are sorted. All methods are safe
// for concurrent use, but determinism additionally requires the usual
// emulator discipline: handler callbacks (and their reactions) send only
// from the node being delivered to, and topology edits happen only from
// the step-driving goroutine between Step calls.
type Sim struct {
	cfg SimConfig

	mu         sync.Mutex
	graph      *topology.Graph
	handlers   map[tuple.NodeID]Handler
	inflight   []simPacket
	rng        *rand.Rand
	stats      Stats
	delivering bool
	// staged collects sends produced inside handler callbacks during a
	// Step's delivery phase, keyed by source node; slice order is the
	// per-source send sequence. The merge at the end of the step replays
	// them in (source, seq) order so loss/dup draws and in-flight order
	// are identical whatever the worker scheduling.
	staged map[tuple.NodeID][]stagedSend
}

type simPacket struct {
	from, to tuple.NodeID
	data     []byte
	dueRound int
}

type stagedSend struct {
	to   tuple.NodeID
	data []byte
}

// NewSim creates a simulated network over the given (shared, live)
// topology graph.
func NewSim(g *topology.Graph, cfg SimConfig) *Sim {
	if cfg.LatencyRounds < 1 {
		cfg.LatencyRounds = 1
	}
	return &Sim{
		cfg:      cfg,
		graph:    g,
		handlers: make(map[tuple.NodeID]Handler),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		staged:   make(map[tuple.NodeID][]stagedSend),
	}
}

// Graph returns the underlying topology graph.
func (s *Sim) Graph() *topology.Graph { return s.graph }

// SetLoss changes the per-packet drop probability at runtime (failure
// injection).
func (s *Sim) SetLoss(p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Loss = p
}

// Attach registers a node and returns its endpoint. The handler may be
// nil initially and set later with Bind (the middleware node needs the
// endpoint at construction time).
func (s *Sim) Attach(id tuple.NodeID, h Handler) *SimEndpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graph.AddNode(id)
	s.handlers[id] = h
	return &SimEndpoint{net: s, id: id}
}

// Bind sets or replaces the handler for an attached node.
func (s *Sim) Bind(id tuple.NodeID, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[id] = h
}

// Detach removes a node from the network (a crash): its links drop, its
// queued packets are discarded, and surviving neighbors are notified.
func (s *Sim) Detach(id tuple.NodeID) {
	s.mu.Lock()
	events := s.graph.RemoveNode(id)
	delete(s.handlers, id)
	kept := s.inflight[:0]
	for _, p := range s.inflight {
		if p.from != id && p.to != id {
			kept = append(kept, p)
		}
	}
	s.inflight = kept
	s.mu.Unlock()
	s.notify(events)
}

// ApplyEdgeEvents forwards externally produced topology changes (e.g.
// from Graph.Recompute or manual edits) to the affected handlers. The
// graph itself must already reflect the change.
func (s *Sim) ApplyEdgeEvents(events []topology.EdgeEvent) {
	s.notify(events)
}

// AddEdge links two nodes and notifies both handlers.
func (s *Sim) AddEdge(a, b tuple.NodeID) {
	if s.graph.AddEdge(a, b) {
		s.notify([]topology.EdgeEvent{{A: a, B: b, Added: true}})
	}
}

// RemoveEdge unlinks two nodes and notifies both handlers.
func (s *Sim) RemoveEdge(a, b tuple.NodeID) {
	if s.graph.RemoveEdge(a, b) {
		s.notify([]topology.EdgeEvent{{A: a, B: b}})
	}
}

func (s *Sim) notify(events []topology.EdgeEvent) {
	for _, e := range events {
		s.mu.Lock()
		ha, hb := s.handlers[e.A], s.handlers[e.B]
		s.mu.Unlock()
		if ha != nil {
			ha.HandleNeighbor(e.B, e.Added)
		}
		if hb != nil {
			hb.HandleNeighbor(e.A, e.Added)
		}
	}
}

// destGroup is one round's packets for a single destination, in send
// order. Exactly one worker owns a group, so the destination's handler
// calls stay serialized and ordered.
type destGroup struct {
	to      tuple.NodeID
	h       Handler
	packets []simPacket
}

// Step advances simulated time by one round, delivering every due packet
// to handlers and returning the number delivered. Packets are
// partitioned by destination: each destination's packets are handled in
// send order by a single worker, while distinct destinations proceed
// concurrently on a pool bounded by SimConfig.Workers. Sends produced
// inside handler callbacks are staged and merged in deterministic
// (source node, send sequence) order after all workers finish, so a
// seeded run is bit-identical at any worker count or GOMAXPROCS.
func (s *Sim) Step() int {
	s.mu.Lock()
	// Age packets in place: surviving packets keep the inflight backing
	// array (no per-round reallocation), due ones are copied out.
	var due []simPacket
	kept := s.inflight[:0]
	for _, p := range s.inflight {
		p.dueRound--
		if p.dueRound <= 0 {
			due = append(due, p)
		} else {
			kept = append(kept, p)
		}
	}
	s.inflight = kept
	if s.cfg.Shuffle {
		s.rng.Shuffle(len(due), func(i, j int) {
			due[i], due[j] = due[j], due[i]
		})
	}
	if len(due) == 0 {
		s.mu.Unlock()
		return 0
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var delivered, droppedLinks int64
	if workers <= 1 {
		// Serial fast path: deliver in due order without building
		// destination groups. Per-destination order is the due order
		// filtered by destination — exactly what the groups preserve —
		// and each source's staged sends depend only on its own delivery
		// order, so this is bit-identical to the pooled path.
		hs := make([]Handler, len(due))
		dropped := int64(0)
		for i, p := range due {
			if hs[i] = s.handlers[p.to]; hs[i] == nil {
				dropped++
			}
		}
		s.stats.Dropped += dropped
		s.delivering = true
		s.mu.Unlock()
		for i, p := range due {
			h := hs[i]
			if h == nil {
				continue
			}
			if !s.graph.HasEdge(p.from, p.to) {
				droppedLinks++
				continue
			}
			h.HandlePacket(p.from, p.data)
			delivered++
		}
	} else {
		// Partition by destination (preserving per-destination order) and
		// resolve handlers once; packets to unknown nodes drop immediately.
		groups := make([]*destGroup, 0, 16)
		byDest := make(map[tuple.NodeID]*destGroup, 16)
		dropped := int64(0)
		for _, p := range due {
			g, ok := byDest[p.to]
			if !ok {
				h := s.handlers[p.to]
				if h == nil {
					dropped++
					continue
				}
				g = &destGroup{to: p.to, h: h}
				byDest[p.to] = g
				groups = append(groups, g)
			}
			g.packets = append(g.packets, p)
		}
		s.stats.Dropped += dropped
		s.delivering = true
		s.mu.Unlock()
		delivered, droppedLinks = s.deliverGroups(groups, workers)
	}

	s.mu.Lock()
	s.delivering = false
	s.stats.Delivered += delivered
	s.stats.Dropped += droppedLinks
	s.mergeStagedLocked()
	s.mu.Unlock()
	return int(delivered)
}

// deliverGroups runs the delivery phase over the destination groups,
// inline when the pool would not help, otherwise on a bounded worker
// pool. Both paths produce identical results: ordering guarantees come
// from per-destination ownership plus the staged-send merge, not from
// scheduling.
func (s *Sim) deliverGroups(groups []*destGroup, workers int) (delivered, dropped int64) {
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			d, dr := s.deliverGroup(g)
			delivered += d
			dropped += dr
		}
		return delivered, dropped
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var d, dr int64
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(groups)) {
					break
				}
				gd, gdr := s.deliverGroup(groups[i])
				d += gd
				dr += gdr
			}
			atomic.AddInt64(&delivered, d)
			atomic.AddInt64(&dropped, dr)
		}()
	}
	wg.Wait()
	return delivered, dropped
}

// deliverGroup hands one destination's packets to its handler in order.
// The link check is per-packet: a handler reaction may not edit the
// topology mid-step, but earlier rounds' edits must still gate delivery.
func (s *Sim) deliverGroup(g *destGroup) (delivered, dropped int64) {
	for _, p := range g.packets {
		if !s.graph.HasEdge(p.from, p.to) {
			dropped++
			continue
		}
		g.h.HandlePacket(p.from, p.data)
		delivered++
	}
	return delivered, dropped
}

// mergeStagedLocked replays the sends staged during the delivery phase
// in (source node, send sequence) order, consuming the seeded rng for
// loss/dup decisions in that same deterministic order.
func (s *Sim) mergeStagedLocked() {
	if len(s.staged) == 0 {
		return
	}
	sources := make([]tuple.NodeID, 0, len(s.staged))
	for src := range s.staged {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	for _, src := range sources {
		for _, snd := range s.staged[src] {
			s.commitSendLocked(src, snd.to, snd.data)
		}
		delete(s.staged, src)
	}
}

// RunUntilQuiet steps until no packets remain in flight or maxSteps is
// reached, returning the number of steps taken. Handlers typically send
// more packets while handling, so this runs a whole propagation wave to
// quiescence.
func (s *Sim) RunUntilQuiet(maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		s.mu.Lock()
		pending := len(s.inflight)
		s.mu.Unlock()
		if pending == 0 {
			return i
		}
		s.Step()
	}
	return maxSteps
}

// Pending returns the number of packets currently in flight.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Stats returns a snapshot of the traffic counters.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Sim) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// send enqueues one transmission. During a Step's delivery phase the
// send is staged (rng untouched) for the deterministic merge; otherwise
// it commits immediately.
func (s *Sim) send(from, to tuple.NodeID, data []byte) {
	if s.delivering {
		s.staged[from] = append(s.staged[from], stagedSend{to: to, data: data})
		return
	}
	s.commitSendLocked(from, to, data)
}

func (s *Sim) commitSendLocked(from, to tuple.NodeID, data []byte) {
	if s.cfg.Loss > 0 && s.rng.Float64() < s.cfg.Loss {
		s.stats.Dropped++
		s.stats.Sent++
		return
	}
	s.stats.Sent++
	copies := 1
	if s.cfg.Dup > 0 && s.rng.Float64() < s.cfg.Dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		s.inflight = append(s.inflight, simPacket{
			from:     from,
			to:       to,
			data:     data,
			dueRound: s.cfg.LatencyRounds,
		})
	}
}

// SimEndpoint is one node's attachment to a Sim network.
type SimEndpoint struct {
	net *Sim
	id  tuple.NodeID
}

var _ Sender = (*SimEndpoint)(nil)

// Self implements Sender.
func (e *SimEndpoint) Self() tuple.NodeID { return e.id }

// Neighbors implements Sender.
func (e *SimEndpoint) Neighbors() []tuple.NodeID {
	return e.net.graph.Neighbors(e.id)
}

// Broadcast implements Sender, enqueueing one copy per current
// neighbor (the radio's one-hop broadcast). The payload slice is shared,
// not copied: receivers must treat packet data as read-only.
func (e *SimEndpoint) Broadcast(data []byte) error {
	nbrs := e.net.graph.Neighbors(e.id)
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, ok := e.net.handlers[e.id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	e.net.stats.Broadcasts++
	for _, n := range nbrs {
		e.net.send(e.id, n, data)
	}
	return nil
}

// Send implements Sender.
func (e *SimEndpoint) Send(to tuple.NodeID, data []byte) error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, ok := e.net.handlers[e.id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	if !e.net.graph.HasEdge(e.id, to) {
		return fmt.Errorf("%w: %s -> %s", ErrNotNeighbor, e.id, to)
	}
	e.net.send(e.id, to, data)
	return nil
}
