package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tota/internal/topology"
	"tota/internal/tuple"
)

// Sim errors.
var (
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrNotNeighbor = errors.New("transport: destination is not a neighbor")
)

// SimConfig tunes the simulated radio.
type SimConfig struct {
	// Loss is the independent per-packet drop probability in [0, 1).
	Loss float64
	// LatencyRounds is how many Step calls a packet spends in flight
	// (minimum 1).
	LatencyRounds int
	// Shuffle delivers each round's packets in a random (seeded)
	// permutation instead of send order, exploring the delivery-order
	// races the paper's §6 worries about.
	Shuffle bool
	// Dup is the independent probability that a packet is delivered
	// twice (radio-level duplication the engine must absorb).
	Dup float64
	// Seed makes loss and shuffle decisions reproducible.
	Seed int64
	// Workers bounds the delivery worker pool used by Step. Zero means
	// GOMAXPROCS; one forces serial delivery. Whatever the value, a
	// seeded run produces bit-identical results (see Step).
	Workers int
	// MaxInbound bounds how many packets may be queued toward one
	// destination at once. When a send would exceed the bound, the
	// OLDEST queued packet for that destination is shed (counted in
	// Stats.Shed): under overload, fresher state wins. Zero disables
	// the bound.
	MaxInbound int
}

// linkKey identifies one direction of a link for per-link fault
// overrides (loss and delay are asymmetric: a->b and b->a are distinct
// keys).
type linkKey struct {
	from, to tuple.NodeID
}

// linkDelay is a per-link latency override: base rounds plus a uniform
// random jitter of [0, jitter] extra rounds per packet.
type linkDelay struct {
	rounds, jitter int
}

// Sim is a deterministic simulated radio network. Nodes attach to it to
// obtain endpoints; the emulator (or a test) drives time by calling
// Step, which delivers every packet sent at least LatencyRounds steps
// earlier. Topology edits notify the attached handlers immediately.
//
// Determinism: each destination's packets are delivered in send order by
// a single worker, loss is drawn from a seeded source in a deterministic
// merge order, and neighbor snapshots are sorted. All methods are safe
// for concurrent use, but determinism additionally requires the usual
// emulator discipline: handler callbacks (and their reactions) send only
// from the node being delivered to, and topology edits happen only from
// the step-driving goroutine between Step calls.
type Sim struct {
	cfg SimConfig

	// rounds counts Step calls (atomic: scraped lock-free as the trace
	// clock and the rounds-per-second throughput metric).
	rounds atomic.Int64

	mu         sync.Mutex
	graph      *topology.Graph
	handlers   map[tuple.NodeID]Handler
	inflight   []simPacket
	rng        *rand.Rand
	stats      Stats
	delivering bool
	// staging mirrors delivering for caller-managed parallel phases
	// (see StageSends): while set, sends are staged instead of
	// committed so the rng is untouched until the deterministic merge.
	staging bool
	// staged collects sends produced inside handler callbacks during a
	// Step's delivery phase, keyed by source node; slice order is the
	// per-source send sequence. The merge at the end of the step replays
	// them in (source, seq) order so loss/dup draws and in-flight order
	// are identical whatever the worker scheduling.
	staged map[tuple.NodeID][]stagedSend

	// Fault-injection state, mutated only between Steps (same
	// discipline as topology edits) and read under mu.
	// linkLoss overrides cfg.Loss for one link direction.
	linkLoss map[linkKey]float64
	// linkDelays overrides cfg.LatencyRounds (+ jitter) per direction.
	linkDelays map[linkKey]linkDelay
	// corrupt is the per-packet probability of injected byte flips.
	corrupt float64
	// partition, when non-empty, severs the named node set from the
	// rest: packets crossing the cut are discarded at delivery time
	// with no neighbor events (the engines must notice on their own).
	partition map[tuple.NodeID]struct{}
	// paused nodes keep their links but process nothing: packets
	// addressed to them are held in flight until Resume.
	paused map[tuple.NodeID]struct{}
}

type simPacket struct {
	from, to tuple.NodeID
	data     []byte
	dueRound int
}

type stagedSend struct {
	to   tuple.NodeID
	data []byte
}

// NewSim creates a simulated network over the given (shared, live)
// topology graph.
func NewSim(g *topology.Graph, cfg SimConfig) *Sim {
	if cfg.LatencyRounds < 1 {
		cfg.LatencyRounds = 1
	}
	return &Sim{
		cfg:      cfg,
		graph:    g,
		handlers: make(map[tuple.NodeID]Handler),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		staged:   make(map[tuple.NodeID][]stagedSend),
	}
}

// Graph returns the underlying topology graph.
func (s *Sim) Graph() *topology.Graph { return s.graph }

// SetLoss changes the per-packet drop probability at runtime (failure
// injection).
func (s *Sim) SetLoss(p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Loss = p
}

// SetDup changes the per-packet duplication probability at runtime.
func (s *Sim) SetDup(p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Dup = p
}

// SetDelay changes the base in-flight latency (in Step rounds, minimum
// 1) at runtime. Already queued packets keep their original due round.
func (s *Sim) SetDelay(rounds int) {
	if rounds < 1 {
		rounds = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.LatencyRounds = rounds
}

// SetLinkLoss overrides the drop probability for the from->to direction
// of one link (asymmetric: set both directions for a symmetric fault).
// A negative p removes the override, restoring the global loss.
func (s *Sim) SetLinkLoss(from, to tuple.NodeID, p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p < 0 {
		delete(s.linkLoss, linkKey{from, to})
		return
	}
	if s.linkLoss == nil {
		s.linkLoss = make(map[linkKey]float64)
	}
	s.linkLoss[linkKey{from, to}] = p
}

// SetLinkDelay overrides the latency for the from->to direction of one
// link: rounds base latency plus a seeded uniform jitter of up to
// jitter extra rounds per packet. rounds < 1 removes the override.
func (s *Sim) SetLinkDelay(from, to tuple.NodeID, rounds, jitter int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rounds < 1 {
		delete(s.linkDelays, linkKey{from, to})
		return
	}
	if jitter < 0 {
		jitter = 0
	}
	if s.linkDelays == nil {
		s.linkDelays = make(map[linkKey]linkDelay)
	}
	s.linkDelays[linkKey{from, to}] = linkDelay{rounds: rounds, jitter: jitter}
}

// SetCorrupt changes the probability that a queued packet gets random
// byte flips injected (fed to the receiver through the real wire
// decoder). The original payload bytes are never modified — corruption
// copies first, because payloads are shared with sender-side caches.
func (s *Sim) SetCorrupt(p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corrupt = p
}

// SetPartition severs the given node set from the rest of the network:
// packets crossing the cut (either direction) are discarded at
// delivery time and counted in Stats.Blocked. Unlike RemoveEdge, no
// neighbor events fire — engines on both sides must detect the
// silence themselves, which is exactly what partition faults test.
// An empty set heals the partition.
func (s *Sim) SetPartition(nodes ...tuple.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(nodes) == 0 {
		s.partition = nil
		return
	}
	s.partition = make(map[tuple.NodeID]struct{}, len(nodes))
	for _, id := range nodes {
		s.partition[id] = struct{}{}
	}
}

// Pause suspends a node's packet processing while keeping its links:
// packets addressed to it are held in flight (not dropped) until
// Resume. Models GC stalls, sleep states, or overloaded hosts.
func (s *Sim) Pause(id tuple.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.paused == nil {
		s.paused = make(map[tuple.NodeID]struct{})
	}
	s.paused[id] = struct{}{}
}

// Resume lifts a Pause; held packets deliver on the next Step.
func (s *Sim) Resume(id tuple.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.paused, id)
}

// Paused reports whether a node is currently paused.
func (s *Sim) Paused(id tuple.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.paused[id]
	return ok
}

// SetMaxInbound changes the per-destination queue bound at runtime
// (zero disables shedding).
func (s *Sim) SetMaxInbound(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.MaxInbound = n
}

// Attach registers a node and returns its endpoint. The handler may be
// nil initially and set later with Bind (the middleware node needs the
// endpoint at construction time).
func (s *Sim) Attach(id tuple.NodeID, h Handler) *SimEndpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graph.AddNode(id)
	s.handlers[id] = h
	return &SimEndpoint{net: s, id: id}
}

// Bind sets or replaces the handler for an attached node.
func (s *Sim) Bind(id tuple.NodeID, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[id] = h
}

// Detach removes a node from the network (a crash): its links drop, its
// queued packets are discarded, and surviving neighbors are notified.
func (s *Sim) Detach(id tuple.NodeID) {
	s.mu.Lock()
	events := s.graph.RemoveNode(id)
	delete(s.handlers, id)
	delete(s.paused, id)
	kept := s.inflight[:0]
	for _, p := range s.inflight {
		if p.from != id && p.to != id {
			kept = append(kept, p)
		}
	}
	clearPacketTail(s.inflight, len(kept))
	s.inflight = kept
	s.mu.Unlock()
	s.notify(events)
}

// ApplyEdgeEvents forwards externally produced topology changes (e.g.
// from Graph.Recompute or manual edits) to the affected handlers. The
// graph itself must already reflect the change.
func (s *Sim) ApplyEdgeEvents(events []topology.EdgeEvent) {
	s.notify(events)
}

// AddEdge links two nodes and notifies both handlers.
func (s *Sim) AddEdge(a, b tuple.NodeID) {
	if s.graph.AddEdge(a, b) {
		s.notify([]topology.EdgeEvent{{A: a, B: b, Added: true}})
	}
}

// RemoveEdge unlinks two nodes and notifies both handlers.
func (s *Sim) RemoveEdge(a, b tuple.NodeID) {
	if s.graph.RemoveEdge(a, b) {
		s.notify([]topology.EdgeEvent{{A: a, B: b}})
	}
}

func (s *Sim) notify(events []topology.EdgeEvent) {
	for _, e := range events {
		s.mu.Lock()
		ha, hb := s.handlers[e.A], s.handlers[e.B]
		s.mu.Unlock()
		if ha != nil {
			ha.HandleNeighbor(e.B, e.Added)
		}
		if hb != nil {
			hb.HandleNeighbor(e.A, e.Added)
		}
	}
}

// destGroup is one round's packets for a single destination, in send
// order. Exactly one worker owns a group, so the destination's handler
// calls stay serialized and ordered.
type destGroup struct {
	to      tuple.NodeID
	h       Handler
	packets []simPacket
}

// Step advances simulated time by one round, delivering every due packet
// to handlers and returning the number delivered. Packets are
// partitioned by destination: each destination's packets are handled in
// send order by a single worker, while distinct destinations proceed
// concurrently on a pool bounded by SimConfig.Workers. Sends produced
// inside handler callbacks are staged and merged in deterministic
// (source node, send sequence) order after all workers finish, so a
// seeded run is bit-identical at any worker count or GOMAXPROCS.
func (s *Sim) Step() int {
	s.rounds.Add(1)
	s.mu.Lock()
	// Age packets in place: surviving packets keep the inflight backing
	// array (no per-round reallocation), due ones are copied out.
	var due []simPacket
	kept := s.inflight[:0]
	for _, p := range s.inflight {
		p.dueRound--
		if p.dueRound <= 0 {
			if len(s.partition) != 0 && s.crossesPartitionLocked(p.from, p.to) {
				// The cut severed this packet mid-flight: discard it
				// silently (no neighbor event — partitions are exactly
				// the fault where nobody tells you).
				s.stats.Blocked++
				continue
			}
			if _, held := s.paused[p.to]; held {
				// Destination is paused: hold the packet until Resume
				// by keeping it one round from due.
				p.dueRound = 1
				kept = append(kept, p)
				continue
			}
			due = append(due, p)
		} else {
			kept = append(kept, p)
		}
	}
	clearPacketTail(s.inflight, len(kept))
	s.inflight = kept
	if s.cfg.Shuffle {
		s.rng.Shuffle(len(due), func(i, j int) {
			due[i], due[j] = due[j], due[i]
		})
	}
	if len(due) == 0 {
		s.mu.Unlock()
		return 0
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var delivered, droppedLinks int64
	if workers <= 1 {
		// Serial fast path: deliver in due order without building
		// destination groups. Per-destination order is the due order
		// filtered by destination — exactly what the groups preserve —
		// and each source's staged sends depend only on its own delivery
		// order, so this is bit-identical to the pooled path.
		hs := make([]Handler, len(due))
		dropped := int64(0)
		for i, p := range due {
			if hs[i] = s.handlers[p.to]; hs[i] == nil {
				dropped++
			}
		}
		s.stats.Dropped += dropped
		s.delivering = true
		s.mu.Unlock()
		for i, p := range due {
			h := hs[i]
			if h == nil {
				continue
			}
			if !s.graph.HasEdge(p.from, p.to) {
				droppedLinks++
				continue
			}
			h.HandlePacket(p.from, p.data)
			delivered++
		}
	} else {
		// Partition by destination (preserving per-destination order) and
		// resolve handlers once; packets to unknown nodes drop immediately.
		groups := make([]*destGroup, 0, 16)
		byDest := make(map[tuple.NodeID]*destGroup, 16)
		dropped := int64(0)
		for _, p := range due {
			g, ok := byDest[p.to]
			if !ok {
				h := s.handlers[p.to]
				if h == nil {
					dropped++
					continue
				}
				g = &destGroup{to: p.to, h: h}
				byDest[p.to] = g
				groups = append(groups, g)
			}
			g.packets = append(g.packets, p)
		}
		s.stats.Dropped += dropped
		s.delivering = true
		s.mu.Unlock()
		delivered, droppedLinks = s.deliverGroups(groups, workers)
	}

	s.mu.Lock()
	s.delivering = false
	s.stats.Delivered += delivered
	s.stats.Dropped += droppedLinks
	s.mergeStagedLocked()
	s.mu.Unlock()
	return int(delivered)
}

// deliverGroups runs the delivery phase over the destination groups,
// inline when the pool would not help, otherwise on a bounded worker
// pool. Both paths produce identical results: ordering guarantees come
// from per-destination ownership plus the staged-send merge, not from
// scheduling.
func (s *Sim) deliverGroups(groups []*destGroup, workers int) (delivered, dropped int64) {
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			d, dr := s.deliverGroup(g)
			delivered += d
			dropped += dr
		}
		return delivered, dropped
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var d, dr int64
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(groups)) {
					break
				}
				gd, gdr := s.deliverGroup(groups[i])
				d += gd
				dr += gdr
			}
			atomic.AddInt64(&delivered, d)
			atomic.AddInt64(&dropped, dr)
		}()
	}
	wg.Wait()
	return delivered, dropped
}

// deliverGroup hands one destination's packets to its handler in order.
// The link check is per-packet: a handler reaction may not edit the
// topology mid-step, but earlier rounds' edits must still gate delivery.
func (s *Sim) deliverGroup(g *destGroup) (delivered, dropped int64) {
	for _, p := range g.packets {
		if !s.graph.HasEdge(p.from, p.to) {
			dropped++
			continue
		}
		g.h.HandlePacket(p.from, p.data)
		delivered++
	}
	return delivered, dropped
}

// mergeStagedLocked replays the sends staged during the delivery phase
// in (source node, send sequence) order, consuming the seeded rng for
// loss/dup decisions in that same deterministic order.
func (s *Sim) mergeStagedLocked() {
	if len(s.staged) == 0 {
		return
	}
	sources := make([]tuple.NodeID, 0, len(s.staged))
	for src := range s.staged {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	for _, src := range sources {
		for _, snd := range s.staged[src] {
			s.commitSendLocked(src, snd.to, snd.data)
		}
		delete(s.staged, src)
	}
}

// StageSends runs fn with send-staging enabled: every transmission
// produced while fn executes — typically by node phases running on
// several shard workers at once — is parked in the staged map instead
// of drawing from the seeded rng, and is committed afterwards in
// (source node, send sequence) order by the same deterministic merge
// Step uses for handler callbacks. Because the merge order is sorted
// by source id, the committed rng sequence is identical to what a
// serial sweep of the nodes in id order would have produced — which is
// exactly why sharded and serial emulator ticks stay bit-identical.
//
// fn must not call Step, Detach or other whole-Sim operations; sends
// (Broadcast/Send) are the only Sim interaction expected inside.
func (s *Sim) StageSends(fn func()) {
	s.mu.Lock()
	s.staging = true
	s.mu.Unlock()
	fn()
	s.mu.Lock()
	s.staging = false
	s.mergeStagedLocked()
	s.mu.Unlock()
}

// PausedSnapshot returns a copy of the paused node set (nil when no
// node is paused), letting a driver test pause state once per phase
// instead of once per node under the Sim lock.
func (s *Sim) PausedSnapshot() map[tuple.NodeID]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.paused) == 0 {
		return nil
	}
	out := make(map[tuple.NodeID]struct{}, len(s.paused))
	for id := range s.paused {
		out[id] = struct{}{}
	}
	return out
}

// RunUntilQuiet steps until no packets remain in flight or maxSteps is
// reached, returning the number of steps taken. Handlers typically send
// more packets while handling, so this runs a whole propagation wave to
// quiescence.
func (s *Sim) RunUntilQuiet(maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		s.mu.Lock()
		pending := len(s.inflight)
		s.mu.Unlock()
		if pending == 0 {
			return i
		}
		s.Step()
	}
	return maxSteps
}

// Rounds returns how many Step calls have run. It is safe to read
// concurrently with stepping; emulation drivers use it as a
// monotonic logical clock for trace sinks (unlike World.Time it also
// advances during Settle drains, where no simulated time passes).
func (s *Sim) Rounds() int64 { return s.rounds.Load() }

// Pending returns the number of packets currently in flight.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Stats returns a snapshot of the traffic counters.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Sim) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// send enqueues one transmission. During a Step's delivery phase the
// send is staged (rng untouched) for the deterministic merge; otherwise
// it commits immediately.
func (s *Sim) send(from, to tuple.NodeID, data []byte) {
	if s.delivering || s.staging {
		s.staged[from] = append(s.staged[from], stagedSend{to: to, data: data})
		return
	}
	s.commitSendLocked(from, to, data)
}

// crossesPartitionLocked reports whether a packet spans the current
// partition cut (its endpoints sit on different sides).
func (s *Sim) crossesPartitionLocked(from, to tuple.NodeID) bool {
	_, fin := s.partition[from]
	_, tin := s.partition[to]
	return fin != tin
}

// commitSendLocked queues one transmission, applying the fault model in
// a fixed order so seeded runs stay bit-identical: per-link (or global)
// loss, duplication, per-link delay and jitter, corruption, and the
// bounded-inbound shed policy. Every random decision draws from the
// seeded rng under mu, and draws happen only for enabled features, so
// disabling a fault leaves the rng sequence of the remaining ones
// untouched.
func (s *Sim) commitSendLocked(from, to tuple.NodeID, data []byte) {
	loss := s.cfg.Loss
	if len(s.linkLoss) != 0 {
		if p, ok := s.linkLoss[linkKey{from: from, to: to}]; ok {
			loss = p
		}
	}
	if loss > 0 && s.rng.Float64() < loss {
		s.stats.Dropped++
		s.stats.Sent++
		s.stats.PayloadBytes += int64(len(data))
		return
	}
	s.stats.Sent++
	s.stats.PayloadBytes += int64(len(data))
	copies := 1
	if s.cfg.Dup > 0 && s.rng.Float64() < s.cfg.Dup {
		copies = 2
	}
	delay, jitter := s.cfg.LatencyRounds, 0
	if len(s.linkDelays) != 0 {
		if d, ok := s.linkDelays[linkKey{from: from, to: to}]; ok {
			delay, jitter = d.rounds, d.jitter
		}
	}
	for i := 0; i < copies; i++ {
		pdata := data
		if s.corrupt > 0 && s.rng.Float64() < s.corrupt {
			pdata = CorruptBytes(s.rng, data)
			s.stats.Corrupted++
		}
		dueRound := delay
		if jitter > 0 {
			dueRound += s.rng.Intn(jitter + 1)
		}
		if s.cfg.MaxInbound > 0 {
			s.shedOldestLocked(to)
		}
		s.inflight = append(s.inflight, simPacket{
			from:     from,
			to:       to,
			data:     pdata,
			dueRound: dueRound,
		})
	}
}

// shedOldestLocked enforces the per-destination inbound bound before a
// new packet for dest is queued: when the destination already has
// MaxInbound packets in flight, the oldest one is discarded (under
// overload, fresher state wins — TOTA announcements are idempotent and
// anti-entropy heals any gap).
func (s *Sim) shedOldestLocked(dest tuple.NodeID) {
	queued, oldest := 0, -1
	for i := range s.inflight {
		if s.inflight[i].to == dest {
			queued++
			if oldest < 0 {
				oldest = i
			}
		}
	}
	if queued < s.cfg.MaxInbound || oldest < 0 {
		return
	}
	n := len(s.inflight)
	s.inflight = append(s.inflight[:oldest], s.inflight[oldest+1:]...)
	clearPacketTail(s.inflight[:n], len(s.inflight))
	s.stats.Shed++
}

// clearPacketTail zeroes the slots of buf past length n so compaction
// does not pin payload slices and id strings in the retained backing
// array: one settle wave's high-water queue would otherwise hold every
// wavefront payload alive for the rest of the run.
func clearPacketTail(buf []simPacket, n int) {
	for i := n; i < len(buf); i++ {
		buf[i] = simPacket{}
	}
}

// CorruptBytes returns a copy of data with 1–3 random byte flips drawn
// from rng, for feeding corrupted frames through real wire decoders.
// The input slice is never modified (packet payloads are shared with
// sender-side encoding caches).
func CorruptBytes(rng *rand.Rand, data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) == 0 {
		return out
	}
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips; i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// SimEndpoint is one node's attachment to a Sim network.
type SimEndpoint struct {
	net *Sim
	id  tuple.NodeID
}

var _ Sender = (*SimEndpoint)(nil)

// Self implements Sender.
func (e *SimEndpoint) Self() tuple.NodeID { return e.id }

// Neighbors implements Sender.
func (e *SimEndpoint) Neighbors() []tuple.NodeID {
	return e.net.graph.Neighbors(e.id)
}

// Broadcast implements Sender, enqueueing one copy per current
// neighbor (the radio's one-hop broadcast). The payload slice is shared,
// not copied: receivers must treat packet data as read-only.
func (e *SimEndpoint) Broadcast(data []byte) error {
	nbrs := e.net.graph.Neighbors(e.id)
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, ok := e.net.handlers[e.id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	e.net.stats.Broadcasts++
	for _, n := range nbrs {
		e.net.send(e.id, n, data)
	}
	return nil
}

// Send implements Sender.
func (e *SimEndpoint) Send(to tuple.NodeID, data []byte) error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, ok := e.net.handlers[e.id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	if !e.net.graph.HasEdge(e.id, to) {
		return fmt.Errorf("%w: %s -> %s", ErrNotNeighbor, e.id, to)
	}
	e.net.send(e.id, to, data)
	return nil
}
