package udp

import (
	"net"
	"sync"
	"testing"
	"time"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

// nbrRecorder is a transport.Handler recording neighbor transitions.
type nbrRecorder struct {
	mu     sync.Mutex
	events []string // "+id" / "-id"
}

func (r *nbrRecorder) HandlePacket(tuple.NodeID, []byte) {}

func (r *nbrRecorder) HandleNeighbor(peer tuple.NodeID, added bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := "-"
	if added {
		s = "+"
	}
	r.events = append(r.events, s+string(peer))
}

func (r *nbrRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// newIdleTransport builds a transport without starting its loops, so
// tests can drive expirePeers and handleHello deterministically.
func newIdleTransport(t *testing.T, h *nbrRecorder) *Transport {
	t.Helper()
	tr, err := New(Config{
		NodeID:        "self",
		HelloInterval: testHello,
		PeerTimeout:   testTimeout,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	tr.SetHandler(h)
	return tr
}

// seedPeer installs an up peer as if discovery had completed.
func seedPeer(tr *Transport, id tuple.NodeID) *peerState {
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	p := &peerState{addr: addr, id: id, lastSeen: time.Now(), up: true}
	tr.mu.Lock()
	tr.peers[addr.String()] = p
	tr.byID[id] = p
	tr.mu.Unlock()
	return p
}

// TestFaultPeerFlapDamping: a single dropped (or delayed) beacon
// interval must not cycle disconnect/connect events — the peer becomes
// suspect silently and the next beacon clears the suspicion.
func TestFaultPeerFlapDamping(t *testing.T) {
	rec := &nbrRecorder{}
	tr := newIdleTransport(t, rec)
	p := seedPeer(tr, "peer")

	// Silence just past PeerTimeout: stage one (suspect), no event.
	tr.mu.Lock()
	p.lastSeen = time.Now().Add(-testTimeout - time.Millisecond)
	tr.mu.Unlock()
	tr.expirePeers()
	tr.expirePeers() // grace has not elapsed: still no event
	if evs := rec.snapshot(); len(evs) != 0 {
		t.Fatalf("suspicion emitted events: %v", evs)
	}
	tr.mu.Lock()
	if p.suspectAt.IsZero() {
		t.Error("peer not marked suspect after PeerTimeout silence")
	}
	tr.mu.Unlock()

	// The delayed beacon arrives: suspicion clears, still no events —
	// and crucially no down/up pair.
	tr.handleHello("peer", p.addr)
	tr.expirePeers()
	if evs := rec.snapshot(); len(evs) != 0 {
		t.Fatalf("beacon after suspicion emitted events: %v", evs)
	}
	tr.mu.Lock()
	if !p.suspectAt.IsZero() || !p.up {
		t.Error("beacon did not clear suspicion")
	}
	tr.mu.Unlock()

	if len(tr.Neighbors()) != 1 {
		t.Error("peer lost despite resumed beacons")
	}
}

// TestFaultPeerDownAfterGrace: sustained silence through the grace
// window does emit exactly one down event.
func TestFaultPeerDownAfterGrace(t *testing.T) {
	rec := &nbrRecorder{}
	tr := newIdleTransport(t, rec)
	p := seedPeer(tr, "peer")

	tr.mu.Lock()
	p.lastSeen = time.Now().Add(-testTimeout - time.Millisecond)
	tr.mu.Unlock()
	tr.expirePeers() // suspect
	tr.mu.Lock()
	p.suspectAt = time.Now().Add(-tr.cfg.PeerGrace) // grace elapsed
	tr.mu.Unlock()
	tr.expirePeers()
	if evs := rec.snapshot(); len(evs) != 1 || evs[0] != "-peer" {
		t.Fatalf("events = %v, want exactly [-peer]", evs)
	}
	tr.expirePeers() // already down: no repeat
	if evs := rec.snapshot(); len(evs) != 1 {
		t.Fatalf("down event repeated: %v", evs)
	}
	if len(tr.Neighbors()) != 0 {
		t.Error("peer still listed after down")
	}
}

// TestFaultInboundQueueShedsOldest: overrunning the bounded staging
// queue discards the head (stalest packet), never the fresh tail.
func TestFaultInboundQueueShedsOldest(t *testing.T) {
	tr, err := New(Config{
		NodeID:       "q",
		InboundQueue: 4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tr.Close()
	// No dispatcher running (not started): staging 10 packets into a
	// 4-slot queue must shed the 6 oldest.
	for i := 0; i < 10; i++ {
		tr.stageInbound(inPacket{from: "p", data: []byte{byte(i)}})
	}
	if got := tr.Stats().Shed; got != 6 {
		t.Errorf("Shed = %d, want 6", got)
	}
	for want := 6; want < 10; want++ {
		pkt := <-tr.inq
		if int(pkt.data[0]) != want {
			t.Errorf("queued packet = %d, want %d (oldest must be shed)", pkt.data[0], want)
		}
	}
}

// TestFaultInboundQueueEndToEnd: the dispatcher path carries real
// middleware traffic (gradient over the staging queue).
func TestFaultInboundQueueEndToEnd(t *testing.T) {
	mk := func(id tuple.NodeID) (*Transport, *core.Node) {
		tr, err := New(Config{
			NodeID:        id,
			HelloInterval: testHello,
			PeerTimeout:   testTimeout,
			InboundQueue:  64,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		t.Cleanup(func() { _ = tr.Close() })
		n := core.New(tr)
		tr.SetHandler(n)
		return tr, n
	}
	ta, na := mk("a")
	tb, nb := mk("b")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()
	eventually(t, "discovery over staged path", func() bool {
		return len(na.Neighbors()) == 1 && len(nb.Neighbors()) == 1
	})
	if _, err := na.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	eventually(t, "gradient crosses the staged path", func() bool {
		return len(nb.Read(pattern.ByName(pattern.KindGradient, "f"))) == 1
	})
}
