package udp

import (
	"testing"
	"time"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

const (
	testHello   = 10 * time.Millisecond
	testTimeout = 60 * time.Millisecond
	deadline    = 5 * time.Second
)

// eventually polls cond until it holds or the deadline expires.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newUDPNode creates a transport + middleware node pair.
func newUDPNode(t *testing.T, id tuple.NodeID) (*Transport, *core.Node) {
	t.Helper()
	tr, err := New(Config{
		NodeID:        id,
		HelloInterval: testHello,
		PeerTimeout:   testTimeout,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	n := core.New(tr)
	tr.SetHandler(n)
	return tr, n
}

func connect(t *testing.T, a, b *Transport) {
	t.Helper()
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	if err := b.AddPeer(a.Addr()); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
}

func TestNeighborDiscovery(t *testing.T) {
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()

	eventually(t, "a sees b", func() bool {
		ns := na.Neighbors()
		return len(ns) == 1 && ns[0] == "b"
	})
	eventually(t, "b sees a", func() bool {
		ns := nb.Neighbors()
		return len(ns) == 1 && ns[0] == "a"
	})
}

func TestGradientOverUDPChain(t *testing.T) {
	// Chain a-b-c: only adjacent transports know each other, so the
	// gradient must travel two real hops.
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	tc, nc := newUDPNode(t, "c")
	connect(t, ta, tb)
	connect(t, tb, tc)
	ta.Start()
	tb.Start()
	tc.Start()

	eventually(t, "chain discovery", func() bool {
		return len(na.Neighbors()) == 1 && len(nb.Neighbors()) == 2 && len(nc.Neighbors()) == 1
	})

	if _, err := na.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	valAt := func(n *core.Node) (float64, bool) {
		ts := n.Read(pattern.ByName(pattern.KindGradient, "f"))
		if len(ts) == 0 {
			return 0, false
		}
		return ts[0].(tuple.Maintained).Value(), true
	}
	eventually(t, "gradient reaches c with value 2", func() bool {
		v, ok := valAt(nc)
		return ok && v == 2
	})
	if v, _ := valAt(nb); v != 1 {
		t.Errorf("b value = %v, want 1", v)
	}
}

func TestPeerLossTriggersMaintenance(t *testing.T) {
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()
	eventually(t, "discovery", func() bool { return len(na.Neighbors()) == 1 })

	if _, err := na.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	eventually(t, "b has the gradient", func() bool {
		return len(nb.Read(pattern.ByName(pattern.KindGradient, "f"))) == 1
	})

	// Kill a: b must lose the neighbor and withdraw the unsupported
	// gradient copy.
	if err := ta.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eventually(t, "b drops a", func() bool { return len(nb.Neighbors()) == 0 })
	eventually(t, "b withdraws the orphan gradient", func() bool {
		return len(nb.Read(pattern.ByName(pattern.KindGradient, "f"))) == 0
	})
}

func TestDownhillMessageOverUDP(t *testing.T) {
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	tc, nc := newUDPNode(t, "c")
	connect(t, ta, tb)
	connect(t, tb, tc)
	ta.Start()
	tb.Start()
	tc.Start()
	eventually(t, "chain discovery", func() bool {
		return len(na.Neighbors()) == 1 && len(nb.Neighbors()) == 2 && len(nc.Neighbors()) == 1
	})

	if _, err := na.Inject(pattern.NewGradient("to-a")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "structure at c", func() bool {
		return len(nc.Read(pattern.ByName(pattern.KindGradient, "to-a"))) == 1
	})
	if _, err := nc.Inject(pattern.NewDownhill("to-a", tuple.S("m", "hi")).StrictSlope()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "delivery at a", func() bool {
		ts := na.Read(tuple.Match(pattern.KindDownhill))
		return len(ts) == 1 && ts[0].Content().GetString("m") == "hi"
	})
	if len(nb.Read(tuple.Match(pattern.KindDownhill))) != 0 {
		t.Error("relay node stored the message")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	tr, _ := newUDPNode(t, "x")
	tr.Start()
	if err := tr.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty node id accepted")
	}
	if _, err := New(Config{NodeID: "x", Peers: []string{"not-an-addr:xyz"}}); err == nil {
		t.Error("bad peer address accepted")
	}
}

func TestSendToNonNeighborFails(t *testing.T) {
	tr, _ := newUDPNode(t, "solo")
	tr.Start()
	if err := tr.Send("ghost", []byte("x")); err == nil {
		t.Error("Send to unknown peer succeeded")
	}
}

func TestFramePayloadLimit(t *testing.T) {
	tr, err := New(Config{NodeID: "mtu-node", ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tr.Close()
	want := DefaultMTU - (1 + 4 + len("mtu-node"))
	if got := tr.FramePayloadLimit(); got != want {
		t.Errorf("FramePayloadLimit = %d, want %d", got, want)
	}

	small, err := New(Config{NodeID: "y", ListenAddr: "127.0.0.1:0", MTU: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer small.Close()
	if got := small.FramePayloadLimit(); got != 1 {
		t.Errorf("tiny MTU FramePayloadLimit = %d, want 1 (floor)", got)
	}

	huge, err := New(Config{NodeID: "z", ListenAddr: "127.0.0.1:0", MTU: 1 << 30})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer huge.Close()
	if got := huge.FramePayloadLimit(); got > 64*1024 {
		t.Errorf("FramePayloadLimit = %d exceeds the datagram maximum", got)
	}
}
