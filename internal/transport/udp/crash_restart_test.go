package udp

import (
	"strings"
	"testing"

	"tota/internal/core"
	"tota/internal/pattern"
	"tota/internal/tuple"
)

// restartNode rebinds a node with the same identity (and, when addr is
// non-empty, the same port) but a FRESH empty middleware state — the
// crash-restart shape: the process is new, the identity persists.
func restartNode(t *testing.T, id tuple.NodeID, addr string, peers ...string) (*Transport, *core.Node) {
	t.Helper()
	tr, err := New(Config{
		NodeID:        id,
		ListenAddr:    addr,
		Peers:         peers,
		HelloInterval: testHello,
		PeerTimeout:   testTimeout,
	})
	if err != nil {
		t.Fatalf("restart New(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	n := core.New(tr)
	tr.SetHandler(n)
	tr.Start()
	return tr, n
}

func hasGradient(n *core.Node, name string) bool {
	return len(n.Read(pattern.ByName(pattern.KindGradient, name))) > 0
}

// TestCrashRestartSameIDAfterExpiry is the slow-crash path: the peer
// fully expires (suspect → down) before the node comes back on the same
// port with the same ID and an empty store. The survivor's neighbor-up
// catch-up unicast must re-seed the restarted node without any manual
// refresh — the emulator-only scenario from the fault plans, now over
// real sockets.
func TestCrashRestartSameIDAfterExpiry(t *testing.T) {
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()
	eventually(t, "discovery", func() bool { return len(na.Neighbors()) == 1 })

	if _, err := na.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	eventually(t, "b holds the gradient", func() bool { return hasGradient(nb, "f") })

	bAddr := tb.Addr()
	if err := tb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eventually(t, "a declares b down", func() bool { return len(na.Neighbors()) == 0 })

	// Same ID, same port, empty store: discovery raises a fresh
	// neighbor-up on a, whose catch-up must restore b's view.
	_, nb2 := restartNode(t, "b", bAddr, ta.Addr())
	eventually(t, "restarted b re-adopts the gradient", func() bool {
		return hasGradient(nb2, "f")
	})
	eventually(t, "a re-learns exactly one b", func() bool {
		ns := na.Neighbors()
		return len(ns) == 1 && ns[0] == "b"
	})
}

// TestCrashRestartNewAddrReAdoption is the fast-restart path on a NEW
// ephemeral port: the survivor still believes the old address is up
// when beacons arrive carrying the same ID from elsewhere. The
// transport must retire the stale peer entry and cycle the neighbor
// (down, then up) so the engine's catch-up fires — otherwise the
// restarted node only heals on the next digest exchange and the old
// address lingers as a ghost peer.
func TestCrashRestartNewAddrReAdoption(t *testing.T) {
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()
	eventually(t, "discovery", func() bool { return len(na.Neighbors()) == 1 })

	if _, err := na.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	eventually(t, "b holds the gradient", func() bool { return hasGradient(nb, "f") })

	staleAddr := tb.Addr()
	if err := tb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Restart immediately — well inside PeerTimeout — on a new port.
	tb2, nb2 := restartNode(t, "b", "", ta.Addr())

	eventually(t, "restarted b re-adopts the gradient", func() bool {
		return hasGradient(nb2, "f")
	})
	eventually(t, "a tracks b at its new address only", func() bool {
		ns := na.Neighbors()
		if len(ns) != 1 || ns[0] != "b" {
			return false
		}
		ta.mu.Lock()
		defer ta.mu.Unlock()
		_, stale := ta.peers[staleAddr]
		p, ok := ta.byID["b"]
		return !stale && ok && strings.HasSuffix(tb2.Addr(), p.addr.String()[strings.LastIndex(p.addr.String(), ":"):])
	})
}

// TestCrashRestartDigestPullCatchUp is the quietest restart: same ID,
// same port, back before the survivor even suspects — so no neighbor
// event fires anywhere and the catch-up unicast never runs. The only
// healing channel left is anti-entropy: the survivor's refresh digests
// must make the empty restarted node pull the full tuples back.
func TestCrashRestartDigestPullCatchUp(t *testing.T) {
	ta, na := newUDPNode(t, "a")
	tb, nb := newUDPNode(t, "b")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()
	eventually(t, "discovery", func() bool { return len(na.Neighbors()) == 1 })

	if _, err := na.Inject(pattern.NewGradient("f")); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	eventually(t, "b holds the gradient", func() bool { return hasGradient(nb, "f") })

	bAddr := tb.Addr()
	if err := tb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, nb2 := restartNode(t, "b", bAddr, ta.Addr())

	// Drive a's anti-entropy by hand (tota-node does this on its
	// -refresh ticker): each epoch announces digests the empty node
	// answers with pulls.
	eventually(t, "digest→pull restores b", func() bool {
		na.Refresh()
		return hasGradient(nb2, "f")
	})
}
