package udp

import (
	"testing"
	"testing/quick"

	"tota/internal/tuple"
)

func TestFrameRoundTrip(t *testing.T) {
	tr := &Transport{cfg: Config{NodeID: "node-7"}}
	payload := []byte{1, 2, 3, 255}
	frame := tr.frame(frameData, payload)
	typ, id, got, err := parseFrame(frame)
	if err != nil {
		t.Fatalf("parseFrame: %v", err)
	}
	if typ != frameData || id != "node-7" || string(got) != string(payload) {
		t.Errorf("parsed = %v %q %v", typ, id, got)
	}

	hello := tr.frame(frameHello, nil)
	typ, id, got, err = parseFrame(hello)
	if err != nil {
		t.Fatalf("parseFrame(hello): %v", err)
	}
	if typ != frameHello || id != "node-7" || len(got) != 0 {
		t.Errorf("hello parsed = %v %q %v", typ, id, got)
	}
}

func TestParseFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{1, 0, 0, 0},
		{frameData, 0, 0, 0, 200, 'x'}, // id length beyond buffer
	}
	for _, c := range cases {
		if _, _, _, err := parseFrame(c); err == nil {
			t.Errorf("parseFrame(%v) accepted", c)
		}
	}
}

// Property: every frame round-trips, and parseFrame never panics on
// arbitrary bytes.
func TestFrameQuick(t *testing.T) {
	f := func(id string, payload []byte, garbage []byte) bool {
		tr := &Transport{cfg: Config{NodeID: tuple.NodeID(id)}}
		typ, gotID, gotPayload, err := parseFrame(tr.frame(frameData, payload))
		if err != nil || typ != frameData || string(gotID) != id ||
			string(gotPayload) != string(payload) {
			return false
		}
		_, _, _, _ = parseFrame(garbage) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGarbageDatagramsIgnored feeds raw junk to a live socket: the
// transport must survive and keep working.
func TestGarbageDatagramsIgnored(t *testing.T) {
	ta, na := newUDPNode(t, "ga")
	tb, _ := newUDPNode(t, "gb")
	connect(t, ta, tb)
	ta.Start()
	tb.Start()
	eventually(t, "discovery", func() bool { return len(na.Neighbors()) == 1 })

	// Throw junk at a's socket from an unknown sender.
	if err := tb.AddPeer(ta.Addr()); err != nil {
		t.Fatal(err)
	}
	conn := tb // reuse b's socket via its exported surface: send raw data frames with bad payloads
	for i := 0; i < 20; i++ {
		// Bad engine payloads inside valid frames: decode errors.
		if err := conn.Send("ga", []byte{0xff, 0xee, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "decode errors absorbed", func() bool {
		return na.Stats().DecodeErrors >= 20
	})
	// Still functional afterwards.
	if len(na.Neighbors()) != 1 {
		t.Error("transport wedged by garbage")
	}
}
