// Package udp is a real network transport for TOTA nodes, replacing the
// paper's 802.11b multicast sockets with UDP datagrams so the middleware
// runs across actual processes.
//
// Neighbor discovery follows the paper's wired-scenario recipe: each
// node is configured with a list of candidate peer addresses (the
// "central repository of TOTA node addresses") and exchanges periodic
// HELLO beacons with them; a candidate becomes a neighbor when its
// beacons arrive and is dropped when they stop. Broadcast sends one
// datagram per current neighbor — the loopback-testable equivalent of
// the one-hop radio multicast.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tota/internal/transport"
	"tota/internal/tuple"
)

// Frame types on the socket.
const (
	frameHello byte = 1
	frameData  byte = 2
)

const maxDatagram = 64 * 1024

// DefaultMTU is the default datagram size budget: a conservative
// Ethernet-class MTU with room for IP/UDP headers, so frames survive
// typical links without fragmentation.
const DefaultMTU = 1400

// Config tunes a UDP transport.
type Config struct {
	// NodeID is the node's identity; it must be unique in the network.
	NodeID tuple.NodeID
	// ListenAddr is the UDP address to bind ("127.0.0.1:0" for an
	// ephemeral loopback port).
	ListenAddr string
	// Peers are the candidate neighbor addresses (the address
	// repository). More can be added at runtime with AddPeer.
	Peers []string
	// HelloInterval is the beacon period (default 50ms).
	HelloInterval time.Duration
	// PeerTimeout is how long to wait for beacons before suspecting a
	// neighbor (default 4 × HelloInterval).
	PeerTimeout time.Duration
	// PeerGrace is the suspicion window: a peer whose beacons stop is
	// first suspected (silently) at PeerTimeout and only declared gone
	// PeerGrace later, so a single delayed beacon re-ups it without
	// ever emitting a disconnect/connect event pair. The damping costs
	// detection latency on real crashes, which the engine's own
	// suspicion hysteresis already tolerates. Default 2 × HelloInterval.
	PeerGrace time.Duration
	// InboundQueue, when positive, bounds a staging queue between the
	// socket read loop and the middleware handler: a dispatcher
	// goroutine drains it, and when a burst overruns the bound the
	// OLDEST queued packet is shed (counted in Stats.Shed) — under
	// overload, fresher state wins and anti-entropy heals the gap.
	// Zero keeps the synchronous path (handler runs on the read loop).
	InboundQueue int
	// MTU is the largest datagram the link should carry, in bytes
	// (default DefaultMTU, capped at the 64KB UDP maximum). The
	// transport advertises MTU minus its own frame header as the
	// engine's batch-frame payload budget (transport.FrameLimiter), so
	// coalesced refresh frames never exceed one datagram.
	MTU int
	// Logger, when set, receives rate-limited structured logs for
	// socket write failures and undecodable frames (at occurrence
	// counts 1, 2, 4, 8, …).
	Logger *slog.Logger
}

// Stats is a snapshot of a transport's socket-level counters.
type Stats struct {
	// Sent counts datagrams written to the socket (data and hello).
	Sent int64
	// SendErrors counts socket write failures.
	SendErrors int64
	// Received counts datagrams read from the socket.
	Received int64
	// BadFrames counts received frames that failed to parse.
	BadFrames int64
	// Hellos counts discovery beacons received.
	Hellos int64
	// Shed counts packets discarded by the bounded inbound queue's
	// shed-oldest overload policy (zero when InboundQueue is disabled).
	Shed int64
}

// udpStats is the live atomic counter set behind Stats.
type udpStats struct {
	sent       atomic.Int64
	sendErrors atomic.Int64
	received   atomic.Int64
	badFrames  atomic.Int64
	hellos     atomic.Int64
	shed       atomic.Int64
}

// Transport is a UDP-backed transport.Sender. Attach the middleware
// node with SetHandler, then Start.
type Transport struct {
	cfg  Config
	conn *net.UDPConn

	stats udpStats

	mu       sync.Mutex
	handler  transport.Handler
	peers    map[string]*peerState // keyed by remote address
	byID     map[tuple.NodeID]*peerState
	started  bool
	closed   bool
	stopHup  chan struct{}
	doneHup  chan struct{}
	doneRead chan struct{}

	// inq is the bounded inbound staging queue (nil when
	// Config.InboundQueue is zero): the read loop stages packets here
	// and dispatchLoop drains them, decoupling socket reads from
	// handler latency. Overruns shed the oldest queued packet.
	inq      chan inPacket
	doneDisp chan struct{}
}

// inPacket is one staged inbound data packet.
type inPacket struct {
	from tuple.NodeID
	data []byte
}

type peerState struct {
	addr     *net.UDPAddr
	id       tuple.NodeID // "" until first hello
	lastSeen time.Time
	up       bool
	// suspectAt is when the peer's silence crossed PeerTimeout (zero =
	// not suspect). The down event fires only once the silence also
	// outlasts PeerGrace; any beacon in between clears it without
	// emitting neighbor events.
	suspectAt time.Time
}

var _ transport.Sender = (*Transport)(nil)
var _ transport.FrameLimiter = (*Transport)(nil)

// ReleasesPayloads implements transport.PayloadReleaser: Broadcast and
// Send copy the payload into a pooled frame buffer before writing, so
// the caller's bytes are free for reuse the moment the call returns.
func (t *Transport) ReleasesPayloads() bool { return true }

// FramePayloadLimit implements transport.FrameLimiter: the configured
// MTU minus this transport's own frame header (type, sender id).
func (t *Transport) FramePayloadLimit() int {
	overhead := 1 + 4 + len(t.cfg.NodeID)
	limit := t.cfg.MTU - overhead
	if limit < 1 {
		return 1
	}
	return limit
}

// New binds the socket. Call SetHandler and then Start to begin
// exchanging beacons and packets.
func New(cfg Config) (*Transport, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("udp: empty node id")
	}
	if cfg.HelloInterval <= 0 {
		cfg.HelloInterval = 50 * time.Millisecond
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 4 * cfg.HelloInterval
	}
	if cfg.PeerGrace <= 0 {
		cfg.PeerGrace = 2 * cfg.HelloInterval
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.MTU <= 0 {
		cfg.MTU = DefaultMTU
	}
	if cfg.MTU > maxDatagram {
		cfg.MTU = maxDatagram
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen: %w", err)
	}
	t := &Transport{
		cfg:      cfg,
		conn:     conn,
		peers:    make(map[string]*peerState),
		byID:     make(map[tuple.NodeID]*peerState),
		stopHup:  make(chan struct{}),
		doneHup:  make(chan struct{}),
		doneRead: make(chan struct{}),
		doneDisp: make(chan struct{}),
	}
	if cfg.InboundQueue > 0 {
		t.inq = make(chan inPacket, cfg.InboundQueue)
	}
	for _, p := range cfg.Peers {
		if err := t.AddPeer(p); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	return t, nil
}

// Addr returns the bound local address ("127.0.0.1:port"), which other
// nodes list as a peer.
func (t *Transport) Addr() string { return t.conn.LocalAddr().String() }

// SetHandler attaches the packet/neighbor consumer (the middleware
// node). It must be called before Start.
func (t *Transport) SetHandler(h transport.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// AddPeer registers another candidate neighbor address.
func (t *Transport) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udp: resolve peer %q: %w", addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.peers[ua.String()]; !ok {
		t.peers[ua.String()] = &peerState{addr: ua}
	}
	return nil
}

// Start launches the beacon and receive loops (and the inbound
// dispatcher when the staging queue is enabled).
func (t *Transport) Start() {
	t.mu.Lock()
	t.started = true
	t.mu.Unlock()
	go t.helloLoop()
	go t.readLoop()
	if t.inq != nil {
		go t.dispatchLoop()
	}
}

// Close stops the loops and closes the socket, waiting for the
// goroutines to exit. Safe before Start (only the socket is closed).
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	started := t.started
	t.mu.Unlock()
	close(t.stopHup)
	err := t.conn.Close()
	if started {
		<-t.doneHup
		<-t.doneRead
		if t.inq != nil {
			// The read loop has exited, so nothing sends on inq anymore:
			// closing it drains the dispatcher cleanly.
			close(t.inq)
			<-t.doneDisp
		}
	}
	return err
}

// Self implements transport.Sender.
func (t *Transport) Self() tuple.NodeID { return t.cfg.NodeID }

// Neighbors implements transport.Sender.
func (t *Transport) Neighbors() []tuple.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []tuple.NodeID
	for id, p := range t.byID {
		if p.up {
			out = append(out, id)
		}
	}
	return out
}

// Stats returns a snapshot of the socket-level counters. Lock-free:
// the counters are atomics, safe to read from a telemetry scrape at
// any time.
func (t *Transport) Stats() Stats {
	return Stats{
		Sent:       t.stats.sent.Load(),
		SendErrors: t.stats.sendErrors.Load(),
		Received:   t.stats.received.Load(),
		BadFrames:  t.stats.badFrames.Load(),
		Hellos:     t.stats.hellos.Load(),
		Shed:       t.stats.shed.Load(),
	}
}

// write sends one datagram, counting it and any failure (with a
// rate-limited log line: failures are expected while peers restart, so
// they must not flood the log or fail the caller's whole broadcast).
func (t *Transport) write(frame []byte, to *net.UDPAddr) error {
	t.stats.sent.Add(1)
	_, err := t.conn.WriteToUDP(frame, to)
	if err != nil {
		c := t.stats.sendErrors.Add(1)
		if t.cfg.Logger != nil && c&(c-1) == 0 {
			t.cfg.Logger.Warn("udp: send failed",
				"node", string(t.cfg.NodeID), "to", to.String(), "err", err, "count", c)
		}
	}
	return err
}

// framePool recycles frame build buffers across Broadcast/Send calls:
// WriteToUDP copies the datagram into the kernel synchronously, so the
// buffer can be returned immediately. Buffers grow to the largest
// message seen and stay that size, so steady-state sends allocate
// nothing.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// Broadcast implements transport.Sender.
func (t *Transport) Broadcast(data []byte) error {
	bufp := framePool.Get().(*[]byte)
	frame := t.frameTo(*bufp, frameData, data)
	t.mu.Lock()
	var addrs []*net.UDPAddr
	for _, p := range t.byID {
		if p.up {
			addrs = append(addrs, p.addr)
		}
	}
	t.mu.Unlock()
	var firstErr error
	for _, a := range addrs {
		if err := t.write(frame, a); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	*bufp = frame
	framePool.Put(bufp)
	return firstErr
}

// Send implements transport.Sender.
func (t *Transport) Send(to tuple.NodeID, data []byte) error {
	t.mu.Lock()
	p, ok := t.byID[to]
	up := ok && p.up
	t.mu.Unlock()
	if !up {
		return fmt.Errorf("udp: %s is not a neighbor", to)
	}
	bufp := framePool.Get().(*[]byte)
	frame := t.frameTo(*bufp, frameData, data)
	err := t.write(frame, p.addr)
	*bufp = frame
	framePool.Put(bufp)
	return err
}

// frame prepends the frame header: type, sender id.
func (t *Transport) frame(typ byte, payload []byte) []byte {
	return t.frameTo(nil, typ, payload)
}

// frameTo builds a frame into dst (reusing its capacity when possible,
// preallocating the exact size otherwise).
func (t *Transport) frameTo(dst []byte, typ byte, payload []byte) []byte {
	id := string(t.cfg.NodeID)
	need := 1 + 4 + len(id) + len(payload)
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	} else {
		dst = dst[:0]
	}
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(id)))
	dst = append(dst, id...)
	return append(dst, payload...)
}

func parseFrame(data []byte) (typ byte, id tuple.NodeID, payload []byte, err error) {
	if len(data) < 5 {
		return 0, "", nil, errors.New("udp: short frame")
	}
	typ = data[0]
	n := int(binary.BigEndian.Uint32(data[1:5]))
	if n < 0 || len(data) < 5+n {
		return 0, "", nil, errors.New("udp: truncated frame")
	}
	return typ, tuple.NodeID(data[5 : 5+n]), data[5+n:], nil
}

// FrameSender returns the sender node id carried in a datagram's frame
// header, without touching the payload. It is the attribution hook a
// testnet relay uses to classify a forwarded datagram's direction —
// the source socket address cannot be trusted for that, because
// restarted processes rebind on new ports.
func FrameSender(frame []byte) (tuple.NodeID, bool) {
	_, id, _, err := parseFrame(frame)
	if err != nil {
		return "", false
	}
	return id, true
}

// FrameHeaderLen returns the frame-header length for a datagram (type
// byte, id length, id bytes): the prefix a relay must leave intact when
// corrupting payload bytes, so attribution survives the fault.
func FrameHeaderLen(frame []byte) (int, bool) {
	_, id, _, err := parseFrame(frame)
	if err != nil {
		return 0, false
	}
	return 5 + len(id), true
}

func (t *Transport) helloLoop() {
	defer close(t.doneHup)
	ticker := time.NewTicker(t.cfg.HelloInterval)
	defer ticker.Stop()
	hello := t.frame(frameHello, nil)
	for {
		select {
		case <-t.stopHup:
			return
		case <-ticker.C:
			t.mu.Lock()
			var addrs []*net.UDPAddr
			for _, p := range t.peers {
				addrs = append(addrs, p.addr)
			}
			t.mu.Unlock()
			for _, a := range addrs {
				_ = t.write(hello, a)
			}
			t.expirePeers()
		}
	}
}

// expirePeers runs the two-stage silence detector: a peer quiet past
// PeerTimeout becomes suspect (no event), and only a peer additionally
// quiet through the PeerGrace window is declared down. A beacon at any
// point clears the suspicion silently, so one delayed or dropped
// beacon interval never cycles disconnect/connect events through the
// engine (which would trigger withdraw/catch-up storms).
func (t *Transport) expirePeers() {
	now := time.Now()
	t.mu.Lock()
	var gone []tuple.NodeID
	for id, p := range t.byID {
		if !p.up {
			continue
		}
		if now.Sub(p.lastSeen) <= t.cfg.PeerTimeout {
			p.suspectAt = time.Time{}
			continue
		}
		if p.suspectAt.IsZero() {
			p.suspectAt = now
			continue
		}
		if now.Sub(p.suspectAt) >= t.cfg.PeerGrace {
			p.up = false
			p.suspectAt = time.Time{}
			gone = append(gone, id)
		}
	}
	h := t.handler
	t.mu.Unlock()
	if h != nil {
		for _, id := range gone {
			h.HandleNeighbor(id, false)
		}
	}
}

func (t *Transport) readLoop() {
	defer close(t.doneRead)
	buf := make([]byte, maxDatagram)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		t.stats.received.Add(1)
		typ, id, payload, perr := parseFrame(buf[:n])
		if perr != nil {
			c := t.stats.badFrames.Add(1)
			if t.cfg.Logger != nil && c&(c-1) == 0 {
				t.cfg.Logger.Warn("udp: undecodable frame dropped",
					"node", string(t.cfg.NodeID), "from", raddr.String(), "err", perr, "count", c)
			}
			continue
		}
		if id == t.cfg.NodeID {
			continue
		}
		switch typ {
		case frameHello:
			t.stats.hellos.Add(1)
			t.handleHello(id, raddr)
		case frameData:
			t.handleData(id, raddr, payload)
		}
	}
}

func (t *Transport) handleHello(id tuple.NodeID, raddr *net.UDPAddr) {
	key := raddr.String()
	t.mu.Lock()
	p, ok := t.peers[key]
	if !ok {
		// Unsolicited hello: learn the peer (symmetric discovery).
		p = &peerState{addr: raddr}
		t.peers[key] = p
	}
	// Restart re-adoption: the same node id arriving from a different
	// address means the peer process restarted (or rebound) on a new
	// port. Retire the stale address entry so beacons stop chasing a
	// dead socket, and if the engine still believes the neighbor is up,
	// cycle it down before the fresh up event — the restarted process
	// is empty, and only a new neighbor-added event re-runs newcomer
	// catch-up against it.
	var cycleDown bool
	if old, haveOld := t.byID[id]; haveOld && old != p {
		delete(t.peers, old.addr.String())
		cycleDown = old.up
	}
	p.id = id
	p.lastSeen = time.Now()
	p.suspectAt = time.Time{}
	wasUp := p.up
	p.up = true
	t.byID[id] = p
	h := t.handler
	t.mu.Unlock()
	if h == nil {
		return
	}
	if cycleDown {
		h.HandleNeighbor(id, false)
	}
	if !wasUp || cycleDown {
		h.HandleNeighbor(id, true)
	}
}

func (t *Transport) handleData(id tuple.NodeID, raddr *net.UDPAddr, payload []byte) {
	t.mu.Lock()
	p, ok := t.byID[id]
	up := ok && p.up
	h := t.handler
	t.mu.Unlock()
	if !up {
		// A well-formed data frame is liveness evidence as strong as a
		// beacon. Without this promotion, one-shot traffic that outruns
		// the sender's first returning beacon — the newcomer catch-up
		// unicast fired the instant a restarted node's hello lands on a
		// survivor — is dropped deterministically, and only the next
		// anti-entropy epoch would heal it.
		t.handleHello(id, raddr)
		t.mu.Lock()
		p, ok = t.byID[id]
		up = ok && p.up
		h = t.handler
		t.mu.Unlock()
	}
	if !up || h == nil {
		return
	}
	// Copy: the read buffer is reused.
	data := make([]byte, len(payload))
	copy(data, payload)
	if t.inq == nil {
		h.HandlePacket(id, data)
		return
	}
	t.stageInbound(inPacket{from: id, data: data})
}

// stageInbound queues one packet for the dispatcher, applying the
// shed-oldest overload policy when the queue is full: the head of the
// queue (the stalest packet) is discarded to make room. TOTA traffic is
// idempotent announcements plus anti-entropy, so dropping stale state
// under overload is strictly better than dropping fresh state — and
// far better than blocking the socket read loop.
func (t *Transport) stageInbound(pkt inPacket) {
	for {
		select {
		case t.inq <- pkt:
			return
		default:
		}
		select {
		case <-t.inq: // shed the oldest staged packet
			t.stats.shed.Add(1)
		default:
		}
	}
}

// dispatchLoop drains the inbound staging queue into the handler.
func (t *Transport) dispatchLoop() {
	defer close(t.doneDisp)
	for pkt := range t.inq {
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h.HandlePacket(pkt.from, pkt.data)
		}
	}
}
