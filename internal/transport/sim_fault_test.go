package transport

import (
	"math/rand"
	"testing"
)

func TestFaultLinkLossIsAsymmetric(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{Seed: 1})
	s.SetLinkLoss("a", "b", 1) // a->b always lost; b->a untouched
	for i := 0; i < 10; i++ {
		if err := eps["a"].Send("b", []byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if err := eps["b"].Send("a", []byte("y")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		s.Step()
	}
	if got := recs["b"].packetCount(); got != 0 {
		t.Errorf("a->b delivered %d packets through a fully lossy direction", got)
	}
	if got := recs["a"].packetCount(); got != 10 {
		t.Errorf("b->a delivered %d packets, want 10 (reverse direction must be clean)", got)
	}
	s.SetLinkLoss("a", "b", -1) // clear the override
	if err := eps["a"].Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	if got := recs["b"].packetCount(); got != 1 {
		t.Errorf("cleared override still dropping: b got %d packets", got)
	}
}

func TestFaultLinkDelayAndJitterBounds(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{Seed: 7})
	s.SetLinkDelay("a", "b", 3, 2) // due in 3..5 rounds
	for i := 0; i < 20; i++ {
		if err := eps["a"].Send("b", []byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for round := 1; round <= 5; round++ {
		s.Step()
		got := recs["b"].packetCount()
		if round < 3 && got != 0 {
			t.Fatalf("round %d: %d packets before the base delay elapsed", round, got)
		}
	}
	if got := recs["b"].packetCount(); got != 20 {
		t.Errorf("after max jitter window: %d packets, want 20", got)
	}
}

func TestFaultPartitionBlocksSilently(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{})
	s.SetPartition("a")
	if err := eps["a"].Broadcast([]byte("hi")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if err := eps["b"].Send("c", []byte("bc")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	if got := recs["b"].packetCount() + recs["a"].packetCount(); got != 0 {
		t.Errorf("partition leaked: a/b saw %d packets, want 0", got)
	}
	if recs["c"].packetCount() != 1 {
		t.Errorf("intra-side traffic blocked: c got %d packets, want 1 (b->c)", recs["c"].packetCount())
	}
	if st := s.Stats(); st.Blocked != 2 {
		t.Errorf("Blocked = %d, want 2 (a's broadcast copies to b and c)", st.Blocked)
	}
	// No neighbor events fire at a cut: engines must detect the silence.
	for id, rec := range recs {
		rec.mu.Lock()
		n := len(rec.nbrs)
		rec.mu.Unlock()
		if n != 0 {
			t.Errorf("node %s saw %d neighbor events, want 0 (cuts are silent)", id, n)
		}
	}
	// Heal: traffic flows again.
	s.SetPartition()
	if err := eps["a"].Send("b", []byte("again")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	if recs["b"].packetCount() != 1 {
		t.Error("healed partition still blocking")
	}
}

func TestFaultPauseHoldsPacketsUntilResume(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{})
	s.Pause("b")
	if !s.Paused("b") {
		t.Fatal("Paused(b) = false after Pause")
	}
	if err := eps["a"].Send("b", []byte("held")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if got := recs["b"].packetCount(); got != 0 {
		t.Fatalf("paused node processed %d packets", got)
	}
	if s.Pending() == 0 {
		t.Fatal("held packet was dropped instead of kept in flight")
	}
	s.Resume("b")
	s.Step()
	if got := recs["b"].packetCount(); got != 1 {
		t.Errorf("after Resume: %d packets, want 1", got)
	}
}

func TestFaultCorruptCopiesBeforeFlipping(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{Seed: 3})
	s.SetCorrupt(1)
	orig := []byte("pristine-payload")
	want := string(append([]byte(nil), orig...))
	if err := eps["a"].Send("b", orig); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	if string(orig) != want {
		t.Errorf("sender payload mutated in place: %q", orig)
	}
	if got := recs["b"].packetCount(); got != 1 {
		t.Fatalf("corrupted packet not delivered: %d", got)
	}
	if recs["b"].packets[0] == "a:"+want {
		t.Error("delivered payload identical to original despite corrupt=1")
	}
	if st := s.Stats(); st.Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1", st.Corrupted)
	}
}

func TestFaultCorruptBytesChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 100; i++ {
		out := CorruptBytes(rng, data)
		if len(out) != len(data) {
			t.Fatalf("length changed: %d != %d", len(out), len(data))
		}
		same := true
		for j := range out {
			if out[j] != data[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("iteration %d: no byte changed", i)
		}
	}
	if out := CorruptBytes(rng, nil); len(out) != 0 {
		t.Errorf("nil input produced %d bytes", len(out))
	}
}

func TestFaultShedOldestBoundsInbound(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{MaxInbound: 3, LatencyRounds: 2})
	for i := 0; i < 8; i++ {
		if err := eps["a"].Send("b", []byte{byte('0' + i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.Step()
	s.Step()
	if got := recs["b"].packetCount(); got != 3 {
		t.Fatalf("delivered %d packets, want 3 (bound)", got)
	}
	// Shed-oldest: the LAST three sends survive.
	for i, want := range []string{"a:5", "a:6", "a:7"} {
		if recs["b"].packets[i] != want {
			t.Errorf("packet %d = %q, want %q (oldest must be shed first)", i, recs["b"].packets[i], want)
		}
	}
	if st := s.Stats(); st.Shed != 5 {
		t.Errorf("Shed = %d, want 5", st.Shed)
	}
}

func TestFaultSetDupAndSetDelay(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{Seed: 2})
	s.SetDup(1)
	if err := eps["a"].Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	if got := recs["b"].packetCount(); got != 2 {
		t.Errorf("dup=1 delivered %d copies, want 2", got)
	}
	s.SetDup(0)
	s.SetDelay(3)
	if err := eps["a"].Send("b", []byte("slow")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	s.Step()
	if got := recs["b"].packetCount(); got != 2 {
		t.Fatalf("delayed packet arrived early (count %d)", got)
	}
	s.Step()
	if got := recs["b"].packetCount(); got != 3 {
		t.Errorf("delayed packet missing after 3 rounds (count %d)", got)
	}
}
