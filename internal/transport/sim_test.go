package transport

import (
	"errors"
	"sync"
	"testing"

	"tota/internal/topology"
	"tota/internal/tuple"
)

// recorder is a Handler capturing everything it receives.
type recorder struct {
	mu       sync.Mutex
	packets  []string // "from:data"
	nbrs     []string // "+peer" / "-peer"
	reply    func(from tuple.NodeID, data []byte)
	onNbrFun func(peer tuple.NodeID, added bool)
}

func (r *recorder) HandlePacket(from tuple.NodeID, data []byte) {
	r.mu.Lock()
	r.packets = append(r.packets, string(from)+":"+string(data))
	reply := r.reply
	r.mu.Unlock()
	if reply != nil {
		reply(from, data)
	}
}

func (r *recorder) HandleNeighbor(peer tuple.NodeID, added bool) {
	r.mu.Lock()
	s := "-"
	if added {
		s = "+"
	}
	r.nbrs = append(r.nbrs, s+string(peer))
	fn := r.onNbrFun
	r.mu.Unlock()
	if fn != nil {
		fn(peer, added)
	}
}

func (r *recorder) packetCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.packets)
}

func newTriangle(t *testing.T, cfg SimConfig) (*Sim, map[tuple.NodeID]*SimEndpoint, map[tuple.NodeID]*recorder) {
	t.Helper()
	g := topology.New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	s := NewSim(g, cfg)
	eps := make(map[tuple.NodeID]*SimEndpoint)
	recs := make(map[tuple.NodeID]*recorder)
	for _, id := range []tuple.NodeID{"a", "b", "c"} {
		rec := &recorder{}
		eps[id] = s.Attach(id, rec)
		recs[id] = rec
	}
	return s, eps, recs
}

func TestBroadcastReachesAllNeighborsNextStep(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{})
	if err := eps["a"].Broadcast([]byte("hi")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if recs["b"].packetCount() != 0 {
		t.Error("delivered before Step")
	}
	if n := s.Step(); n != 2 {
		t.Errorf("Step delivered %d, want 2", n)
	}
	for _, id := range []tuple.NodeID{"b", "c"} {
		rec := recs[id]
		if rec.packetCount() != 1 || rec.packets[0] != "a:hi" {
			t.Errorf("node %s got %v", id, rec.packets)
		}
	}
	if recs["a"].packetCount() != 0 {
		t.Error("sender received its own broadcast")
	}
}

func TestSendUnicastAndErrors(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{})
	if err := eps["a"].Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	if recs["b"].packetCount() != 1 {
		t.Error("unicast not delivered")
	}
	if recs["c"].packetCount() != 0 {
		t.Error("unicast leaked to third node")
	}
	if err := eps["a"].Send("zzz", nil); !errors.Is(err, ErrNotNeighbor) {
		t.Errorf("Send to non-neighbor: %v", err)
	}
	s.RemoveEdge("a", "b")
	if err := eps["a"].Send("b", nil); !errors.Is(err, ErrNotNeighbor) {
		t.Errorf("Send after unlink: %v", err)
	}
}

func TestDetachedEndpointErrors(t *testing.T) {
	s, eps, _ := newTriangle(t, SimConfig{})
	s.Detach("a")
	if err := eps["a"].Broadcast(nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Broadcast after Detach: %v", err)
	}
}

func TestNeighborNotifications(t *testing.T) {
	g := topology.New()
	s := NewSim(g, SimConfig{})
	ra, rb := &recorder{}, &recorder{}
	s.Attach("a", ra)
	s.Attach("b", rb)

	s.AddEdge("a", "b")
	if len(ra.nbrs) != 1 || ra.nbrs[0] != "+b" {
		t.Errorf("a events = %v", ra.nbrs)
	}
	if len(rb.nbrs) != 1 || rb.nbrs[0] != "+a" {
		t.Errorf("b events = %v", rb.nbrs)
	}
	s.RemoveEdge("a", "b")
	if len(ra.nbrs) != 2 || ra.nbrs[1] != "-b" {
		t.Errorf("a events = %v", ra.nbrs)
	}
	// Duplicate edits produce no events.
	s.RemoveEdge("a", "b")
	if len(ra.nbrs) != 2 {
		t.Errorf("duplicate removal notified: %v", ra.nbrs)
	}
}

func TestDetachNotifiesSurvivors(t *testing.T) {
	s, _, recs := newTriangle(t, SimConfig{})
	s.Detach("b")
	found := false
	for _, e := range recs["a"].nbrs {
		if e == "-b" {
			found = true
		}
	}
	if !found {
		t.Errorf("a not notified of b's crash: %v", recs["a"].nbrs)
	}
}

func TestPacketToCrashedNodeDropped(t *testing.T) {
	s, eps, _ := newTriangle(t, SimConfig{})
	if err := eps["a"].Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Detach("b")
	s.Step()
	if st := s.Stats(); st.Delivered != 0 {
		t.Errorf("delivered to crashed node: %+v", st)
	}
}

func TestPacketAcrossBrokenLinkDropped(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{})
	if err := eps["a"].Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RemoveEdge("a", "b")
	s.Step()
	if recs["b"].packetCount() != 0 {
		t.Error("packet crossed a removed link")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestLatencyRounds(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{LatencyRounds: 3})
	if err := eps["a"].Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Step()
	s.Step()
	if recs["b"].packetCount() != 0 {
		t.Error("delivered before latency elapsed")
	}
	s.Step()
	if recs["b"].packetCount() != 1 {
		t.Error("not delivered after latency elapsed")
	}
}

func TestLossIsAppliedAndDeterministic(t *testing.T) {
	run := func() Stats {
		s, eps, _ := newTriangle(t, SimConfig{Loss: 0.5, Seed: 42})
		for i := 0; i < 200; i++ {
			if err := eps["a"].Send("b", []byte{byte(i)}); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		s.RunUntilQuiet(10)
		return s.Stats()
	}
	st1 := run()
	st2 := run()
	if st1 != st2 {
		t.Errorf("same seed, different stats: %+v vs %+v", st1, st2)
	}
	if st1.Dropped == 0 || st1.Delivered == 0 {
		t.Errorf("loss 0.5 produced stats %+v", st1)
	}
	if st1.Dropped+st1.Delivered != 200 {
		t.Errorf("dropped+delivered = %d, want 200", st1.Dropped+st1.Delivered)
	}
}

func TestRunUntilQuietHandlesChains(t *testing.T) {
	s, eps, recs := newTriangle(t, SimConfig{})
	// b forwards everything it receives to c, once.
	forwarded := false
	recs["b"].reply = func(from tuple.NodeID, data []byte) {
		if !forwarded {
			forwarded = true
			if err := eps["b"].Send("c", data); err != nil {
				t.Errorf("forward: %v", err)
			}
		}
	}
	if err := eps["a"].Send("b", []byte("m")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	steps := s.RunUntilQuiet(100)
	if steps != 2 {
		t.Errorf("steps = %d, want 2", steps)
	}
	if recs["c"].packetCount() != 1 || recs["c"].packets[0] != "b:m" {
		t.Errorf("c got %v", recs["c"].packets)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestResetStats(t *testing.T) {
	s, eps, _ := newTriangle(t, SimConfig{})
	if err := eps["a"].Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunUntilQuiet(5)
	if s.Stats() == (Stats{}) {
		t.Fatal("stats empty after traffic")
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}
